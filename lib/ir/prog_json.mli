(** JSON serialization of whole programs.

    The structured counterpart of the {!Asm} save format: globals keep
    their hex images, blocks keep their label order, and each
    instruction is stored as an [[iid, "text"]] pair in the textual
    assembly syntax, so instruction ids — and therefore analysis facts
    and profiles keyed by them — survive a round trip exactly, like they
    do through {!Asm}.

    This is the program wire format of the [ogc serve] optimization
    service (requests may carry a serialized program instead of MiniC
    source; responses may return the re-encoded program) and the on-disk
    form of its content-addressed analysis cache.

    [of_json (to_json p)] is structurally identical to [p] (the
    round-trip is property-tested in [test/test_server.ml]).  [of_json]
    checks the [format]/[format_version] header and validates shapes,
    but does not run {!Validate.program} — callers that accept untrusted
    programs should. *)

val format_tag : string
(** ["ogc.prog"], the [format] header member. *)

val format_version : int

val to_json : Prog.t -> Ogc_json.Json.t

val of_json : Ogc_json.Json.t -> Prog.t
(** Raises {!Ogc_json.Json.Parse_error} on a malformed tree (including
    assembly syntax errors inside instruction texts, re-raised uniformly
    as [Parse_error]). *)
