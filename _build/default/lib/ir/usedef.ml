open Ogc_isa

type def_site = Entry | At of int

type def = { dreg : Reg.t; site : def_site }

type t = {
  defs : def array;
  defs_of_ins : (int, int list) Hashtbl.t;
  use_defs : (int * int, int list) Hashtbl.t;
      (* (use_iid, reg index) -> def indices *)
  def_uses : (int, (int * Reg.t) list) Hashtbl.t;
}

let compute (f : Prog.func) cfg =
  (* 1. Enumerate definitions. *)
  let defs = ref [] and ndefs = ref 0 in
  let defs_of_ins = Hashtbl.create 256 in
  let add_def dreg site =
    let idx = !ndefs in
    defs := { dreg; site } :: !defs;
    incr ndefs;
    (match site with
    | At iid ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt defs_of_ins iid) in
      Hashtbl.replace defs_of_ins iid (idx :: prev)
    | Entry -> ());
    idx
  in
  let entry_def = Array.make 32 (-1) in
  List.iter
    (fun r -> entry_def.(Reg.to_int r) <- add_def r Entry)
    Reg.all;
  Prog.iter_ins f (fun _ ins ->
      List.iter (fun r -> ignore (add_def r (At ins.iid))) (Instr.defs ins.op));
  let defs = Array.of_list (List.rev !defs) in
  let nd = Array.length defs in
  (* Per-register def index lists, for kill sets. *)
  let defs_of_reg = Array.make 32 [] in
  Array.iteri
    (fun i d -> defs_of_reg.(Reg.to_int d.dreg) <- i :: defs_of_reg.(Reg.to_int d.dreg))
    defs;
  (* 2. Block-level gen/kill. *)
  let n = Array.length f.blocks in
  let gen = Array.init n (fun _ -> Bitset.create nd) in
  let kill = Array.init n (fun _ -> Bitset.create nd) in
  let ins_defs iid = Option.value ~default:[] (Hashtbl.find_opt defs_of_ins iid) in
  Array.iteri
    (fun bi (b : Prog.block) ->
      Array.iter
        (fun (ins : Prog.ins) ->
          List.iter
            (fun di ->
              let r = Reg.to_int defs.(di).dreg in
              List.iter
                (fun other ->
                  if other <> di then begin
                    Bitset.set kill.(bi) other;
                    Bitset.clear gen.(bi) other
                  end)
                defs_of_reg.(r);
              Bitset.set gen.(bi) di;
              Bitset.clear kill.(bi) di)
            (ins_defs ins.iid))
        b.body)
    f.blocks;
  (* 3. Iterate to fixpoint: in[b] = U out[p]; out[b] = gen + (in - kill). *)
  let inb = Array.init n (fun _ -> Bitset.create nd) in
  let outb = Array.init n (fun _ -> Bitset.create nd) in
  (* Entry block starts with the entry pseudo-defs. *)
  let entry_bits = Bitset.create nd in
  Array.iter (fun di -> if di >= 0 then Bitset.set entry_bits di) entry_def;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        let bi = Label.to_int l in
        let i = Bitset.create nd in
        if bi = 0 then ignore (Bitset.union_into ~into:i entry_bits);
        List.iter
          (fun p -> ignore (Bitset.union_into ~into:i outb.(Label.to_int p)))
          (Cfg.preds cfg l);
        let o = Bitset.copy i in
        Bitset.diff_into ~into:o kill.(bi);
        ignore (Bitset.union_into ~into:o gen.(bi));
        if not (Bitset.equal i inb.(bi) && Bitset.equal o outb.(bi)) then begin
          inb.(bi) <- i;
          outb.(bi) <- o;
          changed := true
        end)
      (Cfg.reverse_postorder cfg)
  done;
  (* 4. Walk each block to record per-use reaching defs. *)
  let use_defs = Hashtbl.create 1024 in
  let def_uses = Hashtbl.create 1024 in
  let record_use cur use_iid r =
    let ds =
      List.filter (fun di -> Reg.equal defs.(di).dreg r) (Bitset.elements cur)
    in
    Hashtbl.replace use_defs (use_iid, Reg.to_int r) ds;
    List.iter
      (fun di ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt def_uses di) in
        Hashtbl.replace def_uses di ((use_iid, r) :: prev))
      ds
  in
  Array.iteri
    (fun bi (b : Prog.block) ->
      let cur = Bitset.copy inb.(bi) in
      Array.iter
        (fun (ins : Prog.ins) ->
          List.iter (record_use cur ins.iid) (Instr.uses ins.op);
          List.iter
            (fun di ->
              let r = Reg.to_int defs.(di).dreg in
              List.iter
                (fun other -> if other <> di then Bitset.clear cur other)
                defs_of_reg.(r);
              Bitset.set cur di)
            (ins_defs ins.iid))
        b.body;
      match b.term with
      | Prog.Branch { src; _ } -> record_use cur b.term_iid src
      | Prog.Return -> record_use cur b.term_iid Reg.ret
      | Prog.Jump _ -> ())
    f.blocks;
  { defs; defs_of_ins; use_defs; def_uses }

let num_defs t = Array.length t.defs
let def t i = t.defs.(i)

let defs_of_ins t iid =
  Option.value ~default:[] (Hashtbl.find_opt t.defs_of_ins iid)

let reaching_uses t ~use_iid ~reg =
  Option.value ~default:[]
    (Hashtbl.find_opt t.use_defs (use_iid, Reg.to_int reg))

let uses_of_def t d =
  Option.value ~default:[] (Hashtbl.find_opt t.def_uses d)

let dependents t ~iid =
  let seen = Hashtbl.create 64 in
  let rec expand_def di =
    List.iter
      (fun (use_iid, _) ->
        if not (Hashtbl.mem seen use_iid) then begin
          Hashtbl.replace seen use_iid ();
          List.iter expand_def (defs_of_ins t use_iid)
        end)
      (uses_of_def t di)
  in
  List.iter expand_def (defs_of_ins t iid);
  seen
