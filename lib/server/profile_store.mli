(** Per-program accumulated execution profiles behind the server's
    [profile] op.

    Keyed by {!Protocol.route_key} (the program-identity digest), so all
    option variants of one program share a single accumulated profile.
    Each push merges a client delta and bumps the program's epoch — the
    monotone counter that salts profile-dependent artifact addresses.
    Bounded; FIFO eviction over programs.  Thread-safe. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 256 programs. *)

val push : t -> string -> Ogc_pass.Profile.t -> int
(** [push t route_key delta] accumulates [delta] and returns the
    program's new (strictly increased) epoch. *)

val find : t -> string -> Ogc_pass.Profile.t option
(** A deep copy of the accumulated profile (never the accumulator
    itself — pushes keep mutating that). *)

val epoch : t -> string -> int
(** Current epoch; 0 when no profile has been pushed. *)

val stats : t -> int * int
(** [(programs, pushes)] since {!create}. *)
