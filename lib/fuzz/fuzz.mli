(** Seeded differential fuzzing campaigns ([ogc fuzz]).

    A campaign of [count] programs is fully determined by [seed]: program
    [i] is generated from [Random.State.make [| seed; i; 0 |]] (two out
    of three through the MiniC front end, one of three as raw IR) and
    checked against {!Oracle.default_transforms} plus two random chains
    drawn from [Random.State.make [| seed; i; 1 |]].  Workers run on a
    {!Ogc_exec.Pool}; results are folded in submission order, so the
    summary is identical whatever the parallelism.

    Metrics ([ogc_fuzz_programs_total], [ogc_fuzz_chains_total],
    [ogc_fuzz_diffs_total], [ogc_fuzz_skipped_total]) and spans
    ([fuzz:campaign], [fuzz:shrink]) are recorded when
    {!Ogc_obs.Metrics}/{!Ogc_obs.Span} are enabled. *)

open Ogc_ir

(** How a checked program came to be. *)
type source =
  | Minic of string  (** original MiniC source text *)
  | Ir  (** generated directly as IR *)

(** One oracle disagreement, with everything needed to replay it. *)
type failure = {
  f_index : int;  (** program index within the campaign *)
  f_source : source;
  f_chain : string;  (** transform name that disagreed *)
  f_detail : string;
  f_prog : Prog.t;  (** the checked program (compiled form) *)
  f_min : Prog.t option;  (** minimized reproducer, when shrinking ran *)
}

type summary = {
  s_seed : int;
  s_count : int;
  s_minic : int;  (** programs generated through the front end *)
  s_ir : int;  (** programs generated as raw IR *)
  s_skipped : int;  (** baseline faulted; nothing to compare *)
  s_chains : int;  (** transform checks performed *)
  s_failures : failure list;  (** campaign order, then transform order *)
  s_gen_errors : (int * string) list;
      (** program index -> generator/front-end error (always a bug) *)
}

val transforms_for : inject:bool -> seed:int -> index:int -> Oracle.transform list
(** The exact transform list program [index] of campaign [seed] is
    checked against; [inject] appends {!Oracle.injected_width_bug}. *)

val generate :
  ?pressure:bool ->
  ?zero_bias:bool ->
  seed:int ->
  index:int ->
  unit ->
  source * Prog.t
(** The exact program at [index] of campaign [seed].  [pressure]
    (default false) swaps the MiniC generator for
    {!Gen_minic.pressure_program}; [zero_bias] (default false, takes
    precedence over [pressure]) swaps it for {!Gen_minic.zero_program}
    (raw-IR indices are unaffected either way).  Raises
    {!Ogc_minic.Minic.Error} if the front end rejects a generated
    source (a generator bug). *)

val shrink_failure :
  ?config:Interp.config -> seed:int -> failure -> failure
(** Minimize [f_prog] with {!Shrink.minimize}, keeping candidates on
    which [f_chain] still produces a diff of the same kind; fills
    [f_min]. *)

val run :
  ?jobs:int ->
  ?inject:bool ->
  ?shrink:bool ->
  ?pressure:bool ->
  ?zero_bias:bool ->
  ?config:Interp.config ->
  seed:int ->
  count:int ->
  unit ->
  summary
(** Run a campaign.  [jobs] defaults to {!Ogc_exec.Pool.default_jobs}
    (the [OGC_JOBS] environment variable or the domain count); [inject]
    (default false) adds the known-bad transform; [shrink] (default
    false) minimizes every failure after the campaign; [pressure]
    (default false) generates high-register-pressure MiniC programs so
    every campaign exercises the allocator's spill paths; [zero_bias]
    (default false) generates zero-dominated MiniC programs so the
    [zspec] chains in the oracle actually specialize. *)
