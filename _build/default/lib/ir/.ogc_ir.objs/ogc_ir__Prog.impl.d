lib/ir/prog.ml: Array Bytes Format Hashtbl Instr Label List Ogc_isa Reg String
