(* VRP tests: range precision on crafted programs, width assignment,
   semantic preservation, and differential soundness on random programs
   (every runtime value must lie inside its static range; re-encoding must
   never change program output). *)

open Ogc_isa
module Minic = Ogc_minic.Minic
module Interp = Ogc_ir.Interp
module Prog = Ogc_ir.Prog
module Vrp = Ogc_core.Vrp
module Interval = Ogc_core.Interval
module Gen_minic = Ogc_fuzz.Gen_minic

let compile = Minic.compile

(* Find the unique instruction satisfying a predicate. *)
let find_ins prog pred =
  let found = ref [] in
  Prog.iter_all_ins prog (fun _ _ ins ->
      if pred ins.Prog.op then found := ins :: !found);
  match !found with
  | [ i ] -> i
  | l -> Alcotest.failf "expected exactly one match, found %d" (List.length l)

let width_str = function Some w -> Width.to_string w | None -> "-"

(* --- the paper's running example (§2.2.6) ------------------------------------ *)

let test_paper_example () =
  (* for (i = 0; i < 100; i++) a[i] = i;
     The iterator must be bounded to <0,99> inside the loop, and its
     scaled copy (i*4) to <0,396>. *)
  let prog = compile {|
    int a[100];
    int main() {
      for (int i = 0; i < 100; i++) a[i] = i;
      return 0;
    }
  |} in
  let res = Vrp.analyze prog in
  let inc =
    find_ins prog (function
      | Instr.Alu { op = Instr.Add; src2 = Instr.Imm 1L; _ } -> true
      | _ -> false)
  in
  (match Vrp.range_of res inc.Prog.iid with
  | Some rng ->
    Alcotest.(check string) "i++ yields <1,100>" "<1,100>"
      (Interval.to_string rng)
  | None -> Alcotest.fail "no range for the increment");
  (* The address scale uses i << 2; the input i is <0,99>, so the shifted
     value is <0,396>. *)
  let scale =
    find_ins prog (function
      | Instr.Alu { op = Instr.Sll; src2 = Instr.Imm 2L; _ } -> true
      | _ -> false)
  in
  match Vrp.range_of res scale.Prog.iid with
  | Some rng ->
    Alcotest.(check string) "i*4 yields <0,396>" "<0,396>"
      (Interval.to_string rng)
  | None -> Alcotest.fail "no range for the scale"

let test_branch_refinement () =
  (* Paper §2.2.4: inside `if (a <= 100)` the max is 100; in the else
     branch the min is 101. *)
  let prog = compile {|
    int source = 500;
    int main() {
      long a = source;
      if (a >= 0) {
        if (a <= 100) emit(a + 1);
        else emit(a + 2);
      }
      return 0;
    }
  |} in
  let res = Vrp.analyze prog in
  let add1 =
    find_ins prog (function
      | Instr.Alu { op = Instr.Add; src2 = Instr.Imm 1L; _ } -> true
      | _ -> false)
  and add2 =
    find_ins prog (function
      | Instr.Alu { op = Instr.Add; src2 = Instr.Imm 2L; _ } -> true
      | _ -> false)
  in
  (match Vrp.input_ranges_of res add1.Prog.iid with
  | Some (a, _) ->
    Alcotest.(check string) "then-branch bound" "<0,100>" (Interval.to_string a)
  | None -> Alcotest.fail "no inputs");
  match Vrp.input_ranges_of res add2.Prog.iid with
  | Some (a, _) ->
    Alcotest.(check bool) "else-branch lower bound" true
      (Int64.equal a.Interval.lo 101L)
  | None -> Alcotest.fail "no inputs"

let test_interprocedural () =
  (* Constant arguments and return ranges flow across calls. *)
  let prog = compile {|
    int double_(int x) { return x + x; }
    int main() {
      emit(double_(20));
      emit(double_(30));
      return 0;
    }
  |} in
  let res = Vrp.analyze prog in
  match Vrp.return_range res "double_" with
  | Some rng ->
    Alcotest.(check bool) "return range covers 40..60, width 8" true
      (Interval.contains rng 40L && Interval.contains rng 60L
      && Width.equal (Interval.width rng) Width.W8)
  | None -> Alcotest.fail "no summary"

let test_recursive_conservative () =
  let prog = compile {|
    int f(int n) { if (n < 2) return n; return f(n - 1) + f(n - 2); }
    int main() { emit(f(10)); return 0; }
  |} in
  let res = Vrp.analyze prog in
  match Vrp.return_range res "f" with
  | Some _ -> () (* any sound range is fine; just must not diverge *)
  | None -> Alcotest.fail "no summary"

let test_useful_mask () =
  (* The intro example: only the low byte of the AND input chain is
     needed, so the chain re-encodes at byte width. *)
  let prog = compile {|
    long source = 123456789;
    int main() {
      long x = source;
      long y = x * 31 + 7;
      emit(y & 0xFF);
      return 0;
    }
  |} in
  let res = Vrp.run prog in
  let mul =
    find_ins prog (function
      | Instr.Alu { op = Instr.Mul; _ } -> true
      | _ -> false)
  in
  (* The AND result range is [0,255], which needs 16 bits in two's
     complement (§2.4: narrow values stay signed), so the chain narrows
     to halfword. *)
  Alcotest.(check string) "mul narrowed to the useful halfword" "16"
    (width_str (Vrp.width_of res mul.Prog.iid));
  (* The paper-literal mode must keep it wide. *)
  let prog2 = compile {|
    long source = 123456789;
    int main() {
      long x = source;
      long y = x * 31 + 7;
      emit(y & 0xFF);
      return 0;
    }
  |} in
  let res2 =
    Vrp.run ~config:{ Vrp.default_config with useful_through_arith = false }
      prog2
  in
  let mul2 =
    find_ins prog2 (function
      | Instr.Alu { op = Instr.Mul; _ } -> true
      | _ -> false)
  in
  Alcotest.(check string) "conservative mode keeps it wide" "64"
    (width_str (Vrp.width_of res2 mul2.Prog.iid))

(* --- masks and logical ops: useful widths, fuzz regressions --------------- *)

let parse_ir = Ogc_ir.Asm.parse

let outcome p =
  let out = Interp.run p in
  (out.Interp.checksum, out.Interp.emitted)

let test_msk_negative_stays_wide () =
  (* ogc fuzz seed 42, program 59 (test/corpus/vrp_msk_zero_extend.s):
     a narrowed msk ZERO-extends, so a negative value is only
     recoverable at full width.  -29712 fits W16 signed, and that signed
     fit used to re-encode msk64 as msk16, flipping the emitted value to
     35824. *)
  let prog = parse_ir {|
func main(0) frame=0
L0:
  [   0] li #-29712, r10
  [   1] msk64 r10, r10
  [   2] emit r10
  [   3] li #0, r0
  [   4] ret
|} in
  let before = outcome (Prog.copy prog) in
  let res = Vrp.run prog in
  let msk = find_ins prog (function Instr.Msk _ -> true | _ -> false) in
  Alcotest.(check string) "msk64 of a negative value stays 64" "64"
    (width_str (Vrp.width_of res msk.Prog.iid));
  Alcotest.(check bool) "output preserved" true (outcome prog = before)

let test_msk_unsigned_narrows () =
  (* The flip side: a msk result that fits [0, 255] re-encodes at byte
     width even though 200 needs a signed halfword — zero-extension is
     exactly what msk does. *)
  let prog = parse_ir {|
func main(0) frame=0
L0:
  [   0] li #200, r10
  [   1] msk64 r10, r10
  [   2] emit r10
  [   3] li #0, r0
  [   4] ret
|} in
  let before = outcome (Prog.copy prog) in
  let res = Vrp.run prog in
  let msk = find_ins prog (function Instr.Msk _ -> true | _ -> false) in
  Alcotest.(check string) "msk64 of 200 narrows to 8" "8"
    (width_str (Vrp.width_of res msk.Prog.iid));
  Alcotest.(check bool) "output preserved" true (outcome prog = before)

let test_demand_through_msk () =
  (* A msk8 consumer demands only the low byte of its source, so the
     producing chain narrows to byte width even though its value is
     wide. *)
  let prog = parse_ir {|
func main(0) frame=0
L0:
  [   0] li #123456789, r1
  [   1] or r1, #0, r2
  [   2] msk8 r2, r3
  [   3] emit r3
  [   4] li #0, r0
  [   5] ret
|} in
  let before = outcome (Prog.copy prog) in
  let res = Vrp.run prog in
  let orr =
    find_ins prog (function
      | Instr.Alu { op = Instr.Or; _ } -> true
      | _ -> false)
  in
  Alcotest.(check string) "or feeding msk8 narrows to 8" "8"
    (width_str (Vrp.width_of res orr.Prog.iid));
  Alcotest.(check bool) "output preserved" true (outcome prog = before)

let test_demand_through_logical_chain () =
  (* Backward demand flows through bic and xor: the and-with-255 at the
     end only exposes a [0,255] result (signed halfword), so the whole
     chain re-encodes at halfword. *)
  let prog = parse_ir {|
func main(0) frame=0
L0:
  [   0] li #987654321, r1
  [   1] xor r1, #85, r2
  [   2] bic r2, #15, r3
  [   3] and r3, #255, r4
  [   4] emit r4
  [   5] li #0, r0
  [   6] ret
|} in
  let before = outcome (Prog.copy prog) in
  let res = Vrp.run prog in
  let width_of_op pred =
    width_str (Vrp.width_of res (find_ins prog pred).Prog.iid)
  in
  Alcotest.(check string) "xor narrows to the useful halfword" "16"
    (width_of_op (function
      | Instr.Alu { op = Instr.Xor; _ } -> true
      | _ -> false));
  Alcotest.(check string) "bic narrows to the useful halfword" "16"
    (width_of_op (function
      | Instr.Alu { op = Instr.Bic; _ } -> true
      | _ -> false));
  Alcotest.(check bool) "output preserved" true (outcome prog = before)

let test_cmp_self_clobber_no_refinement () =
  (* ogc fuzz seed 42, program 0 (test/corpus/vrs_guard_edge_refinement.s):
     VRS guards compare against their own destination (cmpeq r3, r27,
     r27).  Edge refinement must not read the comparand's range from the
     block out-state — after the compare it holds the 0/1 result, and
     the refined r3 once became [1,1] on the taken edge, which constprop
     then folded into the program.  The comparand loaded by the [li]
     below the compare {e is} recoverable statically, so the refinement
     r3 = 65535 on the taken edge is sound and constprop may fold the
     [or] — but only ever to that constant. *)
  let prog = parse_ir {|
func main(0) frame=0
L0:
  [   0] add r9, #65535, r3
  [   1] li #65535, r27
  [   2] cmpeq r3, r27, r27
  [   3] bne r27, L1, L2
L1:
  [   4] or r3, #0, r1
  [   5] emit r1
  [   6] jump L2
L2:
  [   7] li #0, r0
  [   8] ret
|} in
  let before = outcome (Prog.copy prog) in
  let res = Vrp.run prog in
  ignore (Ogc_core.Constprop.run res prog);
  let def_r1 =
    find_ins prog (fun op ->
        List.exists (Reg.equal (Reg.of_int 1)) (Instr.defs op))
  in
  (match def_r1.Prog.op with
  | Instr.Alu { op = Instr.Or; _ } -> ()
  | Instr.Li { imm = 65535L; _ } -> ()
  | op ->
    Alcotest.failf "the or was folded from a bogus refinement: %s"
      (Instr.to_string op));
  Alcotest.(check bool) "output preserved" true (outcome prog = before)

let test_conventional_weaker () =
  let src = {|
    long source = 123456789;
    int main() {
      long x = source;
      emit((x + 1) & 0xFF);
      return 0;
    }
  |} in
  let p1 = compile src and p2 = compile src in
  let r1 = Vrp.run p1 in
  let r2 = Vrp.run ~config:Vrp.conventional_config p2 in
  let add p =
    find_ins p (function
      | Instr.Alu { op = Instr.Add; src2 = Instr.Imm 1L; _ } -> true
      | _ -> false)
  in
  let w1 = Vrp.width_of r1 (add p1).Prog.iid in
  let w2 = Vrp.width_of r2 (add p2).Prog.iid in
  Alcotest.(check string) "useful narrows the add" "16" (width_str w1);
  Alcotest.(check string) "conventional keeps it wide" "64" (width_str w2)

let test_never_widens () =
  (* Re-encoding may only narrow: every assigned width is at most the
     original encoded width. *)
  let src = {|
    int main() {
      int x = 2000000000;
      int y = x + x;        // wraps at 32 bits
      emit(y);
      return 0;
    }
  |} in
  let prog = compile src in
  let originals = Hashtbl.create 64 in
  Prog.iter_all_ins prog (fun _ _ ins ->
      Hashtbl.replace originals ins.Prog.iid (Instr.width ins.Prog.op));
  let before = Interp.run prog in
  ignore (Vrp.run prog);
  let after = Interp.run prog in
  Alcotest.(check int64) "wrap semantics preserved" before.Interp.checksum
    after.Interp.checksum;
  Prog.iter_all_ins prog (fun _ _ ins ->
      let orig = Hashtbl.find originals ins.Prog.iid in
      Alcotest.(check bool) "width never widens" true
        (Width.compare (Instr.width ins.Prog.op) orig <= 0))

let test_assumptions () =
  (* A VRS-style assumption narrows ranges from a block entry on.  The
     add must live in a block of its own (after the defining load), the
     way VRS guards split blocks at the specialized definition. *)
  let prog = compile {|
    long source = 77;
    int main() {
      long x = source;
      if (x != 123456789) {
        emit(x + 1);
      }
      return 0;
    }
  |} in
  (* Find the label of the block holding the add. *)
  let f = Prog.find_func prog "main" in
  let add =
    find_ins prog (function
      | Instr.Alu { op = Instr.Add; src2 = Instr.Imm 1L; _ } -> true
      | _ -> false)
  in
  let label = ref None in
  Array.iter
    (fun (b : Prog.block) ->
      Array.iter
        (fun (i : Prog.ins) -> if i.Prog.iid = add.Prog.iid then label := Some b.Prog.label)
        b.Prog.body)
    f.Prog.blocks;
  (* x lives in a callee-saved home register; find which register the add
     reads. *)
  let reg =
    match add.Prog.op with
    | Instr.Alu { src1; _ } -> src1
    | _ -> assert false
  in
  let assumption =
    { Vrp.af = "main"; alabel = Option.get !label; areg = reg;
      arange = Interval.v 0L 100L }
  in
  let res =
    Vrp.analyze ~config:{ Vrp.default_config with assumptions = [ assumption ] }
      prog
  in
  match Vrp.range_of res add.Prog.iid with
  | Some rng ->
    Alcotest.(check bool) "assumption narrowed the add" true
      (Int64.compare rng.Interval.hi 101L <= 0)
  | None -> Alcotest.fail "no range"

(* --- the paper's syntactic trip-count analysis (§2.3) ------------------------- *)

module Tripcount = Ogc_core.Tripcount

let test_tripcount_for_loop () =
  (* The paper's example: for (i=0; i<100; i++) — 100 iterations and an
     iterator range of <0,99>. *)
  let prog = compile {|
    int a[100];
    int main() {
      for (int i = 0; i < 100; i++) a[i] = i;
      return 0;
    }
  |} in
  let f = Prog.find_func prog "main" in
  match Tripcount.analyze f with
  | [ lo ] ->
    Alcotest.(check int) "trip count" 100 lo.Tripcount.trip_count;
    Alcotest.(check string) "iterator range" "<0,99>"
      (Interval.to_string lo.Tripcount.iterator_range);
    Alcotest.(check int64) "init" 0L lo.Tripcount.init;
    Alcotest.(check int64) "step" 1L lo.Tripcount.add
  | l -> Alcotest.failf "expected one affine loop, found %d" (List.length l)

let test_tripcount_downward_and_strided () =
  let prog = compile {|
    int main() {
      long s = 0;
      for (int i = 50; i > 8; i -= 3) s += i;
      emit(s);
      return 0;
    }
  |} in
  let f = Prog.find_func prog "main" in
  match Tripcount.analyze f with
  | [ lo ] ->
    (* 50, 47, ..., 11: 14 iterations; note the compare is i > 8, compiled
       as 8 < i with operands swapped, so the analysis sees cmplt. *)
    Alcotest.(check int) "trip count" 14 lo.Tripcount.trip_count
  | l -> Alcotest.failf "expected one affine loop, found %d" (List.length l)

let test_tripcount_rejects_data_dependent () =
  (* §2.3: loops whose exit depends on data are not handled. *)
  let prog = compile {|
    int data[64];
    int main() {
      int i = 0;
      while (data[i] == 0 && i < 63) i++;
      emit(i);
      return 0;
    }
  |} in
  let f = Prog.find_func prog "main" in
  (* The condition involves a load; at most the `i < 63` half could match,
     but the loop has two exits and the header tests the load, so the
     syntactic method must give nothing (or at least nothing wrong). *)
  List.iter
    (fun (lo : Tripcount.affine_loop) ->
      Alcotest.(check bool) "any detected loop is sane" true
        (lo.Tripcount.trip_count >= 0))
    (Tripcount.analyze f)

let test_tripcount_symbolic () =
  (match Tripcount.trip_count ~init:0L ~mul:1L ~add:1L ~cmp:Ogc_isa.Instr.Clt
           ~bound:100L () with
  | Some (n, rng) ->
    Alcotest.(check int) "count" 100 n;
    Alcotest.(check string) "range" "<0,99>" (Interval.to_string rng)
  | None -> Alcotest.fail "diverged");
  (match Tripcount.trip_count ~init:1L ~mul:2L ~add:0L ~cmp:Ogc_isa.Instr.Clt
           ~bound:1000L () with
  | Some (n, _) -> Alcotest.(check int) "geometric" 10 n
  | None -> Alcotest.fail "diverged");
  (* Non-terminating recurrence: x = x (never reaches the bound). *)
  match Tripcount.trip_count ~init:0L ~mul:1L ~add:0L ~cmp:Ogc_isa.Instr.Clt
          ~bound:10L () with
  | None -> ()
  | Some _ -> Alcotest.fail "should have hit the iteration cap"

(* --- differential soundness on random programs -------------------------------- *)

let interp_cfg = { Interp.default_config with max_steps = 2_000_000 }

let prop_semantics_preserved =
  QCheck.Test.make ~name:"VRP re-encoding preserves program output" ~count:200
    Gen_minic.arbitrary_program (fun src ->
      let p = Minic.compile src in
      let before = Interp.run ~config:interp_cfg p in
      ignore (Vrp.run p);
      Ogc_ir.Validate.program p;
      let after = Interp.run ~config:interp_cfg p in
      if not (Int64.equal before.Interp.checksum after.Interp.checksum) then
        QCheck.Test.fail_reportf "checksum changed: %Ld -> %Ld"
          before.Interp.checksum after.Interp.checksum
      else true)

let prop_semantics_preserved_conservative =
  QCheck.Test.make
    ~name:"paper-literal VRP (no useful-through-arith) preserves output"
    ~count:100 Gen_minic.arbitrary_program (fun src ->
      let p = Minic.compile src in
      let before = Interp.run ~config:interp_cfg p in
      ignore
        (Vrp.run
           ~config:{ Vrp.default_config with useful_through_arith = false }
           p);
      let after = Interp.run ~config:interp_cfg p in
      Int64.equal before.Interp.checksum after.Interp.checksum)

let prop_ranges_sound =
  QCheck.Test.make ~name:"every runtime value lies in its static range"
    ~count:120 Gen_minic.arbitrary_program (fun src ->
      let p = Minic.compile src in
      let res = Vrp.analyze p in
      let bad = ref None in
      let on_event = function
        | Interp.E_ins { iid; op; result; _ } -> (
          (* Only single-destination value producers are recorded. *)
          match op with
          | Instr.Alu _ | Instr.Cmp _ | Instr.Cmov _ | Instr.Msk _
          | Instr.Sext _ | Instr.Li _ | Instr.La _ | Instr.Load _ -> (
            match Vrp.range_of res iid with
            | Some rng when not (Interval.contains rng result) ->
              if !bad = None then bad := Some (iid, op, result, rng)
            | _ -> ())
          | _ -> ())
        | _ -> ()
      in
      ignore (Interp.run ~config:interp_cfg ~on_event p);
      match !bad with
      | None -> true
      | Some (iid, op, v, rng) ->
        QCheck.Test.fail_reportf "iid %d (%s): %Ld outside %s" iid
          (Instr.to_string op) v (Interval.to_string rng))

let prop_second_pass_monotone =
  QCheck.Test.make ~name:"a second VRP pass never widens" ~count:60
    Gen_minic.arbitrary_program (fun src ->
      let p = Minic.compile src in
      ignore (Vrp.run p);
      let first = Hashtbl.create 64 in
      Prog.iter_all_ins p (fun _ _ ins ->
          Hashtbl.replace first ins.Prog.iid (Instr.width ins.Prog.op));
      ignore (Vrp.run p);
      let ok = ref true in
      Prog.iter_all_ins p (fun _ _ ins ->
          let w1 = Hashtbl.find first ins.Prog.iid in
          if Width.compare (Instr.width ins.Prog.op) w1 > 0 then ok := false);
      !ok)

let () =
  Alcotest.run "vrp"
    [
      ( "precision",
        [
          Alcotest.test_case "paper example" `Quick test_paper_example;
          Alcotest.test_case "branch refinement" `Quick test_branch_refinement;
          Alcotest.test_case "interprocedural" `Quick test_interprocedural;
          Alcotest.test_case "recursion" `Quick test_recursive_conservative;
          Alcotest.test_case "useful mask chain" `Quick test_useful_mask;
          Alcotest.test_case "conventional weaker" `Quick test_conventional_weaker;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
        ] );
      ( "masks",
        [
          Alcotest.test_case "msk of negative stays wide" `Quick
            test_msk_negative_stays_wide;
          Alcotest.test_case "msk of unsigned narrows" `Quick
            test_msk_unsigned_narrows;
          Alcotest.test_case "demand through msk" `Quick test_demand_through_msk;
          Alcotest.test_case "demand through logical chain" `Quick
            test_demand_through_logical_chain;
          Alcotest.test_case "cmp self-clobber refinement" `Quick
            test_cmp_self_clobber_no_refinement;
        ] );
      ( "tripcount",
        [
          Alcotest.test_case "paper for-loop" `Quick test_tripcount_for_loop;
          Alcotest.test_case "downward strided" `Quick
            test_tripcount_downward_and_strided;
          Alcotest.test_case "data-dependent rejected" `Quick
            test_tripcount_rejects_data_dependent;
          Alcotest.test_case "symbolic recurrence" `Quick test_tripcount_symbolic;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "never widens + wrap" `Quick test_never_widens;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [
              prop_semantics_preserved;
              prop_semantics_preserved_conservative;
              prop_ranges_sound;
              prop_second_pass_monotone;
            ] );
    ]
