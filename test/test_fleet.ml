(* Fleet tests: consistent-hash ring properties (balance, minimal key
   movement on resize), router hedging past an injected slow shard,
   failover past a dead one, hot-key replication, and a loadgen replay
   that kills a shard mid-run and still completes with zero failures. *)

module J = Ogc_json.Json
module Server = Ogc_server.Server
module Protocol = Ogc_server.Protocol
module Ring = Ogc_fleet.Ring
module Router = Ogc_fleet.Router
module Loadgen = Ogc_fleet.Loadgen

let () = Ogc_obs.Log.set_level Ogc_obs.Log.Error

(* --- ring ------------------------------------------------------------------- *)

let shard_names n = List.init n (Printf.sprintf "shard%d")
let keys m = List.init m (Printf.sprintf "key-%d")

let prop_ring_balance =
  QCheck.Test.make ~name:"ring balance stays within 2x the fair share"
    ~count:20
    QCheck.(make Gen.(int_range 2 8))
    (fun n ->
      let ring = Ring.create (shard_names n) in
      let counts = Hashtbl.create n in
      let m = 4000 in
      List.iter
        (fun k ->
          let s = Ring.lookup ring k in
          Hashtbl.replace counts s
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts s)))
        (keys m);
      let mean = float_of_int m /. float_of_int n in
      List.for_all
        (fun s ->
          let c =
            float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts s))
          in
          c <= 2.0 *. mean && c >= mean /. 3.0)
        (shard_names n))

(* Structural, not statistical: adding a shard moves keys only TO the
   new shard; every other key keeps its owner. *)
let prop_ring_join_movement =
  QCheck.Test.make
    ~name:"joining shard only steals keys (no unrelated movement)"
    ~count:20
    QCheck.(make Gen.(int_range 1 6))
    (fun n ->
      let r = Ring.create (shard_names n) in
      let r' = Ring.add r "joiner" in
      List.for_all
        (fun k ->
          let before = Ring.lookup r k and after = Ring.lookup r' k in
          String.equal after before || String.equal after "joiner")
        (keys 800))

let prop_ring_leave_movement =
  QCheck.Test.make
    ~name:"leaving shard only orphans its own keys"
    ~count:20
    QCheck.(make Gen.(int_range 2 6))
    (fun n ->
      let r = Ring.create (shard_names n) in
      let gone = "shard0" in
      let r' = Ring.remove r gone in
      List.for_all
        (fun k ->
          let before = Ring.lookup r k in
          String.equal before gone
          || String.equal (Ring.lookup r' k) before)
        (keys 800))

(* The statistical half of minimal movement: a join steals about 1/(n+1)
   of the keyspace, bounded loosely here against vnode variance. *)
let prop_ring_join_moves_fair_share =
  QCheck.Test.make ~name:"joining shard steals roughly a fair share"
    ~count:20
    QCheck.(make Gen.(int_range 2 6))
    (fun n ->
      let r = Ring.create (shard_names n) in
      let r' = Ring.add r "joiner" in
      let m = 2000 in
      let moved =
        List.length
          (List.filter
             (fun k -> not (String.equal (Ring.lookup r k) (Ring.lookup r' k)))
             (keys m))
      in
      let fair = float_of_int m /. float_of_int (n + 1) in
      float_of_int moved <= 2.5 *. fair)

let test_ring_basics () =
  let r = Ring.create ~vnodes:64 [ "b"; "a"; "c"; "a" ] in
  Alcotest.(check (list string)) "members sorted, deduplicated"
    [ "a"; "b"; "c" ] (Ring.shards r);
  Alcotest.(check string) "lookup is deterministic"
    (Ring.lookup r "some-key") (Ring.lookup r "some-key");
  let succ = Ring.successors r "some-key" 3 in
  Alcotest.(check int) "successors are distinct" 3
    (List.length (List.sort_uniq String.compare succ));
  Alcotest.(check string) "owner heads the successor list"
    (Ring.lookup r "some-key") (List.hd succ);
  Alcotest.(check int) "successors clamp to the shard count" 3
    (List.length (Ring.successors r "some-key" 99));
  Alcotest.(check string) "add is idempotent on members"
    (Ring.lookup r "k") (Ring.lookup (Ring.add r "a") "k");
  (match Ring.create [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty ring accepted");
  match Ring.remove (Ring.create [ "only" ]) "only" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "removing the last shard accepted"

(* --- in-process fleet helpers ----------------------------------------------- *)

let sock_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "/tmp/ogc-fleet-%d-%d.sock" (Unix.getpid ()) !n

let src_of i =
  Printf.sprintf "int main() { emit(%d & 0xFF); return 0; }" (i * 7)

let analyze_line ?(pass = "none") src =
  J.to_string ~indent:false
    (J.Obj
       [ ("proto", J.Int Protocol.proto_version);
         ("source", J.Str src);
         ("pass", J.Str pass) ])

(* One connection, one request line, one response line. *)
let request path line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  output_string oc line;
  output_char oc '\n';
  flush oc;
  let resp = input_line ic in
  Unix.close fd;
  resp

let field resp k =
  match J.member k (J.of_string resp) with
  | J.Str s -> s
  | J.Null -> Alcotest.failf "response lacks %S: %s" k resp
  | v -> J.to_string ~indent:false v

(* The route key of the request [analyze_line src] would produce — used
   to steer a test program onto a chosen primary shard. *)
let route_key_of src =
  match Protocol.op_of_json (J.of_string (analyze_line src)) with
  | Protocol.Analyze req -> Protocol.route_key req
  | _ -> assert false

(* A source whose primary under [ring] is [want]. *)
let src_with_primary ring want =
  let rec go i =
    if i > 10_000 then Alcotest.fail "no source found for primary"
    else
      let src = src_of i in
      if String.equal (Ring.lookup ring (route_key_of src)) want then src
      else go (i + 1)
  in
  go 0

type shard_proc = {
  sp_name : string;
  sp_path : string;
  sp_t : Server.t;
  sp_th : Thread.t;
}

let start_shard name =
  let path = sock_path () in
  let cfg =
    { (Server.default_config (Server.Unix_sock path)) with jobs = Some 1 }
  in
  let t = Server.create cfg in
  { sp_name = name; sp_path = path; sp_t = t;
    sp_th = Thread.create Server.run t }

let stop_shard sp =
  Server.stop sp.sp_t;
  Thread.join sp.sp_th;
  if Sys.file_exists sp.sp_path then Sys.remove sp.sp_path

let with_fleet ?(n = 3) ?(router_cfg = fun c -> c) f =
  let shards = List.init n (fun i -> start_shard (Printf.sprintf "s%d" i)) in
  Server.link_stores (List.map (fun sp -> sp.sp_t) shards);
  let rpath = sock_path () in
  let targets =
    List.map
      (fun sp ->
        { Router.t_name = sp.sp_name; t_addr = Server.Unix_sock sp.sp_path })
      shards
  in
  let cfg =
    router_cfg
      (Router.default_config ~addr:(Server.Unix_sock rpath) ~shards:targets)
  in
  let r = Router.create cfg in
  let rth = Thread.create Router.run r in
  Fun.protect
    ~finally:(fun () ->
      Router.stop r;
      Thread.join rth;
      List.iter stop_shard shards;
      if Sys.file_exists rpath then Sys.remove rpath)
    (fun () -> f rpath r shards)

(* A fake shard that answers every request line, but only after
   [delay] seconds — an injected straggler for the hedging test. *)
let start_slow_shard delay =
  let path = sock_path () in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  if Sys.file_exists path then Unix.unlink path;
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  let stopping = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        while not (Atomic.get stopping) do
          match Unix.accept fd with
          | c, _ ->
            if Atomic.get stopping then (
              try Unix.close c with Unix.Unix_error _ -> ())
            else
              ignore
                (Thread.create
                   (fun () ->
                     let ic = Unix.in_channel_of_descr c in
                     let oc = Unix.out_channel_of_descr c in
                     (try
                        while true do
                          let _ = input_line ic in
                          Thread.delay delay;
                          output_string oc
                            {|{"version":"slow","status":"ok","result":{"from":"slow"}}|};
                          output_char oc '\n';
                          flush oc
                        done
                      with _ -> ());
                     try Unix.close c with Unix.Unix_error _ -> ())
                   ())
          | exception Unix.Unix_error _ -> ()
        done)
      ()
  in
  let stop () =
    if not (Atomic.exchange stopping true) then begin
      (let w = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect w (Unix.ADDR_UNIX path)
        with Unix.Unix_error _ -> ());
       try Unix.close w with Unix.Unix_error _ -> ());
      Thread.join th;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Sys.file_exists path then Sys.remove path
    end
  in
  (path, stop)

(* --- router ------------------------------------------------------------------ *)

let test_router_routes_and_caches () =
  with_fleet ~n:3 (fun rpath r _shards ->
      let line = analyze_line (src_of 1) in
      let r1 = request rpath line in
      Alcotest.(check string) "first ok" "ok" (field r1 "status");
      Alcotest.(check string) "first misses" "miss" (field r1 "cache");
      (* The replay routes to the same shard, whose result cache hits. *)
      let r2 = request rpath line in
      Alcotest.(check string) "replay ok" "ok" (field r2 "status");
      Alcotest.(check string) "replay hits its shard's cache" "hit"
        (field r2 "cache");
      (* Router-local ops answer without touching a shard. *)
      Alcotest.(check string) "ping" "ok"
        (field (request rpath {|{"op":"ping"}|}) "status");
      let stats = Router.stats_json r in
      Alcotest.(check bool) "stats counts routed requests" true
        (J.get_int "routed" stats >= 2);
      (* Version mismatches are rejected at the router, pre-routing. *)
      Alcotest.(check string) "proto mismatch rejected at the router"
        "unsupported_protocol"
        (field (request rpath {|{"proto":777,"op":"ping"}|}) "status"))

let test_router_hedges_past_slow_shard () =
  let slow_path, stop_slow = start_slow_shard 2.0 in
  Fun.protect ~finally:stop_slow (fun () ->
      let live = start_shard "live" in
      Fun.protect
        ~finally:(fun () -> stop_shard live)
        (fun () ->
          let rpath = sock_path () in
          let targets =
            [ { Router.t_name = "slow"; t_addr = Server.Unix_sock slow_path };
              { Router.t_name = "live";
                t_addr = Server.Unix_sock live.sp_path } ]
          in
          let cfg =
            { (Router.default_config ~addr:(Server.Unix_sock rpath)
                 ~shards:targets)
              with
              hedge_ms = Some 25.0
            }
          in
          let r = Router.create cfg in
          let rth = Thread.create Router.run r in
          Fun.protect
            ~finally:(fun () ->
              Router.stop r;
              Thread.join rth;
              if Sys.file_exists rpath then Sys.remove rpath)
            (fun () ->
              let ring =
                Ring.create ~vnodes:cfg.Router.vnodes [ "slow"; "live" ]
              in
              let src = src_with_primary ring "slow" in
              let t0 = Unix.gettimeofday () in
              let resp = request rpath (analyze_line src) in
              let dt = Unix.gettimeofday () -. t0 in
              Alcotest.(check string) "hedged request answers ok" "ok"
                (field resp "status");
              (* The winning response is the live server's, not the
                 straggler's canned payload. *)
              Alcotest.(check string) "live shard won"
                Ogc_server.Version.version (field resp "version");
              Alcotest.(check bool)
                (Printf.sprintf "answered before the straggler (%.0fms)"
                   (dt *. 1000.0))
                true (dt < 1.5);
              let stats = Router.stats_json r in
              Alcotest.(check bool) "hedge counted" true
                (J.get_int "hedged" stats >= 1);
              Alcotest.(check bool) "hedge win counted" true
                (J.get_int "hedge_wins" stats >= 1))))

let test_router_fails_over_dead_shard () =
  let live = start_shard "live" in
  Fun.protect
    ~finally:(fun () -> stop_shard live)
    (fun () ->
      let rpath = sock_path () in
      let dead_path = sock_path () in
      (* never bound: connects fail immediately *)
      let targets =
        [ { Router.t_name = "dead"; t_addr = Server.Unix_sock dead_path };
          { Router.t_name = "live"; t_addr = Server.Unix_sock live.sp_path } ]
      in
      let cfg =
        Router.default_config ~addr:(Server.Unix_sock rpath) ~shards:targets
      in
      let r = Router.create cfg in
      let rth = Thread.create Router.run r in
      Fun.protect
        ~finally:(fun () ->
          Router.stop r;
          Thread.join rth;
          if Sys.file_exists rpath then Sys.remove rpath)
        (fun () ->
          let ring = Ring.create ~vnodes:cfg.Router.vnodes [ "dead"; "live" ] in
          let src = src_with_primary ring "dead" in
          let resp = request rpath (analyze_line src) in
          Alcotest.(check string) "failover answers ok" "ok"
            (field resp "status");
          Alcotest.(check bool) "failover counted" true
            (J.get_int "failovers" (Router.stats_json r) >= 1)))

let test_router_replicates_hot_keys () =
  with_fleet ~n:3
    ~router_cfg:(fun c -> { c with Router.promote_after = 2; replicas = 2 })
    (fun rpath r shards ->
      let line = analyze_line (src_of 2) in
      for _ = 1 to 3 do
        Alcotest.(check string) "hot request ok" "ok"
          (field (request rpath line) "status")
      done;
      Alcotest.(check bool) "promotion counted" true
        (J.get_int "promotions" (Router.stats_json r) >= 1);
      (* The replicate runs off the request path; poll the shards until
         some replica has accepted the put. *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec poll () =
        let puts =
          List.fold_left
            (fun acc sp ->
              acc
              + J.get_int "puts"
                  (J.member "replication" (Server.stats_json sp.sp_t)))
            0 shards
        in
        if puts >= 1 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "no shard accepted a replica put within 5s"
        else begin
          Thread.delay 0.02;
          poll ()
        end
      in
      poll ())

(* --- distributed tracing (the acceptance criterion) -------------------------- *)

module Span = Ogc_obs.Span
module Flight = Ogc_obs.Flight

(* A hedged request against a deliberately slowed primary must leave one
   connected trace: the router's request span, both shard attempts, the
   winning shard's request span, its pool-worker execution and the
   nested pass spans, all under the client's trace id, with every
   flow-finish resolving to a flow-start.  Shards here are in-process
   threads, so the whole fleet shares one ring set and [Span.export]
   sees all sides at once. *)
let test_hedged_request_one_connected_trace () =
  Span.reset ();
  Flight.reset ();
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.reset ();
      Flight.reset ())
  @@ fun () ->
  let slow_path, stop_slow = start_slow_shard 2.0 in
  Fun.protect ~finally:stop_slow @@ fun () ->
  let live = start_shard "live" in
  Fun.protect ~finally:(fun () -> stop_shard live) @@ fun () ->
  let rpath = sock_path () in
  let targets =
    [ { Router.t_name = "slow"; t_addr = Server.Unix_sock slow_path };
      { Router.t_name = "live"; t_addr = Server.Unix_sock live.sp_path } ]
  in
  let cfg =
    { (Router.default_config ~addr:(Server.Unix_sock rpath) ~shards:targets)
      with hedge_ms = Some 25.0 }
  in
  let r = Router.create cfg in
  let rth = Thread.create Router.run r in
  Fun.protect
    ~finally:(fun () ->
      Router.stop r;
      Thread.join rth;
      if Sys.file_exists rpath then Sys.remove rpath)
  @@ fun () ->
  let ring = Ring.create ~vnodes:cfg.Router.vnodes [ "slow"; "live" ] in
  let src = src_with_primary ring "slow" in
  let trace = "t-accept" in
  let line =
    J.to_string ~indent:false
      (J.Obj
         [ ("proto", J.Int Protocol.proto_version);
           ("source", J.Str src);
           ("pass", J.Str "vrp");
           ("trace_id", J.Str trace) ])
  in
  let resp = request rpath line in
  Alcotest.(check string) "hedged traced request ok" "ok"
    (field resp "status");
  Alcotest.(check string) "live shard won" Ogc_server.Version.version
    (field resp "version");
  let events =
    match J.member "traceEvents" (Span.export ()) with
    | J.Arr evs -> evs
    | _ -> Alcotest.fail "no traceEvents"
  in
  let begins_of_trace =
    List.filter_map
      (fun e ->
        match (J.member "ph" e, J.member "name" e, J.member "args" e) with
        | J.Str "B", J.Str name, args
          when J.member "trace_id" args = J.Str trace ->
          Some (name, args)
        | _ -> None)
      events
  in
  let count name =
    List.length (List.filter (fun (n, _) -> n = name) begins_of_trace)
  in
  (* Router request span, both attempts (primary to the straggler, the
     winning hedge), the live shard's request span, its pool-worker
     execution and the nested pass chain — all one trace id. *)
  Alcotest.(check bool) "router and shard request spans" true
    (count "request" >= 2);
  Alcotest.(check int) "both shard attempts traced" 2 (count "attempt");
  Alcotest.(check bool) "pool-worker execution traced" true
    (count "pool:task" >= 1);
  Alcotest.(check bool) "analyze traced" true (count "analyze" >= 1);
  Alcotest.(check bool) "nested pass spans traced" true
    (List.exists
       (fun (n, _) ->
         String.length n > 5 && String.sub n 0 5 = "pass:")
       begins_of_trace);
  (* Attempt spans nest under the router's request span. *)
  let request_sids =
    List.filter_map
      (fun (n, args) ->
        if n = "request" then
          match J.member "span_id" args with J.Int i -> Some i | _ -> None
        else None)
      begins_of_trace
  in
  List.iter
    (fun (n, args) ->
      if n = "attempt" then
        match J.member "parent_span" args with
        | J.Int p ->
          Alcotest.(check bool) "attempt nests under a request span" true
            (List.mem p request_sids)
        | _ -> Alcotest.fail "attempt span lacks parent_span")
    begins_of_trace;
  (* Flow events connect the processes: every finish resolves to a
     start (the straggler's start may dangle — its canned shard emits
     nothing — but nothing resolves from nowhere). *)
  let flow_ids ph =
    List.filter_map
      (fun e ->
        if J.member "ph" e = J.Str ph then
          match J.member "id" e with J.Int i -> Some i | _ -> None
        else None)
      events
  in
  let outs = flow_ids "s" and ins = flow_ids "f" in
  Alcotest.(check bool) "winner's wire flow resolved" true
    (ins <> [] && List.for_all (fun i -> List.mem i outs) ins);
  (* The router's flight record ties the planes together. *)
  let fr =
    List.find_opt
      (fun fr ->
        fr.Flight.f_shard = "router" && fr.Flight.f_trace = Some trace)
      (Flight.snapshot ())
  in
  (match fr with
  | Some fr ->
    Alcotest.(check string) "flight op" "analyze" fr.Flight.f_op;
    Alcotest.(check bool) "flight marks the hedge" true fr.Flight.f_hedged;
    Alcotest.(check string) "flight outcome" "ok" fr.Flight.f_outcome
  | None -> Alcotest.fail "no router flight record for the trace");
  (* The trace op assembles router + reachable shards into one document
     ogc trace --fleet can merge. *)
  let tresp = request rpath {|{"proto":1,"op":"trace"}|} in
  Alcotest.(check string) "trace op ok" "ok" (field tresp "status");
  let procs =
    match J.member "processes" (J.member "result" (J.of_string tresp)) with
    | J.Arr ps ->
      List.filter_map
        (fun p ->
          match (J.member "name" p, J.member "trace" p) with
          | J.Str n, t -> Some (n, t)
          | _ -> None)
        ps
    | _ -> Alcotest.fail "trace op returned no processes"
  in
  Alcotest.(check bool) "router heads the process list" true
    (match procs with ("router", _) :: _ -> true | _ -> false);
  Alcotest.(check bool) "live shard's rings included" true
    (List.mem_assoc "live" procs);
  (match J.member "traceEvents" (Span.merge_processes procs) with
  | J.Arr evs ->
    Alcotest.(check bool) "merged document has events" true (evs <> [])
  | _ -> Alcotest.fail "merge produced no traceEvents");
  (* And the flight op returns the ring. *)
  let fresp = request rpath {|{"proto":1,"op":"flight"}|} in
  Alcotest.(check string) "flight op ok" "ok" (field fresp "status");
  match J.member "total" (J.member "result" (J.of_string fresp)) with
  | J.Int n -> Alcotest.(check bool) "flight ring populated" true (n >= 1)
  | _ -> Alcotest.fail "flight op returned no total"

(* Tracing off (the default), the router forwards the client's request
   line byte-for-byte — the wire traffic is identical to the seed's. *)
let test_untraced_wire_bytes_unchanged () =
  Alcotest.(check bool) "spans disabled" false (Span.enabled ());
  let captured = ref [] in
  let cap_m = Mutex.create () in
  let path, stop =
    let path = sock_path () in
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    if Sys.file_exists path then Unix.unlink path;
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 4;
    let stopping = Atomic.make false in
    let th =
      Thread.create
        (fun () ->
          while not (Atomic.get stopping) do
            match Unix.accept fd with
            | c, _ ->
              if Atomic.get stopping then (
                try Unix.close c with Unix.Unix_error _ -> ())
              else
                ignore
                  (Thread.create
                     (fun () ->
                       let ic = Unix.in_channel_of_descr c in
                       let oc = Unix.out_channel_of_descr c in
                       (try
                          while true do
                            let l = input_line ic in
                            Mutex.lock cap_m;
                            captured := l :: !captured;
                            Mutex.unlock cap_m;
                            output_string oc
                              {|{"version":"echo","status":"ok","result":{}}|};
                            output_char oc '\n';
                            flush oc
                          done
                        with _ -> ());
                       try Unix.close c with Unix.Unix_error _ -> ())
                     ())
            | exception Unix.Unix_error _ -> ()
          done)
        ()
    in
    ( path,
      fun () ->
        if not (Atomic.exchange stopping true) then begin
          (let w = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
           (try Unix.connect w (Unix.ADDR_UNIX path)
            with Unix.Unix_error _ -> ());
           try Unix.close w with Unix.Unix_error _ -> ());
          Thread.join th;
          (try Unix.close fd with Unix.Unix_error _ -> ());
          if Sys.file_exists path then Sys.remove path
        end )
  in
  Fun.protect ~finally:stop @@ fun () ->
  let rpath = sock_path () in
  let cfg =
    Router.default_config ~addr:(Server.Unix_sock rpath)
      ~shards:[ { Router.t_name = "echo"; t_addr = Server.Unix_sock path } ]
  in
  let r = Router.create cfg in
  let rth = Thread.create Router.run r in
  Fun.protect
    ~finally:(fun () ->
      Router.stop r;
      Thread.join rth;
      if Sys.file_exists rpath then Sys.remove rpath)
  @@ fun () ->
  let line = analyze_line (src_of 5) in
  ignore (request rpath line);
  Alcotest.(check (list string)) "forwarded byte-identically" [ line ]
    !captured

(* --- loadgen ----------------------------------------------------------------- *)

let test_loadgen_stream_is_deterministic () =
  let cfg =
    { (Loadgen.default_config ~addr:(Server.Unix_sock "/tmp/unused.sock"))
      with
      requests = 200;
      warm_ratio = 0.6
    }
  in
  let lines = List.init 200 (Loadgen.request_line cfg) in
  let lines' = List.init 200 (Loadgen.request_line cfg) in
  Alcotest.(check (list string)) "stream is a pure function of the seed"
    lines lines';
  (* Warm replays are byte-identical to earlier requests, so at this
     warm ratio the stream must contain duplicates. *)
  let distinct = List.length (List.sort_uniq String.compare lines) in
  Alcotest.(check bool)
    (Printf.sprintf "warm replays duplicate lines (%d distinct)" distinct)
    true
    (distinct < 200);
  (* Every line parses as a protocol-correct analyze op. *)
  List.iter
    (fun l ->
      match Protocol.op_of_json (J.of_string l) with
      | Protocol.Analyze _ -> ()
      | _ -> Alcotest.fail "loadgen emitted a non-analyze op")
    lines

let test_loadgen_survives_shard_kill () =
  with_fleet ~n:3 (fun rpath _r shards ->
      let victim = List.hd shards in
      let cfg =
        { (Loadgen.default_config ~addr:(Server.Unix_sock rpath)) with
          requests = 60;
          clients = 2;
          warm_ratio = 0.5;
          retries = 8;
          backoff_ms = 20 }
      in
      let killed = Atomic.make false in
      let report =
        Loadgen.run
          ~kill:
            ( 15,
              fun () ->
                Atomic.set killed true;
                Server.stop victim.sp_t )
          cfg
      in
      Alcotest.(check bool) "kill fired mid-run" true (Atomic.get killed);
      Alcotest.(check int) "all submissions completed" 60
        report.Loadgen.total;
      Alcotest.(check int) "zero failed submissions" 0
        report.Loadgen.failed;
      Alcotest.(check int) "every submission answered ok" 60
        report.Loadgen.ok;
      Alcotest.(check bool) "latency percentiles populated" true
        (report.Loadgen.p50_ms > 0.0
        && report.Loadgen.p95_ms >= report.Loadgen.p50_ms))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "fleet"
    [ ("ring",
       [ Alcotest.test_case "basics" `Quick test_ring_basics;
         qt prop_ring_balance;
         qt prop_ring_join_movement;
         qt prop_ring_leave_movement;
         qt prop_ring_join_moves_fair_share ]);
      ("router",
       [ Alcotest.test_case "routes and caches" `Quick
           test_router_routes_and_caches;
         Alcotest.test_case "hedges past a slow shard" `Quick
           test_router_hedges_past_slow_shard;
         Alcotest.test_case "fails over a dead shard" `Quick
           test_router_fails_over_dead_shard;
         Alcotest.test_case "replicates hot keys" `Quick
           test_router_replicates_hot_keys ]);
      ("tracing",
       [ Alcotest.test_case "untraced wire bytes unchanged" `Quick
           test_untraced_wire_bytes_unchanged;
         Alcotest.test_case "hedged request leaves one connected trace"
           `Quick test_hedged_request_one_connected_trace ]);
      ("loadgen",
       [ Alcotest.test_case "deterministic stream" `Quick
           test_loadgen_stream_is_deterministic;
         Alcotest.test_case "survives a shard kill" `Quick
           test_loadgen_survives_shard_kill ]) ]
