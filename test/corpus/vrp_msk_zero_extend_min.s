# Minimal distillation of vrp_msk_zero_extend.s: VRP seeded the useful
# width of a msk def from the signed interval width, but a narrowed msk
# ZERO-extends.  [-29712] fits W16 signed, so msk64 was re-encoded as
# msk16 and the emitted value flipped to 35824 (= -29712 + 2^16).
# Sound narrowing for msk must use the unsigned width of the result.
# replay: every registered chain must leave the emitted stream intact

func main(0) frame=0
L0:
  [   0] li #-29712, r10
  [   1] msk64 r10, r10
  [   2] emit r10
  [   3] li #0, r0
  [   4] ret
