lib/ir/usedef.mli: Cfg Hashtbl Ogc_isa Prog Reg
