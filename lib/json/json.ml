type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- printing ------------------------------------------------------------- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* 17 significant digits round-trip any finite double; JSON has no
   infinities or NaNs, so clamp those to null like most emitters.  A
   float token must keep a '.' or exponent, otherwise an integer-valued
   double (e.g. 1e15, whose %.17g form is a bare digit string) would
   re-parse as an [Int] and break the round-trip. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else begin
    let s = Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  end

let to_string ?(indent = true) v =
  let b = Buffer.create 4096 in
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char b '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
      if Float.is_nan f || Float.abs f = Float.infinity then
        Buffer.add_string b "null"
      else Buffer.add_string b (float_repr f)
    | Str s -> escape b s
    | Arr [] -> Buffer.add_string b "[]"
    | Arr xs ->
      Buffer.add_char b '[';
      nl ();
      List.iteri
        (fun i x ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) x)
        xs;
      nl ();
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      Buffer.add_char b '{';
      nl ();
      List.iteri
        (fun i (k, x) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (depth + 1);
          escape b k;
          Buffer.add_char b ':';
          if indent then Buffer.add_char b ' ';
          go (depth + 1) x)
        kvs;
      nl ();
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 v;
  if indent then Buffer.add_char b '\n';
  Buffer.contents b

(* --- parsing -------------------------------------------------------------- *)

type state = { s : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    &&
    match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word v =
  if
    st.pos + String.length word <= String.length st.s
    && String.sub st.s st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    v
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents b
    | '\\' ->
      if st.pos >= String.length st.s then fail st "unterminated escape";
      let e = st.s.[st.pos] in
      st.pos <- st.pos + 1;
      (match e with
      | '"' -> Buffer.add_char b '"'
      | '\\' -> Buffer.add_char b '\\'
      | '/' -> Buffer.add_char b '/'
      | 'b' -> Buffer.add_char b '\b'
      | 'f' -> Buffer.add_char b '\012'
      | 'n' -> Buffer.add_char b '\n'
      | 'r' -> Buffer.add_char b '\r'
      | 't' -> Buffer.add_char b '\t'
      | 'u' ->
        if st.pos + 4 > String.length st.s then fail st "bad \\u escape";
        let hex = String.sub st.s st.pos 4 in
        st.pos <- st.pos + 4;
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail st "bad \\u escape"
        in
        (* Only the byte range is produced by our own printer. *)
        if code < 0x100 then Buffer.add_char b (Char.chr code)
        else fail st "unsupported \\u escape beyond latin-1"
      | _ -> fail st "bad escape");
      go ()
    | c -> Buffer.add_char b c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.s && is_num_char st.s.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let tok = String.sub st.s start (st.pos - start) in
  match int_of_string_opt tok with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt tok with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "bad number %S" tok))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    expect st '{';
    skip_ws st;
    if peek st = Some '}' then begin
      expect st '}';
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          expect st ',';
          members ((k, v) :: acc)
        | Some '}' ->
          expect st '}';
          List.rev ((k, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some '[' ->
    expect st '[';
    skip_ws st;
    if peek st = Some ']' then begin
      expect st ']';
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          expect st ',';
          elements (v :: acc)
        | Some ']' ->
          expect st ']';
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      Arr (elements [])
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* --- accessors ------------------------------------------------------------ *)

let member k = function
  | Obj kvs -> ( match List.assoc_opt k kvs with Some v -> v | None -> Null)
  | _ -> Null

let shape_error k what =
  raise (Parse_error (Printf.sprintf "member %S: expected %s" k what))

let get_int k v =
  match member k v with Int i -> i | _ -> shape_error k "an integer"

let get_float k v =
  match member k v with
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> shape_error k "a number"

let get_string k v =
  match member k v with Str s -> s | _ -> shape_error k "a string"

let get_bool k v =
  match member k v with Bool b -> b | _ -> shape_error k "a boolean"

let get_list k v =
  match member k v with Arr xs -> xs | _ -> shape_error k "an array"
