lib/workloads/w_compress.ml: Printf
