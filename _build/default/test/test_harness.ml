(* Harness tests: rendering helpers and a single-workload quick collection
   exercising every experiment renderer end-to-end. *)

module Render = Ogc_harness.Render
module Results = Ogc_harness.Results
module Experiments = Ogc_harness.Experiments

let test_render_table () =
  let t =
    Render.table ~header:[ "Name"; "Value" ]
      [ [ "alpha"; "1" ]; [ "b"; "22222" ] ]
  in
  let lines = String.split_on_char '\n' t in
  (* header + rule + 2 rows + trailing newline -> 5 split fields *)
  Alcotest.(check int) "five split fields" 5 (List.length lines);
  Alcotest.(check bool) "header padded" true
    (String.length (List.nth lines 0) = String.length (List.nth lines 1));
  Alcotest.(check bool) "numeric right-aligned" true
    (let row = List.nth lines 3 in
     String.length row > 0 && row.[String.length row - 1] = '2')

let test_render_pct_bar () =
  Alcotest.(check string) "pct" "12.3%" (Render.pct 0.1234);
  Alcotest.(check string) "negative pct" "-5.0%" (Render.pct (-0.05));
  Alcotest.(check string) "bar half" "#####" (Render.bar 0.5 ~scale:1.0 ~width:10);
  Alcotest.(check string) "bar clamped" "##########"
    (Render.bar 2.0 ~scale:1.0 ~width:10);
  Alcotest.(check string) "bar empty" "" (Render.bar (-1.0) ~scale:1.0 ~width:10);
  Alcotest.(check bool) "heading underlined" true
    (String.length (Render.heading "Hi") > 3)

let test_experiment_registry () =
  Alcotest.(check int) "3 tables + 14 figures" 17
    (List.length Experiments.all);
  Alcotest.(check string) "first" "table1" (List.hd Experiments.all).Experiments.id;
  Alcotest.(check string) "last" "fig15"
    (List.nth Experiments.all 16).Experiments.id;
  Alcotest.(check bool) "find" true
    (String.equal (Experiments.find "fig12").Experiments.id "fig12")

let test_vrs_cost_labels () =
  Alcotest.(check (list int)) "paper sweep" [ 110; 90; 70; 50; 30 ]
    Results.vrs_costs;
  Alcotest.(check bool) "costs decrease with labels" true
    (Results.test_cost_of_label 30 < Results.test_cost_of_label 110)

(* One workload, quick mode: end-to-end through every renderer. *)
let test_quick_collection () =
  let res = Results.collect ~quick:true ~only:[ "m88ksim" ] () in
  Alcotest.(check int) "one workload" 1 (List.length res.Results.workloads);
  let w = List.hd res.Results.workloads in
  (* Gating never changes timing. *)
  Alcotest.(check int) "hw gating keeps cycles"
    w.Results.base_none.Ogc_cpu.Pipeline.cycles
    w.Results.base_hwsig.Ogc_cpu.Pipeline.cycles;
  (* Energy orderings that must always hold. *)
  let e (s : Ogc_cpu.Pipeline.stats) = Results.total_energy s in
  Alcotest.(check bool) "VRP saves energy" true (e w.Results.vrp_sw < e w.Results.base_none);
  Alcotest.(check bool) "hw saves energy" true
    (e w.Results.base_hwsig < e w.Results.base_none);
  Alcotest.(check bool) "cooperative beats software alone" true
    (e w.Results.vrp_sig < e w.Results.vrp_sw);
  (* Width distributions are distributions. *)
  let dist = Results.width_distribution w.Results.vrp_sw in
  let total = List.fold_left (fun a (_, f) -> a +. f) 0.0 dist in
  Alcotest.(check bool) "sums to 1" true (abs_float (total -. 1.0) < 1e-6);
  (* Every renderer produces non-empty output containing its own rows. *)
  List.iter
    (fun (exp : Experiments.experiment) ->
      let out = exp.Experiments.render res in
      Alcotest.(check bool) (exp.Experiments.id ^ " renders") true
        (String.length out > 40))
    Experiments.all;
  (* Headline numbers are in plausible bands. *)
  let h = Experiments.headline res in
  Alcotest.(check bool) "vrp energy in (0, 0.5)" true
    (h.Experiments.vrp_energy > 0.0 && h.Experiments.vrp_energy < 0.5);
  Alcotest.(check bool) "cooperative beats vrp alone" true
    (h.Experiments.combined_ed2 > h.Experiments.vrp_ed2);
  Alcotest.(check bool) "headline renders" true
    (String.length (Experiments.render_headline h) > 100)

let () =
  Alcotest.run "harness"
    [
      ( "render",
        [
          Alcotest.test_case "table" `Quick test_render_table;
          Alcotest.test_case "pct/bar" `Quick test_render_pct_bar;
          Alcotest.test_case "registry" `Quick test_experiment_registry;
          Alcotest.test_case "cost labels" `Quick test_vrs_cost_labels;
        ] );
      ( "collection",
        [ Alcotest.test_case "quick single workload" `Slow test_quick_collection ]
      );
    ]
