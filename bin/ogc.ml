(* ogc — the software-controlled operand-gating toolchain driver.

   Subcommands:
     compile    compile a MiniC file (or named workload) and dump the IR
     run        execute a program in the reference interpreter
     vrp        run value range propagation and report widths
     vrs        run value range specialization and report what happened
     analyze    run a named pass chain (see `ogc passes`)
     passes     list the registered analysis passes
     sim        simulate on the Table 2 machine with a gating policy
     report     regenerate the paper's tables and figures
     workloads  list the benchmark suite *)

open Cmdliner
module Minic = Ogc_minic.Minic
module Prog = Ogc_ir.Prog
module Interp = Ogc_ir.Interp
module Vrp = Ogc_core.Vrp
module Vrs = Ogc_core.Vrs
module Workload = Ogc_workloads.Workload
module Regalloc = Ogc_regalloc.Regalloc
module Pipeline = Ogc_cpu.Pipeline
module Policy = Ogc_gating.Policy
module Account = Ogc_energy.Account
module Json = Ogc_json.Json
module Metrics = Ogc_obs.Metrics
module Span = Ogc_obs.Span
module Log = Ogc_obs.Log

(* --- program loading ---------------------------------------------------- *)

(* Loads a program and, when the spec goes through the MiniC compiler,
   the register allocator's report.  A .s file holds already-allocated
   code, so it has no report. *)
let load_program_with_alloc spec input =
  if Sys.file_exists spec then begin
    let ic = open_in_bin spec in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    (* .s files hold the assembly save format; anything else is MiniC. *)
    if Filename.check_suffix spec ".s" then begin
      let p = try Ogc_ir.Asm.parse src with Ogc_ir.Asm.Error m -> failwith m in
      Ogc_ir.Validate.program p;
      (p, None)
    end
    else
      let p, info = Minic.compile_with_info src in
      (p, Some info)
  end
  else
    match Workload.find spec with
    | w ->
      let p, info = Workload.compile_with_alloc w input in
      (p, Some info)
    | exception Not_found ->
      Fmt.failwith
        "%s is neither a file nor a workload (try `ogc workloads`)" spec

let load_program spec input = fst (load_program_with_alloc spec input)

let save_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE.s"
           ~doc:"Write the (possibly transformed) program in the assembly \
                 save format; it can be fed back to any subcommand.")

let maybe_save out p =
  match out with
  | None -> ()
  | Some path ->
    let oc = open_out_bin path in
    output_string oc (Ogc_ir.Asm.to_string p);
    close_out oc;
    Fmt.epr "wrote %s@." path

let program_arg =
  let doc =
    "MiniC source file, or the name of a built-in workload (see $(b,ogc \
     workloads))."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let input_arg =
  let doc = "Input scale for workloads: $(b,train) or $(b,ref)." in
  let input_conv =
    Arg.enum [ ("train", Workload.Train); ("ref", Workload.Ref) ]
  in
  Arg.(value & opt input_conv Workload.Train
       & info [ "input" ] ~docv:"INPUT" ~doc)

let wrap f =
  try f () with
  | Minic.Error msg | Failure msg ->
    Fmt.epr "error: %s@." msg;
    exit 1
  | Interp.Fault msg ->
    Fmt.epr "runtime fault: %s@." msg;
    exit 2

(* --- compile -------------------------------------------------------------- *)

let compile_cmd =
  let run spec input out =
    wrap (fun () ->
        let p = load_program spec input in
        maybe_save out p;
        if out = None then Format.printf "%a@." Prog.pp p)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile and dump the Alpha-like IR")
    Term.(const run $ program_arg $ input_arg $ save_arg)

(* --- run ------------------------------------------------------------------- *)

let run_cmd =
  let run spec input =
    wrap (fun () ->
        let p = load_program spec input in
        let out = Interp.run p in
        List.iter (fun v -> Format.printf "emit: %Ld@." v) out.Interp.emitted;
        Format.printf "checksum: %Ld@." out.Interp.checksum;
        Format.printf "dynamic instructions: %d@." out.Interp.steps)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute in the reference interpreter")
    Term.(const run $ program_arg $ input_arg)

(* --- vrp -------------------------------------------------------------------- *)

let vrp_cmd =
  let conventional =
    Arg.(value & flag
         & info [ "conventional" ]
             ~doc:"Disable useful-range propagation (the Figure 2 baseline).")
  in
  let paper_literal =
    Arg.(value & flag
         & info [ "paper-literal" ]
             ~doc:"Forbid useful-width propagation through arithmetic (§2.2.5).")
  in
  let dump =
    Arg.(value & flag & info [ "dump" ] ~doc:"Dump the re-encoded program.")
  in
  let run spec input conventional paper_literal dump out =
    wrap (fun () ->
        let p = load_program spec input in
        let config =
          if conventional then Vrp.conventional_config
          else if paper_literal then
            { Vrp.default_config with useful_through_arith = false }
          else Vrp.default_config
        in
        let before = Interp.run p in
        let res = Vrp.run ~config p in
        let after = Interp.run p in
        assert (Int64.equal before.Interp.checksum after.Interp.checksum);
        maybe_save out p;
        Format.printf "%a@." Vrp.pp_summary res;
        (* The paper's syntactic trip-count analysis (§2.3), for
           comparison with the widening-based bounds. *)
        List.iter
          (fun (f : Prog.func) ->
            List.iter
              (fun (lo : Ogc_core.Tripcount.affine_loop) ->
                Format.printf
                  "affine loop in %s at L%d: iterator %a, %d iterations, range %s@."
                  f.Prog.fname
                  (Ogc_ir.Label.to_int lo.Ogc_core.Tripcount.header)
                  Ogc_isa.Reg.pp lo.Ogc_core.Tripcount.iterator
                  lo.Ogc_core.Tripcount.trip_count
                  (Ogc_core.Interval.to_string
                     lo.Ogc_core.Tripcount.iterator_range))
              (Ogc_core.Tripcount.analyze f))
          p.Prog.funcs;
        if dump then Format.printf "%a@." Prog.pp p)
  in
  Cmd.v
    (Cmd.info "vrp" ~doc:"Run value range propagation and re-encode widths")
    Term.(const run $ program_arg $ input_arg $ conventional $ paper_literal
          $ dump $ save_arg)

(* --- vrs -------------------------------------------------------------------- *)

let vrs_cmd =
  let cost =
    Arg.(value & opt int 50
         & info [ "cost" ] ~docv:"NJ"
             ~doc:"Specialization cost configuration (the paper's 30-110 sweep).")
  in
  let run spec _input cost out =
    wrap (fun () ->
        (* VRS trains on the train scale and evaluates on ref, like the
           harness. *)
        let p = load_program spec Workload.Train in
        let cfg =
          { Vrs.default_config with
            test_cost_nj = Ogc_harness.Results.test_cost_of_label cost }
        in
        let rep = Vrs.run ~config:cfg p in
        let s, d, n =
          List.fold_left
            (fun (s, d, n) (_, o) ->
              match o with
              | Vrs.Specialized _ -> (s + 1, d, n)
              | Vrs.Dependent_on_other -> (s, d + 1, n)
              | Vrs.No_benefit -> (s, d, n + 1))
            (0, 0, 0) rep.Vrs.profiled
        in
        maybe_save out p;
        Format.printf
          "profiled %d points: %d specialized, %d dependent, %d without benefit@."
          (s + d + n) s d n;
        Format.printf "cloned %d static instructions, eliminated %d@."
          rep.Vrs.static_cloned rep.Vrs.static_eliminated;
        List.iter
          (fun (iid, o) ->
            match o with
            | Vrs.Specialized { lo; hi; freq; benefit } ->
              Format.printf "  point %d: range [%Ld,%Ld] freq %.2f benefit %.0f@."
                iid lo hi freq benefit
            | _ -> ())
          rep.Vrs.profiled)
  in
  Cmd.v
    (Cmd.info "vrs" ~doc:"Run value range specialization (profile + clone)")
    Term.(const run $ program_arg $ input_arg $ cost $ save_arg)

(* --- sim -------------------------------------------------------------------- *)

let policy_arg =
  let policy_conv =
    Arg.enum (List.map (fun p -> (Policy.name p, p)) Policy.all)
  in
  Arg.(value & opt policy_conv Policy.No_gating
       & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Gating policy: none, sw, hw-significance, hw-size, \
                 sw+significance, sw+size.")

let sim_cmd =
  let optimize =
    Arg.(value & opt (enum [ ("none", `None); ("vrp", `Vrp); ("vrs", `Vrs) ])
           `None
         & info [ "optimize" ] ~docv:"PASS"
             ~doc:"Software pass to apply first: none, vrp or vrs.")
  in
  let run spec input policy optimize =
    wrap (fun () ->
        let p = load_program spec input in
        (match optimize with
        | `None -> ()
        | `Vrp -> ignore (Vrp.run p)
        | `Vrs ->
          Workload.set_scale p Workload.Train;
          ignore (Vrs.run p);
          Workload.set_scale p input);
        let s = Pipeline.simulate ~policy p in
        Format.printf "instructions : %d@." s.Pipeline.instructions;
        Format.printf "cycles       : %d (IPC %.2f)@." s.Pipeline.cycles
          (Pipeline.ipc s);
        Format.printf "branches     : %d (%d mispredicted)@." s.Pipeline.branches
          s.Pipeline.mispredictions;
        Format.printf "L1D          : %d accesses, %d misses (%d L2 misses)@."
          s.Pipeline.dcache_accesses s.Pipeline.dcache_misses s.Pipeline.l2_misses;
        Format.printf "energy       : %.0f nJ@."
          (Account.total s.Pipeline.energy);
        List.iter
          (fun (st, e) ->
            Format.printf "  %-18s %12.0f nJ@."
              (Ogc_energy.Energy_params.structure_name st)
              e)
          (Account.by_structure s.Pipeline.energy))
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:"Simulate on the out-of-order Table 2 machine and report energy")
    Term.(const run $ program_arg $ input_arg $ policy_arg $ optimize)

(* --- diff -------------------------------------------------------------------- *)

let diff_cmd =
  let program2 =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"PROGRAM2"
             ~doc:"Second program (same shape: typically the optimized .s)")
  in
  let run spec1 spec2 input =
    wrap (fun () ->
        let p1 = load_program spec1 input in
        let p2 = load_program spec2 input in
        let widths p =
          let h = Hashtbl.create 8 in
          Prog.iter_all_ins p (fun _ _ ins ->
              let w = Ogc_isa.Instr.width ins.Ogc_ir.Prog.op in
              Hashtbl.replace h w
                (1 + Option.value ~default:0 (Hashtbl.find_opt h w)));
          h
        in
        let h1 = widths p1 and h2 = widths p2 in
        Format.printf "static width histogram (%s -> %s):@." spec1 spec2;
        List.iter
          (fun w ->
            let a = Option.value ~default:0 (Hashtbl.find_opt h1 w) in
            let b = Option.value ~default:0 (Hashtbl.find_opt h2 w) in
            Format.printf "  %2s-bit: %5d -> %5d  (%+d)@."
              (Ogc_isa.Width.to_string w) a b (b - a))
          Ogc_isa.Width.all;
        (* Per-instruction narrowings for instructions present in both. *)
        let ops1 = Hashtbl.create 256 in
        Prog.iter_all_ins p1 (fun _ _ ins ->
            Hashtbl.replace ops1 ins.Ogc_ir.Prog.iid ins.Ogc_ir.Prog.op);
        let narrowed = ref 0 and widened = ref 0 and changed = ref 0 in
        Prog.iter_all_ins p2 (fun _ _ ins ->
            match Hashtbl.find_opt ops1 ins.Ogc_ir.Prog.iid with
            | Some op1 ->
              let w1 = Ogc_isa.Instr.width op1
              and w2 = Ogc_isa.Instr.width ins.Ogc_ir.Prog.op in
              let c = Ogc_isa.Width.compare w2 w1 in
              if c < 0 then incr narrowed
              else if c > 0 then incr widened;
              if not (String.equal (Ogc_isa.Instr.to_string op1)
                        (Ogc_isa.Instr.to_string ins.Ogc_ir.Prog.op))
              then incr changed
            | None -> ());
        Format.printf
          "shared instructions: %d narrowed, %d widened, %d textually changed@."
          !narrowed !widened !changed;
        let n1 = Prog.num_static_ins p1 and n2 = Prog.num_static_ins p2 in
        Format.printf "static instructions: %d -> %d (%+d)@." n1 n2 (n2 - n1))
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Compare the width profiles of two versions of a program")
    Term.(const run $ program_arg $ program2 $ input_arg)

(* --- trace ------------------------------------------------------------------- *)

(* ADDR is a Unix socket path, or HOST:PORT when the suffix parses as a
   port and the string has no '/' (same grammar as router --shard). *)
let parse_addr spec =
  if String.contains spec '/' then Ogc_server.Server.Unix_sock spec
  else
    match String.rindex_opt spec ':' with
    | Some i -> (
      let host = String.sub spec 0 i
      and port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | Some port ->
        Ogc_server.Server.Tcp ((if host = "" then "127.0.0.1" else host), port)
      | None -> Ogc_server.Server.Unix_sock spec)
    | None -> Ogc_server.Server.Unix_sock spec

let trace_cmd =
  let count =
    Arg.(value & opt int 40
         & info [ "n" ] ~docv:"N" ~doc:"Number of dynamic events to show.")
  in
  let skip =
    Arg.(value & opt int 0
         & info [ "skip" ] ~docv:"N" ~doc:"Events to skip before printing.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Instead of printing interpreter events, run the whole \
                   pipeline (parse, VRP, VRS, simulate, energy) under span \
                   tracing and write a Chrome trace_event JSON file — open \
                   it at $(b,https://ui.perfetto.dev) or \
                   $(b,chrome://tracing).")
  in
  let fleet =
    Arg.(value & opt (some string) None
         & info [ "fleet" ] ~docv:"ADDR"
             ~doc:"Pull the span rings of a running fleet through its \
                   router's $(i,trace) op (ADDR is the router's Unix \
                   socket path or HOST:PORT; a single $(b,ogc serve) \
                   address also works) and merge router + every shard \
                   into one Perfetto document, written to $(b,--out) or \
                   stdout.  The processes must be running with \
                   $(b,--trace).")
  in
  (* Phase tracing: every pipeline stage runs under an Obs.Span, and the
     merged rings are exported as a Perfetto-loadable flame chart. *)
  let run_phase_trace spec input path =
    Metrics.set_enabled true;
    Span.set_enabled true;
    let p = Span.with_ ~name:"parse" (fun () -> load_program spec input) in
    (* VRS mutates its program (and runs VRP internally), so give it its
       own copy; the simulated binary is the VRP one. *)
    let p_vrs = Prog.copy p in
    ignore (Vrp.run p) (* records the "vrp" span *);
    ignore (Vrs.run p_vrs) (* records "vrs" and its train/profile steps *);
    let stats =
      Pipeline.simulate ~policy:Policy.Software p (* records "simulate" *)
    in
    Span.with_ ~name:"energy" (fun () ->
        let total = Account.total stats.Pipeline.energy in
        let by = Account.by_structure stats.Pipeline.energy in
        Format.printf "energy: %.0f nJ over %d cycles (%d structures)@."
          total stats.Pipeline.cycles (List.length by));
    Span.write path;
    Span.set_enabled false;
    Fmt.epr "wrote %s@." path
  in
  (* Fleet tracing: one [trace] op against the router returns its own
     rings and every reachable shard's; merge them into one document
     with a process track each.  A single serve answers with its bare
     export document — treated as a one-process fleet. *)
  let run_fleet_trace spec out =
    let domain, sockaddr =
      match parse_addr spec with
      | Ogc_server.Server.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
      | Ogc_server.Server.Tcp (host, port) ->
        (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    (try Unix.connect fd sockaddr
     with Unix.Unix_error (e, _, _) ->
       Fmt.failwith "cannot reach %s: %s (is the router up?)" spec
         (Unix.error_message e));
    let oc = Unix.out_channel_of_descr fd in
    let ic = Unix.in_channel_of_descr fd in
    output_string oc
      (Json.to_string ~indent:false
         (Json.Obj
            [ ("proto", Json.Int Ogc_server.Protocol.proto_version);
              ("op", Json.Str "trace") ]));
    output_char oc '\n';
    flush oc;
    let line =
      try input_line ic
      with End_of_file -> Fmt.failwith "server closed the connection"
    in
    let j = Json.of_string line in
    (match Json.member "status" j with
    | Json.Str "ok" -> ()
    | _ -> Fmt.failwith "trace op failed: %s" line);
    let result = Json.member "result" j in
    let procs =
      match Json.member "processes" result with
      | Json.Arr ps ->
        List.filter_map
          (fun p ->
            match (Json.member "name" p, Json.member "trace" p) with
            | Json.Str n, (Json.Obj _ as t) -> Some (n, t)
            | _ -> None)
          ps
      | _ -> (
        match result with
        | Json.Obj _ ->
          let name =
            match Json.member "process" j with Json.Str n -> n | _ -> "serve"
          in
          [ (name, result) ]
        | _ -> Fmt.failwith "malformed trace response: %s" line)
    in
    let merged = Span.merge_processes procs in
    match out with
    | Some path ->
      let oc = open_out_bin path in
      output_string oc (Json.to_string merged);
      close_out oc;
      Fmt.epr "wrote %s (%d processes)@." path (List.length procs)
    | None -> print_endline (Json.to_string merged)
  in
  let program_opt =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"PROGRAM"
             ~doc:"MiniC source file, .s save file, or workload name; \
                   omitted with $(b,--fleet).")
  in
  let run spec input count skip out fleet =
    wrap (fun () ->
        match (fleet, spec) with
        | Some addr, _ -> run_fleet_trace addr out
        | None, None -> Fmt.failwith "a PROGRAM is required unless --fleet"
        | None, Some spec -> (
        match out with
        | Some path -> run_phase_trace spec input path
        | None ->
        let p = load_program spec input in
        let seen = ref 0 in
        let exception Done in
        let show = function
          | Interp.E_ins { iid; op; a; b; result; addr } ->
            if Ogc_isa.Instr.is_mem op then
              Format.printf "%8d  [%4d] %-28s a=%Ld addr=%Ld -> %Ld@." !seen iid
                (Ogc_isa.Instr.to_string op) a addr result
            else
              Format.printf "%8d  [%4d] %-28s a=%Ld b=%Ld -> %Ld@." !seen iid
                (Ogc_isa.Instr.to_string op) a b result
          | Interp.E_branch { iid; taken; value; _ } ->
            Format.printf "%8d  [%4d] branch on %Ld -> %s@." !seen iid value
              (if taken then "taken" else "not taken")
          | Interp.E_jump { iid } -> Format.printf "%8d  [%4d] jump@." !seen iid
          | Interp.E_return { iid } ->
            Format.printf "%8d  [%4d] return@." !seen iid
        in
        let on_event ev =
          if !seen >= skip then show ev;
          incr seen;
          if !seen >= skip + count then raise_notrace Done
        in
        (try ignore (Interp.run ~on_event p) with Done -> ());
        Format.printf "(%d events shown from #%d)@." (min count (!seen - skip))
          skip))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print a window of the dynamic instruction trace, \
             ($(b,--out)) write a Chrome trace_event JSON of the whole \
             pipeline's phase spans, or ($(b,--fleet)) pull and merge a \
             running fleet's distributed trace")
    Term.(const run $ program_opt $ input_arg $ count $ skip $ out $ fleet)

(* --- report ------------------------------------------------------------------ *)

let report_cmd =
  let quick =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"Use train inputs and only the VRS-50 configuration.")
  in
  let only =
    Arg.(value & opt_all string []
         & info [ "only" ] ~docv:"WORKLOAD" ~doc:"Restrict to a workload.")
  in
  let experiment =
    Arg.(value & opt_all string []
         & info [ "experiment" ] ~docv:"ID"
             ~doc:"Render only this table/figure (e.g. fig8); repeatable.")
  in
  let jobs =
    Arg.(value & opt int 0
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains for the collection grid; 0 means auto \
                   ($(b,OGC_JOBS) or the machine's recommended domain \
                   count).")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Also write the collected results as machine-readable \
                   JSON (the bench/CI interchange format).")
  in
  let baseline =
    Arg.(value & opt (some string) None
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"Compare against a previous $(b,--json) file and exit 3 \
                   when any per-workload energy/IPC cell regressed beyond \
                   the tolerance.")
  in
  let max_regression =
    Arg.(value & opt float 5.0
         & info [ "max-regression" ] ~docv:"PCT"
             ~doc:"Regression tolerance for $(b,--baseline), in percent.")
  in
  let run quick only experiment jobs json_out baseline max_regression =
    wrap (fun () ->
        let only = if only = [] then None else Some only in
        (* Read the baseline up front so a bad path/file fails before the
           expensive collection, not after it. *)
        let baseline =
          match baseline with
          | None -> None
          | Some path ->
            let ic = open_in_bin path in
            let n = in_channel_length ic in
            let src = really_input_string ic n in
            close_in ic;
            (try
               Some
                 (path, Ogc_harness.Results.of_json (Json.of_string src))
             with Json.Parse_error msg ->
               Fmt.failwith "bad baseline %s: %s" path msg)
        in
        let res, phases =
          Ogc_harness.Results.collect_timed ~quick ?only ~jobs
            ~progress:(fun s -> Fmt.epr "[%s] %!" s)
            ()
        in
        Fmt.epr "@.";
        let exps =
          if experiment = [] then Ogc_harness.Experiments.all
          else List.map Ogc_harness.Experiments.find experiment
        in
        List.iter
          (fun (e : Ogc_harness.Experiments.experiment) ->
            print_string (Ogc_harness.Render.heading e.title);
            print_string (e.render res);
            print_newline ())
          exps;
        if experiment = [] then
          print_string
            (Ogc_harness.Experiments.render_headline
               (Ogc_harness.Experiments.headline res));
        (match json_out with
        | None -> ()
        | Some path ->
          let oc = open_out_bin path in
          (* Phase timings ride along at the top level; of_json ignores
             unknown members, so old readers and --baseline still work. *)
          let body =
            match Ogc_harness.Results.to_json res with
            | Json.Obj members ->
              Json.Obj
                (members
                 @ [ ("phases",
                      Json.Obj
                        (List.map (fun (n, s) -> (n, Json.Float s)) phases)) ])
            | j -> j
          in
          output_string oc (Json.to_string body);
          close_out oc;
          Fmt.epr "wrote %s@." path);
        match baseline with
        | None -> ()
        | Some (path, base) ->
          let regs =
            Ogc_harness.Results.compare_to_baseline ~time_tolerance:0.5
              ~baseline:base ~current:res
              ~threshold:(max_regression /. 100.0)
          in
          print_string
            (Ogc_harness.Render.heading
               (Printf.sprintf "Regression check vs %s (tolerance %.1f%%)"
                  path max_regression));
          print_string (Ogc_harness.Results.render_regressions regs);
          if regs <> [] then exit 3)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Regenerate the paper's tables and figures on the workload suite")
    Term.(const run $ quick $ only $ experiment $ jobs $ json_out $ baseline
          $ max_regression)

(* --- serve / submit ----------------------------------------------------------- *)

module Server = Ogc_server.Server

let addr_term =
  let socket =
    Arg.(value & opt string "/tmp/ogc.sock"
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix-domain socket to serve on / connect to.")
  in
  let tcp =
    Arg.(value & opt (some string) None
         & info [ "tcp" ] ~docv:"HOST:PORT"
             ~doc:"Serve on / connect to a TCP address instead of the Unix \
                   socket.")
  in
  let combine socket tcp =
    match tcp with
    | None -> Server.Unix_sock socket
    | Some spec -> (
      match String.rindex_opt spec ':' with
      | Some i -> (
        let host = String.sub spec 0 i
        and port = String.sub spec (i + 1) (String.length spec - i - 1) in
        match int_of_string_opt port with
        | Some port -> Server.Tcp ((if host = "" then "127.0.0.1" else host), port)
        | None -> Fmt.failwith "bad --tcp %S (expected HOST:PORT)" spec)
      | None -> Fmt.failwith "bad --tcp %S (expected HOST:PORT)" spec)
  in
  Term.(const combine $ socket $ tcp)

let serve_cmd =
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains for the analysis pool (default: \
                   $(b,OGC_JOBS) or the machine's recommended domain count).")
  in
  let queue_limit =
    Arg.(value & opt int 64
         & info [ "queue-limit" ] ~docv:"N"
             ~doc:"In-flight analyses before the server replies \
                   $(i,overloaded).")
  in
  let cache_size =
    Arg.(value & opt int 256
         & info [ "cache-size" ] ~docv:"N"
             ~doc:"In-memory analysis cache capacity, in entries.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Persist cache entries to DIR so results survive restarts.")
  in
  let shard_id =
    Arg.(value & opt (some string) None
         & info [ "shard-id" ] ~docv:"ID"
             ~doc:"Run as fleet shard ID: namespaces $(b,--cache-dir) as \
                   $(i,DIR/shard-ID) so co-located shards never share \
                   cache files, and tags the $(i,stats) op.")
  in
  let quiet =
    Arg.(value & flag
         & info [ "quiet" ]
             ~doc:"Suppress lifecycle messages (same as \
                   $(b,--log-level=error)).")
  in
  let log_level =
    Arg.(value & opt (some string) None
         & info [ "log-level" ] ~docv:"LEVEL"
             ~doc:"Structured-log threshold: $(b,debug), $(b,info), \
                   $(b,warn) or $(b,error).  Logs are NDJSON on stderr.")
  in
  let trace =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Record request and pass spans; the $(i,trace) op \
                   returns them (see $(b,ogc trace --fleet)).")
  in
  let slow_ms =
    Arg.(value & opt (some float) None
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"Auto-capture: log the flight record (plus the local \
                   span slice of its trace) of any request slower than \
                   MS.")
  in
  let inject_slow_ms =
    Arg.(value & opt (some float) None
         & info [ "inject-slow-ms" ] ~docv:"MS"
             ~doc:"Fault injection: delay every analyze by MS, making \
                   this a deliberately slow shard (hedging and \
                   slow-capture smoke tests).")
  in
  let no_respec =
    Arg.(value & flag
         & info [ "no-respec" ]
             ~doc:"Disable stale-while-revalidate: when a profile push \
                   outdates a cached result, recompute synchronously \
                   instead of serving the previous-epoch artifact and \
                   re-specializing in the background.")
  in
  let run addr jobs queue_limit cache_size cache_dir shard_id quiet log_level
      trace slow_ms inject_slow_ms no_respec =
    wrap (fun () ->
        (match log_level with
        | None -> ()
        | Some s -> (
          match Log.level_of_string s with
          | Some l -> Log.set_level l
          | None -> Fmt.failwith "bad --log-level %S" s));
        if quiet then Log.set_level Log.Error;
        (* The daemon is the metrics consumer: enable recording so the
           `metrics` op and the extended `stats` op have data. *)
        Metrics.set_enabled true;
        if trace then Span.set_enabled true;
        let cfg =
          { Server.addr;
            jobs;
            queue_limit;
            cache_capacity = cache_size;
            cache_dir;
            shard_id;
            slow_ms;
            inject_slow_ms;
            respecialize = not no_respec }
        in
        let t =
          try Server.create cfg
          with Unix.Unix_error (e, fn, arg) ->
            Fmt.failwith "cannot listen: %s %s: %s" fn arg
              (Unix.error_message e)
        in
        Server.install_sigint t;
        Server.run t)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the optimization service (NDJSON over a socket)")
    Term.(const run $ addr_term $ jobs $ queue_limit $ cache_size $ cache_dir
          $ shard_id $ quiet $ log_level $ trace $ slow_ms $ inject_slow_ms
          $ no_respec)

(* Build a wire-profile delta by running the program locally.  The
   compiler is deterministic, so local instruction ids and block labels
   match what the server compiles from the same bytes, and the profiling
   points are recomputed with the same front-half analysis the server's
   chain runs. *)
let auto_profile_delta spec =
  let module Profile = Ogc_pass.Profile in
  let p = load_program spec Workload.Train in
  if Prog.find_global p "input_scale" <> None then
    Workload.set_scale p Workload.Train;
  (* The candidate screen runs on VRP-re-encoded code, exactly like the
     server's chain front; re-encoding changes no instruction ids. *)
  let a = Vrs.analyze p in
  let hooks : (int, int64 -> unit) Hashtbl.t = Hashtbl.create 16 in
  let obs = Hashtbl.create 16 in
  List.iter
    (fun iid ->
      let tbl : (int64, int ref) Hashtbl.t = Hashtbl.create 8 in
      Hashtbl.replace obs iid tbl;
      Hashtbl.replace hooks iid (fun v ->
          match Hashtbl.find_opt tbl v with
          | Some r -> incr r
          | None -> Hashtbl.replace tbl v (ref 1)))
    (Vrs.candidate_iids a);
  let counts : Interp.bb_counts = Hashtbl.create 64 in
  let out = Interp.run ~bb_counts:counts ~profile:hooks p in
  let prof = Profile.create () in
  Hashtbl.iter (fun fn arr -> Hashtbl.replace prof.Profile.p_bb fn arr) counts;
  prof.Profile.p_total <- out.Interp.steps;
  Hashtbl.iter
    (fun iid tbl ->
      match Hashtbl.fold (fun v r acc -> (v, !r) :: acc) tbl [] with
      | [] -> ()
      | [ (0L, n) ] ->
        (* observed zero on every commit: the always-zero table, which
           is what feeds the server's zspec pass *)
        Hashtbl.replace prof.Profile.p_zeros iid n
      | entries -> Hashtbl.replace prof.Profile.p_values iid entries)
    obs;
  Profile.to_json prof

let submit_cmd =
  let program =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"PROGRAM"
             ~doc:"MiniC source file, .s save file, or workload name; \
                   omitted for $(b,--stats) / $(b,--ping).")
  in
  let vrp = Arg.(value & flag & info [ "vrp" ] ~doc:"Request the VRP pass.") in
  let vrs = Arg.(value & flag & info [ "vrs" ] ~doc:"Request the VRS pass.") in
  let policy =
    Arg.(value & opt (some string) None
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"Gating policy (default: software gating when a pass runs).")
  in
  let cost =
    Arg.(value & opt (some int) None
         & info [ "cost" ] ~docv:"NJ" ~doc:"VRS cost label (30-110).")
  in
  let deadline =
    Arg.(value & opt (some int) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Per-request deadline; an expired request is not run.")
  in
  let return_program =
    Arg.(value & flag
         & info [ "return-program" ]
             ~doc:"Include the re-encoded program in the result.")
  in
  let id =
    Arg.(value & opt (some string) None
         & info [ "id" ] ~docv:"ID" ~doc:"Opaque id echoed in the response.")
  in
  let trace_id =
    Arg.(value & opt (some string) None
         & info [ "trace-id" ] ~docv:"ID"
             ~doc:"Distributed-trace id to stamp on the request; a \
                   tracing fleet nests its spans under it ($(b,ogc trace \
                   --fleet) collects them).  Never affects routing or \
                   caching.")
  in
  let push_profile =
    Arg.(value & opt (some string) None
         & info [ "push-profile" ] ~docv:"auto|FILE"
             ~doc:"Stream an execution profile for PROGRAM back to the \
                   server (the $(i,profile) op) instead of requesting an \
                   analysis.  $(b,auto) compiles and runs the program \
                   locally, collecting block counts and value \
                   observations at the server's own profiling points; \
                   anything else names a file holding a prepared \
                   profile-delta JSON.  The response carries the \
                   program's new profile epoch.")
  in
  let stats =
    Arg.(value & flag
         & info [ "stats" ] ~doc:"Ask for the server's counters instead.")
  in
  let ping =
    Arg.(value & flag & info [ "ping" ] ~doc:"Health-check the server.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Fetch the server's metrics and print the Prometheus \
                   text exposition ($(b,--raw) for the JSON envelope).")
  in
  let raw =
    Arg.(value & flag
         & info [ "raw" ]
             ~doc:"Print the raw response line instead of pretty JSON.")
  in
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry a failed connection up to N times with jittered \
                   exponential backoff (for racing a server that is \
                   still starting).")
  in
  let connect_timeout =
    Arg.(value & opt int 2000
         & info [ "connect-timeout-ms" ] ~docv:"MS"
             ~doc:"Give up on an unresponsive connect after MS \
                   milliseconds (per attempt).")
  in
  let run addr program input vrp vrs policy cost deadline return_program id
      trace_id push_profile stats ping metrics raw retries connect_timeout =
    wrap (fun () ->
        let fields = ref [ ("proto", Json.Int Ogc_server.Protocol.proto_version) ] in
        let add k v = fields := (k, v) :: !fields in
        (match (stats, ping, metrics, program) with
        | true, _, _, _ -> add "op" (Json.Str "stats")
        | false, true, _, _ -> add "op" (Json.Str "ping")
        | false, false, true, _ -> add "op" (Json.Str "metrics")
        | false, false, false, None ->
          Fmt.failwith
            "a PROGRAM is required unless --stats, --ping or --metrics"
        | false, false, false, Some spec ->
          if Sys.file_exists spec then begin
            let ic = open_in_bin spec in
            let n = in_channel_length ic in
            let src = really_input_string ic n in
            close_in ic;
            if Filename.check_suffix spec ".s" then add "asm" (Json.Str src)
            else add "source" (Json.Str src)
          end
          else add "workload" (Json.Str spec);
          (match (vrp, vrs) with
          | true, true -> Fmt.failwith "--vrp and --vrs are mutually exclusive"
          | true, false -> add "pass" (Json.Str "vrp")
          | false, true -> add "pass" (Json.Str "vrs")
          | false, false -> ());
          add "input"
            (Json.Str (match input with Workload.Train -> "train" | _ -> "ref"));
          Option.iter (fun p -> add "policy" (Json.Str p)) policy;
          Option.iter (fun c -> add "cost" (Json.Int c)) cost;
          Option.iter (fun d -> add "deadline_ms" (Json.Int d)) deadline;
          if return_program then add "return_program" (Json.Bool true));
        (match push_profile with
        | None -> ()
        | Some _ when stats || ping || metrics ->
          Fmt.failwith
            "--push-profile needs a PROGRAM request, not --stats, --ping \
             or --metrics"
        | Some "auto" ->
          add "op" (Json.Str "profile");
          add "profile" (auto_profile_delta (Option.get program))
        | Some file ->
          if not (Sys.file_exists file) then
            Fmt.failwith
              "--push-profile: %s is not a file (use `auto` to collect \
               one locally)"
              file;
          let ic = open_in_bin file in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          add "op" (Json.Str "profile");
          add "profile" (Json.of_string s));
        Option.iter (fun i -> add "id" (Json.Str i)) id;
        Option.iter (fun tr -> add "trace_id" (Json.Str tr)) trace_id;
        let request = Json.to_string ~indent:false (Json.Obj (List.rev !fields)) in
        let connect_once () =
          let domain, sockaddr =
            match addr with
            | Server.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
            | Server.Tcp (host, port) ->
              (Unix.PF_INET,
               Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
          in
          let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
          try
            Unix.set_nonblock fd;
            (try Unix.connect fd sockaddr with
            | Unix.Unix_error (Unix.EINPROGRESS, _, _) -> (
              match
                Unix.select [] [ fd ] []
                  (float_of_int connect_timeout /. 1000.0)
              with
              | _, [ _ ], _ -> (
                match Unix.getsockopt_error fd with
                | None -> ()
                | Some e -> raise (Unix.Unix_error (e, "connect", "")))
              | _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))));
            Unix.clear_nonblock fd;
            fd
          with e ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            raise e
        in
        (* Jittered exponential backoff over connect failures: a fleet
           smoke test may race its shards' startup, and N synchronized
           clients must not retry in lockstep. *)
        let rs = Random.State.make_self_init () in
        let rec connect_retry attempt =
          match connect_once () with
          | fd -> fd
          | exception Unix.Unix_error (e, _, _) when attempt < retries ->
            let d =
              0.05 *. (2.0 ** float_of_int attempt)
              *. (0.5 +. Random.State.float rs 1.0)
            in
            Log.debug "submit: retrying connect"
              ~fields:
                [ ("error", Json.Str (Unix.error_message e));
                  ("delay_s", Json.Float d) ];
            Unix.sleepf (Float.min 2.0 d);
            connect_retry (attempt + 1)
          | exception Unix.Unix_error (e, _, _) ->
            Fmt.failwith "cannot reach the server: %s (is `ogc serve` up?)"
              (Unix.error_message e)
        in
        let fd = connect_retry 0 in
        let oc = Unix.out_channel_of_descr fd in
        let ic = Unix.in_channel_of_descr fd in
        output_string oc request;
        output_char oc '\n';
        flush oc;
        let line =
          try input_line ic
          with End_of_file -> Fmt.failwith "server closed the connection"
        in
        Unix.close fd;
        if raw then print_endline line
        else if metrics then
          (* The exposition member is already text/plain; print it as-is
             so the output pipes straight into promtool or grep. *)
          (match Json.member "exposition" (Json.of_string line) with
          | Json.Str text -> print_string text
          | _ ->
            print_endline (Json.to_string ~indent:true (Json.of_string line)))
        else
          print_endline (Json.to_string ~indent:true (Json.of_string line));
        match Json.member "status" (Json.of_string line) with
        | Json.Str "ok" -> ()
        | Json.Str "overloaded" -> exit 4
        | Json.Str "deadline_exceeded" -> exit 5
        | _ -> exit 1)
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit one request to a running optimization service")
    Term.(const run $ addr_term $ program $ input_arg $ vrp $ vrs $ policy
          $ cost $ deadline $ return_program $ id $ trace_id $ push_profile
          $ stats $ ping $ metrics $ raw $ retries $ connect_timeout)

(* --- router / loadgen ------------------------------------------------------ *)

module Router = Ogc_fleet.Router
module Loadgen = Ogc_fleet.Loadgen

(* A shard spec is [NAME=ADDR] (or bare [ADDR], auto-named by position);
   ADDR is a Unix socket path, or HOST:PORT when the suffix parses as a
   port and the string has no '/'. *)
let parse_shard idx spec =
  let name, addr_spec =
    match String.index_opt spec '=' with
    | Some i ->
      ( String.sub spec 0 i,
        String.sub spec (i + 1) (String.length spec - i - 1) )
    | None -> (Printf.sprintf "shard%d" idx, spec)
  in
  let addr =
    if String.contains addr_spec '/' then Server.Unix_sock addr_spec
    else
      match String.rindex_opt addr_spec ':' with
      | Some i -> (
        let host = String.sub addr_spec 0 i
        and port =
          String.sub addr_spec (i + 1) (String.length addr_spec - i - 1)
        in
        match int_of_string_opt port with
        | Some port ->
          Server.Tcp ((if host = "" then "127.0.0.1" else host), port)
        | None -> Server.Unix_sock addr_spec)
      | None -> Server.Unix_sock addr_spec
  in
  { Router.t_name = name; t_addr = addr }

let router_cmd =
  let shards =
    Arg.(value & opt_all string []
         & info [ "shard" ] ~docv:"[NAME=]ADDR"
             ~doc:"A shard server to route to (repeatable): a Unix \
                   socket path or HOST:PORT, optionally prefixed \
                   $(i,NAME=).  At least one is required.")
  in
  let replicas =
    Arg.(value & opt int 2
         & info [ "replicas" ] ~docv:"R"
             ~doc:"Copies of a promoted hot result, primary included.")
  in
  let promote_after =
    Arg.(value & opt int 3
         & info [ "promote-after" ] ~docv:"N"
             ~doc:"Result-key hits before replication kicks in.")
  in
  let hedge_ms =
    Arg.(value & opt (some float) None
         & info [ "hedge-ms" ] ~docv:"MS"
             ~doc:"Fixed hedge threshold (default: adaptive, ~2x a \
                   recent p95).")
  in
  let pool_size =
    Arg.(value & opt int 8
         & info [ "pool-size" ] ~docv:"N"
             ~doc:"Connections kept per shard.")
  in
  let max_waiters =
    Arg.(value & opt int 64
         & info [ "max-waiters" ] ~docv:"N"
             ~doc:"Requests queued per shard pool before failing over \
                   (backpressure).")
  in
  let request_timeout =
    Arg.(value & opt int 30_000
         & info [ "request-timeout-ms" ] ~docv:"MS"
             ~doc:"Overall per-request budget across hedges and \
                   failovers.")
  in
  let quiet =
    Arg.(value & flag
         & info [ "quiet" ]
             ~doc:"Suppress lifecycle messages (same as \
                   $(b,--log-level=error)).")
  in
  let log_level =
    Arg.(value & opt (some string) None
         & info [ "log-level" ] ~docv:"LEVEL"
             ~doc:"Structured-log threshold: $(b,debug), $(b,info), \
                   $(b,warn) or $(b,error).")
  in
  let trace =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Record router spans and stamp forwarded requests with \
                   trace context; the $(i,trace) op then assembles the \
                   whole fleet's trace (see $(b,ogc trace --fleet)).")
  in
  let slow_ms =
    Arg.(value & opt (some float) None
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"Auto-capture: log the flight record (plus the local \
                   span slice of its trace) of any request slower than \
                   MS.")
  in
  let run addr shards replicas promote_after hedge_ms pool_size max_waiters
      request_timeout quiet log_level trace slow_ms =
    wrap (fun () ->
        (match log_level with
        | None -> ()
        | Some s -> (
          match Log.level_of_string s with
          | Some l -> Log.set_level l
          | None -> Fmt.failwith "bad --log-level %S" s));
        if quiet then Log.set_level Log.Error;
        if shards = [] then Fmt.failwith "at least one --shard is required";
        Metrics.set_enabled true;
        if trace then Span.set_enabled true;
        (match slow_ms with
        | Some _ -> Ogc_obs.Flight.set_slow_ms slow_ms
        | None -> ());
        let targets = List.mapi parse_shard shards in
        let cfg =
          { (Router.default_config ~addr ~shards:targets) with
            replicas;
            promote_after;
            hedge_ms;
            pool_size;
            max_waiters;
            request_timeout_ms = request_timeout }
        in
        let t =
          try Router.create cfg
          with Unix.Unix_error (e, fn, arg) ->
            Fmt.failwith "cannot listen: %s %s: %s" fn arg
              (Unix.error_message e)
        in
        Router.install_sigint t;
        Router.run t)
  in
  Cmd.v
    (Cmd.info "router"
       ~doc:"Route requests across a fleet of serve shards \
             (consistent hashing, hedging, hot-key replication)")
    Term.(const run $ addr_term $ shards $ replicas $ promote_after
          $ hedge_ms $ pool_size $ max_waiters $ request_timeout $ quiet
          $ log_level $ trace $ slow_ms)

let loadgen_cmd =
  let requests =
    Arg.(value & opt int 200
         & info [ "n"; "requests" ] ~docv:"N" ~doc:"Submissions to replay.")
  in
  let clients =
    Arg.(value & opt int 4
         & info [ "clients" ] ~docv:"N"
             ~doc:"Parallel connections (worker domains).")
  in
  let warm_ratio =
    Arg.(value & opt float 0.5
         & info [ "warm-ratio" ] ~docv:"F"
             ~doc:"Probability a submission replays an earlier one \
                   byte-for-byte (result-cache hits).")
  in
  let no_cost_sweep =
    Arg.(value & flag
         & info [ "no-cost-sweep" ]
             ~doc:"Disable the VRS cost sweep over the shared program \
                   set (on by default; it exercises chain-prefix \
                   artifact reuse).")
  in
  let workloads =
    Arg.(value & opt_all string []
         & info [ "workload" ] ~docv:"NAME"
             ~doc:"Mix this benchmark workload into the cold stream \
                   (repeatable).")
  in
  let programs =
    Arg.(value & opt int 6
         & info [ "programs" ] ~docv:"N"
             ~doc:"Distinct synthetic MiniC programs in the stream.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Stream seed.") in
  let retries =
    Arg.(value & opt int 5
         & info [ "retries" ] ~docv:"N"
             ~doc:"Attempts per submission before counting it failed.")
  in
  let kill_after =
    Arg.(value & opt (some int) None
         & info [ "kill-after" ] ~docv:"N"
             ~doc:"Fault injection: after N completed submissions, kill \
                   $(b,--kill-pid).")
  in
  let kill_pid =
    Arg.(value & opt (some int) None
         & info [ "kill-pid" ] ~docv:"PID"
             ~doc:"Process to SIGTERM when $(b,--kill-after) trips \
                   (a shard, to exercise hedging/failover).")
  in
  let max_p50 =
    Arg.(value & opt (some float) None
         & info [ "max-p50-ms" ] ~docv:"MS"
             ~doc:"Latency gate: exit 3 if p50 exceeds MS.")
  in
  let max_p95 =
    Arg.(value & opt (some float) None
         & info [ "max-p95-ms" ] ~docv:"MS"
             ~doc:"Latency gate: exit 3 if p95 exceeds MS.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the report as JSON.")
  in
  let trace_sample =
    Arg.(value & opt int 0
         & info [ "trace-sample" ] ~docv:"N"
             ~doc:"Stamp every Nth submission with a deterministic \
                   trace id (0 = never); a fleet running with \
                   $(b,--trace) records their distributed spans.")
  in
  let run addr requests clients warm_ratio no_cost_sweep workloads programs
      seed retries kill_after kill_pid max_p50 max_p95 json trace_sample =
    wrap (fun () ->
        let cfg =
          { (Loadgen.default_config ~addr) with
            requests;
            clients;
            warm_ratio;
            cost_sweep = not no_cost_sweep;
            workloads;
            programs;
            seed;
            retries;
            trace_sample }
        in
        let kill =
          match (kill_after, kill_pid) with
          | Some n, Some pid ->
            Some
              ( n,
                fun () ->
                  Log.info "loadgen: killing shard"
                    ~fields:[ ("pid", Json.Int pid); ("after", Json.Int n) ];
                  try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()
              )
          | Some _, None -> Fmt.failwith "--kill-after needs --kill-pid"
          | None, Some _ -> Fmt.failwith "--kill-pid needs --kill-after"
          | None, None -> None
        in
        let r = Loadgen.run ?kill cfg in
        if json then
          print_endline
            (Json.to_string ~indent:true (Loadgen.report_json r))
        else begin
          Fmt.pr "requests   %d (ok %d, failed %d, retried %d)@."
            r.Loadgen.total r.Loadgen.ok r.Loadgen.failed r.Loadgen.retried;
          Fmt.pr "cache hits %d@." r.Loadgen.cache_hits;
          Fmt.pr "wall       %.2fs (%.0f req/s)@." r.Loadgen.wall_s
            r.Loadgen.throughput_rps;
          Fmt.pr "latency    p50 %.1fms  p95 %.1fms  p99 %.1fms@."
            r.Loadgen.p50_ms r.Loadgen.p95_ms r.Loadgen.p99_ms
        end;
        if r.Loadgen.failed > 0 then exit 2;
        let gate name limit actual =
          match limit with
          | Some l when actual > l ->
            Fmt.epr "loadgen: %s %.1fms exceeds the %.1fms gate@." name
              actual l;
            exit 3
          | _ -> ()
        in
        gate "p50" max_p50 r.Loadgen.p50_ms;
        gate "p95" max_p95 r.Loadgen.p95_ms)
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Replay a deterministic synthetic submission stream against \
             a server or fleet, with latency gates and fault injection")
    Term.(const run $ addr_term $ requests $ clients $ warm_ratio
          $ no_cost_sweep $ workloads $ programs $ seed $ retries
          $ kill_after $ kill_pid $ max_p50 $ max_p95 $ json $ trace_sample)

(* --- analyze / passes ------------------------------------------------------ *)

module Pass = Ogc_pass.Pass

let analyze_cmd =
  let chain_arg =
    Arg.(value & opt string "cleanup,vrp,encode-widths"
         & info [ "passes" ] ~docv:"CHAIN"
             ~doc:"Comma-separated pass chain; each pass takes colon-joined \
                   $(i,key=value) options, e.g. \
                   $(b,cleanup,vrp,vrs:cost=50).  $(b,ogc passes) lists the \
                   registry.")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the result as JSON (deterministic: no timings).")
  in
  let dump_alloc_flag =
    Arg.(value & flag
         & info [ "dump-alloc" ]
             ~doc:"Print the register allocator's report — coloring rounds, \
                   spill slots with their width-aware sizes, callee-saved \
                   use — before running the chain.  MiniC sources and \
                   workloads only: a $(b,.s) file holds already-allocated \
                   code.  With $(b,--json) the report goes to stderr.")
  in
  let run spec input chain json dump_alloc out =
    wrap (fun () ->
        let p, alloc = load_program_with_alloc spec input in
        if dump_alloc then begin
          let ppf = if json then Format.err_formatter else Format.std_formatter in
          match alloc with
          | Some info -> Format.fprintf ppf "%a@." Regalloc.pp_info info
          | None ->
            Format.fprintf ppf
              "no allocation report: %s is a saved .s program@." spec
        end;
        let st, steps = Pass.run chain p in
        let p = st.Pass.prog in
        Ogc_ir.Validate.program p;
        (* Save before the final run: a transformed program that faults
           is exactly the one worth inspecting on disk. *)
        maybe_save out p;
        let final = Interp.run p in
        if json then
          (* Deterministic by construction: pass summaries, program
             facts and the output checksum — never wall times. *)
          print_endline
            (Json.to_string ~indent:true
               (Json.Obj
                  [ ("passes",
                     Json.Arr
                       (List.map
                          (fun (s : Pass.step) ->
                            Json.Obj
                              [ ("pass", Json.Str s.Pass.t_pass);
                                ("config", s.Pass.t_config);
                                ("summary", Json.Str s.Pass.t_summary) ])
                          steps));
                    ("static_instructions",
                     Json.Int (Prog.num_static_ins p));
                    ("dynamic_instructions", Json.Int final.Interp.steps);
                    ("checksum",
                     Json.Str (Int64.to_string final.Interp.checksum)) ]))
        else begin
          List.iter
            (fun (s : Pass.step) ->
              match s.Pass.t_config with
              | Json.Obj [] ->
                Format.printf "%-14s %s@." s.Pass.t_pass s.Pass.t_summary
              | cfg ->
                Format.printf "%-14s %s  %s@." s.Pass.t_pass
                  (Json.to_string ~indent:false cfg)
                  s.Pass.t_summary)
            steps;
          Format.printf "static instructions: %d@." (Prog.num_static_ins p);
          Format.printf "dynamic instructions: %d@." final.Interp.steps;
          Format.printf "checksum: %Ld@." final.Interp.checksum
        end)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run a named pass chain over a program and report what it did")
    Term.(const run $ program_arg $ input_arg $ chain_arg $ json_flag
          $ dump_alloc_flag $ save_arg)

let passes_cmd =
  let run () =
    List.iter
      (fun (p : Pass.t) ->
        (match p.Pass.defaults with
        | [] -> Format.printf "%-14s %s@." p.Pass.name p.Pass.doc
        | ds ->
          Format.printf "%-14s %s@." p.Pass.name p.Pass.doc;
          List.iter
            (fun (k, d) ->
              Format.printf "%-14s   :%s=%s (default)@." "" k
                (Json.to_string ~indent:false d))
            ds))
      Pass.registry
  in
  Cmd.v
    (Cmd.info "passes"
       ~doc:"List the registered analysis passes and their options")
    Term.(const run $ const ())

(* --- workloads ----------------------------------------------------------------- *)

let workloads_cmd =
  let run () =
    List.iter
      (fun (w : Workload.t) ->
        Format.printf "%-10s %s@." w.Workload.name w.Workload.description)
      Workload.all
  in
  Cmd.v
    (Cmd.info "workloads" ~doc:"List the SpecInt95 surrogate benchmarks")
    Term.(const run $ const ())

(* --- fuzz -------------------------------------------------------------------- *)

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N"
             ~doc:"Campaign seed.  The same seed generates the same \
                   programs, the same pass chains and the same verdicts, \
                   whatever the parallelism.")
  in
  let count =
    Arg.(value & opt int 100
         & info [ "n"; "count" ] ~docv:"N"
             ~doc:"Number of programs to generate and check.")
  in
  let jobs =
    Arg.(value & opt int 0
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains; 0 means auto ($(b,OGC_JOBS) or the \
                   machine's recommended domain count).")
  in
  let shrink =
    Arg.(value & flag
         & info [ "shrink" ]
             ~doc:"Minimize every failing program with the delta-debugging \
                   shrinker before writing it out.")
  in
  let inject =
    Arg.(value & flag
         & info [ "inject-bug" ]
             ~doc:"Self-test: also check a deliberately miscompiling \
                   width-narrowing transform.  The campaign is expected to \
                   fail; use with $(b,--shrink) to watch the oracle and \
                   shrinker work.")
  in
  let pressure =
    Arg.(value & flag
         & info [ "pressure" ]
             ~doc:"Generate high-register-pressure MiniC programs (many \
                   live locals, deep call chains), so every program \
                   exercises the register allocator's spill paths.")
  in
  let zero_bias =
    Arg.(value & flag
         & info [ "zero-bias" ]
             ~doc:"Generate MiniC programs planted with zero-dominated \
                   values (zero globals, a never-written array feeding a \
                   hot multiply), so the $(b,zspec) zero-specialization \
                   chains in the oracle actually fire.  Takes precedence \
                   over $(b,--pressure).")
  in
  let corpus =
    Arg.(value & opt string "test/corpus"
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Directory failing (minimized) programs are written to in \
                   the assembly save format, with a provenance comment; \
                   committed files are replayed by the corpus regression \
                   test.")
  in
  let slug s =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' -> c
        | _ -> '-')
      s
  in
  let write_failure dir seed (f : Ogc_fuzz.Fuzz.failure) =
    let p = match f.Ogc_fuzz.Fuzz.f_min with Some p -> p | None -> f.f_prog in
    let asm = Ogc_ir.Asm.to_string p in
    let header =
      Printf.sprintf
        "# ogc fuzz counterexample: seed %d, program %d, chain %s\n# %s\n# reproduce: ogc fuzz --seed %d -n %d --shrink%s\n"
        seed f.f_index f.f_chain f.f_detail seed (f.f_index + 1)
        (match f.f_source with
        | Ogc_fuzz.Fuzz.Minic _ -> ""
        | Ogc_fuzz.Fuzz.Ir -> " (raw IR program)")
    in
    let digest = String.sub (Digest.to_hex (Digest.string asm)) 0 12 in
    let name = Printf.sprintf "ce_%s_%s.s" (slug f.f_chain) digest in
    let path = Filename.concat dir name in
    let oc = open_out_bin path in
    output_string oc header;
    output_string oc asm;
    close_out oc;
    path
  in
  let run seed count jobs shrink inject pressure zero_bias corpus =
    wrap (fun () ->
        let jobs = if jobs = 0 then None else Some jobs in
        let s =
          Ogc_fuzz.Fuzz.run ?jobs ~inject ~shrink ~pressure ~zero_bias ~seed
            ~count ()
        in
        Format.printf
          "fuzz: seed %d: %d programs (%d minic, %d ir, %d skipped), %d \
           chain checks, %d diffs@."
          s.Ogc_fuzz.Fuzz.s_seed s.s_count s.s_minic s.s_ir s.s_skipped
          s.s_chains
          (List.length s.s_failures);
        List.iter
          (fun (i, msg) ->
            Format.printf "generator error at program %d: %s@." i msg)
          s.s_gen_errors;
        if s.s_failures <> [] then begin
          if not (Sys.file_exists corpus) then Sys.mkdir corpus 0o755;
          List.iter
            (fun (f : Ogc_fuzz.Fuzz.failure) ->
              let path = write_failure corpus seed f in
              let size =
                Prog.num_static_ins
                  (match f.f_min with Some p -> p | None -> f.f_prog)
              in
              Format.printf "FAIL program %d [%s]: %s@."
                f.Ogc_fuzz.Fuzz.f_index f.f_chain f.f_detail;
              Format.printf "  %s (%d instructions%s)@." path size
                (if f.f_min = None then "" else ", minimized"))
            s.s_failures
        end;
        if s.s_failures <> [] || s.s_gen_errors <> [] then exit 1)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: random programs through every \
             optimization chain against the reference interpreter")
    Term.(const run $ seed $ count $ jobs $ shrink $ inject $ pressure
          $ zero_bias $ corpus)

let () =
  let doc = "software-controlled operand gating (CGO 2004) toolchain" in
  (* The version is generated from dune-project's (version ...) stanza. *)
  let info = Cmd.info "ogc" ~version:Ogc_server.Version.version ~doc in
  exit (Cmd.eval (Cmd.group info
                    [ compile_cmd; run_cmd; vrp_cmd; vrs_cmd; analyze_cmd;
                      passes_cmd; sim_cmd; trace_cmd; diff_cmd; fuzz_cmd;
                      report_cmd; workloads_cmd; serve_cmd; submit_cmd;
                      router_cmd; loadgen_cmd ]))
