open Ogc_isa

type ins = { iid : int; mutable op : Instr.t }

type terminator =
  | Jump of Label.t
  | Branch of {
      cond : Instr.cond;
      src : Reg.t;
      if_true : Label.t;
      if_false : Label.t;
    }
  | Return

type block = {
  label : Label.t;
  mutable body : ins array;
  mutable term : terminator;
  term_iid : int;
}

type func = {
  fname : string;
  arity : int;
  mutable blocks : block array;
  frame_size : int;
}

type global = { gname : string; init : Bytes.t }

type t = {
  mutable funcs : func list;
  globals : global list;
  mutable next_iid : int;
}

let max_iid_of_func f =
  Array.fold_left
    (fun acc b ->
      let acc = max acc b.term_iid in
      Array.fold_left (fun acc ins -> max acc ins.iid) acc b.body)
    0 f.blocks

let max_reg_of_func f =
  let m = ref (Reg.num_arch - 1) in
  let see r = if Reg.to_int r > !m then m := Reg.to_int r in
  Array.iter
    (fun b ->
      Array.iter
        (fun ins ->
          List.iter see (Instr.defs ins.op);
          List.iter see (Instr.uses ins.op))
        b.body;
      match b.term with Branch { src; _ } -> see src | Jump _ | Return -> ())
    f.blocks;
  !m

let max_reg t =
  List.fold_left (fun a f -> max a (max_reg_of_func f)) (Reg.num_arch - 1) t.funcs

let create ?(globals = []) funcs =
  let next = 1 + List.fold_left (fun a f -> max a (max_iid_of_func f)) 0 funcs in
  { funcs; globals; next_iid = next }

let fresh_iid t =
  let i = t.next_iid in
  t.next_iid <- i + 1;
  i

let copy t =
  let copy_block b =
    { b with body = Array.map (fun (i : ins) -> { i with op = i.op }) b.body }
  in
  {
    funcs =
      List.map (fun f -> { f with blocks = Array.map copy_block f.blocks }) t.funcs;
    globals = List.map (fun g -> { g with init = Bytes.copy g.init }) t.globals;
    next_iid = t.next_iid;
  }

let find_func t name = List.find (fun f -> String.equal f.fname name) t.funcs
let find_func_opt t name =
  List.find_opt (fun f -> String.equal f.fname name) t.funcs

let find_global t name =
  List.find_opt (fun g -> String.equal g.gname name) t.globals

let block f l = f.blocks.(Label.to_int l)

let append_block f ~body ~term ~term_iid =
  let label = Label.of_int (Array.length f.blocks) in
  let b = { label; body; term; term_iid } in
  f.blocks <- Array.append f.blocks [| b |];
  label

let iter_blocks f k = Array.iter k f.blocks

let iter_ins f k =
  iter_blocks f (fun b -> Array.iter (fun ins -> k b ins) b.body)

let iter_all_ins t k =
  List.iter (fun f -> iter_ins f (fun b ins -> k f b ins)) t.funcs

let num_static_ins t =
  List.fold_left
    (fun acc f ->
      Array.fold_left (fun acc b -> acc + Array.length b.body + 1) acc f.blocks)
    0 t.funcs

let ins_table t =
  let tbl = Hashtbl.create 1024 in
  iter_all_ins t (fun f b ins -> Hashtbl.replace tbl ins.iid (f, b, ins));
  tbl

let pp_terminator ppf = function
  | Jump l -> Format.fprintf ppf "jump %a" Label.pp l
  | Branch { cond; src; if_true; if_false } ->
    Format.fprintf ppf "b%s %a, %a, %a"
      (match cond with
      | Instr.Eq -> "eq"
      | Instr.Ne -> "ne"
      | Instr.Lt -> "lt"
      | Instr.Le -> "le"
      | Instr.Gt -> "gt"
      | Instr.Ge -> "ge")
      Reg.pp src Label.pp if_true Label.pp if_false
  | Return -> Format.pp_print_string ppf "ret"

let pp_func ppf f =
  Format.fprintf ppf "func %s(%d) frame=%d@\n" f.fname f.arity f.frame_size;
  Array.iter
    (fun b ->
      Format.fprintf ppf "%a:@\n" Label.pp b.label;
      Array.iter
        (fun ins -> Format.fprintf ppf "  [%4d] %a@\n" ins.iid Instr.pp ins.op)
        b.body;
      Format.fprintf ppf "  [%4d] %a@\n" b.term_iid pp_terminator b.term)
    f.blocks

let pp ppf t =
  List.iter
    (fun (g : global) ->
      Format.fprintf ppf "global %s : %d bytes@\n" g.gname (Bytes.length g.init))
    t.globals;
  List.iter (fun f -> Format.fprintf ppf "@\n%a" pp_func f) t.funcs
