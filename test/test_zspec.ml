(* The zspec zero-specialization pass (the AZP-style subset of VRS):
   interpreter equivalence on every zero-biased random program, guards
   that actually fire on zero-dominated code, and a strict energy win
   under the pipeline model when the zero path is the one taken. *)

module Pass = Ogc_pass.Pass
module Prog = Ogc_ir.Prog
module Interp = Ogc_ir.Interp
module Minic = Ogc_minic.Minic
module Gen_minic = Ogc_fuzz.Gen_minic
module Pipeline = Ogc_cpu.Pipeline
module Policy = Ogc_gating.Policy
module Account = Ogc_energy.Account
module Vrs = Ogc_core.Vrs

let zspec_chain = "vrp,encode-widths,bb-profile,value-profile,zspec:cost=50"

(* Aggregated across the property's sample so a separate test can assert
   the generator actually exercises the pass. *)
let total_specialized = ref 0

let equivalent src =
  match Minic.compile src with
  | exception Minic.Error _ -> true (* generator overshoot, not zspec's bug *)
  | p ->
    let base = Interp.run (Prog.copy p) in
    let st, _ = Pass.run zspec_chain p in
    Ogc_ir.Validate.program st.Pass.prog;
    (match st.Pass.report with
    | Some r -> total_specialized := !total_specialized + Vrs.specialized_count r
    | None -> ());
    let out = Interp.run st.Pass.prog in
    Int64.equal base.Interp.checksum out.Interp.checksum
    && base.Interp.emitted = out.Interp.emitted

let prop_zspec_equivalent =
  QCheck.Test.make
    ~name:"zspec is interpreter-equivalent on zero-biased programs" ~count:80
    Gen_minic.arbitrary_zero_program equivalent

let test_guards_fire () =
  Alcotest.(check bool)
    "the zero-biased generator makes zspec specialize" true
    (!total_specialized > 0)

(* A program whose guarded value is zero on every iteration: [flags] is
   never written, so the specialized clone (with the multiply-accumulate
   folded away) runs every trip and only the one-instruction zero test
   is paid at region entry. *)
let zero_src =
  {|
long flags[1024];
int a[1024];
int seed = 13;

int rnd() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 0x7fff;
}

int main() {
  for (int i = 0; i < 1024; i++) {
    a[i] = rnd() & 255;
  }
  long acc = 0;
  for (int i = 0; i < 768; i++) {
    long f = flags[i & 1023];
    acc = acc + f * a[i & 1023] + a[i & 1023];
  }
  emit(acc);
  return 0;
}
|}

let test_strictly_cheaper_on_zero_path () =
  let p = Minic.compile zero_src in
  let base_st, _ = Pass.run "vrp,encode-widths" (Prog.copy p) in
  let z_st, _ = Pass.run zspec_chain (Prog.copy p) in
  (match z_st.Pass.report with
  | None -> Alcotest.fail "zspec left no report"
  | Some r ->
    Alcotest.(check bool) "at least one zero specialization" true
      (Vrs.specialized_count r >= 1));
  let sim prog = Pipeline.simulate ~policy:Policy.Software prog in
  let b = sim base_st.Pass.prog in
  let z = sim z_st.Pass.prog in
  Alcotest.(check bool) "same output" true
    (Int64.equal b.Pipeline.checksum z.Pipeline.checksum);
  let eb = Account.total b.Pipeline.energy in
  let ez = Account.total z.Pipeline.energy in
  if not (ez < eb) then
    Alcotest.failf "zero path not cheaper: %.3f nJ (zspec) vs %.3f nJ" ez eb

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "zspec"
    [
      ( "equivalence",
        [
          qt prop_zspec_equivalent;
          Alcotest.test_case "zero-bias makes guards fire" `Quick
            test_guards_fire;
        ] );
      ( "energy",
        [
          Alcotest.test_case "strictly cheaper when the zero path is taken"
            `Quick test_strictly_cheaper_on_zero_path;
        ] );
    ]
