(* Zero-value specialization (the AZP-style fast path): a thin driver
   over {!Vrs.specialize_zero} that owns the pass telemetry.  The heavy
   lifting — candidate selection, the zero-test guard, cloning and the
   assumption-carrying cleanup passes — is shared with full VRS so the
   two variants cannot drift. *)

module Metrics = Ogc_obs.Metrics
module Span = Ogc_obs.Span
module Prog = Ogc_ir.Prog

let m_runs = Metrics.counter "ogc_zspec_runs_total"
let m_guards = Metrics.counter "ogc_zspec_guards_total"
let m_pass_seconds = Metrics.histogram "ogc_zspec_pass_seconds"

let specialize ?config a (p : Prog.t) =
  Span.with_ ~name:"zspec" (fun () ->
      let t0 = if Metrics.enabled () then Unix.gettimeofday () else 0.0 in
      let r = Vrs.specialize_zero ?config a p in
      if t0 > 0.0 then begin
        Metrics.incr m_runs;
        Metrics.add m_guards (float_of_int (Vrs.specialized_count r));
        Metrics.observe m_pass_seconds (Unix.gettimeofday () -. t0)
      end;
      r)

let run ?config ?vrp ?bb ?values (p : Prog.t) =
  let a = Vrs.analyze ?config ?vrp ?bb ?values p in
  specialize ?config a p
