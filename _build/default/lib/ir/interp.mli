(** Reference interpreter.

    Executes a program functionally and streams the committed dynamic
    instruction trace to an optional callback; the out-of-order timing
    model replays this stream (functional-first, trace-driven simulation).
    The interpreter is also the profiling engine: it counts basic-block
    executions and can sample the values produced by a chosen set of
    instructions (the paper's Calder-style value profiling hook).

    Execution starts at [main] with no arguments.  The [emit] intrinsic
    accumulates an order-sensitive checksum of everything emitted, which
    the tests use to prove that VRP/VRS/gating preserve semantics. *)

open Ogc_isa

exception Fault of string
(** Memory violation, missing function, or step-limit exhaustion. *)

type config = {
  mem_size : int;  (** bytes of flat memory; default 4 MiB *)
  max_steps : int;  (** dynamic instruction budget; default 100M *)
}

val default_config : config

(** One committed dynamic instruction. *)
type event =
  | E_ins of {
      iid : int;
      op : Instr.t;
      a : int64;  (** first source value (0 when none) *)
      b : int64;  (** second source value (0 when none) *)
      result : int64;  (** destination value (0 when none) *)
      addr : int64;  (** effective address for memory operations, else 0 *)
    }
  | E_branch of { iid : int; taken : bool; value : int64; reg : Reg.t }
  | E_jump of { iid : int }
  | E_return of { iid : int }

type outcome = {
  checksum : int64;  (** fold of emitted values: [c*31 + v] *)
  emitted : int64 list;  (** first [emit]ted values, oldest first (capped) *)
  steps : int;  (** committed dynamic instructions, terminators included *)
}

(** Basic-block execution counts: function name to per-label counts. *)
type bb_counts = (string, int array) Hashtbl.t

val run :
  ?config:config ->
  ?on_event:(event -> unit) ->
  ?bb_counts:bb_counts ->
  ?profile:(int, int64 -> unit) Hashtbl.t ->
  Prog.t ->
  outcome
(** [profile] maps an instruction id to a sampler invoked with the
    destination value each time that instruction commits. *)

val count_of : bb_counts -> string -> Label.t -> int

(** {1 Data layout}

    Addresses are virtual: the flat data segment starts at
    {!virtual_base} (chosen so that data and stack addresses are 33-40 bit
    values, like the Alpha address-space layout the paper's Figure 12
    reflects).  Globals are placed from [virtual_base + 4096] upward,
    8-byte aligned, in declaration order; the stack pointer starts at
    [virtual_base + mem_size - 64] and grows down.  The layout only
    depends on the global list, so every binary version of a workload
    sees identical addresses. *)

val virtual_base : int64

val global_addresses : Prog.t -> (string * int64) list
val address_of_global : Prog.t -> string -> int64
