(** Per-structure energy parameters (the Wattch substitute).

    The model assigns each microarchitectural structure a per-access base
    energy and a {e width fraction}: the share of that energy spent in the
    data path proper, which scales with the number of active bytes when
    operand gating is in effect.  Gated-off bytes still cost a small
    residual (conditional-clocking overhead), as in Wattch's aggressive
    conditional-clocking style.

    Values are in nanojoules per access, loosely calibrated against
    Wattch's 0.35µm tables for the Table 2 machine.  Absolute magnitudes
    are not meant to match the paper's testbed; the per-structure
    proportions (and hence the savings {e shapes}) are what matter.  The
    width fractions encode the paper's observation set: data-intensive
    structures (functional units, register file, instruction queue
    payload, rename buffers, result buses) gate most of their energy,
    while address-dominated structures (LSQ, D-cache) gate little. *)

type structure =
  | Rename
  | Bpred
  | Iq  (** instruction queue / issue window *)
  | Rob
  | Rename_buffers  (** in-flight result value storage *)
  | Lsq
  | Regfile
  | Icache
  | Dcache1
  | Dcache2
  | Alu
  | Muldiv
  | Resultbus
  | Clock  (** global clock + unaccounted fixed overhead, per cycle *)

val all_structures : structure list
val structure_name : structure -> string

type t = {
  base : structure -> float;  (** nJ per access (per cycle for [Clock]) *)
  width_fraction : structure -> float;
      (** fraction of [base] that scales with active bytes *)
  residual : float;  (** energy fraction retained by a gated-off byte *)
  tag_bit_nj : float;  (** nJ per tag bit carried with a value access *)
}

val default : t

(** [with_residual t r] varies the conditional-clocking aggressiveness:
    the energy fraction a gated-off byte still burns.  Wattch's clock
    gating styles map to [0.0] (ideal gating), [0.10] (the default,
    Wattch's aggressive style with overhead) and [0.25] (conservative
    gating).  Raises [Invalid_argument] outside [0, 1]. *)
val with_residual : t -> float -> t

val ideal_gating : t
val conservative_gating : t

(** [access_energy params s ~active_bytes ~tag_bits] is the energy of one
    access to structure [s] moving a value with [active_bytes] of 8 bytes
    powered and [tag_bits] of tag overhead. *)
val access_energy : t -> structure -> active_bytes:int -> tag_bits:int -> float

(** [alu_energy params ~width_bytes] — full-width ALU operation energy at a
    given gated width; used to derive the paper's Table 1 savings matrix. *)
val alu_energy : t -> width_bytes:int -> float
