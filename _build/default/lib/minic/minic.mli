(** MiniC front end: one-call compilation to the Alpha-like IR. *)

(** Compilation error with a human-readable message (includes source
    position when available). *)
exception Error of string

val parse : string -> Ast.program
(** Parse and semantically check; raises {!Error}. *)

val compile : string -> Ogc_ir.Prog.t
(** Parse, check, generate code and validate the result;
    raises {!Error}. *)
