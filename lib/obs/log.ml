module J = Ogc_json.Json

type level = Debug | Info | Warn | Error

let rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let threshold = Atomic.make (rank Info)
let set_level l = Atomic.set threshold (rank l)

let level () =
  match Atomic.get threshold with
  | 0 -> Debug
  | 1 -> Info
  | 2 -> Warn
  | _ -> Error

let sink_m = Mutex.create ()
let sink = ref prerr_endline

let set_sink f =
  Mutex.lock sink_m;
  sink := f;
  Mutex.unlock sink_m

let log lvl msg fields =
  if rank lvl >= Atomic.get threshold then begin
    let line =
      J.to_string ~indent:false
        (J.Obj
           (("ts", J.Float (Unix.gettimeofday ()))
            :: ("level", J.Str (level_name lvl))
            :: ("msg", J.Str msg)
            :: fields))
    in
    Mutex.lock sink_m;
    (try !sink line with _ -> ());
    Mutex.unlock sink_m
  end

let debug ?(fields = []) msg = log Debug msg fields
let info ?(fields = []) msg = log Info msg fields
let warn ?(fields = []) msg = log Warn msg fields
let error ?(fields = []) msg = log Error msg fields
