lib/ir/callgraph.ml: Hashtbl Instr List Ogc_isa Option Prog
