#!/bin/sh
# Formatting check: reports drift via `dune build @fmt` when an
# ocamlformat matching .ocamlformat's pinned version is available, and
# skips (successfully) otherwise, so machines without the formatter are
# never broken by it.  In CI the formatter is always installed, so the
# fmt job genuinely gates merges.
set -u

if ! command -v ocamlformat >/dev/null 2>&1; then
  echo "check-format: ocamlformat not installed, skipping"
  exit 0
fi

want=$(sed -n 's/^version *= *//p' "$(dirname "$0")/../.ocamlformat")
have=$(ocamlformat --version 2>/dev/null)
if [ -n "$want" ] && [ "$want" != "$have" ]; then
  echo "check-format: ocamlformat $have != pinned $want, skipping"
  exit 0
fi

exec dune build @fmt
