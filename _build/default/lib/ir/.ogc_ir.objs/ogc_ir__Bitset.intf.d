lib/ir/bitset.mli:
