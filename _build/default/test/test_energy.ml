(* Tests for the energy model: parameter sanity, accounting arithmetic,
   and the derived Table 1 savings matrix. *)

module Ep = Ogc_energy.Energy_params
module Account = Ogc_energy.Account
module Savings = Ogc_core.Savings_table
open Ogc_isa

let test_access_energy_monotone () =
  List.iter
    (fun s ->
      let e k = Ep.access_energy Ep.default s ~active_bytes:k ~tag_bits:0 in
      for k = 1 to 7 do
        Alcotest.(check bool) "monotone in bytes" true (e k <= e (k + 1) +. 1e-12)
      done;
      Alcotest.(check bool) "positive" true (e 1 > 0.0))
    Ep.all_structures

let test_width_fraction_shape () =
  (* The paper's observation: FU/regfile/result bus gate a lot, LSQ and
     caches little, front end not at all. *)
  let wf s = Ep.default.Ep.width_fraction s in
  Alcotest.(check bool) "fu gates most" true (wf Ep.Alu > 0.7);
  Alcotest.(check bool) "regfile gates" true (wf Ep.Regfile > 0.6);
  Alcotest.(check bool) "lsq gates little" true (wf Ep.Lsq < 0.3);
  Alcotest.(check bool) "icache gates nothing" true (wf Ep.Icache = 0.0);
  Alcotest.(check bool) "bpred gates nothing" true (wf Ep.Bpred = 0.0)

let test_tag_overhead () =
  let e0 = Ep.access_energy Ep.default Ep.Regfile ~active_bytes:4 ~tag_bits:0 in
  let e7 = Ep.access_energy Ep.default Ep.Regfile ~active_bytes:4 ~tag_bits:7 in
  Alcotest.(check bool) "tags cost energy" true (e7 > e0);
  Alcotest.(check bool) "7 tag bits cost 7x one bit" true
    (abs_float (e7 -. e0 -. (7.0 *. Ep.default.Ep.tag_bit_nj)) < 1e-9)

let test_account () =
  let a = Account.create Ep.default in
  Alcotest.(check (float 1e-9)) "starts at zero" 0.0 (Account.total a);
  Account.charge a Ep.Alu ~active_bytes:8 ~tag_bits:0;
  let full = Account.energy_of a Ep.Alu in
  Account.charge a Ep.Alu ~active_bytes:1 ~tag_bits:0;
  let delta = Account.energy_of a Ep.Alu -. full in
  Alcotest.(check bool) "narrow access cheaper" true (delta < full);
  Account.charge_fixed a Ep.Clock 10;
  Alcotest.(check bool) "clock accounted" true
    (Account.energy_of a Ep.Clock > 0.0);
  Alcotest.(check int) "by_structure covers all" 14
    (List.length (Account.by_structure a));
  (* charge matches the precomputed table *)
  let b = Account.create Ep.default in
  Account.charge b Ep.Regfile ~active_bytes:3 ~tag_bits:2;
  Alcotest.(check (float 1e-9)) "charge = access_energy"
    (Ep.access_energy Ep.default Ep.Regfile ~active_bytes:3 ~tag_bits:2)
    (Account.energy_of b Ep.Regfile)

let test_metrics () =
  Alcotest.(check (float 1e-9)) "ed2" 400.0 (Account.ed2 ~energy:4.0 ~cycles:10);
  Alcotest.(check (float 1e-9)) "savings" 0.25
    (Account.savings ~baseline:4.0 ~improved:3.0);
  Alcotest.(check (float 1e-9)) "zero baseline" 0.0
    (Account.savings ~baseline:0.0 ~improved:3.0)

let test_table1_shape () =
  (* Savings grow with the width gap, and the matrix is antisymmetric. *)
  let t = Savings.default in
  let s f to_ = Savings.saving t ~from_:f ~to_ in
  Alcotest.(check bool) "64->8 biggest" true
    (s Width.W64 Width.W8 > s Width.W64 Width.W16
    && s Width.W64 Width.W16 > s Width.W64 Width.W32
    && s Width.W64 Width.W32 > 0.0);
  Alcotest.(check (float 1e-9)) "identity" 0.0 (s Width.W8 Width.W8);
  Alcotest.(check (float 1e-9)) "antisymmetric"
    (s Width.W64 Width.W8) (-.s Width.W8 Width.W64);
  Alcotest.(check int) "matrix is 4x4" 4 (List.length (Savings.matrix t));
  Alcotest.(check bool) "guard costs positive" true
    (Savings.cost_branch t > 0.0 && Savings.cost_comparison t > 0.0
    && Savings.cost_and t > 0.0)

let test_clock_gating_styles () =
  (* More aggressive gating -> cheaper narrow accesses, identical full
     ones. *)
  let e params k =
    Ep.access_energy params Ep.Alu ~active_bytes:k ~tag_bits:0
  in
  Alcotest.(check bool) "ideal < default < conservative at 1 byte" true
    (e Ep.ideal_gating 1 < e Ep.default 1
    && e Ep.default 1 < e Ep.conservative_gating 1);
  Alcotest.(check (float 1e-9)) "full width unaffected" (e Ep.default 8)
    (e Ep.ideal_gating 8);
  Alcotest.check_raises "range check" (Invalid_argument "with_residual -1")
    (fun () -> ignore (Ep.with_residual Ep.default (-1.0)))

let prop_access_bounded =
  QCheck.Test.make ~name:"access energy bounded by base + tags" ~count:1000
    QCheck.(pair (int_range 1 8) (int_range 0 7))
    (fun (bytes, tags) ->
      List.for_all
        (fun s ->
          let e = Ep.access_energy Ep.default s ~active_bytes:bytes ~tag_bits:tags in
          let base = Ep.default.Ep.base s in
          e <= base +. (float_of_int tags *. Ep.default.Ep.tag_bit_nj) +. 1e-9
          && e >= base *. (1.0 -. Ep.default.Ep.width_fraction s) -. 1e-9)
        Ep.all_structures)

let () =
  Alcotest.run "energy"
    [
      ( "unit",
        [
          Alcotest.test_case "monotone access" `Quick test_access_energy_monotone;
          Alcotest.test_case "width fractions" `Quick test_width_fraction_shape;
          Alcotest.test_case "tag overhead" `Quick test_tag_overhead;
          Alcotest.test_case "accounting" `Quick test_account;
          Alcotest.test_case "metrics" `Quick test_metrics;
          Alcotest.test_case "table 1 shape" `Quick test_table1_shape;
          Alcotest.test_case "clock gating styles" `Quick
            test_clock_gating_styles;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_access_bounded ]);
    ]
