(* Build-time script (not part of the library): prints a version.ml whose
   [version] is the (version ...) field of dune-project, so the CLI,
   every server response and every cache key carry the analyzer version
   from a single source of truth. *)

let () =
  let path = Sys.argv.(1) in
  let ic = open_in path in
  let version = ref "0.0.0+dev" in
  let prefix = "(version " in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if
         String.length line > String.length prefix
         && String.sub line 0 (String.length prefix) = prefix
       then begin
         let rest =
           String.sub line (String.length prefix)
             (String.length line - String.length prefix)
         in
         let stop =
           match String.index_opt rest ')' with
           | Some i -> i
           | None -> String.length rest
         in
         version := String.trim (String.sub rest 0 stop)
       end
     done
   with End_of_file -> ());
  close_in ic;
  Printf.printf "let version = %S\n" !version
