(* 32 bits per word: index arithmetic is a shift and a mask, where a
   63-bit packing would need genuine division on every bit access —
   measurably slower in the dataflow inner loops that bang on these. *)
type t = { words : int array; nbits : int }

let create nbits = { words = Array.make ((nbits + 31) / 32) 0; nbits }
let copy t = { t with words = Array.copy t.words }
let length t = t.nbits

let check t i =
  if i < 0 || i >= t.nbits then Fmt.invalid_arg "Bitset: index %d" i

let set t i =
  check t i;
  t.words.(i lsr 5) <- t.words.(i lsr 5) lor (1 lsl (i land 31))

let clear t i =
  check t i;
  t.words.(i lsr 5) <- t.words.(i lsr 5) land lnot (1 lsl (i land 31))

let mem t i =
  check t i;
  t.words.(i lsr 5) land (1 lsl (i land 31)) <> 0

let reset t = Array.fill t.words 0 (Array.length t.words) 0

let copy_into ~into src =
  Array.blit src.words 0 into.words 0 (Array.length src.words)

let union_into ~into src =
  let changed = ref false in
  Array.iteri
    (fun k w ->
      let nw = into.words.(k) lor w in
      if nw <> into.words.(k) then begin
        into.words.(k) <- nw;
        changed := true
      end)
    src.words;
  !changed

let diff_into ~into src =
  Array.iteri (fun k w -> into.words.(k) <- into.words.(k) land lnot w) src.words

let equal a b = a.nbits = b.nbits && a.words = b.words

let iter t k =
  (* Word-skipping ascending walk: whole-zero words cost one test, and
     set bits are peeled low-to-high, so sparse sets cost their
     population rather than their capacity. *)
  Array.iteri
    (fun wi word ->
      let w = ref word in
      while !w <> 0 do
        let bit = !w land - !w in
        let rec log2 b acc = if b = 1 then acc else log2 (b lsr 1) (acc + 1) in
        k ((wi lsl 5) + log2 bit 0);
        w := !w land lnot bit
      done)
    t.words

let elements t =
  let acc = ref [] in
  iter t (fun i -> acc := i :: !acc);
  List.rev !acc

let cardinal t =
  let n = ref 0 in
  Array.iter
    (fun w ->
      let w = ref w in
      while !w <> 0 do
        w := !w land (!w - 1);
        incr n
      done)
    t.words;
  !n
