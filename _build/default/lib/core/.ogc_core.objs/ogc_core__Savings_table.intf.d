lib/core/savings_table.mli: Ogc_energy Ogc_isa Width
