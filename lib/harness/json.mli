(** Alias of {!Ogc_json.Json} (the tree moved to [lib/json] so the IR and
    server layers can share it); see that interface for documentation. *)

include module type of struct
  include Ogc_json.Json
end
