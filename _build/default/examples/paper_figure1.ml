(* The paper's Figure 1, executed.

   Figure 1 walks value range propagation through

       for (i = 0; i < 100; i++) { a[i] = i; }

   and derives, among others: the iterator entering the body as <0,99>,
   its incremented value as <1,100>, and the scaled address offset (i*4)
   as <0,396>.  This example compiles the same loop, runs the analysis,
   and prints the engine's ranges next to the paper's — then shows the
   §2.3 syntactic trip count agreeing with the range-based result.

   Run with: dune exec examples/paper_figure1.exe *)

open Ogc_isa
module Minic = Ogc_minic.Minic
module Prog = Ogc_ir.Prog
module Vrp = Ogc_core.Vrp
module Interval = Ogc_core.Interval
module Tripcount = Ogc_core.Tripcount

let source = {|
  int a[100];
  int main() {
    for (int i = 0; i < 100; i++) {
      a[i] = i;
    }
    return 0;
  }
|}

let () =
  Format.printf "The paper's Figure 1 loop:@.@.%s@." source;
  let prog = Minic.compile source in
  let res = Vrp.analyze prog in
  let f = Prog.find_func prog "main" in

  Format.printf "compiled body of main:@.%a@." Prog.pp_func f;

  let show title pred expected =
    let found = ref false in
    Prog.iter_ins f (fun _ ins ->
        if (not !found) && pred ins.Prog.op then begin
          found := true;
          match Vrp.range_of res ins.Prog.iid with
          | Some rng ->
            Format.printf "  %-34s %-12s (paper: %s)@." title
              (Interval.to_string rng) expected
          | None -> Format.printf "  %-34s <no range>@." title
        end)
  in
  Format.printf "ranges the analysis derives:@.";
  show "i + 1 (the incremented iterator)"
    (function
      | Instr.Alu { op = Instr.Add; src2 = Instr.Imm 1L; _ } -> true
      | _ -> false)
    "<1,100>, step 7";
  show "i << 2 (the scaled offset, i*4)"
    (function
      | Instr.Alu { op = Instr.Sll; src2 = Instr.Imm 2L; _ } -> true
      | _ -> false)
    "<0,396>, step 9";
  (* The iterator itself inside the body: the input range of the scale. *)
  (let found = ref false in
   Prog.iter_ins f (fun _ ins ->
       if not !found then
         match ins.Prog.op with
         | Instr.Alu { op = Instr.Sll; src2 = Instr.Imm 2L; _ } -> (
           found := true;
           match Vrp.input_ranges_of res ins.Prog.iid with
           | Some (a, _) ->
             Format.printf "  %-34s %-12s (paper: %s)@." "i inside the body"
               (Interval.to_string a) "<0,99>, step 8"
           | None -> ())
         | _ -> ()));

  Format.printf "@.the syntactic trip count of §2.3 agrees:@.";
  List.iter
    (fun (lo : Tripcount.affine_loop) ->
      Format.printf
        "  loop at L%d: iterator %a = %Ld + %Ldn, %d iterations, range %s@."
        (Ogc_ir.Label.to_int lo.Tripcount.header)
        Reg.pp lo.Tripcount.iterator lo.Tripcount.init lo.Tripcount.add
        lo.Tripcount.trip_count
        (Interval.to_string lo.Tripcount.iterator_range))
    (Tripcount.analyze f)
