lib/workloads/w_gcc.ml: Printf
