(** Request flight recorder: a bounded, always-on ring of per-request
    summaries.

    Spans answer "where did this request spend its time?" but cost a
    flag flip and ring traffic per phase; the flight recorder answers
    "what were the last few thousand requests?" for free — one
    mutex-guarded array write per request, no allocation, always on.
    Each entry carries the identifiers needed to pivot into the other
    observability planes: the trace id (spans), route key (placement)
    and shard.

    Requests slower than {!set_slow_ms} auto-capture: the record, plus
    the local span slice of its trace when tracing is on, is written to
    the structured log as one ["slow_request"] warning line. *)

type record = {
  f_id : string option;  (** client-supplied request id *)
  f_trace : string option;  (** distributed trace id *)
  f_key : string;  (** route/cache key, [""] when the op has none *)
  f_shard : string;  (** shard id, or ["router"] *)
  f_op : string;
  f_queue_ms : float;  (** admission-to-execution wait *)
  f_hedged : bool;
  f_cache : string;  (** ["hit"] | ["miss"] | [""] *)
  f_outcome : string;  (** response status *)
  f_ms : float;  (** end-to-end duration *)
  f_ts : float;  (** Unix seconds at completion *)
}

val capacity : int
(** Ring size (4096): older records are overwritten. *)

val record : record -> unit
(** Append; triggers the slow-request capture when [f_ms] exceeds the
    threshold. *)

val set_slow_ms : float option -> unit
(** Slow-request auto-capture threshold; [None] (default) disables. *)

val slow_ms : unit -> float option

val snapshot : unit -> record list
(** The retained records, oldest first. *)

val total : unit -> int
(** Records ever written. *)

val dropped : unit -> int
(** Records overwritten ([max 0 (total - capacity)]). *)

val to_json : record -> Ogc_json.Json.t

val to_json_all : unit -> Ogc_json.Json.t
(** [{"total": n; "dropped": d; "records": [...]}] — the ["flight"]
    protocol op's payload. *)

val dump : out_channel -> unit
(** NDJSON, one record per line, oldest first — the SIGUSR1 dump. *)

val reset : unit -> unit
(** Clear the ring and threshold (tests only). *)
