(** Span-based phase tracing in the Chrome [trace_event] format.

    [with_ ~name f] records a begin event, runs [f], and records the
    matching end event (also on exception), into a per-thread ring
    buffer — so tracing inside {!Ogc_exec.Pool} workers, server
    connection threads and the main thread never contends beyond a
    per-ring mutex held for one array write.  {!export}/{!write} merge
    every ring into a single [{"traceEvents": [...]}] JSON document that
    {{:https://ui.perfetto.dev}Perfetto} and [chrome://tracing] load
    directly: each thread renders as a track, spans nest into a flame
    chart.

    Disabled by default: [with_] is then an atomic load, a branch and a
    tail call of [f].  Timestamps are microseconds relative to the
    moment tracing was last enabled. *)

val set_enabled : bool -> unit
(** Enabling (re)starts the trace clock; it does not clear events
    already recorded ({!reset} does). *)

val enabled : unit -> bool

val with_ : ?args:(string * Ogc_json.Json.t) list -> name:string ->
  (unit -> 'a) -> 'a
(** Run the thunk inside a [B]/[E] event pair.  [args] lands on the
    begin event and shows in the Perfetto detail pane. *)

val instant : ?args:(string * Ogc_json.Json.t) list -> string -> unit
(** A zero-duration marker ([ph = "i"], thread scope). *)

val export : unit -> Ogc_json.Json.t
(** [{"traceEvents": [...]; "displayTimeUnit": "ms"}] — thread-name
    metadata first, then every recorded event in timestamp order.  Rings
    hold the most recent 32768 events per thread; older events are
    overwritten and silently absent. *)

val write : string -> unit
(** Compact {!export} to a file. *)

val reset : unit -> unit
(** Drop all recorded events (tests only). *)
