lib/harness/results.ml: Array Float Hashtbl Instr Int64 List Ogc_core Ogc_cpu Ogc_energy Ogc_gating Ogc_ir Ogc_isa Ogc_workloads Option Printf Width
