(** Straight-line (non-control-flow) instructions of the Alpha-like ISA.

    Control transfer lives in the IR terminator type ({!Ogc_ir.Block});
    calls are modelled here as straight-line instructions that return to the
    following instruction, matching how a binary optimizer sees them.

    Every data-manipulating opcode carries a {!Width.t}: this is the
    software operand-gating hook.  The semantics of a width-[w] operation is
    "compute on the low [w] bits of the inputs, sign-extend the result to 64
    bits" — narrow values are always kept in two's complement (paper §2.4).
    The original compiler output uses [W32] for [int]-typed arithmetic and
    [W64] elsewhere (the Alpha [addl]/[addq] split); VRP and VRS re-encode
    instructions with narrower widths. *)

(** Three-operand ALU operations.  [Mul], [Div] and [Rem] execute on the
    integer multiply/divide unit; everything else on the plain ALUs. *)
type alu_op =
  | Add
  | Sub
  | Mul
  | Div   (** signed division; traps are not modelled, x/0 = 0 *)
  | Rem   (** signed remainder; x rem 0 = 0 *)
  | And
  | Or
  | Xor
  | Bic   (** and-not: [a land (lnot b)] *)
  | Sll
  | Srl   (** logical shift right over the low [w] bits *)
  | Sra

(** Compare operations producing 0/1, Alpha [cmpXX] style. *)
type cmp_op = Ceq | Clt | Cle | Cult | Cule

(** Conditions against zero, used by conditional moves (and by IR branches). *)
type cond = Eq | Ne | Lt | Le | Gt | Ge

(** Second source operand: register or short immediate. *)
type operand = Reg of Reg.t | Imm of int64

type t =
  | Alu of { op : alu_op; width : Width.t; src1 : Reg.t; src2 : operand; dst : Reg.t }
  | Cmp of { op : cmp_op; width : Width.t; src1 : Reg.t; src2 : operand; dst : Reg.t }
  | Cmov of { cond : cond; width : Width.t; test : Reg.t; src : operand; dst : Reg.t }
      (** [dst <- src] when [test cond 0] holds, else [dst] unchanged. *)
  | Msk of { width : Width.t; src : Reg.t; dst : Reg.t }
      (** Extract the low [width] bits of [src], zero-extended (the paper's
          MSKBL-style mask operation, §2.2.5). *)
  | Sext of { width : Width.t; src : Reg.t; dst : Reg.t }
      (** Sign-extend the low [width] bits of [src]. *)
  | Li of { dst : Reg.t; imm : int64 }  (** load (wide) immediate *)
  | La of { dst : Reg.t; symbol : string }
      (** load the address of a global data symbol *)
  | Load of { width : Width.t; signed : bool; base : Reg.t; offset : int64; dst : Reg.t }
  | Store of { width : Width.t; base : Reg.t; offset : int64; src : Reg.t }
  | Call of { callee : string }
      (** Direct call; arguments in [Reg.arg 0..5], result in [Reg.ret].
          Clobbers all caller-saved registers. *)
  | Emit of { src : Reg.t }
      (** Intrinsic output instruction used by workloads to produce a
          result checksum; behaves like a store to an output stream. *)

(** {1 Register usage} *)

val defs : t -> Reg.t list
(** Registers written.  [Reg.zero] writes are discarded but still reported
    here; [Call] reports its clobbers. *)

val uses : t -> Reg.t list
(** Registers read ([Call] reports all argument registers; the interpreter
    and analyses refine this with per-call arity). *)

val map_regs : (Reg.t -> Reg.t) -> t -> t
(** Apply a substitution to every register field.  [Call] carries no
    explicit register fields, so its implicit argument/clobber sets are
    unaffected — the register allocator relies on this when rewriting
    virtual registers to their assigned colors. *)

val is_call : t -> bool
val is_mem : t -> bool

(** [width i] is the operating width of [i] ([W64] for [Li], [La], [Call]
    and [Emit]). *)
val width : t -> Width.t

(** [with_width i w] re-encodes [i] at width [w] when [i] has a width field;
    returns [i] unchanged otherwise. *)
val with_width : t -> Width.t -> t

(** {1 Instruction classes}

    The categories of the paper's Table 3. *)

type iclass =
  | C_add | C_sub | C_mul | C_and | C_or | C_xor
  | C_shift | C_cmp | C_cmov | C_msk
  | C_load | C_store | C_move | C_call | C_other

val iclass : t -> iclass
val iclass_name : iclass -> string
val all_alu_classes : iclass list
(** The ten ALU classes of Table 3, in the paper's row order. *)

(** {1 Evaluation helpers} *)

val eval_alu : alu_op -> Width.t -> int64 -> int64 -> int64
val eval_cmp : cmp_op -> Width.t -> int64 -> int64 -> int64
val eval_cond : cond -> int64 -> bool

(** {1 Printing} *)

val pp_operand : Format.formatter -> operand -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
