lib/cpu/machine_config.mli:
