let significant_bytes v =
  let rec go k =
    if k >= 8 then 8
    else
      let shift = k * 8 in
      let sext =
        Int64.shift_right (Int64.shift_left v (64 - shift)) (64 - shift)
      in
      let zext =
        Int64.shift_right_logical (Int64.shift_left v (64 - shift)) (64 - shift)
      in
      if Int64.equal sext v || Int64.equal zext v then k else go (k + 1)
  in
  go 1

let size_class k =
  if k <= 1 then 1
  else if k <= 2 then 2
  else if k <= 5 then 5
  else 8

let significance_tag_bits = 7
let size_tag_bits = 2
