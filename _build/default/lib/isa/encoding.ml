type opcode = int

type encoded = { word : int32; ext : int64 option }

(* --- opcode numbering ------------------------------------------------------

   Dense, systematic numbering: operations enumerate their width variants
   contiguously so [base_alpha] and the §4.3 accounting can reason about
   (operation, width) pairs. *)

let alu_ops =
  [ Instr.Add; Instr.Sub; Instr.Mul; Instr.Div; Instr.Rem; Instr.And;
    Instr.Or; Instr.Xor; Instr.Bic; Instr.Sll; Instr.Srl; Instr.Sra ]

let cmp_ops = [ Instr.Ceq; Instr.Clt; Instr.Cle; Instr.Cult; Instr.Cule ]

let conds = [ Instr.Eq; Instr.Ne; Instr.Lt; Instr.Le; Instr.Gt; Instr.Ge ]

let width_index = function
  | Width.W8 -> 0
  | Width.W16 -> 1
  | Width.W32 -> 2
  | Width.W64 -> 3

let width_of_index = function
  | 0 -> Width.W8
  | 1 -> Width.W16
  | 2 -> Width.W32
  | 3 -> Width.W64
  | i -> Fmt.invalid_arg "Encoding: width index %d" i

let index_of lst x =
  let rec go i = function
    | [] -> invalid_arg "Encoding.index_of"
    | y :: rest -> if y = x then i else go (i + 1) rest
  in
  go 0 lst

(* Opcode space layout. *)
let alu_base = 0 (* 12 ops x 4 widths = 48 *)
let cmp_base = 48 (* 5 x 4 = 20 *)
let cmov_base = 68 (* 6 x 4 = 24 *)
let msk_base = 92 (* 4 *)
let sext_base = 96 (* 4 *)
let li_op = 100
let la_op = 101
let load_base = 102 (* width x signedness = 8 *)
let store_base = 110 (* 4 *)
let call_op = 114
let emit_op = 115
let num_opcodes = 116

let opcode_of (i : Instr.t) =
  match i with
  | Instr.Alu { op; width; _ } ->
    alu_base + (index_of alu_ops op * 4) + width_index width
  | Instr.Cmp { op; width; _ } ->
    cmp_base + (index_of cmp_ops op * 4) + width_index width
  | Instr.Cmov { cond; width; _ } ->
    cmov_base + (index_of conds cond * 4) + width_index width
  | Instr.Msk { width; _ } -> msk_base + width_index width
  | Instr.Sext { width; _ } -> sext_base + width_index width
  | Instr.Li _ -> li_op
  | Instr.La _ -> la_op
  | Instr.Load { width; signed; _ } ->
    load_base + (width_index width * 2) + if signed then 1 else 0
  | Instr.Store { width; _ } -> store_base + width_index width
  | Instr.Call _ -> call_op
  | Instr.Emit _ -> emit_op

let opcode_to_int op = op

let opcode_of_int i =
  if i < 0 || i >= num_opcodes then Fmt.invalid_arg "Encoding.opcode_of_int %d" i
  else i

let alu_name = function
  | Instr.Add -> "add"
  | Instr.Sub -> "sub"
  | Instr.Mul -> "mul"
  | Instr.Div -> "div"
  | Instr.Rem -> "rem"
  | Instr.And -> "and"
  | Instr.Or -> "or"
  | Instr.Xor -> "xor"
  | Instr.Bic -> "bic"
  | Instr.Sll -> "sll"
  | Instr.Srl -> "srl"
  | Instr.Sra -> "sra"

let cmp_name = function
  | Instr.Ceq -> "cmpeq"
  | Instr.Clt -> "cmplt"
  | Instr.Cle -> "cmple"
  | Instr.Cult -> "cmpult"
  | Instr.Cule -> "cmpule"

let cond_name = function
  | Instr.Eq -> "eq"
  | Instr.Ne -> "ne"
  | Instr.Lt -> "lt"
  | Instr.Le -> "le"
  | Instr.Gt -> "gt"
  | Instr.Ge -> "ge"

let mnemonic op =
  let w i = Width.to_string (width_of_index i) in
  if op >= alu_base && op < cmp_base then
    let k = op - alu_base in
    Printf.sprintf "%s%s" (alu_name (List.nth alu_ops (k / 4))) (w (k mod 4))
  else if op >= cmp_base && op < cmov_base then
    let k = op - cmp_base in
    Printf.sprintf "%s%s" (cmp_name (List.nth cmp_ops (k / 4))) (w (k mod 4))
  else if op >= cmov_base && op < msk_base then
    let k = op - cmov_base in
    Printf.sprintf "cmov%s%s" (cond_name (List.nth conds (k / 4))) (w (k mod 4))
  else if op >= msk_base && op < sext_base then
    Printf.sprintf "msk%s" (w (op - msk_base))
  else if op >= sext_base && op < li_op then
    Printf.sprintf "sext%s" (w (op - sext_base))
  else if op = li_op then "li"
  else if op = la_op then "la"
  else if op >= load_base && op < store_base then
    let k = op - load_base in
    Printf.sprintf "ld%s%s" (w (k / 2)) (if k mod 2 = 0 then "u" else "")
  else if op >= store_base && op < call_op then
    Printf.sprintf "st%s" (w (op - store_base))
  else if op = call_op then "call"
  else if op = emit_op then "emit"
  else Fmt.invalid_arg "Encoding.mnemonic: %d" op

let all_opcodes = List.init num_opcodes (fun op -> (op, mnemonic op))

(* Which (operation, width) pairs the Alpha ISA already provides:
   - all 64-bit operates, plus 32-bit add/sub/mul (addl/subl/mull);
   - logicals, shifts, compares and conditional moves at 64 bits only;
   - every memory width (LDBU/LDWU/LDL/LDQ and the stores);
   - byte/word mask-extract (MSKxL/EXTxL) at every granularity;
   - SEXTB/SEXTW (BWX) and the ADDL sign-extend idiom for 32 bits;
   - LDA/LDAH for immediates and addresses.
   Integer divide does not exist on Alpha at any width. *)
let base_alpha op =
  if op >= alu_base && op < cmp_base then begin
    let k = op - alu_base in
    let operation = List.nth alu_ops (k / 4) in
    let width = width_of_index (k mod 4) in
    match operation with
    | Instr.Add | Instr.Sub | Instr.Mul ->
      Width.equal width Width.W64 || Width.equal width Width.W32
    | Instr.And | Instr.Or | Instr.Xor | Instr.Bic | Instr.Sll | Instr.Srl
    | Instr.Sra -> Width.equal width Width.W64
    | Instr.Div | Instr.Rem -> false
  end
  else if op >= cmp_base && op < cmov_base then
    Width.equal (width_of_index ((op - cmp_base) mod 4)) Width.W64
  else if op >= cmov_base && op < msk_base then
    Width.equal (width_of_index ((op - cmov_base) mod 4)) Width.W64
  else if op >= msk_base && op < li_op then true (* MSK/EXT, SEXTB/W, ADDL *)
  else if op >= li_op && op < num_opcodes then true
  else Fmt.invalid_arg "Encoding.base_alpha: %d" op

(* --- encode / decode --------------------------------------------------------

   Word fields (from bit 0): [7:0] opcode, [12:8] dst, [17:13] src1,
   [22:18] src2/test, [23] immediate flag.  Any immediate, displacement or
   symbol index travels in the 64-bit extension word. *)

type symtab = { sym_index : string -> int; sym_name : int -> string }

let identity_symtab () =
  let fwd = Hashtbl.create 16 and bwd = Hashtbl.create 16 in
  let next = ref 0 in
  {
    sym_index =
      (fun s ->
        match Hashtbl.find_opt fwd s with
        | Some i -> i
        | None ->
          let i = !next in
          incr next;
          Hashtbl.replace fwd s i;
          Hashtbl.replace bwd i s;
          i);
    sym_name =
      (fun i ->
        match Hashtbl.find_opt bwd i with
        | Some s -> s
        | None -> Fmt.invalid_arg "symtab: unknown symbol %d" i);
  }

let pack ~opcode ~dst ~src1 ~src2 ~imm_flag =
  Int32.logor
    (Int32.of_int
       (opcode lor (dst lsl 8) lor (src1 lsl 13) lor (src2 lsl 18)))
    (if imm_flag then Int32.shift_left 1l 23 else 0l)

let field word ~lo ~bits =
  (Int32.to_int (Int32.shift_right_logical word lo)) land ((1 lsl bits) - 1)

let encode symtab (i : Instr.t) =
  let opcode = opcode_of i in
  let r = Reg.to_int in
  let reg_or_imm = function
    | Instr.Reg x -> (r x, false, None)
    | Instr.Imm v -> (0, true, Some v)
  in
  match i with
  | Instr.Alu { src1; src2; dst; _ } | Instr.Cmp { src1; src2; dst; _ } ->
    let s2, imm_flag, ext = reg_or_imm src2 in
    { word = pack ~opcode ~dst:(r dst) ~src1:(r src1) ~src2:s2 ~imm_flag; ext }
  | Instr.Cmov { test; src; dst; _ } ->
    let s2, imm_flag, ext = reg_or_imm src in
    { word = pack ~opcode ~dst:(r dst) ~src1:(r test) ~src2:s2 ~imm_flag; ext }
  | Instr.Msk { src; dst; _ } | Instr.Sext { src; dst; _ } ->
    { word = pack ~opcode ~dst:(r dst) ~src1:(r src) ~src2:0 ~imm_flag:false;
      ext = None }
  | Instr.Li { dst; imm } ->
    { word = pack ~opcode ~dst:(r dst) ~src1:0 ~src2:0 ~imm_flag:true;
      ext = Some imm }
  | Instr.La { dst; symbol } ->
    { word = pack ~opcode ~dst:(r dst) ~src1:0 ~src2:0 ~imm_flag:true;
      ext = Some (Int64.of_int (symtab.sym_index symbol)) }
  | Instr.Load { base; offset; dst; _ } ->
    { word = pack ~opcode ~dst:(r dst) ~src1:(r base) ~src2:0 ~imm_flag:true;
      ext = Some offset }
  | Instr.Store { base; offset; src; _ } ->
    { word = pack ~opcode ~dst:0 ~src1:(r base) ~src2:(r src) ~imm_flag:true;
      ext = Some offset }
  | Instr.Call { callee } ->
    { word = pack ~opcode ~dst:0 ~src1:0 ~src2:0 ~imm_flag:true;
      ext = Some (Int64.of_int (symtab.sym_index callee)) }
  | Instr.Emit { src } ->
    { word = pack ~opcode ~dst:0 ~src1:(r src) ~src2:0 ~imm_flag:false;
      ext = None }

let decode symtab { word; ext } =
  let opcode = field word ~lo:0 ~bits:8 in
  let dst = Reg.of_int (field word ~lo:8 ~bits:5) in
  let src1 = Reg.of_int (field word ~lo:13 ~bits:5) in
  let src2 = Reg.of_int (field word ~lo:18 ~bits:5) in
  let imm_flag = field word ~lo:23 ~bits:1 = 1 in
  let operand () =
    if imm_flag then
      match ext with
      | Some v -> Instr.Imm v
      | None -> invalid_arg "Encoding.decode: missing extension word"
    else Instr.Reg src2
  in
  let required_ext () =
    match ext with
    | Some v -> v
    | None -> invalid_arg "Encoding.decode: missing extension word"
  in
  if opcode >= alu_base && opcode < cmp_base then begin
    let k = opcode - alu_base in
    Instr.Alu { op = List.nth alu_ops (k / 4); width = width_of_index (k mod 4);
                src1; src2 = operand (); dst }
  end
  else if opcode >= cmp_base && opcode < cmov_base then begin
    let k = opcode - cmp_base in
    Instr.Cmp { op = List.nth cmp_ops (k / 4); width = width_of_index (k mod 4);
                src1; src2 = operand (); dst }
  end
  else if opcode >= cmov_base && opcode < msk_base then begin
    let k = opcode - cmov_base in
    Instr.Cmov { cond = List.nth conds (k / 4);
                 width = width_of_index (k mod 4); test = src1;
                 src = operand (); dst }
  end
  else if opcode >= msk_base && opcode < sext_base then
    Instr.Msk { width = width_of_index (opcode - msk_base); src = src1; dst }
  else if opcode >= sext_base && opcode < li_op then
    Instr.Sext { width = width_of_index (opcode - sext_base); src = src1; dst }
  else if opcode = li_op then Instr.Li { dst; imm = required_ext () }
  else if opcode = la_op then
    Instr.La { dst; symbol = symtab.sym_name (Int64.to_int (required_ext ())) }
  else if opcode >= load_base && opcode < store_base then begin
    let k = opcode - load_base in
    Instr.Load { width = width_of_index (k / 2); signed = k mod 2 = 1;
                 base = src1; offset = required_ext (); dst }
  end
  else if opcode >= store_base && opcode < call_op then
    Instr.Store { width = width_of_index (opcode - store_base); base = src1;
                  offset = required_ext (); src = src2 }
  else if opcode = call_op then
    Instr.Call { callee = symtab.sym_name (Int64.to_int (required_ext ())) }
  else if opcode = emit_op then Instr.Emit { src = src1 }
  else Fmt.invalid_arg "Encoding.decode: bad opcode %d" opcode

let size_bytes e = match e.ext with None -> 4 | Some _ -> 12
