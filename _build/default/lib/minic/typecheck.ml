open Ast

exception Error of string * Ast.pos

let err pos fmt = Fmt.kstr (fun s -> raise (Error (s, pos))) fmt

type fsig = { fs_ret : Ast.ty option; fs_params : Ast.param list }

type info = { fun_sigs : (string * fsig) list }

(* What a name denotes inside a function body. *)
type binding = Scalar of ty | Array of ty

type env = {
  fun_sigs : (string * fsig) list;
  globals : (string * binding) list;
  mutable scopes : (string * binding) list list;
}

let lookup env pos name =
  let rec in_scopes = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt name scope with
      | Some b -> Some b
      | None -> in_scopes rest)
  in
  match in_scopes env.scopes with
  | Some b -> b
  | None -> (
    match List.assoc_opt name env.globals with
    | Some b -> b
    | None -> err pos "undefined variable %s" name)

let declare env pos name b =
  match env.scopes with
  | [] -> assert false
  | scope :: rest ->
    if List.mem_assoc name scope then
      err pos "duplicate declaration of %s" name;
    env.scopes <- ((name, b) :: scope) :: rest

let rec check_expr env (e : expr) ~value_needed =
  match e.desc with
  | Num _ -> ()
  | Var name -> (
    match lookup env e.pos name with
    | Scalar _ -> ()
    | Array _ ->
      (* Array names may only appear as call arguments (pointer decay);
         the caller handles that case before recursing. *)
      err e.pos "array %s used as a scalar" name)
  | Index (name, idx) -> (
    check_expr env idx ~value_needed:true;
    match lookup env e.pos name with
    | Array _ -> ()
    | Scalar _ -> err e.pos "indexing non-array %s" name)
  | Unop (_, a) -> check_expr env a ~value_needed:true
  | Binop (_, a, b) ->
    check_expr env a ~value_needed:true;
    check_expr env b ~value_needed:true
  | Ternary (c, t, f) ->
    check_expr env c ~value_needed:true;
    check_expr env t ~value_needed:true;
    check_expr env f ~value_needed:true
  | Cast (_, a) -> check_expr env a ~value_needed:true
  | Call (name, args) -> (
    match List.assoc_opt name env.fun_sigs with
    | None -> err e.pos "call to undefined function %s" name
    | Some fs ->
      if List.length args <> List.length fs.fs_params then
        err e.pos "%s expects %d argument(s), got %d" name
          (List.length fs.fs_params) (List.length args);
      if value_needed && fs.fs_ret = None then
        err e.pos "void function %s used in an expression" name;
      List.iter2
        (fun (p : param) (a : expr) ->
          match (p.parray, a.desc) with
          | true, Var vn -> (
            match lookup env a.pos vn with
            | Array _ -> ()
            | Scalar _ -> err a.pos "%s expects an array for %s" name p.pname)
          | true, _ -> err a.pos "%s expects an array for %s" name p.pname
          | false, _ -> check_expr env a ~value_needed:true)
        fs.fs_params args)

let check_lvalue env pos = function
  | Lvar name -> (
    match lookup env pos name with
    | Scalar _ -> ()
    | Array _ -> err pos "cannot assign to array %s" name)
  | Lindex (name, idx) -> (
    check_expr env idx ~value_needed:true;
    match lookup env pos name with
    | Array _ -> ()
    | Scalar _ -> err pos "indexing non-array %s" name)

let rec check_stmt env ~in_loop ~ret (s : stmt) =
  match s.sdesc with
  | Decl (t, name, init) ->
    Option.iter (fun e -> check_expr env e ~value_needed:true) init;
    declare env s.spos name (Scalar t)
  | Decl_array (t, name, size) ->
    if size <= 0 then err s.spos "array %s has non-positive size" name;
    declare env s.spos name (Array t)
  | Assign (lv, e) ->
    check_lvalue env s.spos lv;
    check_expr env e ~value_needed:true
  | Op_assign (op, lv, e) ->
    (match op with
    | Andand | Oror | Eq | Neq | Lt | Le | Gt | Ge ->
      err s.spos "operator %s cannot be used in op-assignment" (binop_name op)
    | Add | Sub | Mul | Div | Rem | Band | Bor | Bxor | Shl | Shr -> ());
    check_lvalue env s.spos lv;
    check_expr env e ~value_needed:true
  | If (c, then_, else_) ->
    check_expr env c ~value_needed:true;
    check_body env ~in_loop ~ret then_;
    check_body env ~in_loop ~ret else_
  | While (c, body) ->
    check_expr env c ~value_needed:true;
    check_body env ~in_loop:true ~ret body
  | Do_while (body, c) ->
    check_body env ~in_loop:true ~ret body;
    check_expr env c ~value_needed:true
  | For (init, cond, step, body) ->
    env.scopes <- [] :: env.scopes;
    Option.iter (check_stmt env ~in_loop ~ret) init;
    Option.iter (fun e -> check_expr env e ~value_needed:true) cond;
    check_body env ~in_loop:true ~ret body;
    Option.iter (check_stmt env ~in_loop:true ~ret) step;
    env.scopes <- List.tl env.scopes
  | Break -> if not in_loop then err s.spos "break outside a loop"
  | Continue -> if not in_loop then err s.spos "continue outside a loop"
  | Return None ->
    if ret <> None then err s.spos "return without a value in a non-void function"
  | Return (Some e) ->
    if ret = None then err s.spos "return with a value in a void function";
    check_expr env e ~value_needed:true
  | Expr_stmt e -> check_expr env e ~value_needed:false
  | Emit e -> check_expr env e ~value_needed:true

and check_body env ~in_loop ~ret body =
  env.scopes <- [] :: env.scopes;
  List.iter (check_stmt env ~in_loop ~ret) body;
  env.scopes <- List.tl env.scopes

let check_global seen = function
  | Gscalar (_, name, _) | Garray (_, name, _, _) ->
    if List.mem name !seen then
      err { line = 0; col = 0 } "duplicate global %s" name;
    seen := name :: !seen

let check_global_init = function
  | Gscalar _ -> ()
  | Garray (_, name, size, init) -> (
    if size <= 0 then
      err { line = 0; col = 0 } "array %s has non-positive size" name;
    match init with
    | None -> ()
    | Some (Init_list l) ->
      if List.length l > size then
        err { line = 0; col = 0 } "initializer of %s exceeds its size" name
    | Some (Init_string s) ->
      if String.length s + 1 > size then
        err { line = 0; col = 0 } "string initializer of %s exceeds its size" name)

let check (p : program) =
  let seen = ref [] in
  List.iter (check_global seen) p.globals;
  List.iter check_global_init p.globals;
  let fun_sigs =
    List.map
      (fun (f : fundef) -> (f.fname, { fs_ret = f.ret; fs_params = f.params }))
      p.funcs
  in
  let fnames = List.map fst fun_sigs in
  List.iter
    (fun (f : fundef) ->
      if List.length (List.filter (String.equal f.fname) fnames) > 1 then
        err f.fpos "duplicate function %s" f.fname;
      if List.mem f.fname !seen then
        err f.fpos "function %s collides with a global" f.fname;
      if List.length f.params > Ogc_isa.Reg.num_arg_regs then
        err f.fpos "%s has more than %d parameters" f.fname
          Ogc_isa.Reg.num_arg_regs)
    p.funcs;
  let globals =
    List.map
      (function
        | Gscalar (t, name, _) -> (name, Scalar t)
        | Garray (t, name, _, _) -> (name, Array t))
      p.globals
  in
  List.iter
    (fun (f : fundef) ->
      let env = { fun_sigs; globals; scopes = [ [] ] } in
      List.iter
        (fun (pm : param) ->
          declare env f.fpos pm.pname
            (if pm.parray then Array pm.pty else Scalar pm.pty))
        f.params;
      check_body env ~in_loop:false ~ret:f.ret f.body)
    p.funcs;
  (match List.find_opt (fun (f : fundef) -> String.equal f.fname "main") p.funcs with
  | None -> err { line = 0; col = 0 } "program has no main function"
  | Some m ->
    if m.params <> [] then err m.fpos "main must take no parameters");
  { fun_sigs }
