(* Classic consistent hashing (Karger et al.): every shard hashes to
   [vnodes] points on a 64-bit ring, a key belongs to the first point at
   or after its own hash.  MD5 keeps the placement deterministic across
   processes — the router and any external tool agree on ownership
   without coordination. *)

type t = {
  vnodes : int;
  members : string list;  (* sorted, deduplicated *)
  points : (int64 * string) array;  (* sorted by (hash, shard) *)
}

(* First 8 bytes of the MD5, big-endian, as an unsigned ring position
   (compared with [Int64.unsigned_compare]). *)
let hash_of s = Bytes.get_int64_be (Bytes.of_string (Digest.string s)) 0

let point_compare (h1, s1) (h2, s2) =
  match Int64.unsigned_compare h1 h2 with
  | 0 -> String.compare s1 s2
  | c -> c

let build vnodes members =
  let points =
    List.concat_map
      (fun s ->
        List.init vnodes (fun i ->
            (hash_of (Printf.sprintf "%s#%d" s i), s)))
      members
    |> Array.of_list
  in
  Array.sort point_compare points;
  { vnodes; members; points }

let create ?(vnodes = 128) shards =
  if vnodes <= 0 then invalid_arg "Ring.create: vnodes must be positive";
  let members = List.sort_uniq String.compare shards in
  if members = [] then invalid_arg "Ring.create: no shards";
  build vnodes members

let shards t = t.members
let vnodes t = t.vnodes

let add t s =
  if List.mem s t.members then t
  else build t.vnodes (List.sort String.compare (s :: t.members))

let remove t s =
  match List.filter (fun m -> not (String.equal m s)) t.members with
  | [] -> invalid_arg "Ring.remove: cannot remove the last shard"
  | members -> build t.vnodes members

(* Index of the first point at or after [h], wrapping to 0 past the
   top.  [points] is never empty (create forbids an empty ring). *)
let successor_index t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  (* invariant: points before !lo are < h, points from !hi are >= h *)
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then lo := mid + 1
    else hi := mid
  done;
  if !lo = n then 0 else !lo

let lookup t key = snd t.points.(successor_index t (hash_of key))

let successors t key n =
  let total = Array.length t.points in
  let start = successor_index t (hash_of key) in
  let want = min n (List.length t.members) in
  let rec walk i acc found =
    if found >= want then List.rev acc
    else
      let s = snd t.points.((start + i) mod total) in
      if List.mem s acc then walk (i + 1) acc found
      else walk (i + 1) (s :: acc) (found + 1)
  in
  if n <= 0 then [] else walk 0 [] 0
