lib/core/tnv.mli:
