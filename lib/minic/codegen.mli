(** Code generation from checked MiniC to the Alpha-like IR.

    The generated code mirrors what a conventional optimizing compiler for
    a 64-bit Alpha-class machine emits, before any operand-gating analysis:

    - arithmetic runs at width [W32] when both promoted operands are
      [int]-or-narrower (the Alpha addl/addq split), and [W64] otherwise;
      address arithmetic is always [W64];
    - [char] is an unsigned byte: byte loads are zero-extending and
      assignments to [char] lvalues mask with [Msk W8];
    - every expression value and every named scalar gets its own {e
      virtual} register ([Ogc_isa.Reg.vreg]); arrays live in the frame or
      in global data; register moves are encoded as [Or r, #0] (the Alpha
      BIS idiom) so the allocator's coalescer can remove them;
    - arguments are moved into the argument registers explicitly and
      results out of [r0]; nothing is saved around calls — call-crossing
      lifetimes are the register allocator's job ([Ogc_regalloc]);
    - short-circuit [&&]/[||] lower to branches; [?:] lowers to [Cmov]
      when both arms are call-free.

    The emitted frame covers only local arrays; the allocator later
    re-sizes it for spill slots and callee-saved saves.  Width
    re-encoding is left entirely to VRP/VRS, as in the paper. *)

exception Codegen_bug of string
(** Internal invariant violation; indicates a bug, not a user error. *)

val gen_program : Ast.program -> Ogc_ir.Prog.t
(** Assumes {!Typecheck.check} succeeded.  The result passes
    {!Ogc_ir.Validate.program} with [~allow_virtual:true]; run
    [Ogc_regalloc.Regalloc.program] to obtain an executable program over
    architectural registers only. *)
