(** Basic-block labels.

    A label is the index of a block inside its function's block array, so
    labels are only meaningful within one function. *)

type t = private int

val of_int : int -> t
val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
