lib/workloads/workload.ml: Bytes List Ogc_ir Ogc_minic String W_compress W_gcc W_go W_ijpeg W_li W_m88ksim W_perl W_vortex
