module J = Ogc_json.Json
module Pool = Ogc_exec.Pool
module Metrics = Ogc_obs.Metrics
module Span = Ogc_obs.Span
module Log = Ogc_obs.Log
module Flight = Ogc_obs.Flight

exception Deadline_exceeded

(* Per-op request counters and latency histograms; "invalid" covers
   lines that never parsed far enough to name an op. *)
let known_ops =
  [ "analyze"; "stats"; "ping"; "metrics"; "fetch"; "put"; "trace"; "flight";
    "profile"; "respec"; "invalid" ]

let m_requests =
  List.map
    (fun o ->
      (o, Metrics.counter "ogc_server_requests_total" ~labels:[ ("op", o) ]))
    known_ops

let m_latency =
  List.map
    (fun o ->
      ( o,
        Metrics.histogram "ogc_server_request_seconds" ~labels:[ ("op", o) ]
      ))
    known_ops

type addr = Unix_sock of string | Tcp of string * int

type config = {
  addr : addr;
  jobs : int option;
  queue_limit : int;
  cache_capacity : int;
  cache_dir : string option;
  shard_id : string option;
  slow_ms : float option; (* flight-recorder slow-request threshold *)
  inject_slow_ms : float option; (* fault injection: delay every analyze *)
  respecialize : bool;
      (* serve the previous-epoch artifact and re-specialize in the
         background when a profile push outdates a cached result;
         [false] recomputes synchronously instead *)
}

let default_config addr =
  { addr;
    jobs = None;
    queue_limit = 64;
    cache_capacity = 256;
    cache_dir = None;
    shard_id = None;
    slow_ms = None;
    inject_slow_ms = None;
    respecialize = true }

let addr_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let lat_window = 1024

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  pool : Pool.t;
  cache : Cache.t;
  passes : Ogc_pass.Pass.Store.t;
      (* per-pass artifact tier under the whole-result cache: a request
         that misses [cache] still reuses the chain-prefix artifacts
         (VRP fixpoint, training profiles) computed by earlier requests *)
  profiles : Profile_store.t;
      (* accumulated execution profiles, one per program (route_key) *)
  pending : int Atomic.t;  (* analyses queued or running *)
  stopping : bool Atomic.t;
  started : float;
  m : Mutex.t;  (* guards the mutable fields below *)
  served : (string, int * string) Hashtbl.t;
      (* epoch-free cache key -> (epoch, epoch-salted key) of the newest
         artifact computed for that request shape: where the
         stale-while-revalidate path finds the previous-epoch answer *)
  respec_inflight : (string, unit) Hashtbl.t;
      (* epoch-salted keys with a background re-specialization queued or
         running — dedup so a burst of stale hits schedules one *)
  mutable conns : Unix.file_descr list;
  mutable threads : Thread.t list;
  mutable requests : int;
  mutable analyses : int;  (* cache misses actually computed *)
  mutable errors : int;
  mutable rejected : int;  (* overload replies *)
  mutable expired : int;  (* deadline replies *)
  mutable fetches : int;  (* replication fetch ops served *)
  mutable fetch_hits : int;  (* ... that found the key *)
  mutable puts : int;  (* replication put ops accepted *)
  mutable stale_served : int;  (* previous-epoch answers served *)
  mutable respecs : int;  (* background re-specializations completed *)
  latencies : float array;  (* ring of the last [lat_window] latencies, ms *)
  mutable lat_n : int;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* --- socket setup --------------------------------------------------------- *)

let sockaddr_of = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } ->
          Fmt.failwith "cannot resolve %s" host
        | h -> h.Unix.h_addr_list.(0)
        | exception Not_found -> Fmt.failwith "cannot resolve %s" host)
    in
    Unix.ADDR_INET (ip, port)

let create cfg =
  let domain =
    match cfg.addr with Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match cfg.addr with
  | Unix_sock path ->
    (* A stale socket file from a previous run would make bind fail. *)
    if Sys.file_exists path then Unix.unlink path
  | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
  Unix.bind fd (sockaddr_of cfg.addr);
  Unix.listen fd 64;
  (match cfg.slow_ms with
  | Some _ -> Flight.set_slow_ms cfg.slow_ms
  | None -> ());
  (* Co-located shards sharing a cache_dir get disjoint subdirectories,
     so their atomic tmp+rename writes can never collide on one path. *)
  let cache_dir =
    match (cfg.cache_dir, cfg.shard_id) with
    | Some d, Some id ->
      if not (Sys.file_exists d) then Unix.mkdir d 0o755;
      Some (Filename.concat d ("shard-" ^ id))
    | d, _ -> d
  in
  { cfg;
    listen_fd = fd;
    pool = Pool.create ?jobs:cfg.jobs ();
    cache = Cache.create ~capacity:cfg.cache_capacity ?dir:cache_dir ();
    passes = Ogc_pass.Pass.Store.create ~capacity:cfg.cache_capacity ();
    profiles = Profile_store.create ~capacity:cfg.cache_capacity ();
    pending = Atomic.make 0;
    stopping = Atomic.make false;
    started = Unix.gettimeofday ();
    m = Mutex.create ();
    served = Hashtbl.create 64;
    respec_inflight = Hashtbl.create 8;
    conns = [];
    threads = [];
    requests = 0;
    analyses = 0;
    errors = 0;
    rejected = 0;
    expired = 0;
    fetches = 0;
    fetch_hits = 0;
    puts = 0;
    stale_served = 0;
    respecs = 0;
    latencies = Array.make lat_window 0.0;
    lat_n = 0 }

(* Co-located in-process shards: wire every shard's pass store to peek
   at its siblings' on a local miss, so a chain-prefix artifact computed
   on any shard is visible fleet-wide.  [peek] never takes a sibling's
   find path, so the consultation cannot recurse or deadlock. *)
let link_stores ts =
  List.iter
    (fun t ->
      let siblings = List.filter (fun s -> s != t) ts in
      Ogc_pass.Pass.Store.set_fallback t.passes (fun ~pass key ->
          List.find_map
            (fun s -> Ogc_pass.Pass.Store.peek s.passes ~pass key)
            siblings))
    ts

(* --- stats ----------------------------------------------------------------- *)

let percentile = Metrics.percentile_sorted

let stats_json t =
  let c = Cache.stats t.cache in
  let lats, counters, repl, stale =
    locked t (fun () ->
        ( Array.sub t.latencies 0 (min t.lat_n lat_window),
          (t.requests, t.analyses, t.errors, t.rejected, t.expired, t.lat_n),
          (t.fetches, t.fetch_hits, t.puts),
          (t.stale_served, t.respecs) ))
  in
  let requests, analyses, errors, rejected, expired, lat_n = counters in
  let fetches, fetch_hits, puts = repl in
  let stale_served, respecs = stale in
  Array.sort compare lats;
  let lookups = c.Cache.hits + c.Cache.misses in
  J.Obj
    ((match t.cfg.shard_id with
     | Some id -> [ ("shard_id", J.Str id) ]
     | None -> [])
    @ [ ("uptime_s", J.Float (Unix.gettimeofday () -. t.started));
      ("requests", J.Int requests);
      ("analyses", J.Int analyses);
      ("errors", J.Int errors);
      ("rejected", J.Int rejected);
      ("expired", J.Int expired);
      ("cache",
       J.Obj
         [ ("entries", J.Int c.Cache.entries);
           ("capacity", J.Int c.Cache.capacity);
           ("hits", J.Int c.Cache.hits);
           ("misses", J.Int c.Cache.misses);
           ("hit_rate",
            J.Float
              (if lookups = 0 then 0.0
               else float_of_int c.Cache.hits /. float_of_int lookups));
           ("evictions", J.Int c.Cache.evictions);
           ("disk_hits", J.Int c.Cache.disk_hits);
           ("mem_bytes", J.Int c.Cache.mem_bytes);
           ("disk_entries", J.Int c.Cache.disk_entries);
           ("disk_bytes", J.Int c.Cache.disk_bytes) ]);
      ("passes",
       J.Obj
         [ ("artifacts", J.Int (Ogc_pass.Pass.Store.entries t.passes));
           ("by_pass",
            J.Obj
              (let replicas =
                 Ogc_pass.Pass.Store.replica_stats t.passes
               in
               List.map
                 (fun (n, h, m) ->
                   ( n,
                     J.Obj
                       ([ ("hits", J.Int h); ("misses", J.Int m) ]
                       @
                       match List.assoc_opt n replicas with
                       | Some r -> [ ("replica", J.Int r) ]
                       | None -> []) ))
                 (Ogc_pass.Pass.Store.pass_stats t.passes))) ]);
      ("replication",
       J.Obj
         [ ("fetches", J.Int fetches);
           ("fetch_hits", J.Int fetch_hits);
           ("puts", J.Int puts) ]);
      ("profile",
       (let programs, pushes = Profile_store.stats t.profiles in
        let fn_hits, fn_runs =
          Ogc_core.Vrp.Fn_cache.stats
            (Ogc_pass.Pass.Store.fn_cache t.passes)
        in
        J.Obj
          [ ("programs", J.Int programs);
            ("pushes", J.Int pushes);
            ("stale_served", J.Int stale_served);
            ("respecializations", J.Int respecs);
            (* per-function VRP memo behind every chain this store ran:
               hits are functions whose final recorded pass was replayed
               rather than recomputed *)
            ("fn_cache",
             J.Obj [ ("hits", J.Int fn_hits); ("runs", J.Int fn_runs) ]) ]));
      ("latency_ms",
       J.Obj
         [ ("count", J.Int lat_n);
           ("p50", J.Float (percentile lats 0.50));
           ("p95", J.Float (percentile lats 0.95)) ]);
      (* Per-op second-denominated histograms from the metrics registry;
         all-zero until metrics are enabled. *)
      ("latency_by_op",
       J.Obj (List.map (fun (o, h) -> (o, Metrics.histogram_json h)) m_latency));
      ("pool",
       J.Obj
         [ ("jobs", J.Int (Pool.size t.pool));
           ("pending", J.Int (Atomic.get t.pending));
           ("queue_limit", J.Int t.cfg.queue_limit) ]) ])

let record_latency t ms =
  locked t (fun () ->
      t.latencies.(t.lat_n mod lat_window) <- ms;
      t.lat_n <- t.lat_n + 1)

(* --- request handling ------------------------------------------------------ *)

let envelope ?id ~status extra =
  J.to_string ~indent:false
    (J.Obj
       (("version", J.Str Version.version)
        :: (match id with Some s -> [ ("id", J.Str s) ] | None -> [])
        @ (("status", J.Str status) :: extra)))

(* Per-request facts the flight recorder wants but only the handler
   knows; filled in as the request progresses, written once at the end
   of [handle_line]. *)
type flight_info = {
  mutable fi_id : string option;
  mutable fi_trace : string option;
  mutable fi_key : string;
  mutable fi_queue_ms : float;
  mutable fi_cache : string;
  mutable fi_status : string;
}

let shard_name t =
  match t.cfg.shard_id with Some i -> "shard-" ^ i | None -> "serve"

(* One background re-specialization per (request shape, epoch),
   admission-gated by the same bounded queue as foreground analyses;
   when the queue is full the respec is simply dropped — the next stale
   hit retries.  The task records a synthetic "respec" flight entry so
   the recorder shows background work next to the requests that rode on
   stale answers while it ran. *)
let schedule_respec t ~(req : Protocol.request) ~rkey ~wire ~epoch ~key
    ~base_key =
  let fresh =
    locked t (fun () ->
        if Hashtbl.mem t.respec_inflight key then false
        else begin
          Hashtbl.replace t.respec_inflight key ();
          true
        end)
  in
  if fresh then begin
    if Atomic.fetch_and_add t.pending 1 >= t.cfg.queue_limit then begin
      Atomic.decr t.pending;
      locked t (fun () -> Hashtbl.remove t.respec_inflight key)
    end
    else begin
      let submitted = Unix.gettimeofday () in
      ignore
        (Pool.submit t.pool (fun () ->
             let t1 = Unix.gettimeofday () in
             let outcome =
               try
                 let payload =
                   Span.with_ ~name:"respecialize"
                     ~args:[ ("epoch", J.Int epoch) ]
                     (fun () ->
                       J.to_string ~indent:false
                         (Protocol.analyze ~store:t.passes ?wire req))
                 in
                 Cache.store t.cache key payload;
                 locked t (fun () ->
                     t.respecs <- t.respecs + 1;
                     match Hashtbl.find_opt t.served base_key with
                     | Some (e, _) when e >= epoch -> ()
                     | _ -> Hashtbl.replace t.served base_key (epoch, key));
                 "ok"
               with _ ->
                 locked t (fun () -> t.errors <- t.errors + 1);
                 "error"
             in
             Atomic.decr t.pending;
             locked t (fun () -> Hashtbl.remove t.respec_inflight key);
             Flight.record
               { Flight.f_id = req.Protocol.id;
                 f_trace = None;
                 f_key = rkey;
                 f_shard = shard_name t;
                 f_op = "respec";
                 f_queue_ms = (t1 -. submitted) *. 1000.0;
                 f_hedged = false;
                 f_cache = "miss";
                 f_outcome = outcome;
                 f_ms = (Unix.gettimeofday () -. t1) *. 1000.0;
                 f_ts = t1 };
             if Metrics.enabled () then
               match List.assoc_opt "respec" m_requests with
               | Some c -> Metrics.incr c
               | None -> ()))
    end
  end

(* Stale-while-revalidate: a profile push re-addressed this request (its
   epoch joined the cache key), so the fresh key misses — answer from
   the newest previous-epoch artifact immediately and re-specialize in
   the background.  [None] means no usable stale answer: compute
   synchronously as usual. *)
let serve_stale t ~t0 ~fi ?id ~(req : Protocol.request) ~rkey ~wire ~epoch
    ~key ~base_key () =
  if epoch = 0 || not t.cfg.respecialize then None
  else
    match
      locked t (fun () ->
          match Hashtbl.find_opt t.served base_key with
          | Some (e_old, old_key) when e_old < epoch -> Some (e_old, old_key)
          | _ -> None)
    with
    | None -> None
    | Some (e_old, old_key) -> (
      match Cache.find t.cache old_key with
      | None -> None
      | Some payload ->
        schedule_respec t ~req ~rkey ~wire ~epoch ~key ~base_key;
        record_latency t ((Unix.gettimeofday () -. t0) *. 1000.0);
        fi.fi_cache <- "stale";
        locked t (fun () -> t.stale_served <- t.stale_served + 1);
        Some
          (envelope ?id ~status:"ok"
             [ ("cache", J.Str "stale");
               ("profile_epoch", J.Int epoch);
               ("served_epoch", J.Int e_old);
               ("result", J.of_string payload) ]))

let handle_analyze t ~t0 ~fi (req : Protocol.request) =
  (match t.cfg.inject_slow_ms with
  | Some ms when ms > 0.0 -> Thread.delay (ms /. 1000.0)
  | _ -> ());
  let id = req.Protocol.id in
  let rkey = Protocol.route_key req in
  fi.fi_key <- rkey;
  (* One consistent snapshot of the program's accumulated profile: the
     epoch that salts the key is the epoch of the very copy the chain
     will consume.  Only VRS chains consume profiles — every other pass
     keeps its epoch-free key, so a push never invalidates it. *)
  let wire =
    match req.Protocol.pass with
    | Protocol.P_vrs -> Profile_store.find t.profiles rkey
    | _ -> None
  in
  let epoch =
    match wire with Some w -> Ogc_pass.Profile.epoch w | None -> 0
  in
  let key = Protocol.cache_key ~epoch req in
  let base_key = if epoch = 0 then key else Protocol.cache_key req in
  (* Record even at epoch 0: the pre-push artifact is exactly what the
     stale path wants to serve after the first push. *)
  let note_served () =
    if req.Protocol.pass = Protocol.P_vrs then
      locked t (fun () ->
          (* advisory map (a dangling entry just misses the stale path),
             so a hard reset is an acceptable bound *)
          if Hashtbl.length t.served > 4 * t.cfg.cache_capacity then
            Hashtbl.reset t.served;
          match Hashtbl.find_opt t.served base_key with
          | Some (e, _) when e >= epoch -> ()
          | _ -> Hashtbl.replace t.served base_key (epoch, key))
  in
  let fail status =
    fi.fi_status <- status;
    envelope ?id ~status
  in
  match Span.with_ ~name:"cache_lookup" (fun () -> Cache.find t.cache key) with
  | Some payload ->
    record_latency t ((Unix.gettimeofday () -. t0) *. 1000.0);
    fi.fi_cache <- "hit";
    note_served ();
    envelope ?id ~status:"ok"
      [ ("cache", J.Str "hit"); ("result", J.of_string payload) ]
  | None ->
    match
      serve_stale t ~t0 ~fi ?id ~req ~rkey ~wire ~epoch ~key ~base_key ()
    with
    | Some response -> response
    | None ->
    if Option.fold ~none:false ~some:(fun ms -> ms <= 0) req.Protocol.deadline_ms
    then begin
      locked t (fun () -> t.expired <- t.expired + 1);
      fail "deadline_exceeded"
        [ ("error", J.Str "deadline expired before the analysis started") ]
    end
    else if Atomic.fetch_and_add t.pending 1 >= t.cfg.queue_limit then begin
      (* Bounded queue: shed load instead of accepting unbounded work. *)
      Atomic.decr t.pending;
      locked t (fun () -> t.rejected <- t.rejected + 1);
      fail "overloaded"
        [ ("error", J.Str "analysis queue is full, retry later");
          ("queue_limit", J.Int t.cfg.queue_limit) ]
    end
    else begin
      let deadline =
        Option.map (fun ms -> t0 +. (float_of_int ms /. 1000.0))
          req.Protocol.deadline_ms
      in
      let submitted = Unix.gettimeofday () in
      let ticket =
        Pool.submit t.pool (fun () ->
            fi.fi_queue_ms <- (Unix.gettimeofday () -. submitted) *. 1000.0;
            (match deadline with
            | Some d when Unix.gettimeofday () > d -> raise Deadline_exceeded
            | _ -> ());
            (* Runs on a worker domain: this span (and the build/
               simulate/energy spans below it) lands on that domain's
               track, with the queue wait visible as the gap from the
               connection thread's enclosing request span. *)
            Span.with_ ~name:"analyze"
              ~args:[ ("pass", J.Str (Protocol.pass_name req.Protocol.pass)) ]
              (fun () ->
                J.to_string ~indent:false
                  (Protocol.analyze ~store:t.passes ?wire req)))
      in
      let outcome =
        match Pool.await ticket with
        | payload -> Ok payload
        | exception e -> Error e
      in
      Atomic.decr t.pending;
      match outcome with
      | Ok payload ->
        Cache.store t.cache key payload;
        note_served ();
        record_latency t ((Unix.gettimeofday () -. t0) *. 1000.0);
        locked t (fun () -> t.analyses <- t.analyses + 1);
        fi.fi_cache <- "miss";
        envelope ?id ~status:"ok"
          [ ("cache", J.Str "miss"); ("result", J.of_string payload) ]
      | Error Deadline_exceeded ->
        locked t (fun () -> t.expired <- t.expired + 1);
        fail "deadline_exceeded"
          [ ("error", J.Str "deadline expired before the analysis started") ]
      | Error (J.Parse_error msg | Failure msg) ->
        locked t (fun () -> t.errors <- t.errors + 1);
        fail "error" [ ("error", J.Str msg) ]
      | Error e ->
        locked t (fun () -> t.errors <- t.errors + 1);
        fail "error" [ ("error", J.Str (Printexc.to_string e)) ]
    end

let handle_line t line =
  let t0 = Unix.gettimeofday () in
  locked t (fun () -> t.requests <- t.requests + 1);
  let fi =
    { fi_id = None; fi_trace = None; fi_key = ""; fi_queue_ms = 0.0;
      fi_cache = ""; fi_status = "ok" }
  in
  let err status = fi.fi_status <- status in
  let op_name, response =
    match J.of_string line with
    | exception J.Parse_error msg ->
      locked t (fun () -> t.errors <- t.errors + 1);
      err "error";
      ("invalid", envelope ~status:"error" [ ("error", J.Str msg) ])
    | j -> (
      let id = match J.member "id" j with J.Str s -> Some s | _ -> None in
      fi.fi_id <- id;
      match Protocol.op_of_json j with
      | exception J.Parse_error msg ->
        locked t (fun () -> t.errors <- t.errors + 1);
        err "error";
        ("invalid", envelope ?id ~status:"error" [ ("error", J.Str msg) ])
      | exception Protocol.Version_mismatch got ->
        locked t (fun () -> t.errors <- t.errors + 1);
        err "unsupported_protocol";
        ( "invalid",
          envelope ?id ~status:"unsupported_protocol"
            [ ("error", J.Str "protocol version mismatch");
              ("expected", J.Int Protocol.proto_version);
              ("got", J.Int got) ] )
      | Protocol.Ping ->
        ("ping", envelope ?id ~status:"ok" [ ("op", J.Str "ping") ])
      | Protocol.Stats ->
        ( "stats",
          envelope ?id ~status:"ok"
            [ ("op", J.Str "stats"); ("result", stats_json t) ] )
      | Protocol.Metrics ->
        ( "metrics",
          envelope ?id ~status:"ok"
            [ ("op", J.Str "metrics");
              ("exposition", J.Str (Metrics.to_prometheus ()));
              ("result", Metrics.to_json ()) ] )
      | Protocol.Trace ->
        ( "trace",
          envelope ?id ~status:"ok"
            [ ("op", J.Str "trace");
              ("process", J.Str (shard_name t));
              ("result", Span.export ()) ] )
      | Protocol.Flight ->
        ( "flight",
          envelope ?id ~status:"ok"
            [ ("op", J.Str "flight"); ("result", Flight.to_json_all ()) ] )
      | Protocol.Fetch key -> (
        locked t (fun () -> t.fetches <- t.fetches + 1);
        match Cache.peek t.cache key with
        | Some payload ->
          locked t (fun () -> t.fetch_hits <- t.fetch_hits + 1);
          ( "fetch",
            envelope ?id ~status:"ok"
              [ ("op", J.Str "fetch");
                ("found", J.Bool true);
                ("result", J.of_string payload) ] )
        | None ->
          ( "fetch",
            envelope ?id ~status:"ok"
              [ ("op", J.Str "fetch"); ("found", J.Bool false) ] ))
      | Protocol.Put (key, result) ->
        Cache.store t.cache key (J.to_string ~indent:false result);
        locked t (fun () -> t.puts <- t.puts + 1);
        ("put", envelope ?id ~status:"ok" [ ("op", J.Str "put") ])
      | Protocol.Profile (preq, delta) ->
        (* Accumulate the observation delta under the program's identity
           and answer with the bumped epoch — the client's receipt that
           subsequent VRS answers will (eventually) reflect it. *)
        let rkey = Protocol.route_key preq in
        fi.fi_key <- rkey;
        let epoch = Profile_store.push t.profiles rkey delta in
        ( "profile",
          envelope ?id ~status:"ok"
            [ ("op", J.Str "profile"); ("epoch", J.Int epoch) ] )
      | Protocol.Analyze req ->
        fi.fi_trace <- req.Protocol.trace_id;
        (* Install the wire trace context around the request span: the
           span then records trace_id/parent_span and reparents the
           ambient context for everything underneath, and the flow-in
           event closes the arrow from the caller's flow-out — both ends
           derive the same id from wire data alone. *)
        let ctx =
          match req.Protocol.trace_id with
          | Some tr when Span.enabled () ->
            Some
              { Span.trace = tr;
                parent = Option.value ~default:0 req.Protocol.parent_span }
          | _ -> None
        in
        let serve () =
          Span.with_ ~name:"request"
            ~args:[ ("op", J.Str "analyze") ]
            (fun () ->
              (match (ctx, req.Protocol.parent_span) with
              | Some c, Some parent ->
                Span.flow_in ~id:(Span.wire_flow_id ~trace:c.Span.trace ~parent)
              | _ -> ());
              handle_analyze t ~t0 ~fi req)
        in
        ( "analyze",
          match ctx with
          | None -> serve ()
          | Some _ -> Span.with_context ctx serve ))
  in
  let dt = Unix.gettimeofday () -. t0 in
  Flight.record
    { Flight.f_id = fi.fi_id;
      f_trace = fi.fi_trace;
      f_key = fi.fi_key;
      f_shard = shard_name t;
      f_op = op_name;
      f_queue_ms = fi.fi_queue_ms;
      f_hedged = false;
      f_cache = fi.fi_cache;
      f_outcome = fi.fi_status;
      f_ms = dt *. 1000.0;
      f_ts = t0 };
  if Metrics.enabled () then begin
    (match List.assoc_opt op_name m_requests with
    | Some c -> Metrics.incr c
    | None -> ());
    match List.assoc_opt op_name m_latency with
    | Some h -> Metrics.observe h dt
    | None -> ()
  end;
  Log.debug "request"
    ~fields:[ ("op", J.Str op_name); ("seconds", J.Float dt) ];
  response

(* --- connections ----------------------------------------------------------- *)

let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let continue = ref true in
     while !continue do
       match input_line ic with
       | "" -> ()
       | line ->
         output_string oc (handle_line t (String.trim line));
         output_char oc '\n';
         flush oc
       | exception (End_of_file | Sys_error _) -> continue := false
     done
   with _ -> ());
  locked t (fun () ->
      t.conns <- List.filter (fun c -> c != fd) t.conns);
  try Unix.close fd with Unix.Unix_error _ -> ()

(* --- lifecycle ------------------------------------------------------------- *)

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* Wake the accept loop with a throwaway connection; [run] does the
       actual drain.  Async-signal-safe enough for a SIGINT handler: no
       locks are taken. *)
    try
      let domain =
        match t.cfg.addr with
        | Unix_sock _ -> Unix.PF_UNIX
        | Tcp _ -> Unix.PF_INET
      in
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (sockaddr_of t.cfg.addr)
       with Unix.Unix_error _ -> ());
      Unix.close fd
    with _ -> ()
  end

let install_sigint t =
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop t))

(* SIGUSR1 dumps the flight recorder as NDJSON to stderr: the incident
   tool for "what were the last few thousand requests?" without
   restarting or reconfiguring anything. *)
let install_sigusr1 () =
  try
    Sys.set_signal Sys.sigusr1
      (Sys.Signal_handle
         (fun _ ->
           Flight.dump stderr;
           flush stderr))
  with Invalid_argument _ -> ()

(* A peer that disconnects mid-write must surface as EPIPE on the
   offending call, not kill the whole process. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let run t =
  ignore_sigpipe ();
  install_sigusr1 ();
  Log.info "ogc-serve: listening"
    ~fields:
      [ ("version", J.Str Version.version);
        ("addr", J.Str (addr_string t.cfg.addr));
        ("jobs", J.Int (Pool.size t.pool));
        ("queue_limit", J.Int t.cfg.queue_limit) ];
  let continue = ref true in
  while !continue do
    if Atomic.get t.stopping then continue := false
    else
      match Unix.accept t.listen_fd with
      | fd, _ ->
        if Atomic.get t.stopping then begin
          (try Unix.close fd with Unix.Unix_error _ -> ());
          continue := false
        end
        else
          locked t (fun () ->
              t.conns <- fd :: t.conns;
              t.threads <- Thread.create (handle_conn t) fd :: t.threads)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (* Graceful drain: stop accepting, nudge idle connections to EOF (a
     connection mid-request still writes its response first — its read
     side only reports EOF on the next request), finish every in-flight
     analysis, then retire the worker domains. *)
  Log.info "ogc-serve: draining"
    ~fields:[ ("pending", J.Int (Atomic.get t.pending)) ];
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.cfg.addr with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  let conns, threads =
    locked t (fun () -> (t.conns, t.threads))
  in
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    conns;
  List.iter Thread.join threads;
  Pool.shutdown t.pool;
  Log.info "ogc-serve: stopped"
    ~fields:
      [ ("uptime_s", J.Float (Unix.gettimeofday () -. t.started));
        ("requests", J.Int (locked t (fun () -> t.requests))) ]
