(* SpecInt95 `li` (xlisp) surrogate: a cons-cell list interpreter.
   Dominated by tagged-cell allocation, recursive list traversal
   (sum/map/filter/append/reverse) and small-tag dispatch — the
   pointer-and-recursion profile of a lisp interpreter. *)

let name = "li"
let description = "cons-cell list interpreter (map/filter/fold/append)"

let source () =
  Printf.sprintf
    {|
// li: heap of cons cells as parallel arrays; NIL is -1.
long input_scale = 3;
int seed = 31415;
int car_[8192];
int cdr_[8192];
int freep = 0;

int rnd() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 0x7fff;
}

int cons(int a, int d) {
  int c = freep;
  freep++;
  car_[c] = a;
  cdr_[c] = d;
  return c;
}

int build_list(int n) {
  int l = -1;
  for (int i = 0; i < n; i++) {
    l = cons(rnd() & 255, l);
  }
  return l;
}

long sum_list(int l) {
  if (l < 0) return 0;
  return car_[l] + sum_list(cdr_[l]);
}

int map_double(int l) {
  if (l < 0) return -1;
  return cons(car_[l] * 2, map_double(cdr_[l]));
}

int filter_even(int l) {
  if (l < 0) return -1;
  if ((car_[l] & 1) == 0) return cons(car_[l], filter_even(cdr_[l]));
  return filter_even(cdr_[l]);
}

int append(int a, int b) {
  if (a < 0) return b;
  return cons(car_[a], append(cdr_[a], b));
}

int reverse(int l) {
  int r = -1;
  while (l >= 0) {
    r = cons(car_[l], r);
    l = cdr_[l];
  }
  return r;
}

int length(int l) {
  int n = 0;
  while (l >= 0) {
    n++;
    l = cdr_[l];
  }
  return n;
}

int main() {
  long acc = 0;
  int rounds = 4 + 4 * (int)input_scale;
  int len = 200 * (int)input_scale;
  for (int round = 0; round < rounds; round++) {
    freep = 0;  // reset the heap each round (no GC, as in a fresh arena)
    int a = build_list(len);
    int b = map_double(a);
    int c = filter_even(a);
    int d = append(c, b);
    int e = reverse(d);
    acc += sum_list(b) - sum_list(a);
    acc = acc * 7 + length(c) + length(e);
    acc += sum_list(e) & 0xffff;
  }
  emit(acc);
  emit(freep);
  return 0;
}
|}

