type structure =
  | Rename
  | Bpred
  | Iq
  | Rob
  | Rename_buffers
  | Lsq
  | Regfile
  | Icache
  | Dcache1
  | Dcache2
  | Alu
  | Muldiv
  | Resultbus
  | Clock

let all_structures =
  [ Rename; Bpred; Iq; Rob; Rename_buffers; Lsq; Regfile; Icache; Dcache1;
    Dcache2; Alu; Muldiv; Resultbus; Clock ]

let structure_name = function
  | Rename -> "Rename"
  | Bpred -> "Branch Predictor"
  | Iq -> "Instruction Queue"
  | Rob -> "ROB"
  | Rename_buffers -> "Rename Buffers"
  | Lsq -> "LSQ"
  | Regfile -> "Register File"
  | Icache -> "I-cache"
  | Dcache1 -> "D-cache (L1)"
  | Dcache2 -> "D-cache (L2)"
  | Alu -> "FU"
  | Muldiv -> "Mul/Div"
  | Resultbus -> "Result bus"
  | Clock -> "Clock"

type t = {
  base : structure -> float;
  width_fraction : structure -> float;
  residual : float;
  tag_bit_nj : float;
}

(* Per-access base energies (nJ), Wattch-flavoured proportions for the
   4-wide Table 2 machine. *)
let default_base = function
  | Rename -> 0.22
  | Bpred -> 0.30
  | Iq -> 0.40
  | Rob -> 0.30
  | Rename_buffers -> 0.28
  | Lsq -> 0.30
  | Regfile -> 0.22
  | Icache -> 1.40
  | Dcache1 -> 0.90
  | Dcache2 -> 2.40
  | Alu -> 0.48
  | Muldiv -> 1.60
  | Resultbus -> 0.30
  | Clock -> 2.80

(* How much of each structure's access energy lives in the 64-bit data
   path.  Matches the paper's Figure 3/9/14 ordering: FU and the
   value-carrying structures gate the most; LSQ and D-cache handle
   addresses and whole lines, so they gate little; front-end structures
   gate nothing. *)
let default_width_fraction = function
  | Rename -> 0.0
  | Bpred -> 0.0
  | Iq -> 0.62
  | Rob -> 0.25
  | Rename_buffers -> 0.80
  | Lsq -> 0.22
  | Regfile -> 0.78
  | Icache -> 0.0
  | Dcache1 -> 0.30
  | Dcache2 -> 0.08
  | Alu -> 0.85
  | Muldiv -> 0.85
  | Resultbus -> 0.82
  | Clock -> 0.0

let default =
  {
    base = default_base;
    width_fraction = default_width_fraction;
    residual = 0.10;
    tag_bit_nj = 0.004;
  }

let with_residual t r =
  if r < 0.0 || r > 1.0 then Fmt.invalid_arg "with_residual %g" r
  else { t with residual = r }

let ideal_gating = with_residual default 0.0
let conservative_gating = with_residual default 0.25

let access_energy t s ~active_bytes ~tag_bits =
  let base = t.base s in
  let wf = t.width_fraction s in
  let k = float_of_int (max 1 (min 8 active_bytes)) /. 8.0 in
  let scaled = base *. wf *. (t.residual +. ((1.0 -. t.residual) *. k)) in
  let fixed = base *. (1.0 -. wf) in
  fixed +. scaled +. (float_of_int tag_bits *. t.tag_bit_nj)

let alu_energy t ~width_bytes =
  access_energy t Alu ~active_bytes:width_bytes ~tag_bits:0
