lib/isa/width.ml: Fmt Format Int Int64
