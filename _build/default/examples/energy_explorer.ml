(* Energy explorer: run one benchmark under every operand-gating policy
   and print the per-structure energy breakdown — the hardware/software
   trade-off of the paper's §4.7, on one workload.

   Run with: dune exec examples/energy_explorer.exe [-- <workload>] *)

module Workload = Ogc_workloads.Workload
module Pipeline = Ogc_cpu.Pipeline
module Policy = Ogc_gating.Policy
module Account = Ogc_energy.Account
module Ep = Ogc_energy.Energy_params
module Vrp = Ogc_core.Vrp
module Render = Ogc_harness.Render

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "m88ksim" in
  let w =
    try Workload.find name
    with Not_found ->
      Format.eprintf "unknown workload %s; try one of: %s@." name
        (String.concat ", "
           (List.map (fun (w : Workload.t) -> w.Workload.name) Workload.all));
      exit 1
  in
  Format.printf "workload: %s — %s (train input)@.@." w.Workload.name
    w.Workload.description;
  (* Two binaries: the baseline and the VRP-re-encoded one. *)
  let base = Workload.compile w Workload.Train in
  let opt = Workload.compile w Workload.Train in
  ignore (Vrp.run opt);
  let runs =
    [ ("none", Policy.No_gating, base);
      ("sw (VRP widths)", Policy.Software, opt);
      ("hw significance", Policy.Hw_significance, base);
      ("hw size", Policy.Hw_size, base);
      ("sw + significance", Policy.Sw_plus_significance, opt);
      ("sw + size", Policy.Sw_plus_size, opt) ]
  in
  let stats =
    List.map (fun (n, p, prog) -> (n, Pipeline.simulate ~policy:p prog)) runs
  in
  let baseline = List.assoc "none" stats in
  let e s = Account.total s.Pipeline.energy in
  Format.printf "%s"
    (Render.table
       ~header:[ "Policy"; "Energy (nJ)"; "Cycles"; "Saving"; "ED^2 saving" ]
       (List.map
          (fun (n, s) ->
            [ n;
              Printf.sprintf "%.0f" (e s);
              string_of_int s.Pipeline.cycles;
              Render.pct (Account.savings ~baseline:(e baseline) ~improved:(e s));
              Render.pct
                (Account.savings
                   ~baseline:
                     (Account.ed2 ~energy:(e baseline)
                        ~cycles:baseline.Pipeline.cycles)
                   ~improved:(Account.ed2 ~energy:(e s) ~cycles:s.Pipeline.cycles))
            ])
          stats));
  (* Per-structure breakdown for the most interesting pair. *)
  let sw = List.assoc "sw (VRP widths)" stats in
  let hw = List.assoc "hw significance" stats in
  Format.printf "@.Per-structure savings vs the ungated baseline:@.%s"
    (Render.table
       ~header:[ "Structure"; "software (VRP)"; "hw significance" ]
       (List.map
          (fun st ->
            let sv s =
              Account.savings
                ~baseline:(Account.energy_of baseline.Pipeline.energy st)
                ~improved:(Account.energy_of s.Pipeline.energy st)
            in
            [ Ep.structure_name st; Render.pct (sv sw); Render.pct (sv hw) ])
          [ Ep.Iq; Ep.Rename_buffers; Ep.Lsq; Ep.Regfile; Ep.Dcache1; Ep.Alu;
            Ep.Resultbus ]));
  Format.printf "@.IPC %.2f, %d branches (%.1f%% mispredicted), %d L1D misses@."
    (Pipeline.ipc baseline) baseline.Pipeline.branches
    (100.0
    *. float_of_int baseline.Pipeline.mispredictions
    /. float_of_int (max 1 baseline.Pipeline.branches))
    baseline.Pipeline.dcache_misses
