(** Value Range Propagation (paper §2).

    A flow-sensitive, interprocedural interval analysis over the binary-
    level IR, followed by a backward {e useful-width} (demand) analysis and
    a width-assignment / re-encoding step:

    - {b Initial ranges} (§2.1) come from narrow opcodes already in the
      binary (byte/halfword/word loads and stores, [W32] arithmetic),
      immediate moves, and branch conditions.
    - {b Forward propagation} (§2.2) pushes ranges through every transfer
      function of {!Interval}, joining over control-flow predecessors;
      branch conditions refine the tested register — and, by pattern
      matching a compare feeding the branch, the compared registers — on
      each outgoing edge (§2.2.4).  Two's-complement wrap-around widens a
      result to the full range of the operation width (§2.2.1).
    - {b Loops} (§2.3): instead of the paper's syntactic [x = ax+b] trip
      count, the engine applies directional widening at join points after
      [widen_after] visits and then re-narrows; combined with branch
      refinement this yields the paper's example result (iterator
      [<0,99>] inside a [for (i=0;i<100;i++)] loop) while also covering
      loops the syntactic method gives up on.
    - {b Interprocedural propagation} (§2.4): callee return ranges are
      summarized bottom-up over the call graph, argument-register ranges
      top-down from call sites; recursion falls back to ⊤.  Ranges are
      not propagated through memory.
    - {b Useful ranges} (§2.2.5): a backward demand analysis computes, for
      every definition, the widest low-bit slice any semantically relevant
      use can observe (AND masks, [Msk]/[Sext], store widths, shift
      amounts).  Demand propagates through logical operations always, and
      through wrapping arithmetic only when [useful_through_arith] is set
      (the paper forbids it; it is sound in this IR because the low [k]
      bits of add/sub/mul/shift-left depend only on the low [k] bits of
      the inputs — kept as an ablation).
    - {b Width assignment}: each re-encodable instruction gets the
      narrowest width in {8,16,32,64} that preserves the semantics of its
      (already encoded) width: value-determined operations (compare,
      divide, right shift) need every live input and the output to fit;
      low-bit-determined operations only need the output's useful width.
      Memory operation widths are fixed by data layout and never change. *)

open Ogc_isa
open Ogc_ir

(** A range assumption installed at a block entry (used by VRS to inject
    the guard-established range into a specialized clone). *)
type assumption = {
  af : string;  (** function name *)
  alabel : Label.t;
  areg : Reg.t;
  arange : Interval.t;
}

type config = {
  useful : bool;
      (** enable useful-range backward propagation (the "Proposed VRP" of
          Figure 2); [false] gives the conventional VRP baseline *)
  useful_through_arith : bool;  (** ablation extension, default [false] *)
  widen_after : int;  (** visits of a block before widening; default 3 *)
  interproc_rounds : int;  (** summary refinement rounds; default 2 *)
  assumptions : assumption list;
}

val default_config : config
val conventional_config : config

type result

(** Fixpoint iteration strategy.  [Dense] (the default) is a priority
    worklist over int-indexed per-block state buffers, ordered by reverse
    postorder — a topological order of the SCC condensation — with a round
    barrier that makes it sweep-equivalent to [Naive]; acyclic regions
    converge in one visit.  [Naive] is the retained reference engine: full
    reverse-postorder sweeps until quiescence.  Both produce bit-identical
    results; the property tests check it. *)
type engine = Dense | Naive

(** Fixpoint effort: [visits] counts block processings with a non-⊥ input
    during ascending iteration, [rounds] counts worklist rounds (sweeps),
    summed over every function and interprocedural round. *)
type fixpoint_stats = { visits : int; rounds : int }

(** Function-granular memo of the final recorded pass, shared across
    whole-program runs.  Per function, that pass is a pure function of
    the function's code and its analysis inputs (argument ranges, each
    callee's visible return range, resolvable global addresses, config
    and engine); the cache keys a positional fragment of the recorded
    facts by a digest of exactly those inputs, rendered through the
    iid-free assembly printer — so a fragment survives the program-wide
    instruction renumbering an edit of an {e unrelated} function
    causes, and a changed or re-profiled function re-runs alone.  The
    interprocedural summary rounds always run (they are whole-program
    and feed the digests).  Results with and without a cache are
    bit-identical, [fixpoint_stats] included.  Thread-safe; bounded
    (FIFO eviction). *)
module Fn_cache : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Default capacity: 4096 function fragments. *)

  val stats : t -> int * int
  (** [(hits, runs)]: fragment replays vs. live per-function final
      passes since {!create}. *)
end

(** [analyze ?config ?engine ?jobs ?fn_cache prog] runs the analysis;
    [prog] is not modified.  [jobs] parallelizes the per-function
    analyses over domains (default 1; [0] means auto); results are
    identical at any value.  [fn_cache] memoizes the per-function final
    pass across runs (see {!Fn_cache}). *)
val analyze :
  ?config:config ->
  ?engine:engine ->
  ?jobs:int ->
  ?fn_cache:Fn_cache.t ->
  Prog.t ->
  result

(** [range_of result iid] is the interval of the value produced by
    instruction [iid] ([None] for instructions producing no value or
    never analyzed). *)
val range_of : result -> int -> Interval.t option

(** [useful_width_of result iid] is the demanded width of [iid]'s output. *)
val useful_width_of : result -> int -> Width.t option

(** [width_of result iid] is the width the instruction would be re-encoded
    with (its original width when it cannot be narrowed). *)
val width_of : result -> int -> Width.t option

(** [apply result prog] re-encodes every narrowable instruction in place
    with its assigned width.  Semantics are preserved (the test suite
    checks checksum equality on every workload). *)
val apply : result -> Prog.t -> unit

(** [run ?config ?jobs ?fn_cache prog] = [analyze] + [apply]; returns
    the result. *)
val run :
  ?config:config -> ?jobs:int -> ?fn_cache:Fn_cache.t -> Prog.t -> result

(** {1 Introspection for tests and reports} *)

val input_ranges_of : result -> int -> (Interval.t * Interval.t) option
(** Ranges of the two source operands at the instruction, in operand
    order, at the time of the final pass. *)

val return_range : result -> string -> Interval.t option
(** Summarized return-value range of a function. *)

val fixpoint_stats : result -> fixpoint_stats
(** Iteration effort of the analysis that produced [result]. *)

val defs_analyzed : result -> int
(** Number of instructions with a recorded range. *)

val pp_summary : Format.formatter -> result -> unit
