exception Error of string

let wrap_pos what msg (pos : Ast.pos) =
  raise (Error (Printf.sprintf "%s at %d:%d: %s" what pos.line pos.col msg))

let parse src =
  try
    let ast = Parser.parse src in
    ignore (Typecheck.check ast);
    ast
  with
  | Lexer.Error (msg, pos) -> wrap_pos "lexical error" msg pos
  | Parser.Error (msg, pos) -> wrap_pos "syntax error" msg pos
  | Typecheck.Error (msg, pos) -> wrap_pos "semantic error" msg pos

let lower src =
  let ast = parse src in
  try
    let prog = Codegen.gen_program ast in
    Ogc_ir.Validate.program ~allow_virtual:true prog;
    prog
  with
  | Codegen.Codegen_bug msg -> raise (Error ("code generator bug: " ^ msg))
  | Ogc_ir.Validate.Invalid msg ->
    raise (Error ("generated invalid code: " ^ msg))

let compile_with_info src =
  let prog = lower src in
  try
    (* The width oracle runs VRP on the pre-allocation program so spill
       slots can be sized from proven value ranges; it is forced only if
       some function actually spills. *)
    let vrp = lazy (Ogc_core.Vrp.analyze ~jobs:1 prog) in
    let width_of iid =
      match Ogc_core.Vrp.range_of (Lazy.force vrp) iid with
      | Some r -> Ogc_core.Interval.width r
      | None -> Ogc_isa.Width.W64
    in
    let info = Ogc_regalloc.Regalloc.program ~width_of prog in
    Ogc_ir.Validate.program prog;
    (prog, info)
  with
  | Ogc_regalloc.Regalloc.Bound_exceeded { fname; iterations } ->
    raise
      (Error
         (Printf.sprintf
            "register allocation diverged in %s: %d spill iterations" fname
            iterations))
  | Ogc_ir.Validate.Invalid msg ->
    raise (Error ("allocated invalid code: " ^ msg))

let compile src = fst (compile_with_info src)
