(** Backward register liveness per basic block. *)

open Ogc_isa

type t

val compute : Prog.func -> Cfg.t -> t

(** Registers live at block entry. *)
val live_in : t -> Label.t -> Reg.Set.t

(** Registers live at block exit: the union of the successors' live-in
    sets (the terminator's own uses are accounted for inside the block
    transfer, not here). *)
val live_out : t -> Label.t -> Reg.Set.t

(** [term_uses term] is the set of registers a terminator reads. *)
val term_uses : Prog.terminator -> Reg.Set.t
