lib/workloads/w_li.ml: Printf
