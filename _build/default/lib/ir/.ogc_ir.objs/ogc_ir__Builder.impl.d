lib/ir/builder.ml: Array Fmt Label List Prog
