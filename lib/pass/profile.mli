(** Streamed execution profiles — the payload of the server's `profile`
    op and the input profile-dependent passes consume in place of their
    training interpreter runs.

    A profile carries basic-block execution counts (keyed by function,
    indexed by block label), per-instruction TNV-style (value, count)
    observations, and per-instruction always-zero observation counts.
    Instruction ids refer to the program as submitted.  The JSON codec
    serves both client deltas and accumulated snapshots; TNV values
    travel as decimal strings so full-width int64s survive JSON. *)

module Interp = Ogc_ir.Interp
module J = Ogc_json.Json

type t = {
  mutable p_epoch : int;  (** 0 = no profile pushed yet *)
  p_bb : Interp.bb_counts;
  mutable p_total : int;  (** total dynamic instructions behind [p_bb] *)
  p_values : (int, (int64 * int) list) Hashtbl.t;
  p_zeros : (int, int) Hashtbl.t;
}

val create : unit -> t
val epoch : t -> int

val copy : t -> t
(** Deep copy; the store's accumulator must never alias what a request
    consumes. *)

val values_table : t -> (int, (int64 * int) list) Hashtbl.t
(** Per-candidate observations for {!Ogc_core.Vrs.analyze}'s [values]
    input, with the always-zero table folded in as (0, count) entries. *)

val merge_into : t -> t -> unit
(** [merge_into dst delta] accumulates counts; epochs are the caller's
    concern and are not touched. *)

val to_json : t -> J.t

exception Malformed of string

val of_json : J.t -> t
(** Raises {!Malformed} on a shape violation (message names the
    offending member). *)
