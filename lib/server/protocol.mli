(** Wire protocol of the optimization service.

    Requests and responses are newline-delimited JSON objects (NDJSON):
    one request per line, one response line per request, in order.  A
    request carries a program in exactly one of four forms —

    - ["source"]: MiniC source text;
    - ["asm"]: the {!Ogc_ir.Asm} save format;
    - ["prog"]: a {!Ogc_ir.Prog_json} object;
    - ["workload"]: the name of a built-in benchmark —

    plus options: ["pass"] (["none"]/["vrp"]/["vrs"], default none),
    ["policy"] (a {!Ogc_gating.Policy.name}; defaults to software gating
    when a pass runs, no gating otherwise), ["input"]
    (["train"]/["ref"]), ["cost"] (the VRS cost label, default 50),
    ["deadline_ms"], ["return_program"] (include the re-encoded program
    in the result), ["id"] (opaque, echoed in the response),
    ["trace_id"]/["parent_span"] (distributed-trace context), and ["op"]
    (["analyze"] default, ["stats"], ["ping"], ["metrics"], ["trace"],
    ["flight"], ["profile"]).

    The result payload of an analysis contains the static and dynamic
    width histograms of the optimized program, modelled energy / IPC and
    their deltas against the untransformed ungated baseline, the
    per-structure energy split, and the output checksum (asserted equal
    to the baseline's — an optimization that changes program output is
    an error, exactly as in the batch harness). *)

type payload =
  | Source of string
  | Asm_text of string
  | Prog_tree of Ogc_json.Json.t
  | Workload of string

type pass = P_none | P_vrp | P_vrs

type request = {
  id : string option;
  payload : payload;
  input : Ogc_workloads.Workload.input;
  pass : pass;
  policy : Ogc_gating.Policy.t;
  cost : int;  (** VRS cost label (the paper's 30-110 sweep) *)
  deadline_ms : int option;
  return_program : bool;
  trace_id : string option;
      (** distributed-trace id; optional and version-gated like
          ["proto"], excluded from {!cache_key} and {!route_key} *)
  parent_span : int option;
      (** span id of the caller-side span this request should nest
          under (the router's per-attempt span) *)
}

type op =
  | Analyze of request
  | Stats
  | Ping
  | Metrics
  | Fetch of string  (** replication: read a cached result by key *)
  | Put of string * Ogc_json.Json.t
      (** replication: install a result under its key *)
  | Trace  (** return this process's span rings ({!Ogc_obs.Span.export}) *)
  | Flight  (** return the flight-recorder ring ({!Ogc_obs.Flight}) *)
  | Profile of request * Ogc_pass.Profile.t
      (** a client streaming back execution observations for a program
          it previously submitted: the request names the program (its
          {!route_key} addresses the accumulated profile), the payload
          is the decoded ["profile"] delta.  Version-gated like
          ["proto"] — legacy clients never send it. *)

val proto_version : int
(** Version of this wire protocol (carried as the ["proto"] request
    member). *)

exception Version_mismatch of int
(** A request declared a ["proto"] other than {!proto_version} (the
    payload is the client's version).  Servers answer with a structured
    ["unsupported_protocol"] error instead of attempting to parse the
    rest of the request. *)

val op_of_json : Ogc_json.Json.t -> op
(** Raises [Ogc_json.Json.Parse_error] on malformed requests and
    {!Version_mismatch} on a protocol version conflict.  An absent
    ["proto"] member denotes a pre-handshake client and is accepted.
    [fetch]/[put] keys must be 32 lowercase hex characters (the
    {!cache_key} shape). *)

val pass_name : pass -> string
val input_name : Ogc_workloads.Workload.input -> string

val cache_key : ?epoch:int -> request -> string
(** Content address of a request: MD5 over a canonical rendering of the
    program payload, every result-affecting option, and the analyzer
    version — never over [id] or [deadline_ms].  Two requests with equal
    keys receive byte-identical result payloads.  [epoch] (default 0) is
    the program's profile epoch: a positive epoch joins the digest
    input, so each profile push re-addresses the whole result, while
    epoch 0 — no profile, and every legacy client — leaves the key
    byte-identical to what it always was. *)

val route_key : request -> string
(** Shard-placement address: MD5 over the program payload and analyzer
    version {e only}.  All option variants of one program (the VRS cost
    sweep, policy or input flips) share a route key, so a router sending
    equal route keys to one shard concentrates that program's
    chain-prefix artifacts in a single warm {!Ogc_pass.Pass.Store}. *)

val analyze :
  ?store:Ogc_pass.Pass.Store.t ->
  ?wire:Ogc_pass.Profile.t ->
  request ->
  Ogc_json.Json.t
(** Run the requested pass chain and simulation; the cacheable result
    payload.  [store] is an {!Ogc_pass.Pass.Store} of intermediate
    artifacts: requests sharing a program and a chain prefix (e.g. two
    VRS requests differing only in [cost]) then reuse the VRP fixpoint
    and the training/value profiles instead of recomputing them — with
    byte-identical results, warm or cold.  [wire] is the program's
    accumulated streamed profile: a VRS request then consumes the
    client's observations in place of its training interpreter runs and
    grows a [zspec] (zero-specialization) tail on its chain.  Raises
    [Parse_error] on bad programs and [Failure] when an optimization
    changes the program's output. *)
