(** Architectural integer registers.

    The machine follows the Alpha integer register file: 32 registers
    [r0]..[r31], with [r31] hardwired to zero.  The calling convention used
    by the MiniC code generator mirrors the Alpha convention:

    - [r0]        return value ([ret])
    - [r16]-[r21] the first six arguments ([arg 0] .. [arg 5])
    - [r9]-[r14]  callee-saved
    - [r30]       stack pointer ([sp])
    - [r31]       hardwired zero ([zero]) *)

type t = private int

val of_int : int -> t
(** Raises [Invalid_argument] outside [0, 31]. *)

val num_arch : int
(** Number of architectural registers (32). *)

val vreg : int -> t
(** [vreg i] is the [i]-th {e virtual} register (temporary), numbered
    from [num_arch] upward.  Virtual registers exist only between code
    generation and register allocation: the allocator maps every one of
    them to an architectural register or a spill slot, and
    {!Ogc_ir.Validate.program} rejects them unless explicitly allowed. *)

val is_virtual : t -> bool
(** True for registers created by {!vreg}. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val zero : t
val sp : t
val ret : t

val arg : int -> t
(** [arg i] is the [i]-th argument register, [0 <= i < 6]. *)

val num_arg_regs : int
val callee_saved : t list
val caller_saved : t list

(** All 32 registers. *)
val all : t list

(** Registers usable as scratch by the code generator (excludes [sp] and
    [zero]). *)
val allocatable : t list

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
