(* SpecInt95 `gcc` surrogate: constant folding over randomly generated
   expression DAGs.  Dominated by recursive tree walks and dispatch over
   small operator tags — the branchy, pointer-chasing profile of a
   compiler middle end.  Operator tags are heavily skewed (constants and
   additions dominate), giving the value profiler realistic targets. *)

let name = "gcc"
let description = "constant folding over random expression DAGs"

let source () =
  Printf.sprintf
    {|
// gcc: build expression DAGs and constant-fold them bottom-up.
long input_scale = 3;
int seed = 987;
int op[3000];    // 0=const 1=add 2=sub 3=mul 4=and 5=or 6=xor 7=shl 8=neg
int lhs[3000];
int rhs[3000];
int val[3000];
int folded[3000];

int rnd() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 0x7fff;
}

void build(int n) {
  for (int i = 0; i < n; i++) {
    folded[i] = 0;
    if (i < 4) {
      op[i] = 0;
      val[i] = rnd() & 1023;
    } else {
      int r = rnd() & 15;
      // skewed operator mix: mostly consts and adds
      if (r < 5) op[i] = 0;
      else if (r < 10) op[i] = 1;
      else if (r < 11) op[i] = 2;
      else if (r < 12) op[i] = 3;
      else if (r < 13) op[i] = 4;
      else if (r < 14) op[i] = 5;
      else if (r < 15) op[i] = 6;
      else op[i] = 7;
      if (op[i] == 0) val[i] = rnd() & 1023;
      int span = 12;
      if (i < 13) span = i - 1;
      lhs[i] = i - 1 - rnd() %% span;
      rhs[i] = i - 1 - rnd() %% span;
    }
  }
}

int fold(int n) {
  if (folded[n]) return val[n];
  folded[n] = 1;
  if (op[n] == 0) return val[n];
  int a = fold(lhs[n]);
  int r = 0;
  if (op[n] == 8) {
    r = -a;
  } else {
    int b = fold(rhs[n]);
    if (op[n] == 1) r = a + b;
    else if (op[n] == 2) r = a - b;
    else if (op[n] == 3) r = a * b;
    else if (op[n] == 4) r = a & b;
    else if (op[n] == 5) r = a | b;
    else if (op[n] == 6) r = a ^ b;
    else r = a << (b & 7);
  }
  op[n] = 0;
  val[n] = r;
  return r;
}

int main() {
  int n = 1000 * (int)input_scale;
  int rounds = 1 + (int)input_scale;
  long acc = 0;
  long consts = 0;
  for (int round = 0; round < rounds; round++) {
    build(n);
    // fold every root-ish node, reusing memoized subtrees
    for (int i = n - 1; i >= 0; i--) {
      acc = acc * 3 + fold(i);
    }
    for (int i = 0; i < n; i++) {
      if (op[i] == 0) consts++;
    }
  }
  emit(acc);
  emit(consts);
  return 0;
}
|}

