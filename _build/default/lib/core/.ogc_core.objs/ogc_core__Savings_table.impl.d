lib/core/savings_table.ml: List Ogc_energy Ogc_isa Width
