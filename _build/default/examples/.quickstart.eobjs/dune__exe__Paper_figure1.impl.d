examples/paper_figure1.ml: Format Instr List Ogc_core Ogc_ir Ogc_isa Ogc_minic Reg
