lib/workloads/w_perl.ml: Printf
