lib/cpu/machine_config.ml: Printf
