type input = Train | Ref

type t = { name : string; description : string; source : string }

let all =
  [
    { name = W_compress.name; description = W_compress.description;
      source = W_compress.source () };
    { name = W_gcc.name; description = W_gcc.description;
      source = W_gcc.source () };
    { name = W_go.name; description = W_go.description;
      source = W_go.source () };
    { name = W_ijpeg.name; description = W_ijpeg.description;
      source = W_ijpeg.source () };
    { name = W_li.name; description = W_li.description;
      source = W_li.source () };
    { name = W_m88ksim.name; description = W_m88ksim.description;
      source = W_m88ksim.source () };
    { name = W_perl.name; description = W_perl.description;
      source = W_perl.source () };
    { name = W_vortex.name; description = W_vortex.description;
      source = W_vortex.source () };
  ]

let find name = List.find (fun w -> String.equal w.name name) all

let scale = function Train -> 1L | Ref -> 3L

let set_scale (p : Ogc_ir.Prog.t) input =
  match Ogc_ir.Prog.find_global p "input_scale" with
  | Some g -> Bytes.set_int64_le g.init 0 (scale input)
  | None -> invalid_arg "Workload.set_scale: program has no input_scale"

let compile w input =
  let p = Ogc_minic.Minic.compile w.source in
  set_scale p input;
  p

let compile_with_alloc w input =
  let p, info = Ogc_minic.Minic.compile_with_info w.source in
  set_scale p input;
  (p, info)
