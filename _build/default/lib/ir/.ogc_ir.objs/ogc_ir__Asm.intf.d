lib/ir/asm.mli: Format Prog
