(** Minimal JSON tree, printer and parser (no external dependency).

    Originally purpose-built for the machine-readable benchmark results;
    now also the wire format of the [ogc serve] optimization service and
    of the {!Ogc_ir.Prog_json} program serialization, which is why it
    lives below every other library.  Printing is deterministic (object
    members keep the given order, floats print with 17 significant digits
    so doubles round-trip exactly), and [of_string] accepts exactly what
    [to_string] emits plus ordinary interchange JSON (whitespace,
    escapes, nested values).

    Round-tripping is property-tested ([test/test_json.ml]): for every
    string — control characters, high bytes, quotes — and every finite
    float — [-0.], [1e308], subnormals, integer-valued doubles —
    [of_string (to_string v)] reconstructs [v] exactly (bit-for-bit for
    floats).  NaN and infinities print as [null], following the common
    emitter convention. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a position-annotated message. *)

val to_string : ?indent:bool -> t -> string
(** [indent] (default [true]) pretty-prints with two-space indentation;
    the compact form has no whitespace at all.  Both are deterministic. *)

val of_string : string -> t

(** {1 Accessors}

    All raise [Parse_error] with the offending member name on a shape
    mismatch, so a malformed results file fails with a usable message
    rather than a [Match_failure]. *)

val member : string -> t -> t
(** Object member lookup; [Null] when absent. *)

val get_int : string -> t -> int
val get_float : string -> t -> float
(** Accepts both [Int] and [Float] members (a float that prints without
    a fractional part re-parses as an integer). *)

val get_string : string -> t -> string
val get_bool : string -> t -> bool
val get_list : string -> t -> t list
