(** Persistent [Domain] worker pool.

    Two layers share one implementation:

    - a {b persistent pool} ({!create} / {!submit} / {!await} /
      {!shutdown}) for long-lived services: worker domains are spawned
      once and reused across many submissions — the [ogc serve]
      optimization daemon keeps one for its whole lifetime;
    - {b one-shot maps} ({!map} / {!map_timed}) for embarrassingly
      parallel task lists — the experiment harness shards its workload ×
      binary-version × policy grid this way.

    Semantics are strictly deterministic for the maps: results come back
    in submission order regardless of completion order, and a task's
    exception is re-raised in the caller only after every task has run
    (the lowest-index failure wins when several tasks fail), so parallel
    runs are observationally identical to sequential ones.

    Parallelism degree, in decreasing priority:

    - the [?jobs] argument when given;
    - the [OGC_JOBS] environment variable;
    - [Domain.recommended_domain_count ()].

    When a map's resolved degree is 1 (single-core machine, [OGC_JOBS=1])
    no domain is ever spawned and the map degrades to a plain sequential
    loop.  A persistent pool always has at least one worker domain. *)

(** Instrumentation of one [map_timed] run. *)
type stats = {
  jobs : int;  (** worker count actually used *)
  wall_s : float;  (** wall-clock of the whole map *)
  task_s : float array;  (** per-task wall-clock, in submission order *)
}

val jobs_from_env : unit -> int option
(** [OGC_JOBS] as a positive integer, or [None] when unset/unparsable. *)

val default_jobs : unit -> int
(** [OGC_JOBS], else [Domain.recommended_domain_count ()], clamped to
    [1, 64]. *)

val resolve_jobs : int option -> int
(** [resolve_jobs (Some n)] clamps [n]; [resolve_jobs None] is
    [default_jobs ()].  [Some 0] (the CLI's "auto") behaves like
    [None]. *)

(** {1 Persistent pools} *)

type t
(** A pool of worker domains pulling tasks from a shared FIFO queue. *)

type 'a ticket
(** A handle on one submitted task's eventual result. *)

val create : ?jobs:int -> unit -> t
(** Spawn [resolve_jobs jobs] worker domains (at least 1).  The pool
    lives until {!shutdown}. *)

val size : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> 'a) -> 'a ticket
(** Enqueue a task.  Tasks start in FIFO order (completion order depends
    on scheduling).  Raises [Invalid_argument] after {!shutdown}.

    When span tracing is enabled and the submitting thread carries an
    ambient {!Ogc_obs.Span.ctx}, the task runs under that context inside
    a [pool:task] span connected to the submit site by a flow event, so
    worker-side spans nest under the triggering request in traces. *)

val await : 'a ticket -> 'a
(** Block until the task has run; return its value or re-raise its
    exception (with the worker-side backtrace). *)

val await_timed : 'a ticket -> 'a * float
(** {!await} plus the task's wall-clock seconds. *)

val shutdown : t -> unit
(** Graceful drain: stop accepting work, let the queue empty, join every
    worker domain.  Tasks already submitted all run to completion and
    their tickets stay valid.  Idempotent. *)

(** {1 One-shot maps} *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map over a fresh pool (spawned and joined
    inside the call; degree 1 runs inline without domains). *)

val map_timed : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list * stats
(** [map] plus per-task and whole-run timing. *)
