lib/core/cleanup.mli: Ogc_ir Prog
