lib/gating/sigbytes.ml: Int64
