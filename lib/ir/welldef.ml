open Ogc_isa

exception Violation of string

(* Register sets as 32-bit masks; bit i is register i. *)
let bit r = 1 lsl Reg.to_int r
let mem set r = set land bit r <> 0
let add set r = set lor bit r
let universe = (1 lsl 32) - 1

let caller_saved_mask =
  List.fold_left add 0 Reg.caller_saved

let entry_defined (f : Prog.func) =
  let base = List.fold_left add 0 (Reg.zero :: Reg.sp :: Reg.callee_saved) in
  let rec args set i =
    if i >= f.Prog.arity then set else args (add set (Reg.arg i)) (i + 1)
  in
  args base 0

let fail f (b : Prog.block) iid what r =
  raise
    (Violation
       (Printf.sprintf "%s/L%d: %s [%d] reads %s before definition"
          f.Prog.fname
          (Label.to_int b.Prog.label)
          what iid (Reg.to_string r)))

(* Effect of one instruction: check its reads, then update the defined
   set.  A call requires only the argument registers its callee
   declares, then havocs the caller-saved file and produces a result. *)
let step p f b defined (ins : Prog.ins) =
  let require what r = if not (mem defined r) then fail f b ins.Prog.iid what r in
  match ins.Prog.op with
  | Instr.Call { callee } ->
    let arity =
      match Prog.find_func_opt p callee with
      | Some g -> g.Prog.arity
      | None -> 0
    in
    for i = 0 to arity - 1 do
      require "call" (Reg.arg i)
    done;
    add (defined land lnot caller_saved_mask) Reg.ret
  | op ->
    List.iter (require (Instr.to_string op)) (Instr.uses op);
    List.fold_left add defined (Instr.defs op)

let block_out p f defined (b : Prog.block) =
  Array.fold_left (step p f b) defined b.Prog.body

let func p (f : Prog.func) =
  let cfg = Cfg.of_func f in
  let n = Array.length f.Prog.blocks in
  let entry_i = Label.to_int (Cfg.entry cfg) in
  let inset = Array.make n universe in
  inset.(entry_i) <- entry_defined f;
  (* Must-defined forward fixpoint (sets only shrink from [universe]).
     The entry block additionally meets the function's initial state, a
     virtual edge that matters when the entry is also a loop header. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        let i = Label.to_int l in
        let in_ =
          List.fold_left
            (fun acc pl ->
              let p_i = Label.to_int pl in
              acc land block_out p f inset.(p_i) f.Prog.blocks.(p_i))
            universe (Cfg.preds cfg l)
        in
        let in_ = if i = entry_i then in_ land entry_defined f else in_ in
        if in_ <> inset.(i) then begin
          inset.(i) <- in_;
          changed := true
        end)
      (Cfg.reverse_postorder cfg)
  done;
  (* Check pass: replay each reachable block from its fixpoint entry
     state; the folds above only computed, they could not fail because
     unreached states start at [universe]... so re-run with checks. *)
  Array.iter
    (fun (b : Prog.block) ->
      let l = b.Prog.label in
      if Cfg.is_reachable cfg l then begin
        let out = block_out p f inset.(Label.to_int l) b in
        Reg.Set.iter
          (fun r ->
            if not (mem out r) then fail f b b.Prog.term_iid "terminator" r)
          (Liveness.term_uses b.Prog.term)
      end)
    f.Prog.blocks

let program (p : Prog.t) = List.iter (func p) p.Prog.funcs

let check p =
  match program p with () -> None | exception Violation msg -> Some msg
