type t = int

let num_arch = 32

let of_int i =
  if i < 0 || i > 31 then Fmt.invalid_arg "Reg.of_int %d" i else i

let to_int r = r

let vreg i =
  if i < 0 then Fmt.invalid_arg "Reg.vreg %d" i else num_arch + i

let is_virtual r = r >= num_arch
let equal (a : t) (b : t) = a = b
let compare = Int.compare
let hash (r : t) = r

let zero = 31
let sp = 30
let ret = 0

let num_arg_regs = 6

let arg i =
  if i < 0 || i >= num_arg_regs then Fmt.invalid_arg "Reg.arg %d" i
  else 16 + i

let callee_saved = [ 9; 10; 11; 12; 13; 14 ]

let caller_saved =
  let rec build i acc =
    if i < 0 then acc
    else if List.mem i callee_saved || i = sp || i = zero then
      build (i - 1) acc
    else build (i - 1) (i :: acc)
  in
  build 29 []

let all = List.init 32 (fun i -> i)
let allocatable = List.filter (fun r -> r <> sp && r <> zero) all

let to_string r =
  if r = zero then "zero"
  else if r = sp then "sp"
  else if r >= num_arch then Printf.sprintf "t%d" (r - num_arch)
  else Printf.sprintf "r%d" r

let pp ppf r = Format.pp_print_string ppf (to_string r)

module Set = Set.Make (Int)
module Map = Map.Make (Int)
