lib/core/tnv.ml: Hashtbl Int Int64 List
