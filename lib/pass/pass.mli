(** Typed pass manager and content-addressed artifact store.

    The paper's toolchain is a staged binary-optimizer pipeline (initial
    ranges -> VRP -> profile -> VRS -> re-encode -> simulate).  This
    module makes the staging a first-class object: a registry of named
    passes over {!Ogc_ir.Prog.t}, each with a serializable configuration,
    chained by parsing specs like ["cleanup,vrp,vrs:cost=50"].  The CLI
    ([ogc analyze] / [ogc passes]), the experiment harness
    ({!Ogc_harness.Results}) and the [ogc serve] daemon all drive their
    analyses through the same chains.

    {b Artifacts.}  A chain's input artifact is the canonical
    {!Ogc_ir.Prog_json} rendering of the entry program; every pass
    extends the address with its name and canonical config, so the
    artifact after pass [n] lives at [H(pass_n, config_n, key_(n-1))].
    With a {!Store} attached, each step is looked up before it runs:
    chains sharing a prefix (the harness's 5-point VRS cost sweep, or
    two server requests differing only in the VRS cost) compute the
    shared VRP fixpoint, basic-block profile and TNV value profiles
    once.  Snapshots deep-copy the program and share the immutable
    analysis facts, so a hit is byte-for-byte identical to a recompute
    — whatever the cache state or parallelism.

    {b Telemetry.}  Every executed pass runs under an
    {!Ogc_obs.Span} ([pass:<name>]) and records
    [ogc_pass_runs_total{pass=...}] / [ogc_pass_seconds{pass=...}];
    store hits record [ogc_pass_cache_hits_total{pass=...}]. *)

open Ogc_ir

(** Mutable pipeline state threaded through a chain: the program plus
    the analysis facts passes have installed on it.  Facts are shared
    (never mutated after installation); the program is owned. *)
type state = {
  mutable prog : Prog.t;
  mutable vrp : Ogc_core.Vrp.result option;
      (** latest VRP fixpoint, still describing [prog] *)
  mutable encoded : bool;  (** [vrp]'s widths applied to [prog] *)
  mutable bb : (Interp.bb_counts * int) option;
      (** training basic-block counts + dynamic instruction total *)
  mutable profile : Ogc_core.Vrs.analysis option;
      (** VRS candidate master list + TNV value profiles *)
  mutable report : Ogc_core.Vrs.report option;  (** last VRS report *)
  mutable wire : Profile.t option;
      (** streamed execution profile the chain was invoked with —
          environment, not an artifact fact (never snapshotted) *)
  mutable wire_ok : bool;
      (** whether [prog] still carries the instruction ids [wire]'s
          observations refer to; cleared by every transformation *)
  mutable fnc : Ogc_core.Vrp.Fn_cache.t option;
      (** the attached store's cross-run per-function VRP cache —
          environment, like [wire] *)
}

val wire_of : state -> Profile.t option
(** The streamed profile, but only while the program still has the
    instruction ids it was collected against. *)

(** A registered pass: [cleanup], [vrp], [encode-widths], [bb-profile],
    [value-profile], [vrs], [zspec] or [constprop].  A pass that needs
    an upstream fact the chain did not provide computes it on the spot
    with default configurations. *)
type t = private {
  name : string;
  doc : string;
  defaults : (string * Ogc_json.Json.t) list;
      (** canonical configuration, fixed key order *)
  exec : Ogc_json.Json.t -> state -> string;
}

val registry : t list
(** Pipeline order: cleanup, vrp, encode-widths, bb-profile,
    value-profile, vrs, zspec, constprop. *)

val find : string -> t option

val profile_dependent : string -> bool
(** Whether a pass's output depends on the execution profile
    ([bb-profile], [value-profile], [vrs], [zspec]) — these are the
    passes whose artifact addresses fold in the profile epoch. *)

(** A pass plus its canonical configuration (every key present, registry
    key order — the digest input). *)
type instance = { pass : t; config : Ogc_json.Json.t }

val parse_spec : string -> instance
(** ["vrs:cost=50:constprop=false"]: a pass name followed by
    [:key=value] overrides of its defaults.  Raises [Failure] on unknown
    passes, unknown keys or ill-typed values. *)

val parse_chain : string -> instance list
(** Comma-separated {!parse_spec}s, e.g. ["cleanup,vrp,vrs:cost=50"]. *)

val config_string : instance -> string
(** Canonical (compact, fixed-order) JSON of the instance's config. *)

val digest_prog : Prog.t -> string
(** Content address of a program state: MD5 hex of its canonical
    {!Ogc_ir.Prog_json} rendering. *)

val chain_key : instance -> string -> string
(** [chain_key inst prev] = the address of the artifact [inst] produces
    from the artifact at [prev]. *)

(** Bounded, thread-safe LRU store of pipeline-state snapshots, keyed by
    {!chain_key} addresses.  Stored states and served hits are private
    copies; analysis facts are shared read-only. *)
module Store : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] defaults to 64 snapshots (clamped to at least 1). *)

  val find : t -> pass:string -> string -> state option
  (** A private copy of the snapshot at this address, if present;
      updates recency and the per-pass hit/miss counters.  On a local
      miss the fallback (if any) is consulted; a fallback hit is
      installed locally and counted under the per-pass replica counter
      rather than as a hit. *)

  val peek : t -> pass:string -> string -> state option
  (** Local-only lookup: no fallback, no recency update, no counters.
      This is what fallbacks themselves should use on sibling stores, so
      replica consultation can never recurse. *)

  val set_fallback : t -> (pass:string -> string -> state option) -> unit
  (** Attach a second-level lookup consulted on local misses (e.g. the
      {!peek}s of co-located shard stores, or a replication fetch).  The
      fallback runs outside the store lock and must not call {!find} or
      {!store} on this store. *)

  val store : t -> pass:string -> string -> state -> unit
  (** Idempotent: re-storing an existing address keeps the first
      snapshot. *)

  val entries : t -> int

  val fn_cache : t -> Ogc_core.Vrp.Fn_cache.t
  (** The store's cross-run per-function VRP cache, threaded into every
      chain run against this store ({!Ogc_core.Vrp.Fn_cache}). *)

  val pass_stats : t -> (string * int * int) list
  (** Per pass name (sorted): store hits and misses since creation. *)

  val replica_stats : t -> (string * int) list
  (** Per pass name (sorted): artifacts served via the fallback rather
      than locally.  Passes with zero replica hits are omitted. *)
end

(** What {!run_chain} did for one chain element. *)
type step = {
  t_pass : string;
  t_config : Ogc_json.Json.t;
  t_cached : bool;  (** served from the store; nothing executed *)
  t_seconds : float;  (** wall time (0 when cached) *)
  t_summary : string;  (** one-line human summary *)
}

val run_chain :
  ?store:Store.t ->
  ?wire:Profile.t ->
  instance list ->
  Prog.t ->
  state * step list
(** Run the chain over [prog] (transformed in place — but on a store hit
    the state's program is replaced by the cached snapshot's copy, so
    callers must keep using [state.prog], not [prog]).

    [wire] supplies a streamed execution profile: profile-dependent
    passes consume it in place of their training interpreter runs (while
    the program still carries the instruction ids it refers to), and —
    when its epoch is positive — every profile-dependent step's artifact
    address is salted with that epoch, so a fresher profile re-runs
    exactly the profile-dependent suffix while the front of the chain
    keeps hitting the store.  Epoch 0 (or no [wire]) leaves every
    address byte-identical to a profile-less run. *)

val run :
  ?store:Store.t -> ?wire:Profile.t -> string -> Prog.t -> state * step list
(** [run ?store ?wire spec prog] =
    [run_chain ?store ?wire (parse_chain spec) prog]. *)
