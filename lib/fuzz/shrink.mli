(** Delta-debugging minimizer for failing programs.

    Given a program and a predicate that re-checks the failure of
    interest (usually "this transform still disagrees with the
    baseline"), repeatedly applies structure-preserving reductions and
    keeps every candidate the predicate accepts:

    - dropping whole helper functions and unused globals;
    - removing chunks of block bodies, ddmin-style (halving chunk
      sizes down to single instructions);
    - simplifying terminators (branch to jump, jump to return);
    - running the [cleanup] pass to prune unreachable blocks (block
      removal must go through a pass because labels are positional).

    Candidates are always fresh deep copies; the input program is never
    mutated.  The process is deterministic: same program and predicate,
    same minimized result. *)

val minimize :
  ?max_rounds:int -> keep:(Ogc_ir.Prog.t -> bool) -> Ogc_ir.Prog.t -> Ogc_ir.Prog.t
(** [minimize ~keep p] requires [keep p = true] and returns a (possibly
    equal) program on which [keep] still holds, at a local minimum of
    the reductions above.  [keep] must not mutate its argument and
    should treat invalid or faulting candidates as [false].
    [max_rounds] (default 30) bounds the outer fixpoint. *)
