lib/ir/bitset.ml: Array Fmt
