type stats = {
  jobs : int;
  wall_s : float;
  task_s : float array;
}

let clamp_jobs n = if n < 1 then 1 else if n > 64 then 64 else n

let jobs_from_env () =
  match Sys.getenv_opt "OGC_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None)

let default_jobs () =
  match jobs_from_env () with
  | Some n -> clamp_jobs n
  | None -> clamp_jobs (Domain.recommended_domain_count ())

let resolve_jobs = function
  | Some n when n >= 1 -> clamp_jobs n
  | _ -> default_jobs ()

(* One cell per task: set exactly once, by exactly one worker (tasks are
   claimed through the atomic counter), then read only after every
   worker has been joined — so plain mutable slots are race-free. *)
type 'b slot = Pending | Done of 'b | Failed of exn * Printexc.raw_backtrace

let run_tasks ~jobs (tasks : (unit -> 'b) array) =
  let n = Array.length tasks in
  let results = Array.make n Pending in
  let task_s = Array.make n 0.0 in
  let next = Atomic.make 0 in
  let worker () =
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= n then continue := false
      else begin
        let t0 = Unix.gettimeofday () in
        (results.(i) <-
           (match tasks.(i) () with
           | v -> Done v
           | exception e -> Failed (e, Printexc.get_raw_backtrace ())));
        task_s.(i) <- Unix.gettimeofday () -. t0
      end
    done
  in
  let t0 = Unix.gettimeofday () in
  let jobs = clamp_jobs (min jobs (max 1 n)) in
  if jobs = 1 then worker ()
  else begin
    (* The caller is one of the [jobs] workers. *)
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains
  end;
  let wall_s = Unix.gettimeofday () -. t0 in
  (* Lowest-index failure wins, for a deterministic error report. *)
  Array.iter
    (function
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Pending | Done _ -> ())
    results;
  let values =
    Array.map
      (function Done v -> v | Pending | Failed _ -> assert false)
      results
  in
  (values, { jobs; wall_s; task_s })

let map_timed ?jobs f xs =
  let jobs = resolve_jobs jobs in
  let tasks = Array.of_list (List.map (fun x () -> f x) xs) in
  let values, stats = run_tasks ~jobs tasks in
  (Array.to_list values, stats)

let map ?jobs f xs = fst (map_timed ?jobs f xs)
