(** Dominator tree (Cooper–Harvey–Kennedy iterative algorithm). *)

type t

val compute : Cfg.t -> t

(** [idom t l] is the immediate dominator of [l]; [None] for the entry
    block and for unreachable blocks. *)
val idom : t -> Label.t -> Label.t option

(** [dominates t a b] is true when [a] dominates [b] (reflexive). *)
val dominates : t -> Label.t -> Label.t -> bool
