(** Use-def and def-use chains via reaching definitions.

    This is the expanded use-def machinery the paper added to Alto: the
    register-level data-dependence graph over which forward and backward
    value-range traversals run, and over which VRS finds the instructions
    transitively dependent on a candidate.

    A {e definition} is either a body instruction writing a register (keyed
    by its [iid]; a [Call] yields one definition per clobbered register) or
    the pseudo-definition of a register at function entry (incoming
    arguments, callee-saved contents, ...).

    A {e use site} is a body instruction reading a register, or a block
    terminator reading its tested register (keyed by the terminator's
    [iid]). *)

open Ogc_isa

type def_site = Entry | At of int  (** [At iid] *)

type def = { dreg : Reg.t; site : def_site }

type t

val compute : Prog.func -> Cfg.t -> t

val num_defs : t -> int
val def : t -> int -> def

(** [defs_of_ins t iid] is the list of definition indices made by
    instruction [iid]. *)
val defs_of_ins : t -> int -> int list

(** [reaching_uses t ~use_iid ~reg] is the set of definition indices that
    may supply register [reg] at instruction (or terminator) [use_iid]. *)
val reaching_uses : t -> use_iid:int -> reg:Reg.t -> int list

(** [uses_of_def t d] is the list of [(use_iid, reg)] sites that may read
    definition [d]. *)
val uses_of_def : t -> int -> (int * Reg.t) list

(** [dependents t ~iid] is the set of iids of instructions (including
    terminators) transitively data-dependent on any definition made by
    [iid], within the function.  [iid] itself is not included unless it
    depends on itself through a cycle. *)
val dependents : t -> iid:int -> (int, unit) Hashtbl.t
