module J = Ogc_json.Json

let enabled_flag = Atomic.make false
let epoch = Atomic.make 0.0 (* trace clock origin, set on enable *)

let set_enabled b =
  if b then Atomic.set epoch (Unix.gettimeofday ());
  Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag
let now_us () = (Unix.gettimeofday () -. Atomic.get epoch) *. 1e6

type ev = {
  ph : char; (* 'B' | 'E' | 'i' *)
  ename : string;
  ts : float; (* µs since enable *)
  eargs : (string * J.t) list;
}

let dummy = { ph = ' '; ename = ""; ts = 0.0; eargs = [] }
let capacity = 1 lsl 15

(* One ring per thread: [Thread.id] is unique across all domains, so a
   ring has a single writer and appends contend only with an export
   snapshotting that same ring. *)
type ring = {
  rm : Mutex.t;
  buf : ev array;
  mutable total : int; (* events ever written; index = total mod capacity *)
  rtid : int;
  rdid : int; (* domain at ring creation, for the track name *)
}

let rings : (int, ring) Hashtbl.t = Hashtbl.create 16
let rings_m = Mutex.create ()

let ring_for_current () =
  let tid = Thread.id (Thread.self ()) in
  Mutex.lock rings_m;
  let r =
    match Hashtbl.find_opt rings tid with
    | Some r -> r
    | None ->
      let r =
        { rm = Mutex.create ();
          buf = Array.make capacity dummy;
          total = 0;
          rtid = tid;
          rdid = (Domain.self () :> int) }
      in
      Hashtbl.add rings tid r;
      r
  in
  Mutex.unlock rings_m;
  r

let emit r ph ename eargs =
  let ts = now_us () in
  Mutex.lock r.rm;
  r.buf.(r.total mod capacity) <- { ph; ename; ts; eargs };
  r.total <- r.total + 1;
  Mutex.unlock r.rm

let with_ ?(args = []) ~name f =
  if not (enabled ()) then f ()
  else begin
    let r = ring_for_current () in
    emit r 'B' name args;
    Fun.protect ~finally:(fun () -> emit r 'E' name []) f
  end

let instant ?(args = []) name =
  if enabled () then emit (ring_for_current ()) 'i' name args

(* --- export --------------------------------------------------------------- *)

let ring_events r =
  Mutex.lock r.rm;
  let total = r.total in
  let n = min total capacity in
  let first = total - n in
  let evs = List.init n (fun i -> r.buf.((first + i) mod capacity)) in
  Mutex.unlock r.rm;
  evs

let event_json tid e =
  let base =
    [ ("name", J.Str e.ename);
      ("ph", J.Str (String.make 1 e.ph));
      ("ts", J.Float e.ts);
      ("pid", J.Int 1);
      ("tid", J.Int tid);
      ("cat", J.Str "ogc") ]
  in
  let scope = if e.ph = 'i' then [ ("s", J.Str "t") ] else [] in
  let args =
    match e.eargs with [] -> [] | a -> [ ("args", J.Obj a) ]
  in
  J.Obj (base @ scope @ args)

let thread_meta r =
  J.Obj
    [ ("name", J.Str "thread_name");
      ("ph", J.Str "M");
      ("pid", J.Int 1);
      ("tid", J.Int r.rtid);
      ("args",
       J.Obj
         [ ("name",
            J.Str (Printf.sprintf "domain %d / thread %d" r.rdid r.rtid)) ]) ]

let export () =
  Mutex.lock rings_m;
  let rs = Hashtbl.fold (fun _ r acc -> r :: acc) rings [] in
  Mutex.unlock rings_m;
  let rs = List.sort (fun a b -> compare a.rtid b.rtid) rs in
  let metas = List.map thread_meta rs in
  let evs =
    List.concat_map (fun r -> List.map (event_json r.rtid) (ring_events r)) rs
  in
  let ts_of = function J.Obj kvs -> J.get_float "ts" (J.Obj kvs) | _ -> 0.0 in
  let evs = List.stable_sort (fun a b -> compare (ts_of a) (ts_of b)) evs in
  J.Obj
    [ ("traceEvents", J.Arr (metas @ evs));
      ("displayTimeUnit", J.Str "ms") ]

let write path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string ~indent:false (export ()));
      output_char oc '\n')

let reset () =
  Mutex.lock rings_m;
  Hashtbl.reset rings;
  Mutex.unlock rings_m
