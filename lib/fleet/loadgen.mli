(** Synthetic load driver for a serve fleet (or a single server).

    [run] replays a deterministic stream of NDJSON analysis submissions
    against [addr] from [clients] parallel connections (one
    {!Ogc_exec.Pool} domain each).  The stream is a pure function of
    [seed]: request [i] is either a {e warm} replay of an earlier
    request (probability [warm_ratio] — a byte-identical resubmission,
    so a result-cache hit on whichever shard owns it) or a {e cold}
    submission drawn from a small family of synthetic MiniC programs
    and, optionally, named benchmark workloads.  Cold requests sweep the
    VRS cost labels across a shared program set, so a fleet routed by
    program identity exercises chain-prefix artifact reuse exactly like
    the paper's cost sweep.

    Failures are retried with jittered exponential backoff ([retries]
    attempts per submission, reconnecting on connection errors);
    [overloaded] and [unavailable] replies count as retryable.  A
    submission is {e failed} only when its retry budget is exhausted —
    the fleet-smoke criterion "kill one shard mid-run, zero failed
    submissions" means every request eventually answered [ok] through
    hedging or failover.

    Latency is recorded into an {!Ogc_obs.Metrics} histogram
    ([ogc_loadgen_seconds], fine sub-millisecond-to-10s buckets);
    p50/p95/p99 are interpolated from the bucket counts observed during
    the run (metrics are force-enabled for the duration and restored
    after). *)

type config = {
  addr : Ogc_server.Server.addr;
  requests : int;
  clients : int;  (** parallel connections / worker domains *)
  warm_ratio : float;  (** probability a request replays an earlier one *)
  cost_sweep : bool;  (** sweep VRS costs over the shared program set *)
  workloads : string list;  (** benchmark names mixed into the cold stream *)
  programs : int;  (** distinct synthetic MiniC programs *)
  seed : int;
  retries : int;  (** attempts per submission before counting it failed *)
  connect_timeout_ms : int;
  backoff_ms : int;  (** base of the jittered exponential backoff *)
  trace_sample : int;
      (** stamp every [n]th submission with a deterministic ["trace_id"]
          (0 = never).  Trace members are excluded from cache and route
          keys, so sampling never changes placement or hit rates. *)
}

val default_config : addr:Ogc_server.Server.addr -> config
(** 200 requests, 4 clients, [warm_ratio = 0.5], cost sweep on, no
    workloads, 6 programs, [seed = 42], 5 retries, 1s connect timeout,
    50ms backoff base, no trace sampling. *)

type report = {
  total : int;
  ok : int;
  failed : int;  (** submissions that exhausted their retry budget *)
  retried : int;  (** extra attempts beyond the first *)
  cache_hits : int;  (** [ok] responses answered ["cache":"hit"] *)
  wall_s : float;
  throughput_rps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  latency_hist : (float * int) list;
      (** per-bucket observation counts for this run, by upper bound in
          seconds (the [ogc_loadgen_seconds] buckets) *)
  overflow : int;  (** observations past the last finite bucket *)
}

val request_line : config -> int -> string
(** The [i]th request of the stream (deterministic in [config.seed]);
    exposed for tests asserting warm replays are byte-identical. *)

val run : ?kill:int * (unit -> unit) -> config -> report
(** Replay the stream.  [kill = (n, f)] runs [f] once, as soon as [n]
    submissions have completed — fault injection hook for killing a
    shard mid-run. *)

val report_json : report -> Ogc_json.Json.t
