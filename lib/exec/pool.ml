type stats = {
  jobs : int;
  wall_s : float;
  task_s : float array;
}

(* Pool telemetry (lib/obs).  The gauges update unconditionally so they
   cannot drift if metrics are toggled between a submit and the matching
   task start; counters and histograms are no-ops unless metrics are
   enabled. *)
module Metrics = Ogc_obs.Metrics
module Span = Ogc_obs.Span

let m_queue_depth = Metrics.gauge "ogc_pool_queue_depth"
let m_busy = Metrics.gauge "ogc_pool_busy_workers"
let m_workers = Metrics.gauge "ogc_pool_workers"
let m_jobs_total = Metrics.counter "ogc_pool_jobs_total"
let m_job_wait = Metrics.histogram "ogc_pool_job_wait_seconds"
let m_job_run = Metrics.histogram "ogc_pool_job_run_seconds"

let clamp_jobs n = if n < 1 then 1 else if n > 64 then 64 else n

let jobs_from_env () =
  match Sys.getenv_opt "OGC_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None)

let default_jobs () =
  match jobs_from_env () with
  | Some n -> clamp_jobs n
  | None -> clamp_jobs (Domain.recommended_domain_count ())

let resolve_jobs = function
  | Some n when n >= 1 -> clamp_jobs n
  | _ -> default_jobs ()

(* --- the persistent pool -------------------------------------------------- *)

type t = {
  m : Mutex.t;
  nonempty : Condition.t;  (* workers sleep here waiting for work *)
  progress : Condition.t;  (* awaiters sleep here; broadcast per completion *)
  q : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable domains : unit Domain.t array;
  jobs : int;
}

(* A ticket's outcome is written exactly once, under the pool mutex, by
   the worker that ran the task; [progress] is broadcast afterwards, so
   awaiters never miss the transition. *)
type 'a outcome = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

type 'a ticket = {
  pool : t;
  mutable outcome : 'a outcome;
  mutable secs : float;
}

let worker p () =
  let continue = ref true in
  while !continue do
    Mutex.lock p.m;
    while Queue.is_empty p.q && not p.closed do
      Condition.wait p.nonempty p.m
    done;
    if Queue.is_empty p.q then begin
      (* Closed, and the queue has drained: exit. *)
      continue := false;
      Mutex.unlock p.m
    end
    else begin
      let task = Queue.pop p.q in
      Mutex.unlock p.m;
      task ()
    end
  done

let create ?jobs () =
  let jobs = resolve_jobs jobs in
  let p =
    { m = Mutex.create ();
      nonempty = Condition.create ();
      progress = Condition.create ();
      q = Queue.create ();
      closed = false;
      domains = [||];
      jobs }
  in
  p.domains <- Array.init jobs (fun _ -> Domain.spawn (worker p));
  Metrics.gauge_add m_workers jobs;
  p

let size p = p.jobs

(* Distributed-trace handoff: capture the submitter's ambient context
   and reinstall it around the task on the worker, with a flow edge
   from the submitting span to the worker-side execution, so pass-chain
   spans nest under the request that triggered them even though they
   run on a pool domain. *)
let carry_trace f =
  if not (Span.enabled ()) then f
  else
    match Span.current () with
    | None -> f
    | Some ctx ->
      let flow = Span.local_flow_id () in
      Span.flow_out ~id:flow;
      fun () ->
        Span.with_context (Some ctx) (fun () ->
            Span.with_ ~name:"pool:task" (fun () ->
                Span.flow_in ~id:flow;
                f ()))

let submit p f =
  let f = carry_trace f in
  let tk = { pool = p; outcome = Pending; secs = 0.0 } in
  let enqueued = if Metrics.enabled () then Unix.gettimeofday () else 0.0 in
  let task () =
    Metrics.gauge_add m_queue_depth (-1);
    Metrics.gauge_add m_busy 1;
    let t0 = Unix.gettimeofday () in
    (* [enqueued = 0.] means metrics were off at submit time; skip the
       wait sample rather than record a bogus epoch-relative delta. *)
    if enqueued > 0.0 then Metrics.observe m_job_wait (t0 -. enqueued);
    let o =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    let dt = Unix.gettimeofday () -. t0 in
    Metrics.observe m_job_run dt;
    Metrics.incr m_jobs_total;
    Metrics.gauge_add m_busy (-1);
    Mutex.lock p.m;
    tk.outcome <- o;
    tk.secs <- dt;
    Condition.broadcast p.progress;
    Mutex.unlock p.m
  in
  Mutex.lock p.m;
  if p.closed then begin
    Mutex.unlock p.m;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task p.q;
  Metrics.gauge_add m_queue_depth 1;
  Condition.signal p.nonempty;
  Mutex.unlock p.m;
  tk

(* Outcome and task time, blocking; does not re-raise. *)
let wait_outcome tk =
  let p = tk.pool in
  let is_pending () =
    match tk.outcome with Pending -> true | Done _ | Failed _ -> false
  in
  Mutex.lock p.m;
  while is_pending () do
    Condition.wait p.progress p.m
  done;
  let o = tk.outcome and secs = tk.secs in
  Mutex.unlock p.m;
  (o, secs)

let await_timed tk =
  match wait_outcome tk with
  | Done v, secs -> (v, secs)
  | Failed (e, bt), _ -> Printexc.raise_with_backtrace e bt
  | Pending, _ -> assert false

let await tk = fst (await_timed tk)

let shutdown p =
  Mutex.lock p.m;
  if p.closed then Mutex.unlock p.m
  else begin
    p.closed <- true;
    Condition.broadcast p.nonempty;
    Mutex.unlock p.m;
    Array.iter Domain.join p.domains;
    Metrics.gauge_add m_workers (-Array.length p.domains);
    p.domains <- [||]
  end

(* --- one-shot maps -------------------------------------------------------- *)

(* Lowest-index failure wins, for a deterministic error report; every
   task runs even when an earlier one failed. *)
let raise_first_failure outcomes =
  Array.iter
    (function
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Pending | Done _ -> ())
    outcomes

let map_timed ?jobs f xs =
  let n = List.length xs in
  let jobs = clamp_jobs (min (resolve_jobs jobs) (max 1 n)) in
  let t0 = Unix.gettimeofday () in
  let outcomes, task_s =
    if jobs = 1 then begin
      (* Sequential fallback: no domain is ever spawned. *)
      let outcomes = Array.make n Pending in
      let task_s = Array.make n 0.0 in
      List.iteri
        (fun i x ->
          let s0 = Unix.gettimeofday () in
          (outcomes.(i) <-
             (match f x with
             | v -> Done v
             | exception e -> Failed (e, Printexc.get_raw_backtrace ())));
          task_s.(i) <- Unix.gettimeofday () -. s0;
          Metrics.observe m_job_run task_s.(i);
          Metrics.incr m_jobs_total)
        xs;
      (outcomes, task_s)
    end
    else begin
      let p = create ~jobs () in
      let tickets = List.map (fun x -> submit p (fun () -> f x)) xs in
      let pairs = List.map wait_outcome tickets in
      shutdown p;
      (Array.of_list (List.map fst pairs),
       Array.of_list (List.map snd pairs))
    end
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  raise_first_failure outcomes;
  let values =
    Array.map
      (function Done v -> v | Pending | Failed _ -> assert false)
      outcomes
  in
  (Array.to_list values, { jobs; wall_s; task_s })

let map ?jobs f xs = fst (map_timed ?jobs f xs)
