(* Round-trip property tests for the hand-rolled JSON layer: every value
   the toolchain can emit must survive to_string/of_string exactly.  The
   string tests cover control characters, \u escapes and non-ASCII
   bytes; the float tests are bit-exact (via Int64.bits_of_float) and
   include -0., extreme magnitudes and subnormals.  These caught a real
   bug: integer-valued doubles >= 1e15 used to print as bare digit
   strings and re-parse as Int. *)

module J = Ogc_json.Json

let roundtrip v = J.of_string (J.to_string ~indent:false v)
let roundtrip_pretty v = J.of_string (J.to_string ~indent:true v)

(* --- generators ----------------------------------------------------------- *)

(* Byte strings over the full 0-255 range, biased toward the awkward
   region (control characters, quote, backslash, DEL, high bytes). *)
let arbitrary_bytes =
  let gen =
    QCheck.Gen.(
      string_size ~gen:(frequency
        [ (4, map Char.chr (int_range 0 31));
          (2, oneofl [ '"'; '\\'; '/'; '\127'; '\xc3'; '\xa9'; '\xff'; '\x00' ]);
          (6, printable) ])
        (int_bound 40))
  in
  QCheck.make ~print:String.escaped gen

(* Finite floats from raw bit patterns: uniform over the representation,
   so exponent extremes and subnormals actually occur. *)
let arbitrary_finite_float =
  let gen st =
    let rec go () =
      let bits =
        Int64.logxor (Random.State.int64 st Int64.max_int)
          (if Random.State.bool st then Int64.min_int else 0L)
      in
      let f = Int64.float_of_bits bits in
      if Float.is_finite f then f else go ()
    in
    go ()
  in
  QCheck.make ~print:(Printf.sprintf "%h") gen

let rec arbitrary_json_gen depth st =
  let open QCheck.Gen in
  let scalar =
    frequency
      [ (1, return J.Null);
        (1, map (fun b -> J.Bool b) bool);
        (3, map (fun i -> J.Int i) int);
        (3, map (fun f -> J.Float f) (QCheck.gen arbitrary_finite_float));
        (3, map (fun s -> J.Str s) (QCheck.gen arbitrary_bytes)) ]
  in
  if depth = 0 then scalar st
  else
    frequency
      [ (3, scalar);
        (1,
         map (fun xs -> J.Arr xs)
           (list_size (int_bound 5) (arbitrary_json_gen (depth - 1))));
        (1,
         map
           (fun kvs -> J.Obj kvs)
           (list_size (int_bound 5)
              (pair (QCheck.gen arbitrary_bytes)
                 (arbitrary_json_gen (depth - 1))))) ]
      st

let arbitrary_json =
  QCheck.make ~print:(J.to_string ~indent:true) (arbitrary_json_gen 3)

(* Structural equality with bit-exact floats (compare (=) conflates 0.
   and -0. and fails on identical NaNs; neither is what we test). *)
let rec json_equal a b =
  match (a, b) with
  | J.Float x, J.Float y ->
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | J.Arr xs, J.Arr ys ->
    List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | J.Obj xs, J.Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_equal v1 v2)
         xs ys
  | _ -> a = b

(* --- properties ----------------------------------------------------------- *)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"strings round-trip byte-exactly" ~count:2000
    arbitrary_bytes (fun s -> roundtrip (J.Str s) = J.Str s)

let prop_float_roundtrip =
  QCheck.Test.make ~name:"finite floats round-trip bit-exactly" ~count:5000
    arbitrary_finite_float (fun f ->
      json_equal (roundtrip (J.Float f)) (J.Float f))

let prop_value_roundtrip =
  QCheck.Test.make ~name:"nested values round-trip (compact)" ~count:1000
    arbitrary_json (fun j -> json_equal (roundtrip j) j)

let prop_value_roundtrip_pretty =
  QCheck.Test.make ~name:"nested values round-trip (indented)" ~count:1000
    arbitrary_json (fun j -> json_equal (roundtrip_pretty j) j)

let prop_printer_deterministic =
  QCheck.Test.make ~name:"printer is deterministic after a round-trip"
    ~count:1000 arbitrary_json (fun j ->
      let s = J.to_string ~indent:false j in
      String.equal s (J.to_string ~indent:false (J.of_string s)))

(* --- directed edge cases --------------------------------------------------- *)

let check_float f =
  match roundtrip (J.Float f) with
  | J.Float g ->
    Alcotest.(check int64)
      (Printf.sprintf "%h" f)
      (Int64.bits_of_float f) (Int64.bits_of_float g)
  | other ->
    Alcotest.failf "%h re-parsed as %s, not Float" f
      (J.to_string ~indent:false other)

let test_float_edges () =
  List.iter check_float
    [ 0.; -0.; 1.; -1.; 0.1; 1e15; -1e15; 1e16; 9.007199254740993e15;
      1e308; -1e308; max_float; min_float; epsilon_float;
      Int64.float_of_bits 1L (* smallest subnormal *);
      Int64.float_of_bits 0x000fffffffffffffL (* largest subnormal *);
      4.9406564584124654e-324; 1.5; 3.14159265358979312; 2.5e-10 ]

let test_nonfinite_is_null () =
  (* NaN and the infinities have no JSON spelling; the printer documents
     that they degrade to null rather than emitting invalid JSON. *)
  List.iter
    (fun f ->
      Alcotest.(check string) "null" "null"
        (J.to_string ~indent:false (J.Float f)))
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let test_string_edges () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (String.escaped s) true
        (roundtrip (J.Str s) = J.Str s))
    [ ""; "\x00"; "\n\t\r\b\x0c"; "\"quoted\\\""; "caf\xc3\xa9"; "\xff\xfe";
      String.init 32 Char.chr; "ends with backslash \\" ]

let test_unicode_escape_parsing () =
  let parse s =
    match J.of_string s with J.Str v -> v | _ -> Alcotest.failf "not a string: %s" s
  in
  Alcotest.(check string) "\\u0041" "A" (parse "\"\\u0041\"");
  Alcotest.(check string) "\\u00e9" "\xe9" (parse "\"\\u00e9\"");
  Alcotest.(check string) "\\u000A" "\n" (parse "\"\\u000A\"");
  Alcotest.(check string) "mixed" "a\nb" (parse "\"a\\u000ab\"");
  Alcotest.(check string) "short escapes" "\n\t\r\b\x0c\"\\/"
    (parse "\"\\n\\t\\r\\b\\f\\\"\\\\\\/\"")

let test_int_stays_int () =
  List.iter
    (fun i ->
      Alcotest.(check bool) (string_of_int i) true
        (roundtrip (J.Int i) = J.Int i))
    [ 0; 1; -1; max_int; min_int; 1_000_000_000_000_000 ]

let test_float_never_reparses_as_int () =
  (* The historical bug: %.17g prints integer-valued doubles >= 1e15
     without a decimal point. *)
  List.iter
    (fun f ->
      match roundtrip (J.Float f) with
      | J.Float _ -> ()
      | other ->
        Alcotest.failf "Float %g re-parsed as %s" f
          (J.to_string ~indent:false other))
    [ 1e15; 123456789012345678.; 2.305843009213694e18; 1e300 ]

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "json"
    [ ("roundtrip",
       [ qt prop_string_roundtrip; qt prop_float_roundtrip;
         qt prop_value_roundtrip; qt prop_value_roundtrip_pretty;
         qt prop_printer_deterministic ]);
      ("edge-cases",
       [ Alcotest.test_case "float edges" `Quick test_float_edges;
         Alcotest.test_case "non-finite prints null" `Quick
           test_nonfinite_is_null;
         Alcotest.test_case "string edges" `Quick test_string_edges;
         Alcotest.test_case "\\u escapes" `Quick test_unicode_escape_parsing;
         Alcotest.test_case "ints stay ints" `Quick test_int_stays_int;
         Alcotest.test_case "big floats stay floats" `Quick
           test_float_never_reparses_as_int ]) ]
