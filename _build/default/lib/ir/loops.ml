type loop = {
  header : Label.t;
  latches : Label.t list;
  body : Label.Set.t;
  exits : (Label.t * Label.t) list;
}

type t = { loops : loop list }

let natural_loop_body cfg ~header ~latches =
  (* Everything that reaches a latch without passing through the header. *)
  let body = ref (Label.Set.singleton header) in
  let rec visit l =
    if not (Label.Set.mem l !body) then begin
      body := Label.Set.add l !body;
      List.iter visit (Cfg.preds cfg l)
    end
  in
  List.iter visit latches;
  !body

let compute cfg dom =
  let backedges = Hashtbl.create 8 in
  (* header -> latches *)
  let n = Cfg.num_blocks cfg in
  for i = 0 to n - 1 do
    let l = Label.of_int i in
    if Cfg.is_reachable cfg l then
      List.iter
        (fun s -> if Dom.dominates dom s l then begin
            let latches =
              match Hashtbl.find_opt backedges s with
              | None -> []
              | Some ls -> ls
            in
            Hashtbl.replace backedges s (l :: latches)
          end)
        (Cfg.succs cfg l)
  done;
  let loops =
    Hashtbl.fold
      (fun header latches acc ->
        let body = natural_loop_body cfg ~header ~latches in
        let exits =
          Label.Set.fold
            (fun b acc ->
              List.fold_left
                (fun acc s ->
                  if Label.Set.mem s body then acc else (b, s) :: acc)
                acc (Cfg.succs cfg b))
            body []
        in
        { header; latches; body; exits } :: acc)
      backedges []
  in
  (* Sort by body size so the innermost (smallest) loop is found first. *)
  let loops =
    List.sort
      (fun a b -> Int.compare (Label.Set.cardinal a.body) (Label.Set.cardinal b.body))
      loops
  in
  { loops }

let loops t = t.loops

let innermost_containing t l =
  List.find_opt (fun lo -> Label.Set.mem l lo.body) t.loops

let depth t l =
  List.length (List.filter (fun lo -> Label.Set.mem l lo.body) t.loops)
