lib/ir/builder.mli: Label Ogc_isa Prog
