open Ast

exception Error of string * Ast.pos

type state = { toks : (Lexer.token * pos) array; mutable i : int }

let error_at pos fmt = Fmt.kstr (fun s -> raise (Error (s, pos))) fmt

let peek st = fst st.toks.(st.i)
let peek_pos st = snd st.toks.(st.i)
let peek2 st =
  if st.i + 1 < Array.length st.toks then fst st.toks.(st.i + 1) else Lexer.EOF
let peek3 st =
  if st.i + 2 < Array.length st.toks then fst st.toks.(st.i + 2) else Lexer.EOF

let advance st = st.i <- st.i + 1

let expect st tok what =
  if peek st = tok then advance st
  else
    error_at (peek_pos st) "expected %s, found %s" what
      (Lexer.token_to_string (peek st))

let expect_punct st p = expect st (Lexer.PUNCT p) (Printf.sprintf "'%s'" p)

let accept_punct st p =
  if peek st = Lexer.PUNCT p then begin advance st; true end else false

let ident st =
  match peek st with
  | Lexer.IDENT s -> advance st; s
  | t -> error_at (peek_pos st) "expected identifier, found %s" (Lexer.token_to_string t)

let ty_of_kw = function
  | "char" -> Some Tchar
  | "short" -> Some Tshort
  | "int" -> Some Tint
  | "long" -> Some Tlong
  | _ -> None

let peek_ty st =
  match peek st with Lexer.KW k -> ty_of_kw k | _ -> None

let parse_ty st =
  match peek_ty st with
  | Some t -> advance st; t
  | None ->
    error_at (peek_pos st) "expected a type, found %s"
      (Lexer.token_to_string (peek st))

let int_lit st =
  let neg = accept_punct st "-" in
  match peek st with
  | Lexer.INT_LIT v ->
    advance st;
    if neg then Int64.neg v else v
  | t -> error_at (peek_pos st) "expected integer literal, found %s" (Lexer.token_to_string t)

(* --- expressions ------------------------------------------------------- *)

(* Binary precedence levels, loosest first.  [&&]/[||] and [?:] are handled
   separately because of short-circuit lowering. *)
let binop_levels =
  [
    [ ("||", Oror) ];
    [ ("&&", Andand) ];
    [ ("|", Bor) ];
    [ ("^", Bxor) ];
    [ ("&", Band) ];
    [ ("==", Eq); ("!=", Neq) ];
    [ ("<", Lt); ("<=", Le); (">", Gt); (">=", Ge) ];
    [ ("<<", Shl); (">>", Shr) ];
    [ ("+", Add); ("-", Sub) ];
    [ ("*", Mul); ("/", Div); ("%", Rem) ];
  ]

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let c = parse_binop st 0 in
  if accept_punct st "?" then begin
    let t = parse_expr st in
    expect_punct st ":";
    let f = parse_ternary st in
    { desc = Ternary (c, t, f); pos = c.pos }
  end
  else c

and parse_binop st level =
  if level >= List.length binop_levels then parse_unary st
  else begin
    let ops = List.nth binop_levels level in
    let lhs = ref (parse_binop st (level + 1)) in
    let rec loop () =
      match peek st with
      | Lexer.PUNCT p when List.mem_assoc p ops ->
        let pos = peek_pos st in
        advance st;
        let rhs = parse_binop st (level + 1) in
        lhs := { desc = Binop (List.assoc p ops, !lhs, rhs); pos };
        loop ()
      | _ -> ()
    in
    loop ();
    !lhs
  end

and parse_unary st =
  let pos = peek_pos st in
  match peek st with
  | Lexer.PUNCT "-" ->
    advance st;
    { desc = Unop (Neg, parse_unary st); pos }
  | Lexer.PUNCT "!" ->
    advance st;
    { desc = Unop (Lognot, parse_unary st); pos }
  | Lexer.PUNCT "~" ->
    advance st;
    { desc = Unop (Bitnot, parse_unary st); pos }
  | Lexer.PUNCT "(" when (match peek2 st with
                          | Lexer.KW k -> ty_of_kw k <> None
                          | _ -> false)
                         && peek3 st = Lexer.PUNCT ")" ->
    advance st;
    let t = parse_ty st in
    expect_punct st ")";
    { desc = Cast (t, parse_unary st); pos }
  | _ -> parse_postfix st

and parse_postfix st =
  let pos = peek_pos st in
  match peek st with
  | Lexer.INT_LIT v ->
    advance st;
    { desc = Num v; pos }
  | Lexer.IDENT name -> (
    advance st;
    match peek st with
    | Lexer.PUNCT "(" ->
      advance st;
      let args = parse_args st in
      { desc = Call (name, args); pos }
    | Lexer.PUNCT "[" ->
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      { desc = Index (name, idx); pos }
    | _ -> { desc = Var name; pos })
  | Lexer.PUNCT "(" ->
    advance st;
    let e = parse_expr st in
    expect_punct st ")";
    e
  | t -> error_at pos "expected an expression, found %s" (Lexer.token_to_string t)

and parse_args st =
  if accept_punct st ")" then []
  else begin
    let rec loop acc =
      let e = parse_expr st in
      if accept_punct st "," then loop (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    loop []
  end

(* --- statements -------------------------------------------------------- *)

let op_assign_table =
  [
    ("+=", Add); ("-=", Sub); ("*=", Mul); ("/=", Div); ("%=", Rem);
    ("&=", Band); ("|=", Bor); ("^=", Bxor); ("<<=", Shl); (">>=", Shr);
  ]

let lvalue_of_expr e =
  match e.desc with
  | Var v -> Some (Lvar v)
  | Index (v, i) -> Some (Lindex (v, i))
  | _ -> None

(* A "simple statement" (no trailing ';'): assignment, op-assignment,
   increment/decrement, or a bare expression. *)
let rec parse_simple st =
  let pos = peek_pos st in
  let e = parse_expr st in
  match (lvalue_of_expr e, peek st) with
  | Some lv, Lexer.PUNCT "=" ->
    advance st;
    let rhs = parse_expr st in
    { sdesc = Assign (lv, rhs); spos = pos }
  | Some lv, Lexer.PUNCT p when List.mem_assoc p op_assign_table ->
    advance st;
    let rhs = parse_expr st in
    { sdesc = Op_assign (List.assoc p op_assign_table, lv, rhs); spos = pos }
  | Some lv, Lexer.PUNCT "++" ->
    advance st;
    { sdesc = Op_assign (Add, lv, { desc = Num 1L; pos }); spos = pos }
  | Some lv, Lexer.PUNCT "--" ->
    advance st;
    { sdesc = Op_assign (Sub, lv, { desc = Num 1L; pos }); spos = pos }
  | _ -> { sdesc = Expr_stmt e; spos = pos }

and parse_stmt st =
  let pos = peek_pos st in
  match peek st with
  | Lexer.KW k when ty_of_kw k <> None ->
    let t = parse_ty st in
    let name = ident st in
    if accept_punct st "[" then begin
      let size =
        match peek st with
        | Lexer.INT_LIT v -> advance st; Int64.to_int v
        | tok -> error_at (peek_pos st) "expected array size, found %s" (Lexer.token_to_string tok)
      in
      expect_punct st "]";
      expect_punct st ";";
      { sdesc = Decl_array (t, name, size); spos = pos }
    end
    else begin
      let init = if accept_punct st "=" then Some (parse_expr st) else None in
      expect_punct st ";";
      { sdesc = Decl (t, name, init); spos = pos }
    end
  | Lexer.KW "if" ->
    advance st;
    expect_punct st "(";
    let c = parse_expr st in
    expect_punct st ")";
    let then_ = parse_block st in
    let else_ =
      if peek st = Lexer.KW "else" then begin
        advance st;
        parse_block st
      end
      else []
    in
    { sdesc = If (c, then_, else_); spos = pos }
  | Lexer.KW "while" ->
    advance st;
    expect_punct st "(";
    let c = parse_expr st in
    expect_punct st ")";
    let body = parse_block st in
    { sdesc = While (c, body); spos = pos }
  | Lexer.KW "do" ->
    advance st;
    let body = parse_block st in
    expect st (Lexer.KW "while") "'while'";
    expect_punct st "(";
    let c = parse_expr st in
    expect_punct st ")";
    expect_punct st ";";
    { sdesc = Do_while (body, c); spos = pos }
  | Lexer.KW "for" ->
    advance st;
    expect_punct st "(";
    let init =
      if peek st = Lexer.PUNCT ";" then None
      else if (match peek st with Lexer.KW k -> ty_of_kw k <> None | _ -> false)
      then begin
        (* declaration initializer: for (int i = 0; ...) *)
        let t = parse_ty st in
        let name = ident st in
        expect_punct st "=";
        let e = parse_expr st in
        Some { sdesc = Decl (t, name, Some e); spos = pos }
      end
      else Some (parse_simple st)
    in
    expect_punct st ";";
    let cond = if peek st = Lexer.PUNCT ";" then None else Some (parse_expr st) in
    expect_punct st ";";
    let step = if peek st = Lexer.PUNCT ")" then None else Some (parse_simple st) in
    expect_punct st ")";
    let body = parse_block st in
    { sdesc = For (init, cond, step, body); spos = pos }
  | Lexer.KW "break" ->
    advance st;
    expect_punct st ";";
    { sdesc = Break; spos = pos }
  | Lexer.KW "continue" ->
    advance st;
    expect_punct st ";";
    { sdesc = Continue; spos = pos }
  | Lexer.KW "return" ->
    advance st;
    if accept_punct st ";" then { sdesc = Return None; spos = pos }
    else begin
      let e = parse_expr st in
      expect_punct st ";";
      { sdesc = Return (Some e); spos = pos }
    end
  | Lexer.KW "emit" ->
    advance st;
    expect_punct st "(";
    let e = parse_expr st in
    expect_punct st ")";
    expect_punct st ";";
    { sdesc = Emit e; spos = pos }
  | _ ->
    let s = parse_simple st in
    expect_punct st ";";
    s

and parse_block st =
  if accept_punct st "{" then begin
    let rec loop acc =
      if accept_punct st "}" then List.rev acc else loop (parse_stmt st :: acc)
    in
    loop []
  end
  else [ parse_stmt st ]

(* --- top level --------------------------------------------------------- *)

let parse_param st =
  let pty = parse_ty st in
  let pointer = accept_punct st "*" in
  let pname = ident st in
  let brackets = accept_punct st "[" in
  if brackets then expect_punct st "]";
  { pty; pname; parray = pointer || brackets }

let parse_params st =
  if accept_punct st ")" then []
  else begin
    let rec loop acc =
      let p = parse_param st in
      if accept_punct st "," then loop (p :: acc)
      else begin
        expect_punct st ")";
        List.rev (p :: acc)
      end
    in
    loop []
  end

let parse_fun_tail st ~ret ~name ~fpos =
  let params = parse_params st in
  expect_punct st "{";
  let rec loop acc =
    if accept_punct st "}" then List.rev acc else loop (parse_stmt st :: acc)
  in
  let body = loop [] in
  { ret; fname = name; params; body; fpos }

let parse_global_array st t name =
  let size =
    if peek st = Lexer.PUNCT "]" then None
    else Some (Int64.to_int (int_lit st))
  in
  expect_punct st "]";
  let init =
    if accept_punct st "=" then begin
      match peek st with
      | Lexer.STRING_LIT s ->
        advance st;
        Some (Init_string s)
      | Lexer.PUNCT "{" ->
        advance st;
        let rec loop acc =
          let v = int_lit st in
          if accept_punct st "," then loop (v :: acc)
          else begin
            expect_punct st "}";
            List.rev (v :: acc)
          end
        in
        Some (Init_list (loop []))
      | tok ->
        error_at (peek_pos st) "expected array initializer, found %s"
          (Lexer.token_to_string tok)
    end
    else None
  in
  expect_punct st ";";
  let size =
    match (size, init) with
    | Some s, _ -> s
    | None, Some (Init_string s) -> String.length s + 1
    | None, Some (Init_list l) -> List.length l
    | None, None -> error_at (peek_pos st) "array %s needs a size" name
  in
  Garray (t, name, size, init)

let parse_program st =
  let globals = ref [] and funcs = ref [] in
  let rec loop () =
    match peek st with
    | Lexer.EOF -> ()
    | Lexer.KW "void" ->
      let fpos = peek_pos st in
      advance st;
      let name = ident st in
      expect_punct st "(";
      funcs := parse_fun_tail st ~ret:None ~name ~fpos :: !funcs;
      loop ()
    | Lexer.KW k when ty_of_kw k <> None ->
      let fpos = peek_pos st in
      let t = parse_ty st in
      let name = ident st in
      (match peek st with
      | Lexer.PUNCT "(" ->
        advance st;
        funcs := parse_fun_tail st ~ret:(Some t) ~name ~fpos :: !funcs
      | Lexer.PUNCT "[" ->
        advance st;
        globals := parse_global_array st t name :: !globals
      | _ ->
        let init = if accept_punct st "=" then int_lit st else 0L in
        expect_punct st ";";
        globals := Gscalar (t, name, init) :: !globals);
      loop ()
    | tok ->
      error_at (peek_pos st) "expected a declaration, found %s"
        (Lexer.token_to_string tok)
  in
  loop ();
  { globals = List.rev !globals; funcs = List.rev !funcs }

let parse src =
  let st = { toks = Lexer.tokenize src; i = 0 } in
  parse_program st
