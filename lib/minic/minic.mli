(** MiniC front end: one-call compilation to the Alpha-like IR. *)

(** Compilation error with a human-readable message (includes source
    position when available). *)
exception Error of string

val parse : string -> Ast.program
(** Parse and semantically check; raises {!Error}. *)

val lower : string -> Ogc_ir.Prog.t
(** Parse, check and generate code over virtual registers; the result
    passes {!Ogc_ir.Validate.program} with [~allow_virtual:true] but is
    not yet register-allocated.  Raises {!Error}. *)

val compile_with_info : string -> Ogc_ir.Prog.t * Ogc_regalloc.Regalloc.info
(** {!lower}, then graph-coloring register allocation with width-aware
    spill slots (VRP-backed, run lazily on the pre-allocation program),
    then validation.  Returns the executable program together with the
    allocation summary (spill slots, spill-op instruction ids, iteration
    counts).  Raises {!Error}. *)

val compile : string -> Ogc_ir.Prog.t
(** [fst (compile_with_info src)]. *)
