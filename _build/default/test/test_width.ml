(* Unit and property tests for Ogc_isa.Width. *)

open Ogc_isa

let check_w = Alcotest.testable (Fmt.of_to_string Width.to_string) Width.equal

let test_bits () =
  Alcotest.(check int) "W8" 8 (Width.bits Width.W8);
  Alcotest.(check int) "W16" 16 (Width.bits Width.W16);
  Alcotest.(check int) "W32" 32 (Width.bits Width.W32);
  Alcotest.(check int) "W64" 64 (Width.bits Width.W64);
  Alcotest.(check int) "bytes W32" 4 (Width.bytes Width.W32)

let test_of_bytes () =
  Alcotest.check check_w "1" Width.W8 (Width.of_bytes 1);
  Alcotest.check check_w "2" Width.W16 (Width.of_bytes 2);
  Alcotest.check check_w "3" Width.W32 (Width.of_bytes 3);
  Alcotest.check check_w "4" Width.W32 (Width.of_bytes 4);
  Alcotest.check check_w "5" Width.W64 (Width.of_bytes 5);
  Alcotest.check check_w "8" Width.W64 (Width.of_bytes 8);
  Alcotest.check_raises "0" (Invalid_argument "Width.of_bytes 0") (fun () ->
      ignore (Width.of_bytes 0));
  Alcotest.check_raises "9" (Invalid_argument "Width.of_bytes 9") (fun () ->
      ignore (Width.of_bytes 9))

let test_bounds () =
  Alcotest.(check int64) "max W8" 127L (Width.max_value Width.W8);
  Alcotest.(check int64) "min W8" (-128L) (Width.min_value Width.W8);
  Alcotest.(check int64) "max W16" 32767L (Width.max_value Width.W16);
  Alcotest.(check int64) "min W32" (-2147483648L) (Width.min_value Width.W32);
  Alcotest.(check int64) "max W64" Int64.max_int (Width.max_value Width.W64)

let test_needed () =
  Alcotest.check check_w "0" Width.W8 (Width.needed 0L);
  Alcotest.check check_w "127" Width.W8 (Width.needed 127L);
  Alcotest.check check_w "128" Width.W16 (Width.needed 128L);
  Alcotest.check check_w "-128" Width.W8 (Width.needed (-128L));
  Alcotest.check check_w "-129" Width.W16 (Width.needed (-129L));
  Alcotest.check check_w "255" Width.W16 (Width.needed 255L);
  Alcotest.check check_w "65535" Width.W32 (Width.needed 65535L);
  Alcotest.check check_w "2^31" Width.W64 (Width.needed 0x8000_0000L);
  Alcotest.check check_w "min_int" Width.W64 (Width.needed Int64.min_int);
  Alcotest.check check_w "range" Width.W16
    (Width.needed_range (-129L) 5L)

let test_truncate () =
  Alcotest.(check int64) "trunc8 256" 0L (Width.truncate 256L Width.W8);
  Alcotest.(check int64) "trunc8 255" (-1L) (Width.truncate 255L Width.W8);
  Alcotest.(check int64) "trunc8 127" 127L (Width.truncate 127L Width.W8);
  Alcotest.(check int64) "trunc16 -1" (-1L) (Width.truncate (-1L) Width.W16);
  Alcotest.(check int64) "trunc64 id" Int64.min_int
    (Width.truncate Int64.min_int Width.W64);
  Alcotest.(check int64) "truncu8 255" 255L
    (Width.truncate_unsigned 255L Width.W8);
  Alcotest.(check int64) "truncu8 -1" 255L
    (Width.truncate_unsigned (-1L) Width.W8);
  Alcotest.(check int64) "truncu32 -1" 0xFFFF_FFFFL
    (Width.truncate_unsigned (-1L) Width.W32)

let test_order () =
  Alcotest.check check_w "max" Width.W32 (Width.max Width.W8 Width.W32);
  Alcotest.check check_w "min" Width.W8 (Width.min Width.W8 Width.W32);
  Alcotest.(check bool) "compare" true (Width.compare Width.W8 Width.W64 < 0);
  Alcotest.(check int) "all" 4 (List.length Width.all)

let arbitrary_int64 =
  QCheck.(
    oneof
      [ map Int64.of_int small_signed_int;
        int64;
        oneofl
          [ 0L; 1L; -1L; 127L; 128L; -128L; -129L; 255L; 256L; 32767L;
            32768L; -32768L; -32769L; 65535L; 0x7FFF_FFFFL; 0x8000_0000L;
            Int64.neg 0x8000_0000L; Int64.max_int; Int64.min_int ] ])

let prop_needed_fits =
  QCheck.Test.make ~name:"needed width always fits" ~count:2000
    arbitrary_int64 (fun v -> Width.fits v (Width.needed v))

let prop_needed_minimal =
  QCheck.Test.make ~name:"needed width is minimal" ~count:2000 arbitrary_int64
    (fun v ->
      match Width.needed v with
      | Width.W8 -> true
      | w ->
        let narrower =
          List.filter (fun x -> Width.compare x w < 0) Width.all
        in
        List.for_all (fun x -> not (Width.fits v x)) narrower)

let prop_truncate_idempotent =
  QCheck.Test.make ~name:"truncate is idempotent" ~count:2000
    QCheck.(pair arbitrary_int64 (oneofl Width.all))
    (fun (v, w) ->
      let t = Width.truncate v w in
      Int64.equal (Width.truncate t w) t)

let prop_truncate_fits =
  QCheck.Test.make ~name:"truncate lands in the signed range" ~count:2000
    QCheck.(pair arbitrary_int64 (oneofl Width.all))
    (fun (v, w) -> Width.fits (Width.truncate v w) w)

let prop_truncate_fixpoint =
  QCheck.Test.make ~name:"truncate is identity on fitting values" ~count:2000
    QCheck.(pair arbitrary_int64 (oneofl Width.all))
    (fun (v, w) ->
      QCheck.assume (Width.fits v w);
      Int64.equal (Width.truncate v w) v)

let prop_truncate_unsigned_low_bits =
  QCheck.Test.make ~name:"signed and unsigned truncation agree on low bits"
    ~count:2000
    QCheck.(pair arbitrary_int64 (oneofl Width.all))
    (fun (v, w) ->
      let mask =
        if Width.equal w Width.W64 then -1L
        else Int64.sub (Int64.shift_left 1L (Width.bits w)) 1L
      in
      Int64.equal
        (Int64.logand (Width.truncate v w) mask)
        (Int64.logand (Width.truncate_unsigned v w) mask))

let () =
  Alcotest.run "width"
    [
      ( "unit",
        [
          Alcotest.test_case "bits" `Quick test_bits;
          Alcotest.test_case "of_bytes" `Quick test_of_bytes;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "needed" `Quick test_needed;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "order" `Quick test_order;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_needed_fits;
            prop_needed_minimal;
            prop_truncate_idempotent;
            prop_truncate_fits;
            prop_truncate_fixpoint;
            prop_truncate_unsigned_low_bits;
          ] );
    ]
