(* Random raw-IR program generation.

   The MiniC generator only produces what the code generator produces;
   this one drives {!Ogc_ir.Builder} directly so the differential oracle
   also sees programs no front end would emit: odd width mixes, masks
   and sign-extensions feeding each other, conditional moves, stores
   narrower than their loads, and values that wrap at every width.

   Register discipline (so every program is valid and analyzable):
   - r1..r6   general temporaries (read/write)
   - r7       address register, written only by [La] right before use
   - r8       compare scratch feeding structured branches
   - r9..r12  accumulators, emitted at the end of [main]
   - r13,r14  loop iterators, one per nesting level, never written by
              generated body operations (loops always terminate)
   - r27/r28  never touched (reserved for the binary optimizer's guards)

   All randomness flows through the caller's [Random.State.t]
   ([QCheck.Gen.t] is exactly that function type), so programs are
   reproducible from a seed alone. *)

open Ogc_isa
module Prog = Ogc_ir.Prog
module Builder = Ogc_ir.Builder
module Gen = QCheck.Gen

let temps = List.map Reg.of_int [ 1; 2; 3; 4; 5; 6 ]
let addr_reg = Reg.of_int 7
let cmp_reg = Reg.of_int 8
let accs = List.map Reg.of_int [ 9; 10; 11; 12 ]
let iter_regs = [| Reg.of_int 13; Reg.of_int 14 |]
let buf_name = "gbuf"
let buf_len = 512  (* bytes; offsets stay in [0, buf_len - 8] *)

let interesting =
  [ 0L; 1L; -1L; 2L; -2L; 127L; -128L; 128L; 255L; 256L; 32767L; -32768L;
    65535L; 65536L; 0x7fffffffL; 0x80000000L; -2147483648L; 1000000007L;
    0x123456789L; Int64.max_int; Int64.min_int ]

let value st =
  match Gen.int_range 0 3 st with
  | 0 -> Gen.oneofl interesting st
  | 1 -> Int64.of_int (Gen.int_range (-100) 100 st)
  | 2 -> Int64.of_int (Gen.int_range (-70000) 70000 st)
  | _ -> Gen.(map Int64.of_int (int_bound 0x3fffffff)) st

let width = Gen.oneofl Width.all

let alu_op =
  Gen.oneofl
    [ Instr.Add; Instr.Sub; Instr.Mul; Instr.Div; Instr.Rem; Instr.And;
      Instr.Or; Instr.Xor; Instr.Bic; Instr.Sll; Instr.Srl; Instr.Sra ]

let cmp_op =
  Gen.oneofl [ Instr.Ceq; Instr.Clt; Instr.Cle; Instr.Cult; Instr.Cule ]

let cond =
  Gen.oneofl [ Instr.Eq; Instr.Ne; Instr.Lt; Instr.Le; Instr.Gt; Instr.Ge ]

let pick l st = Gen.oneofl l st

(* One straight-line value-producing operation reading [rs], writing one
   of [ws]. *)
let operation rs ws st =
  let src () = pick rs st in
  let dst = pick ws st in
  let operand ~shift =
    if Gen.bool st then Instr.Reg (src ())
    else if shift then Instr.Imm (Int64.of_int (Gen.int_range 0 63 st))
    else Instr.Imm (Int64.of_int (Gen.int_range (-128) 127 st))
  in
  match Gen.int_range 0 9 st with
  | 0 | 1 | 2 | 3 ->
    let op = alu_op st in
    let shift = match op with
      | Instr.Sll | Instr.Srl | Instr.Sra -> true
      | _ -> false
    in
    Instr.Alu { op; width = width st; src1 = src (); src2 = operand ~shift; dst }
  | 4 | 5 ->
    Instr.Cmp
      { op = cmp_op st; width = width st; src1 = src ();
        src2 = operand ~shift:false; dst }
  | 6 ->
    Instr.Cmov
      { cond = cond st; width = width st; test = src ();
        src = operand ~shift:false; dst }
  | 7 -> Instr.Msk { width = width st; src = src (); dst }
  | 8 -> Instr.Sext { width = width st; src = src (); dst }
  | _ -> Instr.Li { dst; imm = value st }

(* --- leaf helpers ---------------------------------------------------------- *)

let helper ~fresh_iid name st =
  let arity = Gen.int_range 1 2 st in
  let b = Builder.create ~fresh_iid ~fname:name ~arity in
  let entry = Builder.new_block b in
  Builder.switch_to b entry;
  let args = List.init arity Reg.arg in
  let htemps = List.map Reg.of_int [ 1; 2; 3 ] in
  let rs = args @ htemps in
  (* Scratch registers are caller-saved and hold nothing on entry. *)
  List.iter
    (fun r -> ignore (Builder.ins b (Instr.Li { dst = r; imm = value st })))
    htemps;
  let n = Gen.int_range 3 8 st in
  for _ = 1 to n do
    ignore (Builder.ins b (operation rs htemps st))
  done;
  (* The return value reads whatever the body left behind. *)
  ignore
    (Builder.ins b
       (Instr.Alu
          { op = Instr.Add; width = Width.W64; src1 = pick rs st;
            src2 = Instr.Imm 0L; dst = Reg.ret }));
  Builder.terminate b Prog.Return;
  Builder.finish b ~frame_size:0

(* --- main ------------------------------------------------------------------ *)

(* [segments] appends a run of program segments to the builder's current
   block and leaves a block open for the caller to extend or terminate.
   [iters] counts the loop-iterator registers already in scope. *)
let rec segments b ~helpers ~iters ~depth n st =
  let in_scope = Array.to_list (Array.sub iter_regs 0 iters) in
  let rs = temps @ accs @ in_scope in
  let ws = temps @ accs in
  for _ = 1 to n do
    match Gen.int_range 0 12 st with
    | 0 | 1 | 2 | 3 ->
      let k = Gen.int_range 1 5 st in
      for _ = 1 to k do
        ignore (Builder.ins b (operation rs ws st))
      done
    | 4 | 5 when depth > 0 && iters < Array.length iter_regs ->
      (* Affine loop: iter = 0; do body while ((iter += step) < bound). *)
      let iter = iter_regs.(iters) in
      let step = Int64.of_int (Gen.int_range 1 3 st) in
      let bound = Int64.of_int (Gen.int_range 1 24 st) in
      ignore (Builder.ins b (Instr.Li { dst = iter; imm = 0L }));
      let header = Builder.new_block b in
      Builder.terminate b (Prog.Jump header);
      Builder.switch_to b header;
      segments b ~helpers ~iters:(iters + 1) ~depth:(depth - 1)
        (Gen.int_range 1 2 st) st;
      ignore
        (Builder.ins b
           (Instr.Alu
              { op = Instr.Add; width = Width.W64; src1 = iter;
                src2 = Instr.Imm step; dst = iter }));
      ignore
        (Builder.ins b
           (Instr.Cmp
              { op = Instr.Clt; width = Width.W64; src1 = iter;
                src2 = Instr.Imm bound; dst = cmp_reg }));
      let exit_ = Builder.new_block b in
      Builder.terminate b
        (Prog.Branch
           { cond = Instr.Ne; src = cmp_reg; if_true = header;
             if_false = exit_ });
      Builder.switch_to b exit_
    | 6 | 7 when depth > 0 ->
      (* Two-way split on a fresh comparison, rejoining immediately. *)
      ignore
        (Builder.ins b
           (Instr.Cmp
              { op = cmp_op st; width = width st; src1 = pick rs st;
                src2 = Instr.Imm (Int64.of_int (Gen.int_range (-4) 4 st));
                dst = cmp_reg }));
      let then_b = Builder.new_block b in
      let else_b = Builder.new_block b in
      Builder.terminate b
        (Prog.Branch
           { cond = cond st; src = cmp_reg; if_true = then_b;
             if_false = else_b });
      let join = ref None in
      List.iter
        (fun blk ->
          Builder.switch_to b blk;
          segments b ~helpers ~iters ~depth:(depth - 1)
            (Gen.int_range 1 2 st) st;
          let j =
            match !join with
            | Some j -> j
            | None ->
              let j = Builder.new_block b in
              join := Some j;
              j
          in
          Builder.terminate b (Prog.Jump j))
        [ then_b; else_b ];
      Builder.switch_to b (Option.get !join)
    | 8 | 9 ->
      (* Memory traffic on the shared buffer, all four widths. *)
      ignore (Builder.ins b (Instr.La { dst = addr_reg; symbol = buf_name }));
      let w = width st in
      let off () =
        Int64.of_int (Gen.int_range 0 ((buf_len - 8) / 8) st * 8)
      in
      ignore
        (Builder.ins b
           (Instr.Store
              { width = w; base = addr_reg; offset = off (); src = pick rs st }));
      if Gen.bool st then
        ignore
          (Builder.ins b
             (Instr.Load
                { width = width st; signed = Gen.bool st; base = addr_reg;
                  offset = off (); dst = pick ws st }))
    | 10 | 11 when helpers <> [] ->
      (* Call a leaf helper and bank its return value. *)
      let fname, arity = pick helpers st in
      for i = 0 to arity - 1 do
        ignore
          (Builder.ins b
             (Instr.Alu
                { op = Instr.Add; width = Width.W64; src1 = pick rs st;
                  src2 = Instr.Imm 0L; dst = Reg.arg i }))
      done;
      ignore (Builder.ins b (Instr.Call { callee = fname }));
      ignore
        (Builder.ins b
           (Instr.Alu
              { op = Instr.Add; width = Width.W64; src1 = Reg.ret;
                src2 = Instr.Imm 0L; dst = pick accs st }));
      (* The call clobbered the caller-saved temps; re-seed them so
         later reads stay within the calling-convention contract
         ({!Ogc_ir.Welldef}). *)
      List.iter
        (fun r ->
          ignore (Builder.ins b (Instr.Li { dst = r; imm = value st })))
        temps
    | _ -> ignore (Builder.ins b (Instr.Emit { src = pick rs st }))
  done

let program st =
  let counter = ref 0 in
  let fresh_iid () =
    let i = !counter in
    incr counter;
    i
  in
  let nhelpers = Gen.int_range 0 2 st in
  let helpers_f =
    List.init nhelpers (fun i ->
        helper ~fresh_iid (Printf.sprintf "leaf%d" i) st)
  in
  let helpers =
    List.map (fun (f : Prog.func) -> (f.Prog.fname, f.Prog.arity)) helpers_f
  in
  let b = Builder.create ~fresh_iid ~fname:"main" ~arity:0 in
  let entry = Builder.new_block b in
  Builder.switch_to b entry;
  (* Seed every working register so reads are never of indeterminate
     state and VRP starts from concrete ranges. *)
  List.iter
    (fun r -> ignore (Builder.ins b (Instr.Li { dst = r; imm = value st })))
    (temps @ accs);
  segments b ~helpers ~iters:0 ~depth:2 (Gen.int_range 3 7 st) st;
  List.iter
    (fun r -> ignore (Builder.ins b (Instr.Emit { src = r })))
    accs;
  (* [Return] reads the result register (main's exit status). *)
  ignore (Builder.ins b (Instr.Li { dst = Reg.ret; imm = 0L }));
  Builder.terminate b Prog.Return;
  let main = Builder.finish b ~frame_size:0 in
  let init = Bytes.init buf_len (fun _ -> Char.chr (Gen.int_bound 255 st)) in
  let p =
    Prog.create
      ~globals:[ { Prog.gname = buf_name; init } ]
      (helpers_f @ [ main ])
  in
  Ogc_ir.Validate.program p;
  Ogc_ir.Welldef.program p;
  p

let arbitrary_program = QCheck.make ~print:Ogc_ir.Asm.to_string program
