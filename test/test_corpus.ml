(* Replay the regression corpus: every minimized counterexample in
   test/corpus/ must run every standing oracle chain without a diff.
   Each file was once a miscompile (or an injected-bug witness); a diff
   here means a fixed bug has come back. *)

module Asm = Ogc_ir.Asm
module Oracle = Ogc_fuzz.Oracle

let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".s")
  |> List.sort String.compare
  |> List.map (Filename.concat "corpus")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let replay path () =
  let p = Asm.parse (read_file path) in
  Ogc_ir.Validate.program p;
  match Oracle.check ~transforms:Oracle.default_transforms p with
  | Oracle.Skipped msg ->
    Alcotest.failf "%s: baseline faulted (%s); corpus entries must run"
      path msg
  | Oracle.Checked [] -> ()
  | Oracle.Checked (d :: _) ->
    Alcotest.failf "%s: chain %s diverged: %s" path d.Oracle.d_chain
      d.Oracle.d_detail

let () =
  let files = corpus_files () in
  if files = [] then failwith "corpus is empty; expected test/corpus/*.s";
  Alcotest.run "corpus"
    [
      ( "replay",
        List.map
          (fun f -> Alcotest.test_case f `Quick (replay f))
          files );
    ]
