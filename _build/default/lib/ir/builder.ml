type pending = {
  label : Label.t;
  mutable body_rev : Prog.ins list;
  mutable term : Prog.terminator option;
  mutable term_iid : int;
}

type t = {
  fresh_iid : unit -> int;
  fname : string;
  arity : int;
  mutable blocks : pending list;  (* reversed *)
  mutable nblocks : int;
  mutable current : pending option;
}

let create ~fresh_iid ~fname ~arity =
  { fresh_iid; fname; arity; blocks = []; nblocks = 0; current = None }

let new_block t =
  let label = Label.of_int t.nblocks in
  t.nblocks <- t.nblocks + 1;
  t.blocks <- { label; body_rev = []; term = None; term_iid = -1 } :: t.blocks;
  label

let find_pending t l =
  List.find (fun p -> Label.equal p.label l) t.blocks

let switch_to t l =
  let p = find_pending t l in
  if p.term <> None || p.body_rev <> [] then
    Fmt.invalid_arg "Builder.switch_to: block %d already filled"
      (Label.to_int l);
  t.current <- Some p

let current t =
  match t.current with
  | Some p -> p
  | None -> invalid_arg "Builder: no current block"

let ins t i =
  let p = current t in
  if p.term <> None then invalid_arg "Builder.ins: block already terminated";
  let iid = t.fresh_iid () in
  p.body_rev <- { Prog.iid; op = i } :: p.body_rev;
  iid

let terminate t term =
  let p = current t in
  if p.term <> None then invalid_arg "Builder.terminate: already terminated";
  p.term <- Some term;
  p.term_iid <- t.fresh_iid ();
  t.current <- None

let current_label t = (current t).label

let finish t ~frame_size =
  let blocks = Array.make t.nblocks None in
  List.iter
    (fun p -> blocks.(Label.to_int p.label) <- Some p)
    t.blocks;
  let blocks =
    Array.map
      (function
        | Some p -> (
          match p.term with
          | None ->
            Fmt.invalid_arg "Builder.finish(%s): block %d not terminated"
              t.fname (Label.to_int p.label)
          | Some term ->
            {
              Prog.label = p.label;
              body = Array.of_list (List.rev p.body_rev);
              term;
              term_iid = p.term_iid;
            })
        | None -> assert false)
      blocks
  in
  { Prog.fname = t.fname; arity = t.arity; blocks; frame_size }
