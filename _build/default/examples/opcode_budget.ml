(* Opcode budget: the paper's §4.3 question made concrete.  Software
   operand gating needs width-variant opcodes; this example prints the
   full opcode space of the gated ISA, marks which opcodes base Alpha
   already has, and measures — for one workload — how much of the dynamic
   instruction stream runs on extension opcodes after VRP re-encoding.

   Run with: dune exec examples/opcode_budget.exe [-- <workload>] *)

module Encoding = Ogc_isa.Encoding
module Workload = Ogc_workloads.Workload
module Pipeline = Ogc_cpu.Pipeline
module Policy = Ogc_gating.Policy
module Render = Ogc_harness.Render

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "gcc" in
  let w = Workload.find name in

  (* 1. The opcode space. *)
  let total = List.length Encoding.all_opcodes in
  let extensions =
    List.filter (fun (op, _) -> not (Encoding.base_alpha op)) Encoding.all_opcodes
  in
  Format.printf
    "The width-annotated ISA has %d opcodes; base Alpha covers %d of them,@."
    total (total - List.length extensions);
  Format.printf "leaving %d extension opcodes for software operand gating:@.@."
    (List.length extensions);
  let rec chunks n = function
    | [] -> []
    | l ->
      let take = List.filteri (fun i _ -> i < n) l in
      let rest = List.filteri (fun i _ -> i >= n) l in
      take :: chunks n rest
  in
  List.iter
    (fun row ->
      Format.printf "  %s@."
        (String.concat "  "
           (List.map (fun (_, m) -> Printf.sprintf "%-10s" m) row)))
    (chunks 6 extensions);

  (* 2. Dynamic usage on one workload, after VRP. *)
  Format.printf "@.dynamic opcode usage for %s (train input, VRP widths):@.@."
    w.Workload.name;
  let p = Workload.compile w Workload.Train in
  ignore (Ogc_core.Vrp.run p);
  let stats = Pipeline.simulate ~policy:Policy.Software p in
  let committed =
    Hashtbl.fold (fun _ n acc -> acc + n) stats.Pipeline.opcode_counts 0
  in
  let rows =
    Hashtbl.fold (fun op n acc -> (op, n) :: acc) stats.Pipeline.opcode_counts []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> List.filteri (fun i _ -> i < 16)
    |> List.map (fun (op, n) ->
           let opc = Encoding.opcode_of_int op in
           [ Encoding.mnemonic opc;
             (if Encoding.base_alpha opc then "base" else "EXTENSION");
             Render.pct (float_of_int n /. float_of_int committed) ])
  in
  Format.printf "%s"
    (Render.table ~header:[ "Opcode"; "Alpha status"; "% of committed" ] rows);
  let ext_dyn =
    Hashtbl.fold
      (fun op n acc ->
        if Encoding.base_alpha (Encoding.opcode_of_int op) then acc else acc + n)
      stats.Pipeline.opcode_counts 0
  in
  Format.printf
    "@.extension opcodes execute %s of the stream — the share of the\n\
     energy savings that genuinely requires the ISA change (§4.3).@."
    (Render.pct (float_of_int ext_dyn /. float_of_int committed))
