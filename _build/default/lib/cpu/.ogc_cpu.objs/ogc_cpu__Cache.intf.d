lib/cpu/cache.mli: Machine_config
