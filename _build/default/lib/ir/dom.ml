type t = { idom : int array (* -1 = none *) }

let compute cfg =
  let n = Cfg.num_blocks cfg in
  let idom = Array.make n (-1) in
  if n = 0 then { idom }
  else begin
    let entry = Label.to_int (Cfg.entry cfg) in
    idom.(entry) <- entry;
    (* Map each block to its reverse-postorder position for intersection. *)
    let rpo = Cfg.reverse_postorder cfg in
    let rpo_pos = Array.make n max_int in
    List.iteri (fun i l -> rpo_pos.(Label.to_int l) <- i) rpo;
    let rec intersect a b =
      if a = b then a
      else if rpo_pos.(a) > rpo_pos.(b) then intersect idom.(a) b
      else intersect a idom.(b)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun l ->
          let i = Label.to_int l in
          if i <> entry && Cfg.is_reachable cfg l then begin
            let preds =
              List.filter
                (fun p -> idom.(Label.to_int p) <> -1)
                (Cfg.preds cfg l)
            in
            match preds with
            | [] -> ()
            | first :: rest ->
              let new_idom =
                List.fold_left
                  (fun acc p -> intersect acc (Label.to_int p))
                  (Label.to_int first) rest
              in
              if idom.(i) <> new_idom then begin
                idom.(i) <- new_idom;
                changed := true
              end
          end)
        rpo
    done;
    (* By convention the entry has no immediate dominator. *)
    idom.(entry) <- -1;
    { idom }
  end

let idom t l =
  let i = t.idom.(Label.to_int l) in
  if i = -1 then None else Some (Label.of_int i)

let dominates t a b =
  let a = Label.to_int a in
  let rec walk b =
    if b = a then true
    else
      let d = t.idom.(b) in
      if d = -1 then false else walk d
  in
  walk (Label.to_int b)
