(** Natural-loop detection.

    A natural loop is identified from a back edge [latch -> header] where
    [header] dominates [latch]; its body is every block that can reach the
    latch without passing through the header.  Loops sharing a header are
    merged, as usual. *)

type loop = {
  header : Label.t;
  latches : Label.t list;  (** sources of the back edges *)
  body : Label.Set.t;  (** includes the header *)
  exits : (Label.t * Label.t) list;
      (** [(from, to)] edges leaving the loop body *)
}

type t

val compute : Cfg.t -> Dom.t -> t
val loops : t -> loop list

(** [innermost_containing t l] is the smallest loop whose body contains
    [l], if any. *)
val innermost_containing : t -> Label.t -> loop option

(** [depth t l] is the loop-nesting depth of block [l]; 0 when not in any
    loop. *)
val depth : t -> Label.t -> int
