open Ogc_isa
module Prog = Ogc_ir.Prog
module Interp = Ogc_ir.Interp
module Validate = Ogc_ir.Validate
module Welldef = Ogc_ir.Welldef
module Pass = Ogc_pass.Pass
module Gen = QCheck.Gen

type transform = { t_name : string; t_apply : Prog.t -> Prog.t }

let of_chain spec =
  (* Parse now so a malformed spec fails at construction, not on the
     first program. *)
  let chain = Pass.parse_chain spec in
  {
    t_name = spec;
    t_apply =
      (fun p ->
        let state, _steps = Pass.run_chain chain p in
        state.Pass.prog);
  }

let default_transforms =
  List.map of_chain
    [
      "cleanup";
      "vrp,encode-widths";
      "vrp:variant=conventional,encode-widths";
      "cleanup,vrp,encode-widths,constprop";
      "cleanup,vrp,encode-widths,bb-profile,value-profile,vrs:cost=30";
      "vrs:cost=50";
      "vrs:cost=110:constprop=false";
      "vrp,encode-widths,bb-profile,value-profile,zspec:cost=50";
    ]

let chain_pool =
  [
    "cleanup";
    "vrp";
    "vrp:variant=conventional";
    "encode-widths";
    "constprop";
    "bb-profile";
    "value-profile";
    "vrs:cost=30";
    "vrs:cost=70";
    "vrs:cost=110";
    "vrs:cost=50:constprop=false";
    "zspec:cost=30";
    "zspec:cost=70";
  ]

let random_chain st =
  let n = Gen.int_range 1 4 st in
  String.concat "," (List.init n (fun _ -> Gen.oneofl chain_pool st))

let step_down = function
  | Width.W64 -> Width.W32
  | Width.W32 -> Width.W16
  | Width.W16 -> Width.W8
  | Width.W8 -> Width.W8

let injected_width_bug =
  {
    t_name = "vrp,encode-widths[over-narrow]";
    t_apply =
      (fun p ->
        ignore (Ogc_core.Vrp.run p);
        Prog.iter_all_ins p (fun _ _ ins ->
            match ins.Prog.op with
            | Instr.Alu
                {
                  op = Instr.Add | Instr.Sub | Instr.Mul | Instr.And
                     | Instr.Or | Instr.Xor;
                  width;
                  _;
                } ->
              ins.Prog.op <- Instr.with_width ins.Prog.op (step_down width)
            | _ -> ());
        p);
  }

type diff = { d_chain : string; d_detail : string }
type result = Skipped of string | Checked of diff list

let interp_config = { Interp.default_config with max_steps = 2_000_000 }

let check ?(config = interp_config) ~transforms p =
  match Interp.run ~config p with
  | exception Interp.Fault msg -> Skipped msg
  | base ->
    (* Only conforming inputs can hold their transforms to conformance:
       shrinking or hand-editing can produce programs that already read
       clobbered registers, and no pass can be blamed for preserving
       that. *)
    let base_welldef = Welldef.check p = None in
    let check_one t =
      let q = Prog.copy p in
      match t.t_apply q with
      | exception e ->
        Some
          { d_chain = t.t_name;
            d_detail = "transform raised: " ^ Printexc.to_string e }
      | q -> (
        match Validate.program q with
        | exception Validate.Invalid msg ->
          Some { d_chain = t.t_name; d_detail = "validator: " ^ msg }
        | () -> (
          match if base_welldef then Welldef.check q else None with
          | Some msg ->
            Some { d_chain = t.t_name; d_detail = "welldef: " ^ msg }
          | None -> (
            match Interp.run ~config q with
            | exception Interp.Fault msg ->
              Some
                { d_chain = t.t_name; d_detail = "introduced fault: " ^ msg }
            | out ->
              if not (Int64.equal out.Interp.checksum base.Interp.checksum)
              then
                Some
                  {
                    d_chain = t.t_name;
                    d_detail =
                      Printf.sprintf "checksum %Ld, baseline %Ld"
                        out.Interp.checksum base.Interp.checksum;
                  }
              else if out.Interp.emitted <> base.Interp.emitted then
                Some
                  {
                    d_chain = t.t_name;
                    d_detail = "emitted stream diverged from baseline";
                  }
              else None)))
    in
    Checked (List.filter_map check_one transforms)
