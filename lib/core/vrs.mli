(** Value Range Specialization (paper §3).

    The profile-guided pipeline:

    + {b Candidate identification} (§3.3): after a first VRP pass,
      instructions producing wide, hot values are screened with a
      preliminary benefit analysis that assumes the cheapest possible
      guard (one comparison) and the best possible outcome (the value
      range collapses to a byte).  Survivors are the profiling points.
    + {b Value profiling}: a training run feeds each candidate's produced
      values into a {!Tnv} table (Calder-style, with periodic LFU
      cleaning).
    + {b Cost/benefit and specialization} (§3.1, §3.2, §3.4): for each
      candidate and each profiled range prefix, the expected energy gain
      [Freq(min,max) * Savings(I,r,min,max)] is weighed against the guard
      cost [InstCount(I) * InstCost(I,r)].  Profitable candidates have
      the region of dependent code dominated by the definition cloned;
      the original falls through, the clone is entered through a range
      guard ([x >= min && x <= max] — two compares and an AND-type
      operation feeding a conditional branch; a single compare when
      [min = max]; a bare branch when the value is zero, the Alpha
      single-instruction zero test).
    + A second VRP pass propagates the guard-established ranges through
      the clones ({!Vrp.assumption}), and {!Constprop} realizes the
      constant-folding/elimination the paper reports for single-value
      specializations.

    Guards use the two scratch registers the code generator reserves for
    the binary optimizer (r27/r28). *)

open Ogc_ir

type config = {
  test_cost_nj : float;
      (** energy charged per executed guard instruction when weighing a
          specialization, the paper's 30-110 nJ sweep knob *)
  hot_fraction : float;
      (** a candidate's block must account for at least this fraction of
          the training run's dynamic instructions (default 0.001) *)
  max_candidates : int;  (** profiling budget (default 256) *)
  min_freq : float;  (** minimum Freq(min,max) worth guarding (default 0.4) *)
  tnv_capacity : int;
  train_config : Interp.config;
  constprop : bool;
      (** run constant propagation / DCE inside the clones (default
          [true]; an ablation knob) *)
}

val default_config : config

(** Why a profiled point was or was not specialized (Figure 4's three
    categories). *)
type outcome =
  | Specialized of { lo : int64; hi : int64; freq : float; benefit : float }
  | Dependent_on_other  (** swallowed by an earlier point's region *)
  | No_benefit

type report = {
  profiled : (int * outcome) list;  (** per candidate iid, decision order *)
  guard_iids : (int, unit) Hashtbl.t;  (** guard compare/AND instructions *)
  guard_branch_iids : (int, unit) Hashtbl.t;
  clone_blocks : (string * Label.t) list;
  clone_iids : (int, unit) Hashtbl.t;  (** instructions inside clones *)
  static_cloned : int;  (** clone instructions at creation time *)
  static_eliminated : int;  (** clone instructions removed by constprop *)
  assumptions : Vrp.assumption list;
  final_vrp : Vrp.result;
}

val specialized_count : report -> int

(** [cost_of_label l] maps a paper cost label (e.g. 50, the Figure 8
    30-110 nJ sweep) to the model's per-guard-instruction energy
    parameter [test_cost_nj]. *)
val cost_of_label : int -> float

(** The guard-cost-independent front half of the pipeline: the initial
    VRP result, the training basic-block profile, the candidate master
    list (screened at zero guard cost) and the TNV value profiles.  One
    analysis can be {!specialize}d repeatedly — typically once per guard
    cost of a sweep — against copies of the program state it was
    computed on. *)
type analysis

(** Number of profiled candidate points in the master list. *)
val profiled_points : analysis -> int

(** The profiling points (candidate instruction ids) in decision order —
    what a client assembling a wire profile for this program should
    sample. *)
val candidate_iids : analysis -> int list

(** [analyze ?config ?vrp ?bb ?values prog] runs the front half on
    [prog].  [vrp] hands in an already-computed-and-applied initial VRP
    result (the analysis is then pure); without it, [Vrp.run] re-encodes
    [prog] in place first.  [bb] hands in training basic-block counts
    plus the run's dynamic instruction total, saving the first
    interpreter run.  [values] hands in streamed per-candidate
    (value, count) observations — a wire profile — replacing the
    value-profiling interpreter run entirely: each candidate's table is
    rebuilt with {!Tnv.of_entries}, and candidates absent from [values]
    profile as never-observed (so they specialize to nothing).  With
    both [bb] and [values], the analysis runs no interpreter at all.
    Only [hot_fraction], [tnv_capacity] and [train_config] of [config]
    are consulted — the analysis is independent of the guard cost. *)
val analyze :
  ?config:config ->
  ?vrp:Vrp.result ->
  ?bb:Interp.bb_counts * int ->
  ?values:(int, (int64 * int) list) Hashtbl.t ->
  Prog.t ->
  analysis

(** [specialize ?config analysis prog] applies the back half — guard-cost
    screening, cost/benefit, cloning, the assumption-carrying VRP passes
    and constant propagation — to [prog] in place.  [prog] must be in
    the exact state [analysis] was computed on (the same program, or a
    {!Ogc_ir.Prog.copy} of it: instruction ids and labels key every
    profile).  [specialize config (analyze config p) p] is byte-for-byte
    [run config p]. *)
val specialize : ?config:config -> analysis -> Prog.t -> report

(** [specialize_zero ?config analysis prog] applies the
    zero-specialization back half (the AZP-style [zspec] pass): only
    candidates whose tightest profiled range is exactly [0,0] at
    frequency >= [min_freq] are considered, each guarded by the
    single-instruction zero test, cloned, and constant-folded under the
    x = 0 assumption.  Same in-place contract as {!specialize}; a cheap
    high-yield subset of it, so running both on the same program state
    is redundant — pick one per chain. *)
val specialize_zero : ?config:config -> analysis -> Prog.t -> report

(** [run ?config prog] applies the whole VRS pipeline to [prog] in place
    (including the embedded VRP passes and constant propagation) and
    reports what happened.  [prog] must be freshly compiled (not already
    width-optimized); the training run uses the program as-is, so the
    workload's train/ref scaling is the caller's concern. *)
val run : ?config:config -> Prog.t -> report
