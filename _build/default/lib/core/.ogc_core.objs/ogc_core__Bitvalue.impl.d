lib/core/bitvalue.ml: Array Cfg Fmt Format Hashtbl Instr Int64 Label List Ogc_ir Ogc_isa Prog Reg String Width
