(** Hand-written lexer for MiniC. *)

exception Error of string * Ast.pos

type token =
  | INT_LIT of int64
  | IDENT of string
  | STRING_LIT of string
  | KW of string  (** one of the reserved words *)
  | PUNCT of string  (** operator or delimiter, longest-match *)
  | EOF

val keywords : string list

(** [tokenize src] is the token stream of [src] with source positions;
    the last element is [EOF].  Raises {!Error} on malformed input. *)
val tokenize : string -> (token * Ast.pos) array

val token_to_string : token -> string
