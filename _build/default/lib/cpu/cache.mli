(** Set-associative cache with LRU replacement. *)

type t

val create : Machine_config.cache_geometry -> t

(** [access t addr] touches the line containing [addr]; returns [true] on
    hit.  On miss the line is filled (and an LRU victim evicted). *)
val access : t -> int64 -> bool

(** (accesses, misses) since creation. *)
val stats : t -> int * int

val reset_stats : t -> unit
