(* Random MiniC program generation for differential testing.

   Generated programs always terminate (loops have constant bounds, no
   recursion, no while), never access memory out of bounds (indices are
   masked to the array size), and emit values along the way, so two
   binaries can be compared by output checksum.  Division and shifts are
   total in the ISA, so any operand combination is fair game.

   Helper functions exercise the interprocedural half of VRP (argument
   and return-range propagation) and give VRS call-crossing regions to
   specialize: each helper is call-free (so the call graph is acyclic by
   construction) and pure up to its parameters and the global scalars. *)

let arr_len = 64

(* Names available to expressions: scalar locals, global scalars, arrays,
   and callable helper functions with their arity.  [readonly] names
   (loop iterators) may be read but never assigned, so generated loops
   always terminate. *)
type env = {
  scalars : string list;
  globals : string list;
  arrays : string list;  (* all of size [arr_len] *)
  readonly : string list;
  funs : (string * int) list;  (* helpers callable from here *)
}

open QCheck.Gen

let literal =
  oneof
    [
      map string_of_int (int_range (-100) 100);
      oneofl
        [ "0"; "1"; "-1"; "127"; "128"; "255"; "256"; "32767"; "-32768";
          "65535"; "0x7fffffff"; "65536"; "1000000007" ];
    ]

let rec expr env depth =
  if depth <= 0 then
    oneof
      ((literal :: List.map (fun v -> return v) env.scalars)
      @ List.map (fun v -> return v) env.readonly
      @ List.map (fun g -> return g) env.globals)
  else
    let sub = expr env (depth - 1) in
    let bin op = map2 (fun a b -> Printf.sprintf "(%s %s %s)" a op b) sub sub in
    frequency
      ([
         (3, sub);
         (2, bin "+");
         (2, bin "-");
         (1, bin "*");
         (1, bin "/");
         (1, bin "%");
         (1, bin "&");
         (1, bin "|");
         (1, bin "^");
         (1, bin "<<");
         (1, bin ">>");
         (1, bin "<");
         (1, bin "<=");
         (1, bin "==");
         (1, bin "!=");
         (1, map (fun a -> Printf.sprintf "(- %s)" a) sub);  (* space avoids '--' *)
         (1, map (fun a -> Printf.sprintf "(~%s)" a) sub);
         (1, map (fun a -> Printf.sprintf "(!%s)" a) sub);
         ( 1,
           map2
             (fun t a -> Printf.sprintf "((%s)%s)" t a)
             (oneofl [ "char"; "short"; "int"; "long" ])
             sub );
         ( 1,
           map3
             (fun c a b -> Printf.sprintf "(%s ? %s : %s)" c a b)
             sub sub sub );
         ( 2,
           match env.arrays with
           | [] -> sub
           | arrays ->
             map2
               (fun arr i -> Printf.sprintf "%s[(%s) & %d]" arr i (arr_len - 1))
               (oneofl arrays) sub );
       ]
      @
      match env.funs with
      | [] -> []
      | funs ->
        [
          ( 2,
            let* name, arity = oneofl funs in
            let* args = list_repeat arity sub in
            return (Printf.sprintf "%s(%s)" name (String.concat ", " args)) );
        ])

let rec stmt env depth =
  let e = expr env 3 in
  let assign_scalar =
    match env.scalars with
    | [] -> map (Printf.sprintf "emit(%s);") e
    | vs ->
      map2
        (fun v rhs -> Printf.sprintf "%s = %s;" v rhs)
        (oneofl vs) e
  in
  let assign_array =
    match env.arrays with
    | [] -> assign_scalar
    | arrays ->
      map3
        (fun arr i rhs ->
          Printf.sprintf "%s[(%s) & %d] = %s;" arr i (arr_len - 1) rhs)
        (oneofl arrays) e e
  in
  let op_assign =
    match env.scalars with
    | [] -> assign_scalar
    | vs ->
      map3
        (fun v op rhs -> Printf.sprintf "%s %s %s;" v op rhs)
        (oneofl vs)
        (oneofl [ "+="; "-="; "*="; "&="; "|="; "^="; ">>="; "<<=" ])
        e
  in
  if depth <= 0 then
    frequency
      [ (3, assign_scalar); (2, assign_array); (2, op_assign);
        (1, map (Printf.sprintf "emit(%s);") e) ]
  else
    let body n = block env (depth - 1) n in
    frequency
      [
        (3, assign_scalar);
        (2, assign_array);
        (2, op_assign);
        (1, map (Printf.sprintf "emit(%s);") e);
        ( 2,
          map3
            (fun c t f -> Printf.sprintf "if (%s) {\n%s\n} else {\n%s\n}" c t f)
            e (body 2) (body 2) );
        ( 2,
          let* bound = int_range 1 9 in
          let* iv = oneofl [ "i0"; "i1"; "i2" ] in
          let* b =
            block { env with readonly = iv :: env.readonly } (depth - 1) 2
          in
          return
            (Printf.sprintf "for (int %s = 0; %s < %d; %s++) {\n%s\n}" iv iv
               bound iv b) );
      ]

and block env depth n =
  let* stmts = list_repeat n (stmt env depth) in
  return (String.concat "\n" stmts)

(* A helper: parameters and one local are its mutable scalars, globals
   are readable, and the body ends in a [return].  Emitting from helpers
   is deliberately avoided so a helper's observable effect is its return
   value (plus any global it writes through [main]'s statements —
   helpers never assign globals here).  [funs] lists the helpers this
   one may call: always earlier-numbered ones only, so the call graph
   stays acyclic and every program terminates.  The default build keeps
   helpers call-free ([funs = []]); the pressure build chains them. *)
let helper ?(funs = []) ?(max_arity = 2) globals name =
  let* arity = int_range 1 max_arity in
  let params = List.init arity (fun i -> Printf.sprintf "p%d" i) in
  let* ptys = list_repeat arity (oneofl [ "short"; "int"; "long" ]) in
  let* linit = literal in
  let env = { scalars = "t" :: params; globals; arrays = []; readonly = []; funs } in
  let* body = block env 1 3 in
  let* ret = expr env 3 in
  return
    ( Printf.sprintf "long %s(%s) {\n  long t = %s;\n%s\n  return %s;\n}" name
        (String.concat ", "
           (List.map2 (fun t p -> t ^ " " ^ p) ptys params))
        linit body ret,
      (name, arity) )

(* [~pressure] turns up register pressure: many scalar locals (all of
   them emitted at the end of [main], so every one is live across the
   whole body, calls included) and a deep chain of helpers where [h_i]
   may call [h_0..h_{i-1}].  Values live across a call can only survive
   in the few callee-saved registers, so the register allocator must
   spill; the defaults generate small programs that mostly color
   cleanly.

   [~zero_bias] plants zero-dominated values so the [zspec] chains in
   {!Oracle} actually fire: a few [long] globals initialized to 0 and a
   [long] array that is declared but deliberately kept out of [env] (so
   no generated statement ever writes it — statements only assign
   [env.scalars] and [env.arrays], and globals are never assigned at
   all).  A hot loop appended to [main] loads the zero array and
   multiplies it in, giving VRS a wide, hot, always-zero candidate;
   scalar initializers are also biased toward 0. *)
let program_gen ~pressure ~zero_bias =
  let* nscalars = if pressure then int_range 18 30 else int_range 1 5 in
  let* narrays = int_range 0 2 in
  let* nglobals = int_range 0 2 in
  let* nfuns = if pressure then int_range 3 5 else int_range 0 2 in
  let* nzeros = if zero_bias then int_range 1 3 else return 0 in
  let scalars = List.init nscalars (fun i -> Printf.sprintf "v%d" i) in
  let arrays = List.init narrays (fun i -> Printf.sprintf "arr%d" i) in
  let globals = List.init nglobals (fun i -> Printf.sprintf "g%d" i) in
  let zeros = List.init nzeros (fun i -> Printf.sprintf "z%d" i) in
  let* helpers =
    if pressure then
      let rec build i acc funs =
        if i >= nfuns then return (List.rev acc)
        else
          let* h =
            helper ~funs ~max_arity:3 globals (Printf.sprintf "h%d" i)
          in
          build (i + 1) (h :: acc) (funs @ [ snd h ])
      in
      build 0 [] []
    else
      List.init nfuns (fun i -> Printf.sprintf "h%d" i)
      |> List.map (helper globals)
      |> flatten_l
  in
  let funs = List.map snd helpers in
  let env = { scalars; globals = globals @ zeros; arrays; readonly = []; funs } in
  let* tys =
    list_repeat nscalars (oneofl [ "char"; "short"; "int"; "long" ])
  in
  let* atys = list_repeat narrays (oneofl [ "char"; "short"; "int"; "long" ]) in
  let scalar_init =
    (* Zero-biased builds seed about half the locals with 0 so short
       single-value ranges show up in the value profiles too. *)
    if zero_bias then frequency [ (1, literal); (1, return "0") ] else literal
  in
  let* inits = list_repeat nscalars scalar_init in
  let* body = block env 2 6 in
  let* tail = block env 1 3 in
  let* zero_kernel =
    (* The planted zspec target: a hot loop over a never-written [long]
       array ([zarr] is not in [env.arrays], so no statement can store to
       it) whose load feeds a multiply — profiled min = max = 0, wide and
       hot, exactly what the zero guard wants. *)
    if not zero_bias then return []
    else
      let* bound = int_range 32 96 in
      let zsum = String.concat " + " ("zarr[(zi * 7) & 63]" :: zeros) in
      return
        [
          Printf.sprintf
            "  for (int zi = 0; zi < %d; zi++) {\n\
            \    emit((%s) * (zi + 3) + zi);\n\
            \  }"
            bound zsum;
        ]
  in
  let decls =
    List.concat
      [
        List.mapi
          (fun i g -> Printf.sprintf "long %s = %d;" g (i * 37 + 5))
          globals;
        List.map (fun z -> Printf.sprintf "long %s = 0;" z) zeros;
        (if zero_bias then [ Printf.sprintf "long zarr[%d];" arr_len ] else []);
        List.map2 (fun a t -> Printf.sprintf "%s %s[%d];" t a arr_len)
          arrays atys;
      ]
  in
  let local_decls =
    List.map2
      (fun (v, t) init -> Printf.sprintf "  %s %s = (%s)(%s);" t v t init)
      (List.combine scalars tys) inits
  in
  return
    (String.concat "\n"
       (decls
       @ List.map fst helpers
       @ [ "int main() {" ]
       @ local_decls
       @ [ body; tail ]
       @ zero_kernel
       @ List.map (fun v -> Printf.sprintf "  emit(%s);" v) scalars
       @ [ "  return 0;"; "}" ]))

let program = program_gen ~pressure:false ~zero_bias:false
let pressure_program = program_gen ~pressure:true ~zero_bias:false
let zero_program = program_gen ~pressure:false ~zero_bias:true
let arbitrary_program = QCheck.make ~print:(fun s -> s) program

let arbitrary_pressure_program =
  QCheck.make ~print:(fun s -> s) pressure_program

let arbitrary_zero_program = QCheck.make ~print:(fun s -> s) zero_program
