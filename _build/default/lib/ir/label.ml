type t = int

let of_int i =
  if i < 0 then Fmt.invalid_arg "Label.of_int %d" i else i

let to_int l = l
let equal (a : t) (b : t) = a = b
let compare = Int.compare
let pp ppf l = Format.fprintf ppf "L%d" l

module Set = Set.Make (Int)
module Map = Map.Make (Int)
