(** Structured NDJSON logging: one compact JSON object per line with a
    level threshold and a pluggable sink.

    A line always carries ["ts"] (Unix seconds), ["level"] and ["msg"];
    callers append arbitrary JSON fields, so log consumers never parse
    free-form text.  The default sink writes to [stderr]; the sink runs
    under a mutex, so lines from worker domains and connection threads
    never interleave mid-line. *)

type level = Debug | Info | Warn | Error

val set_level : level -> unit
(** Threshold; default [Info]. Messages below it are dropped before any
    formatting work. *)

val level : unit -> level
val level_of_string : string -> level option
(** Case-insensitive ["debug"|"info"|"warn"|"error"]. *)

val level_name : level -> string

val set_sink : (string -> unit) -> unit
(** Replace the sink (one complete NDJSON line per call, no trailing
    newline). Default: [prerr_endline]. *)

val debug : ?fields:(string * Ogc_json.Json.t) list -> string -> unit
val info : ?fields:(string * Ogc_json.Json.t) list -> string -> unit
val warn : ?fields:(string * Ogc_json.Json.t) list -> string -> unit
val error : ?fields:(string * Ogc_json.Json.t) list -> string -> unit
