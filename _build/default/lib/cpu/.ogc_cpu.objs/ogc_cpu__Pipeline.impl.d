lib/cpu/pipeline.ml: Array Bpred Cache Encoding Hashtbl Instr Int64 Interp List Machine_config Ogc_energy Ogc_gating Ogc_ir Ogc_isa Option Prog Reg Width
