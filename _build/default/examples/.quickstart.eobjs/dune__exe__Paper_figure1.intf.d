examples/paper_figure1.mli:
