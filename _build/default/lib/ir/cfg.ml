type t = {
  nblocks : int;
  succ : Label.t list array;
  pred : Label.t list array;
  rpo : Label.t list;
  reach : bool array;
}

let successors_of_term = function
  | Prog.Jump l -> [ l ]
  | Prog.Branch { if_true; if_false; _ } ->
    if Label.equal if_true if_false then [ if_true ]
    else [ if_true; if_false ]
  | Prog.Return -> []

let of_func (f : Prog.func) =
  let n = Array.length f.blocks in
  let succ = Array.make n [] and pred = Array.make n [] in
  Array.iter
    (fun (b : Prog.block) ->
      let s = successors_of_term b.term in
      succ.(Label.to_int b.label) <- s;
      List.iter
        (fun l ->
          let i = Label.to_int l in
          pred.(i) <- b.label :: pred.(i))
        s)
    f.blocks;
  Array.iteri (fun i ps -> pred.(i) <- List.rev ps) pred;
  (* Depth-first search for postorder / reachability. *)
  let reach = Array.make n false in
  let order = ref [] in
  let rec dfs l =
    let i = Label.to_int l in
    if not reach.(i) then begin
      reach.(i) <- true;
      List.iter dfs succ.(i);
      order := l :: !order
    end
  in
  if n > 0 then dfs (Label.of_int 0);
  let unreachable =
    List.filter_map
      (fun i -> if reach.(i) then None else Some (Label.of_int i))
      (List.init n (fun i -> i))
  in
  { nblocks = n; succ; pred; rpo = !order @ unreachable; reach }

let num_blocks t = t.nblocks
let succs t l = t.succ.(Label.to_int l)
let preds t l = t.pred.(Label.to_int l)
let entry _ = Label.of_int 0
let reverse_postorder t = t.rpo
let postorder t = List.rev t.rpo
let is_reachable t l = t.reach.(Label.to_int l)
