(* The full benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (Tables 1-3, Figures 2-15) on the eight SpecInt95 surrogate workloads:
   all binary versions (baseline, conventional VRP, proposed VRP, VRS at
   the five specialization costs) are built and simulated on the Table 2
   machine under every gating policy the experiment needs.  The grid is
   sharded over a Domain pool (lib/exec) — see --jobs.

   Part 2 runs one Bechamel micro-benchmark per experiment, timing the
   analysis/simulation kernel that produces it (on small fixed inputs, so
   the numbers are stable).

   Usage: dune exec bench/main.exe -- [OPTIONS]
     --quick               train inputs and only the VRS-50 configuration
     --jobs N              worker domains (0 = auto: OGC_JOBS or the
                           machine's recommended domain count)
     --json FILE           write the collection as machine-readable JSON
     --baseline FILE       diff against a previous --json file and exit 3
                           on regression (skips the micro-benchmarks)
     --max-regression PCT  per-cell energy/IPC tolerance for --baseline
                           (default 5.0); also gates analyze visit counts
     --max-time-regression PCT
                           analyze wall-time tolerance for --baseline
                           (default 200.0 — timings are noisy)
     --trace FILE          record phase spans during the collection and
                           write a Chrome trace_event JSON (Perfetto)
     --skip-micro          skip the ablations and micro-benchmarks *)

module Results = Ogc_harness.Results
module Experiments = Ogc_harness.Experiments
module Json = Ogc_json.Json
module Minic = Ogc_minic.Minic
module Interp = Ogc_ir.Interp
module Vrp = Ogc_core.Vrp
module Vrs = Ogc_core.Vrs
module Policy = Ogc_gating.Policy

type options = {
  quick : bool;
  jobs : int option;
  json_out : string option;
  baseline : string option;
  max_regression_pct : float;
  max_time_regression_pct : float;
  trace_out : string option;
  skip_micro : bool;
}

let usage () =
  prerr_endline
    "usage: main.exe [--quick] [--jobs N] [--json FILE] [--baseline FILE]\n\
    \                [--max-regression PCT] [--max-time-regression PCT]\n\
    \                [--trace FILE] [--skip-micro]";
  exit 64

let parse_options () =
  let o =
    ref
      {
        quick = false;
        jobs = None;
        json_out = None;
        baseline = None;
        max_regression_pct = 5.0;
        max_time_regression_pct = 200.0;
        trace_out = None;
        skip_micro = false;
      }
  in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
      o := { !o with quick = true };
      go rest
    | "--skip-micro" :: rest ->
      o := { !o with skip_micro = true };
      go rest
    | "--jobs" :: v :: rest -> (
      match int_of_string_opt v with
      | Some n when n >= 0 ->
        o := { !o with jobs = (if n = 0 then None else Some n) };
        go rest
      | _ -> usage ())
    | "--json" :: v :: rest ->
      o := { !o with json_out = Some v };
      go rest
    | "--baseline" :: v :: rest ->
      o := { !o with baseline = Some v };
      go rest
    | "--trace" :: v :: rest ->
      o := { !o with trace_out = Some v };
      go rest
    | "--max-regression" :: v :: rest -> (
      match float_of_string_opt v with
      | Some p when p >= 0.0 ->
        o := { !o with max_regression_pct = p };
        go rest
      | _ -> usage ())
    | "--max-time-regression" :: v :: rest -> (
      match float_of_string_opt v with
      | Some p when p >= 0.0 ->
        o := { !o with max_time_regression_pct = p };
        go rest
      | _ -> usage ())
    | arg :: _ ->
      Printf.eprintf "unknown option %s\n" arg;
      usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  !o

let opts = parse_options ()
let quick = opts.quick

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* --- part 0: serve-fleet smoke bench ------------------------------------------ *)

(* Three in-process shards behind the consistent-hash router, a loadgen
   burst with one shard killed halfway through.  The gated series is the
   completion counts (failed must stay zero through the kill) and the
   client-observed latency percentiles.  Sized to a few seconds; the
   request count is fixed so baseline runs stay comparable. *)
let run_fleet_bench () =
  let module Server = Ogc_server.Server in
  let module Router = Ogc_fleet.Router in
  let module Loadgen = Ogc_fleet.Loadgen in
  let sock i =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ogc-bench-%d-%d.sock" (Unix.getpid ()) i)
  in
  let shards =
    List.init 3 (fun i ->
        let path = sock i in
        if Sys.file_exists path then Sys.remove path;
        let cfg =
          { (Server.default_config (Server.Unix_sock path)) with
            jobs = Some 1 }
        in
        let t = Server.create cfg in
        (Printf.sprintf "s%d" i, path, t, Thread.create Server.run t))
  in
  Server.link_stores (List.map (fun (_, _, t, _) -> t) shards);
  let rpath = sock 99 in
  if Sys.file_exists rpath then Sys.remove rpath;
  let targets =
    List.map
      (fun (n, p, _, _) -> { Router.t_name = n; t_addr = Server.Unix_sock p })
      shards
  in
  let router =
    Router.create (Router.default_config ~addr:(Server.Unix_sock rpath)
                     ~shards:targets)
  in
  let rth = Thread.create Router.run router in
  let requests = 240 in
  let lcfg =
    { (Loadgen.default_config ~addr:(Server.Unix_sock rpath)) with
      requests;
      clients = 3;
      retries = 8 }
  in
  let victim = match shards with (_, _, t, _) :: _ -> t | [] -> assert false in
  let report =
    Fun.protect
      ~finally:(fun () ->
        Router.stop router;
        Thread.join rth;
        List.iter
          (fun (_, p, t, th) ->
            Server.stop t;
            Thread.join th;
            if Sys.file_exists p then Sys.remove p)
          shards;
        if Sys.file_exists rpath then Sys.remove rpath)
      (fun () ->
        Loadgen.run ~kill:(requests / 2, fun () -> Server.stop victim) lcfg)
  in
  {
    Results.fb_shards = 3;
    fb_requests = report.Loadgen.total;
    fb_failed = report.Loadgen.failed;
    fb_hedged = Json.get_int "hedged" (Router.stats_json router);
    fb_p50_ms = report.Loadgen.p50_ms;
    fb_p95_ms = report.Loadgen.p95_ms;
    fb_p99_ms = report.Loadgen.p99_ms;
  }

(* --- part 1: the paper's evaluation ------------------------------------------ *)

let () =
  Format.printf
    "Software-Controlled Operand-Gating (CGO 2004) — experiment reproduction@.";
  let jobs = Ogc_exec.Pool.resolve_jobs opts.jobs in
  Format.printf "mode: %s, %d job%s@.@."
    (if quick then "quick (train inputs, VRS-50 only)"
     else "full (reference inputs, VRS 110/90/70/50/30)")
    jobs
    (if jobs = 1 then "" else "s");
  (* Load the baseline before the (expensive) collection so a bad path or
     corrupt file fails in milliseconds, not after the whole run. *)
  let baseline =
    match opts.baseline with
    | None -> None
    | Some path ->
      (try Some (path, Results.of_json (Json.of_string (read_file path))) with
      | Sys_error msg ->
        Format.eprintf "cannot read baseline: %s@." msg;
        exit 66
      | Json.Parse_error msg ->
        Format.eprintf "bad baseline %s: %s@." path msg;
        exit 65)
  in
  if opts.trace_out <> None then begin
    Ogc_obs.Metrics.set_enabled true;
    Ogc_obs.Span.set_enabled true
  end;
  let t0 = Unix.gettimeofday () in
  let cpu0 = Sys.time () in
  let res, phases =
    Results.collect_timed ~quick ~jobs
      ~progress:(fun s -> Format.eprintf "[%s] %!" s)
      ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  Format.eprintf "@.";
  (match opts.trace_out with
  | None -> ()
  | Some path ->
    Ogc_obs.Span.write path;
    Ogc_obs.Span.set_enabled false;
    Format.printf "wrote %s@." path);
  Format.printf "phases:%s@.@."
    (String.concat ""
       (List.map (fun (n, s) -> Printf.sprintf " %s %.1fs" n s) phases));
  (* Serve-fleet smoke: router + 3 shards, one killed mid-run. *)
  let res =
    let fb = run_fleet_bench () in
    Format.printf "%s"
      (Ogc_harness.Render.heading
         "Serve fleet (3 shards, hashed router, one shard killed mid-run)");
    Format.printf
      "requests %d, failed %d, hedged %d, p50 %.2f ms, p95 %.2f ms, p99 \
       %.2f ms@.@."
      fb.Results.fb_requests fb.Results.fb_failed fb.Results.fb_hedged
      fb.Results.fb_p50_ms fb.Results.fb_p95_ms fb.Results.fb_p99_ms;
    { res with Results.fleet = Some fb }
  in
  (* Spill area and traffic: width-aware slots vs naive 8-byte slots
     (static), plus the bytes actually moved by spill code in the
     ungated baseline run (dynamic, the CI-gated series). *)
  Format.printf "%s"
    (Ogc_harness.Render.heading
       "Register-allocator spill slots (width-aware vs naive 8-byte)");
  Format.printf "%s@."
    (Ogc_harness.Render.table
       ~header:[ "Workload"; "slot bytes"; "naive bytes"; "saved"; "traffic B" ]
       (List.map
          (fun (w : Results.wres) ->
            [
              w.Results.wname;
              string_of_int w.Results.spill_slots_bytes;
              string_of_int w.Results.spill_slots_naive_bytes;
              (if w.Results.spill_slots_naive_bytes > 0 then
                 Printf.sprintf "%.0f%%"
                   (100.0
                   *. (1.0
                      -. float_of_int w.Results.spill_slots_bytes
                         /. float_of_int w.Results.spill_slots_naive_bytes))
               else "-");
              Printf.sprintf "%.0f"
                (Ogc_energy.Account.spill_traffic
                   w.Results.base_none.Ogc_cpu.Pipeline.energy);
            ])
          res.Results.workloads));
  (* Analyze-throughput microbench (the CI-gated series). *)
  if res.Results.analyze <> [] then begin
    Format.printf "%s"
      (Ogc_harness.Render.heading
         "Analyze throughput (dense VRP fixpoint, train inputs)");
    Format.printf "%s@."
      (Ogc_harness.Render.table
         ~header:
           [ "Workload"; "analyze ms"; "naive ms"; "speedup"; "visits";
             "rounds"; "defs" ]
         (List.map
            (fun (name, ab) ->
              [
                name;
                Printf.sprintf "%.2f" (ab.Results.ab_seconds *. 1e3);
                Printf.sprintf "%.2f" (ab.Results.ab_naive_seconds *. 1e3);
                (if ab.Results.ab_seconds > 0.0 then
                   Printf.sprintf "%.1fx"
                     (ab.Results.ab_naive_seconds /. ab.Results.ab_seconds)
                 else "-");
                string_of_int ab.Results.ab_visits;
                string_of_int ab.Results.ab_rounds;
                string_of_int ab.Results.ab_defs;
              ])
            res.Results.analyze))
  end;
  Format.printf "%s" (Experiments.render_all res);
  Format.printf "%s"
    (Ogc_harness.Render.heading "Headline comparison with the paper");
  Format.printf "%s@."
    (Experiments.render_headline (Experiments.headline res));
  Format.printf "(collection took %.1f s wall, %.0f s CPU, %d jobs)@.@." wall
    (Sys.time () -. cpu0) jobs;
  (match opts.json_out with
  | None -> ()
  | Some path ->
    (* Per-phase timings ride along at the top level; Results.of_json
       ignores unknown members, so --baseline keeps working. *)
    let body =
      match Results.to_json res with
      | Json.Obj members ->
        Json.Obj
          (members
           @ [ ("phases",
                Json.Obj (List.map (fun (n, s) -> (n, Json.Float s)) phases))
             ])
      | j -> j
    in
    write_file path (Json.to_string body);
    Format.printf "wrote %s@.@." path);
  match baseline with
  | None -> ()
  | Some (path, baseline) ->
    let regs =
      Results.compare_to_baseline
        ~time_tolerance:(opts.max_time_regression_pct /. 100.0) ~baseline
        ~current:res
        ~threshold:(opts.max_regression_pct /. 100.0)
    in
    Format.printf "%s"
      (Ogc_harness.Render.heading
         (Printf.sprintf "Regression check vs %s (tolerance %.1f%%)" path
            opts.max_regression_pct));
    Format.printf "%s@." (Results.render_regressions regs);
    if regs <> [] then exit 3 else exit 0

(* --- part 1b: ablations of the design choices DESIGN.md calls out ------------- *)

let () = if opts.skip_micro then () else begin
  Format.printf "%s"
    (Ogc_harness.Render.heading "Ablations (train inputs, two workloads)");
  let module W = Ogc_workloads.Workload in
  let module Pipeline = Ogc_cpu.Pipeline in
  let module Account = Ogc_energy.Account in
  let picks = [ "compress"; "m88ksim" ] in
  (* 1. Useful-range propagation variants: conventional vs paper-literal
     (§2.2.5, no demand through arithmetic) vs default. *)
  Format.printf
    "VRP variant ablation — 64-bit share of width-bearing instructions@.";
  let rows =
    List.map
      (fun name ->
        let w = W.find name in
        let run cfg =
          let p = W.compile w W.Train in
          (match cfg with
          | None -> ()
          | Some c -> ignore (Vrp.run ~config:c p));
          let policy =
            if cfg = None then Policy.No_gating else Policy.Software
          in
          Pipeline.simulate ~policy p
        in
        let base = run None in
        let conv = run (Some Vrp.conventional_config) in
        let lit =
          run (Some { Vrp.default_config with useful_through_arith = false })
        in
        let dflt = run (Some Vrp.default_config) in
        let wide64 s =
          Ogc_harness.Render.pct
            (List.assoc Ogc_isa.Width.W64 (Ogc_harness.Results.width_distribution s))
        in
        let saving s =
          Ogc_harness.Render.pct
            (Account.savings
               ~baseline:(Account.total base.Pipeline.energy)
               ~improved:(Account.total s.Pipeline.energy))
        in
        [ name;
          wide64 conv; saving conv;
          wide64 lit; saving lit;
          wide64 dflt; saving dflt ])
      picks
  in
  Format.printf "%s@."
    (Ogc_harness.Render.table
       ~header:[ "Benchmark"; "conv 64b"; "conv save"; "literal 64b";
                 "literal save"; "default 64b"; "default save" ]
       rows);
  (* 2. VRS with and without constant propagation in the clones. *)
  Format.printf "VRS constant-propagation ablation (cost 50):@.";
  let rows =
    List.map
      (fun name ->
        let w = W.find name in
        let run constprop =
          let p = W.compile w W.Train in
          let cfg = { Vrs.default_config with constprop } in
          let rep = Vrs.run ~config:cfg p in
          let out = Interp.run p in
          (rep, out.Interp.steps)
        in
        let rep_on, steps_on = run true in
        let _, steps_off = run false in
        [ name;
          string_of_int (Vrs.specialized_count rep_on);
          string_of_int rep_on.Vrs.static_eliminated;
          string_of_int steps_off;
          string_of_int steps_on ])
      picks
  in
  Format.printf "%s@."
    (Ogc_harness.Render.table
       ~header:[ "Benchmark"; "points"; "static eliminated";
                 "dyn instrs (no constprop)"; "dyn instrs (constprop)" ]
       rows);
  (* 3. Syntactic trip counts (§2.3) vs the widening-based engine: how
     many loops the paper-literal method bounds. *)
  Format.printf "Syntactic trip-count coverage (paper §2.3 vs all loops):@.";
  let rows =
    List.map
      (fun name ->
        let w = W.find name in
        let p = W.compile w W.Train in
        let total = ref 0 and affine = ref 0 in
        List.iter
          (fun (f : Ogc_ir.Prog.func) ->
            let cfg = Ogc_ir.Cfg.of_func f in
            let dom = Ogc_ir.Dom.compute cfg in
            total :=
              !total
              + List.length (Ogc_ir.Loops.loops (Ogc_ir.Loops.compute cfg dom));
            affine := !affine + List.length (Ogc_core.Tripcount.analyze f))
          p.Ogc_ir.Prog.funcs;
        [ name; string_of_int !total; string_of_int !affine ])
      picks
  in
  Format.printf "%s@."
    (Ogc_harness.Render.table
       ~header:[ "Benchmark"; "natural loops"; "affine (§2.3) bounded" ]
       rows);
  (* 4. §2.4 memory handling: size-tagged cache values (the paper's
     choice) vs sign-extension at the cache boundary. *)
  Format.printf "Memory handling ablation (§2.4, VRP binary, software gating):@.";
  let rows =
    List.map
      (fun name ->
        let w = W.find name in
        let p = W.compile w W.Train in
        ignore (Vrp.run p);
        let e mode =
          Account.total
            (Pipeline.simulate ~memory_mode:mode ~policy:Policy.Software p)
              .Pipeline.energy
        in
        let tagged = e Pipeline.Tagged and sext = e Pipeline.Sign_extend in
        [ name;
          Printf.sprintf "%.0f" tagged;
          Printf.sprintf "%.0f" sext;
          Ogc_harness.Render.pct ((sext -. tagged) /. sext) ])
      picks
  in
  Format.printf "%s@."
    (Ogc_harness.Render.table
       ~header:[ "Benchmark"; "tagged cache (nJ)"; "sign-extended (nJ)";
                 "tagging advantage" ]
       rows);
  (* 5. Clock-gating aggressiveness: how much of the software savings the
     circuit style leaves on the table. *)
  Format.printf "Conditional-clocking ablation (VRP binary, software gating):@.";
  let rows =
    List.map
      (fun name ->
        let w = W.find name in
        let p = W.compile w W.Train in
        ignore (Vrp.run p);
        let base_p = W.compile w W.Train in
        let saving params =
          let e prog policy =
            Account.total
              (Pipeline.simulate ~params ~policy prog).Pipeline.energy
          in
          Account.savings
            ~baseline:(e base_p Policy.No_gating)
            ~improved:(e p Policy.Software)
        in
        [ name;
          Ogc_harness.Render.pct (saving Ogc_energy.Energy_params.ideal_gating);
          Ogc_harness.Render.pct (saving Ogc_energy.Energy_params.default);
          Ogc_harness.Render.pct
            (saving Ogc_energy.Energy_params.conservative_gating) ])
      picks
  in
  Format.printf "%s@."
    (Ogc_harness.Render.table
       ~header:[ "Benchmark"; "ideal gating"; "default (10% residual)";
                 "conservative (25%)" ]
       rows);
  (* 6. Machine-width sensitivity (beyond the paper): do the software
     savings survive on narrower / wider machines? *)
  Format.printf "Machine sensitivity extension (VRP energy saving):@.";
  let rows =
    List.map
      (fun name ->
        let w = W.find name in
        let opt = W.compile w W.Train in
        ignore (Vrp.run opt);
        let base = W.compile w W.Train in
        let saving machine =
          let e prog policy =
            Account.total
              (Pipeline.simulate ~machine ~policy prog).Pipeline.energy
          in
          Account.savings
            ~baseline:(e base Policy.No_gating)
            ~improved:(e opt Policy.Software)
        in
        [ name;
          Ogc_harness.Render.pct (saving Ogc_cpu.Machine_config.narrow2);
          Ogc_harness.Render.pct (saving Ogc_cpu.Machine_config.default);
          Ogc_harness.Render.pct (saving Ogc_cpu.Machine_config.wide8) ])
      picks
  in
  Format.printf "%s@."
    (Ogc_harness.Render.table
       ~header:[ "Benchmark"; "2-wide"; "4-wide (Table 2)"; "8-wide" ]
       rows);
  (* 7. Value-range (word-level) vs known-bits (per-bit, Budiu et al.,
     the paper's S5 contrast): which static analysis assigns narrower
     value widths?  Counts static value-producing instructions whose
     output width one domain bounds more tightly than the other. *)
  Format.printf
    "Domain ablation — intervals vs known-bits (static value widths):@.";
  let rows =
    List.map
      (fun name ->
        let w = W.find name in
        let p = W.compile w W.Train in
        let ivl = Vrp.analyze p in
        let bits = Ogc_core.Bitvalue.analyze p in
        let interval_better = ref 0
        and bits_better = ref 0
        and tie = ref 0 in
        Ogc_ir.Prog.iter_all_ins p (fun _ _ ins ->
            match
              ( Vrp.range_of ivl ins.Ogc_ir.Prog.iid,
                Ogc_core.Bitvalue.value_of bits ins.Ogc_ir.Prog.iid )
            with
            | Some rng, Some bv ->
              let wi = Ogc_core.Interval.width rng in
              let wb = Ogc_core.Bitvalue.width bv in
              let c = Ogc_isa.Width.compare wi wb in
              if c < 0 then incr interval_better
              else if c > 0 then incr bits_better
              else incr tie
            | _ -> ());
        [ name; string_of_int !interval_better; string_of_int !bits_better;
          string_of_int !tie ])
      picks
  in
  Format.printf "%s@."
    (Ogc_harness.Render.table
       ~header:[ "Benchmark"; "interval narrower"; "bits narrower"; "equal" ]
       rows);
  Format.printf
    "(Word-level ranges dominate for width assignment — the paper's S5\n\
     rationale for ranges over per-bit tracking; per-bit wins are\n\
     alignment facts that rarely reduce width.)@."
end

(* --- part 2: Bechamel micro-benchmarks per experiment ------------------------- *)

(* Small fixed inputs for the kernels. *)
let small_src = {|
  int data[256];
  int main() {
    for (int i = 0; i < 256; i++) data[i] = (i & 7) == 0 ? i : 3;
    long acc = 0;
    for (int r = 0; r < 4; r++)
      for (int i = 0; i < 256; i++) { int v = data[i]; acc += v * v; }
    emit(acc);
    return 0;
  }
|}

let small_prog () = Minic.compile small_src

let bench_tests =
  let open Bechamel in
  let t name f = Test.make ~name (Staged.stage f) in
  let prog = small_prog () in
  let vrp_res = Vrp.analyze prog in
  let values = Array.init 256 (fun i -> Int64.of_int ((i * 7919) - 1000)) in
  let machine = Ogc_cpu.Machine_config.default in
  [
    (* Table 1: deriving the savings matrix from the energy model. *)
    t "table1/savings-matrix" (fun () ->
        Ogc_core.Savings_table.matrix
          (Ogc_core.Savings_table.of_params Ogc_energy.Energy_params.default));
    (* Table 2: the machine parameter table. *)
    t "table2/machine-config" (fun () -> Ogc_cpu.Machine_config.rows machine);
    (* Table 3 / Figures 2 and 7: dynamic width classification. *)
    t "table3/width-classify" (fun () ->
        let h = Hashtbl.create 16 in
        Ogc_ir.Prog.iter_all_ins prog (fun _ _ ins ->
            let key =
              (Ogc_isa.Instr.iclass ins.Ogc_ir.Prog.op,
               Ogc_isa.Instr.width ins.Ogc_ir.Prog.op)
            in
            Hashtbl.replace h key
              (1 + Option.value ~default:0 (Hashtbl.find_opt h key)));
        h);
    (* Figure 2: the VRP analysis itself (proposed variant). *)
    t "fig2/vrp-analyze" (fun () -> Vrp.analyze (small_prog ()));
    (* Figure 3: energy accounting of one simulated run. *)
    t "fig3/simulate-sw" (fun () ->
        Ogc_cpu.Pipeline.simulate ~policy:Policy.Software prog);
    (* Figure 4: candidate profiling (TNV tables). *)
    t "fig4/tnv-profile" (fun () ->
        let tnv = Ogc_core.Tnv.create () in
        Array.iter (fun v -> Ogc_core.Tnv.observe tnv (Int64.rem v 7L)) values;
        Ogc_core.Tnv.candidate_ranges tnv);
    (* Figure 5: constant propagation + DCE. *)
    t "fig5/constprop" (fun () ->
        let p = small_prog () in
        let r = Vrp.analyze p in
        Ogc_core.Constprop.run r p);
    (* Figure 6: basic-block profiled execution. *)
    t "fig6/bb-profile" (fun () ->
        let counts : Interp.bb_counts = Hashtbl.create 16 in
        Interp.run ~bb_counts:counts prog);
    (* Figure 7: re-encoding (width application). *)
    t "fig7/vrp-apply" (fun () ->
        let p = small_prog () in
        Vrp.apply vrp_res p);
    (* Figure 8: the full VRS pipeline on the small program. *)
    t "fig8/vrs-pipeline" (fun () -> Vrs.run (small_prog ()));
    (* Figure 9: per-structure energy accounting. *)
    t "fig9/energy-account" (fun () ->
        let a = Ogc_energy.Account.create Ogc_energy.Energy_params.default in
        for i = 0 to 999 do
          Ogc_energy.Account.charge a Ogc_energy.Energy_params.Alu
            ~active_bytes:(1 + (i land 7)) ~tag_bits:0
        done;
        Ogc_energy.Account.by_structure a);
    (* Figure 10: the out-of-order timing model (ungated). *)
    t "fig10/simulate-timing" (fun () ->
        Ogc_cpu.Pipeline.simulate ~policy:Policy.No_gating prog);
    (* Figure 11: ED^2 metric computations. *)
    t "fig11/ed2-metrics" (fun () ->
        Array.map
          (fun v ->
            Ogc_energy.Account.ed2 ~energy:(Int64.to_float v) ~cycles:12345)
          values);
    (* Figure 12: significance classification of values. *)
    t "fig12/sigbytes" (fun () ->
        Array.map Ogc_gating.Sigbytes.significant_bytes values);
    (* Figure 13: hardware-gated simulation. *)
    t "fig13/simulate-hw" (fun () ->
        Ogc_cpu.Pipeline.simulate ~policy:Policy.Hw_size prog);
    (* Figure 14: branch predictor + cache kernels. *)
    t "fig14/bpred-cache" (fun () ->
        let b = Ogc_cpu.Bpred.of_config machine in
        let c = Ogc_cpu.Cache.create machine.Ogc_cpu.Machine_config.dcache in
        for i = 0 to 999 do
          let pc = (i * 13) land 1023 in
          ignore (Ogc_cpu.Bpred.predict b ~pc);
          Ogc_cpu.Bpred.update b ~pc ~taken:(i land 3 <> 0);
          ignore (Ogc_cpu.Cache.access c (Int64.of_int (i * 64)))
        done);
    (* Figure 15: cooperative-policy active-byte computation. *)
    t "fig15/cooperative-bytes" (fun () ->
        Array.map
          (fun v ->
            Policy.active_bytes Policy.Sw_plus_significance ~width:Ogc_isa.Width.W32
              ~value:v)
          values);
  ]

let () = if opts.skip_micro then () else begin
  let open Bechamel in
  Format.printf "%s"
    (Ogc_harness.Render.heading "Bechamel micro-benchmarks (one per experiment)");
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second 0.2) ~kde:None ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            let pretty =
              if est > 1e6 then Printf.sprintf "%8.2f ms" (est /. 1e6)
              else if est > 1e3 then Printf.sprintf "%8.2f us" (est /. 1e3)
              else Printf.sprintf "%8.0f ns" est
            in
            Format.printf "  %-28s %s / run@." name pretty
          | _ -> Format.printf "  %-28s (no estimate)@." name)
        analyzed)
    bench_tests
end
