(** End-to-end experiment data collection.

    For every workload, build and evaluate all the binary versions and
    gating policies the paper's evaluation needs:

    - the {b baseline} binary under no gating and under the two hardware
      schemes (significance and size compression);
    - the {b VRP} binary (useful-range propagation) under software gating
      and the two cooperative software+hardware policies;
    - the {b conventional-VRP} binary (Figure 2's comparison point);
    - the {b VRS} binaries for the five specialization-cost
      configurations (the paper's VRS 110/90/70/50/30 sweep; profiling
      always runs on the train input, evaluation on ref);
    - an execution profile of the VRS-50 binary for the run-time
      specialized-instruction accounting of Figure 6.

    The grid is embarrassingly parallel, and {!collect} shards it over an
    {!Ogc_exec.Pool} of domains: each workload is compiled once and the
    pristine program shared read-only; every binary-version task
    transforms its own {!Ogc_ir.Prog.copy}.  Results are reassembled in
    workload order, so the output is identical whatever the parallelism
    degree.

    Each binary version is expressed as an {!Ogc_pass.Pass} chain run
    against a per-workload artifact store.  A dedicated analyses phase
    warms the store with the guard-cost-independent front of the VRS
    pipeline (cleanup, VRP, width encoding, the training basic-block
    profile and the TNV value profiles) on the train input, so the
    five-cost sweep computes the VRP fixpoint once and runs the two
    training interpreter passes once per workload instead of once per
    cost point.  Store hits restore byte-identical program snapshots, so
    collections are identical with or without a warm store.

    Semantic equality (output checksums) across every version and policy
    is asserted during collection — an optimized binary that changes the
    program's output is a hard error. *)

open Ogc_isa
module Pipeline = Ogc_cpu.Pipeline

(** The paper's VRS cost labels (nJ), most expensive first. *)
val vrs_costs : int list

(** [test_cost_of_label l] maps a label (e.g. 50) to the model's
    per-guard-instruction energy parameter. *)
val test_cost_of_label : int -> float

(** What Figures 4 and 5 need from a {!Ogc_core.Vrs.report}, in a form
    that serializes: profiled-point outcome counts and the static clone
    accounting. *)
type vrs_summary = {
  points_specialized : int;
  points_dependent : int;
  points_no_benefit : int;
  static_cloned : int;
  static_eliminated : int;
}

val summarize_report : Ogc_core.Vrs.report -> vrs_summary

type wres = {
  wname : string;
  static_instructions : int;
  spill_slots_bytes : int;
      (** width-aware spill-slot bytes the allocator laid out across the
          program; 0 when nothing spilled *)
  spill_slots_naive_bytes : int;
      (** what the same slots would occupy at a uniform 8 bytes each;
          the dynamic counterpart is
          [Ogc_energy.Account.spill_traffic base_none.energy] *)
  base_none : Pipeline.stats;
  base_hwsig : Pipeline.stats;
  base_hwsize : Pipeline.stats;
  vrp_sw : Pipeline.stats;
  vrpconv_sw : Pipeline.stats;
  vrp_sig : Pipeline.stats;
  vrp_size : Pipeline.stats;
  vrs : (int * Pipeline.stats) list;  (** by cost label, software gating *)
  vrs50_sig : Pipeline.stats;
  vrs50_size : Pipeline.stats;
  vrs_reports : (int * vrs_summary) list;
  vrs50_spec_frac : float;  (** run-time fraction executed inside clones *)
  vrs50_guard_frac : float;  (** run-time fraction of guard comparisons *)
}

(** One workload's analyze-throughput microbench (sequential, train
    input, after cleanup): dense {!Ogc_core.Vrp.analyze} wall seconds
    (best of 5), the retained naive reference engine's seconds (one
    repetition), and the dense engine's deterministic effort counters. *)
type analyze_bench = {
  ab_seconds : float;
  ab_naive_seconds : float;
  ab_visits : int;
  ab_rounds : int;
  ab_defs : int;
}

(** One serve-fleet loadgen run (router in front of sharded [ogc serve]
    instances, one shard killed mid-run): completion counts and the
    client-observed latency percentiles from the loadgen histogram.
    [fb_failed] is the number of submissions that exhausted their retry
    budget — the fleet-smoke criterion is that it stays zero even
    through the shard kill. *)
type fleet_bench = {
  fb_shards : int;
  fb_requests : int;
  fb_failed : int;
  fb_hedged : int;  (** requests that got a hedged second copy *)
  fb_p50_ms : float;
  fb_p95_ms : float;
  fb_p99_ms : float;
}

type t = {
  workloads : wres list;
  analyze : (string * analyze_bench) list;  (** by workload name *)
  fleet : fleet_bench option;  (** populated by the bench driver *)
  quick : bool;
}

val collect :
  ?quick:bool ->
  ?only:string list ->
  ?progress:(string -> unit) ->
  ?jobs:int ->
  unit ->
  t
(** [quick] evaluates on the train input and keeps only the VRS-50
    configuration (duplicated across labels), for fast test runs; [only]
    restricts collection to the named workloads.  [jobs] is the domain
    count ([Some 0] and [None] mean auto: [OGC_JOBS] or the machine's
    recommended domain count; see {!Ogc_exec.Pool.resolve_jobs}).
    [progress] may be invoked from worker domains, one call at a time. *)

val collect_timed :
  ?quick:bool ->
  ?only:string list ->
  ?progress:(string -> unit) ->
  ?jobs:int ->
  unit ->
  t * (string * float) list
(** {!collect} plus per-phase wall seconds, in phase order (currently
    ["baselines"] — compile + reference run + hardware-gated baselines —
    then ["analyses"] — per-workload warm-up of the shared VRS analysis
    front in the pass-artifact store — then ["versions"] — the
    (workload × binary version) grid of pass chains — then
    ["analyze-bench"] — the sequential analyze-throughput microbench).
    The phases also appear as {!Ogc_obs.Span} spans when tracing is
    on. *)

(** {1 Serialization}

    A hand-rolled JSON form of a whole collection, stable enough to be
    diffed across commits: object members are emitted in a fixed order,
    numeric tables are sorted, and floats round-trip exactly.
    [of_json (to_json t)] reconstructs [t] up to the energy-parameter
    closures (rebuilt as {!Ogc_energy.Energy_params.default}), which the
    renderers never consult. *)

val to_json : t -> Ogc_json.Json.t
val of_json : Ogc_json.Json.t -> t
(** Raises [Ogc_json.Json.Parse_error] on a malformed or wrong-format
    tree. *)

(** {1 Regression comparison}

    CI calls this with the checked-in baseline JSON to guard the perf
    trajectory: modelled energy must not grow and modelled IPC must not
    drop by more than a threshold on any (workload, binary version)
    cell. *)

type regression = {
  r_workload : string;
  r_config : string;  (** e.g. "vrp_sw", "vrs50", "spill" *)
  r_metric : string;
      (** "energy_nj", "ipc", or a spill metric ("spill_slots_bytes",
          "spill_traffic", "spill_width_win") *)
  r_baseline : float;
  r_current : float;
  r_delta_frac : float;  (** fractional worsening, always >= 0 *)
}

val compare_to_baseline :
  time_tolerance:float ->
  baseline:t -> current:t -> threshold:float -> regression list
(** Cells worse than [baseline] by more than [threshold] (a fraction,
    e.g. [0.05]): higher total energy or lower IPC.  Only workloads and
    VRS labels present in both collections are compared; a [quick] /
    full mode mismatch compares nothing and reports a single pseudo
    regression on the ["mode"] cell so CI fails loudly instead of
    vacuously passing.  The analyze-throughput series is also gated:
    fixpoint visit counts (deterministic) against [threshold], analyze
    wall seconds (noisy) against [time_tolerance] ([0.5] means 50%
    slower than baseline fails).  The spill series gates growth of
    static width-aware slot bytes and of baseline spill traffic per
    workload against [threshold] (spilling appearing where the baseline
    had none is flagged outright), and additionally regresses when a
    workload whose baseline slots were strictly narrower than naive
    8-byte slots loses that property.  The fleet series, when both
    collections carry comparable runs (same shard and request counts),
    gates failed submissions exactly — any increase regresses — and the
    p50/p95 latencies against [time_tolerance]. *)

val render_regressions : regression list -> string

(** {1 Aggregation helpers} *)

(** Distribution of committed width-bearing instructions (the ten Table 3
    ALU classes plus immediate moves) over the four widths; fractions sum
    to 1. *)
val width_distribution : Pipeline.stats -> (Width.t * float) list

(** Average of distributions across workloads. *)
val average_distribution :
  t -> (wres -> Pipeline.stats) -> (Width.t * float) list

(** Table 3 rows: class, share of committed instructions, and width
    percentages within the class, averaged over workloads and ordered by
    share. *)
val class_table : t -> (wres -> Pipeline.stats) ->
  (Instr.iclass * float * (Width.t * float) list) list

(** Mean over workloads of a per-workload fraction. *)
val mean : t -> (wres -> float) -> float

(** [energy_saving w ~improved] — fraction of baseline (ungated) energy
    saved by [improved]. *)
val energy_saving : wres -> improved:Pipeline.stats -> float

val time_saving : wres -> improved:Pipeline.stats -> float
val ed2_saving : wres -> improved:Pipeline.stats -> float

(** Per-structure energy saving of [improved] vs the ungated baseline. *)
val structure_saving :
  wres -> improved:Pipeline.stats -> Ogc_energy.Energy_params.structure -> float

(** Total energy (nJ) of a run. *)
val total_energy : Pipeline.stats -> float
