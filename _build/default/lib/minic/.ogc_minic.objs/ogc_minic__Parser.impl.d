lib/minic/parser.ml: Array Ast Fmt Int64 Lexer List Printf String
