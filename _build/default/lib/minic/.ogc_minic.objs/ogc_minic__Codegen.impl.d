lib/minic/codegen.ml: Ast Bytes Char Fmt Instr Int64 List Ogc_ir Ogc_isa Option Reg String Width
