(** End-to-end experiment data collection.

    For every workload, build and evaluate all the binary versions and
    gating policies the paper's evaluation needs:

    - the {b baseline} binary under no gating and under the two hardware
      schemes (significance and size compression);
    - the {b VRP} binary (useful-range propagation) under software gating
      and the two cooperative software+hardware policies;
    - the {b conventional-VRP} binary (Figure 2's comparison point);
    - the {b VRS} binaries for the five specialization-cost
      configurations (the paper's VRS 110/90/70/50/30 sweep; profiling
      always runs on the train input, evaluation on ref);
    - an execution profile of the VRS-50 binary for the run-time
      specialized-instruction accounting of Figure 6.

    Semantic equality (output checksums) across every version and policy
    is asserted during collection — an optimized binary that changes the
    program's output is a hard error. *)

open Ogc_isa
module Pipeline = Ogc_cpu.Pipeline

(** The paper's VRS cost labels (nJ), most expensive first. *)
val vrs_costs : int list

(** [test_cost_of_label l] maps a label (e.g. 50) to the model's
    per-guard-instruction energy parameter. *)
val test_cost_of_label : int -> float

type wres = {
  wname : string;
  static_instructions : int;
  base_none : Pipeline.stats;
  base_hwsig : Pipeline.stats;
  base_hwsize : Pipeline.stats;
  vrp_sw : Pipeline.stats;
  vrpconv_sw : Pipeline.stats;
  vrp_sig : Pipeline.stats;
  vrp_size : Pipeline.stats;
  vrs : (int * Pipeline.stats) list;  (** by cost label, software gating *)
  vrs50_sig : Pipeline.stats;
  vrs50_size : Pipeline.stats;
  vrs_reports : (int * Ogc_core.Vrs.report) list;
  vrs50_spec_frac : float;  (** run-time fraction executed inside clones *)
  vrs50_guard_frac : float;  (** run-time fraction of guard comparisons *)
}

type t = { workloads : wres list; quick : bool }

val collect :
  ?quick:bool -> ?only:string list -> ?progress:(string -> unit) -> unit -> t
(** [quick] evaluates on the train input and keeps only the VRS-50
    configuration (duplicated across labels), for fast test runs; [only]
    restricts collection to the named workloads. *)

(** {1 Aggregation helpers} *)

(** Distribution of committed width-bearing instructions (the ten Table 3
    ALU classes plus immediate moves) over the four widths; fractions sum
    to 1. *)
val width_distribution : Pipeline.stats -> (Width.t * float) list

(** Average of distributions across workloads. *)
val average_distribution :
  t -> (wres -> Pipeline.stats) -> (Width.t * float) list

(** Table 3 rows: class, share of committed instructions, and width
    percentages within the class, averaged over workloads and ordered by
    share. *)
val class_table : t -> (wres -> Pipeline.stats) ->
  (Instr.iclass * float * (Width.t * float) list) list

(** Mean over workloads of a per-workload fraction. *)
val mean : t -> (wres -> float) -> float

(** [energy_saving w ~improved] — fraction of baseline (ungated) energy
    saved by [improved]. *)
val energy_saving : wres -> improved:Pipeline.stats -> float

val time_saving : wres -> improved:Pipeline.stats -> float
val ed2_saving : wres -> improved:Pipeline.stats -> float

(** Per-structure energy saving of [improved] vs the ungated baseline. *)
val structure_saving :
  wres -> improved:Pipeline.stats -> Ogc_energy.Energy_params.structure -> float

(** Total energy (nJ) of a run. *)
val total_energy : Pipeline.stats -> float
