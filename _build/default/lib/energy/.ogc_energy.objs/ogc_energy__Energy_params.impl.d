lib/energy/energy_params.ml: Fmt
