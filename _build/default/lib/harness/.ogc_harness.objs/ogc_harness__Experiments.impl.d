lib/harness/experiments.ml: Array Buffer Hashtbl Instr Int List Ogc_core Ogc_cpu Ogc_energy Ogc_isa Option Printf Render Results String Width
