examples/width_audit.ml: Array Format Hashtbl Instr List Ogc_core Ogc_harness Ogc_ir Ogc_isa Ogc_workloads Option Printf Sys Width
