lib/core/vrs.ml: Array Cfg Constprop Dom Float Hashtbl Instr Int64 Interp Interval Label List Ogc_ir Ogc_isa Option Prog Reg Savings_table Tnv Usedef Validate Vrp Width
