(* Second MiniC battery: edge cases of the language and the code
   generator — deep expressions near the temporary budget, call-heavy
   argument evaluation, operator-assignment on array elements, string
   escapes, and frame-size boundaries. *)

module Minic = Ogc_minic.Minic
module Interp = Ogc_ir.Interp

let emitted src = (Interp.run (Minic.compile src)).Interp.emitted

let check_emits name src expected =
  Alcotest.(check (list int64)) name expected (emitted src)

let test_deep_expression () =
  (* A long right-leaning expression stresses the temporary pool without
     exceeding it. *)
  check_emits "deep nesting"
    {| int main() {
         emit(1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 + (9 + (10 + (11 + 12)))))))))));
         emit(((((((1 + 2) * 3) - 4) | 5) ^ 6) << 2) >> 1);
         return 0;
       } |}
    [ 78L; Int64.of_int ((((((1 + 2) * 3) - 4) lor 5) lxor 6) lsl 2 asr 1) ]

let test_six_args () =
  check_emits "all six argument registers"
    {| long f(long a, long b, long c, long d, long e, long g) {
         return a + b * 10 + c * 100 + d * 1000 + e * 10000 + g * 100000;
       }
       int main() {
         emit(f(1, 2, 3, 4, 5, 6));
         emit(f(f(1,0,0,0,0,0), 2, 3, 4, 5, 6));  // nested call in arg 0
         return 0;
       } |}
    [ 654321L; 654321L ]

let test_call_args_evaluation () =
  (* Nested calls inside later arguments must not clobber earlier ones. *)
  check_emits "argument clobber safety"
    {| int bump(int x) { return x + 1; }
       int sum3(int a, int b, int c) { return a * 100 + b * 10 + c; }
       int main() {
         emit(sum3(1, bump(1), bump(bump(1))));
         return 0;
       } |}
    [ 123L ]

let test_op_assign_array () =
  check_emits "op-assign evaluates the index once semantics"
    {| int a[8];
       int k = 0;
       int main() {
         a[3] = 10;
         a[3] += 5;
         a[3] <<= 2;
         a[3] ^= 3;
         emit(a[3]);
         return 0;
       } |}
    [ Int64.of_int (((10 + 5) lsl 2) lxor 3) ]

let test_string_escapes () =
  check_emits "escape sequences in strings"
    {| char s[] = "a\n\t\\\"z";
       int main() {
         emit(s[0]); emit(s[1]); emit(s[2]); emit(s[3]); emit(s[4]); emit(s[5]);
         emit(s[6]);   // NUL
         return 0;
       } |}
    [ 97L; 10L; 9L; 92L; 34L; 122L; 0L ]

let test_big_frame () =
  (* A frame beyond the 15-bit immediate forces the Li/Sub prologue. *)
  check_emits "large local array"
    {| int main() {
         long big[8192];
         big[0] = 7;
         big[8191] = 35;
         emit(big[0] + big[8191]);
         return 0;
       } |}
    [ 42L ]

let test_char_comparisons () =
  (* char is unsigned: 200 compares above 100. *)
  check_emits "unsigned char ordering"
    {| int main() {
         char hi = (char)200;
         char lo = (char)100;
         emit(hi > lo);
         emit(hi < lo);
         emit((char)(lo - hi));   // wraps to 156
         return 0;
       } |}
    [ 1L; 0L; 156L ]

let test_do_while_once () =
  check_emits "do-while executes at least once"
    {| int main() {
         int n = 0;
         do { n++; } while (0);
         emit(n);
         return 0;
       } |}
    [ 1L ]

let test_nested_loops_break () =
  check_emits "break affects the innermost loop only"
    {| int main() {
         long s = 0;
         for (int i = 0; i < 4; i++) {
           for (int j = 0; j < 100; j++) {
             if (j == 2) break;
             s = s * 10 + j;
           }
           s += 100;
         }
         emit(s);
         return 0;
       } |}
    [ (let s = ref 0 in
       for _ = 0 to 3 do
         for j = 0 to 1 do
           s := (!s * 10) + j
         done;
         s := !s + 100
       done;
       Int64.of_int !s) ]

let test_global_scalar_types () =
  check_emits "global scalars of every width"
    {| char  gc = 250;
       short gs = -1234;
       int   gi = 123456789;
       long  gl = 1234567890123;
       int main() {
         emit(gc); emit(gs); emit(gi); emit(gl);
         gc = (char)(gc + 10);   // wraps in memory
         emit(gc);
         return 0;
       } |}
    [ 250L; -1234L; 123456789L; 1234567890123L; 4L ]

let test_shift_by_variable () =
  check_emits "variable shift amounts"
    {| int main() {
         long one = 1;
         for (int s = 0; s < 4; s++) emit(one << (s * 8));
         emit(-256 >> 4);
         return 0;
       } |}
    [ 1L; 256L; 65536L; 16777216L; -16L ]

let test_comment_forms () =
  check_emits "comments everywhere"
    {| // leading comment
       int main() { /* inline */ emit(/* here too */ 5); // trailing
         return 0; /* and
                      multi-line */
       } |}
    [ 5L ]

let () =
  Alcotest.run "minic2"
    [
      ( "edge cases",
        [
          Alcotest.test_case "deep expressions" `Quick test_deep_expression;
          Alcotest.test_case "six arguments" `Quick test_six_args;
          Alcotest.test_case "argument clobbering" `Quick
            test_call_args_evaluation;
          Alcotest.test_case "op-assign on arrays" `Quick test_op_assign_array;
          Alcotest.test_case "string escapes" `Quick test_string_escapes;
          Alcotest.test_case "big frames" `Quick test_big_frame;
          Alcotest.test_case "unsigned char ordering" `Quick
            test_char_comparisons;
          Alcotest.test_case "do-while" `Quick test_do_while_once;
          Alcotest.test_case "nested break" `Quick test_nested_loops_break;
          Alcotest.test_case "global scalars" `Quick test_global_scalar_types;
          Alcotest.test_case "variable shifts" `Quick test_shift_by_variable;
          Alcotest.test_case "comments" `Quick test_comment_forms;
        ] );
    ]
