(** The paper's Table 1: per-operation energy savings of width changes.

    The paper defines [InstSaving(I, r, min, max)] from an empirically
    measured matrix of ALU energy savings by source (current) and
    destination (re-encoded) width.  Here the matrix is derived from the
    energy model's ALU access energies, which plays the same role as the
    paper's empirical Wattch measurements. *)

open Ogc_isa

type t

val of_params : Ogc_energy.Energy_params.t -> t
val default : t

(** [saving t ~from_ ~to_] is the energy saved (nJ, possibly negative) per
    execution when an instruction encoded at width [from_] is re-encoded
    at width [to_].  [saving t ~from_:w ~to_:w = 0]. *)
val saving : t -> from_:Width.t -> to_:Width.t -> float

(** Per-guard-instruction energy costs used by the VRS cost model
    (§3.2): branches, comparisons and AND operations. *)
val cost_branch : t -> float

val cost_comparison : t -> float
val cost_and : t -> float

(** Rows of the Table 1 matrix in the paper's layout: destination width
    rows (64 down to 8) of source-width columns (64 down to 8). *)
val matrix : t -> (Width.t * (Width.t * float) list) list
