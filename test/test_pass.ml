(* The typed pass manager: chain parsing, content addressing, the
   artifact store, and the central economy claim — a VRS cost sweep
   against one store computes the guard-cost-independent analysis front
   (VRP fixpoint, training basic-block profile, TNV value profiles)
   exactly once, with byte-identical programs out. *)

module Pass = Ogc_pass.Pass
module Prog = Ogc_ir.Prog
module Prog_json = Ogc_ir.Prog_json
module Vrs = Ogc_core.Vrs
module Vrp = Ogc_core.Vrp
module Cleanup = Ogc_core.Cleanup
module Workload = Ogc_workloads.Workload
module Metrics = Ogc_obs.Metrics
module J = Ogc_json.Json

let sweep = [ 110; 90; 70; 50; 30 ]

let pristine =
  lazy
    (match Workload.find "m88ksim" with
    | w -> Workload.compile w Workload.Train
    | exception Not_found -> Alcotest.fail "m88ksim workload missing")

let prog_bytes p = J.to_string ~indent:false (Prog_json.to_json p)

let sweep_chain cost =
  Printf.sprintf
    "cleanup,vrp,encode-widths,bb-profile,value-profile,vrs:cost=%d,cleanup"
    cost

(* Metrics series are registered once by the pass library; read them
   back through the registry snapshot. *)
let series name pass =
  List.fold_left
    (fun acc (n, labels, v) ->
      if String.equal n name && List.mem ("pass", pass) labels then
        let x =
          match v with
          | J.Float f -> f
          | J.Int i -> float_of_int i
          | _ -> 0.0
        in
        acc +. x
      else acc)
    0.0 (Metrics.snapshot ())

let runs_of = series "ogc_pass_runs_total"
let hits_of = series "ogc_pass_cache_hits_total"

let check_counter what expected got =
  Alcotest.(check int) what expected (int_of_float got)

(* --- the headline test: the sweep shares its analysis front --------------- *)

let test_sweep_shares_front () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) @@ fun () ->
  let store = Pass.Store.create () in
  let warm =
    List.map
      (fun cost ->
        let st, steps =
          Pass.run ~store (sweep_chain cost) (Prog.copy (Lazy.force pristine))
        in
        (cost, st, steps))
      sweep
  in
  (* The guard-cost-independent front ran once; only vrs and the final
     cleanup ran per cost point. *)
  check_counter "vrp runs" 1 (runs_of "vrp");
  check_counter "encode-widths runs" 1 (runs_of "encode-widths");
  check_counter "bb-profile runs" 1 (runs_of "bb-profile");
  check_counter "value-profile runs" 1 (runs_of "value-profile");
  check_counter "vrs runs" 5 (runs_of "vrs");
  (* cleanup: once as the shared prefix, once per cost as the tail. *)
  check_counter "cleanup runs" 6 (runs_of "cleanup");
  List.iter
    (fun pass ->
      check_counter (pass ^ " cache hits") 4 (hits_of pass))
    [ "cleanup"; "vrp"; "encode-widths"; "bb-profile"; "value-profile" ];
  check_counter "vrs cache hits" 0 (hits_of "vrs");
  (* The store's own accounting agrees. *)
  List.iter
    (fun (name, hits, misses) ->
      match name with
      | "vrp" | "encode-widths" | "bb-profile" | "value-profile" ->
        Alcotest.(check (pair int int))
          (name ^ " store stats") (4, 1) (hits, misses)
      | "vrs" -> Alcotest.(check int) "vrs store misses" 5 misses
      | "cleanup" ->
        Alcotest.(check (pair int int)) "cleanup store stats" (4, 6)
          (hits, misses)
      | _ -> ())
    (Pass.Store.pass_stats store);
  (* Byte identity: each warm-store program equals a cold, storeless
     run of the same chain. *)
  List.iter
    (fun (cost, st, _) ->
      let cold, _ =
        Pass.run (sweep_chain cost) (Prog.copy (Lazy.force pristine))
      in
      Alcotest.(check string)
        (Printf.sprintf "cost %d: warm = cold" cost)
        (prog_bytes cold.Pass.prog) (prog_bytes st.Pass.prog))
    warm

(* --- chains are byte-for-byte the hand-written pipelines ------------------ *)

let test_chain_equals_direct_vrs () =
  let chain_st, _ =
    Pass.run (sweep_chain 50) (Prog.copy (Lazy.force pristine))
  in
  let p = Prog.copy (Lazy.force pristine) in
  ignore (Cleanup.run p);
  let config =
    { Vrs.default_config with test_cost_nj = Vrs.cost_of_label 50 }
  in
  let rep = Vrs.run ~config p in
  ignore (Cleanup.run p);
  Alcotest.(check string) "program identical" (prog_bytes p)
    (prog_bytes chain_st.Pass.prog);
  match chain_st.Pass.report with
  | None -> Alcotest.fail "chain left no VRS report"
  | Some chain_rep ->
    Alcotest.(check int) "same specializations"
      (Vrs.specialized_count rep)
      (Vrs.specialized_count chain_rep)

let test_chain_equals_direct_vrp () =
  let chain_st, _ =
    Pass.run "cleanup,vrp,encode-widths,cleanup"
      (Prog.copy (Lazy.force pristine))
  in
  let p = Prog.copy (Lazy.force pristine) in
  ignore (Cleanup.run p);
  ignore (Vrp.run p);
  ignore (Cleanup.run p);
  Alcotest.(check string) "program identical" (prog_bytes p)
    (prog_bytes chain_st.Pass.prog)

(* --- store behaviour ------------------------------------------------------ *)

let test_rerun_fully_cached () =
  let store = Pass.Store.create () in
  let chain = "cleanup,vrp,encode-widths" in
  let st1, steps1 = Pass.run ~store chain (Prog.copy (Lazy.force pristine)) in
  Alcotest.(check bool) "first run computes" true
    (List.for_all (fun s -> not s.Pass.t_cached) steps1);
  let st2, steps2 = Pass.run ~store chain (Prog.copy (Lazy.force pristine)) in
  Alcotest.(check bool) "second run fully cached" true
    (List.for_all (fun s -> s.Pass.t_cached) steps2);
  Alcotest.(check string) "identical programs" (prog_bytes st1.Pass.prog)
    (prog_bytes st2.Pass.prog)

let test_store_lru () =
  let store = Pass.Store.create ~capacity:2 () in
  let p = Prog.copy (Lazy.force pristine) in
  (* Three distinct artifacts through a capacity-2 store. *)
  ignore (Pass.run ~store "cleanup,vrp,encode-widths" (Prog.copy p));
  Alcotest.(check int) "bounded" 2 (Pass.Store.entries store)

let test_config_changes_key () =
  let d = Pass.parse_spec "vrp" in
  let c = Pass.parse_spec "vrp:variant=conventional" in
  let k0 = Pass.digest_prog (Lazy.force pristine) in
  Alcotest.(check bool) "different configs, different keys" false
    (String.equal (Pass.chain_key d k0) (Pass.chain_key c k0));
  Alcotest.(check bool) "same spec, same key" true
    (String.equal (Pass.chain_key d k0)
       (Pass.chain_key (Pass.parse_spec "vrp:variant=default") k0))

(* --- spec parsing --------------------------------------------------------- *)

let test_parse_canonical () =
  let i = Pass.parse_spec "vrs:cost=70" in
  Alcotest.(check string) "defaults filled, fixed order"
    {|{"cost":70,"constprop":true}|} (Pass.config_string i);
  let j = Pass.parse_spec "vrs:constprop=false:cost=70" in
  Alcotest.(check string) "override order irrelevant"
    {|{"cost":70,"constprop":false}|} (Pass.config_string j)

let test_parse_errors () =
  let fails what s =
    match Pass.parse_chain s with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail (what ^ ": expected Failure")
  in
  fails "unknown pass" "cleanup,frobnicate";
  fails "unknown option" "vrs:costt=50";
  fails "ill-typed value" "vrs:cost=cheap";
  fails "option on optionless pass" "cleanup:x=1";
  fails "missing value" "vrs:cost";
  fails "empty chain" "";
  Alcotest.(check int) "blanks skipped" 2
    (List.length (Pass.parse_chain "cleanup,,vrp,"))

let test_registry () =
  Alcotest.(check (list string)) "registry order"
    [ "cleanup"; "vrp"; "encode-widths"; "bb-profile"; "value-profile";
      "vrs"; "zspec"; "constprop" ]
    (List.map (fun (p : Pass.t) -> p.Pass.name) Pass.registry);
  Alcotest.(check bool) "find" true (Pass.find "vrs" <> None);
  Alcotest.(check bool) "find unknown" true (Pass.find "nope" = None);
  Alcotest.(check (list string)) "profile-dependent passes"
    [ "bb-profile"; "value-profile"; "vrs"; "zspec" ]
    (List.filter Pass.profile_dependent
       (List.map (fun (p : Pass.t) -> p.Pass.name) Pass.registry))

(* --- epoch economy: a fresher profile re-runs only the dependent suffix --- *)

module Interp = Ogc_ir.Interp
module Profile = Ogc_pass.Profile
module Minic = Ogc_minic.Minic

let epoch_src extra =
  Printf.sprintf
    {|long g = 5;
long h1(int x) {
  long t = 0;
  for (int i = 0; i < x; i++) { t = t + i * 3; }
  return t + g;
}
long h2(int x) { return x * x + 7; }
int main() {
  long acc = 0;
  for (int i = 0; i < 10; i++) { acc = acc + h1(i & 7) + h2(i & 7); }
  emit(acc);
%s  return 0;
}
|}
    extra

(* A genuine wire profile for [p]: the same deterministic candidate
   analysis the server runs picks the profiling points, one interpreter
   run supplies block counts and per-point value observations. *)
let mk_wire ~epoch p =
  let a = Vrs.analyze (Prog.copy p) in
  let hooks : (int, int64 -> unit) Hashtbl.t = Hashtbl.create 16 in
  let obs = Hashtbl.create 16 in
  List.iter
    (fun iid ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace obs iid tbl;
      Hashtbl.replace hooks iid (fun v ->
          match Hashtbl.find_opt tbl v with
          | Some r -> incr r
          | None -> Hashtbl.replace tbl v (ref 1)))
    (Vrs.candidate_iids a);
  let counts : Interp.bb_counts = Hashtbl.create 64 in
  let out = Interp.run ~bb_counts:counts ~profile:hooks (Prog.copy p) in
  let prof = Profile.create () in
  Hashtbl.iter (fun fn arr -> Hashtbl.replace prof.Profile.p_bb fn arr) counts;
  prof.Profile.p_total <- out.Interp.steps;
  Hashtbl.iter
    (fun iid tbl ->
      match Hashtbl.fold (fun v r acc -> (v, !r) :: acc) tbl [] with
      | [] -> ()
      | entries -> Hashtbl.replace prof.Profile.p_values iid entries)
    obs;
  prof.Profile.p_epoch <- epoch;
  prof

let epoch_chain = "vrp,encode-widths,bb-profile,value-profile,vrs:cost=50"

let test_epoch_reruns_dependent_suffix () =
  let p = Minic.compile (epoch_src "") in
  let store = Pass.Store.create () in
  let wire = mk_wire ~epoch:1 p in
  let _, steps1 = Pass.run ~store ~wire epoch_chain (Prog.copy p) in
  Alcotest.(check bool) "first run computes everything" true
    (List.for_all (fun s -> not s.Pass.t_cached) steps1);
  let _, steps2 = Pass.run ~store ~wire epoch_chain (Prog.copy p) in
  Alcotest.(check bool) "same epoch is fully cached" true
    (List.for_all (fun s -> s.Pass.t_cached) steps2);
  (* Fresher profile, same program: the guard-cost-independent front
     keeps its epoch-free addresses and hits; every profile-dependent
     pass is re-addressed and re-runs. *)
  wire.Profile.p_epoch <- 2;
  let st3, steps3 = Pass.run ~store ~wire epoch_chain (Prog.copy p) in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Pass.t_pass ^ " cached iff profile-independent")
        (not (Pass.profile_dependent s.Pass.t_pass))
        s.Pass.t_cached)
    steps3;
  List.iter
    (fun (name, hits, misses) ->
      match name with
      | "vrp" | "encode-widths" ->
        Alcotest.(check (pair int int))
          (name ^ " store stats") (2, 1) (hits, misses)
      | "bb-profile" | "value-profile" | "vrs" ->
        Alcotest.(check (pair int int))
          (name ^ " store stats") (1, 2) (hits, misses)
      | _ -> ())
    (Pass.Store.pass_stats store);
  (* The stale-front reuse changed no bytes: a storeless run at the new
     epoch produces the identical program. *)
  let cold, _ = Pass.run ~wire epoch_chain (Prog.copy p) in
  Alcotest.(check string) "warm epoch bump = cold" (prog_bytes cold.Pass.prog)
    (prog_bytes st3.Pass.prog)

let test_fn_granular_revrp () =
  let p1 = Minic.compile (epoch_src "") in
  (* Same helpers, one extra statement in [main]: only [main]'s fragment
     digest changes. *)
  let p2 = Minic.compile (epoch_src "  emit(999);\n") in
  let store = Pass.Store.create () in
  let fnc = Pass.Store.fn_cache store in
  ignore (Pass.run ~store "vrp" (Prog.copy p1));
  let h1, r1 = Ogc_core.Vrp.Fn_cache.stats fnc in
  Alcotest.(check int) "cold run replays nothing" 0 h1;
  Alcotest.(check bool) "several functions analyzed" true (r1 >= 3);
  ignore (Pass.run ~store "vrp" (Prog.copy p2));
  let h2, r2 = Ogc_core.Vrp.Fn_cache.stats fnc in
  Alcotest.(check int) "unchanged functions replay" (r1 - 1) (h2 - h1);
  Alcotest.(check int) "only the mutated function re-runs" 1 (r2 - r1)

let () =
  Alcotest.run "pass"
    [
      ( "economy",
        [
          Alcotest.test_case "cost sweep shares the analysis front" `Slow
            test_sweep_shares_front;
          Alcotest.test_case "epoch bump re-runs only the dependent suffix"
            `Quick test_epoch_reruns_dependent_suffix;
          Alcotest.test_case "function mutation re-runs its VRP alone" `Quick
            test_fn_granular_revrp;
        ] );
      ( "identity",
        [
          Alcotest.test_case "chain = hand-written VRS pipeline" `Slow
            test_chain_equals_direct_vrs;
          Alcotest.test_case "chain = hand-written VRP pipeline" `Quick
            test_chain_equals_direct_vrp;
        ] );
      ( "store",
        [
          Alcotest.test_case "rerun is fully cached" `Quick
            test_rerun_fully_cached;
          Alcotest.test_case "LRU bound" `Quick test_store_lru;
          Alcotest.test_case "config participates in the key" `Quick
            test_config_changes_key;
        ] );
      ( "specs",
        [
          Alcotest.test_case "canonical configs" `Quick test_parse_canonical;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
    ]
