open Ogc_isa
module Ep = Ogc_energy.Energy_params

type t = { alu : Width.t -> float; params : Ep.t }

(* Per-instruction width-dependent energy: every structure an operand
   traverses on its way through the pipeline, with typical access counts
   (one issue-queue entry, result written to and read from the rename
   buffers, up to two register reads plus one write, the functional unit,
   one result-bus transfer).  This is what the paper measured with Wattch
   to fill Table 1: the energy at stake when one instruction's operands
   narrow. *)
let traversal = [ (Ep.Iq, 1); (Ep.Rename_buffers, 2); (Ep.Regfile, 3);
                  (Ep.Alu, 1); (Ep.Resultbus, 1) ]

let of_params params =
  let alu w =
    List.fold_left
      (fun acc (s, n) ->
        acc
        +. (float_of_int n
           *. Ep.access_energy params s ~active_bytes:(Width.bytes w)
                ~tag_bits:0))
      0.0 traversal
  in
  { alu; params }

let default = of_params Ep.default

let saving t ~from_ ~to_ = t.alu from_ -. t.alu to_

(* Guard instructions run at full width before specialization kicks in:
   charge them the widest ALU/branch energies. *)
let cost_branch t =
  Ep.access_energy t.params Ep.Bpred ~active_bytes:8 ~tag_bits:0
  +. Ep.access_energy t.params Ep.Alu ~active_bytes:8 ~tag_bits:0

let cost_comparison t = Ep.access_energy t.params Ep.Alu ~active_bytes:8 ~tag_bits:0
let cost_and t = Ep.access_energy t.params Ep.Alu ~active_bytes:8 ~tag_bits:0

let widths_desc = [ Width.W64; Width.W32; Width.W16; Width.W8 ]

let matrix t =
  List.map
    (fun dst ->
      (dst, List.map (fun src -> (src, saving t ~from_:src ~to_:dst)) widths_desc))
    widths_desc
