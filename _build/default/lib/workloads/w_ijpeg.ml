(* SpecInt95 `ijpeg` surrogate: fixed-point 8x8 forward DCT, quantization,
   dequantization and error accumulation over a synthetic image.
   Dominated by short/int multiply-accumulate with shifts — the
   signal-processing profile of JPEG compression. *)

let name = "ijpeg"
let description = "fixed-point 8x8 DCT + quantization over an image"

let source () =
  Printf.sprintf
    {|
// ijpeg: per-block fixed-point DCT-ish transform and quantization.
long input_scale = 3;
int seed = 777;
char image[9216];   // 96*96 pixels
int block[64];
int coef[64];
int quant[64];

int rnd() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 0x7fff;
}

void gen_image(int dim) {
  // smooth gradient plus noise: mostly small AC coefficients
  for (int y = 0; y < dim; y++) {
    for (int x = 0; x < dim; x++) {
      int v = ((x * 3 + y * 2) & 127) + (rnd() & 15);
      image[y * 96 + x] = (char)(v & 255);
    }
  }
}

void init_quant() {
  for (int i = 0; i < 64; i++) {
    int row = i >> 3;
    int col = i & 7;
    quant[i] = 8 + ((row + col) << 1);
  }
}

// 1-D integer transform of 8 values starting at [base] with stride
// [stride]: butterfly-style adds and small-constant multiplies.
void dct8(int base, int stride) {
  int s0 = block[base];
  int s1 = block[base + stride];
  int s2 = block[base + stride * 2];
  int s3 = block[base + stride * 3];
  int s4 = block[base + stride * 4];
  int s5 = block[base + stride * 5];
  int s6 = block[base + stride * 6];
  int s7 = block[base + stride * 7];
  int a0 = s0 + s7;
  int a1 = s1 + s6;
  int a2 = s2 + s5;
  int a3 = s3 + s4;
  int b0 = s0 - s7;
  int b1 = s1 - s6;
  int b2 = s2 - s5;
  int b3 = s3 - s4;
  block[base] = a0 + a1 + a2 + a3;
  block[base + stride * 4] = a0 - a1 - a2 + a3;
  block[base + stride * 2] = ((a0 - a3) * 17 + (a1 - a2) * 7) >> 4;
  block[base + stride * 6] = ((a0 - a3) * 7 - (a1 - a2) * 17) >> 4;
  block[base + stride] = (b0 * 23 + b1 * 19 + b2 * 13 + b3 * 5) >> 5;
  block[base + stride * 3] = (b0 * 19 - b1 * 5 - b2 * 23 - b3 * 13) >> 5;
  block[base + stride * 5] = (b0 * 13 - b1 * 23 + b2 * 5 + b3 * 19) >> 5;
  block[base + stride * 7] = (b0 * 5 - b1 * 13 + b2 * 19 - b3 * 23) >> 5;
}

int main() {
  int dim = 32 * (int)input_scale;
  long acc = 0;
  long nonzero = 0;
  init_quant();
  for (int round = 0; round < 2; round++) {
    gen_image(dim);
    for (int by = 0; by + 8 <= dim; by += 8) {
      for (int bx = 0; bx + 8 <= dim; bx += 8) {
        // load block, level-shift by 128
        for (int y = 0; y < 8; y++)
          for (int x = 0; x < 8; x++)
            block[y * 8 + x] = image[(by + y) * 96 + bx + x] - 128;
        for (int r = 0; r < 8; r++) dct8(r * 8, 1);
        for (int c = 0; c < 8; c++) dct8(c, 8);
        // quantize / dequantize, count survivors
        for (int i = 0; i < 64; i++) {
          int q = block[i] / quant[i];
          coef[i] = q * quant[i];
          if (q != 0) nonzero++;
          acc = acc * 3 + q;
        }
        // reconstruction error proxy
        for (int i = 0; i < 64; i++) {
          int e = block[i] - coef[i];
          if (e < 0) e = -e;
          acc += e;
        }
      }
    }
  }
  emit(acc);
  emit(nonzero);
  return 0;
}
|}

