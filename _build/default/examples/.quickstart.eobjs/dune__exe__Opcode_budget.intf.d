examples/opcode_budget.mli:
