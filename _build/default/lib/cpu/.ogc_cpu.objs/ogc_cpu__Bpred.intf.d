lib/cpu/bpred.mli: Machine_config
