module J = Ogc_json.Json

type record = {
  f_id : string option; (* client-supplied request id *)
  f_trace : string option; (* distributed trace id *)
  f_key : string; (* route/cache key, "" when the op has none *)
  f_shard : string; (* shard id, or "router" *)
  f_op : string;
  f_queue_ms : float; (* admission-to-execution wait *)
  f_hedged : bool;
  f_cache : string; (* "hit" | "miss" | "" *)
  f_outcome : string; (* response status *)
  f_ms : float; (* end-to-end duration *)
  f_ts : float; (* Unix seconds at completion *)
}

let dummy =
  { f_id = None; f_trace = None; f_key = ""; f_shard = ""; f_op = "";
    f_queue_ms = 0.0; f_hedged = false; f_cache = ""; f_outcome = "";
    f_ms = 0.0; f_ts = 0.0 }

let capacity = 1 lsl 12

(* Unlike spans the recorder is always on: one mutex-guarded array write
   per request, no allocation beyond the record the caller built. *)
let m = Mutex.create ()
let buf = Array.make capacity dummy
let total_ = ref 0
let slow_ms_ = ref None

let set_slow_ms v = Mutex.lock m; slow_ms_ := v; Mutex.unlock m
let slow_ms () = Mutex.lock m; let v = !slow_ms_ in Mutex.unlock m; v

let to_json r =
  let opt k = function Some v -> [ (k, J.Str v) ] | None -> [] in
  J.Obj
    (opt "id" r.f_id @ opt "trace_id" r.f_trace
    @ [ ("key", J.Str r.f_key);
        ("shard", J.Str r.f_shard);
        ("op", J.Str r.f_op);
        ("queue_ms", J.Float r.f_queue_ms);
        ("hedged", J.Bool r.f_hedged);
        ("cache", J.Str r.f_cache);
        ("outcome", J.Str r.f_outcome);
        ("ms", J.Float r.f_ms);
        ("ts", J.Float r.f_ts) ])

let fields r = match to_json r with J.Obj kvs -> kvs | _ -> []

(* Slow-request auto-capture: the flight record plus the local span
   slice of its trace (when spans were on and the request was traced)
   land in one structured log line, so a tail-latency incident leaves
   evidence even if nobody was watching Perfetto. *)
let capture_slow r =
  let spans =
    match r.f_trace with
    | Some tr when Span.enabled () -> [ ("spans", Span.trace_slice tr) ]
    | _ -> []
  in
  Log.warn ~fields:(fields r @ spans) "slow_request"

let record r =
  Mutex.lock m;
  buf.(!total_ mod capacity) <- r;
  incr total_;
  let slow = match !slow_ms_ with Some t -> r.f_ms > t | None -> false in
  Mutex.unlock m;
  if slow then capture_slow r

let snapshot () =
  Mutex.lock m;
  let total = !total_ in
  let n = min total capacity in
  let first = total - n in
  let rs = List.init n (fun i -> buf.((first + i) mod capacity)) in
  Mutex.unlock m;
  rs

let total () = Mutex.lock m; let t = !total_ in Mutex.unlock m; t
let dropped () = max 0 (total () - capacity)

let to_json_all () =
  J.Obj
    [ ("total", J.Int (total ()));
      ("dropped", J.Int (dropped ()));
      ("records", J.Arr (List.map to_json (snapshot ()))) ]

let dump oc =
  List.iter
    (fun r ->
      output_string oc (J.to_string ~indent:false (to_json r));
      output_char oc '\n')
    (snapshot ())

let reset () =
  Mutex.lock m;
  Array.fill buf 0 capacity dummy;
  total_ := 0;
  slow_ms_ := None;
  Mutex.unlock m
