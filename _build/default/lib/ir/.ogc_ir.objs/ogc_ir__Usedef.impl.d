lib/ir/usedef.ml: Array Bitset Cfg Hashtbl Instr Label List Ogc_isa Option Prog Reg
