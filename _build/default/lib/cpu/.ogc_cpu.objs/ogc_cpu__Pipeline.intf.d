lib/cpu/pipeline.mli: Hashtbl Instr Interp Machine_config Ogc_energy Ogc_gating Ogc_ir Ogc_isa Prog Width
