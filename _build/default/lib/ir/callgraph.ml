open Ogc_isa

type t = {
  callees : (string, string list) Hashtbl.t;
  callers : (string, string list) Hashtbl.t;
  sites : (string, (string * int) list) Hashtbl.t;
  order : string list;
  recursive : (string, bool) Hashtbl.t;
}

let add_edge tbl k v =
  let prev = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
  if not (List.mem v prev) then Hashtbl.replace tbl k (v :: prev)

let compute (p : Prog.t) =
  let callees = Hashtbl.create 16 in
  let callers = Hashtbl.create 16 in
  let sites = Hashtbl.create 16 in
  List.iter (fun (f : Prog.func) -> Hashtbl.replace callees f.fname []) p.funcs;
  Prog.iter_all_ins p (fun f _ ins ->
      match ins.op with
      | Instr.Call { callee } when Prog.find_func_opt p callee <> None ->
        add_edge callees f.fname callee;
        add_edge callers callee f.fname;
        let prev = Option.value ~default:[] (Hashtbl.find_opt sites callee) in
        Hashtbl.replace sites callee ((f.fname, ins.iid) :: prev)
      | _ -> ());
  (* Bottom-up order by DFS postorder over the callee relation. *)
  let visited = Hashtbl.create 16 and order = ref [] in
  let on_stack = Hashtbl.create 16 in
  let recursive = Hashtbl.create 16 in
  let rec dfs f =
    if Hashtbl.mem on_stack f then Hashtbl.replace recursive f true
    else if not (Hashtbl.mem visited f) then begin
      Hashtbl.replace visited f ();
      Hashtbl.replace on_stack f ();
      List.iter dfs (Option.value ~default:[] (Hashtbl.find_opt callees f));
      Hashtbl.remove on_stack f;
      order := f :: !order
    end
  in
  List.iter (fun (f : Prog.func) -> dfs f.fname) p.funcs;
  (* A function is recursive if it is in a cycle: propagate within SCCs is
     overkill here; direct/indirect self-reach detected below. *)
  let reachable_from f =
    let seen = Hashtbl.create 8 in
    let rec go g =
      List.iter
        (fun c ->
          if not (Hashtbl.mem seen c) then begin
            Hashtbl.replace seen c ();
            go c
          end)
        (Option.value ~default:[] (Hashtbl.find_opt callees g))
    in
    go f;
    seen
  in
  List.iter
    (fun (f : Prog.func) ->
      if not (Hashtbl.mem recursive f.fname) then
        Hashtbl.replace recursive f.fname
          (Hashtbl.mem (reachable_from f.fname) f.fname))
    p.funcs;
  { callees; callers; sites; order = List.rev !order; recursive }

let callees t f = Option.value ~default:[] (Hashtbl.find_opt t.callees f)
let callers t f = Option.value ~default:[] (Hashtbl.find_opt t.callers f)
let call_sites t f = Option.value ~default:[] (Hashtbl.find_opt t.sites f)
let bottom_up t = t.order

let is_recursive t f =
  Option.value ~default:false (Hashtbl.find_opt t.recursive f)
