let structure_index (s : Energy_params.structure) =
  match s with
  | Energy_params.Rename -> 0
  | Energy_params.Bpred -> 1
  | Energy_params.Iq -> 2
  | Energy_params.Rob -> 3
  | Energy_params.Rename_buffers -> 4
  | Energy_params.Lsq -> 5
  | Energy_params.Regfile -> 6
  | Energy_params.Icache -> 7
  | Energy_params.Dcache1 -> 8
  | Energy_params.Dcache2 -> 9
  | Energy_params.Alu -> 10
  | Energy_params.Muldiv -> 11
  | Energy_params.Resultbus -> 12
  | Energy_params.Clock -> 13

type t = {
  p : Energy_params.t;
  acc : float array;
  (* Precomputed per-access energies: [table.(structure * 8 + bytes - 1)]
     at zero tag bits; tags add [tag_bit_nj] per bit. *)
  table : float array;
  mutable spill : float;
      (* Bytes moved by register-allocator spill loads/stores; a traffic
         counter, not an energy term — the accesses themselves are
         charged to Lsq/Dcache1 like any other memory op. *)
}

let nstructures = List.length Energy_params.all_structures

let create p =
  let table = Array.make (nstructures * 8) 0.0 in
  List.iter
    (fun s ->
      let i = structure_index s in
      for bytes = 1 to 8 do
        table.((i * 8) + bytes - 1) <-
          Energy_params.access_energy p s ~active_bytes:bytes ~tag_bits:0
      done)
    Energy_params.all_structures;
  { p; acc = Array.make nstructures 0.0; table; spill = 0.0 }

let params t = t.p

let charge t s ~active_bytes ~tag_bits =
  let i = structure_index s in
  let b = if active_bytes < 1 then 1 else if active_bytes > 8 then 8 else active_bytes in
  t.acc.(i) <-
    t.acc.(i)
    +. t.table.((i * 8) + b - 1)
    +. (float_of_int tag_bits *. t.p.Energy_params.tag_bit_nj)

let charge_fixed t s n =
  let i = structure_index s in
  t.acc.(i) <- t.acc.(i) +. (float_of_int n *. t.table.((i * 8) + 7))

let charge_spill t bytes = t.spill <- t.spill +. float_of_int bytes
let spill_traffic t = t.spill

let of_values ?(params = Energy_params.default) ?(spill = 0.0) values =
  let t = create params in
  List.iter (fun (s, e) -> t.acc.(structure_index s) <- e) values;
  t.spill <- spill;
  t

let energy_of t s = t.acc.(structure_index s)

let total t = Array.fold_left ( +. ) 0.0 t.acc

let by_structure t =
  List.map (fun s -> (s, energy_of t s)) Energy_params.all_structures

let ed2 ~energy ~cycles =
  let d = float_of_int cycles in
  energy *. d *. d

let savings ~baseline ~improved =
  if baseline = 0.0 then 0.0 else (baseline -. improved) /. baseline
