(* Content-addressed analysis cache: MD5 of the canonical request ->
   serialized result payload.  Exact LRU: every hit restamps its entry
   with a monotonic tick, and eviction removes the minimum stamp (an
   O(capacity) scan — capacities are a few hundred entries, and each
   miss it amortizes costs a full compile + analysis + simulation). *)

module Metrics = Ogc_obs.Metrics

let m_hits_mem =
  Metrics.counter "ogc_cache_hits_total" ~labels:[ ("tier", "memory") ]

let m_hits_disk =
  Metrics.counter "ogc_cache_hits_total" ~labels:[ ("tier", "disk") ]

let m_misses = Metrics.counter "ogc_cache_misses_total"
let m_evictions = Metrics.counter "ogc_cache_evictions_total"
let m_entries = Metrics.gauge "ogc_cache_entries"
let m_bytes = Metrics.gauge "ogc_cache_bytes"

type stats = {
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
  disk_hits : int;
  mem_bytes : int;
  disk_entries : int;
  disk_bytes : int;
}

type entry = { value : string; mutable stamp : int }

type t = {
  capacity : int;
  dir : string option;
  tbl : (string, entry) Hashtbl.t;
  m : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable disk_hits : int;
  mutable mem_bytes : int;  (* Σ String.length over in-memory values *)
}

let key_of_string s = Digest.to_hex (Digest.string s)

let create ?(capacity = 256) ?dir () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> Unix.mkdir d 0o755
  | _ -> ());
  { capacity = max 1 capacity;
    dir;
    tbl = Hashtbl.create 64;
    m = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    disk_hits = 0;
    mem_bytes = 0 }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let path_of t key =
  match t.dir with
  | None -> None
  | Some d -> Some (Filename.concat d (key ^ ".json"))

let read_file path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s
  end

(* Atomic publish: a crashed writer never leaves a torn cache file. *)
let write_file path value =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc value;
  close_out oc;
  Sys.rename tmp path

let insert_locked t key value =
  if not (Hashtbl.mem t.tbl key) then begin
    if Hashtbl.length t.tbl >= t.capacity then begin
      let victim = ref None in
      Hashtbl.iter
        (fun k e ->
          match !victim with
          | Some (_, s) when s <= e.stamp -> ()
          | _ -> victim := Some (k, e.stamp))
        t.tbl;
      match !victim with
      | Some (k, _) ->
        (match Hashtbl.find_opt t.tbl k with
        | Some e -> t.mem_bytes <- t.mem_bytes - String.length e.value
        | None -> ());
        Hashtbl.remove t.tbl k;
        t.evictions <- t.evictions + 1;
        Metrics.incr m_evictions
      | None -> ()
    end;
    t.tick <- t.tick + 1;
    Hashtbl.add t.tbl key { value; stamp = t.tick };
    t.mem_bytes <- t.mem_bytes + String.length value;
    Metrics.gauge_set m_entries (Hashtbl.length t.tbl);
    Metrics.gauge_set m_bytes t.mem_bytes
  end

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
        t.tick <- t.tick + 1;
        e.stamp <- t.tick;
        t.hits <- t.hits + 1;
        Metrics.incr m_hits_mem;
        Some e.value
      | None -> (
        match Option.map read_file (path_of t key) with
        | Some (Some value) ->
          (* Disk hit: promote into the in-memory tier. *)
          insert_locked t key value;
          t.hits <- t.hits + 1;
          t.disk_hits <- t.disk_hits + 1;
          Metrics.incr m_hits_disk;
          Some value
        | _ ->
          t.misses <- t.misses + 1;
          Metrics.incr m_misses;
          None))

(* Replication probes (is this result here?) must not distort the LRU
   order or the hit/miss telemetry the serve loop's accounting relies
   on, so [peek] bypasses both. *)
let peek t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e -> Some e.value
      | None -> (
        match Option.map read_file (path_of t key) with
        | Some (Some value) -> Some value
        | _ -> None))

let store t key value =
  locked t (fun () ->
      insert_locked t key value;
      match path_of t key with
      | Some path when not (Sys.file_exists path) -> write_file path value
      | _ -> ())

(* Disk-tier footprint: one stat per entry file.  Not under the cache
   mutex — a concurrent store may add a file mid-scan, which only skews
   a monitoring number. *)
let disk_usage t =
  match t.dir with
  | None -> (0, 0)
  | Some d ->
    (try
       Array.fold_left
         (fun (n, bytes) name ->
           if Filename.check_suffix name ".json" then begin
             match Unix.stat (Filename.concat d name) with
             | { Unix.st_kind = Unix.S_REG; st_size; _ } ->
               (n + 1, bytes + st_size)
             | _ | (exception Unix.Unix_error _) -> (n, bytes)
           end
           else (n, bytes))
         (0, 0) (Sys.readdir d)
     with Sys_error _ -> (0, 0))

let stats t =
  let disk_entries, disk_bytes = disk_usage t in
  locked t (fun () ->
      { entries = Hashtbl.length t.tbl;
        capacity = t.capacity;
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        disk_hits = t.disk_hits;
        mem_bytes = t.mem_bytes;
        disk_entries;
        disk_bytes })
