lib/workloads/w_vortex.ml: Printf
