(** Binary instruction encoding.

    The paper's premise is that "the ISA contains opcodes that specify
    operand lengths"; §4.3 analyzes which width-variant opcodes must be
    {e added} to the Alpha ISA to support VRP (byte and halfword addition,
    byte subtraction, byte and word logicals, shifts, conditional moves
    and comparisons).  This module makes the opcode space concrete: every
    (operation, width) pair used by the IR gets a numeric opcode, and
    instructions encode to fixed 32-bit words (plus a 64-bit immediate
    extension word for values that do not fit the 16-bit immediate field).

    Word layout (fields from bit 0):

    {v
    [7:0]   opcode          [12:8]  dst register
    [17:13] src1 register   [22:18] src2/test register
    [23]    immediate flag: the second operand (or the displacement,
            immediate or symbol index) is in the 64-bit extension word
    v}

    The encoding is register-complete and round-trips every instruction
    the code generator or the optimizer can produce; it exists for opcode
    accounting (§4.3), for the assembler/disassembler, and to pin the
    opcode budget (how much opcode space software operand-gating costs). *)


type opcode = private int

(** Encoded form: one mandatory word plus an optional extension word
    carrying a wide immediate / displacement / symbol index. *)
type encoded = { word : int32; ext : int64 option }

(** [opcode_of i] is the numeric opcode of instruction [i] —
    operation and width included ([add8] and [add16] differ). *)
val opcode_of : Instr.t -> opcode

val opcode_to_int : opcode -> int

val opcode_of_int : int -> opcode
(** Raises [Invalid_argument] outside the opcode space. *)

(** [mnemonic op] is the assembly mnemonic of an opcode
    (e.g. ["add8"], ["ld32"], ["cmovne16"]). *)
val mnemonic : opcode -> string

(** All opcodes of the ISA, with their mnemonics, in numeric order. *)
val all_opcodes : (opcode * string) list

(** [base_alpha op] is [true] when the Alpha ISA already provides the
    opcode (64-bit operates, 32-bit arithmetic, all memory widths,
    mask/extract, 64-bit compares/cmovs); [false] for the paper's §4.3
    extension opcodes. *)
val base_alpha : opcode -> bool

(** {1 Encoding and decoding}

    Calls and global-address loads reference symbols; encoding maps them
    through a symbol table (index in the extension word). *)

type symtab = { sym_index : string -> int; sym_name : int -> string }

val identity_symtab : unit -> symtab
(** Accumulates symbols on first use; for tests and round-trips. *)

val encode : symtab -> Instr.t -> encoded

val decode : symtab -> encoded -> Instr.t
(** Raises [Invalid_argument] on malformed words. *)

(** [size_bytes e] is 4 or 12 (with extension word). *)
val size_bytes : encoded -> int
