(** The benchmark suite: eight MiniC surrogates for SpecInt95.

    The paper evaluates on SpecInt95 with reference inputs (and train
    inputs for profiling).  The original programs and inputs are not
    reproducible here, so each benchmark is a small MiniC program built
    around the same dominant computation pattern as its namesake:

    - [compress]: LZSS-style compression of a synthetic text buffer —
      byte handling, hashing, match scanning;
    - [gcc]: constant folding over randomly generated expression DAGs —
      heavy branching over small operator tags;
    - [go]: 9x9 board position evaluation — small-value board arrays,
      neighbourhood scans, pattern scores;
    - [ijpeg]: fixed-point 8x8 DCT, quantization and reconstruction over
      an image — 16/32-bit multiply-accumulate;
    - [li]: a cons-cell list interpreter — tagged cells, recursion;
    - [m88ksim]: an instruction-set simulator — field extraction by
      mask/shift, opcode dispatch with a skewed opcode mix;
    - [perl]: string hashing with chained associative tables —
      byte-string scanning and comparison;
    - [vortex]: an in-memory object database — indexed records,
      insert/lookup/update transactions over skewed type tags.

    As with Spec, one binary serves both inputs: every program reads a
    [input_scale] global (1 = train, 3 = reference) that {!set_scale}
    patches in the compiled program's data image, so instruction
    identities are stable between the profiling and evaluation runs.
    All benchmarks are deterministic. *)

type input = Train | Ref

type t = {
  name : string;
  description : string;
  source : string;  (** MiniC source text *)
}

(** The eight benchmarks, in the paper's listing order. *)
val all : t list

val find : string -> t
(** Raises [Not_found]. *)

val scale : input -> int64

(** [set_scale prog input] patches the [input_scale] global's initial
    image.  Raises [Invalid_argument] when the program has none. *)
val set_scale : Ogc_ir.Prog.t -> input -> unit

(** [compile w input] parses, checks, compiles and scales the benchmark.
    Every returned program is freshly built (safe to transform in
    place). *)
val compile : t -> input -> Ogc_ir.Prog.t

val compile_with_alloc :
  t -> input -> Ogc_ir.Prog.t * Ogc_regalloc.Regalloc.info
(** Like {!compile}, additionally returning the register allocator's
    report (spill slots and their widths, spill-access instruction
    ids). *)
