(* Register allocator tests: interpreter equivalence of the pre- and
   post-allocation programs, the no-interference-violated property on
   colored graphs, the spill-iteration termination bound, and a directed
   high-pressure program that must compile cleanly and round-trip
   through the optimization chains.

   The pre-allocation (virtual-register) program is interpretable
   directly: the interpreter sizes its register file from the largest
   register mentioned, and generated programs are non-recursive, so
   distinct temporaries never alias across calls. *)

module Minic = Ogc_minic.Minic
module Interp = Ogc_ir.Interp
module Regalloc = Ogc_regalloc.Regalloc
module Gen_minic = Ogc_fuzz.Gen_minic
module Oracle = Ogc_fuzz.Oracle
open Ogc_isa

let cfg = { Interp.default_config with max_steps = 3_000_000 }
let w64_of _ = Width.W64

(* --- directed high-pressure program ---------------------------------------- *)

(* 32 accumulators all live around a loop that routes one of them
   through a call every iteration: more simultaneously live scalars
   than the 28 allocatable registers, so allocation must spill. *)
let nlocals = 32

let pressure_src =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "int mix(int a, int c) { return ((a * 31) + c) ^ (c >> 3); }\n";
  Buffer.add_string b "int main() {\n";
  for i = 0 to nlocals - 1 do
    Buffer.add_string b (Printf.sprintf "  int v%02d = %d;\n" i (i + 1))
  done;
  Buffer.add_string b "  for (int i = 0; i < 64; i++) {\n";
  Buffer.add_string b
    (Printf.sprintf "    v00 += mix(v%02d, i);\n" (nlocals - 1));
  for i = 1 to nlocals - 1 do
    Buffer.add_string b
      (Printf.sprintf "    v%02d += v%02d %s v%02d;\n" i (i - 1)
         (if i mod 2 = 0 then "+" else "^")
         (if i >= 2 then i - 2 else nlocals - 1))
  done;
  Buffer.add_string b "  }\n";
  for i = 0 to nlocals - 1 do
    Buffer.add_string b (Printf.sprintf "  emit(v%02d);\n" i)
  done;
  Buffer.add_string b "  return 0;\n}\n";
  Buffer.contents b

let test_pressure_compiles () =
  let p, info = Minic.compile_with_info pressure_src in
  let main =
    List.find (fun fa -> fa.Regalloc.fa_name = "main") info.Regalloc.fallocs
  in
  Alcotest.(check bool)
    "main spills" true
    (main.Regalloc.fa_slots <> []);
  Alcotest.(check bool)
    "iterations within default bound" true
    (List.for_all
       (fun fa -> fa.Regalloc.fa_iterations <= 12)
       info.Regalloc.fallocs);
  (* Every accumulator is a proven-32-bit int, so the width-aware slots
     beat naive 8-byte slots. *)
  Alcotest.(check bool)
    "some slot narrower than 8 bytes" true
    (List.exists (fun s -> s.Regalloc.sbytes < 8) main.Regalloc.fa_slots);
  Alcotest.(check bool)
    "width-aware area strictly below naive" true
    (Regalloc.spill_slots_bytes info < Regalloc.spill_slots_naive_bytes info);
  (* And the allocated program still runs. *)
  ignore (Interp.run ~config:cfg p)

let test_pressure_equivalence () =
  let pre = Minic.lower pressure_src in
  let post = Minic.compile pressure_src in
  let a = Interp.run ~config:cfg pre and b = Interp.run ~config:cfg post in
  Alcotest.(check (list int64)) "emitted" a.Interp.emitted b.Interp.emitted;
  Alcotest.(check int64) "checksum" a.Interp.checksum b.Interp.checksum

let test_pressure_round_trip () =
  (* The allocated program must survive every default optimization
     chain (cleanup / VRP / VRS pipelines) with the oracle seeing no
     divergence from the reference run. *)
  let p = Minic.compile pressure_src in
  match
    Oracle.check ~config:Oracle.interp_config
      ~transforms:Oracle.default_transforms p
  with
  | Oracle.Skipped reason -> Alcotest.fail ("oracle skipped: " ^ reason)
  | Oracle.Checked [] -> ()
  | Oracle.Checked (d :: _) ->
    Alcotest.fail
      (Printf.sprintf "chain %s diverged: %s" d.Oracle.d_chain
         d.Oracle.d_detail)

(* A variant where the spilling function is a *helper*: its spill area
   pushes the callee-saved save slots past the fixed offsets the old
   codegen used, and the caller keeps live values in callee-saved
   registers across the call — so a pass that mistakes the helper's
   epilogue restores for dead loads corrupts the caller.  Regression for
   exactly that bug in constant propagation's DCE. *)
let helper_locals = 56

let helper_pressure_src =
  let b = Buffer.create 4096 in
  Buffer.add_string b "int churn(int s) {\n";
  for i = 0 to helper_locals - 1 do
    Buffer.add_string b (Printf.sprintf "  int w%02d = s + %d;\n" i i)
  done;
  Buffer.add_string b "  for (int j = 0; j < 8; j++) {\n";
  for i = 0 to helper_locals - 1 do
    Buffer.add_string b
      (Printf.sprintf "    w%02d += w%02d %s j;\n" i
         ((i + 1) mod helper_locals)
         (if i mod 2 = 0 then "^" else "+"))
  done;
  Buffer.add_string b "  }\n  int acc = 0;\n";
  for i = 0 to helper_locals - 1 do
    Buffer.add_string b (Printf.sprintf "  acc ^= w%02d;\n" i)
  done;
  Buffer.add_string b "  return acc;\n}\n";
  Buffer.add_string b "int main() {\n";
  (* enough live-across-call values to occupy every callee-saved reg *)
  for i = 0 to 9 do
    Buffer.add_string b (Printf.sprintf "  int k%d = %d;\n" i (100 + i))
  done;
  Buffer.add_string b "  for (int i = 0; i < 16; i++) {\n";
  Buffer.add_string b "    int r = churn(i);\n";
  for i = 0 to 9 do
    Buffer.add_string b
      (Printf.sprintf "    k%d += %s;\n" i (if i = 0 then "r" else
         Printf.sprintf "k%d ^ r" (i - 1)))
  done;
  Buffer.add_string b "  }\n";
  for i = 0 to 9 do
    Buffer.add_string b (Printf.sprintf "  emit(k%d);\n" i)
  done;
  Buffer.add_string b "  return 0;\n}\n";
  Buffer.contents b

let test_helper_pressure_round_trip () =
  let p, info = Minic.compile_with_info helper_pressure_src in
  let churn =
    List.find (fun fa -> fa.Regalloc.fa_name = "churn") info.Regalloc.fallocs
  in
  (* the scenario only bites if the helper really spills past the old
     fixed callee-save window and banks callee-saved registers *)
  Alcotest.(check bool)
    "helper spill area exceeds 48 bytes" true
    (churn.Regalloc.fa_spill_area > 48);
  Alcotest.(check bool)
    "helper banks callee-saved registers" true
    (churn.Regalloc.fa_callee_saved <> []);
  match
    Oracle.check ~config:Oracle.interp_config
      ~transforms:Oracle.default_transforms p
  with
  | Oracle.Skipped reason -> Alcotest.fail ("oracle skipped: " ^ reason)
  | Oracle.Checked [] -> ()
  | Oracle.Checked (d :: _) ->
    Alcotest.fail
      (Printf.sprintf "chain %s diverged: %s" d.Oracle.d_chain
         d.Oracle.d_detail)

let test_termination_bound () =
  (* A program that needs at least one spill round cannot color within a
     single iteration; the allocator must report the divergence rather
     than loop. *)
  let pre = Minic.lower pressure_src in
  match Regalloc.program ~max_iterations:1 ~width_of:w64_of pre with
  | _ -> Alcotest.fail "expected Bound_exceeded"
  | exception Regalloc.Bound_exceeded { fname; iterations } ->
    Alcotest.(check string) "function" "main" fname;
    Alcotest.(check int) "iterations" 1 iterations

(* --- properties on random programs ----------------------------------------- *)

let equivalence_prop src =
  let pre =
    try Minic.lower src
    with Minic.Error msg -> QCheck.Test.fail_reportf "lower: %s" msg
  in
  let post =
    try Minic.compile src
    with Minic.Error msg -> QCheck.Test.fail_reportf "compile: %s" msg
  in
  match (Interp.run ~config:cfg pre, Interp.run ~config:cfg post) with
  | a, b ->
    if not (Int64.equal a.Interp.checksum b.Interp.checksum) then
      QCheck.Test.fail_reportf "checksum diverged: pre %Ld, post %Ld"
        a.Interp.checksum b.Interp.checksum
    else if a.Interp.emitted <> b.Interp.emitted then
      QCheck.Test.fail_reportf "emitted values diverged"
    else true
  | exception Interp.Fault msg -> QCheck.Test.fail_reportf "fault: %s" msg

let prop_equivalence =
  QCheck.Test.make
    ~name:"allocation preserves semantics (random programs)" ~count:120
    Gen_minic.arbitrary_program equivalence_prop

let prop_equivalence_pressure =
  QCheck.Test.make
    ~name:"allocation preserves semantics (pressure programs)" ~count:60
    Gen_minic.arbitrary_pressure_program equivalence_prop

let coloring_prop src =
  let pre =
    try Minic.lower src
    with Minic.Error msg -> QCheck.Test.fail_reportf "lower: %s" msg
  in
  match Regalloc.program ~check:true ~width_of:w64_of pre with
  | _ -> true
  | exception Invalid_argument msg ->
    QCheck.Test.fail_reportf "interference violated: %s" msg

let prop_no_interference =
  QCheck.Test.make
    ~name:"no interference edge shares a color (random programs)" ~count:120
    Gen_minic.arbitrary_program coloring_prop

let prop_no_interference_pressure =
  QCheck.Test.make
    ~name:"no interference edge shares a color (pressure programs)" ~count:60
    Gen_minic.arbitrary_pressure_program coloring_prop

let () =
  Alcotest.run "regalloc"
    [
      ( "pressure",
        [
          Alcotest.test_case "compiles and spills" `Quick
            test_pressure_compiles;
          Alcotest.test_case "pre/post equivalence" `Quick
            test_pressure_equivalence;
          Alcotest.test_case "chain round-trip" `Quick
            test_pressure_round_trip;
          Alcotest.test_case "spilling-helper chain round-trip" `Quick
            test_helper_pressure_round_trip;
          Alcotest.test_case "termination bound" `Quick test_termination_bound;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_equivalence; prop_equivalence_pressure; prop_no_interference;
            prop_no_interference_pressure;
          ] );
    ]
