open Ogc_isa
module Pipeline = Ogc_cpu.Pipeline
module Policy = Ogc_gating.Policy
module Workload = Ogc_workloads.Workload
module Vrp = Ogc_core.Vrp
module Vrs = Ogc_core.Vrs
module Prog = Ogc_ir.Prog
module Interp = Ogc_ir.Interp
module Account = Ogc_energy.Account

let vrs_costs = [ 110; 90; 70; 50; 30 ]

(* One guard instruction costs roughly the pipeline energy of an extra
   instruction; the paper's nJ labels scale it. *)
let test_cost_of_label l = float_of_int l *. 0.03

type wres = {
  wname : string;
  static_instructions : int;
  base_none : Pipeline.stats;
  base_hwsig : Pipeline.stats;
  base_hwsize : Pipeline.stats;
  vrp_sw : Pipeline.stats;
  vrpconv_sw : Pipeline.stats;
  vrp_sig : Pipeline.stats;
  vrp_size : Pipeline.stats;
  vrs : (int * Pipeline.stats) list;
  vrs50_sig : Pipeline.stats;
  vrs50_size : Pipeline.stats;
  vrs_reports : (int * Vrs.report) list;
  vrs50_spec_frac : float;
  vrs50_guard_frac : float;
}

type t = { workloads : wres list; quick : bool }

exception Semantics_changed of string

let check_checksum wname expected (s : Pipeline.stats) what =
  if not (Int64.equal expected s.checksum) then
    raise
      (Semantics_changed
         (Printf.sprintf "%s: %s changed the output (%Ld vs %Ld)" wname what
            expected s.checksum))

(* Run-time accounting of the specialized code (Figure 6): execute the
   final binary, count instructions committed inside clone blocks and
   guard comparisons. *)
let runtime_specialization (p : Prog.t) (rep : Vrs.report) eval_input =
  Workload.set_scale p eval_input;
  let counts : Interp.bb_counts = Hashtbl.create 64 in
  let out = Interp.run ~bb_counts:counts p in
  let clone_instrs = ref 0 in
  List.iter
    (fun (fname, label) ->
      match Prog.find_func_opt p fname with
      | None -> ()
      | Some f ->
        let b = Prog.block f label in
        let c = Interp.count_of counts fname label in
        clone_instrs := !clone_instrs + (c * (Array.length b.body + 1)))
    rep.clone_blocks;
  let guard_instrs = ref 0 in
  let tbl = Prog.ins_table p in
  Hashtbl.iter
    (fun iid () ->
      match Hashtbl.find_opt tbl iid with
      | Some (f, b, _) ->
        guard_instrs :=
          !guard_instrs + Interp.count_of counts f.Prog.fname b.Prog.label
      | None -> ())
    rep.guard_iids;
  let total = float_of_int (max 1 out.steps) in
  (float_of_int !clone_instrs /. total, float_of_int !guard_instrs /. total)

let collect ?(quick = false) ?only ?(progress = fun _ -> ()) () =
  let eval_input = if quick then Workload.Train else Workload.Ref in
  let costs = if quick then [ 50 ] else vrs_costs in
  let sim = Pipeline.simulate in
  (* Every binary version gets the generic binary-optimizer cleanups,
     baseline included — the paper's baseline is Alto-processed too. *)
  let fresh w inp =
    let p = Workload.compile w inp in
    ignore (Ogc_core.Cleanup.run p);
    p
  in
  let tidy p =
    ignore (Ogc_core.Cleanup.run p);
    Ogc_ir.Validate.program p
  in
  let selected =
    match only with
    | None -> Workload.all
    | Some names ->
      List.filter (fun (w : Workload.t) -> List.mem w.name names) Workload.all
  in
  let workloads =
    List.map
      (fun (w : Workload.t) ->
        progress w.name;
        (* Baseline binary. *)
        let base = fresh w eval_input in
        let reference = Interp.run base in
        let base_none = sim ~policy:Policy.No_gating base in
        let base_hwsig = sim ~policy:Policy.Hw_significance base in
        let base_hwsize = sim ~policy:Policy.Hw_size base in
        (* VRP binary (useful ranges). *)
        let pvrp = fresh w eval_input in
        ignore (Vrp.run pvrp);
        tidy pvrp;
        let vrp_sw = sim ~policy:Policy.Software pvrp in
        check_checksum w.name reference.checksum vrp_sw "VRP";
        let vrp_sig = sim ~policy:Policy.Sw_plus_significance pvrp in
        let vrp_size = sim ~policy:Policy.Sw_plus_size pvrp in
        (* Conventional VRP (no useful-range backward propagation). *)
        let pconv = fresh w eval_input in
        ignore (Vrp.run ~config:Vrp.conventional_config pconv);
        tidy pconv;
        let vrpconv_sw = sim ~policy:Policy.Software pconv in
        check_checksum w.name reference.checksum vrpconv_sw "conventional VRP";
        (* VRS at each specialization cost. *)
        let vrs_runs =
          List.map
            (fun label ->
              progress (Printf.sprintf "%s/vrs%d" w.name label);
              let p = fresh w Workload.Train in
              let cfg =
                { Vrs.default_config with
                  test_cost_nj = test_cost_of_label label }
              in
              let rep = Vrs.run ~config:cfg p in
              tidy p;
              Workload.set_scale p eval_input;
              let stats = sim ~policy:Policy.Software p in
              check_checksum w.name reference.checksum stats
                (Printf.sprintf "VRS %d" label);
              (label, p, rep, stats))
            costs
        in
        let find_vrs label =
          match List.find_opt (fun (l, _, _, _) -> l = label) vrs_runs with
          | Some r -> r
          | None -> List.hd vrs_runs
        in
        let _, p50, rep50, _ = find_vrs 50 in
        let vrs50_sig = sim ~policy:Policy.Sw_plus_significance p50 in
        let vrs50_size = sim ~policy:Policy.Sw_plus_size p50 in
        let spec_frac, guard_frac =
          runtime_specialization p50 rep50 eval_input
        in
        let vrs_stats =
          List.map (fun l -> (l, (fun (_, _, _, s) -> s) (find_vrs l))) costs
        in
        let vrs_reports =
          List.map (fun l -> (l, (fun (_, _, r, _) -> r) (find_vrs l))) costs
        in
        {
          wname = w.name;
          static_instructions = Prog.num_static_ins base;
          base_none;
          base_hwsig;
          base_hwsize;
          vrp_sw;
          vrpconv_sw;
          vrp_sig;
          vrp_size;
          vrs = vrs_stats;
          vrs50_sig;
          vrs50_size;
          vrs_reports;
          vrs50_spec_frac = spec_frac;
          vrs50_guard_frac = guard_frac;
        })
      selected
  in
  { workloads; quick }

(* --- aggregation ---------------------------------------------------------- *)

let width_classes =
  Instr.all_alu_classes @ [ Instr.C_move ]

let width_distribution (s : Pipeline.stats) =
  let totals = Hashtbl.create 4 in
  let grand = ref 0 in
  Hashtbl.iter
    (fun (ic, w) n ->
      if List.mem ic width_classes then begin
        Hashtbl.replace totals w (n + Option.value ~default:0 (Hashtbl.find_opt totals w));
        grand := !grand + n
      end)
    s.class_width;
  List.map
    (fun w ->
      ( w,
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt totals w))
        /. float_of_int (max 1 !grand) ))
    Width.all

let average_distribution t select =
  let dists = List.map (fun w -> width_distribution (select w)) t.workloads in
  let n = float_of_int (max 1 (List.length dists)) in
  List.map
    (fun w ->
      ( w,
        List.fold_left (fun acc d -> acc +. List.assoc w d) 0.0 dists /. n ))
    Width.all

let class_table t select =
  let acc = Hashtbl.create 32 in
  let grand = ref 0 in
  List.iter
    (fun wr ->
      let s = select wr in
      Hashtbl.iter
        (fun (ic, w) n ->
          if List.mem ic Instr.all_alu_classes then begin
            Hashtbl.replace acc (ic, w)
              (n + Option.value ~default:0 (Hashtbl.find_opt acc (ic, w)));
            grand := !grand + n
          end)
        s.Pipeline.class_width)
    t.workloads;
  (* Include every committed instruction in the denominator of the share
     column, as the paper does ("percentage of run-time instructions"). *)
  let total_committed =
    List.fold_left (fun a wr -> a + (select wr).Pipeline.instructions) 0 t.workloads
  in
  List.filter_map
    (fun ic ->
      let class_total =
        List.fold_left
          (fun a w -> a + Option.value ~default:0 (Hashtbl.find_opt acc (ic, w)))
          0 Width.all
      in
      if class_total = 0 then None
      else
        let share = float_of_int class_total /. float_of_int (max 1 total_committed) in
        let per_width =
          List.map
            (fun w ->
              ( w,
                float_of_int
                  (Option.value ~default:0 (Hashtbl.find_opt acc (ic, w)))
                /. float_of_int class_total ))
            Width.all
        in
        Some (ic, share, per_width))
    Instr.all_alu_classes
  |> List.sort (fun (_, a, _) (_, b, _) -> Float.compare b a)

let mean t f =
  let xs = List.map f t.workloads in
  List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs))

let total_energy (s : Pipeline.stats) = Account.total s.Pipeline.energy

let energy_saving w ~(improved : Pipeline.stats) =
  Account.savings ~baseline:(total_energy w.base_none)
    ~improved:(total_energy improved)

let time_saving w ~(improved : Pipeline.stats) =
  Account.savings
    ~baseline:(float_of_int w.base_none.cycles)
    ~improved:(float_of_int improved.Pipeline.cycles)

let ed2_saving w ~(improved : Pipeline.stats) =
  Account.savings
    ~baseline:
      (Account.ed2 ~energy:(total_energy w.base_none) ~cycles:w.base_none.Pipeline.cycles)
    ~improved:
      (Account.ed2 ~energy:(total_energy improved) ~cycles:improved.Pipeline.cycles)

let structure_saving w ~(improved : Pipeline.stats) s =
  Account.savings
    ~baseline:(Account.energy_of w.base_none.Pipeline.energy s)
    ~improved:(Account.energy_of improved.Pipeline.energy s)
