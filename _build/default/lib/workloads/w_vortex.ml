(* SpecInt95 `vortex` surrogate: an in-memory object database.
   Dominated by binary search over a sorted id index, record field
   updates, range scans grouped by a heavily skewed type tag, and
   periodic integrity validation — the transaction-processing profile of
   the original OODB.  The type tag (85%% one value) is a natural
   specialization target. *)

let name = "vortex"
let description = "in-memory object database: transactions + validation"

let source () =
  Printf.sprintf
    {|
// vortex: parallel-array records with a sorted-id index.
long input_scale = 3;
int seed = 9876;
long ids[1500];
char typ[1500];    // 1..4, heavily skewed toward 1
long bal[1500];
short grp[1500];
int nrec = 0;

int rnd() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 0x7fff;
}

void populate(int n) {
  long id = 1000;
  for (int i = 0; i < n; i++) {
    id += 1 + (rnd() & 7);
    ids[i] = id;
    int r = rnd() & 31;
    if (r < 27) typ[i] = 1;
    else if (r < 29) typ[i] = 2;
    else if (r < 31) typ[i] = 3;
    else typ[i] = 4;
    bal[i] = 100 + (rnd() & 1023);
    grp[i] = (short)(rnd() & 63);
  }
  nrec = n;
}

// binary search over the sorted id column; -1 when absent
int lookup(long id) {
  int lo = 0;
  int hi = nrec - 1;
  while (lo <= hi) {
    int mid = (lo + hi) >> 1;
    if (ids[mid] == id) return mid;
    if (ids[mid] < id) lo = mid + 1;
    else hi = mid - 1;
  }
  return -1;
}

long validate() {
  long sums[5];
  for (int i = 0; i < 5; i++) sums[i] = 0;
  for (int i = 0; i < nrec; i++) {
    sums[typ[i]] += bal[i];
  }
  long v = 0;
  for (int i = 1; i < 5; i++) v = v * 31 + sums[i];
  return v;
}

int main() {
  int n = 1500;
  int transactions = 700 * (int)input_scale;
  populate(n);
  long maxid = ids[nrec - 1];
  long found = 0;
  long scanned = 0;
  long acc = 0;
  for (int t = 0; t < transactions; t++) {
    int action = rnd() & 15;
    if (action < 11) {
      // point transaction: look up a (usually existing) id, update
      long id = 1000 + rnd() %% (int)(maxid - 990);
      int slot = lookup(id);
      if (slot >= 0) {
        found++;
        int k = typ[slot];
        if (k == 1) bal[slot] += 7;
        else if (k == 2) bal[slot] -= 3;
        else if (k == 3) bal[slot] += 11;
        else bal[slot] = bal[slot] ^ 5;
        acc = acc * 3 + bal[slot];
      }
    } else if (action < 15) {
      // range scan of one group
      int g = rnd() & 63;
      long s = 0;
      int step = 4 + (rnd() & 7);
      for (int i = 0; i < nrec; i += step) {
        if (grp[i] == g && typ[i] == 1) {
          s += bal[i];
          scanned++;
        }
      }
      acc += s & 0xffff;
    } else {
      // periodic integrity validation (full table sweep)
      if ((t & 7) == 0) acc = acc * 7 + validate();
      else acc = acc * 7 + nrec;
    }
  }
  emit(found);
  emit(scanned);
  emit(acc);
  return 0;
}
|}

