(** Consistent-hash ring over shard names.

    Each shard owns [vnodes] pseudo-random points on a 64-bit ring
    (MD5-derived, so the placement is deterministic across processes and
    OCaml versions); a key is owned by the shard of the first point at
    or after the key's own hash, wrapping at the top.  Virtual nodes
    smooth the ownership distribution: with the default 128 points per
    shard the largest shard's share stays within a small constant factor
    of the mean (qcheck-tested).

    The structural guarantee (also qcheck-tested) is {e minimal key
    movement}: adding a shard only moves keys {e to} the new shard
    ([lookup (add r s) k] is [lookup r k] or [s]), and removing one only
    moves the keys it owned.  Every other key keeps its shard, which is
    what makes resizing a fleet cheap — only the stolen slice of each
    cache goes cold.

    Rings are immutable; {!add} and {!remove} return new rings. *)

type t

val create : ?vnodes:int -> string list -> t
(** [create shards] builds a ring over the (deduplicated) shard names.
    [vnodes] defaults to 128 points per shard.  Raises [Invalid_argument]
    on an empty shard list or a non-positive [vnodes]. *)

val shards : t -> string list
(** Member shards, sorted. *)

val vnodes : t -> int

val add : t -> string -> t
(** Ring with one more shard (no-op if already a member). *)

val remove : t -> string -> t
(** Ring without [shard].  Raises [Invalid_argument] when removing the
    last shard. *)

val lookup : t -> string -> string
(** Owner shard of a key. *)

val successors : t -> string -> int -> string list
(** [successors t key n]: up to [n] {e distinct} shards in ring order
    starting at the key's owner — the owner first, then the replica
    candidates.  [n] larger than the shard count returns every shard. *)
