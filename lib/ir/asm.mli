(** Textual assembly: a parseable save/load format for programs.

    {!output} writes the same per-function listing as {!Prog.pp} (so dumps
    are also loadable) plus global data images in hex; {!parse} reads it
    back.  Instruction ids are preserved exactly, so analysis facts and
    profiles keyed by iid survive a save/load cycle.  Round-tripping is
    property-tested: [parse (output p)] is structurally identical to [p]
    for every program the code generator and the optimizer can produce.

    Format:

    {v
    global counter[8] = 2a00000000000000
    func main(0) frame=224
    L0:
      [   1] li #0, r1
      [   2] add32 r1, #5, r2
      [   3] st32 r2, -8(sp)
      [   4] beq r2, L1, L2
    ...
    v} *)

exception Error of string
(** Parse failure, with a line number in the message.  Lines whose first
    non-blank character is [#] are comments and are ignored (the fuzzer
    stamps corpus files with provenance headers). *)

val output : Format.formatter -> Prog.t -> unit
val to_string : Prog.t -> string

val parse : string -> Prog.t
(** The result passes {!Validate.program} whenever the input came from
    {!output} of a valid program. *)

(** {1 Single-item helpers}

    Building blocks of the {!Prog_json} wire format, which stores each
    instruction in its textual assembly form.  All raise {!Error} on
    malformed input. *)

val instr_of_string : string -> Ogc_isa.Instr.t
(** Parse one body instruction, e.g. ["add32 r1, #5, r2"]; the inverse
    of {!Ogc_isa.Instr.to_string}. *)

val terminator_of_string : string -> Prog.terminator
(** Parse one terminator, e.g. ["beq r2, L1, L2"], ["jump L3"],
    ["ret"]. *)

val terminator_to_string : Prog.terminator -> string

val hex_of_bytes : Bytes.t -> string
(** Lowercase hex image of a byte string (globals encoding). *)

val bytes_of_hex : string -> Bytes.t
