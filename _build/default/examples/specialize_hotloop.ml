(* Value Range Specialization end-to-end: profile a hot loop whose values
   are heavily skewed toward one constant, clone the dependent region
   behind a range guard, and watch constant propagation strip the clone.

   Run with: dune exec examples/specialize_hotloop.exe *)

module Minic = Ogc_minic.Minic
module Interp = Ogc_ir.Interp
module Prog = Ogc_ir.Prog
module Vrs = Ogc_core.Vrs
module Pipeline = Ogc_cpu.Pipeline
module Policy = Ogc_gating.Policy
module Account = Ogc_energy.Account

(* A table of "packet lengths" where almost every packet is 64 bytes —
   the kind of runtime skew static analysis cannot see. *)
let source = {|
  int lengths[4096];
  int seed = 99;
  int rnd() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 0x7fff;
  }
  int main() {
    for (int i = 0; i < 4096; i++) {
      lengths[i] = (rnd() & 31) == 0 ? 256 + (rnd() & 8191) : 64;
    }
    long bytes = 0;
    long padded = 0;
    for (int round = 0; round < 16; round++) {
      for (int i = 0; i < 4096; i++) {
        int len = lengths[i];
        bytes += len * 3 + (len >> 2);
        padded += (len + 63) & (~63);
      }
    }
    emit(bytes);
    emit(padded);
    return 0;
  }
|}

let () =
  let prog = Minic.compile source in
  let baseline = Interp.run prog in
  Format.printf "baseline checksum %Ld, %d dynamic instructions@."
    baseline.Interp.checksum baseline.Interp.steps;

  Format.printf "@.=== running the VRS pipeline (VRP + profile + clone) ===@.";
  let rep = Vrs.run prog in
  List.iter
    (fun (iid, outcome) ->
      match outcome with
      | Vrs.Specialized { lo; hi; freq; benefit } ->
        Format.printf
          "  point %d SPECIALIZED for [%Ld, %Ld], covers %.0f%% of values, \
           estimated benefit %.0f nJ@."
          iid lo hi (100.0 *. freq) benefit
      | Vrs.Dependent_on_other ->
        Format.printf "  point %d subsumed by another region@." iid
      | Vrs.No_benefit -> Format.printf "  point %d rejected (no benefit)@." iid)
    rep.Vrs.profiled;
  Format.printf
    "cloned %d static instructions; constant propagation removed %d of them@."
    rep.Vrs.static_cloned rep.Vrs.static_eliminated;

  let after = Interp.run prog in
  Format.printf "@.specialized checksum %Ld (equal: %b), %d dynamic instructions@."
    after.Interp.checksum
    (Int64.equal baseline.Interp.checksum after.Interp.checksum)
    after.Interp.steps;

  Format.printf "@.=== energy on the Table 2 machine ===@.";
  let fresh = Minic.compile source in
  let base_stats = Pipeline.simulate ~policy:Policy.No_gating fresh in
  let spec_stats = Pipeline.simulate ~policy:Policy.Software prog in
  let e s = Account.total s.Pipeline.energy in
  Format.printf "  ungated baseline : %.0f nJ over %d cycles@." (e base_stats)
    base_stats.Pipeline.cycles;
  Format.printf "  VRS + sw gating  : %.0f nJ over %d cycles@." (e spec_stats)
    spec_stats.Pipeline.cycles;
  Format.printf "  energy saving    : %s@."
    (Ogc_harness.Render.pct
       (Account.savings ~baseline:(e base_stats) ~improved:(e spec_stats)));
  Format.printf "  ED^2 saving      : %s@."
    (Ogc_harness.Render.pct
       (Account.savings
          ~baseline:(Account.ed2 ~energy:(e base_stats) ~cycles:base_stats.Pipeline.cycles)
          ~improved:(Account.ed2 ~energy:(e spec_stats) ~cycles:spec_stats.Pipeline.cycles)))
