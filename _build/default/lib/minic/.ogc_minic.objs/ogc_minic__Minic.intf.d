lib/minic/minic.mli: Ast Ogc_ir
