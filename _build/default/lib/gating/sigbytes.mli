(** Dynamic significance of values (hardware operand gating, paper §4.6).

    The hardware schemes inspect each value as it flows through the
    pipeline and gate off its insignificant upper bytes — those that are
    pure sign/zero extension of the significant part. *)

(** [significant_bytes v] is the smallest [k] in [1..8] such that either
    sign-extending or zero-extending the low [k] bytes of [v] recovers
    [v].  E.g. [significant_bytes 255L = 1] (zero-extension),
    [significant_bytes (-1L) = 1] (sign-extension),
    [significant_bytes 256L = 2]. *)
val significant_bytes : int64 -> int

(** [size_class k] rounds a byte count up to the 2-bit size-compression
    classes {1, 2, 5, 8} (the 5-byte class exists because Alpha data and
    stack addresses are 33-40 bits; see the paper's Figure 12). *)
val size_class : int -> int

(** Significance compression: [k] significant bytes pass, plus 7 tag bits
    of overhead per 64-bit word. *)
val significance_tag_bits : int

(** Size compression: 2 tag bits per word. *)
val size_tag_bits : int
