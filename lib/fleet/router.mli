(** Front router of a sharded serve fleet.

    The router speaks the same NDJSON protocol as [ogc serve] (see
    {!Ogc_server.Protocol}) and forwards analysis requests to a fleet of
    shard servers.  Placement is a consistent-hash {!Ring} over
    {!Ogc_server.Protocol.route_key} — the program-identity digest — so
    every option variant of one program (the VRS cost sweep, policy or
    input flips) lands on the same shard and reuses its warm chain-prefix
    artifacts.  Routing never affects correctness: shards are
    self-contained and results are content-addressed, so any shard can
    compute any request; the ring only decides which caches stay warm.

    {b Pools and backpressure.}  Each shard gets a bounded connection
    pool ([pool_size] sockets, lazily opened).  When every connection is
    busy, up to [max_waiters] requests queue per shard; beyond that the
    attempt fails fast and the request falls through to the next replica
    — backpressure surfaces as failover, not as unbounded queueing.

    {b Hedging.}  A request that has not answered within the hedge
    threshold gets a second copy sent to the ring's next replica; the
    first response wins (the straggler still completes and returns its
    connection, keeping the NDJSON stream in sync).  The threshold
    adapts to the observed latency distribution (roughly 2x a recent
    p95, recomputed continuously) or is pinned with [hedge_ms].
    Resent analyses are idempotent — both shards compute the same
    content-addressed result — so hedging is always safe.

    {b Failover.}  A connection failure or pool overload marks the shard
    down for a cooldown and moves the request to the next distinct ring
    successor, through the whole fleet if necessary; only when every
    shard has failed does the client see [{"status":"unavailable"}].

    {b Replication.}  The router counts hits per result key; when a key
    reaches [promote_after] hits it is promoted: its result payload is
    pushed ([put]) to the next [replicas - 1] ring successors, and
    subsequent requests for the hot key rotate across the replica set.
    A hedged or failed-over request for a promoted key is then a result
    cache hit on the replica instead of a recompute.

    Local ops ([ping], [stats], [metrics], [flight]) are answered by the
    router itself; [stats] reports routing counters and per-shard health
    rather than proxying a single shard.

    {b Tracing.}  When {!Ogc_obs.Span} collection is on, every analyze
    gets a trace id (the client's ["trace_id"] if it sent one, a minted
    one otherwise) and a router-side request span; each shard attempt —
    primary, hedge, or failover — opens its own child span and stamps
    the forwarded request with ["trace_id"]/["parent_span"], emitting a
    flow event the shard's request span resolves on the far side.  The
    [trace] op pulls the router's span rings {e and} every reachable
    shard's (via their own [trace] op) into one
    [{"processes":[{"name",..,"trace",..}]}] document — [ogc trace
    --fleet] merges it into a single Perfetto trace.  Tracing off (the
    default), request lines are forwarded byte-identically.

    {b Flight recorder.}  Every request — including local ops and parse
    errors — leaves one bounded-ring {!Ogc_obs.Flight} record (id, trace
    id, route key, op, hedged flag, outcome, duration); the [flight] op
    returns the ring, and SIGUSR1 dumps it as NDJSON on stderr. *)

type target = { t_name : string; t_addr : Ogc_server.Server.addr }

type config = {
  addr : Ogc_server.Server.addr;  (** where the router listens *)
  shards : target list;
  vnodes : int;  (** ring points per shard *)
  pool_size : int;  (** connections per shard *)
  max_waiters : int;  (** queued acquires per shard before failover *)
  replicas : int;  (** copies of a promoted hot result, primary included *)
  promote_after : int;  (** result-key hits before promotion *)
  hedge_ms : float option;  (** fixed hedge threshold; [None] = adaptive *)
  connect_timeout_ms : int;
  request_timeout_ms : int;  (** overall per-request budget *)
}

val default_config :
  addr:Ogc_server.Server.addr -> shards:target list -> config
(** [vnodes = 128], [pool_size = 8], [max_waiters = 64], [replicas = 2],
    [promote_after = 3], adaptive hedging, [connect_timeout_ms = 1000],
    [request_timeout_ms = 30_000]. *)

type t

val create : config -> t
(** Bind and listen; shard connections are opened lazily on first use,
    so shards may come up after the router.  Raises [Invalid_argument]
    on an empty shard list or duplicate shard names. *)

val run : t -> unit
(** Serve until {!stop}; returns after the drain.  Call at most once. *)

val stop : t -> unit
(** Request shutdown; idempotent, safe from a signal handler. *)

val install_sigint : t -> unit

val handle_line : t -> string -> string
(** Route one request line and return the response line (no trailing
    newline).  Exposed for tests; [run] uses it for every connection. *)

val stats_json : t -> Ogc_json.Json.t
(** Routing counters (requests, hedges and hedge wins, failovers,
    promotions, unavailable replies), the current hedge threshold,
    client-observed latency percentiles, and per-shard health. *)
