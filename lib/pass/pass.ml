module Prog = Ogc_ir.Prog
module Prog_json = Ogc_ir.Prog_json
module Interp = Ogc_ir.Interp
module Vrp = Ogc_core.Vrp
module Vrs = Ogc_core.Vrs
module Zspec = Ogc_core.Zspec
module Cleanup = Ogc_core.Cleanup
module Constprop = Ogc_core.Constprop
module J = Ogc_json.Json
module Metrics = Ogc_obs.Metrics
module Span = Ogc_obs.Span

(* --- pipeline state ------------------------------------------------------- *)

type state = {
  mutable prog : Prog.t;
  mutable vrp : Vrp.result option;
  mutable encoded : bool;  (* [vrp]'s widths applied to [prog] *)
  mutable bb : (Interp.bb_counts * int) option;
  mutable profile : Vrs.analysis option;
  mutable report : Vrs.report option;
  (* Environment the chain runs under, not an artifact fact: the caller's
     streamed profile and the store's cross-run per-function VRP cache.
     [wire_ok] IS artifact state — it says whether the program still has
     the instruction ids [wire]'s observations were collected against
     (every transformation clears it, so a pass downstream of e.g. VRS
     falls back to training-run profiling). *)
  mutable wire : Profile.t option;
  mutable wire_ok : bool;
  mutable fnc : Vrp.Fn_cache.t option;
}

let initial prog =
  {
    prog;
    vrp = None;
    encoded = false;
    bb = None;
    profile = None;
    report = None;
    wire = None;
    wire_ok = true;
    fnc = None;
  }

(* Analysis facts are immutable once computed and keyed by instruction
   ids/labels, both of which [Prog.copy] preserves — so a snapshot deep
   copies only the program and shares the facts. *)
let snapshot st = { st with prog = Prog.copy st.prog }

(* [wire] and [fnc] stay the running chain's: a restored artifact must
   not revive the environment of whichever chain stored it. *)
let restore st snap =
  st.prog <- snap.prog;
  st.vrp <- snap.vrp;
  st.encoded <- snap.encoded;
  st.bb <- snap.bb;
  st.profile <- snap.profile;
  st.report <- snap.report;
  st.wire_ok <- snap.wire_ok

(* The streamed profile only while its instruction ids still match. *)
let wire_of st = if st.wire_ok then st.wire else None

(* Transformations drop every analysis fact; each pass below re-installs
   exactly those it leaves valid. *)
let invalidate st =
  st.vrp <- None;
  st.encoded <- false;
  st.bb <- None;
  st.profile <- None;
  st.wire_ok <- false

(* --- self-supplied prerequisites ------------------------------------------ *)

(* A pass that needs an upstream fact computes it on the spot when the
   chain did not provide it (so `ogc analyze --passes vrs:cost=50` works
   alone), always with default configurations — a chain that wants a
   non-default upstream spells it out. *)

let ensure_vrp st =
  match st.vrp with
  | Some r -> r
  | None ->
    let r = Vrp.analyze ?fn_cache:st.fnc st.prog in
    st.vrp <- Some r;
    r

let ensure_encoded st =
  let r = ensure_vrp st in
  if not st.encoded then begin
    Vrp.apply r st.prog;
    st.encoded <- true;
    st.profile <- None
  end;
  r

let ensure_bb st =
  match st.bb with
  | Some b -> b
  | None ->
    let b =
      match wire_of st with
      | Some w -> (w.Profile.p_bb, w.Profile.p_total)
      | None ->
        let counts : Interp.bb_counts = Hashtbl.create 64 in
        let out = Interp.run ~bb_counts:counts st.prog in
        (counts, out.Interp.steps)
    in
    st.bb <- Some b;
    b

let ensure_profile st =
  match st.profile with
  | Some a -> a
  | None ->
    let vrp = ensure_encoded st in
    let bb = ensure_bb st in
    let values = Option.map Profile.values_table (wire_of st) in
    let a = Vrs.analyze ~vrp ~bb ?values st.prog in
    st.profile <- Some a;
    a

(* --- the registry --------------------------------------------------------- *)

type t = {
  name : string;
  doc : string;
  defaults : (string * J.t) list;  (* canonical config, fixed key order *)
  exec : J.t -> state -> string;  (* returns a one-line summary *)
}

let cfg_int key j =
  match J.member key j with J.Int i -> i | _ -> assert false

let cfg_bool key j =
  match J.member key j with J.Bool b -> b | _ -> assert false

let cfg_str key j =
  match J.member key j with J.Str s -> s | _ -> assert false

let cleanup_pass =
  {
    name = "cleanup";
    doc = "generic binary-optimizer cleanups: jump threading, unreachable \
           pruning";
    defaults = [];
    exec =
      (fun _ st ->
        let s = Cleanup.run st.prog in
        invalidate st;
        Printf.sprintf "threaded %d, unified %d, pruned %d blocks (%d ins)"
          s.Cleanup.threaded s.Cleanup.branches_unified s.Cleanup.pruned_blocks
          s.Cleanup.pruned_instructions);
  }

let vrp_pass =
  {
    name = "vrp";
    doc = "value range propagation fixpoint (pure analysis; encode-widths \
           applies it)";
    defaults = [ ("variant", J.Str "default"); ("jobs", J.Int 1) ];
    exec =
      (fun cfg st ->
        let config =
          match cfg_str "variant" cfg with
          | "default" -> Vrp.default_config
          | "conventional" -> Vrp.conventional_config
          | v -> Fmt.failwith "vrp: unknown variant %S" v
        in
        st.vrp <-
          Some
            (Vrp.analyze ~config ~jobs:(cfg_int "jobs" cfg)
               ?fn_cache:st.fnc st.prog);
        st.encoded <- false;
        st.profile <- None;
        Printf.sprintf "%s fixpoint over %d instructions"
          (cfg_str "variant" cfg)
          (Prog.num_static_ins st.prog));
  }

let encode_pass =
  {
    name = "encode-widths";
    doc = "re-encode every narrowable instruction with its assigned width";
    defaults = [];
    exec =
      (fun _ st ->
        (* Width re-encoding preserves semantics and block structure, so
           an existing basic-block profile stays valid. *)
        ignore (ensure_encoded st);
        "widths applied");
  }

let bb_profile_pass =
  {
    name = "bb-profile";
    doc = "training interpreter run collecting basic-block execution counts";
    defaults = [];
    exec =
      (fun _ st ->
        st.bb <- None;
        let _, total = ensure_bb st in
        Printf.sprintf "%d dynamic instructions" total);
  }

let value_profile_pass =
  {
    name = "value-profile";
    doc = "TNV value profiles for the specialization candidate master list";
    defaults = [];
    exec =
      (fun _ st ->
        st.profile <- None;
        let a = ensure_profile st in
        Printf.sprintf "%d candidate points profiled" (Vrs.profiled_points a));
  }

let vrs_pass =
  {
    name = "vrs";
    doc = "value range specialization: guard-cost screening, cloning, \
           guarded re-encoding";
    defaults = [ ("cost", J.Int 50); ("constprop", J.Bool true) ];
    exec =
      (fun cfg st ->
        let a = ensure_profile st in
        let config =
          {
            Vrs.default_config with
            test_cost_nj = Vrs.cost_of_label (cfg_int "cost" cfg);
            constprop = cfg_bool "constprop" cfg;
          }
        in
        let rep = Vrs.specialize ~config a st.prog in
        st.report <- Some rep;
        (* The report's final VRP pass ran on (and re-encoded) the
           transformed program; the training profiles did not, and a
           streamed profile no longer matches the cloned code. *)
        st.vrp <- Some rep.Vrs.final_vrp;
        st.encoded <- true;
        st.bb <- None;
        st.profile <- None;
        st.wire_ok <- false;
        Printf.sprintf "%d specialized, %d cloned, %d eliminated"
          (Vrs.specialized_count rep)
          rep.Vrs.static_cloned rep.Vrs.static_eliminated);
  }

let zspec_pass =
  {
    name = "zspec";
    doc = "zero-value specialization: single-instruction zero-test guards \
           with constant-folded zero clones (min=max=0 profiles)";
    defaults = [ ("cost", J.Int 50); ("constprop", J.Bool true) ];
    exec =
      (fun cfg st ->
        let a = ensure_profile st in
        let config =
          {
            Vrs.default_config with
            test_cost_nj = Vrs.cost_of_label (cfg_int "cost" cfg);
            constprop = cfg_bool "constprop" cfg;
          }
        in
        let rep = Zspec.specialize ~config a st.prog in
        st.report <- Some rep;
        st.vrp <- Some rep.Vrs.final_vrp;
        st.encoded <- true;
        st.bb <- None;
        st.profile <- None;
        st.wire_ok <- false;
        Printf.sprintf "%d zero-specialized, %d cloned, %d eliminated"
          (Vrs.specialized_count rep)
          rep.Vrs.static_cloned rep.Vrs.static_eliminated);
  }

let constprop_pass =
  {
    name = "constprop";
    doc = "constant propagation, branch folding and dead-code elimination";
    defaults = [];
    exec =
      (fun _ st ->
        let vrp = ensure_vrp st in
        let s = Constprop.run vrp st.prog in
        invalidate st;
        Printf.sprintf "%d folded, %d operands, %d branches, %d removed"
          s.Constprop.folded_to_const s.Constprop.folded_operands
          s.Constprop.folded_branches s.Constprop.removed);
  }

let registry =
  [
    cleanup_pass; vrp_pass; encode_pass; bb_profile_pass; value_profile_pass;
    vrs_pass; zspec_pass; constprop_pass;
  ]

(* Passes whose output depends on the (streamed) profile: a fresher
   profile epoch must re-address exactly these artifacts and no others,
   so the chain-key salt below is applied from the first of them on. *)
let profile_dependent name =
  List.mem name [ "bb-profile"; "value-profile"; "vrs"; "zspec" ]

let find name = List.find_opt (fun p -> String.equal p.name name) registry

(* --- chain specs ---------------------------------------------------------- *)

type instance = { pass : t; config : J.t }

let parse_value key default s =
  match default with
  | J.Int _ -> (
    match int_of_string_opt s with
    | Some i -> J.Int i
    | None -> Fmt.failwith "option %s: expected an integer, got %S" key s)
  | J.Bool _ -> (
    match bool_of_string_opt s with
    | Some b -> J.Bool b
    | None -> Fmt.failwith "option %s: expected true or false, got %S" key s)
  | _ -> J.Str s

let parse_spec spec =
  match String.split_on_char ':' (String.trim spec) with
  | [] | [ "" ] -> Fmt.failwith "empty pass spec"
  | name :: opts ->
    let pass =
      match find name with
      | Some p -> p
      | None ->
        Fmt.failwith "unknown pass %S (known: %s)" name
          (String.concat ", " (List.map (fun p -> p.name) registry))
    in
    let overrides =
      List.map
        (fun opt ->
          match String.index_opt opt '=' with
          | None ->
            Fmt.failwith "%s: bad option %S (expected key=value)" name opt
          | Some i ->
            let k = String.sub opt 0 i
            and v = String.sub opt (i + 1) (String.length opt - i - 1) in
            (match List.assoc_opt k pass.defaults with
            | None ->
              Fmt.failwith "%s: unknown option %S (known: %s)" name k
                (String.concat ", " (List.map fst pass.defaults))
            | Some d -> (k, parse_value k d v)))
        opts
    in
    (* Canonical config: every key, in the registry's fixed order. *)
    let config =
      J.Obj
        (List.map
           (fun (k, d) ->
             (k, Option.value ~default:d (List.assoc_opt k overrides)))
           pass.defaults)
    in
    { pass; config }

let parse_chain s =
  match
    String.split_on_char ',' s
    |> List.filter (fun s -> String.trim s <> "")
  with
  | [] -> Fmt.failwith "empty pass chain"
  | specs -> List.map parse_spec specs

let config_string inst = J.to_string ~indent:false inst.config

(* --- content addressing --------------------------------------------------- *)

(* The input artifact of a chain is the canonical Prog_json rendering of
   the entry program; each pass then extends the address with its name
   and canonical config, so [key_n = H(pass_n, config_n, key_{n-1})] and
   two chains share every prefix artifact they have in common. *)
let digest_prog p =
  Digest.to_hex
    (Digest.string (J.to_string ~indent:false (Prog_json.to_json p)))

let chain_key inst prev =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" [ inst.pass.name; config_string inst; prev ]))

(* --- the artifact store --------------------------------------------------- *)

module Store = struct
  type slot = { s_state : state; mutable s_last : int }

  type per_pass = {
    mutable hits : int;
    mutable misses : int;
    mutable replica : int;
  }

  type t = {
    capacity : int;
    m : Mutex.t;
    tbl : (string, slot) Hashtbl.t;
    by_pass : (string, per_pass) Hashtbl.t;
    mutable tick : int;
    mutable fallback : (pass:string -> string -> state option) option;
    (* Cross-run per-function VRP memo, shared by every chain that runs
       against this store: an epoch bump re-addresses the downstream
       artifacts, but unchanged functions still replay their fragments
       here instead of re-running the fixpoint's final pass. *)
    fn_cache : Vrp.Fn_cache.t;
  }

  let create ?(capacity = 64) () =
    {
      capacity = max 1 capacity;
      m = Mutex.create ();
      tbl = Hashtbl.create 64;
      by_pass = Hashtbl.create 8;
      tick = 0;
      fallback = None;
      fn_cache = Vrp.Fn_cache.create ();
    }

  let fn_cache t = t.fn_cache

  let locked t f =
    Mutex.lock t.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

  let set_fallback t f = locked t (fun () -> t.fallback <- Some f)

  let counters t pass =
    match Hashtbl.find_opt t.by_pass pass with
    | Some c -> c
    | None ->
      let c = { hits = 0; misses = 0; replica = 0 } in
      Hashtbl.replace t.by_pass pass c;
      c

  let peek t ~pass:_ key =
    locked t (fun () ->
        Option.map
          (fun slot -> snapshot slot.s_state)
          (Hashtbl.find_opt t.tbl key))

  let find_local t ~pass key =
    locked t (fun () ->
        let c = counters t pass in
        match Hashtbl.find_opt t.tbl key with
        | Some slot ->
          t.tick <- t.tick + 1;
          slot.s_last <- t.tick;
          c.hits <- c.hits + 1;
          Some (snapshot slot.s_state)
        | None ->
          c.misses <- c.misses + 1;
          None)

  (* Grabbed under the lock so a concurrent [set_fallback] can't tear
     the read; the fallback itself runs outside the lock because it may
     call [peek] on a sibling store. *)
  let fallback_of t = locked t (fun () -> t.fallback)

  (* Caller must hold [t.m]. *)
  let insert_locked t key st =
    if not (Hashtbl.mem t.tbl key) then begin
      if Hashtbl.length t.tbl >= t.capacity then begin
        (* Evict the least recently used snapshot (linear scan; the
           store holds at most [capacity] entries). *)
        let victim =
          Hashtbl.fold
            (fun k slot acc ->
              match acc with
              | Some (_, last) when last <= slot.s_last -> acc
              | _ -> Some (k, slot.s_last))
            t.tbl None
        in
        match victim with
        | Some (k, _) -> Hashtbl.remove t.tbl k
        | None -> ()
      end;
      t.tick <- t.tick + 1;
      Hashtbl.replace t.tbl key { s_state = snapshot st; s_last = t.tick }
    end

  let install t ~pass key st =
    locked t (fun () ->
        let c = counters t pass in
        c.replica <- c.replica + 1;
        insert_locked t key st)

  let find t ~pass key =
    match find_local t ~pass key with
    | Some _ as hit -> hit
    | None -> (
      match fallback_of t with
      | None -> None
      | Some f -> (
        match f ~pass key with
        | None -> None
        | Some st ->
          install t ~pass key st;
          Some st))

  let store t ~pass:_ key st = locked t (fun () -> insert_locked t key st)
  let entries t = locked t (fun () -> Hashtbl.length t.tbl)

  let pass_stats t =
    locked t (fun () ->
        Hashtbl.fold (fun n c acc -> (n, c.hits, c.misses) :: acc) t.by_pass []
        |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b))

  let replica_stats t =
    locked t (fun () ->
        Hashtbl.fold (fun n c acc -> (n, c.replica) :: acc) t.by_pass []
        |> List.filter (fun (_, r) -> r > 0)
        |> List.sort (fun (a, _) (b, _) -> String.compare a b))
end

(* --- telemetry ------------------------------------------------------------ *)

(* Registered at module initialization, before any domain spawns. *)
let m_runs =
  List.map
    (fun p ->
      ( p.name,
        Metrics.counter "ogc_pass_runs_total" ~labels:[ ("pass", p.name) ] ))
    registry

let m_hits =
  List.map
    (fun p ->
      ( p.name,
        Metrics.counter "ogc_pass_cache_hits_total"
          ~labels:[ ("pass", p.name) ] ))
    registry

let m_seconds =
  List.map
    (fun p ->
      ( p.name,
        Metrics.histogram "ogc_pass_seconds" ~labels:[ ("pass", p.name) ] ))
    registry

let mark tbl name f =
  match List.assoc_opt name tbl with Some m -> f m | None -> ()

(* --- chain execution ------------------------------------------------------ *)

type step = {
  t_pass : string;
  t_config : J.t;
  t_cached : bool;
  t_seconds : float;
  t_summary : string;
}

let run_chain ?store ?wire chain prog =
  let st = initial prog in
  st.wire <- wire;
  (match store with
  | Some s -> st.fnc <- Some (Store.fn_cache s)
  | None -> ());
  let epoch = match wire with Some w -> Profile.epoch w | None -> 0 in
  (* Keys are only needed (and only worth the Prog_json serialization)
     when a store is attached. *)
  let key = ref (match store with Some _ -> digest_prog prog | None -> "") in
  let steps =
    List.map
      (fun inst ->
        if store <> None then begin
          key := chain_key inst !key;
          (* Profile-dependent artifacts are additionally addressed by
             the profile epoch, so "same program, fresher profile"
             re-runs them while the front keeps hitting.  Epoch 0 (no
             profile pushed, or a legacy client) leaves every key
             byte-identical to the pre-profile scheme. *)
          if epoch > 0 && profile_dependent inst.pass.name then
            key :=
              Digest.to_hex
                (Digest.string
                   (Printf.sprintf "%s\x00profile-epoch=%d" !key epoch))
        end;
        let cached =
          match store with
          | None -> false
          | Some s -> (
            match Store.find s ~pass:inst.pass.name !key with
            | Some snap ->
              restore st snap;
              true
            | None -> false)
        in
        if cached then begin
          mark m_hits inst.pass.name Metrics.incr;
          {
            t_pass = inst.pass.name;
            t_config = inst.config;
            t_cached = true;
            t_seconds = 0.0;
            t_summary = "reused cached artifact";
          }
        end
        else begin
          let t0 = Unix.gettimeofday () in
          let summary =
            Span.with_ ~name:("pass:" ^ inst.pass.name)
              ~args:[ ("config", inst.config) ]
              (fun () -> inst.pass.exec inst.config st)
          in
          let dt = Unix.gettimeofday () -. t0 in
          mark m_runs inst.pass.name Metrics.incr;
          mark m_seconds inst.pass.name (fun h -> Metrics.observe h dt);
          (match store with
          | Some s -> Store.store s ~pass:inst.pass.name !key st
          | None -> ());
          {
            t_pass = inst.pass.name;
            t_config = inst.config;
            t_cached = false;
            t_seconds = dt;
            t_summary = summary;
          }
        end)
      chain
  in
  (st, steps)

let run ?store ?wire spec prog = run_chain ?store ?wire (parse_chain spec) prog
