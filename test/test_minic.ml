(* MiniC front-end tests: lexer, parser, semantic checks, and generated-code
   semantics via the reference interpreter. *)

module Minic = Ogc_minic.Minic
module Lexer = Ogc_minic.Lexer
module Interp = Ogc_ir.Interp
module Gen_minic = Ogc_fuzz.Gen_minic

let emitted src = (Interp.run (Minic.compile src)).Interp.emitted

let check_emits name src expected =
  Alcotest.(check (list int64)) name expected (emitted src)

(* --- lexer ------------------------------------------------------------------ *)

let toks src =
  Array.to_list (Lexer.tokenize src)
  |> List.map (fun (t, _) -> Lexer.token_to_string t)

let test_lexer () =
  Alcotest.(check (list string)) "hex" [ "31"; "<eof>" ] (toks "0x1f");
  Alcotest.(check (list string)) "char lit" [ "97"; "<eof>" ] (toks "'a'");
  Alcotest.(check (list string)) "escape" [ "10"; "<eof>" ] (toks "'\\n'");
  Alcotest.(check (list string)) "comment" [ "x"; "<eof>" ]
    (toks "x // trailing\n");
  Alcotest.(check (list string)) "block comment" [ "a"; "b"; "<eof>" ]
    (toks "a /* 1 \n 2 */ b");
  Alcotest.(check (list string)) "greedy ops" [ "<<="; "<<"; "<"; "<eof>" ]
    (toks "<<= << <");
  Alcotest.(check (list string)) "string" [ "\"hi\\n\""; "<eof>" ]
    (toks "\"hi\\n\"");
  (match Lexer.tokenize "@" with
  | exception Lexer.Error (_, pos) ->
    Alcotest.(check int) "error line" 1 pos.Ogc_minic.Ast.line
  | _ -> Alcotest.fail "expected a lexer error");
  match Lexer.tokenize "/* open" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "unterminated comment"

let test_lexer_positions () =
  let t = Lexer.tokenize "a\n  b" in
  let _, p = t.(1) in
  Alcotest.(check int) "line" 2 p.Ogc_minic.Ast.line;
  Alcotest.(check int) "col" 3 p.Ogc_minic.Ast.col

(* --- parser ----------------------------------------------------------------- *)

let expect_error src sub =
  match Minic.parse src with
  | exception Minic.Error msg ->
    let n = String.length sub in
    let rec go i =
      i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1))
    in
    Alcotest.(check bool) (src ^ " -> " ^ msg) true (go 0)
  | _ -> Alcotest.fail ("expected an error for: " ^ src)

let test_parser_errors () =
  expect_error "int main() { return 0 }" "expected ';'";
  expect_error "int main() { int = 3; }" "identifier";
  expect_error "void main x" "'('";
  expect_error "int main() { emit(1) }" "expected ';'";
  expect_error "int a[];" "size"

let test_precedence () =
  check_emits "mul before add" "int main() { emit(2 + 3 * 4); return 0; }"
    [ 14L ];
  check_emits "shift vs add" "int main() { emit(1 << 2 + 1); return 0; }"
    [ 8L ];
  check_emits "cmp vs bitand"
    "int main() { emit((3 & 1) == 1); return 0; }" [ 1L ];
  check_emits "unary binds tight" "int main() { emit(-2 * 3); return 0; }"
    [ -6L ];
  check_emits "ternary right assoc"
    "int main() { emit(0 ? 1 : 0 ? 2 : 3); return 0; }" [ 3L ];
  check_emits "paren override" "int main() { emit((2 + 3) * 4); return 0; }"
    [ 20L ]

(* --- semantic checks ---------------------------------------------------------- *)

let test_typecheck_errors () =
  expect_error "int main() { return x; }" "undefined variable";
  expect_error "int main() { return f(); }" "undefined function";
  expect_error "int f(int a) { return a; } int main() { return f(); }"
    "expects 1 argument";
  expect_error "int a[3]; int main() { return a; }" "used as a scalar";
  expect_error "int main() { int x = 0; return x[0]; }" "indexing non-array";
  expect_error "int main() { break; return 0; }" "break outside";
  expect_error "int main() { continue; return 0; }" "continue outside";
  expect_error "void f() { return 3; } int main() { return 0; }"
    "void function";
  expect_error "int main() { int x = 0; int x = 1; return 0; }" "duplicate";
  expect_error "int f() { return 0; }" "no main";
  expect_error "int main(int x) { return 0; }" "main must take no parameters";
  expect_error "void f() {} int main() { return f(); }"
    "void function f used in an expression"

(* --- code generation semantics ------------------------------------------------- *)

let test_char_is_unsigned_byte () =
  check_emits "char wraps to 0..255"
    {| int main() {
         char c = (char)200;
         emit(c);          // 200, zero-extended
         c = (char)(c + 100);
         emit(c);          // 300 & 255 = 44
         return 0;
       } |}
    [ 200L; 44L ]

let test_short_sign_extends () =
  check_emits "short is signed"
    {| int main() {
         short s = (short)40000;
         emit(s);
         return 0;
       } |}
    [ Int64.of_int (40000 - 65536) ]

let test_int_wraps_32 () =
  check_emits "int arithmetic wraps at 32 bits"
    {| int main() {
         int x = 2000000000;
         emit(x + x);
         long y = 2000000000;
         emit(y + y);
         return 0;
       } |}
    [ -294967296L; 4000000000L ]

let test_promotions () =
  check_emits "char + char promotes to int"
    {| int main() {
         char a = (char)200;
         char b = (char)200;
         emit(a + b);   // 400: no byte wrap
         return 0;
       } |}
    [ 400L ]

let test_short_circuit () =
  check_emits "&&/|| do not evaluate the other side"
    {| int a[4];
       int main() {
         int i = 100;
         // safe: the guard prevents the wild index
         if (i < 4 && a[i] == 0) emit(1);
         else emit(2);
         if (i >= 4 || a[i] == 0) emit(3);
         return 0;
       } |}
    [ 2L; 3L ]

let test_loops_and_break () =
  check_emits "break/continue"
    {| int main() {
         long s = 0;
         for (int i = 0; i < 10; i++) {
           if (i == 3) continue;
           if (i == 7) break;
           s = s * 10 + i;
         }
         emit(s);
         int j = 0;
         do { j++; } while (j < 5);
         emit(j);
         while (j < 8) j++;
         emit(j);
         return 0;
       } |}
    [ 12456L; 5L; 8L ]

let test_globals_and_strings () =
  check_emits "globals with initializers"
    {| long counter = 41;
       int tab[4] = {10, 20, 30};
       char msg[] = "AB";
       int main() {
         counter += 1;
         emit(counter);
         emit(tab[0] + tab[1] + tab[2] + tab[3]);
         emit(msg[0]);
         emit(msg[1]);
         emit(msg[2]);   // NUL
         return 0;
       } |}
    [ 42L; 60L; 65L; 66L; 0L ]

let test_array_params () =
  check_emits "arrays decay to pointers"
    {| int sum(int v[], int n) {
         int s = 0;
         for (int i = 0; i < n; i++) s += v[i];
         return s;
       }
       void fill(int *v, int n) {
         for (int i = 0; i < n; i++) v[i] = i * i;
       }
       int scratch[8];
       int main() {
         fill(scratch, 8);
         emit(sum(scratch, 8));
         int local[4];
         fill(local, 4);
         emit(sum(local, 4));
         return 0;
       } |}
    [ 140L; 14L ]

let test_recursion_and_spill () =
  (* More than six named locals forces stack homes; recursion exercises
     the callee-save discipline. *)
  check_emits "deep expression and spills"
    {| int ack(int m, int n) {
         if (m == 0) return n + 1;
         if (n == 0) return ack(m - 1, 1);
         return ack(m - 1, ack(m, n - 1));
       }
       int main() {
         int a = 1; int b = 2; int c = 3; int d = 4;
         int e = 5; int f = 6; int g = 7; int h = 8;
         emit(a + b * c - d + e * f - g + h);
         emit(ack(2, 3));
         emit(a + b + c + d + e + f + g + h);  // homes survive the call
         return 0;
       } |}
    [ 34L; 9L; 36L ]

let test_cmov_vs_branchy_ternary () =
  check_emits "ternary with call falls back to branches"
    {| int inc(int x) { return x + 1; }
       int main() {
         int t = 5;
         emit(t > 3 ? inc(10) : inc(20));
         emit(t < 3 ? inc(10) : inc(20));
         emit(t > 3 ? 1 : 2);   // cmov form
         return 0;
       } |}
    [ 11L; 21L; 1L ]

let test_division_semantics () =
  check_emits "toward-zero division"
    {| int main() {
         emit(-7 / 2);
         emit(-7 % 2);
         emit(7 / -2);
         emit(7 % -2);
         emit(5 / 0);    // ISA: total division
         emit(5 % 0);
         return 0;
       } |}
    [ -3L; -1L; -3L; 1L; 0L; 0L ]

let test_scoping () =
  check_emits "block scoping and shadowing"
    {| int main() {
         int x = 1;
         if (x) {
           int x = 2;
           emit(x);
         }
         emit(x);
         for (int x = 9; x < 10; x++) emit(x);
         emit(x);
         return 0;
       } |}
    [ 2L; 1L; 9L; 1L ]

let test_cmov_generated () =
  (* Call-free ternaries lower to conditional moves. *)
  let prog = Minic.compile "int main() { int t = 1; emit(t ? 3 : 4); return 0; }" in
  let has_cmov = ref false in
  Ogc_ir.Prog.iter_all_ins prog (fun _ _ ins ->
      match ins.Ogc_ir.Prog.op with
      | Ogc_isa.Instr.Cmov _ -> has_cmov := true
      | _ -> ());
  Alcotest.(check bool) "cmov emitted" true !has_cmov

(* --- generated program robustness ----------------------------------------------- *)

let prop_generated_compile_and_run =
  QCheck.Test.make ~name:"random programs compile, validate and run"
    ~count:300 Gen_minic.arbitrary_program (fun src ->
      let prog =
        try Minic.compile src
        with Minic.Error msg -> QCheck.Test.fail_reportf "compile: %s" msg
      in
      match
        Interp.run ~config:{ Interp.default_config with max_steps = 3_000_000 }
          prog
      with
      | _ -> true
      | exception Interp.Fault msg ->
        QCheck.Test.fail_reportf "fault: %s" msg)

let prop_generated_deterministic =
  QCheck.Test.make ~name:"random programs are deterministic" ~count:50
    Gen_minic.arbitrary_program (fun src ->
      let p1 = Minic.compile src and p2 = Minic.compile src in
      let cfg = { Interp.default_config with max_steps = 3_000_000 } in
      Int64.equal
        (Interp.run ~config:cfg p1).Interp.checksum
        (Interp.run ~config:cfg p2).Interp.checksum)

let () =
  Alcotest.run "minic"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
        ] );
      ( "parser",
        [
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "precedence" `Quick test_precedence;
        ] );
      ("semantics", [ Alcotest.test_case "errors" `Quick test_typecheck_errors ]);
      ( "codegen",
        [
          Alcotest.test_case "char unsigned" `Quick test_char_is_unsigned_byte;
          Alcotest.test_case "short signed" `Quick test_short_sign_extends;
          Alcotest.test_case "int wraps" `Quick test_int_wraps_32;
          Alcotest.test_case "promotions" `Quick test_promotions;
          Alcotest.test_case "short circuit" `Quick test_short_circuit;
          Alcotest.test_case "loops" `Quick test_loops_and_break;
          Alcotest.test_case "globals" `Quick test_globals_and_strings;
          Alcotest.test_case "array params" `Quick test_array_params;
          Alcotest.test_case "recursion/spills" `Quick test_recursion_and_spill;
          Alcotest.test_case "ternary" `Quick test_cmov_vs_branchy_ternary;
          Alcotest.test_case "division" `Quick test_division_semantics;
          Alcotest.test_case "scoping" `Quick test_scoping;
          Alcotest.test_case "cmov generated" `Quick test_cmov_generated;
        ] );
      ( "random",
        List.map QCheck_alcotest.to_alcotest
          [ prop_generated_compile_and_run; prop_generated_deterministic ] );
    ]
