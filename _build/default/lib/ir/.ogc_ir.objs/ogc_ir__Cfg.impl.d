lib/ir/cfg.ml: Array Label List Prog
