type t = W8 | W16 | W32 | W64

let equal (a : t) (b : t) = a = b

let bits = function W8 -> 8 | W16 -> 16 | W32 -> 32 | W64 -> 64
let bytes w = bits w / 8

let of_bytes n =
  if n < 1 || n > 8 then Fmt.invalid_arg "Width.of_bytes %d" n
  else if n <= 1 then W8
  else if n <= 2 then W16
  else if n <= 4 then W32
  else W64

let compare a b = Int.compare (bits a) (bits b)

let all = [ W8; W16; W32; W64 ]

let max a b = if compare a b >= 0 then a else b
let min a b = if compare a b <= 0 then a else b

let min_value = function
  | W8 -> -128L
  | W16 -> -32768L
  | W32 -> Int64.neg 0x8000_0000L
  | W64 -> Int64.min_int

let max_value = function
  | W8 -> 127L
  | W16 -> 32767L
  | W32 -> 0x7FFF_FFFFL
  | W64 -> Int64.max_int

let fits v w = v >= min_value w && v <= max_value w

let needed v =
  if fits v W8 then W8
  else if fits v W16 then W16
  else if fits v W32 then W32
  else W64

let needed_range lo hi = max (needed lo) (needed hi)

let needed_unsigned v =
  if v < 0L then W64
  else if v <= 0xFFL then W8
  else if v <= 0xFFFFL then W16
  else if v <= 0xFFFF_FFFFL then W32
  else W64

let truncate v = function
  | W64 -> v
  | w ->
    let b = bits w in
    Int64.shift_right (Int64.shift_left v (64 - b)) (64 - b)

let truncate_unsigned v = function
  | W64 -> v
  | w ->
    let b = bits w in
    Int64.shift_right_logical (Int64.shift_left v (64 - b)) (64 - b)

let to_string = function W8 -> "8" | W16 -> "16" | W32 -> "32" | W64 -> "64"
let pp ppf w = Format.pp_print_string ppf (to_string w)
