(** Plain-text rendering helpers for the experiment reports. *)

(** [table ~header rows] renders an aligned text table with a rule under
    the header. *)
val table : header:string list -> string list list -> string

(** [pct x] formats a fraction as a percentage ("12.3%"); [x] in [0,1]
    scale (negative allowed). *)
val pct : float -> string

(** [bar x ~scale ~width] renders a proportional ASCII bar. *)
val bar : float -> scale:float -> width:int -> string

val heading : string -> string
(** Underlined section heading. *)
