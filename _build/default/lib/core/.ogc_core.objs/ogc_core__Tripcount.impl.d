lib/core/tripcount.ml: Array Cfg Dom Instr Int64 Interval Label List Loops Ogc_ir Ogc_isa Prog Reg Width
