examples/width_audit.mli:
