module J = Ogc_json.Json
module Prog = Ogc_ir.Prog
module Workload = Ogc_workloads.Workload
module Policy = Ogc_gating.Policy
module Pipeline = Ogc_cpu.Pipeline
module Account = Ogc_energy.Account
module Results = Ogc_harness.Results
module Span = Ogc_obs.Span
module Pass = Ogc_pass.Pass

let fail fmt = Fmt.kstr (fun s -> raise (J.Parse_error s)) fmt

type payload =
  | Source of string
  | Asm_text of string
  | Prog_tree of J.t
  | Workload of string

type pass = P_none | P_vrp | P_vrs

type request = {
  id : string option;
  payload : payload;
  input : Workload.input;
  pass : pass;
  policy : Policy.t;
  cost : int;
  deadline_ms : int option;
  return_program : bool;
  trace_id : string option;
  parent_span : int option;
}

type op =
  | Analyze of request
  | Stats
  | Ping
  | Metrics
  | Fetch of string
  | Put of string * J.t
  | Trace
  | Flight
  | Profile of request * Ogc_pass.Profile.t
      (** a client streaming back what it observed running the program:
          the request names the program (route_key addresses the
          profile), the payload is the decoded delta *)

(* --- protocol version ----------------------------------------------------- *)

let proto_version = 1

exception Version_mismatch of int

(* A ["proto"] member must match ours exactly; its absence means a
   legacy client and is accepted (version 0 of the protocol had no
   handshake, so rejecting absence would break every deployed client
   while adding no safety). *)
let check_proto j =
  match J.member "proto" j with
  | J.Null -> ()
  | J.Int v -> if v <> proto_version then raise (Version_mismatch v)
  | _ -> fail "member \"proto\": expected an integer"

(* --- request parsing ------------------------------------------------------ *)

let pass_of_string = function
  | "none" -> P_none
  | "vrp" -> P_vrp
  | "vrs" -> P_vrs
  | s -> fail "unknown pass %S (expected none, vrp or vrs)" s

let pass_name = function P_none -> "none" | P_vrp -> "vrp" | P_vrs -> "vrs"

let policy_of_string s =
  match List.find_opt (fun p -> String.equal (Policy.name p) s) Policy.all with
  | Some p -> p
  | None ->
    fail "unknown policy %S (expected one of %s)" s
      (String.concat ", " (List.map Policy.name Policy.all))

let input_of_string = function
  | "train" -> Workload.Train
  | "ref" -> Workload.Ref
  | s -> fail "unknown input %S (expected train or ref)" s

let input_name = function Workload.Train -> "train" | Workload.Ref -> "ref"

let opt_string k j =
  match J.member k j with
  | J.Null -> None
  | J.Str s -> Some s
  | _ -> fail "member %S: expected a string" k

let opt_int k j =
  match J.member k j with
  | J.Null -> None
  | J.Int i -> Some i
  | _ -> fail "member %S: expected an integer" k

let opt_bool ~default k j =
  match J.member k j with
  | J.Null -> default
  | J.Bool b -> b
  | _ -> fail "member %S: expected a boolean" k

let request_of_json j =
  let payload =
    match
      ( opt_string "source" j, opt_string "asm" j, J.member "prog" j,
        opt_string "workload" j )
    with
    | Some s, None, J.Null, None -> Source s
    | None, Some s, J.Null, None -> Asm_text s
    | None, None, (J.Obj _ as p), None -> Prog_tree p
    | None, None, J.Null, Some w -> Workload w
    | None, None, J.Null, None ->
      fail "request carries no program (source, asm, prog or workload)"
    | _ -> fail "request carries more than one program payload"
  in
  let pass =
    match opt_string "pass" j with
    | None -> P_none
    | Some s -> pass_of_string s
  in
  let policy =
    match opt_string "policy" j with
    | Some s -> policy_of_string s
    | None -> ( match pass with P_none -> Policy.No_gating | _ -> Policy.Software)
  in
  { id = opt_string "id" j;
    payload;
    input =
      (match opt_string "input" j with
      | None -> Workload.Train
      | Some s -> input_of_string s);
    pass;
    policy;
    cost = Option.value ~default:50 (opt_int "cost" j);
    deadline_ms = opt_int "deadline_ms" j;
    return_program = opt_bool ~default:false "return_program" j;
    (* Trace context, version-gated like ["proto"]: optional members an
       older peer simply never sends.  Deliberately absent from
       {!cache_key} and {!route_key} — tracing a request must not change
       where it lands or whether it hits. *)
    trace_id = opt_string "trace_id" j;
    parent_span = opt_int "parent_span" j }

(* Replication keys travel between shards; insist on the exact shape a
   {!cache_key} has (32 lowercase hex characters) so a confused client
   can never address arbitrary strings into a shard's cache. *)
let key_arg j =
  match opt_string "key" j with
  | None -> fail "member \"key\": required"
  | Some k ->
    let hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') in
    if String.length k = 32 && String.for_all hex k then k
    else fail "member \"key\": expected 32 lowercase hex characters"

let op_of_json j =
  check_proto j;
  match opt_string "op" j with
  | None | Some "analyze" -> Analyze (request_of_json j)
  | Some "stats" -> Stats
  | Some "ping" -> Ping
  | Some "metrics" -> Metrics
  | Some "fetch" -> Fetch (key_arg j)
  | Some "put" -> (
    match J.member "result" j with
    | J.Null -> fail "member \"result\": required"
    | r -> Put (key_arg j, r))
  | Some "trace" -> Trace
  | Some "flight" -> Flight
  | Some "profile" -> (
    (* Version-gated like ["proto"] itself: an op a legacy client never
       sends, carrying the program payload (to address the profile) and
       the observation delta. *)
    match J.member "profile" j with
    | J.Null -> fail "member \"profile\": required"
    | d -> (
      match Ogc_pass.Profile.of_json d with
      | delta -> Profile (request_of_json j, delta)
      | exception Ogc_pass.Profile.Malformed m ->
        fail "member \"profile\": %s" m))
  | Some op ->
    fail
      "unknown op %S (expected analyze, stats, ping, metrics, fetch, put, \
       trace, flight or profile)"
      op

(* --- cache key ------------------------------------------------------------ *)

(* Canonical digest input: everything that can change the result payload
   — program bytes, options, and the analyzer version (an upgraded
   analyzer must never serve a stale artifact) — and nothing that cannot
   (id, deadline). *)
let payload_kind req =
  match req.payload with
  | Source s -> ("source", s)
  | Asm_text s -> ("asm", s)
  | Prog_tree p -> ("prog", J.to_string ~indent:false p)
  | Workload w -> ("workload", w)

let cache_key ?(epoch = 0) req =
  let kind, body = payload_kind req in
  let canonical =
    J.to_string ~indent:false
      (J.Obj
         ([ ("analyzer", J.Str Version.version);
            ("kind", J.Str kind);
            ("body", J.Str body);
            ("input", J.Str (input_name req.input));
            ("pass", J.Str (pass_name req.pass));
            ("policy", J.Str (Policy.name req.policy));
            ("cost", J.Int req.cost);
            ("return_program", J.Bool req.return_program) ]
         (* Epoch 0 adds nothing, so programs nobody profiles — and
            every legacy client — keep byte-identical addresses. *)
         @ (if epoch > 0 then [ ("profile_epoch", J.Int epoch) ] else [])))
  in
  Cache.key_of_string canonical

(* Routing deliberately hashes only the program identity, not the
   options: every variant of one program (the VRS cost sweep, policy
   flips, train/ref) lands on the same primary shard, whose Pass.Store
   then serves the shared chain-prefix artifacts — the whole point of
   content-addressed sharding. *)
let route_key req =
  let kind, body = payload_kind req in
  let canonical =
    J.to_string ~indent:false
      (J.Obj
         [ ("analyzer", J.Str Version.version);
           ("kind", J.Str kind);
           ("body", J.Str body) ])
  in
  Cache.key_of_string canonical

(* --- the analysis --------------------------------------------------------- *)

(* Scale the input_scale global when the program has one (benchmarks);
   plain MiniC sources without it run as-is on both inputs. *)
let set_scale_if p input =
  if Prog.find_global p "input_scale" <> None then
    Workload.set_scale p input

let load req input =
  match req.payload with
  | Workload name -> (
    match Workload.find name with
    | w -> Workload.compile w input
    | exception Not_found -> fail "unknown workload %S" name)
  | Source src ->
    let p =
      try Ogc_minic.Minic.compile src
      with Ogc_minic.Minic.Error m -> fail "MiniC: %s" m
    in
    set_scale_if p input;
    p
  | Asm_text s ->
    let p = try Ogc_ir.Asm.parse s with Ogc_ir.Asm.Error m -> fail "asm: %s" m in
    Ogc_ir.Validate.program p;
    set_scale_if p input;
    p
  | Prog_tree j ->
    let p = Ogc_ir.Prog_json.of_json j in
    Ogc_ir.Validate.program p;
    set_scale_if p input;
    p

(* Baseline (untransformed, ungated) and optimized programs, both at the
   request's evaluation scale.  VRS mirrors the batch harness: profile
   and specialize on the train input, evaluate on the requested one.
   Transformations run as {!Ogc_pass.Pass} chains; with a [store]
   attached, requests sharing a program and differing only downstream
   (e.g. two VRS costs) reuse the common prefix artifacts — the VRP
   fixpoint and the training/value profiles — instead of recomputing
   them. *)
let build ?store ?wire req =
  match req.pass with
  | P_none ->
    let p = load req req.input in
    (Prog.copy p, p)
  | P_vrp ->
    let p = load req req.input in
    let base = Prog.copy p in
    let st, _ = Pass.run ?store "vrp,encode-widths" p in
    (base, st.Pass.prog)
  | P_vrs ->
    let p = load req Workload.Train in
    (* With a streamed profile the training runs are replaced by the
       client's observations, and the chain grows a zero-specialization
       tail — always-zero observations are exactly what [zspec] wants.
       Without one (every legacy client) the chain is byte-identical to
       what it always was. *)
    let chain =
      match wire with
      | Some _ ->
        Printf.sprintf
          "vrp,encode-widths,bb-profile,value-profile,vrs:cost=%d,zspec:cost=%d"
          req.cost req.cost
      | None ->
        Printf.sprintf "vrp,encode-widths,bb-profile,value-profile,vrs:cost=%d"
          req.cost
    in
    let st, _ = Pass.run ?store ?wire chain p in
    let p = st.Pass.prog in
    set_scale_if p req.input;
    (load req req.input, p)

let static_widths p =
  let h = Hashtbl.create 8 in
  Prog.iter_all_ins p (fun _ _ ins ->
      let w = Ogc_isa.Instr.width ins.Prog.op in
      Hashtbl.replace h w (1 + Option.value ~default:0 (Hashtbl.find_opt h w)));
  List.map
    (fun w ->
      ( Ogc_isa.Width.to_string w,
        J.Int (Option.value ~default:0 (Hashtbl.find_opt h w)) ))
    Ogc_isa.Width.all

let dynamic_widths stats =
  List.map
    (fun (w, frac) -> (Ogc_isa.Width.to_string w, J.Float frac))
    (Results.width_distribution stats)

let analyze ?store ?wire req =
  (* The spans must never influence the payload: with tracing on or off,
     with a cold or warm store, the same request yields byte-identical
     JSON (tested). *)
  let base, p =
    Span.with_ ~name:"build"
      ~args:[ ("pass", J.Str (pass_name req.pass)) ]
      (fun () -> build ?store ?wire req)
  in
  let opt_stats = Pipeline.simulate ~policy:req.policy p in
  let base_stats = Pipeline.simulate ~policy:Policy.No_gating base in
  if not (Int64.equal opt_stats.Pipeline.checksum base_stats.Pipeline.checksum)
  then
    Fmt.failwith
      "optimization changed the program's output (%Ld <> %Ld)"
      opt_stats.Pipeline.checksum base_stats.Pipeline.checksum;
  Span.with_ ~name:"energy" @@ fun () ->
  let energy = Account.total opt_stats.Pipeline.energy in
  let base_energy = Account.total base_stats.Pipeline.energy in
  let ipc = Pipeline.ipc opt_stats and base_ipc = Pipeline.ipc base_stats in
  J.Obj
    (List.concat
       [ [ ("pass", J.Str (pass_name req.pass));
           ("policy", J.Str (Policy.name req.policy));
           ("input", J.Str (input_name req.input));
           ("static_instructions", J.Int (Prog.num_static_ins p));
           ("widths",
            J.Obj
              [ ("static", J.Obj (static_widths p));
                ("dynamic", J.Obj (dynamic_widths opt_stats)) ]);
           ("instructions", J.Int opt_stats.Pipeline.instructions);
           ("cycles", J.Int opt_stats.Pipeline.cycles);
           ("ipc", J.Float ipc);
           ("baseline_ipc", J.Float base_ipc);
           ("ipc_delta", J.Float (ipc -. base_ipc));
           ("energy_nj", J.Float energy);
           ("baseline_energy_nj", J.Float base_energy);
           ("energy_saving",
            J.Float (Account.savings ~baseline:base_energy ~improved:energy));
           ("by_structure",
            J.Obj
              (List.map
                 (fun (st, e) ->
                   (Ogc_energy.Energy_params.structure_name st, J.Float e))
                 (Account.by_structure opt_stats.Pipeline.energy)));
           ("checksum", J.Str (Int64.to_string opt_stats.Pipeline.checksum)) ];
         (if req.return_program then
            [ ("program", Ogc_ir.Prog_json.to_json p) ]
          else []) ])
