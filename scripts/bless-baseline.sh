#!/bin/sh
# Re-bless the CI performance baseline (bench/baseline.json).
#
# Run this when a change *intentionally* moves a gated metric: modelled
# energy/IPC of a (workload, binary version) cell, the VRP fixpoint
# visit counts, or analyze wall time.  The collection runs with exactly
# the flags CI's regression-diff step uses, so the blessed file and the
# gate always compare like with like (quick mode, micro benches
# skipped).  After blessing, the self-diff below must come back clean —
# visit counts are deterministic, and wall times compare against
# themselves — so a dirty diff here means collection itself is
# non-deterministic, which is a bug worth reporting, not blessing.
#
# Review `git diff bench/baseline.json` before committing: energy/IPC
# and visit-count deltas should all be explained by the change you are
# blessing.  See TESTING.md ("Re-blessing the performance baseline").
set -eu
cd "$(dirname "$0")/.."

dune exec bench/main.exe -- \
  --quick --jobs 0 --skip-micro --json bench/baseline.json

echo "bless-baseline: verifying the fresh baseline self-diffs clean"
dune exec bench/main.exe -- \
  --quick --jobs 0 --skip-micro \
  --baseline bench/baseline.json --max-regression 5.0 \
  --max-time-regression 200.0

echo "bless-baseline: done — review 'git diff bench/baseline.json'"
