open Ogc_isa

type t =
  | No_gating
  | Software
  | Hw_significance
  | Hw_size
  | Sw_plus_significance
  | Sw_plus_size

let all =
  [ No_gating; Software; Hw_significance; Hw_size; Sw_plus_significance;
    Sw_plus_size ]

let name = function
  | No_gating -> "none"
  | Software -> "sw"
  | Hw_significance -> "hw-significance"
  | Hw_size -> "hw-size"
  | Sw_plus_significance -> "sw+significance"
  | Sw_plus_size -> "sw+size"

let active_bytes policy ~width ~value =
  match policy with
  | No_gating -> 8
  | Software -> Width.bytes width
  | Hw_significance -> Sigbytes.significant_bytes value
  | Hw_size -> Sigbytes.size_class (Sigbytes.significant_bytes value)
  | Sw_plus_significance ->
    min (Width.bytes width) (Sigbytes.significant_bytes value)
  | Sw_plus_size ->
    min (Width.bytes width)
      (Sigbytes.size_class (Sigbytes.significant_bytes value))

let tag_bits = function
  | No_gating | Software -> 0
  | Hw_significance -> Sigbytes.significance_tag_bits
  | Hw_size -> Sigbytes.size_tag_bits
  | Sw_plus_significance | Sw_plus_size -> Sigbytes.size_tag_bits

let memory_tag_bits = function
  | No_gating -> 0
  | Software -> 2 (* §2.4 approach (1): two size bits per cached value *)
  | Hw_significance -> Sigbytes.significance_tag_bits
  | Hw_size -> Sigbytes.size_tag_bits
  | Sw_plus_significance | Sw_plus_size -> Sigbytes.size_tag_bits

let uses_software_widths = function
  | Software | Sw_plus_significance | Sw_plus_size -> true
  | No_gating | Hw_significance | Hw_size -> false
