module J = Ogc_json.Json

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* Registration assigns every counter/histogram a fixed run of cells
   ([slot .. slot+ncells-1]) inside a per-domain flat [float array] (the
   shard).  The hot path is: atomic flag load, [Domain.DLS.get], array
   add — no lock.  A shard is written only by threads of its own domain;
   within a domain the read-modify-write is not atomic across systhread
   preemption, which can drop a count under heavy thread interleaving —
   an accepted monitoring-grade trade for a lock-free hot path.  Scrapes
   read foreign shards without synchronisation; word-sized float loads
   are untearable on every platform OCaml 5 targets. *)

type kind = Kcounter | Kgauge of int Atomic.t | Khist of float array

type metric = {
  name : string;
  labels : (string * string) list;
  kind : kind;
  slot : int; (* -1 for gauges: they live in their own atomic *)
  ncells : int; (* counter: 1; histogram: buckets + overflow + sum *)
}

type counter = metric
type gauge = metric
type histogram = metric

let reg_m = Mutex.create ()
let metrics : metric list ref = ref [] (* newest first *)
let next_slot = ref 0

type shard = { mutable cells : float array }

(* Shards of dead domains stay registered so their counts survive into
   later scrapes (pool workers are short-lived relative to the scrape). *)
let shards : shard list ref = ref []

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
    Mutex.lock reg_m;
    let s = { cells = Array.make (max 1 !next_slot) 0.0 } in
    shards := s :: !shards;
    Mutex.unlock reg_m;
    s)

(* Slow path: this shard predates a later registration.  Growing under
   [reg_m] keeps capacity monotone; a concurrent scrape may read the old
   array and miss the in-flight addition, which a later scrape sees. *)
let grow s slot =
  Mutex.lock reg_m;
  if slot >= Array.length s.cells then begin
    let bigger = Array.make (max (slot + 1) !next_slot) 0.0 in
    Array.blit s.cells 0 bigger 0 (Array.length s.cells);
    s.cells <- bigger
  end;
  Mutex.unlock reg_m

let bump s slot v =
  if slot >= Array.length s.cells then grow s slot;
  s.cells.(slot) <- s.cells.(slot) +. v

let register name labels kind ncells =
  Mutex.lock reg_m;
  let slot =
    if ncells = 0 then -1
    else begin
      let s = !next_slot in
      next_slot := s + ncells;
      s
    end
  in
  let m = { name; labels; kind; slot; ncells } in
  metrics := m :: !metrics;
  Mutex.unlock reg_m;
  m

let counter ?(labels = []) name = register name labels Kcounter 1
let gauge ?(labels = []) name = register name labels (Kgauge (Atomic.make 0)) 0

(* 100µs .. 100s: wide enough for both per-job pool latencies and whole
   ref-input analysis requests. *)
let default_buckets =
  [| 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 0.01; 0.025; 0.05; 0.1;
     0.25; 0.5; 1.; 2.5; 5.; 10.; 30.; 100. |]

let histogram ?(labels = []) ?(buckets = default_buckets) name =
  let n = Array.length buckets in
  if n = 0 then invalid_arg "Metrics.histogram: no buckets";
  for i = 1 to n - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Metrics.histogram: buckets must be strictly increasing"
  done;
  register name labels (Khist buckets) (n + 2)

let add c v = if enabled () then bump (Domain.DLS.get shard_key) c.slot v
let incr c = add c 1.0

let gauge_set g v =
  match g.kind with Kgauge a -> Atomic.set a v | Kcounter | Khist _ -> ()

let gauge_add g d =
  match g.kind with
  | Kgauge a -> ignore (Atomic.fetch_and_add a d)
  | Kcounter | Khist _ -> ()

let observe h v =
  if enabled () then begin
    match h.kind with
    | Khist buckets ->
      let n = Array.length buckets in
      let rec first_le i =
        if i >= n then n (* overflow *)
        else if v <= buckets.(i) then i
        else first_le (i + 1)
      in
      let s = Domain.DLS.get shard_key in
      bump s (h.slot + first_le 0) 1.0;
      bump s (h.slot + n + 1) v
    | Kcounter | Kgauge _ -> ()
  end

(* --- scrape side ---------------------------------------------------------- *)

let all_shards () =
  Mutex.lock reg_m;
  let l = !shards in
  Mutex.unlock reg_m;
  l

let merged_cells m =
  let acc = Array.make (max 1 m.ncells) 0.0 in
  List.iter
    (fun s ->
      let cells = s.cells in
      for i = 0 to m.ncells - 1 do
        let idx = m.slot + i in
        if idx < Array.length cells then acc.(i) <- acc.(i) +. cells.(idx)
      done)
    (all_shards ());
  acc

let counter_value c = (merged_cells c).(0)

let gauge_value g =
  match g.kind with Kgauge a -> Atomic.get a | Kcounter | Khist _ -> 0

let hist_buckets h =
  match h.kind with Khist b -> b | Kcounter | Kgauge _ -> [||]

let histogram_counts h =
  let n = Array.length (hist_buckets h) in
  let acc = merged_cells h in
  (Array.sub acc 0 (n + 1), acc.(n + 1))

let histogram_shards h =
  let n = Array.length (hist_buckets h) in
  List.filter_map
    (fun s ->
      let cells = s.cells in
      if h.slot + n + 1 >= Array.length cells then None
      else begin
        let counts = Array.sub cells h.slot (n + 1) in
        if Array.exists (fun c -> c <> 0.0) counts then Some counts else None
      end)
    (all_shards ())

let fmt_le u =
  if Float.is_integer u && Float.abs u < 1e15 then Printf.sprintf "%.1f" u
  else Printf.sprintf "%g" u

(* Running cumulative counts, [cum.(i) = Σ counts.(0..i)].  Precomputed
   as data so the renderers below stay order-of-evaluation agnostic. *)
let cumulative counts =
  let cum = Array.make (Array.length counts) 0.0 in
  let run = ref 0.0 in
  Array.iteri
    (fun i c ->
      run := !run +. c;
      cum.(i) <- !run)
    counts;
  cum

let histogram_json h =
  let buckets = hist_buckets h in
  let counts, sum = histogram_counts h in
  let n = Array.length buckets in
  let cum = cumulative counts in
  let bucket_json i le = J.Obj [ ("le", le); ("n", J.Float cum.(i)) ] in
  let finite = List.init n (fun i -> bucket_json i (J.Float buckets.(i))) in
  let inf = bucket_json n (J.Str "+Inf") in
  J.Obj
    [ ("count", J.Float cum.(n)); ("sum", J.Float sum);
      ("buckets", J.Arr (finite @ [ inf ])) ]

let registered () = List.rev !metrics

let value_json m =
  match m.kind with
  | Kcounter -> J.Float (counter_value m)
  | Kgauge a -> J.Int (Atomic.get a)
  | Khist _ -> histogram_json m

let snapshot () =
  List.map (fun m -> (m.name, m.labels, value_json m)) (registered ())

let fmt_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let labels_str = function
  | [] -> ""
  | ls ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) ls)
    ^ "}"

let prometheus_lines m =
  let base = m.labels in
  match m.kind with
  | Kcounter ->
    [ Printf.sprintf "%s%s %s" m.name (labels_str base)
        (fmt_num (counter_value m)) ]
  | Kgauge a ->
    [ Printf.sprintf "%s%s %d" m.name (labels_str base) (Atomic.get a) ]
  | Khist buckets ->
    let counts, sum = histogram_counts m in
    let n = Array.length buckets in
    let cum = cumulative counts in
    let bucket i le =
      Printf.sprintf "%s_bucket%s %s" m.name
        (labels_str (base @ [ ("le", le) ]))
        (fmt_num cum.(i))
    in
    List.init n (fun i -> bucket i (fmt_le buckets.(i)))
    @ [ bucket n "+Inf";
        Printf.sprintf "%s_sum%s %s" m.name (labels_str base) (fmt_num sum);
        Printf.sprintf "%s_count%s %s" m.name (labels_str base)
          (fmt_num cum.(n)) ]

(* Prometheus requires all samples of one metric name to be contiguous;
   group by name in first-registration order. *)
let group_by_name ms =
  let seen = Hashtbl.create 16 in
  let names =
    List.filter
      (fun m ->
        if Hashtbl.mem seen m.name then false
        else begin
          Hashtbl.add seen m.name ();
          true
        end)
      ms
  in
  List.map
    (fun first -> List.filter (fun m -> m.name = first.name) ms)
    names

let to_prometheus () =
  let groups = group_by_name (registered ()) in
  String.concat ""
    (List.map
       (fun group ->
         String.concat ""
           (List.map
              (fun m ->
                String.concat ""
                  (List.map (fun l -> l ^ "\n") (prometheus_lines m)))
              group))
       groups)

let kind_str = function
  | Kcounter -> "counter"
  | Kgauge _ -> "gauge"
  | Khist _ -> "histogram"

let to_json () =
  J.Arr
    (List.map
       (fun m ->
         J.Obj
           [ ("name", J.Str m.name);
             ("labels", J.Obj (List.map (fun (k, v) -> (k, J.Str v)) m.labels));
             ("type", J.Str (kind_str m.kind));
             ("value", value_json m) ])
       (registered ()))

(* --- percentiles ---------------------------------------------------------- *)

(* Nearest-rank on a sorted sample window (server/router stats). *)
let percentile_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(int_of_float ((q *. float_of_int (n - 1)) +. 0.5))

(* Percentile by linear interpolation inside the histogram bucket where
   the cumulative count crosses the target; observations past the last
   finite bound report that bound (a floor, never an overestimate).
   [before]/[after] are {!histogram_counts} snapshots bracketing the
   interval of interest. *)
let percentile_of_counts ~buckets ~before ~after q =
  let d = Array.mapi (fun i a -> a -. before.(i)) after in
  let total = Array.fold_left ( +. ) 0.0 d in
  if total <= 0.0 then 0.0
  else begin
    let target = q *. total in
    let n_finite = Array.length buckets in
    let rec go i cum =
      if i >= Array.length d then buckets.(n_finite - 1)
      else if cum +. d.(i) >= target then
        if i >= n_finite then buckets.(n_finite - 1)
        else begin
          let lo = if i = 0 then 0.0 else buckets.(i - 1) in
          let hi = buckets.(i) in
          let frac = if d.(i) <= 0.0 then 1.0 else (target -. cum) /. d.(i) in
          lo +. (frac *. (hi -. lo))
        end
      else go (i + 1) (cum +. d.(i))
    in
    go 0 0.0
  end

let reset () =
  Mutex.lock reg_m;
  List.iter (fun s -> Array.fill s.cells 0 (Array.length s.cells) 0.0) !shards;
  List.iter
    (fun m -> match m.kind with Kgauge a -> Atomic.set a 0 | _ -> ())
    !metrics;
  Mutex.unlock reg_m
