(* Streamed execution profiles (the `profile` protocol op).

   A client that ran a program it previously submitted can stream back
   what it observed: basic-block execution counts, TNV-style
   (value, count) observations per instruction, and instructions whose
   produced value was zero every time it was sampled.  The server
   accumulates these into one profile per program; profile-dependent
   passes then consume the accumulated profile instead of running the
   training interpreter.

   Instruction ids refer to the program as submitted (the deterministic
   compiler gives identical ids for identical sources); basic-block
   counts are keyed by function name and indexed by block label.  The
   JSON shape below serves both client deltas and accumulated
   snapshots; values are carried as decimal strings so full-width
   int64s survive the 63-bit JSON integer. *)

module Interp = Ogc_ir.Interp
module J = Ogc_json.Json

type t = {
  mutable p_epoch : int;  (* 0 = no profile pushed yet *)
  p_bb : Interp.bb_counts;
  mutable p_total : int;  (* total dynamic instructions behind [p_bb] *)
  p_values : (int, (int64 * int) list) Hashtbl.t;
  p_zeros : (int, int) Hashtbl.t;  (* iid -> always-zero observations *)
}

let create () =
  {
    p_epoch = 0;
    p_bb = Hashtbl.create 16;
    p_total = 0;
    p_values = Hashtbl.create 16;
    p_zeros = Hashtbl.create 16;
  }

let epoch t = t.p_epoch

(* Deep copy: chains hold onto the profile they were run with, so the
   store's accumulator must not alias what a request consumes. *)
let copy t =
  let bb = Hashtbl.create (Hashtbl.length t.p_bb) in
  Hashtbl.iter (fun fn a -> Hashtbl.replace bb fn (Array.copy a)) t.p_bb;
  {
    p_epoch = t.p_epoch;
    p_bb = bb;
    p_total = t.p_total;
    p_values = Hashtbl.copy t.p_values;
    p_zeros = Hashtbl.copy t.p_zeros;
  }

(* Combine duplicate values and order like {!Ogc_core.Tnv.entries}:
   descending count, ascending value. *)
let aggregate entries =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v, c) ->
      if c > 0 then
        Hashtbl.replace tbl v (c + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
    entries;
  Hashtbl.fold (fun v c acc -> (v, c) :: acc) tbl []
  |> List.sort (fun (v1, a) (v2, b) ->
         match Int.compare b a with 0 -> Int64.compare v1 v2 | c -> c)

(* Per-candidate observations for {!Ogc_core.Vrs.analyze}'s [values]
   input, with the always-zero table folded in as (0, count) entries. *)
let values_table t =
  let out = Hashtbl.create (Hashtbl.length t.p_values) in
  Hashtbl.iter (fun iid es -> Hashtbl.replace out iid es) t.p_values;
  Hashtbl.iter
    (fun iid n ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt out iid) in
      Hashtbl.replace out iid (aggregate ((0L, n) :: cur)))
    t.p_zeros;
  out

(* Accumulate [delta] into [dst] (counts add; the epoch is the store's
   concern, not touched here). *)
let merge_into dst delta =
  Hashtbl.iter
    (fun fn (counts : int array) ->
      match Hashtbl.find_opt dst.p_bb fn with
      | None -> Hashtbl.replace dst.p_bb fn (Array.copy counts)
      | Some cur ->
        if Array.length counts > Array.length cur then begin
          let grown = Array.make (Array.length counts) 0 in
          Array.blit cur 0 grown 0 (Array.length cur);
          Array.iteri (fun i c -> grown.(i) <- grown.(i) + c) counts;
          Hashtbl.replace dst.p_bb fn grown
        end
        else Array.iteri (fun i c -> cur.(i) <- cur.(i) + c) counts)
    delta.p_bb;
  dst.p_total <- dst.p_total + delta.p_total;
  Hashtbl.iter
    (fun iid es ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt dst.p_values iid) in
      Hashtbl.replace dst.p_values iid (aggregate (es @ cur)))
    delta.p_values;
  Hashtbl.iter
    (fun iid n ->
      Hashtbl.replace dst.p_zeros iid
        (n + Option.value ~default:0 (Hashtbl.find_opt dst.p_zeros iid)))
    delta.p_zeros

(* --- wire codec ------------------------------------------------------------ *)

let to_json t =
  let bb =
    Hashtbl.fold (fun fn counts acc -> (fn, counts) :: acc) t.p_bb []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (fn, counts) ->
           J.Obj
             [ ("fn", J.Str fn);
               ("counts",
                J.Arr (Array.to_list (Array.map (fun c -> J.Int c) counts))) ])
  in
  let values =
    Hashtbl.fold (fun iid es acc -> (iid, es) :: acc) t.p_values []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map (fun (iid, es) ->
           J.Obj
             [ ("iid", J.Int iid);
               ("entries",
                J.Arr
                  (List.map
                     (fun (v, c) ->
                       J.Arr [ J.Str (Int64.to_string v); J.Int c ])
                     (aggregate es))) ])
  in
  let zeros =
    Hashtbl.fold (fun iid n acc -> (iid, n) :: acc) t.p_zeros []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map (fun (iid, n) -> J.Arr [ J.Int iid; J.Int n ])
  in
  J.Obj
    [ ("epoch", J.Int t.p_epoch);
      ("total_dyn", J.Int t.p_total);
      ("bb", J.Arr bb);
      ("values", J.Arr values);
      ("zeros", J.Arr zeros) ]

exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let of_json j =
  let t = create () in
  (match J.member "epoch" j with
  | J.Int e when e >= 0 -> t.p_epoch <- e
  | J.Null -> ()
  | _ -> fail "epoch: expected a non-negative integer");
  (match J.member "total_dyn" j with
  | J.Int n when n >= 0 -> t.p_total <- n
  | J.Null -> ()
  | _ -> fail "total_dyn: expected a non-negative integer");
  (match J.member "bb" j with
  | J.Arr items ->
    List.iter
      (fun item ->
        match (J.member "fn" item, J.member "counts" item) with
        | J.Str fn, J.Arr cs ->
          let counts =
            Array.of_list
              (List.map
                 (function
                   | J.Int c when c >= 0 -> c
                   | _ -> fail "bb counts: expected non-negative integers")
                 cs)
          in
          Hashtbl.replace t.p_bb fn counts
        | _ -> fail "bb: expected {fn, counts} objects")
      items
  | J.Null -> ()
  | _ -> fail "bb: expected an array");
  (match J.member "values" j with
  | J.Arr items ->
    List.iter
      (fun item ->
        match (J.member "iid" item, J.member "entries" item) with
        | J.Int iid, J.Arr es when iid >= 0 ->
          let entries =
            List.map
              (function
                | J.Arr [ J.Str v; J.Int c ] when c >= 0 -> (
                  match Int64.of_string_opt v with
                  | Some v -> (v, c)
                  | None -> fail "values: bad int64 %S" v)
                | _ -> fail "values: expected [value, count] pairs")
              es
          in
          Hashtbl.replace t.p_values iid (aggregate entries)
        | _ -> fail "values: expected {iid, entries} objects")
      items
  | J.Null -> ()
  | _ -> fail "values: expected an array");
  (match J.member "zeros" j with
  | J.Arr items ->
    List.iter
      (function
        | J.Arr [ J.Int iid; J.Int n ] when iid >= 0 && n >= 0 ->
          Hashtbl.replace t.p_zeros iid
            (n + Option.value ~default:0 (Hashtbl.find_opt t.p_zeros iid))
        | _ -> fail "zeros: expected [iid, count] pairs")
      items
  | J.Null -> ()
  | _ -> fail "zeros: expected an array");
  t
