lib/energy/account.ml: Array Energy_params List
