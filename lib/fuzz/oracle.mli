(** The differential oracle: every optimization chain must be invisible.

    The paper's safety claim is that VRP re-encoding and VRS
    specialization are semantics-preserving (§3, §4): every narrowed
    width and every guarded clone must produce bit-identical observable
    behaviour.  The oracle checks exactly that, program by program: run
    the reference interpreter on the pristine program, then run every
    transform on a private copy and require

    - structural well-formedness ({!Ogc_ir.Validate.program});
    - calling-convention conformance ({!Ogc_ir.Welldef}): when the
      input program reads only defined registers, so must the
      transformed one (a transform introducing a read of a clobbered
      register is a miscompile even when the output happens to match);
    - an identical observable outcome: [emit] checksum and emitted
      stream, with faults never introduced. *)

open Ogc_ir

(** A named program transformation under test.  [t_apply] receives a
    private copy of the program and returns the transformed program
    (usually the same value, mutated in place). *)
type transform = { t_name : string; t_apply : Prog.t -> Prog.t }

val of_chain : string -> transform
(** A {!Ogc_pass.Pass} chain spec, e.g. ["cleanup,vrp,encode-widths"].
    Raises [Failure] on malformed specs (at construction time). *)

val default_transforms : transform list
(** The standing gate: cleanup alone, VRP (default and conventional)
    with re-encoding, constprop, and the full VRS pipeline at the
    paper's 30/50/110 guard costs. *)

val chain_pool : string list
(** Pass specs {!random_chain} draws from. *)

val random_chain : Random.State.t -> string
(** A random 1-4 element chain over {!chain_pool}; same state, same
    chain. *)

val injected_width_bug : transform
(** A deliberately buggy transform — VRP re-encoding followed by an
    extra, unjustified one-step narrowing of every ALU add/sub/mul/
    logical instruction — used to prove the oracle catches real
    width-narrowing miscompiles and to exercise the shrinker. *)

(** One disagreement between the baseline and a transform. *)
type diff = { d_chain : string; d_detail : string }

type result =
  | Skipped of string
      (** the {e baseline} faulted (step budget, bad memory); nothing
          can be compared *)
  | Checked of diff list  (** empty means every transform agreed *)

val interp_config : Interp.config
(** Default execution budget for fuzzing: 2M dynamic instructions. *)

val check : ?config:Interp.config -> transforms:transform list -> Prog.t -> result
(** [check ~transforms p] never mutates [p]; transforms run on copies.
    Diffs come back in [transforms] order, at most one per transform. *)
