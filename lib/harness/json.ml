(* The JSON tree moved to lib/json (ogc_json) so that lower layers —
   lib/ir's program serialization and the lib/server wire protocol — can
   use it without depending on the harness.  This alias keeps every
   existing [Ogc_harness.Json] reference working. *)
include Ogc_json.Json
