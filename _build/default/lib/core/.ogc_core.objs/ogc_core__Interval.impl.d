lib/core/interval.ml: Fmt Format Instr Int64 Ogc_isa Width
