(* The fuzzing subsystem itself: campaign determinism (same seed, same
   verdicts, independent of worker count), a clean bill on main for a
   small campaign, and the self-test loop — the injected width bug must
   be caught and the shrinker must reduce its witness to a handful of
   instructions. *)

module Fuzz = Ogc_fuzz.Fuzz
module Oracle = Ogc_fuzz.Oracle
module Gen_ir = Ogc_fuzz.Gen_ir
module Prog = Ogc_ir.Prog
module Asm = Ogc_ir.Asm

let fingerprint (s : Fuzz.summary) =
  ( (s.Fuzz.s_minic, s.s_ir, s.s_skipped, s.s_chains),
    List.map
      (fun (f : Fuzz.failure) -> (f.Fuzz.f_index, f.f_chain, f.f_detail))
      s.Fuzz.s_failures,
    s.Fuzz.s_gen_errors )

let test_deterministic_across_jobs () =
  let a = Fuzz.run ~jobs:1 ~seed:11 ~count:9 () in
  let b = Fuzz.run ~jobs:2 ~seed:11 ~count:9 () in
  if fingerprint a <> fingerprint b then
    Alcotest.fail "same seed, different verdicts under jobs=1 vs jobs=2"

let test_main_is_clean () =
  let s = Fuzz.run ~jobs:2 ~seed:7 ~count:12 () in
  (match s.Fuzz.s_gen_errors with
  | [] -> ()
  | (i, msg) :: _ -> Alcotest.failf "program %d failed to generate: %s" i msg);
  match s.Fuzz.s_failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "program %d, chain %s: %s" f.Fuzz.f_index f.f_chain
      f.f_detail

let test_injected_bug_caught_and_shrunk () =
  let s = Fuzz.run ~jobs:1 ~inject:true ~shrink:true ~seed:5 ~count:1 () in
  match s.Fuzz.s_failures with
  | [] -> Alcotest.fail "the injected width bug went undetected"
  | fs ->
    List.iter
      (fun (f : Fuzz.failure) ->
        Alcotest.(check string)
          "only the buggy transform may diff" Oracle.injected_width_bug.t_name
          f.Fuzz.f_chain;
        match f.Fuzz.f_min with
        | None -> Alcotest.fail "shrinking was requested but not performed"
        | Some q ->
          let n = Prog.num_static_ins q in
          if n > 10 then
            Alcotest.failf
              "shrinker left %d instructions; want a <=10-instruction \
               counterexample"
              n)
      fs

(* Raw-IR generation round-trips through the assembly syntax (the
   corpus depends on this: counterexamples are stored as .s files). *)
let prop_gen_ir_roundtrips =
  QCheck.Test.make ~name:"generated raw IR round-trips through Asm" ~count:30
    Gen_ir.arbitrary_program (fun p ->
      let q = Asm.parse (Asm.to_string p) in
      Ogc_ir.Validate.program q;
      Ogc_ir.Welldef.program q;
      Prog.num_static_ins q = Prog.num_static_ins p)

let () =
  Alcotest.run "fuzz"
    [
      ( "campaign",
        [
          Alcotest.test_case "deterministic across jobs" `Quick
            test_deterministic_across_jobs;
          Alcotest.test_case "main has no diffs" `Quick test_main_is_clean;
          Alcotest.test_case "injected bug caught and shrunk" `Quick
            test_injected_bug_caught_and_shrunk;
        ] );
      ( "generator",
        [ QCheck_alcotest.to_alcotest prop_gen_ir_roundtrips ] );
    ]
