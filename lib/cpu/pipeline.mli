(** Trace-driven out-of-order timing and energy model.

    The reference interpreter supplies the committed dynamic instruction
    stream; the pipeline model replays it against the Table 2 machine:
    4-wide in-order fetch through a real I-cache and combined branch
    predictor (mispredictions stall the front end until the branch
    resolves), in-order dispatch limited by the 64-entry window, dataflow
    issue limited by issue width and functional units, D-cache/L2/memory
    latencies for loads, and 4-wide in-order commit.

    Known approximations (documented in DESIGN.md): wrong-path fetch
    energy is not modelled (the trace holds committed instructions only);
    loads do not stall on unresolved store addresses (no memory
    disambiguation conflicts); returns are predicted perfectly (RAS).

    Energy is accounted per structure with the active-byte count decided
    by the {!Ogc_gating.Policy}: opcode widths for software gating,
    per-value significance for the hardware schemes. *)

open Ogc_isa
open Ogc_ir

(** How narrow values are kept in the data cache (paper §2.4): with two
    size-tag bits per value (the paper's choice, more energy benefit), or
    sign-extended to full width at the cache boundary (no cache-side
    gating, no tag overhead). *)
type memory_mode = Tagged | Sign_extend

type stats = {
  cycles : int;
  instructions : int;  (** committed, terminators included *)
  branches : int;
  mispredictions : int;
  icache_misses : int;
  dcache_accesses : int;
  dcache_misses : int;
  l2_misses : int;
  energy : Ogc_energy.Account.t;
  class_width : (Instr.iclass * Width.t, int) Hashtbl.t;
      (** committed instructions per class and encoded width *)
  opcode_counts : (int, int) Hashtbl.t;
      (** committed instructions per numeric opcode
          (see {!Ogc_isa.Encoding}); used by the §4.3 opcode-extension
          accounting *)
  sigbyte_histogram : int array;
      (** index 0..7 = result values needing 1..8 significant bytes *)
  checksum : int64;  (** from the functional run, for cross-checking *)
}

val simulate :
  ?machine:Machine_config.t ->
  ?params:Ogc_energy.Energy_params.t ->
  ?interp_config:Interp.config ->
  ?memory_mode:memory_mode ->
  ?spill_bytes_of:(int -> int option) ->
  policy:Ogc_gating.Policy.t ->
  Prog.t ->
  stats
(** [memory_mode] defaults to [Tagged].

    [spill_bytes_of iid] identifies register-allocator spill
    loads/stores by instruction id and returns their slot width in
    bytes.  A spill access moves exactly that many bytes regardless of
    policy (the allocator proved the value fits), and its bytes are
    additionally recorded in the account's
    {!Ogc_energy.Account.spill_traffic} counter.  Defaults to
    [fun _ -> None] (no instruction is a spill). *)

(** [ipc stats] = instructions / cycles. *)
val ipc : stats -> float
