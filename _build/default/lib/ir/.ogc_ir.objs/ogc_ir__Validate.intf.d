lib/ir/validate.mli: Prog
