lib/workloads/workload.mli: Ogc_ir
