(* Tests for the hardware operand-gating support: significant-byte math
   and gating policies. *)

module Sigbytes = Ogc_gating.Sigbytes
module Policy = Ogc_gating.Policy
open Ogc_isa

let test_sigbytes () =
  Alcotest.(check int) "0" 1 (Sigbytes.significant_bytes 0L);
  Alcotest.(check int) "1" 1 (Sigbytes.significant_bytes 1L);
  Alcotest.(check int) "-1" 1 (Sigbytes.significant_bytes (-1L));
  Alcotest.(check int) "127" 1 (Sigbytes.significant_bytes 127L);
  Alcotest.(check int) "255 (zext)" 1 (Sigbytes.significant_bytes 255L);
  Alcotest.(check int) "256" 2 (Sigbytes.significant_bytes 256L);
  Alcotest.(check int) "-129" 2 (Sigbytes.significant_bytes (-129L));
  Alcotest.(check int) "65535" 2 (Sigbytes.significant_bytes 65535L);
  Alcotest.(check int) "2^32-1" 4 (Sigbytes.significant_bytes 0xFFFF_FFFFL);
  Alcotest.(check int) "2^33" 5 (Sigbytes.significant_bytes 0x2_0000_0000L);
  Alcotest.(check int) "min_int" 8 (Sigbytes.significant_bytes Int64.min_int)

let test_size_class () =
  Alcotest.(check int) "1" 1 (Sigbytes.size_class 1);
  Alcotest.(check int) "2" 2 (Sigbytes.size_class 2);
  Alcotest.(check int) "3" 5 (Sigbytes.size_class 3);
  Alcotest.(check int) "5" 5 (Sigbytes.size_class 5);
  Alcotest.(check int) "6" 8 (Sigbytes.size_class 6);
  Alcotest.(check int) "8" 8 (Sigbytes.size_class 8)

let test_policies () =
  let v = 300L in
  (* 2 significant bytes *)
  Alcotest.(check int) "none" 8
    (Policy.active_bytes Policy.No_gating ~width:Width.W8 ~value:v);
  Alcotest.(check int) "software uses opcode width" 4
    (Policy.active_bytes Policy.Software ~width:Width.W32 ~value:v);
  Alcotest.(check int) "significance uses the value" 2
    (Policy.active_bytes Policy.Hw_significance ~width:Width.W64 ~value:v);
  Alcotest.(check int) "size rounds to {1,2,5,8}" 2
    (Policy.active_bytes Policy.Hw_size ~width:Width.W64 ~value:v);
  Alcotest.(check int) "size rounds 3 -> 5" 5
    (Policy.active_bytes Policy.Hw_size ~width:Width.W64 ~value:0x10_0000L);
  Alcotest.(check int) "cooperative takes the min" 2
    (Policy.active_bytes Policy.Sw_plus_significance ~width:Width.W32 ~value:v);
  Alcotest.(check int) "cooperative capped by opcode" 1
    (Policy.active_bytes Policy.Sw_plus_size ~width:Width.W8 ~value:v)

let test_tags () =
  Alcotest.(check int) "none" 0 (Policy.tag_bits Policy.No_gating);
  Alcotest.(check int) "software" 0 (Policy.tag_bits Policy.Software);
  Alcotest.(check int) "significance" 7 (Policy.tag_bits Policy.Hw_significance);
  Alcotest.(check int) "size" 2 (Policy.tag_bits Policy.Hw_size);
  Alcotest.(check int) "cooperative" 2 (Policy.tag_bits Policy.Sw_plus_size);
  Alcotest.(check bool) "sw binary needed" true
    (Policy.uses_software_widths Policy.Sw_plus_size);
  Alcotest.(check bool) "hw-only runs the baseline" false
    (Policy.uses_software_widths Policy.Hw_size)

let prop_sigbytes_roundtrip =
  QCheck.Test.make ~name:"significant bytes reconstruct the value" ~count:5000
    QCheck.int64 (fun v ->
      let k = Sigbytes.significant_bytes v in
      let shift = 64 - (8 * k) in
      if k = 8 then true
      else
        let sext = Int64.shift_right (Int64.shift_left v shift) shift in
        let zext = Int64.shift_right_logical (Int64.shift_left v shift) shift in
        Int64.equal sext v || Int64.equal zext v)

let prop_sigbytes_minimal =
  QCheck.Test.make ~name:"significant bytes are minimal" ~count:5000
    QCheck.int64 (fun v ->
      let k = Sigbytes.significant_bytes v in
      k = 1
      ||
      let k' = k - 1 in
      let shift = 64 - (8 * k') in
      let sext = Int64.shift_right (Int64.shift_left v shift) shift in
      let zext = Int64.shift_right_logical (Int64.shift_left v shift) shift in
      (not (Int64.equal sext v)) && not (Int64.equal zext v))

(* The software policy's byte-width tags must agree with the energy
   accounting in Savings_table: re-encoding to a width with fewer active
   bytes never costs energy, the table is antisymmetric with a zero
   diagonal, and the paper's Table 1 layout exposes exactly the same
   numbers. *)
module Savings_table = Ogc_core.Savings_table

let width_pair = QCheck.(pair (oneofl Width.all) (oneofl Width.all))

let prop_savings_diag_and_antisym =
  QCheck.Test.make
    ~name:"savings: zero diagonal, widen = -narrow" ~count:100 width_pair
    (fun (a, b) ->
      let t = Savings_table.default in
      let s_ab = Savings_table.saving t ~from_:a ~to_:b in
      let s_ba = Savings_table.saving t ~from_:b ~to_:a in
      if Width.equal a b then Float.equal s_ab 0.0
      else Float.equal s_ab (-.s_ba))

let prop_savings_match_tags =
  QCheck.Test.make
    ~name:"fewer software-tagged bytes never costs energy" ~count:100
    QCheck.(pair width_pair int64)
    (fun ((from_, to_), v) ->
      let t = Savings_table.default in
      let active w = Policy.active_bytes Policy.Software ~width:w ~value:v in
      let s = Savings_table.saving t ~from_ ~to_ in
      if active to_ < active from_ then s >= 0.0
      else if active to_ > active from_ then s <= 0.0
      else Float.equal s 0.0)

let prop_matrix_is_saving =
  QCheck.Test.make ~name:"Table 1 matrix equals saving" ~count:20
    QCheck.unit (fun () ->
      let t = Savings_table.default in
      List.for_all
        (fun (to_, row) ->
          List.for_all
            (fun (from_, cell) ->
              Float.equal cell (Savings_table.saving t ~from_ ~to_))
            row)
        (Savings_table.matrix t))

let prop_software_tags_cover_value =
  QCheck.Test.make
    ~name:"software width tags cover the significant bytes" ~count:2000
    QCheck.(pair int64 (oneofl Width.all))
    (fun (v, w) ->
      (* When the value is recoverable from width [w] (the invariant VRP
         maintains for every software width tag), gating to the tag must
         keep every significant byte active. *)
      QCheck.assume (Int64.equal (Width.truncate v w) v);
      Sigbytes.significant_bytes v
      <= Policy.active_bytes Policy.Software ~width:w ~value:v)

let prop_policy_bounds =
  QCheck.Test.make ~name:"active bytes in [1,8] and monotone vs none"
    ~count:2000
    QCheck.(pair int64 (oneofl Width.all))
    (fun (v, w) ->
      List.for_all
        (fun p ->
          let b = Policy.active_bytes p ~width:w ~value:v in
          b >= 1 && b <= 8)
        Policy.all)

let () =
  Alcotest.run "gating"
    [
      ( "unit",
        [
          Alcotest.test_case "significant bytes" `Quick test_sigbytes;
          Alcotest.test_case "size classes" `Quick test_size_class;
          Alcotest.test_case "policies" `Quick test_policies;
          Alcotest.test_case "tags" `Quick test_tags;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sigbytes_roundtrip; prop_sigbytes_minimal; prop_policy_bounds ]
      );
      ( "savings",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_savings_diag_and_antisym;
            prop_savings_match_tags;
            prop_matrix_is_saving;
            prop_software_tags_cover_value;
          ] );
    ]
