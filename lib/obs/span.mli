(** Span-based phase tracing in the Chrome [trace_event] format.

    [with_ ~name f] records a begin event, runs [f], and records the
    matching end event (also on exception), into a per-thread ring
    buffer — so tracing inside {!Ogc_exec.Pool} workers, server
    connection threads and the main thread never contends beyond a
    per-ring mutex held for one array write.  {!export}/{!write} merge
    every ring into a single [{"traceEvents": [...]}] JSON document that
    {{:https://ui.perfetto.dev}Perfetto} and [chrome://tracing] load
    directly: each thread renders as a track, spans nest into a flame
    chart.

    Distributed tracing: every span gets a process-unique {e span id}
    (in its begin args), and an ambient per-thread {!ctx} — a trace id
    plus the innermost enclosing span id — flows through {!with_}, so a
    span opened under [with_context] records [trace_id]/[parent_span]
    and rebinds the ambient parent to itself for its children.  Flow
    events ({!flow_out}/{!flow_in}) draw Perfetto arrows between spans
    on different threads — or, after {!merge_processes}, different
    processes.

    Disabled by default: [with_] is then an atomic load, a branch and a
    tail call of [f].  Timestamps are microseconds relative to the
    moment tracing was last enabled. *)

val set_enabled : bool -> unit
(** Enabling (re)starts the trace clock; it does not clear events
    already recorded ({!reset} does). *)

val enabled : unit -> bool

val with_ : ?args:(string * Ogc_json.Json.t) list -> name:string ->
  (unit -> 'a) -> 'a
(** Run the thunk inside a [B]/[E] event pair.  [args] lands on the
    begin event and shows in the Perfetto detail pane, together with the
    span's [span_id] and — under an ambient context — [trace_id] and
    [parent_span]. *)

val instant : ?args:(string * Ogc_json.Json.t) list -> string -> unit
(** A zero-duration marker ([ph = "i"], thread scope). *)

(** {1 Trace context} *)

type ctx = { trace : string; parent : int }
(** A distributed-trace coordinate: the fleet-wide trace id and the span
    id of the innermost enclosing span ([parent] of the next span
    opened). *)

val current : unit -> ctx option
(** The calling thread's ambient context, if any. *)

val set_context : ctx option -> unit
(** Install (or clear) the calling thread's ambient context.  Prefer
    {!with_context}, which restores the previous value. *)

val with_context : ctx option -> (unit -> 'a) -> 'a
(** Run the thunk under the given ambient context, restoring the
    previous one afterwards (also on exception). *)

val fresh_id : unit -> int
(** Next process-unique span id — for code that needs to name a span id
    before opening the span (the router labels each shard attempt's wire
    context this way). *)

val flow_out : id:int -> unit
(** Emit a flow-start ([ph = "s"]) bound to the enclosing slice. *)

val flow_in : id:int -> unit
(** Emit a flow-finish ([ph = "f"], [bp = "e"]) bound to the enclosing
    slice; Perfetto draws the arrow from the matching {!flow_out}. *)

val wire_flow_id : trace:string -> parent:int -> int
(** Flow id for a cross-process edge, derived only from wire-visible
    data — both ends compute the same id from the request's
    [trace_id]/[parent_span] members without sharing a counter. *)

val local_flow_id : unit -> int
(** Fresh flow id for an in-process handoff (pool submit → worker),
    salted with the pid so merged multi-process documents cannot
    collide. *)

(** {1 Export} *)

val export : unit -> Ogc_json.Json.t
(** [{"traceEvents": [...]; "displayTimeUnit": "ms"; "dropped_events": n}]
    — thread-name metadata first, then every recorded event in timestamp
    order.  Rings hold the most recent 32768 events per thread; older
    events are overwritten, counted by [ogc_span_dropped_total] and the
    [dropped_events] field. *)

val dropped_events : unit -> int
(** Events overwritten so far across all rings (Σ max 0 (total − cap)). *)

val trace_slice : string -> Ogc_json.Json.t
(** All local [B]/[E] events belonging to the given trace id, timestamp
    ordered — the process-local slice of one distributed request, sized
    for inlining into a slow-request log line. *)

val merge_processes : (string * Ogc_json.Json.t) list -> Ogc_json.Json.t
(** Merge per-process {!export} documents into one fleet trace: process
    [i] is re-keyed to pid [i+1] with a [process_name] metadata track
    named by its label; [dropped_events] sums. *)

val write : string -> unit
(** Compact {!export} to a file. *)

val reset : unit -> unit
(** Drop all recorded events and ambient contexts (tests only). *)
