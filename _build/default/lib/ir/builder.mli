(** Incremental construction of a {!Prog.func}.

    Blocks are created with {!new_block}, filled with {!ins}, and closed
    with {!terminate}; instruction ids are drawn from a caller-supplied
    counter so they stay unique across a whole program build. *)



type t

val create : fresh_iid:(unit -> int) -> fname:string -> arity:int -> t

(** [new_block t] allocates the next block label (the first call returns
    the entry label). *)
val new_block : t -> Label.t

(** [switch_to t l] makes [l] the block receiving subsequent {!ins}.
    A block may only be filled once. *)
val switch_to : t -> Label.t -> unit

(** [ins t i] appends [i] to the current block and returns its iid. *)
val ins : t -> Ogc_isa.Instr.t -> int

(** [terminate t term] closes the current block; no current block remains
    until the next {!switch_to}. *)
val terminate : t -> Prog.terminator -> unit

val current_label : t -> Label.t
(** Raises [Invalid_argument] when no block is being filled. *)

(** [finish t ~frame_size] checks every allocated block was terminated and
    builds the function. *)
val finish : t -> frame_size:int -> Prog.func
