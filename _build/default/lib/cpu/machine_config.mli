(** Machine parameters — the paper's Table 2. *)

type cache_geometry = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
}

type t = {
  fetch_width : int;
  decode_width : int;
  issue_width : int;
  retire_width : int;
  window_size : int;  (** max in-flight instructions *)
  phys_regs : int;
  int_alus : int;
  int_muldiv : int;
  frontend_depth : int;  (** fetch-to-dispatch stages *)
  icache : cache_geometry;
  icache_hit : int;
  icache_miss_penalty : int;
  dcache : cache_geometry;
  dcache_hit : int;
  dcache_miss_penalty : int;  (** L1 miss, L2 hit: extra cycles *)
  l2 : cache_geometry;
  l2_hit : int;
  memory_latency : int;  (** L2 miss: first-chunk cycles *)
  mispredict_penalty : int;  (** front-end refill after redirect *)
  (* branch predictor *)
  gshare_entries : int;
  gshare_history : int;
  bimodal_entries : int;
  chooser_entries : int;
  mul_latency : int;
  div_latency : int;
}

val default : t
(** The Table 2 configuration: 4-wide fetch/decode/issue/retire, 64-entry
    window, 96 physical registers, 3 integer ALUs + 1 mul/div, 64KB 2-way
    L1 caches (32B lines, 1-cycle hit, 6-cycle miss penalty), 256KB 4-way
    L2 (64B lines, 6-cycle hit), 16+2-cycle memory, combined predictor
    (64K-counter gshare with 16-bit history, 2K-entry bimodal, 1K-entry
    chooser). *)

(** Sensitivity-study variants (beyond the paper): a 2-wide machine with
    half the window/units, and an 8-wide machine with double.  Cache and
    predictor geometry stay at the Table 2 values so the comparison
    isolates issue width. *)
val narrow2 : t

val wide8 : t

val rows : t -> (string * string) list
(** Human-readable parameter table for reports. *)
