examples/energy_explorer.ml: Array Format List Ogc_core Ogc_cpu Ogc_energy Ogc_gating Ogc_harness Ogc_workloads Printf String Sys
