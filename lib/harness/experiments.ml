open Ogc_isa
module Ep = Ogc_energy.Energy_params
module Savings_table = Ogc_core.Savings_table

type experiment = {
  id : string;
  title : string;
  render : Results.t -> string;
}

let widths_desc = [ Width.W64; Width.W32; Width.W16; Width.W8 ]
let buf_render f = let b = Buffer.create 1024 in f b; Buffer.contents b


(* Per-benchmark row + AVG row for a list of (config name, selector). *)
let per_benchmark_table (t : Results.t) configs =
  let header = "Benchmark" :: List.map fst configs in
  let rows =
    List.map
      (fun (w : Results.wres) ->
        w.wname :: List.map (fun (_, f) -> Render.pct (f w)) configs)
      t.workloads
  in
  let avg =
    "AVG" :: List.map (fun (_, f) -> Render.pct (Results.mean t f)) configs
  in
  Render.table ~header (rows @ [ avg ])

(* --- Table 1 --------------------------------------------------------------- *)

let table1 _ =
  let tbl = Savings_table.default in
  let header =
    "Dest \\ Source" :: List.map (fun w -> Width.to_string w ^ "b") widths_desc
  in
  let rows =
    List.map
      (fun (dst, cols) ->
        (Width.to_string dst ^ "b")
        :: List.map
             (fun (src, v) ->
               if Width.equal src dst then "-" else Printf.sprintf "%.2f" v)
             cols)
      (Savings_table.matrix tbl)
  in
  "Energy savings for ALU operations (nJ) by source width (columns) and\n\
   destination width (rows), derived from the energy model as the paper\n\
   derived its Table 1 from Wattch measurements.\n\n"
  ^ Render.table ~header rows

(* --- Table 2 --------------------------------------------------------------- *)

let table2 _ =
  let rows =
    List.map (fun (k, v) -> [ k; v ]) (Ogc_cpu.Machine_config.rows Ogc_cpu.Machine_config.default)
  in
  Render.table ~header:[ "Parameter"; "Configuration" ] rows

(* --- Table 3 --------------------------------------------------------------- *)

(* The §4.3 analysis around Table 3: which width-variant opcodes must be
   added to the Alpha ISA, and how much of the dynamic instruction stream
   they cover. *)
let opcode_extensions (t : Results.t) =
  let counts = Hashtbl.create 128 in
  let total = ref 0 in
  List.iter
    (fun (w : Results.wres) ->
      Hashtbl.iter
        (fun op n ->
          total := !total + n;
          Hashtbl.replace counts op
            (n + Option.value ~default:0 (Hashtbl.find_opt counts op)))
        w.Results.vrp_sw.Ogc_cpu.Pipeline.opcode_counts)
    t.workloads;
  let extensions =
    Hashtbl.fold
      (fun op n acc ->
        if Ogc_isa.Encoding.base_alpha (Ogc_isa.Encoding.opcode_of_int op) then acc
        else (op, n) :: acc)
      counts []
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  in
  let ext_total = List.fold_left (fun a (_, n) -> a + n) 0 extensions in
  let rows =
    List.filteri (fun i _ -> i < 14) extensions
    |> List.map (fun (op, n) ->
           [ Ogc_isa.Encoding.mnemonic (Ogc_isa.Encoding.opcode_of_int op);
             Render.pct (float_of_int n /. float_of_int (max 1 !total)) ])
  in
  Printf.sprintf
    "\nRequired opcode extensions (§4.3): %d width-variant opcodes beyond\n\
     the base Alpha set are executed, covering %s of the dynamic stream.\n\
     The most frequent:\n\n"
    (List.length extensions)
    (Render.pct (float_of_int ext_total /. float_of_int (max 1 !total)))
  ^ Render.table ~header:[ "Opcode"; "% of run-time instrs" ] rows

let table3 (t : Results.t) =
  let rows =
    List.map
      (fun (ic, share, per_width) ->
        Instr.iclass_name ic
        :: Render.pct share
        :: List.map (fun w -> Render.pct (List.assoc w per_width)) widths_desc)
      (Results.class_table t (fun w -> w.Results.vrp_sw))
  in
  "Distribution of operation types (dynamic, averaged over the suite,\n\
   widths assigned by the proposed VRP).\n\n"
  ^ Render.table
      ~header:("Type" :: "% of run-time instrs"
               :: List.map (fun w -> Width.to_string w ^ "b") widths_desc)
      rows
  ^ opcode_extensions t

(* --- Figure 2 --------------------------------------------------------------- *)

let dist_row label dist =
  label
  :: List.map (fun w -> Render.pct (List.assoc w dist)) [ Width.W8; Width.W16; Width.W32; Width.W64 ]

let fig2 (t : Results.t) =
  let conv = Results.average_distribution t (fun w -> w.Results.vrpconv_sw) in
  let prop = Results.average_distribution t (fun w -> w.Results.vrp_sw) in
  "Dynamic instruction distribution according to value-range width\n\
   (average over the suite).\n\n"
  ^ Render.table
      ~header:[ "Mechanism"; "8 bits"; "16 bits"; "32 bits"; "64 bits" ]
      [ dist_row "Conventional VRP" conv; dist_row "Proposed VRP" prop ]

(* --- Figure 3 --------------------------------------------------------------- *)

let fig3_structures =
  [ Ep.Iq; Ep.Rename_buffers; Ep.Lsq; Ep.Regfile; Ep.Dcache1; Ep.Alu;
    Ep.Resultbus ]

let overall_saving metric (t : Results.t) select =
  Results.mean t (fun w -> metric w ~improved:(select w))

let fig3 (t : Results.t) =
  let rows =
    List.map
      (fun s ->
        let v =
          Results.mean t (fun w ->
              Results.structure_saving w ~improved:w.Results.vrp_sw s)
        in
        [ Ep.structure_name s; Render.pct v; Render.bar v ~scale:0.25 ~width:32 ])
      fig3_structures
    @ [ (let v = overall_saving Results.energy_saving t (fun w -> w.Results.vrp_sw) in
         [ "Processor"; Render.pct v; Render.bar v ~scale:0.25 ~width:32 ]) ]
  in
  "Energy savings with VRP, per processor structure (average).\n\n"
  ^ Render.table ~header:[ "Processor part"; "Saving"; "" ] rows

(* --- Figure 4 --------------------------------------------------------------- *)

let outcome_counts (rep : Results.vrs_summary) =
  (rep.Results.points_specialized, rep.Results.points_dependent,
   rep.Results.points_no_benefit)

let report50 (w : Results.wres) =
  match List.assoc_opt 50 w.vrs_reports with
  | Some r -> r
  | None -> snd (List.hd w.vrs_reports)

let fig4 (t : Results.t) =
  let rows =
    List.map
      (fun (w : Results.wres) ->
        let rep = report50 w in
        let s, d, n = outcome_counts rep in
        let tot = max 1 (s + d + n) in
        let p x = Render.pct (float_of_int x /. float_of_int tot) in
        [ w.wname; string_of_int (s + d + n); p s; p d; p n ])
      t.workloads
  in
  let ts, td, tn =
    List.fold_left
      (fun (a, b, c) (w : Results.wres) ->
        let s, d, n = outcome_counts (report50 w) in
        (a + s, b + d, c + n))
      (0, 0, 0) t.workloads
  in
  let tot = max 1 (ts + td + tn) in
  let p x = Render.pct (float_of_int x /. float_of_int tot) in
  "Distribution of the points profiled, by specialization outcome\n\
   (VRS 50 configuration).\n\n"
  ^ Render.table
      ~header:[ "Benchmark"; "points"; "specialized"; "dependent"; "no benefit" ]
      (rows @ [ [ "Total"; string_of_int tot; p ts; p td; p tn ] ])

(* --- Figure 5 --------------------------------------------------------------- *)

let fig5 (t : Results.t) =
  let rows =
    List.map
      (fun (w : Results.wres) ->
        let rep = report50 w in
        let cloned = max rep.Results.static_cloned 0 in
        let elim = rep.Results.static_eliminated in
        let denom = float_of_int (max 1 cloned) in
        [ w.wname; string_of_int cloned;
          Render.pct (float_of_int (cloned - elim) /. denom);
          Render.pct (float_of_int elim /. denom) ])
      t.workloads
  in
  "Distribution of the specialized static instructions at compile time\n\
   (VRS 50): fraction kept (re-encoded) vs eliminated by constant\n\
   propagation in the specialized regions.\n\n"
  ^ Render.table
      ~header:[ "Benchmark"; "cloned instrs"; "specialized"; "eliminated" ]
      rows

(* --- Figure 6 --------------------------------------------------------------- *)

let fig6 (t : Results.t) =
  let rows =
    List.map
      (fun (w : Results.wres) ->
        [ w.wname; Render.pct w.vrs50_spec_frac; Render.pct w.vrs50_guard_frac ])
      t.workloads
  in
  let avg =
    [ "AVG";
      Render.pct (Results.mean t (fun w -> w.Results.vrs50_spec_frac));
      Render.pct (Results.mean t (fun w -> w.Results.vrs50_guard_frac)) ]
  in
  "Run-time distribution of specialized instructions (VRS 50): fraction\n\
   of committed instructions inside specialized regions, and fraction\n\
   spent on specialization comparisons.\n\n"
  ^ Render.table
      ~header:[ "Benchmark"; "specialized instrs"; "specialization comparisons" ]
      (rows @ [ avg ])

(* --- Figure 7 --------------------------------------------------------------- *)

let vrs_at label (w : Results.wres) =
  match List.assoc_opt label w.vrs with
  | Some s -> s
  | None -> snd (List.hd w.vrs)

let fig7 (t : Results.t) =
  let non = Results.average_distribution t (fun w -> w.Results.base_none) in
  let vrp = Results.average_distribution t (fun w -> w.Results.vrp_sw) in
  let vrs = Results.average_distribution t (vrs_at 50) in
  "Run-time instructions according to width (average over the suite).\n\n"
  ^ Render.table
      ~header:[ "Mechanism"; "8 bits"; "16 bits"; "32 bits"; "64 bits" ]
      [ dist_row "non" non; dist_row "VRP" vrp; dist_row "VRS 50" vrs ]

(* --- Figure 8 --------------------------------------------------------------- *)

let vrs_configs =
  List.map
    (fun l ->
      (Printf.sprintf "VRS %dnJ" l, fun (w : Results.wres) -> vrs_at l w))
    Results.vrs_costs

let fig8 (t : Results.t) =
  let configs =
    ("VRP", fun (w : Results.wres) -> w.Results.vrp_sw) :: vrs_configs
  in
  "Energy savings for the suite (vs the ungated baseline).\n\n"
  ^ per_benchmark_table t
      (List.map
         (fun (n, sel) ->
           (n, fun w -> Results.energy_saving w ~improved:(sel w)))
         configs)

(* --- Figure 9 --------------------------------------------------------------- *)

let fig9_structures =
  [ Ep.Rename; Ep.Bpred; Ep.Iq; Ep.Rob; Ep.Rename_buffers; Ep.Lsq; Ep.Regfile;
    Ep.Icache; Ep.Dcache1; Ep.Dcache2; Ep.Alu; Ep.Resultbus ]

let fig9 (t : Results.t) =
  let configs =
    ("VRP", fun (w : Results.wres) -> w.Results.vrp_sw) :: vrs_configs
  in
  let header = "Processor part" :: List.map fst configs in
  let rows =
    List.map
      (fun s ->
        Ep.structure_name s
        :: List.map
             (fun (_, sel) ->
               Render.pct
                 (Results.mean t (fun w ->
                      Results.structure_saving w ~improved:(sel w) s)))
             configs)
      fig9_structures
    @ [ "Processor"
        :: List.map
             (fun (_, sel) ->
               Render.pct
                 (Results.mean t (fun w ->
                      Results.energy_saving w ~improved:(sel w))))
             configs ]
  in
  "Energy benefits for the different parts of the processor (average).\n\n"
  ^ Render.table ~header rows

(* --- Figure 10 -------------------------------------------------------------- *)

let fig10 (t : Results.t) =
  "Execution-time savings of VRS (vs baseline; VRP does not change\n\
   the instruction stream, so its saving is zero by construction).\n\n"
  ^ per_benchmark_table t
      (List.map
         (fun (n, sel) -> (n, fun w -> Results.time_saving w ~improved:(sel w)))
         vrs_configs)

(* --- Figure 11 -------------------------------------------------------------- *)

let fig11 (t : Results.t) =
  let configs =
    ("VRP", fun (w : Results.wres) -> w.Results.vrp_sw) :: vrs_configs
  in
  "Energy-delay^2 benefits for the suite.\n\n"
  ^ per_benchmark_table t
      (List.map
         (fun (n, sel) -> (n, fun w -> Results.ed2_saving w ~improved:(sel w)))
         configs)

(* --- Figure 12 -------------------------------------------------------------- *)

let fig12 (t : Results.t) =
  let hist = Array.make 8 0 in
  List.iter
    (fun (w : Results.wres) ->
      Array.iteri
        (fun i n -> hist.(i) <- hist.(i) + n)
        w.base_none.Ogc_cpu.Pipeline.sigbyte_histogram)
    t.workloads;
  let total = float_of_int (max 1 (Array.fold_left ( + ) 0 hist)) in
  let rows =
    List.init 8 (fun i ->
        let f = float_of_int hist.(i) /. total in
        [ string_of_int (i + 1); Render.pct f; Render.bar f ~scale:0.5 ~width:40 ])
  in
  "Data size distribution (significant bytes of committed result\n\
   values, baseline binaries).\n\n"
  ^ Render.table ~header:[ "Size in bytes"; "Occurrence"; "" ] rows

(* --- Figure 13 -------------------------------------------------------------- *)

let fig13 (t : Results.t) =
  "Energy savings of the hardware approaches (vs ungated baseline).\n\n"
  ^ per_benchmark_table t
      [ ("size compression",
         fun w -> Results.energy_saving w ~improved:w.Results.base_hwsize);
        ("significance compression",
         fun w -> Results.energy_saving w ~improved:w.Results.base_hwsig) ]

(* --- Figure 14 -------------------------------------------------------------- *)

let fig14 (t : Results.t) =
  let configs =
    [ ("size compression", fun (w : Results.wres) -> w.Results.base_hwsize);
      ("significance compression", fun (w : Results.wres) -> w.Results.base_hwsig) ]
  in
  let rows =
    List.map
      (fun s ->
        Ep.structure_name s
        :: List.map
             (fun (_, sel) ->
               Render.pct
                 (Results.mean t (fun w ->
                      Results.structure_saving w ~improved:(sel w) s)))
             configs)
      fig9_structures
    @ [ "Processor"
        :: List.map
             (fun (_, sel) ->
               Render.pct
                 (Results.mean t (fun w ->
                      Results.energy_saving w ~improved:(sel w))))
             configs ]
  in
  "Energy savings of the hardware schemes per processor part (average).\n\n"
  ^ Render.table ~header:("Processor part" :: List.map fst configs) rows

(* --- Figure 15 -------------------------------------------------------------- *)

let fig15_configs =
  [ ("VRP", fun (w : Results.wres) -> w.Results.vrp_sw);
    ("VRS 50", vrs_at 50);
    ("hdw size", fun w -> w.Results.base_hwsize);
    ("hdw signif", fun w -> w.Results.base_hwsig);
    ("VRP+size", fun w -> w.Results.vrp_size);
    ("VRP+signif", fun w -> w.Results.vrp_sig);
    ("VRS50+size", fun w -> w.Results.vrs50_size);
    ("VRS50+signif", fun w -> w.Results.vrs50_sig) ]

let fig15 (t : Results.t) =
  "Energy-delay^2 savings for the hardware, software and cooperative\n\
   configurations.\n\n"
  ^ per_benchmark_table t
      (List.map
         (fun (n, sel) -> (n, fun w -> Results.ed2_saving w ~improved:(sel w)))
         fig15_configs)

(* --- registry ---------------------------------------------------------------- *)

let all =
  [
    { id = "table1"; title = "Table 1: energy savings for ALU operations";
      render = table1 };
    { id = "table2"; title = "Table 2: machine parameters"; render = table2 };
    { id = "table3"; title = "Table 3: distribution of operation types";
      render = table3 };
    { id = "fig2"; title = "Figure 2: conventional vs proposed VRP widths";
      render = fig2 };
    { id = "fig3"; title = "Figure 3: energy savings with VRP"; render = fig3 };
    { id = "fig4"; title = "Figure 4: profiled points after specialization";
      render = fig4 };
    { id = "fig5"; title = "Figure 5: static specialized instructions";
      render = fig5 };
    { id = "fig6"; title = "Figure 6: run-time specialized instructions";
      render = fig6 };
    { id = "fig7"; title = "Figure 7: run-time widths by mechanism";
      render = fig7 };
    { id = "fig8"; title = "Figure 8: energy savings"; render = fig8 };
    { id = "fig9"; title = "Figure 9: energy benefits per processor part";
      render = fig9 };
    { id = "fig10"; title = "Figure 10: execution time savings"; render = fig10 };
    { id = "fig11"; title = "Figure 11: energy-delay^2 benefits"; render = fig11 };
    { id = "fig12"; title = "Figure 12: data size distribution"; render = fig12 };
    { id = "fig13"; title = "Figure 13: energy savings, hardware approaches";
      render = fig13 };
    { id = "fig14"; title = "Figure 14: hardware savings per processor part";
      render = fig14 };
    { id = "fig15"; title = "Figure 15: energy-delay^2, hw/sw configurations";
      render = fig15 };
  ]

let find id = List.find (fun e -> String.equal e.id id) all

let render_all t =
  buf_render (fun b ->
      List.iter
        (fun e ->
          Buffer.add_string b (Render.heading e.title);
          Buffer.add_string b (e.render t);
          Buffer.add_char b '\n')
        all)

type headline = {
  vrp_energy : float;
  vrp_ed2 : float;
  vrs_energy : float;
  vrs_ed2 : float;
  hw_significance_ed2 : float;
  combined_ed2 : float;
}

let headline (t : Results.t) =
  {
    vrp_energy = overall_saving Results.energy_saving t (fun w -> w.Results.vrp_sw);
    vrp_ed2 = overall_saving Results.ed2_saving t (fun w -> w.Results.vrp_sw);
    vrs_energy = overall_saving Results.energy_saving t (vrs_at 50);
    vrs_ed2 = overall_saving Results.ed2_saving t (vrs_at 50);
    hw_significance_ed2 =
      overall_saving Results.ed2_saving t (fun w -> w.Results.base_hwsig);
    combined_ed2 =
      overall_saving Results.ed2_saving t (fun w -> w.Results.vrs50_sig);
  }

let render_headline h =
  Render.table
    ~header:[ "Headline metric"; "paper"; "measured" ]
    [
      [ "VRP energy saving"; "~6%"; Render.pct h.vrp_energy ];
      [ "VRP energy-delay^2 saving"; "~5%"; Render.pct h.vrp_ed2 ];
      [ "VRS energy saving"; "~9%"; Render.pct h.vrs_energy ];
      [ "VRS energy-delay^2 saving"; "~14-15%"; Render.pct h.vrs_ed2 ];
      [ "HW significance ED^2 saving"; "~15%"; Render.pct h.hw_significance_ed2 ];
      [ "Cooperative SW+HW ED^2 saving"; "~28%"; Render.pct h.combined_ed2 ];
    ]
