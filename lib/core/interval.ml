open Ogc_isa

type t = { lo : int64; hi : int64 }

let v lo hi =
  if Int64.compare lo hi > 0 then
    Fmt.invalid_arg "Interval.v %Ld %Ld" lo hi;
  { lo; hi }

let top = { lo = Int64.min_int; hi = Int64.max_int }
let const c = { lo = c; hi = c }
let bool = { lo = 0L; hi = 1L }

let is_const i = if Int64.equal i.lo i.hi then Some i.lo else None
let equal a b = Int64.equal a.lo b.lo && Int64.equal a.hi b.hi
let contains i x = Int64.compare i.lo x <= 0 && Int64.compare x i.hi <= 0
let subset a b = Int64.compare b.lo a.lo <= 0 && Int64.compare a.hi b.hi <= 0

let full w = { lo = Width.min_value w; hi = Width.max_value w }

let unsigned_max = function
  | Width.W8 -> 255L
  | Width.W16 -> 65535L
  | Width.W32 -> 0xFFFF_FFFFL
  | Width.W64 -> Int64.max_int

let zero_extended w =
  match w with Width.W64 -> top | _ -> { lo = 0L; hi = unsigned_max w }

let join a b =
  { lo = (if Int64.compare a.lo b.lo <= 0 then a.lo else b.lo);
    hi = (if Int64.compare a.hi b.hi >= 0 then a.hi else b.hi) }

let meet a b =
  let lo = if Int64.compare a.lo b.lo >= 0 then a.lo else b.lo in
  let hi = if Int64.compare a.hi b.hi <= 0 then a.hi else b.hi in
  if Int64.compare lo hi <= 0 then Some { lo; hi } else None

let width i = Width.needed_range i.lo i.hi

let width_unsigned i =
  if Int64.compare i.lo 0L < 0 then Width.W64 else Width.needed_unsigned i.hi

(* --- checked int64 arithmetic ------------------------------------------- *)

let add_ovf a b =
  let s = Int64.add a b in
  (* Overflow iff both operands share a sign the sum does not. *)
  if Int64.logand (Int64.logxor a s) (Int64.logxor b s) < 0L then None
  else Some s

let sub_ovf a b =
  let s = Int64.sub a b in
  if Int64.logand (Int64.logxor a b) (Int64.logxor a s) < 0L then None
  else Some s

let mul_ovf a b =
  if Int64.equal a 0L || Int64.equal b 0L then Some 0L
  else if Int64.equal a (-1L) then
    if Int64.equal b Int64.min_int then None else Some (Int64.neg b)
  else if Int64.equal b (-1L) then
    if Int64.equal a Int64.min_int then None else Some (Int64.neg a)
  else
    let p = Int64.mul a b in
    if Int64.equal (Int64.div p a) b && Int64.equal (Int64.rem p a) 0L then
      Some p
    else None

let shl_ovf a s =
  if s < 0 || s > 63 then None
  else if Int64.equal a 0L then Some 0L
  else
    let r = Int64.shift_left a s in
    if Int64.equal (Int64.shift_right r s) a then Some r else None

(* --- forward transfers --------------------------------------------------- *)

(* Conservative input adjustment for a width-[w] operation: if the interval
   does not fit the signed range of [w], the truncated value is arbitrary. *)
let clamp w i = if subset i (full w) then i else full w

(* Ideal two's-complement result: exact when representable both in int64
   and in the operating width, otherwise the full wrapped range. *)
let fit w = function
  | Some lo, Some hi when subset { lo; hi } (full w) -> { lo; hi }
  | _ -> full w

let forward_add w a b =
  let a = clamp w a and b = clamp w b in
  fit w (add_ovf a.lo b.lo, add_ovf a.hi b.hi)

let forward_sub w a b =
  let a = clamp w a and b = clamp w b in
  fit w (sub_ovf a.lo b.hi, sub_ovf a.hi b.lo)

let min4 a b c d = min (min a b) (min c d)
let max4 a b c d = max (max a b) (max c d)

let forward_mul w a b =
  let a = clamp w a and b = clamp w b in
  match
    (mul_ovf a.lo b.lo, mul_ovf a.lo b.hi, mul_ovf a.hi b.lo, mul_ovf a.hi b.hi)
  with
  | Some p1, Some p2, Some p3, Some p4 ->
    fit w (Some (min4 p1 p2 p3 p4), Some (max4 p1 p2 p3 p4))
  | _ -> full w

let abs_bound i =
  (* max |x| over the interval; None when it would overflow (min_int). *)
  if Int64.equal i.lo Int64.min_int then None
  else Some (max (Int64.abs i.lo) (Int64.abs i.hi))

(* The ISA's division is total and trap-free: x/0 = 0, and min_int / -1
   wraps (to min_int for Div, 0 for Rem) — see Instr.eval_alu.  The
   int64 corner evaluations below must never hit the host's trapping
   min_int / -1. *)
let sdiv x y =
  if Int64.equal x Int64.min_int && Int64.equal y (-1L) then Int64.min_int
  else Int64.div x y

(* Four-corner evaluation over the sign-split divisor range.  x/y is
   monotone in x for a fixed-sign y and monotone in y away from zero, so
   on each zero-free divisor subrange the extrema are at the corners.
   The one non-monotone point is the min_int / -1 wrap: when the
   dividend may be min_int and the (negative) divisor subrange reaches
   -1, that subrange contributes the full width-w range instead.  For
   sub-64-bit widths [fit] catches the corresponding 2^(w-1) overflow. *)
let forward_div w a b =
  let a = clamp w a and b = clamp w b in
  let acc = ref None in
  let add lo hi =
    acc := Some (match !acc with None -> { lo; hi } | Some r -> join r { lo; hi })
  in
  let corners y_lo y_hi =
    let c1 = sdiv a.lo y_lo and c2 = sdiv a.lo y_hi in
    let c3 = sdiv a.hi y_lo and c4 = sdiv a.hi y_hi in
    add (min4 c1 c2 c3 c4) (max4 c1 c2 c3 c4)
  in
  let bp_lo = if Int64.compare b.lo 1L > 0 then b.lo else 1L in
  if Int64.compare bp_lo b.hi <= 0 then corners bp_lo b.hi;
  if contains b 0L then add 0L 0L;
  let bn_hi = if Int64.compare b.hi (-1L) < 0 then b.hi else -1L in
  if Int64.compare b.lo bn_hi <= 0 then
    if Int64.equal a.lo Int64.min_int && Int64.equal bn_hi (-1L) then
      add (full w).lo (full w).hi
    else corners b.lo bn_hi;
  match !acc with
  | None -> const 0L (* unreachable: b is non-empty *)
  | Some r -> fit w (Some r.lo, Some r.hi)

let forward_rem w a b =
  let a = clamp w a and b = clamp w b in
  let same_quotient c =
    (* x rem c = x - (x/c)*c is exact and monotone in x while the
       truncated quotient stays constant over the dividend range. *)
    let q = sdiv a.lo c in
    if Int64.equal q (sdiv a.hi c) then begin
      let base = Int64.mul q c in
      Some { lo = Int64.sub a.lo base; hi = Int64.sub a.hi base }
    end
    else None
  in
  let by_magnitude () =
    match abs_bound b with
    | None -> full w
    | Some 0L -> const 0L
    | Some k ->
      let k1 = Int64.sub k 1L in
      let lo = if Int64.compare a.lo 0L >= 0 then 0L else max a.lo (Int64.neg k1) in
      let hi = if Int64.compare a.hi 0L <= 0 then 0L else min a.hi k1 in
      { lo; hi }
  in
  match is_const b with
  | Some 0L -> const 0L (* x rem 0 = 0 in this ISA *)
  | Some c when Int64.equal c 1L || Int64.equal c (-1L) -> const 0L
  | Some c when not (Int64.equal a.lo Int64.min_int) || Int64.compare c 0L > 0
    -> (
    match same_quotient c with Some r -> r | None -> by_magnitude ())
  | _ -> by_magnitude ()

(* Smallest [2^k - 1] covering a non-negative value. *)
let pow2_mask_above x =
  let rec go m = if Int64.compare m x >= 0 then m else go (Int64.add (Int64.mul m 2L) 1L) in
  if Int64.compare x 0L < 0 then invalid_arg "pow2_mask_above"
  else if Int64.compare x 0x3FFF_FFFF_FFFF_FFFFL > 0 then Int64.max_int
  else go 0L

let forward_and w a b =
  let a = clamp w a and b = clamp w b in
  (* AND with all-ones is the identity (the BIC/AND move idioms). *)
  if equal b (const (-1L)) then a
  else if equal a (const (-1L)) then b
  else
    let nonneg i = Int64.compare i.lo 0L >= 0 in
    if nonneg a && nonneg b then { lo = 0L; hi = min a.hi b.hi }
    else if nonneg a then { lo = 0L; hi = a.hi }
    else if nonneg b then { lo = 0L; hi = b.hi }
    else full w

let forward_or w a b =
  let a = clamp w a and b = clamp w b in
  (* OR with zero is the register-move idiom; keep it exact so ranges do
     not widen through moves. *)
  if equal b (const 0L) then a
  else if equal a (const 0L) then b
  else if Int64.compare a.lo 0L >= 0 && Int64.compare b.lo 0L >= 0 then
    { lo = max a.lo b.lo; hi = pow2_mask_above (max a.hi b.hi) }
  else full w

let forward_xor w a b =
  let a = clamp w a and b = clamp w b in
  if equal b (const 0L) then a
  else if equal a (const 0L) then b
  else if Int64.compare a.lo 0L >= 0 && Int64.compare b.lo 0L >= 0 then
    { lo = 0L; hi = pow2_mask_above (max a.hi b.hi) }
  else full w

let forward_bic w a b =
  let a = clamp w a and b = clamp w b in
  ignore b;
  if Int64.compare a.lo 0L >= 0 then { lo = 0L; hi = a.hi } else full w

let shift_range b =
  (* The hardware uses the low 6 bits of the amount; only a range already
     within [0, 63] is predictable. *)
  if Int64.compare b.lo 0L >= 0 && Int64.compare b.hi 63L <= 0 then
    Some (Int64.to_int b.lo, Int64.to_int b.hi)
  else None

let forward_sll w a b =
  let a = clamp w a in
  match shift_range b with
  | None -> full w
  | Some (s1, s2) -> (
    match (shl_ovf a.lo s1, shl_ovf a.lo s2, shl_ovf a.hi s1, shl_ovf a.hi s2) with
    | Some c1, Some c2, Some c3, Some c4 ->
      fit w (Some (min4 c1 c2 c3 c4), Some (max4 c1 c2 c3 c4))
    | _ -> full w)

let forward_srl w a b =
  let a0 = clamp w a in
  (* The largest w-bit unsigned pattern shifted right by [s >= 1]; for W64
     the pattern 2^64-1 does not fit int64, but its shift does. *)
  let top_shifted s =
    match w with
    | Width.W64 -> Int64.shift_right_logical (-1L) s
    | _ -> Int64.shift_right_logical (unsigned_max w) s
  in
  match shift_range b with
  | None -> full w
  | Some (s1, _) ->
    let shifted smin =
      if smin >= 1 then { lo = 0L; hi = top_shifted smin } else a0
    in
    if s1 >= 1 then shifted s1
    else join a0 (shifted 1) (* amount may be 0 (identity) or >= 1 *)

let forward_sra w a b =
  let a = clamp w a in
  match shift_range b with
  | None -> full w
  | Some (s1, s2) ->
    let c1 = Int64.shift_right a.lo s1
    and c2 = Int64.shift_right a.lo s2
    and c3 = Int64.shift_right a.hi s1
    and c4 = Int64.shift_right a.hi s2 in
    { lo = min4 c1 c2 c3 c4; hi = max4 c1 c2 c3 c4 }

let forward_alu op w a b =
  match op with
  | Instr.Add -> forward_add w a b
  | Instr.Sub -> forward_sub w a b
  | Instr.Mul -> forward_mul w a b
  | Instr.Div -> forward_div w a b
  | Instr.Rem -> forward_rem w a b
  | Instr.And -> forward_and w a b
  | Instr.Or -> forward_or w a b
  | Instr.Xor -> forward_xor w a b
  | Instr.Bic -> forward_bic w a b
  | Instr.Sll -> forward_sll w a b
  | Instr.Srl -> forward_srl w a b
  | Instr.Sra -> forward_sra w a b

let forward_cmp = bool

let forward_cmp_op op w a b =
  let exact =
    subset a (full w) && subset b (full w)
    && (match op with
       | Instr.Ceq | Instr.Clt | Instr.Cle -> true
       | Instr.Cult | Instr.Cule ->
         Int64.compare a.lo 0L >= 0 && Int64.compare b.lo 0L >= 0)
  in
  if not exact then bool
  else
    match op with
    | Instr.Ceq ->
      if Int64.equal a.lo a.hi && Int64.equal b.lo b.hi && Int64.equal a.lo b.lo
      then const 1L
      else if meet a b = None then const 0L
      else bool
    | Instr.Clt | Instr.Cult ->
      if Int64.compare a.hi b.lo < 0 then const 1L
      else if Int64.compare a.lo b.hi >= 0 then const 0L
      else bool
    | Instr.Cle | Instr.Cule ->
      if Int64.compare a.hi b.lo <= 0 then const 1L
      else if Int64.compare a.lo b.hi > 0 then const 0L
      else bool

let forward_msk w a =
  match w with
  | Width.W64 -> a
  | _ ->
    if Int64.compare a.lo 0L >= 0 && Int64.compare a.hi (unsigned_max w) <= 0
    then a
    else zero_extended w

let forward_sext w a = clamp w a

let forward_load w ~signed =
  if signed || Width.equal w Width.W64 then full w else zero_extended w

let forward_cmov w ~old ~src = join old (clamp w src)

(* --- backward refinements ------------------------------------------------ *)

(* Backward refinement is only valid when truncation to the operation
   width is the identity on both operand intervals (so the interval
   relation speaks about the actual register values) and the forward
   result cannot wrap. *)
let no_wrap_add w this other =
  match (add_ovf this.lo other.lo, add_ovf this.hi other.hi) with
  | Some lo, Some hi -> subset { lo; hi } (full w)
  | _ -> false

let exact_operands w this other =
  subset this (full w) && subset other (full w)

let backward_add ~width:w ~out ~this ~other =
  if not (exact_operands w this other && no_wrap_add w this other) then
    Some this
  else
    match (sub_ovf out.lo other.hi, sub_ovf out.hi other.lo) with
    | Some lo, Some hi when Int64.compare lo hi <= 0 -> meet this { lo; hi }
    | _ -> Some this

let no_wrap_sub w this other =
  match (sub_ovf this.lo other.hi, sub_ovf this.hi other.lo) with
  | Some lo, Some hi -> subset { lo; hi } (full w)
  | _ -> false

let backward_sub_lhs ~width:w ~out ~this ~other =
  (* out = this - other, so this = out + other *)
  if not (exact_operands w this other && no_wrap_sub w this other) then
    Some this
  else
    match (add_ovf out.lo other.lo, add_ovf out.hi other.hi) with
    | Some lo, Some hi when Int64.compare lo hi <= 0 -> meet this { lo; hi }
    | _ -> Some this

let backward_sub_rhs ~width:w ~out ~this ~other =
  (* out = other - this, so this = other - out *)
  if not (exact_operands w this other && no_wrap_sub w other this) then
    Some this
  else
    match (sub_ovf other.lo out.hi, sub_ovf other.hi out.lo) with
    | Some lo, Some hi when Int64.compare lo hi <= 0 -> meet this { lo; hi }
    | _ -> Some this

let backward_store w i =
  match w with
  | Width.W64 -> i
  | _ -> (
    (* Only the low w bits survive: useful range is the w-bit signed range
       joined with the zero-extended view of the same bits. *)
    match meet i (join (full w) (zero_extended w)) with
    | Some r -> r
    | None -> i)

(* --- branch refinement ---------------------------------------------------- *)

let refine_cond c i ~taken =
  let cond = if taken then c else (
    match c with
    | Instr.Eq -> Instr.Ne
    | Instr.Ne -> Instr.Eq
    | Instr.Lt -> Instr.Ge
    | Instr.Le -> Instr.Gt
    | Instr.Gt -> Instr.Le
    | Instr.Ge -> Instr.Lt)
  in
  match cond with
  | Instr.Eq -> meet i (const 0L)
  | Instr.Ne ->
    if Int64.equal i.lo 0L && Int64.equal i.hi 0L then None
    else if Int64.equal i.lo 0L then Some { i with lo = 1L }
    else if Int64.equal i.hi 0L then Some { i with hi = -1L }
    else Some i
  | Instr.Lt -> meet i { lo = Int64.min_int; hi = -1L }
  | Instr.Le -> meet i { lo = Int64.min_int; hi = 0L }
  | Instr.Gt -> meet i { lo = 1L; hi = Int64.max_int }
  | Instr.Ge -> meet i { lo = 0L; hi = Int64.max_int }

(* A compare refines its operands only when truncation to the compare width
   is the identity on both ranges, and (for unsigned compares) when both
   are known non-negative so that unsigned and signed orders agree. *)
let cmp_refinable op w ~lhs ~rhs =
  subset lhs (full w) && subset rhs (full w)
  && (match op with
     | Instr.Ceq | Instr.Clt | Instr.Cle -> true
     | Instr.Cult | Instr.Cule ->
       Int64.compare lhs.lo 0L >= 0 && Int64.compare rhs.lo 0L >= 0)

let refine_cmp_lhs op w ~lhs ~rhs ~holds =
  if not (cmp_refinable op w ~lhs ~rhs) then Some lhs
  else
    match (op, holds) with
    | (Instr.Ceq, true) -> meet lhs rhs
    | (Instr.Ceq, false) ->
      if Int64.equal rhs.lo rhs.hi then
        if Int64.equal lhs.lo rhs.lo && Int64.equal lhs.hi rhs.lo then None
        else if Int64.equal lhs.lo rhs.lo then Some { lhs with lo = Int64.add lhs.lo 1L }
        else if Int64.equal lhs.hi rhs.lo then Some { lhs with hi = Int64.sub lhs.hi 1L }
        else Some lhs
      else Some lhs
    | (Instr.Clt | Instr.Cult), true ->
      if Int64.equal rhs.hi Int64.min_int then None
      else meet lhs { lo = Int64.min_int; hi = Int64.sub rhs.hi 1L }
    | (Instr.Clt | Instr.Cult), false -> meet lhs { lo = rhs.lo; hi = Int64.max_int }
    | (Instr.Cle | Instr.Cule), true -> meet lhs { lo = Int64.min_int; hi = rhs.hi }
    | (Instr.Cle | Instr.Cule), false ->
      if Int64.equal rhs.lo Int64.max_int then None
      else meet lhs { lo = Int64.add rhs.lo 1L; hi = Int64.max_int }

let refine_cmp_rhs op w ~lhs ~rhs ~holds =
  if not (cmp_refinable op w ~lhs ~rhs) then Some rhs
  else
    match (op, holds) with
    | (Instr.Ceq, true) -> meet rhs lhs
    | (Instr.Ceq, false) ->
      if Int64.equal lhs.lo lhs.hi then
        if Int64.equal rhs.lo lhs.lo && Int64.equal rhs.hi lhs.lo then None
        else if Int64.equal rhs.lo lhs.lo then Some { rhs with lo = Int64.add rhs.lo 1L }
        else if Int64.equal rhs.hi lhs.lo then Some { rhs with hi = Int64.sub rhs.hi 1L }
        else Some rhs
      else Some rhs
    | (Instr.Clt | Instr.Cult), true ->
      if Int64.equal lhs.lo Int64.max_int then None
      else meet rhs { lo = Int64.add lhs.lo 1L; hi = Int64.max_int }
    | (Instr.Clt | Instr.Cult), false -> meet rhs { lo = Int64.min_int; hi = lhs.hi }
    | (Instr.Cle | Instr.Cule), true -> meet rhs { lo = lhs.lo; hi = Int64.max_int }
    | (Instr.Cle | Instr.Cule), false ->
      if Int64.equal lhs.hi Int64.min_int then None
      else meet rhs { lo = Int64.min_int; hi = Int64.sub lhs.hi 1L }

let pp ppf i =
  if equal i top then Format.pp_print_string ppf "<T>"
  else Format.fprintf ppf "<%Ld,%Ld>" i.lo i.hi

let to_string i = Format.asprintf "%a" pp i
