lib/energy/energy_params.mli:
