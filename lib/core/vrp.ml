open Ogc_isa
open Ogc_ir
module Metrics = Ogc_obs.Metrics
module Span = Ogc_obs.Span

(* Pass telemetry: fixpoint effort, pass wall time and the width mix the
   re-encoder actually commits — the static face of the paper's Table 1. *)
let m_fixpoint_iters = Metrics.counter "ogc_vrp_fixpoint_iterations_total"
let m_runs = Metrics.counter "ogc_vrp_runs_total"
let m_pass_seconds = Metrics.histogram "ogc_vrp_pass_seconds"

let m_width_assign =
  List.map
    (fun w ->
      ( w,
        Metrics.counter "ogc_vrp_width_assignments_total"
          ~labels:[ ("width", string_of_int (Width.bits w)) ] ))
    [ Width.W8; Width.W16; Width.W32; Width.W64 ]

type assumption = {
  af : string;
  alabel : Label.t;
  areg : Reg.t;
  arange : Interval.t;
}

type config = {
  useful : bool;
  useful_through_arith : bool;
  widen_after : int;
  interproc_rounds : int;
  assumptions : assumption list;
}

(* [useful_through_arith] defaults to on: the paper's introductory example
   (a dependence chain feeding an AND mask computes only one byte) requires
   demand to flow through additions.  In this demand formulation it is
   sound — the low k bits of add/sub/mul/shift-left results depend only on
   the low k bits of their inputs, and every overflow-observing use
   (compare, branch, divide, right shift) demands full width — so the
   §2.2.5 overflow-hiding hazard cannot arise.  Setting it to [false]
   gives the paper-literal conservative variant (kept as an ablation). *)
let default_config =
  {
    useful = true;
    useful_through_arith = true;
    widen_after = 3;
    interproc_rounds = 2;
    assumptions = [];
  }

let conventional_config = { default_config with useful = false }

type summary = { mutable s_args : Interval.t array; mutable s_ret : Interval.t }

type result = {
  ranges : (int, Interval.t) Hashtbl.t;
  inputs : (int, Interval.t * Interval.t) Hashtbl.t;
  reqs : (int, Width.t) Hashtbl.t;
  widths : (int, Width.t) Hashtbl.t;
  summaries : (string, summary) Hashtbl.t;
}

(* --- flow states: one interval per architectural register ---------------- *)

let nregs = 32
let zero_i = Reg.to_int Reg.zero
let sp_i = Reg.to_int Reg.sp

let sp_range =
  Interval.v Interp.virtual_base
    (Int64.add Interp.virtual_base 0x1_0000_0000L)

let state_top () =
  let s = Array.make nregs Interval.top in
  s.(zero_i) <- Interval.const 0L;
  s

let state_equal a b =
  let rec go i = i >= nregs || (Interval.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let state_join a b =
  Array.init nregs (fun i ->
      if i = zero_i then Interval.const 0L else Interval.join a.(i) b.(i))

(* Directional threshold widening: an unstable bound jumps to the next
   width landmark, so compares at narrower operation widths can still
   refine the widened range (jumping straight to ±2^63 would make every
   W32 compare non-refinable). *)
let hi_landmarks = [ 127L; 32767L; 0x7FFF_FFFFL; Int64.max_int ]
let lo_landmarks = [ -128L; -32768L; Int64.neg 0x8000_0000L; Int64.min_int ]

let widen_hi n =
  List.find (fun l -> Int64.compare n l <= 0) hi_landmarks

let widen_lo n =
  List.find (fun l -> Int64.compare l n <= 0) lo_landmarks

let widen_state ~old ~next =
  Array.init nregs (fun i ->
      if i = zero_i then Interval.const 0L
      else
        let o = (old.(i) : Interval.t) and n = (next.(i) : Interval.t) in
        let lo =
          if Int64.compare n.Interval.lo o.Interval.lo < 0 then
            widen_lo n.Interval.lo
          else o.Interval.lo
        in
        let hi =
          if Int64.compare n.Interval.hi o.Interval.hi > 0 then
            widen_hi n.Interval.hi
          else o.Interval.hi
        in
        Interval.v lo hi)

(* --- per-function analysis ------------------------------------------------ *)

type fctx = {
  cfg : Cfg.t;
  gaddr : (string * int64) list;
  summaries : (string, summary) Hashtbl.t;
  prog : Prog.t;
  config : config;
  (* When collecting: join actual argument ranges into callee accumulators. *)
  arg_acc : (string, Interval.t array) Hashtbl.t option;
  (* When recording: fill result tables. *)
  record : result option;
}

let operand_range state = function
  | Instr.Reg r -> state.(Reg.to_int r)
  | Instr.Imm v -> Interval.const v

let set state r v = if Reg.to_int r <> zero_i then state.(Reg.to_int r) <- v

(* Transfer one instruction over a mutable state copy. *)
let transfer ctx state (ins : Prog.ins) =
  let record_def rng a b =
    match ctx.record with
    | Some res ->
      Hashtbl.replace res.ranges ins.iid rng;
      Hashtbl.replace res.inputs ins.iid (a, b)
    | None -> ()
  in
  match ins.op with
  | Instr.Alu { op; width; src1; src2; dst } ->
    let a = state.(Reg.to_int src1) and b = operand_range state src2 in
    let r = Interval.forward_alu op width a b in
    record_def r a b;
    set state dst r
  | Instr.Cmp { op; width; src1; src2; dst } ->
    let a = state.(Reg.to_int src1) and b = operand_range state src2 in
    let r = Interval.forward_cmp_op op width a b in
    record_def r a b;
    set state dst r
  | Instr.Cmov { width; test; src; dst; _ } ->
    let t = state.(Reg.to_int test) and s = operand_range state src in
    let r = Interval.forward_cmov width ~old:state.(Reg.to_int dst) ~src:s in
    record_def r t s;
    set state dst r
  | Instr.Msk { width; src; dst } ->
    let a = state.(Reg.to_int src) in
    let r = Interval.forward_msk width a in
    record_def r a (Interval.const 0L);
    set state dst r
  | Instr.Sext { width; src; dst } ->
    let a = state.(Reg.to_int src) in
    let r = Interval.forward_sext width a in
    record_def r a (Interval.const 0L);
    set state dst r
  | Instr.Li { dst; imm } ->
    let r = Interval.const imm in
    record_def r r r;
    set state dst r
  | Instr.La { dst; symbol } ->
    let r =
      match List.assoc_opt symbol ctx.gaddr with
      | Some a -> Interval.const a
      | None -> sp_range
    in
    record_def r r r;
    set state dst r
  | Instr.Load { width; signed; base; dst; _ } ->
    let a = state.(Reg.to_int base) in
    let r = Interval.forward_load width ~signed in
    record_def r a (Interval.const 0L);
    set state dst r
  | Instr.Store { base; src; _ } ->
    let a = state.(Reg.to_int base) and s = state.(Reg.to_int src) in
    record_def Interval.top a s
  | Instr.Call { callee } ->
    (* Collect actual argument ranges for interprocedural propagation. *)
    (match (ctx.arg_acc, Prog.find_func_opt ctx.prog callee) with
    | Some acc, Some cf ->
      let cur =
        match Hashtbl.find_opt acc callee with
        | Some a -> a
        | None ->
          let a =
            Array.init cf.arity (fun _ -> Interval.v Int64.max_int Int64.max_int)
          in
          (* seeded empty-ish: replaced below on first join *)
          Array.iteri (fun i _ -> a.(i) <- state.(Reg.to_int (Reg.arg i))) a;
          Hashtbl.replace acc callee a;
          a
      in
      Array.iteri
        (fun i r -> cur.(i) <- Interval.join r state.(Reg.to_int (Reg.arg i)))
        cur
    | _ -> ());
    let ret_range =
      match Hashtbl.find_opt ctx.summaries callee with
      | Some s -> s.s_ret
      | None -> Interval.top
    in
    List.iter (fun r -> set state r Interval.top) Reg.caller_saved;
    set state Reg.ret ret_range;
    record_def ret_range Interval.top Interval.top
  | Instr.Emit { src } ->
    record_def Interval.top state.(Reg.to_int src) (Interval.const 0L)

(* Refinements carried by a CFG edge leaving a conditional branch. *)
let edge_refinements (b : Prog.block) ~taken =
  match b.term with
  | Prog.Jump _ | Prog.Return -> []
  | Prog.Branch { cond; src; _ } ->
    (* Locate the last definition of [src] in the block body; when it is a
       compare whose operands are not redefined afterwards, the compare
       operands can be refined too (paper §2.2.4). *)
    let body = b.body in
    let n = Array.length body in
    let defines r (ins : Prog.ins) = List.exists (Reg.equal r) (Instr.defs ins.op) in
    let rec last_def i = if i < 0 then None else if defines src body.(i) then Some i else last_def (i - 1) in
    let cmp_refine =
      match last_def (n - 1) with
      | None -> []
      | Some i -> (
        match body.(i).op with
        | Instr.Cmp { op; width; src1; src2; dst } ->
          (* Refinement reads {e both} operand ranges from the block's
             out-state (each side's new range is computed against the
             other's), so it is only valid when neither operand is
             redefined between the compare and the exit — including by
             the compare itself, whose [dst] aliases an operand in the
             [x == k] guards VRS emits ([cmpeq x, r27, r27]): there the
             out-state of [r27] is the 0/1 compare result, not the
             comparand. *)
          let redefined r =
            let rec go j =
              j < n && (defines r body.(j) || go (j + 1))
            in
            Reg.equal dst r || go (i + 1)
          in
          let ok =
            (not (redefined src1))
            && (match src2 with
               | Instr.Reg r -> not (redefined r)
               | Instr.Imm _ -> true)
          in
          if ok then [ (op, width, src1, src2, true, true) ] else []
        | _ -> [])
    in
    [ `Cond (cond, src, taken) ]
    @ List.map (fun c -> `Cmp (c, cond, src, taken)) cmp_refine

(* Apply edge refinements to a state copy; [None] means the edge is
   infeasible. *)
let apply_refinements state refs =
  let infeasible = ref false in
  List.iter
    (fun r ->
      match r with
      | `Cond (cond, src, taken) -> (
        let i = Reg.to_int src in
        match Interval.refine_cond cond state.(i) ~taken with
        | Some rng -> if i <> zero_i then state.(i) <- rng
        | None -> infeasible := true)
      | `Cmp ((op, width, src1, src2, ok1, ok2), cond, src, taken) -> (
        (* The branch tests the compare result against zero; determine
           whether the compare held on this edge. *)
        match Interval.refine_cond cond state.(Reg.to_int src) ~taken with
        | None -> infeasible := true
        | Some rng -> (
          match Interval.is_const rng with
          | Some c ->
            let holds = not (Int64.equal c 0L) in
            let lhs = state.(Reg.to_int src1) in
            let rhs = operand_range state src2 in
            if ok1 then (
              match Interval.refine_cmp_lhs op width ~lhs ~rhs ~holds with
              | Some l -> if Reg.to_int src1 <> zero_i then state.(Reg.to_int src1) <- l
              | None -> infeasible := true);
            (match src2 with
            | Instr.Reg r2 when ok2 -> (
              match Interval.refine_cmp_rhs op width ~lhs ~rhs ~holds with
              | Some rr -> if Reg.to_int r2 <> zero_i then state.(Reg.to_int r2) <- rr
              | None -> infeasible := true)
            | Instr.Reg _ | Instr.Imm _ -> ())
          | None -> ())))
    refs;
  not !infeasible

(* Analyze one function to a fixpoint; returns the join of the return-value
   ranges over all return sites. *)
let analyze_func ctx (f : Prog.func) : Interval.t =
  let cfg = ctx.cfg in
  let n = Array.length f.blocks in
  let entry_state () =
    let s = state_top () in
    s.(sp_i) <- sp_range;
    (match Hashtbl.find_opt ctx.summaries f.fname with
    | Some sum ->
      Array.iteri (fun i r -> s.(Reg.to_int (Reg.arg i)) <- r) sum.s_args
    | None -> ());
    s
  in
  (* [None] is ⊥: not yet reached by the analysis. *)
  let in_states : Interval.t array option array = Array.make n None in
  let out_states : Interval.t array option array = Array.make n None in
  let visits = Array.make n 0 in
  let assumptions_for l =
    List.filter
      (fun a -> String.equal a.af f.fname && Label.equal a.alabel l)
      ctx.config.assumptions
  in
  (* Fresh input state of block [bi]: join of refined predecessor outputs;
     [None] (⊥) when no predecessor has been reached yet. *)
  let compute_in bi =
    let l = Label.of_int bi in
    let preds = Cfg.preds cfg l in
    let contributions =
      List.filter_map
        (fun p ->
          match out_states.(Label.to_int p) with
          | None -> None (* predecessor not reached yet *)
          | Some out ->
            let pb = f.blocks.(Label.to_int p) in
            let taken =
              match pb.term with
              | Prog.Branch { if_true; _ } when Label.equal if_true l -> true
              | Prog.Branch _ | Prog.Jump _ | Prog.Return -> false
            in
            (* A branch with identical targets contributes both edges;
               using [taken] for the true side is sound because the join
               of the two refinements over-approximates either. *)
            let s = Array.copy out in
            if apply_refinements s (edge_refinements pb ~taken) then Some s
            else None)
        preds
    in
    let base =
      if bi = 0 then
        Some
          (List.fold_left state_join (entry_state ()) contributions)
      else
        match contributions with
        | [] -> None
        | c :: cs -> Some (List.fold_left state_join c cs)
    in
    Option.map
      (fun base ->
        List.iter
          (fun a ->
            let i = Reg.to_int a.areg in
            if i <> zero_i then
              match Interval.meet base.(i) a.arange with
              | Some m -> base.(i) <- m
              | None -> base.(i) <- a.arange)
          (assumptions_for l);
        base)
      base
  in
  let transfer_block bi state =
    let b = f.blocks.(bi) in
    Array.iter (transfer ctx state) b.body;
    state
  in
  (* Ascending phase with widening, starting from ⊥ everywhere. *)
  let iters = ref 0 in
  let changed = ref true in
  while !changed do
    incr iters;
    changed := false;
    List.iter
      (fun l ->
        let bi = Label.to_int l in
        match compute_in bi with
        | None -> ()
        | Some fresh ->
          let next =
            match in_states.(bi) with
            | None -> fresh
            | Some old ->
              let joined = state_join old fresh in
              if visits.(bi) > ctx.config.widen_after then
                widen_state ~old ~next:joined
              else joined
          in
          visits.(bi) <- visits.(bi) + 1;
          let stale =
            match in_states.(bi) with
            | None -> true
            | Some old -> not (state_equal next old)
          in
          if stale then begin
            in_states.(bi) <- Some next;
            out_states.(bi) <- Some (transfer_block bi (Array.copy next));
            changed := true
          end)
      (Cfg.reverse_postorder cfg)
  done;
  Metrics.add m_fixpoint_iters (float_of_int !iters);
  (* Two descending (narrowing) sweeps; each recomputed state remains a
     sound over-approximation because it is derived from sound inputs. *)
  for _ = 1 to 2 do
    List.iter
      (fun l ->
        let bi = Label.to_int l in
        match compute_in bi with
        | None -> ()
        | Some fresh ->
          in_states.(bi) <- Some fresh;
          out_states.(bi) <- Some (transfer_block bi (Array.copy fresh)))
      (Cfg.reverse_postorder cfg)
  done;
  (* Final recorded sweep: re-run the transfer so the record callback sees
     the stabilized input states, and collect the return range.  Blocks
     never reached (⊥) are recorded conservatively from ⊤ so that dead
     code keeps sound (wide) widths. *)
  let ret = ref None in
  Array.iteri
    (fun bi (b : Prog.block) ->
      let start =
        match in_states.(bi) with Some s -> Array.copy s | None -> state_top ()
      in
      let reached = in_states.(bi) <> None in
      let s = transfer_block bi start in
      match b.term with
      | Prog.Return when reached ->
        let r = s.(Reg.to_int Reg.ret) in
        ret := Some (match !ret with None -> r | Some acc -> Interval.join acc r)
      | Prog.Return | Prog.Jump _ | Prog.Branch _ -> ())
    f.blocks;
  Option.value ~default:Interval.top !ret

(* --- useful-width (demand) analysis -------------------------------------- *)

let sound_width_of_def res ins_tbl (ud : Usedef.t) di =
  let d = Usedef.def ud di in
  match d.Usedef.site with
  | Usedef.Entry -> Width.W64
  | Usedef.At iid -> (
    (* Calls define every caller-saved register; only the return value's
       range is known.  All other defs have a single destination whose
       range was recorded under the instruction id. *)
    let is_call =
      match Hashtbl.find_opt ins_tbl iid with
      | Some (Instr.Call _) -> true
      | Some _ | None -> false
    in
    if is_call && not (Reg.equal d.Usedef.dreg Reg.ret) then Width.W64
    else
      (* A re-encoded instruction delivers the low [w] bits of its
         result and extends them to the full register; the def's value
         is intact only when that extension recovers it.  Every narrow
         op sign-extends except [Msk], which zero-extends, so a [Msk]
         def is bounded by the unsigned width of its range: narrowing
         [msk64 r, r] of a negative value to its (signed) 16-bit width
         would flip it positive. *)
      let width_of =
        match Hashtbl.find_opt ins_tbl iid with
        | Some (Instr.Msk _) -> Interval.width_unsigned
        | Some _ | None -> Interval.width
      in
      match Hashtbl.find_opt res.ranges iid with
      | Some rng -> width_of rng
      | None -> Width.W64)

let demand config ~req_out ~(op : Instr.t) ~(r : Reg.t) =
  (* Width of register [r]'s low bits that instruction [op] can expose to
     its consumers; [req_out] is the useful width of [op]'s own output. *)
  let roles = ref [] in
  let add w = roles := w :: !roles in
  (match op with
  | Instr.Alu { op = aop; src1; src2; _ } ->
    let is1 = Reg.equal r src1 in
    let is2 = match src2 with Instr.Reg x -> Reg.equal r x | Instr.Imm _ -> false in
    (match aop with
    | Instr.And | Instr.Or | Instr.Xor | Instr.Bic ->
      if is1 || is2 then add req_out
    | Instr.Add | Instr.Sub | Instr.Mul ->
      if is1 || is2 then
        add (if config.useful_through_arith then req_out else Width.W64)
    | Instr.Sll ->
      if is1 then
        add (if config.useful_through_arith then req_out else Width.W64);
      if is2 then add Width.W64
    | Instr.Div | Instr.Rem | Instr.Srl | Instr.Sra ->
      if is1 || is2 then add Width.W64)
  | Instr.Cmp { src1; src2; _ } ->
    let is2 = match src2 with Instr.Reg x -> Reg.equal r x | Instr.Imm _ -> false in
    if Reg.equal r src1 || is2 then add Width.W64
  | Instr.Cmov { test; src; dst; _ } ->
    if Reg.equal r test then add Width.W64;
    (match src with
    | Instr.Reg x when Reg.equal r x -> add req_out
    | Instr.Reg _ | Instr.Imm _ -> ());
    if Reg.equal r dst then add req_out
  | Instr.Msk { width; src; _ } ->
    if Reg.equal r src then add (Width.min width req_out)
  | Instr.Sext { width; src; _ } ->
    if Reg.equal r src then add (Width.min width req_out)
  | Instr.Load { base; _ } -> if Reg.equal r base then add Width.W64
  | Instr.Store { width; base; src; _ } ->
    if Reg.equal r base then add Width.W64;
    if Reg.equal r src then add width
  | Instr.Li _ | Instr.La _ -> ()
  | Instr.Call _ -> add Width.W64
  | Instr.Emit _ -> add Width.W64);
  match !roles with [] -> Width.W64 | w :: ws -> List.fold_left Width.max w ws

let useful_pass config res (f : Prog.func) cfg =
  let ud = Usedef.compute f cfg in
  let nd = Usedef.num_defs ud in
  let ins_tbl = Hashtbl.create 256 in
  Prog.iter_ins f (fun _ ins -> Hashtbl.replace ins_tbl ins.iid ins.op);
  let req = Array.init nd (fun di -> sound_width_of_def res ins_tbl ud di) in
  (* Useful width of the output of instruction [iid]: max over the reqs of
     the defs it makes (a Call makes many; they are all W64 anyway). *)
  let req_out_of iid =
    match Usedef.defs_of_ins ud iid with
    | [] -> Width.W64
    | ds -> List.fold_left (fun acc d -> Width.max acc req.(d)) Width.W8 ds
  in
  if config.useful then begin
    let changed = ref true in
    let guard = ref 0 in
    while !changed && !guard < 64 do
      changed := false;
      incr guard;
      for di = 0 to nd - 1 do
        let d = Usedef.def ud di in
        let uses = Usedef.uses_of_def ud di in
        let dem =
          List.fold_left
            (fun acc (use_iid, r) ->
              match Hashtbl.find_opt ins_tbl use_iid with
              | Some op ->
                Width.max acc (demand config ~req_out:(req_out_of use_iid) ~op ~r)
              | None -> Width.W64 (* terminator use: full value *))
            Width.W8 uses
        in
        (* Dead defs (no uses) demand nothing — except the stack pointer
           and the return-value register, which are live across the
           function boundary (the caller observes their full value). *)
        let dem =
          if Reg.equal d.Usedef.dreg Reg.sp || Reg.equal d.Usedef.dreg Reg.ret
          then Width.W64
          else if uses = [] then Width.W8
          else dem
        in
        let nw = Width.min req.(di) dem in
        if not (Width.equal nw req.(di)) then begin
          req.(di) <- nw;
          changed := true
        end
      done
    done
  end;
  (* Publish per-instruction useful widths. *)
  Prog.iter_ins f (fun _ ins ->
      match Usedef.defs_of_ins ud ins.iid with
      | [] -> ()
      | ds ->
        let w = List.fold_left (fun acc d -> Width.max acc req.(d)) Width.W8 ds in
        Hashtbl.replace res.reqs ins.iid w)

(* --- width assignment ------------------------------------------------------ *)

let assign_widths res (f : Prog.func) =
  Prog.iter_ins f (fun _ ins ->
      let rng iid = Hashtbl.find_opt res.ranges iid in
      let req iid =
        match Hashtbl.find_opt res.reqs iid with Some w -> w | None -> Width.W64
      in
      let sound iid =
        match rng iid with Some r -> Interval.width r | None -> Width.W64
      in
      let ins_rngs iid =
        match Hashtbl.find_opt res.inputs iid with
        | Some (a, b) -> (Interval.width a, Interval.width b)
        | None -> (Width.W64, Width.W64)
      in
      let w =
        match ins.op with
        | Instr.Alu { op; width = orig; _ } -> (
          match op with
          | Instr.And | Instr.Or | Instr.Xor | Instr.Bic
          | Instr.Add | Instr.Sub | Instr.Mul ->
            (* Low-bit determined: the useful width of the output is
               enough; never widen beyond the encoded width. *)
            Some (Width.min orig (Width.min (req ins.iid) (sound ins.iid)))
          | Instr.Sll ->
            let _, wb = ins_rngs ins.iid in
            Some (Width.min orig
                    (Width.max wb (Width.min (req ins.iid) (sound ins.iid))))
          | Instr.Div | Instr.Rem | Instr.Srl | Instr.Sra ->
            let wa, wb = ins_rngs ins.iid in
            Some (Width.min orig (Width.max (Width.max wa wb) (sound ins.iid))))
        | Instr.Cmp { width = orig; _ } ->
          let wa, wb = ins_rngs ins.iid in
          Some (Width.min orig (Width.max wa wb))
        | Instr.Cmov { width = orig; _ } ->
          Some (Width.min orig (Width.min (req ins.iid) (sound ins.iid)))
        | Instr.Msk { width = orig; _ } | Instr.Sext { width = orig; _ } ->
          Some (Width.min orig (req ins.iid))
        | Instr.Li _ | Instr.La _ ->
          Some (Width.min (req ins.iid) (sound ins.iid))
        | Instr.Load { width; _ } | Instr.Store { width; _ } -> Some width
        | Instr.Call _ | Instr.Emit _ -> None
      in
      match w with
      | Some w -> Hashtbl.replace res.widths ins.iid w
      | None -> ())

(* --- driver ---------------------------------------------------------------- *)

let analyze ?(config = default_config) (p : Prog.t) : result =
  let res =
    {
      ranges = Hashtbl.create 4096;
      inputs = Hashtbl.create 4096;
      reqs = Hashtbl.create 4096;
      widths = Hashtbl.create 4096;
      summaries = Hashtbl.create 16;
    }
  in
  List.iter
    (fun (f : Prog.func) ->
      Hashtbl.replace res.summaries f.fname
        { s_args = Array.make f.arity Interval.top; s_ret = Interval.top })
    p.funcs;
  let gaddr = Interp.global_addresses p in
  let cfgs = Hashtbl.create 16 in
  let cfg_of (f : Prog.func) =
    match Hashtbl.find_opt cfgs f.fname with
    | Some c -> c
    | None ->
      let c = Cfg.of_func f in
      Hashtbl.replace cfgs f.fname c;
      c
  in
  let mk_ctx ?arg_acc ?record (f : Prog.func) =
    { cfg = cfg_of f; gaddr; summaries = res.summaries; prog = p; config;
      arg_acc; record }
  in
  let cg = Callgraph.compute p in
  for _round = 1 to config.interproc_rounds do
    (* One sweep: recompute every return summary and collect call-site
       argument ranges with the current summaries. *)
    let acc = Hashtbl.create 16 in
    let new_rets = Hashtbl.create 16 in
    List.iter
      (fun fname ->
        match Prog.find_func_opt p fname with
        | None -> ()
        | Some f ->
          let ret = analyze_func (mk_ctx ~arg_acc:acc f) f in
          Hashtbl.replace new_rets fname ret)
      (Callgraph.bottom_up cg);
    Hashtbl.iter
      (fun fname ret ->
        match Hashtbl.find_opt res.summaries fname with
        | Some s -> s.s_ret <- ret
        | None -> ())
      new_rets;
    List.iter
      (fun (f : Prog.func) ->
        match Hashtbl.find_opt res.summaries f.fname with
        | None -> ()
        | Some s ->
          if Callgraph.is_recursive cg f.fname then
            s.s_args <- Array.make f.arity Interval.top
          else (
            match Hashtbl.find_opt acc f.fname with
            | Some a -> s.s_args <- a
            | None -> () (* never called: keep ⊤ *)))
      p.funcs
  done;
  (* Final recorded pass, then demand and width assignment per function. *)
  List.iter
    (fun (f : Prog.func) ->
      let ret = analyze_func (mk_ctx ~record:res f) f in
      (match Hashtbl.find_opt res.summaries f.fname with
      | Some s -> s.s_ret <- ret
      | None -> ());
      useful_pass config res f (cfg_of f);
      assign_widths res f)
    p.funcs;
  res

let range_of res iid = Hashtbl.find_opt res.ranges iid
let useful_width_of res iid = Hashtbl.find_opt res.reqs iid
let width_of res iid = Hashtbl.find_opt res.widths iid

let apply res (p : Prog.t) =
  let obs = Metrics.enabled () in
  Prog.iter_all_ins p (fun _ _ ins ->
      match Hashtbl.find_opt res.widths ins.iid with
      | None -> ()
      | Some w -> (
        match ins.op with
        | Instr.Alu _ | Instr.Cmp _ | Instr.Cmov _ | Instr.Msk _ | Instr.Sext _
          ->
          ins.op <- Instr.with_width ins.op w;
          if obs then Metrics.incr (List.assoc w m_width_assign)
        | Instr.Li _ | Instr.La _ | Instr.Load _ | Instr.Store _
        | Instr.Call _ | Instr.Emit _ -> ()))

let run ?config p =
  Span.with_ ~name:"vrp" (fun () ->
      let t0 = if Metrics.enabled () then Unix.gettimeofday () else 0.0 in
      let res = analyze ?config p in
      apply res p;
      if t0 > 0.0 then begin
        Metrics.incr m_runs;
        Metrics.observe m_pass_seconds (Unix.gettimeofday () -. t0)
      end;
      res)

let input_ranges_of res iid = Hashtbl.find_opt res.inputs iid

let return_range (res : result) fname =
  Option.map (fun s -> s.s_ret) (Hashtbl.find_opt res.summaries fname)

let pp_summary ppf res =
  Format.fprintf ppf "defs analyzed: %d; widths assigned: %d@\n"
    (Hashtbl.length res.ranges) (Hashtbl.length res.widths);
  let counts = Hashtbl.create 4 in
  Hashtbl.iter
    (fun _ w ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts w) in
      Hashtbl.replace counts w (c + 1))
    res.widths;
  List.iter
    (fun w ->
      Format.fprintf ppf "  width %s: %d@\n" (Width.to_string w)
        (Option.value ~default:0 (Hashtbl.find_opt counts w)))
    Width.all
