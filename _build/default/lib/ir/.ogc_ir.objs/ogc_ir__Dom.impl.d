lib/ir/dom.ml: Array Cfg Label List
