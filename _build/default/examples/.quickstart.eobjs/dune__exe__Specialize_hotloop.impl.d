examples/specialize_hotloop.ml: Format Int64 List Ogc_core Ogc_cpu Ogc_energy Ogc_gating Ogc_harness Ogc_ir Ogc_minic
