# Found by `ogc fuzz --seed 42 -n 60` (program 59, chain vrp,encode-widths).
# VRP seeded the useful width of every def from the signed interval width;
# a msk def ZERO-extends when narrowed, so [30] msk64 of r10 = -29712
# (signed width W16) was re-encoded msk16, flipping the emitted value to
# 35824.  Fixed by bounding msk defs with Interval.width_unsigned.
# See vrp_msk_zero_extend_min.s for the 5-instruction distillation.

global gbuf[512] = 2f6c75d7fca8234ef8135893d86ad1da2290786ae79a2d28f4eb3c54fe80cc0f8ca58410d4426070d5daf97f2d60f9e444835456607e3fce14438d206ec39124248915967500884f1aace148f499bd4d830955225ee51bc6ca0908b112afa6d36cf53adb2a671c295dc3b1105a02723ac9a07e962e5c4dadcc190842b856af8f08344ca1a5e9a01e100ce1444e4ecb25077701396c4d69bfa5ebb26190ef1ad4abd0ccd018c1710794fa6da55ce9e7dbcac130f2d72269c3b5bcf2aa774ce0932b3506ec02ac794013368bc4efd239d2dc7db745f01ec79b8081656c92b46db53148022ce913c155668bae3f2676c4d590196b7e13fe9a3fe3e041a721fdab494e467ce9612cf960523da0ca285c26289d5803802fe12175c6cc55a30510f42e5edde041da324f9c8ece3f06812e4d6a5719b73e754a59015c8f381dcd5159c0eadc8f342e1703fad783c152d892ed91685f92785191ef31321f6f52e27bae1343b8f05173e9a6e3041d5efc67fc9b8670c33f665a9204a549bdf7e6387d8e675eef6e94cae602b5f129035539504ee6986e3937e14e49ded56430d9c03ce8b0aaa3ddd542e7af1ffd888c1be299b75fd4ef0091f0df256f869088d72e9283a86841492d321993c6249e21b0673e422bef4ebe61a249b5e3e1b3659c0fb69dbeab6665bb2672582df936de79da189f6f937a54284b0249e168dbdb12522dd270

func leaf0(1) frame=0
L0:
  [   0] li #854038758, r1
  [   1] li #-20721, r2
  [   2] li #30680, r3
  [   3] sext64 r2, r2
  [   4] sext32 r1, r2
  [   5] msk8 r1, r1
  [   6] sext8 r2, r3
  [   7] msk32 r1, r2
  [   8] bic16 r1, #-4, r2
  [   9] div r1, r1, r1
  [  10] add r1, #0, r0
  [  11] ret

func main(0) frame=0
L0:
  [  12] li #9873, r1
  [  13] li #-2147483648, r2
  [  14] li #710728225, r3
  [  15] li #14529, r4
  [  16] li #122039619, r5
  [  17] li #61, r6
  [  18] li #24, r9
  [  19] li #-29712, r10
  [  20] li #255, r11
  [  21] li #49989, r12
  [  22] cmple16 r10, #4, r8
  [  23] ble r8, L1, L2
L1:
  [  24] la @gbuf, r7
  [  25] st16 r6, 336(r7)
  [  26] jump L3
L2:
  [  27] sub32 r6, #97, r3
  [  28] jump L3
L3:
  [  29] li #-62, r2
  [  30] msk64 r10, r10
  [  31] sll16 r10, r5, r3
  [  32] li #0, r13
  [  33] jump L4
L4:
  [  34] cmpeq8 r10, #-2, r8
  [  35] beq r8, L5, L6
L5:
  [  36] emit r6
  [  37] la @gbuf, r7
  [  38] st8 r5, 96(r7)
  [  39] jump L7
L6:
  [  40] add16 r4, r4, r4
  [  41] cmpule32 r11, r4, r9
  [  42] jump L7
L7:
  [  43] add r13, #2, r13
  [  44] cmplt r13, #10, r8
  [  45] bne r8, L4, L8
L8:
  [  46] emit r9
  [  47] emit r10
  [  48] emit r11
  [  49] emit r12
  [  50] li #0, r0
  [  51] ret
