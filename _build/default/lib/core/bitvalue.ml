open Ogc_isa
open Ogc_ir

type t = { zeros : int64; ones : int64 }

let top = { zeros = 0L; ones = 0L }

let make ~zeros ~ones =
  if not (Int64.equal (Int64.logand zeros ones) 0L) then
    Fmt.invalid_arg "Bitvalue.make: contradictory bits";
  { zeros; ones }

let const c = { zeros = Int64.lognot c; ones = c }

let is_const bv =
  if Int64.equal (Int64.logor bv.zeros bv.ones) (-1L) then Some bv.ones
  else None

let join a b =
  { zeros = Int64.logand a.zeros b.zeros; ones = Int64.logand a.ones b.ones }

let equal a b = Int64.equal a.zeros b.zeros && Int64.equal a.ones b.ones

let concretizes bv v =
  Int64.equal (Int64.logand v bv.zeros) 0L
  && Int64.equal (Int64.logand v bv.ones) bv.ones

let popcount =
  let rec go acc x =
    if Int64.equal x 0L then acc
    else go (acc + 1) (Int64.logand x (Int64.sub x 1L))
  in
  go 0

let known_bits bv = popcount (Int64.logor bv.zeros bv.ones)

(* Narrowest two's-complement width: bits [w-1 .. 63] must all be known
   equal to bit [w-1] in every concretization, i.e. all known-0 or all
   known-1. *)
let width bv =
  let all_known_zero ~from_ =
    let mask = Int64.shift_left (-1L) from_ in
    Int64.equal (Int64.logand bv.zeros mask) mask
  and all_known_one ~from_ =
    let mask = Int64.shift_left (-1L) from_ in
    Int64.equal (Int64.logand bv.ones mask) mask
  in
  let fits w =
    let b = Width.bits w in
    if b >= 64 then true
    else
      (* Non-negative: bit b-1 .. 63 known zero; negative: known one. *)
      all_known_zero ~from_:(b - 1) || all_known_one ~from_:(b - 1)
  in
  if fits Width.W8 then Width.W8
  else if fits Width.W16 then Width.W16
  else if fits Width.W32 then Width.W32
  else Width.W64

(* --- transfer functions --------------------------------------------------- *)

(* Truncate to the operating width: result bits above w copy bit w-1
   (sign extension) when it is known; unknown otherwise. *)
let sext_to w bv =
  match w with
  | Width.W64 -> bv
  | _ ->
    let b = Width.bits w in
    let high = Int64.shift_left (-1L) b in
    let low = Int64.lognot high in
    let sign = Int64.shift_left 1L (b - 1) in
    let zeros = Int64.logand bv.zeros low and ones = Int64.logand bv.ones low in
    if not (Int64.equal (Int64.logand bv.zeros sign) 0L) then
      { zeros = Int64.logor zeros high; ones }
    else if not (Int64.equal (Int64.logand bv.ones sign) 0L) then
      { zeros; ones = Int64.logor ones high }
    else { zeros; ones }

let zext_to w bv =
  match w with
  | Width.W64 -> bv
  | _ ->
    let b = Width.bits w in
    let high = Int64.shift_left (-1L) b in
    let low = Int64.lognot high in
    { zeros = Int64.logor (Int64.logand bv.zeros low) high;
      ones = Int64.logand bv.ones low }

let bit_and a b =
  { ones = Int64.logand a.ones b.ones;
    zeros = Int64.logor a.zeros b.zeros }

let bit_or a b =
  { ones = Int64.logor a.ones b.ones;
    zeros = Int64.logand a.zeros b.zeros }

let bit_xor a b =
  { ones =
      Int64.logor
        (Int64.logand a.ones b.zeros)
        (Int64.logand a.zeros b.ones);
    zeros =
      Int64.logor
        (Int64.logand a.zeros b.zeros)
        (Int64.logand a.ones b.ones) }

let bit_not a = { zeros = a.ones; ones = a.zeros }

(* Ripple-carry known-bits addition: track the carry's known state bit by
   bit; stop knowing anything once the carry is unknown and both addend
   bits are not determining. *)
let bit_add a b =
  let zeros = ref 0L and ones = ref 0L in
  (* carry state: `Zero | `One | `Unknown *)
  let carry = ref `Zero in
  for i = 0 to 63 do
    let bit m = Int64.logand (Int64.shift_right_logical m i) 1L in
    let ka = if bit a.zeros = 1L then `Zero else if bit a.ones = 1L then `One else `Unknown in
    let kb = if bit b.zeros = 1L then `Zero else if bit b.ones = 1L then `One else `Unknown in
    let sum_known, carry' =
      match (ka, kb, !carry) with
      | `Zero, `Zero, `Zero -> (Some 0, `Zero)
      | `Zero, `Zero, `One -> (Some 1, `Zero)
      | `Zero, `One, `Zero | `One, `Zero, `Zero -> (Some 1, `Zero)
      | `Zero, `One, `One | `One, `Zero, `One -> (Some 0, `One)
      | `One, `One, `Zero -> (Some 0, `One)
      | `One, `One, `One -> (Some 1, `One)
      | `Zero, `Zero, `Unknown -> (None, `Zero)
      | `One, `One, `Unknown -> (None, `One)
      | _ -> (None, `Unknown)
    in
    (match sum_known with
    | Some 0 -> zeros := Int64.logor !zeros (Int64.shift_left 1L i)
    | Some _ -> ones := Int64.logor !ones (Int64.shift_left 1L i)
    | None -> ());
    carry := carry'
  done;
  { zeros = !zeros; ones = !ones }

let bit_neg a = bit_add (bit_not a) (const 1L)
let bit_sub a b = bit_add a (bit_neg b)

let shift_known b =
  (* Shift amounts use the low 6 bits; only fully known amounts shift
     precisely. *)
  match is_const b with
  | Some s -> Some (Int64.to_int (Int64.logand s 63L))
  | None -> None

let forward_alu op w a b =
  let a = sext_to w a and b = sext_to w b in
  let r =
    match op with
    | Instr.And -> bit_and a b
    | Instr.Or -> bit_or a b
    | Instr.Xor -> bit_xor a b
    | Instr.Bic -> bit_and a (bit_not b)
    | Instr.Add -> bit_add a b
    | Instr.Sub -> bit_sub a b
    | Instr.Mul -> (
      match (is_const a, is_const b) with
      | Some x, Some y -> const (Int64.mul x y)
      | _ ->
        (* Known trailing zeros of the factors add up. *)
        let tz m =
          let rec go i =
            if i >= 64 then 64
            else if
              Int64.equal (Int64.logand (Int64.shift_right_logical m i) 1L) 1L
            then go (i + 1)
            else i
          in
          go 0
        in
        let k = min 63 (tz a.zeros + tz b.zeros) in
        { zeros = Int64.lognot (Int64.shift_left (-1L) k); ones = 0L })
    | Instr.Div | Instr.Rem -> (
      match (is_const a, is_const b) with
      | Some x, Some y -> const (Instr.eval_alu op Width.W64 x y)
      | _ -> top)
    | Instr.Sll -> (
      match shift_known b with
      | Some s ->
        { zeros =
            Int64.logor (Int64.shift_left a.zeros s)
              (Int64.lognot (Int64.shift_left (-1L) s));
          ones = Int64.shift_left a.ones s }
      | None -> top)
    | Instr.Srl -> (
      (* The shift reads the w-truncated value zero-extended. *)
      match shift_known b with
      | Some 0 -> a
      | Some s ->
        let az = zext_to w a in
        { zeros =
            Int64.logor
              (Int64.shift_right_logical az.zeros s)
              (Int64.shift_left (-1L) (64 - s));
          ones = Int64.shift_right_logical az.ones s }
      | None -> top)
    | Instr.Sra -> (
      match shift_known b with
      | Some s ->
        { zeros = Int64.shift_right a.zeros s;
          ones = Int64.shift_right a.ones s }
      | None -> top)
  in
  sext_to w r

let forward_cmp =
  (* 0 or 1: bits 1..63 known zero. *)
  { zeros = Int64.lognot 1L; ones = 0L }

let forward_msk w a = zext_to w a
let forward_sext w a = sext_to w a

let forward_load w ~signed =
  if Width.equal w Width.W64 then top
  else if signed then top |> sext_to w
  else top |> zext_to w

let forward_cmov w ~old ~src = join old (sext_to w src)

let pp ppf bv =
  (* MSB-first, abbreviating long runs. *)
  let bit i =
    if not (Int64.equal (Int64.logand bv.zeros (Int64.shift_left 1L i)) 0L)
    then '0'
    else if not (Int64.equal (Int64.logand bv.ones (Int64.shift_left 1L i)) 0L)
    then '1'
    else '?'
  in
  let s = String.init 64 (fun k -> bit (63 - k)) in
  (* Compress the leading run. *)
  let c0 = s.[0] in
  let rec run i = if i < 64 && s.[i] = c0 then run (i + 1) else i in
  let n = run 1 in
  if n > 8 then Format.fprintf ppf "%c*%d%s" c0 n (String.sub s n (64 - n))
  else Format.pp_print_string ppf s

let to_string bv = Format.asprintf "%a" pp bv

(* --- whole-function analysis ------------------------------------------------ *)

type result = { values : (int, t) Hashtbl.t; widths : (int, Width.t) Hashtbl.t }

let nregs = 32

let state_join a b = Array.init nregs (fun i -> join a.(i) b.(i))

let state_equal a b =
  let rec go i = i >= nregs || (equal a.(i) b.(i) && go (i + 1)) in
  go 0

let transfer res record state (ins : Prog.ins) =
  let get r = state.(Reg.to_int r) in
  let operand = function
    | Instr.Reg r -> get r
    | Instr.Imm v -> const v
  in
  let set r v =
    if not (Reg.equal r Reg.zero) then state.(Reg.to_int r) <- v
  in
  let out =
    match ins.op with
    | Instr.Alu { op; width; src1; src2; dst } ->
      let r = forward_alu op width (get src1) (operand src2) in
      set dst r;
      Some r
    | Instr.Cmp { dst; _ } ->
      set dst forward_cmp;
      Some forward_cmp
    | Instr.Cmov { width; src; dst; _ } ->
      let r = forward_cmov width ~old:(get dst) ~src:(operand src) in
      set dst r;
      Some r
    | Instr.Msk { width; src; dst } ->
      let r = forward_msk width (get src) in
      set dst r;
      Some r
    | Instr.Sext { width; src; dst } ->
      let r = forward_sext width (get src) in
      set dst r;
      Some r
    | Instr.Li { dst; imm } ->
      set dst (const imm);
      Some (const imm)
    | Instr.La { dst; _ } ->
      set dst top;
      Some top
    | Instr.Load { width; signed; dst; _ } ->
      let r = forward_load width ~signed in
      set dst r;
      Some r
    | Instr.Store _ | Instr.Emit _ -> None
    | Instr.Call _ ->
      List.iter (fun r -> set r top) Reg.caller_saved;
      Some top
  in
  match (record, out) with
  | true, Some v -> Hashtbl.replace res.values ins.iid v
  | _ -> ()

let analyze_func res (f : Prog.func) =
  let cfg = Cfg.of_func f in
  let n = Array.length f.blocks in
  let state_top () =
    let s = Array.make nregs top in
    s.(Reg.to_int Reg.zero) <- const 0L;
    s
  in
  let in_states : t array option array = Array.make n None in
  let out_states : t array option array = Array.make n None in
  let compute_in bi =
    if bi = 0 then Some (state_top ())
    else
      let contributions =
        List.filter_map
          (fun p -> out_states.(Label.to_int p))
          (Cfg.preds cfg (Label.of_int bi))
      in
      match contributions with
      | [] -> None
      | c :: cs -> Some (List.fold_left state_join (Array.copy c) cs)
  in
  let transfer_block bi state record =
    Array.iter (transfer res record state) f.blocks.(bi).Prog.body;
    state
  in
  (* The lattice is finite (each bit only loses information at joins), so
     plain iteration converges. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        let bi = Label.to_int l in
        match compute_in bi with
        | None -> ()
        | Some fresh ->
          let stale =
            match in_states.(bi) with
            | None -> true
            | Some old -> not (state_equal fresh old)
          in
          if stale then begin
            in_states.(bi) <- Some fresh;
            out_states.(bi) <- Some (transfer_block bi (Array.copy fresh) false);
            changed := true
          end)
      (Cfg.reverse_postorder cfg)
  done;
  (* Recording sweep. *)
  Array.iteri
    (fun bi _ ->
      let start =
        match in_states.(bi) with Some s -> Array.copy s | None -> state_top ()
      in
      ignore (transfer_block bi start true))
    f.blocks;
  (* Width assignment: same never-widen contract as VRP. *)
  Prog.iter_ins f (fun _ ins ->
      match ins.op with
      | Instr.Alu { width = orig; _ } | Instr.Cmp { width = orig; _ }
      | Instr.Cmov { width = orig; _ } | Instr.Msk { width = orig; _ }
      | Instr.Sext { width = orig; _ } -> (
        match Hashtbl.find_opt res.values ins.iid with
        | Some bv ->
          Hashtbl.replace res.widths ins.iid (Width.min orig (width bv))
        | None -> ())
      | Instr.Load { width; _ } | Instr.Store { width; _ } ->
        Hashtbl.replace res.widths ins.iid width
      | Instr.Li _ | Instr.La _ | Instr.Call _ | Instr.Emit _ -> ())

let analyze (p : Prog.t) =
  let res = { values = Hashtbl.create 1024; widths = Hashtbl.create 1024 } in
  List.iter (analyze_func res) p.funcs;
  res

let value_of res iid = Hashtbl.find_opt res.values iid
let width_of res iid = Hashtbl.find_opt res.widths iid
