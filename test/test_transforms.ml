(* Semantic preservation of the standalone transformation passes on
   generated MiniC programs, mirroring test_vrp's
   prop_semantics_preserved: Cleanup alone, and Constprop alone (over a
   pure VRP analysis, no width re-encoding), must leave the interpreter
   output byte-for-byte unchanged. *)

module Minic = Ogc_minic.Minic
module Interp = Ogc_ir.Interp
module Prog = Ogc_ir.Prog
module Vrp = Ogc_core.Vrp
module Cleanup = Ogc_core.Cleanup
module Constprop = Ogc_core.Constprop
module Gen_minic = Ogc_fuzz.Gen_minic

let interp_cfg = { Interp.default_config with max_steps = 2_000_000 }

let emissions (out : Interp.outcome) =
  (out.Interp.checksum, out.Interp.emitted)

let check_preserved what before after =
  let bc, be = emissions before and ac, ae = emissions after in
  if not (Int64.equal bc ac) then
    QCheck.Test.fail_reportf "%s changed the checksum: %Ld -> %Ld" what bc ac
  else if be <> ae then
    QCheck.Test.fail_reportf "%s changed the emitted values" what
  else true

let prop_cleanup_preserves =
  QCheck.Test.make ~name:"Cleanup alone preserves program output" ~count:200
    Gen_minic.arbitrary_program (fun src ->
      let p = Minic.compile src in
      let before = Interp.run ~config:interp_cfg p in
      ignore (Cleanup.run p);
      Ogc_ir.Validate.program p;
      check_preserved "cleanup" before (Interp.run ~config:interp_cfg p))

let prop_cleanup_idempotent =
  QCheck.Test.make ~name:"a second Cleanup finds nothing" ~count:100
    Gen_minic.arbitrary_program (fun src ->
      let p = Minic.compile src in
      ignore (Cleanup.run p);
      let s = Cleanup.run p in
      if
        s.Cleanup.threaded <> 0
        || s.Cleanup.branches_unified <> 0
        || s.Cleanup.pruned_blocks <> 0
        || s.Cleanup.pruned_instructions <> 0
      then
        QCheck.Test.fail_reportf
          "second pass still found work: %d threaded, %d unified, %d blocks"
          s.Cleanup.threaded s.Cleanup.branches_unified s.Cleanup.pruned_blocks
      else true)

let prop_constprop_preserves =
  QCheck.Test.make
    ~name:"Constprop alone (pure VRP analysis) preserves program output"
    ~count:200 Gen_minic.arbitrary_program (fun src ->
      let p = Minic.compile src in
      let before = Interp.run ~config:interp_cfg p in
      (* Vrp.analyze computes ranges without touching the program, so
         every change below is Constprop's alone. *)
      let res = Vrp.analyze p in
      ignore (Constprop.run res p);
      Ogc_ir.Validate.program p;
      check_preserved "constprop" before (Interp.run ~config:interp_cfg p))

let prop_cleanup_then_constprop_preserves =
  QCheck.Test.make ~name:"Cleanup then Constprop preserves program output"
    ~count:100 Gen_minic.arbitrary_program (fun src ->
      let p = Minic.compile src in
      let before = Interp.run ~config:interp_cfg p in
      ignore (Cleanup.run p);
      let res = Vrp.analyze p in
      ignore (Constprop.run res p);
      Ogc_ir.Validate.program p;
      check_preserved "cleanup+constprop" before
        (Interp.run ~config:interp_cfg p))

let () =
  Alcotest.run "transforms"
    [
      ( "semantics",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_cleanup_preserves;
            prop_cleanup_idempotent;
            prop_constprop_preserves;
            prop_cleanup_then_constprop_preserves;
          ] );
    ]
