lib/core/interval.mli: Format Instr Ogc_isa Width
