module Prog = Ogc_ir.Prog
module Interp = Ogc_ir.Interp
module Pool = Ogc_exec.Pool
module Metrics = Ogc_obs.Metrics
module Span = Ogc_obs.Span

type source = Minic of string | Ir

type failure = {
  f_index : int;
  f_source : source;
  f_chain : string;
  f_detail : string;
  f_prog : Prog.t;
  f_min : Prog.t option;
}

type summary = {
  s_seed : int;
  s_count : int;
  s_minic : int;
  s_ir : int;
  s_skipped : int;
  s_chains : int;
  s_failures : failure list;
  s_gen_errors : (int * string) list;
}

let transforms_for ~inject ~seed ~index =
  let rng = Random.State.make [| seed; index; 1 |] in
  let random =
    List.init 2 (fun _ -> Oracle.of_chain (Oracle.random_chain rng))
  in
  Oracle.default_transforms @ random
  @ if inject then [ Oracle.injected_width_bug ] else []

let generate ?(pressure = false) ?(zero_bias = false) ~seed ~index () =
  let rng = Random.State.make [| seed; index; 0 |] in
  if index mod 3 = 2 then (Ir, Gen_ir.program rng)
  else
    let src =
      if zero_bias then Gen_minic.zero_program rng
      else if pressure then Gen_minic.pressure_program rng
      else Gen_minic.program rng
    in
    (Minic src, Ogc_minic.Minic.compile src)

(* Per-program verdict, computed in a pool worker.  Workers only
   compute; counters and the summary fold run on the caller's domain so
   the result is independent of scheduling. *)
type verdict =
  | V_gen_error of string
  | V_skipped of source
  | V_checked of {
      source : source;
      chains : int;
      prog : Prog.t;
      diffs : Oracle.diff list;
    }

let check_one ~config ~inject ~pressure ~zero_bias ~seed index =
  match generate ~pressure ~zero_bias ~seed ~index () with
  | exception Ogc_minic.Minic.Error msg -> V_gen_error msg
  | source, prog -> (
    let transforms = transforms_for ~inject ~seed ~index in
    match Oracle.check ~config ~transforms prog with
    | Oracle.Skipped _ -> V_skipped source
    | Oracle.Checked diffs ->
      V_checked { source; chains = List.length transforms; prog; diffs })

(* Diffs of the same kind for the purpose of "still the same failure"
   during shrinking: a semantic divergence must stay a semantic
   divergence, a well-formedness violation a violation, a crash a
   crash. *)
let category (d : Oracle.diff) =
  if String.starts_with ~prefix:"transform raised" d.Oracle.d_detail then `Crash
  else if
    String.starts_with ~prefix:"validator" d.Oracle.d_detail
    || String.starts_with ~prefix:"welldef" d.Oracle.d_detail
  then `Invalid
  else `Semantic

let shrink_failure ?(config = Oracle.interp_config) ~seed f =
  let transforms = transforms_for ~inject:true ~seed ~index:f.f_index in
  match
    List.find_opt
      (fun (t : Oracle.transform) -> String.equal t.Oracle.t_name f.f_chain)
      transforms
  with
  | None -> f
  | Some t ->
    let want = category { Oracle.d_chain = f.f_chain; d_detail = f.f_detail } in
    (* Candidates must stay structurally valid AND convention-conforming:
       otherwise the reducer drifts into programs that read clobbered
       registers, where every pass is fair game and the "failure" it
       preserves stops meaning anything. *)
    let keep q =
      match Ogc_ir.Validate.program q with
      | exception _ -> false
      | () -> (
        Ogc_ir.Welldef.check q = None
        &&
        match Oracle.check ~config ~transforms:[ t ] q with
        | Oracle.Checked (d :: _) -> category d = want
        | _ -> false)
    in
    let minimized =
      Span.with_ ~name:"fuzz:shrink" (fun () -> Shrink.minimize ~keep f.f_prog)
    in
    { f with f_min = Some minimized }

let run ?jobs ?(inject = false) ?(shrink = false) ?(pressure = false)
    ?(zero_bias = false) ?(config = Oracle.interp_config) ~seed ~count () =
  let programs_total = Metrics.counter "ogc_fuzz_programs_total" in
  let chains_total = Metrics.counter "ogc_fuzz_chains_total" in
  let diffs_total = Metrics.counter "ogc_fuzz_diffs_total" in
  let skipped_total = Metrics.counter "ogc_fuzz_skipped_total" in
  let verdicts =
    Span.with_ ~name:"fuzz:campaign" (fun () ->
        Pool.map ?jobs
          (check_one ~config ~inject ~pressure ~zero_bias ~seed)
          (List.init count (fun i -> i)))
  in
  let summary =
    List.fold_left
      (fun (i, acc) verdict ->
        Metrics.incr programs_total;
        let src_counts source =
          match source with
          | Minic _ -> { acc with s_minic = acc.s_minic + 1 }
          | Ir -> { acc with s_ir = acc.s_ir + 1 }
        in
        let acc =
          match verdict with
          | V_gen_error msg ->
            { acc with s_gen_errors = (i, msg) :: acc.s_gen_errors }
          | V_skipped source ->
            Metrics.incr skipped_total;
            let acc = src_counts source in
            { acc with s_skipped = acc.s_skipped + 1 }
          | V_checked { source; chains; prog; diffs } ->
            Metrics.add chains_total (float_of_int chains);
            let acc = src_counts source in
            let failures =
              List.map
                (fun (d : Oracle.diff) ->
                  Metrics.incr diffs_total;
                  {
                    f_index = i;
                    f_source = source;
                    f_chain = d.Oracle.d_chain;
                    f_detail = d.Oracle.d_detail;
                    f_prog = prog;
                    f_min = None;
                  })
                diffs
            in
            {
              acc with
              s_chains = acc.s_chains + chains;
              s_failures = List.rev_append failures acc.s_failures;
            }
        in
        (i + 1, acc))
      ( 0,
        {
          s_seed = seed;
          s_count = count;
          s_minic = 0;
          s_ir = 0;
          s_skipped = 0;
          s_chains = 0;
          s_failures = [];
          s_gen_errors = [];
        } )
      verdicts
    |> snd
  in
  let summary =
    {
      summary with
      s_failures = List.rev summary.s_failures;
      s_gen_errors = List.rev summary.s_gen_errors;
    }
  in
  if shrink then
    {
      summary with
      s_failures = List.map (shrink_failure ~config ~seed) summary.s_failures;
    }
  else summary
