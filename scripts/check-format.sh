#!/bin/sh
# Non-blocking formatting check: reports drift via `dune build @fmt` when
# an ocamlformat matching .ocamlformat's pinned version is available, and
# skips (successfully) otherwise, so machines without the formatter are
# never broken by it.  CI runs this with continue-on-error as a second
# safety net.
set -u

if ! command -v ocamlformat >/dev/null 2>&1; then
  echo "check-format: ocamlformat not installed, skipping"
  exit 0
fi

want=$(sed -n 's/^version *= *//p' "$(dirname "$0")/../.ocamlformat")
have=$(ocamlformat --version 2>/dev/null)
if [ -n "$want" ] && [ "$want" != "$have" ]; then
  echo "check-format: ocamlformat $have != pinned $want, skipping"
  exit 0
fi

exec dune build @fmt
