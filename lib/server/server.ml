module J = Ogc_json.Json
module Pool = Ogc_exec.Pool
module Metrics = Ogc_obs.Metrics
module Span = Ogc_obs.Span
module Log = Ogc_obs.Log
module Flight = Ogc_obs.Flight

exception Deadline_exceeded

(* Per-op request counters and latency histograms; "invalid" covers
   lines that never parsed far enough to name an op. *)
let known_ops =
  [ "analyze"; "stats"; "ping"; "metrics"; "fetch"; "put"; "trace"; "flight";
    "invalid" ]

let m_requests =
  List.map
    (fun o ->
      (o, Metrics.counter "ogc_server_requests_total" ~labels:[ ("op", o) ]))
    known_ops

let m_latency =
  List.map
    (fun o ->
      ( o,
        Metrics.histogram "ogc_server_request_seconds" ~labels:[ ("op", o) ]
      ))
    known_ops

type addr = Unix_sock of string | Tcp of string * int

type config = {
  addr : addr;
  jobs : int option;
  queue_limit : int;
  cache_capacity : int;
  cache_dir : string option;
  shard_id : string option;
  slow_ms : float option; (* flight-recorder slow-request threshold *)
  inject_slow_ms : float option; (* fault injection: delay every analyze *)
}

let default_config addr =
  { addr;
    jobs = None;
    queue_limit = 64;
    cache_capacity = 256;
    cache_dir = None;
    shard_id = None;
    slow_ms = None;
    inject_slow_ms = None }

let addr_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let lat_window = 1024

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  pool : Pool.t;
  cache : Cache.t;
  passes : Ogc_pass.Pass.Store.t;
      (* per-pass artifact tier under the whole-result cache: a request
         that misses [cache] still reuses the chain-prefix artifacts
         (VRP fixpoint, training profiles) computed by earlier requests *)
  pending : int Atomic.t;  (* analyses queued or running *)
  stopping : bool Atomic.t;
  started : float;
  m : Mutex.t;  (* guards the mutable fields below *)
  mutable conns : Unix.file_descr list;
  mutable threads : Thread.t list;
  mutable requests : int;
  mutable analyses : int;  (* cache misses actually computed *)
  mutable errors : int;
  mutable rejected : int;  (* overload replies *)
  mutable expired : int;  (* deadline replies *)
  mutable fetches : int;  (* replication fetch ops served *)
  mutable fetch_hits : int;  (* ... that found the key *)
  mutable puts : int;  (* replication put ops accepted *)
  latencies : float array;  (* ring of the last [lat_window] latencies, ms *)
  mutable lat_n : int;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* --- socket setup --------------------------------------------------------- *)

let sockaddr_of = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } ->
          Fmt.failwith "cannot resolve %s" host
        | h -> h.Unix.h_addr_list.(0)
        | exception Not_found -> Fmt.failwith "cannot resolve %s" host)
    in
    Unix.ADDR_INET (ip, port)

let create cfg =
  let domain =
    match cfg.addr with Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match cfg.addr with
  | Unix_sock path ->
    (* A stale socket file from a previous run would make bind fail. *)
    if Sys.file_exists path then Unix.unlink path
  | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
  Unix.bind fd (sockaddr_of cfg.addr);
  Unix.listen fd 64;
  (match cfg.slow_ms with
  | Some _ -> Flight.set_slow_ms cfg.slow_ms
  | None -> ());
  (* Co-located shards sharing a cache_dir get disjoint subdirectories,
     so their atomic tmp+rename writes can never collide on one path. *)
  let cache_dir =
    match (cfg.cache_dir, cfg.shard_id) with
    | Some d, Some id ->
      if not (Sys.file_exists d) then Unix.mkdir d 0o755;
      Some (Filename.concat d ("shard-" ^ id))
    | d, _ -> d
  in
  { cfg;
    listen_fd = fd;
    pool = Pool.create ?jobs:cfg.jobs ();
    cache = Cache.create ~capacity:cfg.cache_capacity ?dir:cache_dir ();
    passes = Ogc_pass.Pass.Store.create ~capacity:cfg.cache_capacity ();
    pending = Atomic.make 0;
    stopping = Atomic.make false;
    started = Unix.gettimeofday ();
    m = Mutex.create ();
    conns = [];
    threads = [];
    requests = 0;
    analyses = 0;
    errors = 0;
    rejected = 0;
    expired = 0;
    fetches = 0;
    fetch_hits = 0;
    puts = 0;
    latencies = Array.make lat_window 0.0;
    lat_n = 0 }

(* Co-located in-process shards: wire every shard's pass store to peek
   at its siblings' on a local miss, so a chain-prefix artifact computed
   on any shard is visible fleet-wide.  [peek] never takes a sibling's
   find path, so the consultation cannot recurse or deadlock. *)
let link_stores ts =
  List.iter
    (fun t ->
      let siblings = List.filter (fun s -> s != t) ts in
      Ogc_pass.Pass.Store.set_fallback t.passes (fun ~pass key ->
          List.find_map
            (fun s -> Ogc_pass.Pass.Store.peek s.passes ~pass key)
            siblings))
    ts

(* --- stats ----------------------------------------------------------------- *)

let percentile = Metrics.percentile_sorted

let stats_json t =
  let c = Cache.stats t.cache in
  let lats, counters, repl =
    locked t (fun () ->
        ( Array.sub t.latencies 0 (min t.lat_n lat_window),
          (t.requests, t.analyses, t.errors, t.rejected, t.expired, t.lat_n),
          (t.fetches, t.fetch_hits, t.puts) ))
  in
  let requests, analyses, errors, rejected, expired, lat_n = counters in
  let fetches, fetch_hits, puts = repl in
  Array.sort compare lats;
  let lookups = c.Cache.hits + c.Cache.misses in
  J.Obj
    ((match t.cfg.shard_id with
     | Some id -> [ ("shard_id", J.Str id) ]
     | None -> [])
    @ [ ("uptime_s", J.Float (Unix.gettimeofday () -. t.started));
      ("requests", J.Int requests);
      ("analyses", J.Int analyses);
      ("errors", J.Int errors);
      ("rejected", J.Int rejected);
      ("expired", J.Int expired);
      ("cache",
       J.Obj
         [ ("entries", J.Int c.Cache.entries);
           ("capacity", J.Int c.Cache.capacity);
           ("hits", J.Int c.Cache.hits);
           ("misses", J.Int c.Cache.misses);
           ("hit_rate",
            J.Float
              (if lookups = 0 then 0.0
               else float_of_int c.Cache.hits /. float_of_int lookups));
           ("evictions", J.Int c.Cache.evictions);
           ("disk_hits", J.Int c.Cache.disk_hits);
           ("mem_bytes", J.Int c.Cache.mem_bytes);
           ("disk_entries", J.Int c.Cache.disk_entries);
           ("disk_bytes", J.Int c.Cache.disk_bytes) ]);
      ("passes",
       J.Obj
         [ ("artifacts", J.Int (Ogc_pass.Pass.Store.entries t.passes));
           ("by_pass",
            J.Obj
              (let replicas =
                 Ogc_pass.Pass.Store.replica_stats t.passes
               in
               List.map
                 (fun (n, h, m) ->
                   ( n,
                     J.Obj
                       ([ ("hits", J.Int h); ("misses", J.Int m) ]
                       @
                       match List.assoc_opt n replicas with
                       | Some r -> [ ("replica", J.Int r) ]
                       | None -> []) ))
                 (Ogc_pass.Pass.Store.pass_stats t.passes))) ]);
      ("replication",
       J.Obj
         [ ("fetches", J.Int fetches);
           ("fetch_hits", J.Int fetch_hits);
           ("puts", J.Int puts) ]);
      ("latency_ms",
       J.Obj
         [ ("count", J.Int lat_n);
           ("p50", J.Float (percentile lats 0.50));
           ("p95", J.Float (percentile lats 0.95)) ]);
      (* Per-op second-denominated histograms from the metrics registry;
         all-zero until metrics are enabled. *)
      ("latency_by_op",
       J.Obj (List.map (fun (o, h) -> (o, Metrics.histogram_json h)) m_latency));
      ("pool",
       J.Obj
         [ ("jobs", J.Int (Pool.size t.pool));
           ("pending", J.Int (Atomic.get t.pending));
           ("queue_limit", J.Int t.cfg.queue_limit) ]) ])

let record_latency t ms =
  locked t (fun () ->
      t.latencies.(t.lat_n mod lat_window) <- ms;
      t.lat_n <- t.lat_n + 1)

(* --- request handling ------------------------------------------------------ *)

let envelope ?id ~status extra =
  J.to_string ~indent:false
    (J.Obj
       (("version", J.Str Version.version)
        :: (match id with Some s -> [ ("id", J.Str s) ] | None -> [])
        @ (("status", J.Str status) :: extra)))

(* Per-request facts the flight recorder wants but only the handler
   knows; filled in as the request progresses, written once at the end
   of [handle_line]. *)
type flight_info = {
  mutable fi_id : string option;
  mutable fi_trace : string option;
  mutable fi_key : string;
  mutable fi_queue_ms : float;
  mutable fi_cache : string;
  mutable fi_status : string;
}

let handle_analyze t ~t0 ~fi (req : Protocol.request) =
  (match t.cfg.inject_slow_ms with
  | Some ms when ms > 0.0 -> Thread.delay (ms /. 1000.0)
  | _ -> ());
  let id = req.Protocol.id in
  let key = Protocol.cache_key req in
  fi.fi_key <- Protocol.route_key req;
  let fail status =
    fi.fi_status <- status;
    envelope ?id ~status
  in
  match Span.with_ ~name:"cache_lookup" (fun () -> Cache.find t.cache key) with
  | Some payload ->
    record_latency t ((Unix.gettimeofday () -. t0) *. 1000.0);
    fi.fi_cache <- "hit";
    envelope ?id ~status:"ok"
      [ ("cache", J.Str "hit"); ("result", J.of_string payload) ]
  | None ->
    if Option.fold ~none:false ~some:(fun ms -> ms <= 0) req.Protocol.deadline_ms
    then begin
      locked t (fun () -> t.expired <- t.expired + 1);
      fail "deadline_exceeded"
        [ ("error", J.Str "deadline expired before the analysis started") ]
    end
    else if Atomic.fetch_and_add t.pending 1 >= t.cfg.queue_limit then begin
      (* Bounded queue: shed load instead of accepting unbounded work. *)
      Atomic.decr t.pending;
      locked t (fun () -> t.rejected <- t.rejected + 1);
      fail "overloaded"
        [ ("error", J.Str "analysis queue is full, retry later");
          ("queue_limit", J.Int t.cfg.queue_limit) ]
    end
    else begin
      let deadline =
        Option.map (fun ms -> t0 +. (float_of_int ms /. 1000.0))
          req.Protocol.deadline_ms
      in
      let submitted = Unix.gettimeofday () in
      let ticket =
        Pool.submit t.pool (fun () ->
            fi.fi_queue_ms <- (Unix.gettimeofday () -. submitted) *. 1000.0;
            (match deadline with
            | Some d when Unix.gettimeofday () > d -> raise Deadline_exceeded
            | _ -> ());
            (* Runs on a worker domain: this span (and the build/
               simulate/energy spans below it) lands on that domain's
               track, with the queue wait visible as the gap from the
               connection thread's enclosing request span. *)
            Span.with_ ~name:"analyze"
              ~args:[ ("pass", J.Str (Protocol.pass_name req.Protocol.pass)) ]
              (fun () ->
                J.to_string ~indent:false
                  (Protocol.analyze ~store:t.passes req)))
      in
      let outcome =
        match Pool.await ticket with
        | payload -> Ok payload
        | exception e -> Error e
      in
      Atomic.decr t.pending;
      match outcome with
      | Ok payload ->
        Cache.store t.cache key payload;
        record_latency t ((Unix.gettimeofday () -. t0) *. 1000.0);
        locked t (fun () -> t.analyses <- t.analyses + 1);
        fi.fi_cache <- "miss";
        envelope ?id ~status:"ok"
          [ ("cache", J.Str "miss"); ("result", J.of_string payload) ]
      | Error Deadline_exceeded ->
        locked t (fun () -> t.expired <- t.expired + 1);
        fail "deadline_exceeded"
          [ ("error", J.Str "deadline expired before the analysis started") ]
      | Error (J.Parse_error msg | Failure msg) ->
        locked t (fun () -> t.errors <- t.errors + 1);
        fail "error" [ ("error", J.Str msg) ]
      | Error e ->
        locked t (fun () -> t.errors <- t.errors + 1);
        fail "error" [ ("error", J.Str (Printexc.to_string e)) ]
    end

let shard_name t =
  match t.cfg.shard_id with Some i -> "shard-" ^ i | None -> "serve"

let handle_line t line =
  let t0 = Unix.gettimeofday () in
  locked t (fun () -> t.requests <- t.requests + 1);
  let fi =
    { fi_id = None; fi_trace = None; fi_key = ""; fi_queue_ms = 0.0;
      fi_cache = ""; fi_status = "ok" }
  in
  let err status = fi.fi_status <- status in
  let op_name, response =
    match J.of_string line with
    | exception J.Parse_error msg ->
      locked t (fun () -> t.errors <- t.errors + 1);
      err "error";
      ("invalid", envelope ~status:"error" [ ("error", J.Str msg) ])
    | j -> (
      let id = match J.member "id" j with J.Str s -> Some s | _ -> None in
      fi.fi_id <- id;
      match Protocol.op_of_json j with
      | exception J.Parse_error msg ->
        locked t (fun () -> t.errors <- t.errors + 1);
        err "error";
        ("invalid", envelope ?id ~status:"error" [ ("error", J.Str msg) ])
      | exception Protocol.Version_mismatch got ->
        locked t (fun () -> t.errors <- t.errors + 1);
        err "unsupported_protocol";
        ( "invalid",
          envelope ?id ~status:"unsupported_protocol"
            [ ("error", J.Str "protocol version mismatch");
              ("expected", J.Int Protocol.proto_version);
              ("got", J.Int got) ] )
      | Protocol.Ping ->
        ("ping", envelope ?id ~status:"ok" [ ("op", J.Str "ping") ])
      | Protocol.Stats ->
        ( "stats",
          envelope ?id ~status:"ok"
            [ ("op", J.Str "stats"); ("result", stats_json t) ] )
      | Protocol.Metrics ->
        ( "metrics",
          envelope ?id ~status:"ok"
            [ ("op", J.Str "metrics");
              ("exposition", J.Str (Metrics.to_prometheus ()));
              ("result", Metrics.to_json ()) ] )
      | Protocol.Trace ->
        ( "trace",
          envelope ?id ~status:"ok"
            [ ("op", J.Str "trace");
              ("process", J.Str (shard_name t));
              ("result", Span.export ()) ] )
      | Protocol.Flight ->
        ( "flight",
          envelope ?id ~status:"ok"
            [ ("op", J.Str "flight"); ("result", Flight.to_json_all ()) ] )
      | Protocol.Fetch key -> (
        locked t (fun () -> t.fetches <- t.fetches + 1);
        match Cache.peek t.cache key with
        | Some payload ->
          locked t (fun () -> t.fetch_hits <- t.fetch_hits + 1);
          ( "fetch",
            envelope ?id ~status:"ok"
              [ ("op", J.Str "fetch");
                ("found", J.Bool true);
                ("result", J.of_string payload) ] )
        | None ->
          ( "fetch",
            envelope ?id ~status:"ok"
              [ ("op", J.Str "fetch"); ("found", J.Bool false) ] ))
      | Protocol.Put (key, result) ->
        Cache.store t.cache key (J.to_string ~indent:false result);
        locked t (fun () -> t.puts <- t.puts + 1);
        ("put", envelope ?id ~status:"ok" [ ("op", J.Str "put") ])
      | Protocol.Analyze req ->
        fi.fi_trace <- req.Protocol.trace_id;
        (* Install the wire trace context around the request span: the
           span then records trace_id/parent_span and reparents the
           ambient context for everything underneath, and the flow-in
           event closes the arrow from the caller's flow-out — both ends
           derive the same id from wire data alone. *)
        let ctx =
          match req.Protocol.trace_id with
          | Some tr when Span.enabled () ->
            Some
              { Span.trace = tr;
                parent = Option.value ~default:0 req.Protocol.parent_span }
          | _ -> None
        in
        let serve () =
          Span.with_ ~name:"request"
            ~args:[ ("op", J.Str "analyze") ]
            (fun () ->
              (match (ctx, req.Protocol.parent_span) with
              | Some c, Some parent ->
                Span.flow_in ~id:(Span.wire_flow_id ~trace:c.Span.trace ~parent)
              | _ -> ());
              handle_analyze t ~t0 ~fi req)
        in
        ( "analyze",
          match ctx with
          | None -> serve ()
          | Some _ -> Span.with_context ctx serve ))
  in
  let dt = Unix.gettimeofday () -. t0 in
  Flight.record
    { Flight.f_id = fi.fi_id;
      f_trace = fi.fi_trace;
      f_key = fi.fi_key;
      f_shard = shard_name t;
      f_op = op_name;
      f_queue_ms = fi.fi_queue_ms;
      f_hedged = false;
      f_cache = fi.fi_cache;
      f_outcome = fi.fi_status;
      f_ms = dt *. 1000.0;
      f_ts = t0 };
  if Metrics.enabled () then begin
    (match List.assoc_opt op_name m_requests with
    | Some c -> Metrics.incr c
    | None -> ());
    match List.assoc_opt op_name m_latency with
    | Some h -> Metrics.observe h dt
    | None -> ()
  end;
  Log.debug "request"
    ~fields:[ ("op", J.Str op_name); ("seconds", J.Float dt) ];
  response

(* --- connections ----------------------------------------------------------- *)

let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let continue = ref true in
     while !continue do
       match input_line ic with
       | "" -> ()
       | line ->
         output_string oc (handle_line t (String.trim line));
         output_char oc '\n';
         flush oc
       | exception (End_of_file | Sys_error _) -> continue := false
     done
   with _ -> ());
  locked t (fun () ->
      t.conns <- List.filter (fun c -> c != fd) t.conns);
  try Unix.close fd with Unix.Unix_error _ -> ()

(* --- lifecycle ------------------------------------------------------------- *)

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* Wake the accept loop with a throwaway connection; [run] does the
       actual drain.  Async-signal-safe enough for a SIGINT handler: no
       locks are taken. *)
    try
      let domain =
        match t.cfg.addr with
        | Unix_sock _ -> Unix.PF_UNIX
        | Tcp _ -> Unix.PF_INET
      in
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (sockaddr_of t.cfg.addr)
       with Unix.Unix_error _ -> ());
      Unix.close fd
    with _ -> ()
  end

let install_sigint t =
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop t))

(* SIGUSR1 dumps the flight recorder as NDJSON to stderr: the incident
   tool for "what were the last few thousand requests?" without
   restarting or reconfiguring anything. *)
let install_sigusr1 () =
  try
    Sys.set_signal Sys.sigusr1
      (Sys.Signal_handle
         (fun _ ->
           Flight.dump stderr;
           flush stderr))
  with Invalid_argument _ -> ()

(* A peer that disconnects mid-write must surface as EPIPE on the
   offending call, not kill the whole process. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let run t =
  ignore_sigpipe ();
  install_sigusr1 ();
  Log.info "ogc-serve: listening"
    ~fields:
      [ ("version", J.Str Version.version);
        ("addr", J.Str (addr_string t.cfg.addr));
        ("jobs", J.Int (Pool.size t.pool));
        ("queue_limit", J.Int t.cfg.queue_limit) ];
  let continue = ref true in
  while !continue do
    if Atomic.get t.stopping then continue := false
    else
      match Unix.accept t.listen_fd with
      | fd, _ ->
        if Atomic.get t.stopping then begin
          (try Unix.close fd with Unix.Unix_error _ -> ());
          continue := false
        end
        else
          locked t (fun () ->
              t.conns <- fd :: t.conns;
              t.threads <- Thread.create (handle_conn t) fd :: t.threads)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (* Graceful drain: stop accepting, nudge idle connections to EOF (a
     connection mid-request still writes its response first — its read
     side only reports EOF on the next request), finish every in-flight
     analysis, then retire the worker domains. *)
  Log.info "ogc-serve: draining"
    ~fields:[ ("pending", J.Int (Atomic.get t.pending)) ];
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.cfg.addr with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  let conns, threads =
    locked t (fun () -> (t.conns, t.threads))
  in
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    conns;
  List.iter Thread.join threads;
  Pool.shutdown t.pool;
  Log.info "ogc-serve: stopped"
    ~fields:
      [ ("uptime_s", J.Float (Unix.gettimeofday () -. t.started));
        ("requests", J.Int (locked t (fun () -> t.requests))) ]
