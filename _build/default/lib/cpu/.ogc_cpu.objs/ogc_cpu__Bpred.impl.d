lib/cpu/bpred.ml: Bool Bytes Char Machine_config
