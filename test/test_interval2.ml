(* Second interval battery: the auxiliary range constructors, division
   corner cases, shift amounts, and the widening landmarks VRP relies on
   (the landmarks themselves live in Vrp, but their contract — compares at
   narrow widths stay refinable after widening — is checked here at the
   domain level). *)

open Ogc_isa
module I = Ogc_core.Interval

let iv = Alcotest.testable I.pp I.equal

let test_constructors () =
  Alcotest.check iv "bool" (I.v 0L 1L) I.bool;
  Alcotest.check iv "full W8" (I.v (-128L) 127L) (I.full Width.W8);
  Alcotest.check iv "zero_extended W8" (I.v 0L 255L) (I.zero_extended Width.W8);
  Alcotest.check iv "zero_extended W16" (I.v 0L 65535L)
    (I.zero_extended Width.W16);
  Alcotest.check iv "zero_extended W32" (I.v 0L 0xFFFF_FFFFL)
    (I.zero_extended Width.W32);
  Alcotest.check iv "zero_extended W64 is top" I.top
    (I.zero_extended Width.W64);
  Alcotest.(check int64) "unsigned_max W16" 65535L (I.unsigned_max Width.W16);
  Alcotest.(check int64) "unsigned_max W64 saturates" Int64.max_int
    (I.unsigned_max Width.W64)

let test_loads () =
  Alcotest.check iv "signed byte load" (I.full Width.W8)
    (I.forward_load Width.W8 ~signed:true);
  Alcotest.check iv "unsigned byte load" (I.v 0L 255L)
    (I.forward_load Width.W8 ~signed:false);
  Alcotest.check iv "quad load" (I.full Width.W64)
    (I.forward_load Width.W64 ~signed:false)

let test_division_corners () =
  (* Negative constant divisor is monotone decreasing. *)
  Alcotest.check iv "div by -2" (I.v (-5L) (-2L))
    (I.forward_alu Instr.Div Width.W64 (I.v 4L 10L) (I.const (-2L)));
  (* min_int dividend with a negative divisor must stay conservative. *)
  Alcotest.(check bool) "min_int/-1 covered" true
    (I.contains
       (I.forward_alu Instr.Div Width.W64 (I.v Int64.min_int 0L) (I.const (-1L)))
       Int64.min_int);
  (* Divisor range spanning zero includes the x/0 = 0 result. *)
  Alcotest.(check bool) "x/0=0 included" true
    (I.contains
       (I.forward_alu Instr.Div Width.W64 (I.v 5L 10L) (I.v (-2L) 2L))
       0L);
  (* Magnitude bound: |x/y| <= |x|. *)
  let r = I.forward_alu Instr.Div Width.W64 (I.v (-100L) 50L) (I.v 3L 9L) in
  Alcotest.(check bool) "magnitude bound" true
    (Int64.compare r.I.lo (-100L) >= 0 && Int64.compare r.I.hi 100L <= 0);
  (* Four-corner bounds are exact on strictly positive operand ranges. *)
  Alcotest.check iv "positive / positive" (I.v 25L 100L)
    (I.forward_alu Instr.Div Width.W64 (I.v 100L 200L) (I.v 2L 4L));
  Alcotest.check iv "positive / negative" (I.v (-100L) (-25L))
    (I.forward_alu Instr.Div Width.W64 (I.v 100L 200L) (I.v (-4L) (-2L)))

let test_rem_corners () =
  Alcotest.check iv "rem by [1,1]" (I.const 0L)
    (I.forward_alu Instr.Rem Width.W64 (I.v 0L 100L) (I.const 1L));
  Alcotest.check iv "rem negative dividend" (I.v (-6L) 0L)
    (I.forward_alu Instr.Rem Width.W64 (I.v (-100L) 0L) (I.const 7L));
  Alcotest.check iv "rem mixed dividend" (I.v (-6L) 6L)
    (I.forward_alu Instr.Rem Width.W64 (I.v (-100L) 100L) (I.const 7L));
  (* Same-quotient window: every dividend in [8,12] shares quotient 1 by
     7, so the remainder tracks the dividend exactly. *)
  Alcotest.check iv "same-quotient rem" (I.v 1L 5L)
    (I.forward_alu Instr.Rem Width.W64 (I.v 8L 12L) (I.const 7L))

let test_shift_amounts () =
  (* Amounts partially out of [0,63] defeat prediction. *)
  Alcotest.check iv "negative amount" (I.full Width.W64)
    (I.forward_alu Instr.Sll Width.W64 (I.const 1L) (I.v (-1L) 1L));
  (* srl by a possibly-zero amount keeps the (negative) identity values. *)
  Alcotest.(check bool) "srl amount 0 keeps sign" true
    (I.contains
       (I.forward_alu Instr.Srl Width.W64 (I.const (-8L)) (I.v 0L 1L))
       (-8L));
  (* sra keeps ordering on negative inputs. *)
  Alcotest.check iv "sra of negatives" (I.v (-4L) (-1L))
    (I.forward_alu Instr.Sra Width.W64 (I.v (-8L) (-4L)) (I.v 1L 2L))

let test_cmp_op_precision () =
  let c = I.forward_cmp_op in
  Alcotest.check iv "disjoint lt" (I.const 1L)
    (c Instr.Clt Width.W64 (I.v 0L 5L) (I.v 9L 9L));
  Alcotest.check iv "disjoint ge" (I.const 0L)
    (c Instr.Clt Width.W64 (I.v 9L 20L) (I.v 0L 9L));
  Alcotest.check iv "overlap undecided" I.bool
    (c Instr.Clt Width.W64 (I.v 0L 10L) (I.v 5L 15L));
  Alcotest.check iv "const eq" (I.const 1L)
    (c Instr.Ceq Width.W64 (I.const 7L) (I.const 7L));
  Alcotest.check iv "disjoint eq" (I.const 0L)
    (c Instr.Ceq Width.W64 (I.v 0L 5L) (I.v 6L 9L));
  (* Unsigned compares refuse to decide when a side may be negative. *)
  Alcotest.check iv "unsigned with negative" I.bool
    (c Instr.Cult Width.W64 (I.v (-5L) (-1L)) (I.const 3L));
  (* Ranges wider than the compare width cannot decide either. *)
  Alcotest.check iv "wide range at W8" I.bool
    (c Instr.Clt Width.W8 (I.v 0L 300L) (I.const 500L))

let test_backward_store () =
  let r = I.backward_store Width.W8 I.top in
  Alcotest.check iv "byte store useful range" (I.v (-128L) 255L) r;
  Alcotest.check iv "already narrow unchanged" (I.v 3L 9L)
    (I.backward_store Width.W8 (I.v 3L 9L));
  Alcotest.check iv "quad store unchanged" I.top
    (I.backward_store Width.W64 I.top)

(* The width-landmark contract: after widening to a landmark, the range
   still fits the corresponding operation width, so compare refinement
   continues to apply (this was a real divergence bug). *)
let test_landmark_refinability () =
  let widened = I.v 0L 0x7FFF_FFFFL in
  (* still within W32 *)
  match
    I.refine_cmp_lhs Instr.Clt Width.W32 ~lhs:widened ~rhs:(I.const 100L)
      ~holds:true
  with
  | Some r -> Alcotest.check iv "refined below the bound" (I.v 0L 99L) r
  | None -> Alcotest.fail "refinement lost"

let () =
  Alcotest.run "interval2"
    [
      ( "corners",
        [
          Alcotest.test_case "constructors" `Quick test_constructors;
          Alcotest.test_case "loads" `Quick test_loads;
          Alcotest.test_case "division" `Quick test_division_corners;
          Alcotest.test_case "remainder" `Quick test_rem_corners;
          Alcotest.test_case "shift amounts" `Quick test_shift_amounts;
          Alcotest.test_case "precise compares" `Quick test_cmp_op_precision;
          Alcotest.test_case "backward store" `Quick test_backward_store;
          Alcotest.test_case "landmark refinability" `Quick
            test_landmark_refinability;
        ] );
    ]
