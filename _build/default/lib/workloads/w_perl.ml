(* SpecInt95 `perl` surrogate: string hashing with chained associative
   tables.  Dominated by byte-string scanning, 31x hash folding, chain
   walks and byte-wise string comparison — the hash-table profile of the
   perl interpreter's symbol handling. *)

let name = "perl"
let description = "string hash tables: insert/lookup/update with chains"

let source () =
  Printf.sprintf
    {|
// perl: key pool of variable-length byte strings + chained hash table.
long input_scale = 3;
int seed = 1357;
char pool[19216];   // (max_keys + 1) * 16 bytes of key storage
int koff[1201];
int klen[1201];
int kval[1201];
int knext[1201];
int heads[1024];
int nkeys = 0;

int rnd() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 0x7fff;
}

// generate key [k] deterministically from its index
int gen_key(int k, int slot) {
  int len = 3 + ((k * 7) %% 10);
  int off = slot * 16;
  int state = k * 2654435761;
  for (int i = 0; i < len; i++) {
    state = state * 1103515245 + 12345;
    pool[off + i] = (char)(97 + ((state >> 16) & 15));
  }
  koff[slot] = off;
  klen[slot] = len;
  return len;
}

int hash_key(int off, int len) {
  int h = 5381;
  for (int i = 0; i < len; i++) {
    h = h * 31 + pool[off + i];
  }
  return h & 1023;
}

int keys_equal(int o1, int l1, int o2, int l2) {
  if (l1 != l2) return 0;
  for (int i = 0; i < l1; i++) {
    if (pool[o1 + i] != pool[o2 + i]) return 0;
  }
  return 1;
}

// find slot of key stored at scratch slot [s]; -1 when absent
int find(int s) {
  int h = hash_key(koff[s], klen[s]);
  int c = heads[h];
  while (c >= 0) {
    if (keys_equal(koff[c], klen[c], koff[s], klen[s])) return c;
    c = knext[c];
  }
  return -1;
}

int main() {
  int max_keys = 1200;
  int ops = 2200 * (int)input_scale;
  for (int i = 0; i < 1024; i++) heads[i] = -1;
  long hits = 0;
  long misses = 0;
  long acc = 0;
  int scratch = max_keys;  // one extra slot for probe keys
  for (int t = 0; t < ops; t++) {
    int kid = (rnd() * 31 + rnd()) %% (max_keys + max_keys / 4);
    gen_key(kid, scratch);
    int c = find(scratch);
    if (c >= 0) {
      hits++;
      kval[c] += t & 1023;
      acc = acc * 3 + kval[c];
    } else if (nkeys < max_keys) {
      // insert a copy of the scratch key
      gen_key(kid, nkeys);
      int h = hash_key(koff[nkeys], klen[nkeys]);
      knext[nkeys] = heads[h];
      heads[h] = nkeys;
      kval[nkeys] = t;
      nkeys++;
    } else {
      misses++;
    }
  }
  emit(hits);
  emit(misses);
  emit(nkeys);
  emit(acc);
  return 0;
}
|}

