lib/core/vrs.mli: Hashtbl Interp Label Ogc_ir Prog Vrp
