(** Strongly connected components of a {!Cfg.t} (or any small integer
    digraph), with the condensation in topological order.

    The VRP fixpoint engine drives its worklist in reverse postorder,
    which is a topological order of the SCC condensation: for any CFG
    edge [u -> v], [rpo(v) < rpo(u)] only when [u] and [v] belong to the
    same component (a DFS back edge).  This module is how the engine
    decides whether a function has any cycle at all (acyclic functions
    converge in one worklist round and need no narrowing sweeps), and how
    the tests check the ordering claim. *)

type t

(** [compute ~n ~succs] over nodes [0 .. n-1].  [succs] may repeat
    targets; self-loops are allowed. *)
val compute : n:int -> succs:(int -> int list) -> t

val of_cfg : Cfg.t -> t

(** Number of components. *)
val count : t -> int

(** [comp t v] is the component id of node [v].  Ids are a topological
    order of the condensation: every edge [u -> v] with
    [comp u <> comp v] has [comp u < comp v]. *)
val comp : t -> int -> int

(** [in_cycle t v] — [v] belongs to a component of size >= 2, or has a
    self-loop. *)
val in_cycle : t -> int -> bool

(** Any node on a cycle? *)
val has_cycle : t -> bool
