lib/gating/sigbytes.mli:
