open Ogc_isa

exception Error of string

let err line fmt = Fmt.kstr (fun s -> raise (Error (Printf.sprintf "line %d: %s" line s))) fmt

(* --- output ------------------------------------------------------------------ *)

let hex_of_bytes b =
  String.concat ""
    (List.init (Bytes.length b) (fun i ->
         Printf.sprintf "%02x" (Bytes.get_uint8 b i)))

let output ppf (p : Prog.t) =
  List.iter
    (fun (g : Prog.global) ->
      Format.fprintf ppf "global %s[%d] = %s@\n" g.gname (Bytes.length g.init)
        (hex_of_bytes g.init))
    p.globals;
  List.iter (fun f -> Format.fprintf ppf "@\n%a" Prog.pp_func f) p.funcs

let to_string p = Format.asprintf "%a" output p

(* --- parsing ------------------------------------------------------------------ *)

let bytes_of_hex line s =
  let n = String.length s in
  if n mod 2 <> 0 then err line "odd-length hex image";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> err line "bad hex digit %C" c
  in
  Bytes.init (n / 2) (fun i ->
      Char.chr ((digit s.[2 * i] * 16) + digit s.[(2 * i) + 1]))

let parse_reg line s =
  if String.equal s "sp" then Reg.sp
  else if String.equal s "zero" then Reg.zero
  else if String.length s >= 2 && s.[0] = 'r' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some i when i >= 0 && i <= 31 -> Reg.of_int i
    | _ -> err line "bad register %s" s
  else err line "bad register %s" s

let parse_int64 line s =
  match Int64.of_string_opt s with
  | Some v -> v
  | None -> err line "bad integer %s" s

(* Split a mnemonic into its alphabetic stem and optional width suffix. *)
let split_mnemonic m =
  let n = String.length m in
  let rec stem_end i =
    if i < n && not (m.[i] >= '0' && m.[i] <= '9') then stem_end (i + 1) else i
  in
  let k = stem_end 0 in
  (String.sub m 0 k, String.sub m k (n - k))

let width_of_suffix line = function
  | "" -> Width.W64
  | "8" -> Width.W8
  | "16" -> Width.W16
  | "32" -> Width.W32
  | "64" -> Width.W64
  | s -> err line "bad width suffix %s" s

let alu_ops =
  [ ("add", Instr.Add); ("sub", Instr.Sub); ("mul", Instr.Mul);
    ("div", Instr.Div); ("rem", Instr.Rem); ("and", Instr.And);
    ("or", Instr.Or); ("xor", Instr.Xor); ("bic", Instr.Bic);
    ("sll", Instr.Sll); ("srl", Instr.Srl); ("sra", Instr.Sra) ]

let cmp_ops =
  [ ("cmpeq", Instr.Ceq); ("cmplt", Instr.Clt); ("cmple", Instr.Cle);
    ("cmpult", Instr.Cult); ("cmpule", Instr.Cule) ]

let conds =
  [ ("eq", Instr.Eq); ("ne", Instr.Ne); ("lt", Instr.Lt); ("le", Instr.Le);
    ("gt", Instr.Gt); ("ge", Instr.Ge) ]

let parse_operand line s =
  if String.length s > 0 && s.[0] = '#' then
    Instr.Imm (parse_int64 line (String.sub s 1 (String.length s - 1)))
  else Instr.Reg (parse_reg line s)

(* "OFFSET(BASE)" *)
let parse_mem line s =
  match String.index_opt s '(' with
  | Some i when String.length s > 0 && s.[String.length s - 1] = ')' ->
    let offset = parse_int64 line (String.sub s 0 i) in
    let base = parse_reg line (String.sub s (i + 1) (String.length s - i - 2)) in
    (base, offset)
  | _ -> err line "bad memory operand %s" s

let parse_label line s =
  if String.length s >= 2 && s.[0] = 'L' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some i when i >= 0 -> Label.of_int i
    | _ -> err line "bad label %s" s
  else err line "bad label %s" s

(* Tokenize an instruction body: split on commas and whitespace. *)
let operands_of rest =
  String.split_on_char ',' rest
  |> List.map String.trim
  |> List.filter (fun s -> String.length s > 0)

let parse_instr line mnemonic rest : Instr.t =
  let ops = operands_of rest in
  let stem, suffix = split_mnemonic mnemonic in
  let width () = width_of_suffix line suffix in
  let reg = parse_reg line in
  match (stem, ops) with
  | "li", [ imm; dst ] -> (
    match imm.[0] with
    | '#' ->
      Instr.Li { dst = reg dst;
                 imm = parse_int64 line (String.sub imm 1 (String.length imm - 1)) }
    | _ -> err line "li needs an immediate")
  | "la", [ sym; dst ] ->
    if String.length sym > 1 && sym.[0] = '@' then
      Instr.La { dst = reg dst; symbol = String.sub sym 1 (String.length sym - 1) }
    else err line "la needs @symbol"
  | "call", [ callee ] -> Instr.Call { callee }
  | "emit", [ src ] -> Instr.Emit { src = reg src }
  | "msk", [ src; dst ] -> Instr.Msk { width = width (); src = reg src; dst = reg dst }
  | "sext", [ src; dst ] ->
    Instr.Sext { width = width (); src = reg src; dst = reg dst }
  | "st", [ src; mem ] ->
    let base, offset = parse_mem line mem in
    Instr.Store { width = width (); base; offset; src = reg src }
  | "ld", [ mem; dst ] | "ldu", [ mem; dst ] ->
    (* ld8u / ld16 / ld64: the 'u' follows the width digits. *)
    let base, offset = parse_mem line mem in
    let w = width () in
    let signed = String.equal stem "ld" in
    Instr.Load { width = w; signed = signed || Width.equal w Width.W64;
                 base; offset; dst = reg dst }
  | _, [ a; b; c ] when List.mem_assoc stem alu_ops ->
    Instr.Alu { op = List.assoc stem alu_ops; width = width (); src1 = reg a;
                src2 = parse_operand line b; dst = reg c }
  | _, [ a; b; c ] when List.mem_assoc stem cmp_ops ->
    Instr.Cmp { op = List.assoc stem cmp_ops; width = width (); src1 = reg a;
                src2 = parse_operand line b; dst = reg c }
  | _, [ a; b; c ]
    when String.length stem > 4
         && String.equal (String.sub stem 0 4) "cmov"
         && List.mem_assoc (String.sub stem 4 (String.length stem - 4)) conds ->
    Instr.Cmov { cond = List.assoc (String.sub stem 4 (String.length stem - 4)) conds;
                 width = width (); test = reg a; src = parse_operand line b;
                 dst = reg c }
  | _ -> err line "cannot parse instruction %s %s" mnemonic rest

(* Terminators ("jump L1", "ret", "beq r2, L1, L2"); [None] when the
   mnemonic is not a terminator. *)
let parse_terminator_opt line mnemonic args =
  match mnemonic with
  | "jump" -> Some (Prog.Jump (parse_label line args))
  | "ret" -> Some Prog.Return
  | m
    when String.length m > 1 && m.[0] = 'b'
         && List.mem_assoc (String.sub m 1 (String.length m - 1)) conds -> (
    let cond = List.assoc (String.sub m 1 (String.length m - 1)) conds in
    match operands_of args with
    | [ src; t; f ] ->
      Some
        (Prog.Branch
           { cond; src = parse_reg line src;
             if_true = parse_label line t;
             if_false = parse_label line f })
    | _ -> err line "bad branch")
  | _ -> None

(* The load mnemonic needs special splitting: "ld8u" has the width digits
   between stem and the signedness letter. *)
let normalize_load m =
  let n = String.length m in
  if n >= 3 && String.sub m 0 2 = "ld" then begin
    let has_u = m.[n - 1] = 'u' in
    let digits = String.sub m 2 (n - 2 - if has_u then 1 else 0) in
    if digits <> "" && String.for_all (fun c -> c >= '0' && c <= '9') digits
    then Some ((if has_u then "ldu" else "ld") ^ digits |> fun s -> s, has_u)
    else None
  end
  else None

(* --- single-instruction parsing (the Prog_json wire format) --------------- *)

let split_mnemonic_args s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | Some j ->
    (String.sub s 0 j, String.trim (String.sub s (j + 1) (String.length s - j - 1)))
  | None -> (s, "")

let instr_of_string s =
  let mnemonic, args = split_mnemonic_args s in
  let m =
    match normalize_load mnemonic with Some (nm, _) -> nm | None -> mnemonic
  in
  parse_instr 0 m args

let terminator_of_string s =
  let mnemonic, args = split_mnemonic_args s in
  match parse_terminator_opt 0 mnemonic args with
  | Some t -> t
  | None -> err 0 "cannot parse terminator %s" s

let terminator_to_string t = Format.asprintf "%a" Prog.pp_terminator t

type pending_term = { pt_iid : int; pt_term : Prog.terminator }

let parse text =
  let lines = String.split_on_char '\n' text in
  let globals = ref [] in
  let funcs = ref [] in
  (* current function state *)
  let cur_name = ref None in
  let cur_arity = ref 0 in
  let cur_frame = ref 0 in
  let blocks : (int * Prog.ins list * pending_term option) list ref = ref [] in
  let cur_label = ref None in
  let cur_body = ref [] in
  let cur_term = ref None in
  let flush_block lineno =
    match !cur_label with
    | None -> ()
    | Some l ->
      (match !cur_term with
      | None -> err lineno "block L%d has no terminator" l
      | Some _ -> ());
      blocks := (l, List.rev !cur_body, !cur_term) :: !blocks;
      cur_label := None;
      cur_body := [];
      cur_term := None
  in
  let flush_func lineno =
    match !cur_name with
    | None -> ()
    | Some fname ->
      flush_block lineno;
      let blist = List.rev !blocks in
      let n = List.length blist in
      let arr = Array.make n None in
      List.iter
        (fun (l, body, term) ->
          if l >= n then err lineno "function %s: label L%d out of order" fname l;
          arr.(l) <- Some (body, term))
        blist;
      let blocks_arr =
        Array.mapi
          (fun i slot ->
            match slot with
            | Some (body, Some { pt_iid; pt_term }) ->
              { Prog.label = Label.of_int i; body = Array.of_list body;
                term = pt_term; term_iid = pt_iid }
            | _ -> err lineno "function %s: missing block L%d" fname i)
          arr
      in
      funcs :=
        { Prog.fname; arity = !cur_arity; blocks = blocks_arr;
          frame_size = !cur_frame }
        :: !funcs;
      blocks := [];
      cur_name := None
  in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim raw in
      if String.length line = 0 then ()
      else if line.[0] = '#' then () (* comment: fuzz corpus provenance &c. *)
      else if String.length line > 7 && String.sub line 0 7 = "global " then begin
        (* global NAME[SIZE] = HEX *)
        match String.index_opt line '[' with
        | None -> err lineno "bad global line"
        | Some i -> (
          let name = String.trim (String.sub line 7 (i - 7)) in
          match (String.index_opt line ']', String.index_opt line '=') with
          | Some j, Some k ->
            let size =
              match int_of_string_opt (String.sub line (i + 1) (j - i - 1)) with
              | Some s -> s
              | None -> err lineno "bad global size"
            in
            let hex = String.trim (String.sub line (k + 1) (String.length line - k - 1)) in
            let init = bytes_of_hex lineno hex in
            if Bytes.length init <> size then
              err lineno "global %s: size %d but %d bytes of data" name size
                (Bytes.length init);
            globals := { Prog.gname = name; init } :: !globals
          | _ -> err lineno "bad global line")
      end
      else if String.length line > 5 && String.sub line 0 5 = "func " then begin
        flush_func lineno;
        (* func NAME(ARITY) frame=N *)
        match (String.index_opt line '(', String.index_opt line ')') with
        | Some i, Some j -> (
          let name = String.trim (String.sub line 5 (i - 5)) in
          let arity =
            match int_of_string_opt (String.sub line (i + 1) (j - i - 1)) with
            | Some a -> a
            | None -> err lineno "bad arity"
          in
          match String.index_opt line '=' with
          | Some k -> (
            match
              int_of_string_opt
                (String.trim (String.sub line (k + 1) (String.length line - k - 1)))
            with
            | Some frame ->
              cur_name := Some name;
              cur_arity := arity;
              cur_frame := frame
            | None -> err lineno "bad frame size")
          | None -> err lineno "missing frame size")
        | _ -> err lineno "bad func line"
      end
      else if line.[String.length line - 1] = ':' then begin
        flush_block lineno;
        let l = parse_label lineno (String.sub line 0 (String.length line - 1)) in
        cur_label := Some (Label.to_int l)
      end
      else if line.[0] = '[' then begin
        (* [ IID] mnemonic operands *)
        match String.index_opt line ']' with
        | None -> err lineno "bad instruction line"
        | Some i -> (
          let iid =
            match int_of_string_opt (String.trim (String.sub line 1 (i - 1))) with
            | Some v -> v
            | None -> err lineno "bad instruction id"
          in
          let rest = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
          let mnemonic, args =
            match String.index_opt rest ' ' with
            | Some j ->
              (String.sub rest 0 j,
               String.trim (String.sub rest (j + 1) (String.length rest - j - 1)))
            | None -> (rest, "")
          in
          if !cur_label = None then err lineno "instruction outside a block";
          match parse_terminator_opt lineno mnemonic args with
          | Some t -> cur_term := Some { pt_iid = iid; pt_term = t }
          | None ->
            if !cur_term <> None then err lineno "instruction after terminator";
            let m' =
              match normalize_load mnemonic with
              | Some (nm, _) -> nm
              | None -> mnemonic
            in
            let op = parse_instr lineno m' args in
            cur_body := { Prog.iid; op } :: !cur_body)
      end
      else err lineno "cannot parse: %s" line)
    lines;
  flush_func (List.length lines);
  Prog.create ~globals:(List.rev !globals) (List.rev !funcs)

(* Exported hex helpers (Prog_json reuses the globals image encoding). *)
let bytes_of_hex s = bytes_of_hex 0 s
