lib/isa/instr.ml: Format Int64 List Reg Width
