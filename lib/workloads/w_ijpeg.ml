(* SpecInt95 `ijpeg` surrogate: fixed-point 8x8 forward DCT, quantization,
   dequantization and error accumulation over a synthetic image.
   Dominated by short/int multiply-accumulate with shifts — the
   signal-processing profile of JPEG compression. *)

let name = "ijpeg"
let description = "fixed-point 8x8 DCT + quantization over an image"

let source () =
  Printf.sprintf
    {|
// ijpeg: per-block fixed-point DCT-ish transform and quantization.
long input_scale = 3;
int seed = 777;
char image[9216];   // 96*96 pixels
int block[64];
int coef[64];
int quant[64];

int rnd() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 0x7fff;
}

void gen_image(int dim) {
  // smooth gradient plus noise: mostly small AC coefficients
  for (int y = 0; y < dim; y++) {
    for (int x = 0; x < dim; x++) {
      int v = ((x * 3 + y * 2) & 127) + (rnd() & 15);
      image[y * 96 + x] = (char)(v & 255);
    }
  }
}

void init_quant() {
  for (int i = 0; i < 64; i++) {
    int row = i >> 3;
    int col = i & 7;
    quant[i] = 8 + ((row + col) << 1);
  }
}

// 1-D integer transform of 8 values starting at [base] with stride
// [stride], in two explicit butterfly stages: the even-half combinations
// (c0..c3) and the full odd-part product matrix (m0..m15) are all
// materialized before the first store, and the inputs s0..s7 stay live
// to the end for the returned input-energy proxy — deliberately more
// simultaneously live scalars than the machine has registers, so the
// register allocator must spill (and, since every one of them is a
// proven-32-bit value, spill through narrow slots).
long dct8(int base, int stride) {
  int s0 = block[base];
  int s1 = block[base + stride];
  int s2 = block[base + stride * 2];
  int s3 = block[base + stride * 3];
  int s4 = block[base + stride * 4];
  int s5 = block[base + stride * 5];
  int s6 = block[base + stride * 6];
  int s7 = block[base + stride * 7];
  int a0 = s0 + s7;
  int a1 = s1 + s6;
  int a2 = s2 + s5;
  int a3 = s3 + s4;
  int b0 = s0 - s7;
  int b1 = s1 - s6;
  int b2 = s2 - s5;
  int b3 = s3 - s4;
  int c0 = a0 + a3;
  int c1 = a1 + a2;
  int c2 = a0 - a3;
  int c3 = a1 - a2;
  int m0 = b0 * 23;
  int m1 = b1 * 19;
  int m2 = b2 * 13;
  int m3 = b3 * 5;
  int m4 = b0 * 19;
  int m5 = b1 * 5;
  int m6 = b2 * 23;
  int m7 = b3 * 13;
  int m8 = b0 * 13;
  int m9 = b1 * 23;
  int m10 = b2 * 5;
  int m11 = b3 * 19;
  int m12 = b0 * 5;
  int m13 = b1 * 13;
  int m14 = b2 * 19;
  int m15 = b3 * 23;
  block[base] = c0 + c1;
  block[base + stride * 4] = c0 - c1;
  block[base + stride * 2] = (c2 * 17 + c3 * 7) >> 4;
  block[base + stride * 6] = (c2 * 7 - c3 * 17) >> 4;
  block[base + stride] = (m0 + m1 + m2 + m3) >> 5;
  block[base + stride * 3] = (m4 - m5 - m6 - m7) >> 5;
  block[base + stride * 5] = (m8 - m9 + m10 + m11) >> 5;
  block[base + stride * 7] = (m12 - m13 + m14 - m15) >> 5;
  return (long)(s0 * s0) + (long)(s1 * s1) + (long)(s2 * s2)
       + (long)(s3 * s3) + (long)(s4 * s4) + (long)(s5 * s5)
       + (long)(s6 * s6) + (long)(s7 * s7);
}

int main() {
  int dim = 32 * (int)input_scale;
  long acc = 0;
  long nonzero = 0;
  long energy = 0;
  init_quant();
  for (int round = 0; round < 2; round++) {
    gen_image(dim);
    for (int by = 0; by + 8 <= dim; by += 8) {
      for (int bx = 0; bx + 8 <= dim; bx += 8) {
        // load block, level-shift by 128
        for (int y = 0; y < 8; y++)
          for (int x = 0; x < 8; x++)
            block[y * 8 + x] = image[(by + y) * 96 + bx + x] - 128;
        for (int r = 0; r < 8; r++) energy += dct8(r * 8, 1);
        for (int c = 0; c < 8; c++) energy += dct8(c, 8);
        // quantize / dequantize, count survivors
        for (int i = 0; i < 64; i++) {
          int q = block[i] / quant[i];
          coef[i] = q * quant[i];
          if (q != 0) nonzero++;
          acc = acc * 3 + q;
        }
        // reconstruction error proxy
        for (int i = 0; i < 64; i++) {
          int e = block[i] - coef[i];
          if (e < 0) e = -e;
          acc += e;
        }
      }
    }
  }
  emit(acc);
  emit(nonzero);
  emit(energy);
  return 0;
}
|}

