lib/ir/cfg.mli: Label Prog
