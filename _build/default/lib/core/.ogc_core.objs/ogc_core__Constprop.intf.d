lib/core/constprop.mli: Ogc_ir Prog Vrp
