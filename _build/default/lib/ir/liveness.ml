open Ogc_isa

type t = { live_in : Reg.Set.t array; live_out : Reg.Set.t array }

let term_uses = function
  | Prog.Branch { src; _ } -> Reg.Set.singleton src
  | Prog.Jump _ -> Reg.Set.empty
  | Prog.Return -> Reg.Set.singleton Reg.ret

let block_transfer (b : Prog.block) out =
  (* Walk the body backwards starting from [out] + terminator uses. *)
  let live = ref (Reg.Set.union out (term_uses b.term)) in
  for i = Array.length b.body - 1 downto 0 do
    let op = b.body.(i).op in
    live := Reg.Set.diff !live (Reg.Set.of_list (Instr.defs op));
    live := Reg.Set.union !live (Reg.Set.of_list (Instr.uses op))
  done;
  !live

let compute (f : Prog.func) cfg =
  let n = Array.length f.blocks in
  let live_in = Array.make n Reg.Set.empty in
  let live_out = Array.make n Reg.Set.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        let i = Label.to_int l in
        let out =
          List.fold_left
            (fun acc s -> Reg.Set.union acc live_in.(Label.to_int s))
            Reg.Set.empty (Cfg.succs cfg l)
        in
        let inn = block_transfer f.blocks.(i) out in
        if not (Reg.Set.equal inn live_in.(i)) then begin
          live_in.(i) <- inn;
          changed := true
        end;
        live_out.(i) <- out)
      (Cfg.postorder cfg)
  done;
  { live_in; live_out }

let live_in t l = t.live_in.(Label.to_int l)
let live_out t l = t.live_out.(Label.to_int l)
