lib/harness/experiments.mli: Results
