lib/minic/minic.ml: Ast Codegen Lexer Ogc_ir Parser Printf Typecheck
