(** Syntactic loop trip-count estimation — the paper's §2.3 technique.

    The paper bounds loop iterators of the form [x = ax + b] (constant [a],
    [b]) whose exit is a comparison against a constant, computing the trip
    count and hence the iterator's range.  The VRP engine itself obtains
    the same bounds through threshold widening plus branch refinement (see
    {!Vrp}), so this module exists as the paper-literal implementation:
    the `bench` ablation compares the two, reports use it to show which
    loops the syntactic method covers, and tests pin its behaviour on the
    paper's examples.

    Recognized shape (as produced by the code generator for
    [for (x = init; x REL bound; x = a*x + b)]):

    - a natural loop whose header ends in a conditional branch fed by a
      compare of the iterator register against a constant;
    - exactly one definition chain of the iterator inside the loop body,
      of the form [x' = a*x + b] (including the common [x++] case, and
      spelled either directly or through a register move);
    - a constant initial value flowing in from outside the loop.

    Loops with several iterators, data-dependent exits, or non-affine
    updates are rejected ([None]), exactly as in the paper. *)

open Ogc_isa
open Ogc_ir

type affine_loop = {
  header : Label.t;
  iterator : Reg.t;
  init : int64;  (** value on loop entry *)
  mul : int64;  (** [a] in [x = ax + b] *)
  add : int64;  (** [b] *)
  bound : int64;  (** the compared-against constant *)
  cmp : Instr.cmp_op;  (** how the iterator is compared *)
  iter_on_left : bool;
      (** [true] for [x CMP bound]; [false] for [bound CMP x] (how the
          code generator spells [x > bound] / [x >= bound]) *)
  exit_on_false : bool;  (** loop continues while the compare holds *)
  trip_count : int;  (** number of body executions *)
  iterator_range : Interval.t;  (** values of [x] inside the body *)
}

(** [analyze f] finds the affine loops of [f] the §2.3 method can bound.
    Loops it cannot handle are simply absent. *)
val analyze : Prog.func -> affine_loop list

(** [trip_count ~init ~mul ~add ~cmp ~bound] iterates the recurrence
    symbolically (capped at 2^20 iterations): the number of times the
    continuation condition holds before it first fails, and the value
    range of the iterator over those iterations.  [None] when the loop
    does not terminate within the cap.  [iter_on_left] (default [true])
    selects between [x CMP bound] and [bound CMP x]. *)
val trip_count :
  ?iter_on_left:bool ->
  init:int64 ->
  mul:int64 ->
  add:int64 ->
  cmp:Instr.cmp_op ->
  bound:int64 ->
  unit ->
  (int * Interval.t) option
