lib/ir/liveness.mli: Cfg Label Ogc_isa Prog Reg
