lib/workloads/w_go.ml: Printf
