open Ogc_isa

exception Invalid of string

let fail fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

let check_label (f : Prog.func) l =
  let i = Label.to_int l in
  if i < 0 || i >= Array.length f.blocks then
    fail "%s: label L%d out of range" f.fname i

let func ?(allow_virtual = false) (p : Prog.t) (f : Prog.func) =
  if f.arity < 0 || f.arity > Reg.num_arg_regs then
    fail "%s: arity %d out of range" f.fname f.arity;
  if f.frame_size < 0 || f.frame_size mod 8 <> 0 then
    fail "%s: bad frame size %d" f.fname f.frame_size;
  if Array.length f.blocks = 0 then fail "%s: no blocks" f.fname;
  let check_reg iid r =
    if (not allow_virtual) && Reg.is_virtual r then
      fail "%s: instruction %d uses virtual register %s" f.fname iid
        (Reg.to_string r)
  in
  Array.iteri
    (fun i (b : Prog.block) ->
      if Label.to_int b.label <> i then
        fail "%s: block at position %d is labelled L%d" f.fname i
          (Label.to_int b.label);
      Array.iter
        (fun (ins : Prog.ins) ->
          List.iter (check_reg ins.iid) (Instr.defs ins.op);
          List.iter (check_reg ins.iid) (Instr.uses ins.op);
          match ins.op with
          | Instr.Call { callee } ->
            if Prog.find_func_opt p callee = None then
              fail "%s: call to undefined function %s" f.fname callee
          | Instr.La { symbol; _ } ->
            if Prog.find_global p symbol = None then
              fail "%s: address of undefined global %s" f.fname symbol
          | Instr.Alu { dst; _ } | Instr.Cmp { dst; _ } | Instr.Cmov { dst; _ }
          | Instr.Msk { dst; _ } | Instr.Sext { dst; _ } | Instr.Li { dst; _ }
          | Instr.Load { dst; _ } ->
            if Reg.equal dst Reg.zero then
              fail "%s: instruction %d writes the zero register" f.fname ins.iid
          | Instr.Store _ | Instr.Emit _ -> ())
        b.body;
      match b.term with
      | Prog.Jump l -> check_label f l
      | Prog.Branch { src; if_true; if_false; _ } ->
        check_reg b.term_iid src;
        check_label f if_true;
        check_label f if_false
      | Prog.Return -> ())
    f.blocks

let program ?allow_virtual (p : Prog.t) =
  let seen = Hashtbl.create 1024 in
  let check_iid where iid =
    if Hashtbl.mem seen iid then fail "%s: duplicate instruction id %d" where iid;
    Hashtbl.replace seen iid ()
  in
  List.iter
    (fun (f : Prog.func) ->
      func ?allow_virtual p f;
      Array.iter
        (fun (b : Prog.block) ->
          Array.iter (fun (ins : Prog.ins) -> check_iid f.fname ins.iid) b.body;
          check_iid f.fname b.term_iid)
        f.blocks)
    p.funcs;
  if Prog.find_func_opt p "main" = None then fail "program has no main function"
