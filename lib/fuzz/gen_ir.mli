(** Seeded random generation of raw IR programs.

    Complements {!Gen_minic}: instead of going through the MiniC front
    end (which only emits the idioms the code generator knows), programs
    are built directly with {!Ogc_ir.Builder}, exercising the corners
    the optimizer must survive — narrow-width ALU ops at every width,
    [Msk]/[Sext] masks, [Cmov], loops with affine trip counts, calls
    into leaf helpers, and byte/halfword/word/doubleword memory traffic
    on a shared global buffer.

    Every generated program passes {!Ogc_ir.Validate.program}, starts at
    [main], terminates (loops count a dedicated iterator register up to
    a constant bound), keeps memory accesses inside the global buffer,
    and never touches the optimizer's scratch registers (r27/r28), so
    VRS guard insertion stays sound. *)

val program : Ogc_ir.Prog.t QCheck.Gen.t
(** A fresh, validated program; same random state, same program. *)

val arbitrary_program : Ogc_ir.Prog.t QCheck.arbitrary
(** {!program} packaged for [QCheck.Test.make] (prints the assembly save
    format on failure). *)
