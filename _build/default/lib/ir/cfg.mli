(** Control-flow-graph queries over a {!Prog.func}.

    A [Cfg.t] is a snapshot: it must be rebuilt after a transformation adds
    blocks or rewrites terminators. *)

type t

val of_func : Prog.func -> t

val num_blocks : t -> int
val succs : t -> Label.t -> Label.t list
val preds : t -> Label.t -> Label.t list
val entry : t -> Label.t

(** Blocks in reverse postorder from the entry.  Unreachable blocks are
    appended at the end (in index order) so dataflow still covers them. *)
val reverse_postorder : t -> Label.t list

val postorder : t -> Label.t list

val is_reachable : t -> Label.t -> bool

(** [successors_of_term term] lists the control successors of a
    terminator. *)
val successors_of_term : Prog.terminator -> Label.t list
