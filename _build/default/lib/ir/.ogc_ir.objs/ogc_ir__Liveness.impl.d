lib/ir/liveness.ml: Array Cfg Instr Label List Ogc_isa Prog Reg
