(** Seeded random MiniC program generation.

    The single source of random source-level programs for the test suite
    and the differential fuzzer ([ogc fuzz]).  Generated programs always
    terminate (loops have constant bounds, no recursion), never access
    memory out of bounds (indices are masked to the array size), and emit
    values along the way, so two binary versions can be compared by
    output checksum.  Everything is driven by the caller's
    [Random.State.t], so the same state yields the same program on every
    run and machine. *)

val arr_len : int
(** Length of every generated array. *)

val program : string QCheck.Gen.t
(** A complete well-typed MiniC compilation unit: global scalars and
    arrays, zero or more call-free helper functions, and a [main] that
    mixes assignments, array traffic, [if]/[for] nests and calls into
    the helpers. *)

val pressure_program : string QCheck.Gen.t
(** Like {!program} with the register-pressure knob on: many scalar
    locals, all kept live across the whole of [main] (every one is
    emitted at the end), and a deep acyclic chain of helpers calling
    helpers.  Exercises the allocator's spilling paths; the same
    termination and memory-safety guarantees hold. *)

val zero_program : string QCheck.Gen.t
(** Like {!program} with the zero-bias knob on: a few [long] globals
    initialized to 0, a [long] array that is declared but never written
    by any generated statement, a hot loop in [main] that loads that
    array into a multiply, and scalar initializers biased toward 0.
    Plants zero-dominated wide hot values so the [zspec]
    zero-specialization chains actually fire under the differential
    oracle.  The same termination and memory-safety guarantees hold. *)

val arbitrary_program : string QCheck.arbitrary
(** {!program} packaged for [QCheck.Test.make] (prints the source on
    failure). *)

val arbitrary_pressure_program : string QCheck.arbitrary
(** {!pressure_program}, likewise packaged. *)

val arbitrary_zero_program : string QCheck.arbitrary
(** {!zero_program}, likewise packaged. *)
