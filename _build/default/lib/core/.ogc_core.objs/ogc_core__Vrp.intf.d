lib/core/vrp.mli: Format Interval Label Ogc_ir Ogc_isa Prog Reg Width
