(** Generic binary-optimizer cleanups (the Alto substrate's bread and
    butter): jump threading and unreachable-code pruning.

    The paper's evaluation baseline is itself Alto-processed ("the
    resulting binaries were ... post-processed with our binary
    optimizer"), so the harness applies these cleanups uniformly to every
    binary version — baseline and optimized alike — keeping the
    comparisons about operand gating, not about generic link-time
    optimization.

    Both transformations preserve block labels (blocks are emptied or
    retargeted, never removed from the array), so instruction ids,
    profiles, and VRS assumptions stay valid. *)

open Ogc_ir

type stats = {
  threaded : int;  (** terminator targets redirected through empty blocks *)
  branches_unified : int;  (** branches with equal targets folded to jumps *)
  pruned_blocks : int;  (** unreachable blocks emptied *)
  pruned_instructions : int;  (** instructions dropped with them *)
}

(** [thread_jumps f] redirects every terminator target that points at an
    empty block ending in an unconditional jump, following chains (with a
    cycle guard); branches whose arms become equal fold to jumps. *)
val thread_jumps : Prog.func -> int * int

(** [prune_unreachable f] empties blocks unreachable from the entry
    (body cleared, terminator replaced by [Return]); they are never
    executed, so semantics are unchanged. *)
val prune_unreachable : Prog.func -> int * int

val run : Prog.t -> stats
(** Threads then prunes, for every function; validates nothing itself
    (callers re-validate). *)
