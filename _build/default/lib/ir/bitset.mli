(** Fixed-capacity mutable bitsets for dataflow. *)

type t

val create : int -> t
(** All bits clear. *)

val copy : t -> t
val length : t -> int
val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool

(** [union_into ~into src] ors [src] into [into]; returns [true] when
    [into] changed. *)
val union_into : into:t -> t -> bool

(** [diff_into ~into src] removes [src]'s bits from [into]. *)
val diff_into : into:t -> t -> unit

val equal : t -> t -> bool
val iter : t -> (int -> unit) -> unit
val elements : t -> int list
val cardinal : t -> int
