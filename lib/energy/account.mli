(** Energy accounting: per-structure accumulation and derived metrics. *)

type t

val create : Energy_params.t -> t
val params : t -> Energy_params.t

(** [charge t s ~active_bytes ~tag_bits] adds one access. *)
val charge : t -> Energy_params.structure -> active_bytes:int -> tag_bits:int -> unit

(** [charge_fixed t s n] adds [n] accesses with no width scaling (full
    width, no tags). *)
val charge_fixed : t -> Energy_params.structure -> int -> unit

(** [charge_spill t bytes] records one register-allocator spill access
    moving [bytes] bytes.  A traffic counter, not an energy term: the
    access itself is still charged to the memory structures through
    {!charge}. *)
val charge_spill : t -> int -> unit

val spill_traffic : t -> float
(** Total bytes moved by spill loads/stores recorded with
    {!charge_spill}. *)

val of_values :
  ?params:Energy_params.t ->
  ?spill:float ->
  (Energy_params.structure * float) list ->
  t
(** An account holding the given per-structure totals, as if they had
    been accumulated through {!charge}.  Used to rebuild accounts from
    serialized results; [params] defaults to {!Energy_params.default}
    and [spill] (bytes, see {!spill_traffic}) to 0. *)

val energy_of : t -> Energy_params.structure -> float
(** Accumulated nJ in one structure. *)

val total : t -> float

val by_structure : t -> (Energy_params.structure * float) list
(** In {!Energy_params.all_structures} order. *)

(** {1 Metrics} *)

(** [ed2 ~energy ~cycles] is the energy-delay² product. *)
val ed2 : energy:float -> cycles:int -> float

(** [savings ~baseline ~improved] is the fractional reduction
    [(baseline - improved) / baseline]; 0 when the baseline is 0. *)
val savings : baseline:float -> improved:float -> float
