lib/ir/asm.ml: Array Bytes Char Fmt Format Instr Int64 Label List Ogc_isa Printf Prog Reg String Width
