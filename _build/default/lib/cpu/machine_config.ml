type cache_geometry = { size_bytes : int; ways : int; line_bytes : int }

type t = {
  fetch_width : int;
  decode_width : int;
  issue_width : int;
  retire_width : int;
  window_size : int;
  phys_regs : int;
  int_alus : int;
  int_muldiv : int;
  frontend_depth : int;
  icache : cache_geometry;
  icache_hit : int;
  icache_miss_penalty : int;
  dcache : cache_geometry;
  dcache_hit : int;
  dcache_miss_penalty : int;
  l2 : cache_geometry;
  l2_hit : int;
  memory_latency : int;
  mispredict_penalty : int;
  gshare_entries : int;
  gshare_history : int;
  bimodal_entries : int;
  chooser_entries : int;
  mul_latency : int;
  div_latency : int;
}

let default =
  {
    fetch_width = 4;
    decode_width = 4;
    issue_width = 4;
    retire_width = 4;
    window_size = 64;
    phys_regs = 96;
    int_alus = 3;
    int_muldiv = 1;
    frontend_depth = 4;
    icache = { size_bytes = 64 * 1024; ways = 2; line_bytes = 32 };
    icache_hit = 1;
    icache_miss_penalty = 6;
    dcache = { size_bytes = 64 * 1024; ways = 2; line_bytes = 32 };
    dcache_hit = 1;
    dcache_miss_penalty = 6;
    l2 = { size_bytes = 256 * 1024; ways = 4; line_bytes = 64 };
    l2_hit = 6;
    memory_latency = 18;
    mispredict_penalty = 5;
    gshare_entries = 64 * 1024;
    gshare_history = 16;
    bimodal_entries = 2 * 1024;
    chooser_entries = 1024;
    mul_latency = 7;
    div_latency = 20;
  }

let narrow2 =
  { default with fetch_width = 2; decode_width = 2; issue_width = 2;
    retire_width = 2; window_size = 32; int_alus = 2; phys_regs = 64 }

let wide8 =
  { default with fetch_width = 8; decode_width = 8; issue_width = 8;
    retire_width = 8; window_size = 128; int_alus = 6; int_muldiv = 2;
    phys_regs = 192 }

let rows t =
  [
    ("Fetch width", Printf.sprintf "%d instructions" t.fetch_width);
    ( "I-cache",
      Printf.sprintf
        "%dKB, %d-way set-associative, %d-byte lines, %d-cycle hit, %d-cycle miss penalty"
        (t.icache.size_bytes / 1024) t.icache.ways t.icache.line_bytes
        t.icache_hit t.icache_miss_penalty );
    ( "Branch predictor",
      Printf.sprintf
        "combined: %dK-entry chooser, gshare with %dK 2-bit counters and %d-bit history, %dK-entry bimodal"
        (t.chooser_entries / 1024) (t.gshare_entries / 1024) t.gshare_history
        (t.bimodal_entries / 1024) );
    ("Decode/Rename width", Printf.sprintf "%d instructions" t.decode_width);
    ("Max in-flight instructions", string_of_int t.window_size);
    ("Retire width", Printf.sprintf "%d instructions" t.retire_width);
    ( "Functional units",
      Printf.sprintf "%d intALU + %d int mul/div" t.int_alus t.int_muldiv );
    ("Issue mechanism", Printf.sprintf "%d instructions, out-of-order" t.issue_width);
    ( "D-cache L1",
      Printf.sprintf
        "%dKB, %d-way set-associative, %d-byte lines, %d-cycle hit, %d-cycle miss penalty"
        (t.dcache.size_bytes / 1024) t.dcache.ways t.dcache.line_bytes
        t.dcache_hit t.dcache_miss_penalty );
    ( "I/D-cache L2",
      Printf.sprintf
        "%dKB, %d-way set-associative, %d-byte lines, %d-cycle hit, %d+2-cycle memory"
        (t.l2.size_bytes / 1024) t.l2.ways t.l2.line_bytes t.l2_hit
        t.memory_latency );
    ("Physical registers", string_of_int t.phys_regs);
  ]
