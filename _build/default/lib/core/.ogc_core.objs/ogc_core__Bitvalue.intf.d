lib/core/bitvalue.mli: Format Instr Ogc_ir Ogc_isa Prog Width
