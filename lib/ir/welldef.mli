(** Definite-assignment conformance: every read reads a defined value.

    The optimizer stack assumes the standard calling convention
    throughout: {!Ogc_isa.Instr.defs} reports a call as clobbering every
    caller-saved register, liveness kills them accordingly, and dead-code
    elimination will happily delete a definition whose only readers sit
    on the far side of a call.  Those assumptions are only sound for
    programs that honour the convention — a program reading a
    caller-saved register it did not redefine after a call is reading a
    value the contract says is garbage, even though the reference
    interpreter (which models an actual machine) executes it
    deterministically.

    This module checks the contract by forward must-be-defined dataflow
    over each function: at entry, [zero], [sp], the callee-saved
    registers and the declared argument registers are defined; an
    instruction defines its destinations; a call erases every
    caller-saved register and defines [Reg.ret]; a block's entry state is
    the intersection over its predecessors.  Any instruction or
    terminator reading a register outside the defined set is a violation
    (note [Cmov] reads its destination: the old value survives when the
    move does not fire).  Unreachable blocks are ignored.

    The differential fuzzer requires generated and minimized programs to
    conform, and its oracle requires every optimization chain to preserve
    conformance. *)

exception Violation of string

val func : Prog.t -> Prog.func -> unit
(** Raises {!Violation} describing the first offending read.  The
    program supplies callee arities (a call only requires the argument
    registers its callee declares). *)

val program : Prog.t -> unit

val check : Prog.t -> string option
(** [check p] is [None] when [p] conforms, or [Some message]. *)
