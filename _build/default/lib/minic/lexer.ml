exception Error of string * Ast.pos

type token =
  | INT_LIT of int64
  | IDENT of string
  | STRING_LIT of string
  | KW of string
  | PUNCT of string
  | EOF

let keywords =
  [
    "char"; "short"; "int"; "long"; "void"; "if"; "else"; "while"; "do";
    "for"; "break"; "continue"; "return"; "emit";
  ]

(* Multi-character punctuation, longest first so matching is greedy. *)
let puncts =
  [
    "<<="; ">>="; "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||"; "+=";
    "-="; "*="; "/="; "%="; "&="; "|="; "^="; "++"; "--"; "+"; "-"; "*";
    "/"; "%"; "&"; "|"; "^"; "~"; "!"; "<"; ">"; "="; "("; ")"; "{"; "}";
    "["; "]"; ";"; ","; "?"; ":";
  ]

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and bol = ref 0 in
  let pos i = { Ast.line = !line; col = i - !bol + 1 } in
  let error i fmt = Fmt.kstr (fun s -> raise (Error (s, pos i))) fmt in
  let newline i = incr line; bol := i + 1 in
  let rec skip_line_comment i = if i < n && src.[i] <> '\n' then skip_line_comment (i + 1) else i in
  let rec skip_block_comment i =
    if i + 1 >= n then error i "unterminated comment"
    else if src.[i] = '\n' then begin newline i; skip_block_comment (i + 1) end
    else if src.[i] = '*' && src.[i + 1] = '/' then i + 2
    else skip_block_comment (i + 1)
  in
  let escape i = function
    | 'n' -> '\n'
    | 't' -> '\t'
    | 'r' -> '\r'
    | '0' -> '\000'
    | '\\' -> '\\'
    | '\'' -> '\''
    | '"' -> '"'
    | c -> error i "unknown escape \\%c" c
  in
  let rec go i =
    if i >= n then toks := (EOF, pos i) :: !toks
    else
      let c = src.[i] in
      if c = '\n' then begin newline i; go (i + 1) end
      else if c = ' ' || c = '\t' || c = '\r' then go (i + 1)
      else if c = '/' && i + 1 < n && src.[i + 1] = '/' then go (skip_line_comment i)
      else if c = '/' && i + 1 < n && src.[i + 1] = '*' then go (skip_block_comment (i + 2))
      else if is_digit c then begin
        let p = pos i in
        let j = ref i in
        let v =
          if c = '0' && i + 1 < n && (src.[i + 1] = 'x' || src.[i + 1] = 'X')
          then begin
            j := i + 2;
            let start = !j in
            while !j < n && is_hex src.[!j] do incr j done;
            if !j = start then error i "bad hex literal";
            Int64.of_string ("0x" ^ String.sub src start (!j - start))
          end
          else begin
            while !j < n && is_digit src.[!j] do incr j done;
            Int64.of_string (String.sub src i (!j - i))
          end
        in
        toks := (INT_LIT v, p) :: !toks;
        go !j
      end
      else if is_alpha c then begin
        let p = pos i in
        let j = ref i in
        while !j < n && is_alnum src.[!j] do incr j done;
        let s = String.sub src i (!j - i) in
        let tok = if List.mem s keywords then KW s else IDENT s in
        toks := (tok, p) :: !toks;
        go !j
      end
      else if c = '\'' then begin
        let p = pos i in
        if i + 1 >= n then error i "unterminated char literal";
        let v, j =
          if src.[i + 1] = '\\' then begin
            if i + 2 >= n then error i "unterminated char literal";
            (escape i src.[i + 2], i + 3)
          end
          else (src.[i + 1], i + 2)
        in
        if j >= n || src.[j] <> '\'' then error i "unterminated char literal";
        toks := (INT_LIT (Int64.of_int (Char.code v)), p) :: !toks;
        go (j + 1)
      end
      else if c = '"' then begin
        let p = pos i in
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then error i "unterminated string literal"
          else if src.[j] = '"' then j + 1
          else if src.[j] = '\\' then begin
            if j + 1 >= n then error i "unterminated string literal";
            Buffer.add_char buf (escape j src.[j + 1]);
            str (j + 2)
          end
          else begin
            if src.[j] = '\n' then newline j;
            Buffer.add_char buf src.[j];
            str (j + 1)
          end
        in
        let j = str (i + 1) in
        toks := (STRING_LIT (Buffer.contents buf), p) :: !toks;
        go j
      end
      else begin
        let p = pos i in
        match
          List.find_opt
            (fun op ->
              let l = String.length op in
              i + l <= n && String.equal (String.sub src i l) op)
            puncts
        with
        | Some op ->
          toks := (PUNCT op, p) :: !toks;
          go (i + String.length op)
        | None -> error i "unexpected character %C" c
      end
  in
  go 0;
  Array.of_list (List.rev !toks)

let token_to_string = function
  | INT_LIT v -> Int64.to_string v
  | IDENT s -> s
  | STRING_LIT s -> Printf.sprintf "%S" s
  | KW s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"
