module J = Ogc_json.Json

let enabled_flag = Atomic.make false
let epoch = Atomic.make 0.0 (* trace clock origin, set on enable *)

let set_enabled b =
  if b then Atomic.set epoch (Unix.gettimeofday ());
  Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag
let now_us () = (Unix.gettimeofday () -. Atomic.get epoch) *. 1e6

(* Span/flow ids.  One process-wide counter: span ids are unique within
   a process but NOT across processes, so anything that must match on
   both sides of a socket (flow binding) goes through [wire_flow_id],
   which is derived from wire data instead. *)
let next_id = Atomic.make 1
let fresh_id () = Atomic.fetch_and_add next_id 1

(* First 60 bits of an MD5, as a non-negative int: stable across
   processes for equal input, which is the whole point. *)
let digest_id s =
  let d = Digest.string s in
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v land max_int

let wire_flow_id ~trace ~parent =
  digest_id (trace ^ "/" ^ string_of_int parent)

(* For in-process handoffs (pool submit -> worker) both ends share a
   closure, so the id only has to be unique; salt with the pid so two
   processes' local flows can never collide in a merged document. *)
let local_flow_id () =
  digest_id (string_of_int (Unix.getpid ()) ^ ":" ^ string_of_int (fresh_id ()))

(* --- ambient trace context ------------------------------------------------ *)

type ctx = { trace : string; parent : int }

let ctxs : (int, ctx) Hashtbl.t = Hashtbl.create 16
let ctxs_m = Mutex.create ()

let current () =
  let tid = Thread.id (Thread.self ()) in
  Mutex.lock ctxs_m;
  let c = Hashtbl.find_opt ctxs tid in
  Mutex.unlock ctxs_m;
  c

let set_context c =
  let tid = Thread.id (Thread.self ()) in
  Mutex.lock ctxs_m;
  (match c with
  | Some c -> Hashtbl.replace ctxs tid c
  | None -> Hashtbl.remove ctxs tid);
  Mutex.unlock ctxs_m

let with_context c f =
  let saved = current () in
  set_context c;
  Fun.protect ~finally:(fun () -> set_context saved) f

(* --- rings ---------------------------------------------------------------- *)

type ev = {
  ph : char; (* 'B' | 'E' | 'i' | 's' | 'f' *)
  ename : string;
  ts : float; (* µs since enable *)
  eid : int; (* span id for B/E, flow id for s/f, 0 otherwise *)
  eargs : (string * J.t) list;
}

let dummy = { ph = ' '; ename = ""; ts = 0.0; eid = 0; eargs = [] }
let capacity = 1 lsl 15
let m_dropped = Metrics.counter "ogc_span_dropped_total"

(* One ring per thread: [Thread.id] is unique across all domains, so a
   ring has a single writer and appends contend only with an export
   snapshotting that same ring. *)
type ring = {
  rm : Mutex.t;
  buf : ev array;
  mutable total : int; (* events ever written; index = total mod capacity *)
  rtid : int;
  rdid : int; (* domain at ring creation, for the track name *)
}

let rings : (int, ring) Hashtbl.t = Hashtbl.create 16
let rings_m = Mutex.create ()

let ring_for_current () =
  let tid = Thread.id (Thread.self ()) in
  Mutex.lock rings_m;
  let r =
    match Hashtbl.find_opt rings tid with
    | Some r -> r
    | None ->
      let r =
        { rm = Mutex.create ();
          buf = Array.make capacity dummy;
          total = 0;
          rtid = tid;
          rdid = (Domain.self () :> int) }
      in
      Hashtbl.add rings tid r;
      r
  in
  Mutex.unlock rings_m;
  r

let emit r ph ename eid eargs =
  let ts = now_us () in
  Mutex.lock r.rm;
  if r.total >= capacity then Metrics.incr m_dropped;
  r.buf.(r.total mod capacity) <- { ph; ename; ts; eid; eargs };
  r.total <- r.total + 1;
  Mutex.unlock r.rm

let with_ ?(args = []) ~name f =
  if not (enabled ()) then f ()
  else begin
    let r = ring_for_current () in
    let sid = fresh_id () in
    let ctx = current () in
    let targs =
      match ctx with
      | None -> [ ("span_id", J.Int sid) ]
      | Some c ->
        [ ("span_id", J.Int sid); ("trace_id", J.Str c.trace);
          ("parent_span", J.Int c.parent) ]
    in
    emit r 'B' name sid (args @ targs);
    let run () =
      match ctx with
      | None -> f ()
      | Some c -> with_context (Some { c with parent = sid }) f
    in
    Fun.protect ~finally:(fun () -> emit r 'E' name sid []) run
  end

let instant ?(args = []) name =
  if enabled () then emit (ring_for_current ()) 'i' name 0 args

(* Flow events bind to the enclosing slice on their thread: an 's' in
   the producer span and an 'f' in the consumer span draw the arrow
   Perfetto renders across tracks (and, after {!merge_processes},
   across processes). *)
let flow_out ~id = if enabled () then emit (ring_for_current ()) 's' "flow" id []
let flow_in ~id = if enabled () then emit (ring_for_current ()) 'f' "flow" id []

(* --- export --------------------------------------------------------------- *)

let ring_events r =
  Mutex.lock r.rm;
  let total = r.total in
  let n = min total capacity in
  let first = total - n in
  let evs = List.init n (fun i -> r.buf.((first + i) mod capacity)) in
  Mutex.unlock r.rm;
  evs

let event_json tid e =
  let base =
    [ ("name", J.Str e.ename);
      ("ph", J.Str (String.make 1 e.ph));
      ("ts", J.Float e.ts);
      ("pid", J.Int 1);
      ("tid", J.Int tid);
      ("cat", J.Str "ogc") ]
  in
  let extra =
    match e.ph with
    | 'i' -> [ ("s", J.Str "t") ]
    | 's' -> [ ("id", J.Int e.eid) ]
    | 'f' -> [ ("id", J.Int e.eid); ("bp", J.Str "e") ]
    | _ -> []
  in
  let args =
    match e.eargs with [] -> [] | a -> [ ("args", J.Obj a) ]
  in
  J.Obj (base @ extra @ args)

let thread_meta r =
  J.Obj
    [ ("name", J.Str "thread_name");
      ("ph", J.Str "M");
      ("pid", J.Int 1);
      ("tid", J.Int r.rtid);
      ("args",
       J.Obj
         [ ("name",
            J.Str (Printf.sprintf "domain %d / thread %d" r.rdid r.rtid)) ]) ]

let all_rings () =
  Mutex.lock rings_m;
  let rs = Hashtbl.fold (fun _ r acc -> r :: acc) rings [] in
  Mutex.unlock rings_m;
  List.sort (fun a b -> compare a.rtid b.rtid) rs

let dropped_events () =
  List.fold_left (fun acc r -> acc + max 0 (r.total - capacity)) 0 (all_rings ())

let export () =
  let rs = all_rings () in
  let metas = List.map thread_meta rs in
  let evs =
    List.concat_map (fun r -> List.map (event_json r.rtid) (ring_events r)) rs
  in
  let ts_of = function J.Obj kvs -> J.get_float "ts" (J.Obj kvs) | _ -> 0.0 in
  let evs = List.stable_sort (fun a b -> compare (ts_of a) (ts_of b)) evs in
  J.Obj
    [ ("traceEvents", J.Arr (metas @ evs));
      ("displayTimeUnit", J.Str "ms");
      ("dropped_events", J.Int (dropped_events ())) ]

(* Every event of every ring whose enclosing span carries [trace] in its
   begin args — the local slice of one distributed request, small enough
   to inline into a log line. *)
let trace_slice trace =
  let rs = all_rings () in
  let member_sids = Hashtbl.create 16 in
  List.iter
    (fun r ->
      List.iter
        (fun e ->
          if e.ph = 'B' then begin
            match List.assoc_opt "trace_id" e.eargs with
            | Some (J.Str t) when t = trace -> Hashtbl.replace member_sids e.eid ()
            | _ -> ()
          end)
        (ring_events r))
    rs;
  let evs =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun e ->
            match e.ph with
            | ('B' | 'E') when Hashtbl.mem member_sids e.eid ->
              Some (event_json r.rtid e)
            | _ -> None)
          (ring_events r))
      rs
  in
  let ts_of = function J.Obj kvs -> J.get_float "ts" (J.Obj kvs) | _ -> 0.0 in
  J.Arr (List.stable_sort (fun a b -> compare (ts_of a) (ts_of b)) evs)

(* Merge per-process export documents into one: process [i] keeps its
   own tid space but gets pid [i+1] and a [process_name] metadata track,
   so a fleet trace renders router and shards as separate process groups
   with flow arrows crossing between them. *)
let merge_processes docs =
  let rekey pid = function
    | J.Obj kvs ->
      J.Obj (List.map (fun (k, v) -> if k = "pid" then (k, J.Int pid) else (k, v)) kvs)
    | j -> j
  in
  let events =
    List.concat
      (List.mapi
         (fun i (name, doc) ->
           let pid = i + 1 in
           let meta =
             J.Obj
               [ ("name", J.Str "process_name");
                 ("ph", J.Str "M");
                 ("pid", J.Int pid);
                 ("tid", J.Int 0);
                 ("args", J.Obj [ ("name", J.Str name) ]) ]
           in
           let evs =
             match J.member "traceEvents" doc with
             | J.Arr evs -> List.map (rekey pid) evs
             | _ -> []
           in
           meta :: evs)
         docs)
  in
  let dropped =
    List.fold_left
      (fun acc (_, doc) ->
        match J.member "dropped_events" doc with
        | J.Int n -> acc + n
        | _ -> acc)
      0 docs
  in
  J.Obj
    [ ("traceEvents", J.Arr events);
      ("displayTimeUnit", J.Str "ms");
      ("dropped_events", J.Int dropped) ]

let write path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string ~indent:false (export ()));
      output_char oc '\n')

let reset () =
  Mutex.lock rings_m;
  Hashtbl.reset rings;
  Mutex.unlock rings_m;
  Mutex.lock ctxs_m;
  Hashtbl.reset ctxs;
  Mutex.unlock ctxs_m
