(* Per-program accumulated execution profiles (the `profile` op).

   Keyed by the request's {!Protocol.route_key} — the program-identity
   digest — so every option variant of one program shares a single
   accumulated profile, exactly as they share a primary shard.  Each
   accepted push merges the client's delta into the accumulator and
   bumps the program's epoch; the epoch then salts the cache keys of
   profile-dependent artifacts, which is what turns "fresher profile"
   into "recompute the profile-dependent suffix".

   Bounded (FIFO eviction over programs): a fleet fed by a fuzzing
   client must not grow a profile per discarded program forever. *)

module Profile = Ogc_pass.Profile

type t = {
  m : Mutex.t;
  capacity : int;
  programs : (string, Profile.t) Hashtbl.t;  (* route_key -> accumulator *)
  order : string Queue.t;  (* insertion order: FIFO eviction *)
  mutable pushes : int;
}

let create ?(capacity = 256) () =
  {
    m = Mutex.create ();
    capacity = max capacity 1;
    programs = Hashtbl.create 16;
    order = Queue.create ();
    pushes = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Merge a client delta (already decoded — decoding happens outside the
   lock) into the program's accumulator and bump its epoch.  Returns the
   new epoch. *)
let push t key delta =
  locked t (fun () ->
      let acc =
        match Hashtbl.find_opt t.programs key with
        | Some p -> p
        | None ->
          while Hashtbl.length t.programs >= t.capacity do
            match Queue.take_opt t.order with
            | Some old -> Hashtbl.remove t.programs old
            | None -> Hashtbl.reset t.programs
          done;
          let p = Profile.create () in
          Hashtbl.replace t.programs key p;
          Queue.add key t.order;
          p
      in
      Profile.merge_into acc delta;
      acc.Profile.p_epoch <- Profile.epoch acc + 1;
      t.pushes <- t.pushes + 1;
      Profile.epoch acc)

(* A deep copy: what a request consumes must never alias the
   accumulator a concurrent push is mutating. *)
let find t key =
  locked t (fun () -> Option.map Profile.copy (Hashtbl.find_opt t.programs key))

let epoch t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.programs key with
      | Some p -> Profile.epoch p
      | None -> 0)

let stats t = locked t (fun () -> (Hashtbl.length t.programs, t.pushes))
