module J = Ogc_json.Json
module Server = Ogc_server.Server
module Protocol = Ogc_server.Protocol
module Pool = Ogc_exec.Pool
module Metrics = Ogc_obs.Metrics

type config = {
  addr : Server.addr;
  requests : int;
  clients : int;
  warm_ratio : float;
  cost_sweep : bool;
  workloads : string list;
  programs : int;
  seed : int;
  retries : int;
  connect_timeout_ms : int;
  backoff_ms : int;
  trace_sample : int;
}

let default_config ~addr =
  { addr;
    requests = 200;
    clients = 4;
    warm_ratio = 0.5;
    cost_sweep = true;
    workloads = [];
    programs = 6;
    seed = 42;
    retries = 5;
    connect_timeout_ms = 1000;
    backoff_ms = 50;
    trace_sample = 0 }

type report = {
  total : int;
  ok : int;
  failed : int;
  retried : int;
  cache_hits : int;
  wall_s : float;
  throughput_rps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  latency_hist : (float * int) list;
  overflow : int;
}

(* --- the request stream ---------------------------------------------------- *)

(* A small family of loop-and-mask MiniC programs in the paper's sweet
   spot: narrow masked values a VRP/VRS chain actually bites on, but
   compiling and simulating in milliseconds so the driver measures the
   fleet, not the analyzer. *)
let source_of pid =
  Printf.sprintf
    {|
    int source = %d;
    int main() {
      int acc = 0;
      for (int i = 0; i < %d; i++) {
        int x = (source + i * %d) & 0xFF;
        acc = acc + (x & %d);
      }
      emit(acc & 0xFFFF);
      return 0;
    }
    |}
    (101 + (17 * pid))
    (40 + (8 * (pid mod 5)))
    (3 + pid)
    (0x0F + ((pid mod 3) * 0x30))

let costs = [| 30; 50; 70; 90; 110 |]

let cold_line cfg rs i =
  let payload =
    if
      cfg.workloads <> []
      && Random.State.float rs 1.0 < 0.25
    then
      ( "workload",
        J.Str
          (List.nth cfg.workloads
             (Random.State.int rs (List.length cfg.workloads))) )
    else
      ("source", J.Str (source_of (Random.State.int rs (max 1 cfg.programs))))
  in
  let pass_members =
    if cfg.cost_sweep && Random.State.float rs 1.0 < 0.7 then
      [ ("pass", J.Str "vrs");
        ("cost", J.Int costs.(Random.State.int rs (Array.length costs))) ]
    else if Random.State.bool rs then [ ("pass", J.Str "vrp") ]
    else []
  in
  J.to_string ~indent:false
    (J.Obj
       ([ ("proto", J.Int Protocol.proto_version);
          ("id", J.Str (Printf.sprintf "r%d" i));
          payload ]
       @ pass_members))

(* Request [i] is a pure function of the seed: a warm request replays an
   earlier index's line byte-for-byte (the chain of warm hops always
   lands on a smaller index, so this terminates), a cold one is drawn
   from the program family above.  Byte-identical replays are what makes
   the warm fraction hit the fleet's result caches. *)
let request_line cfg i =
  let rec gen i =
    let rs = Random.State.make [| cfg.seed; i |] in
    if i > 0 && Random.State.float rs 1.0 < cfg.warm_ratio then
      gen (Random.State.int rs i)
    else cold_line cfg rs i
  in
  gen i

(* Every [trace_sample]-th submission carries a deterministic trace id (a
   digest of the seed and index).  Trace members are excluded from cache
   and route keys by construction, so sampling never perturbs placement
   or hit rates — a traced replay of a warm line still hits. *)
let traced_line cfg i line =
  if cfg.trace_sample <= 0 || i mod cfg.trace_sample <> 0 then line
  else
    match J.of_string line with
    | J.Obj ms ->
      let tr =
        Digest.to_hex
          (Digest.string (Printf.sprintf "loadgen/%d/%d" cfg.seed i))
      in
      J.to_string ~indent:false (J.Obj (ms @ [ ("trace_id", J.Str tr) ]))
    | _ | (exception J.Parse_error _) -> line

(* --- latency histogram ----------------------------------------------------- *)

(* Finer than the default second-denominated buckets: fleet round trips
   sit between half a millisecond (cache hit over a Unix socket) and
   seconds (cold VRS chain under load). *)
let lat_buckets =
  [| 0.0005; 0.001; 0.002; 0.003; 0.005; 0.0075; 0.01; 0.015; 0.02; 0.03;
     0.05; 0.075; 0.1; 0.15; 0.2; 0.3; 0.5; 0.75; 1.0; 1.5; 2.0; 3.0; 5.0;
     7.5; 10.0 |]

let m_lat = Metrics.histogram "ogc_loadgen_seconds" ~buckets:lat_buckets

let percentile_of_counts ~before ~after q =
  Metrics.percentile_of_counts ~buckets:lat_buckets ~before ~after q

(* --- client side ----------------------------------------------------------- *)

let sockaddr_of = function
  | Server.Unix_sock path -> Unix.ADDR_UNIX path
  | Server.Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } -> Fmt.failwith "cannot resolve %s" host
        | h -> h.Unix.h_addr_list.(0)
        | exception Not_found -> Fmt.failwith "cannot resolve %s" host)
    in
    Unix.ADDR_INET (ip, port)

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect cfg =
  let domain =
    match cfg.addr with
    | Server.Unix_sock _ -> Unix.PF_UNIX
    | Server.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  try
    Unix.set_nonblock fd;
    (try Unix.connect fd (sockaddr_of cfg.addr) with
    | Unix.Unix_error (Unix.EINPROGRESS, _, _) -> (
      let dt = float_of_int cfg.connect_timeout_ms /. 1000.0 in
      match Unix.select [] [ fd ] [] dt with
      | _, [ _ ], _ -> (
        match Unix.getsockopt_error fd with
        | None -> ()
        | Some e -> raise (Unix.Unix_error (e, "connect", "")))
      | _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))));
    Unix.clear_nonblock fd;
    { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let close_conn c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let backoff cfg rs attempt =
  let base = float_of_int cfg.backoff_ms /. 1000.0 in
  let d = base *. (2.0 ** float_of_int attempt) in
  Float.min 2.0 (d *. (0.5 +. Random.State.float rs 1.0))

type tally = {
  mutable c_ok : int;
  mutable c_failed : int;
  mutable c_retried : int;
  mutable c_cache_hits : int;
}

(* One client: a persistent connection replaying its slice of the
   stream in index order, reconnecting (with backoff) on I/O errors and
   retrying retryable statuses.  Per-submission wall time — including
   retries, which real callers also wait through — goes into the shared
   histogram. *)
let client cfg ~completed ~kill c_idx =
  let rs = Random.State.make [| cfg.seed; 0x10ad; c_idx |] in
  let tally = { c_ok = 0; c_failed = 0; c_retried = 0; c_cache_hits = 0 } in
  let conn = ref None in
  let get_conn () =
    match !conn with
    | Some c -> c
    | None ->
      let c = connect cfg in
      conn := Some c;
      c
  in
  let drop_conn () =
    Option.iter close_conn !conn;
    conn := None
  in
  let submit line =
    let rec attempt n =
      let retry () =
        if n >= cfg.retries then false
        else begin
          tally.c_retried <- tally.c_retried + 1;
          Unix.sleepf (backoff cfg rs n);
          attempt (n + 1)
        end
      in
      match
        let c = get_conn () in
        output_string c.oc line;
        output_char c.oc '\n';
        flush c.oc;
        input_line c.ic
      with
      | exception _ ->
        drop_conn ();
        retry ()
      | resp -> (
        match J.of_string resp with
        | exception J.Parse_error _ -> retry ()
        | j -> (
          match J.member "status" j with
          | J.Str "ok" ->
            (match J.member "cache" j with
            | J.Str "hit" -> tally.c_cache_hits <- tally.c_cache_hits + 1
            | _ -> ());
            true
          | J.Str ("overloaded" | "unavailable") -> retry ()
          | _ ->
            (* A structured analysis error is deterministic; retrying
               cannot change it. *)
            false))
    in
    attempt 0
  in
  let i = ref c_idx in
  while !i < cfg.requests do
    let line = traced_line cfg !i (request_line cfg !i) in
    let t0 = Unix.gettimeofday () in
    let ok = submit line in
    Metrics.observe m_lat (Unix.gettimeofday () -. t0);
    if ok then tally.c_ok <- tally.c_ok + 1
    else tally.c_failed <- tally.c_failed + 1;
    let done_now = 1 + Atomic.fetch_and_add completed 1 in
    (match kill with
    | Some (at, fired, f) ->
      if done_now >= at && not (Atomic.exchange fired true) then f ()
    | None -> ());
    i := !i + cfg.clients
  done;
  drop_conn ();
  tally

(* --- the run --------------------------------------------------------------- *)

let run ?kill cfg =
  (* A shard kill mid-run closes sockets under our clients; the write
     must fail with EPIPE (and be retried), not kill the process. *)
  Server.ignore_sigpipe ();
  let clients = max 1 cfg.clients in
  let was_enabled = Metrics.enabled () in
  Metrics.set_enabled true;
  let before = fst (Metrics.histogram_counts m_lat) in
  let completed = Atomic.make 0 in
  let kill =
    Option.map (fun (at, f) -> (at, Atomic.make false, f)) kill
  in
  let t0 = Unix.gettimeofday () in
  let tallies =
    Fun.protect
      ~finally:(fun () -> Metrics.set_enabled was_enabled)
      (fun () ->
        Pool.map ~jobs:clients
          (client { cfg with clients } ~completed ~kill)
          (List.init clients Fun.id))
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let after = fst (Metrics.histogram_counts m_lat) in
  let sum f = List.fold_left (fun acc t -> acc + f t) 0 tallies in
  let total = cfg.requests in
  let pct q = percentile_of_counts ~before ~after q *. 1000.0 in
  let latency_hist =
    List.init (Array.length lat_buckets) (fun i ->
        (lat_buckets.(i), int_of_float (after.(i) -. before.(i))))
  in
  let n = Array.length lat_buckets in
  let overflow = int_of_float (after.(n) -. before.(n)) in
  { total;
    ok = sum (fun t -> t.c_ok);
    failed = sum (fun t -> t.c_failed);
    retried = sum (fun t -> t.c_retried);
    cache_hits = sum (fun t -> t.c_cache_hits);
    wall_s;
    throughput_rps =
      (if wall_s > 0.0 then float_of_int total /. wall_s else 0.0);
    p50_ms = pct 0.50;
    p95_ms = pct 0.95;
    p99_ms = pct 0.99;
    latency_hist;
    overflow }

let report_json r =
  J.Obj
    [ ("total", J.Int r.total);
      ("ok", J.Int r.ok);
      ("failed", J.Int r.failed);
      ("retried", J.Int r.retried);
      ("cache_hits", J.Int r.cache_hits);
      ("wall_s", J.Float r.wall_s);
      ("throughput_rps", J.Float r.throughput_rps);
      ("p50_ms", J.Float r.p50_ms);
      ("p95_ms", J.Float r.p95_ms);
      ("p99_ms", J.Float r.p99_ms);
      ("latency_hist",
       J.Arr
         (List.map
            (fun (le, c) ->
              J.Obj [ ("le_s", J.Float le); ("count", J.Int c) ])
            r.latency_hist));
      ("overflow", J.Int r.overflow) ]
