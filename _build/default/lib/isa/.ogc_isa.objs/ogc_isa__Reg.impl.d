lib/isa/reg.ml: Fmt Format Int List Map Printf Set
