(* Workload characterization: each SpecInt95 surrogate must actually
   exercise its namesake's dominant computation pattern.  These tests
   pin the dynamic instruction mix so a workload cannot silently
   degenerate (e.g. a compression benchmark that stops touching bytes)
   without failing the suite. *)

open Ogc_isa
module Workload = Ogc_workloads.Workload
module Pipeline = Ogc_cpu.Pipeline
module Policy = Ogc_gating.Policy

let stats =
  lazy
    (List.map
       (fun (w : Workload.t) ->
         let p = Workload.compile w Workload.Train in
         (w.Workload.name, Pipeline.simulate ~policy:Policy.No_gating p))
       Workload.all)

let stat name = List.assoc name (Lazy.force stats)

let share (s : Pipeline.stats) pred =
  let n =
    Hashtbl.fold
      (fun (ic, w) c acc -> if pred ic w then acc + c else acc)
      s.Pipeline.class_width 0
  in
  float_of_int n /. float_of_int s.Pipeline.instructions

let class_share s cls = share s (fun ic _ -> ic = cls)

let check_min name what v threshold =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s = %.2f%% >= %.2f%%" name what (100. *. v)
       (100. *. threshold))
    true (v >= threshold)

let test_compress () =
  let s = stat "compress" in
  (* LZSS: byte loads dominate memory traffic. *)
  check_min "compress" "byte loads"
    (share s (fun ic w -> ic = Instr.C_load && Width.equal w Width.W8))
    0.03;
  check_min "compress" "compares" (class_share s Instr.C_cmp) 0.04

let test_gcc () =
  let s = stat "gcc" in
  (* Tree walking: branchy with plenty of calls (recursive folds). *)
  check_min "gcc" "branch fraction"
    (float_of_int s.Pipeline.branches /. float_of_int s.Pipeline.instructions)
    0.05;
  check_min "gcc" "calls" (class_share s Instr.C_call) 0.01

let test_go () =
  let s = stat "go" in
  check_min "go" "narrow loads (board + influence)"
    (share s (fun ic w ->
         ic = Instr.C_load
         && (Width.equal w Width.W8 || Width.equal w Width.W16)))
    0.02;
  (* Influence averaging divides. *)
  check_min "go" "mul/div" (class_share s Instr.C_mul) 0.005

let test_ijpeg () =
  let s = stat "ijpeg" in
  (* Fixed-point DCT: multiply-heavy. *)
  check_min "ijpeg" "multiplies" (class_share s Instr.C_mul) 0.02;
  check_min "ijpeg" "shifts" (class_share s Instr.C_shift) 0.02

let test_li () =
  let s = stat "li" in
  (* Interpreter recursion: call-rich and load-rich. *)
  check_min "li" "calls" (class_share s Instr.C_call) 0.02;
  check_min "li" "loads" (class_share s Instr.C_load) 0.10

let test_m88ksim () =
  let s = stat "m88ksim" in
  (* Decode loop: shift/mask field extraction. *)
  check_min "m88ksim" "shifts" (class_share s Instr.C_shift) 0.05;
  check_min "m88ksim" "ands" (class_share s Instr.C_and) 0.04

let test_perl () =
  let s = stat "perl" in
  check_min "perl" "byte string loads"
    (share s (fun ic w -> ic = Instr.C_load && Width.equal w Width.W8))
    0.02;
  check_min "perl" "multiplies (hash fold)" (class_share s Instr.C_mul) 0.01

let test_vortex () =
  let s = stat "vortex" in
  check_min "vortex" "loads (index walks)" (class_share s Instr.C_load) 0.10;
  check_min "vortex" "compares (binary search)" (class_share s Instr.C_cmp) 0.04

let test_suite_diversity () =
  (* The suite as a whole must cover a spread of IPCs and branch rates,
     like a real benchmark suite. *)
  let all = Lazy.force stats in
  let ipcs = List.map (fun (_, s) -> Pipeline.ipc s) all in
  let mn = List.fold_left min infinity ipcs in
  let mx = List.fold_left max 0.0 ipcs in
  Alcotest.(check bool)
    (Printf.sprintf "IPC spread %.2f .. %.2f" mn mx)
    true
    (mx -. mn > 0.4);
  let mispredict_rates =
    List.map
      (fun (_, s) ->
        float_of_int s.Pipeline.mispredictions
        /. float_of_int (max 1 s.Pipeline.branches))
      all
  in
  Alcotest.(check bool) "some benchmark is hard to predict" true
    (List.exists (fun r -> r > 0.05) mispredict_rates);
  Alcotest.(check bool) "some benchmark is easy to predict" true
    (List.exists (fun r -> r < 0.06) mispredict_rates)

let () =
  Alcotest.run "workloads2"
    [
      ( "characterization",
        [
          Alcotest.test_case "compress" `Slow test_compress;
          Alcotest.test_case "gcc" `Slow test_gcc;
          Alcotest.test_case "go" `Slow test_go;
          Alcotest.test_case "ijpeg" `Slow test_ijpeg;
          Alcotest.test_case "li" `Slow test_li;
          Alcotest.test_case "m88ksim" `Slow test_m88ksim;
          Alcotest.test_case "perl" `Slow test_perl;
          Alcotest.test_case "vortex" `Slow test_vortex;
          Alcotest.test_case "suite diversity" `Slow test_suite_diversity;
        ] );
    ]
