(** Constant propagation, branch folding and dead-code elimination.

    Runs on top of a {!Vrp} analysis: any instruction whose output range
    collapsed to a single value becomes a load-immediate, constant second
    operands fold into immediates, branches whose condition is known
    fold to jumps, and pure instructions with no remaining uses are
    removed.  VRS relies on this to realize the paper's §3.4 observation
    that single-value specialization plus constant propagation removes
    instructions from the specialized code. *)

open Ogc_ir

type stats = {
  folded_to_const : int;  (** instructions rewritten to [Li] *)
  folded_operands : int;  (** register operands rewritten to immediates *)
  folded_branches : int;  (** conditional branches rewritten to jumps *)
  removed : int;  (** dead pure instructions deleted *)
  removed_iids : int list;  (** ids of the deleted instructions *)
}

val run : Vrp.result -> Prog.t -> stats
(** Transforms [prog] in place.  The result still passes
    {!Ogc_ir.Validate.program} and computes the same checksum. *)
