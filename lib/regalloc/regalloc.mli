(** Graph-coloring register allocation with iterated spilling.

    Consumes the virtual-register programs produced by the MiniC code
    generator and assigns every temporary an architectural register, in
    the style of iterated register coalescing: build the interference
    graph from {!Ogc_ir.Liveness}, simplify, coalesce moves under the
    George/Briggs conservative tests, freeze, select potential spills,
    color optimistically, and — when a temporary receives no color —
    rewrite it through a stack slot and repeat to a fixpoint.

    Spill slots are width-aware: each slot is sized from the proven
    value range of the spilled temporary's definitions (the [width_of]
    callback, backed by VRP on the pre-allocation program), so spill
    stores and reloads move only the live bytes.  Reloads are signed
    and ranges are measured with the signed width, so narrow negative
    values round-trip exactly.

    The allocator also finalizes frames: the code generator emits stack
    adjustment only for its array area, and this module re-sizes it to
    cover spill slots and callee-saved save slots, inserting the
    save/restore sequences at function entry and every return. *)

open Ogc_isa
open Ogc_ir

exception Bound_exceeded of { fname : string; iterations : int }
(** Raised when a function fails to color within the iteration budget.
    Distinct from [Ogc_minic.Codegen.Codegen_bug]: it reports an
    allocator divergence, not a lowering bug. *)

(** One spill slot: the spilled virtual register, its offset from the
    bottom of the frame's spill area, and its width-aware size. *)
type slot = { sreg : Reg.t; soffset : int; sbytes : int }

type func_alloc = {
  fa_name : string;
  fa_slots : slot list;  (** in slot-offset order *)
  fa_spill_area : int;  (** bytes of spill area, 8-byte aligned *)
  fa_callee_saved : Reg.t list;  (** callee-saved registers save/restored *)
  fa_iterations : int;  (** coloring rounds, 1 = no spilling needed *)
}

type info = {
  fallocs : func_alloc list;
  spill_ops : (int, int) Hashtbl.t;
      (** iid of every inserted spill store/reload, mapped to the bytes
          it moves; feeds the dynamic spill-traffic series. *)
}

val num_colors : int
(** Size of the allocatable palette: the 32 architectural registers
    minus [sp], [zero] and the two registers reserved as VRS guard
    scratch. *)

val spill_slots_bytes : info -> int
(** Total bytes of width-aware spill slots across the program. *)

val spill_slots_naive_bytes : info -> int
(** What the same slots would occupy at a uniform 8 bytes each. *)

val program :
  ?max_iterations:int ->
  ?check:bool ->
  width_of:(int -> Width.t) ->
  Prog.t ->
  info
(** Allocate every function of [p] in place.  [width_of iid] is the
    proven signed width of the value defined at [iid] (W64 when
    unknown); it is consulted only when a spill slot is created, so a
    lazily forced VRP result behaves well.  [max_iterations] (default
    12) bounds build/color/rewrite rounds per function; exceeding it
    raises {!Bound_exceeded}.  [check] (default false, for tests)
    re-derives liveness after coloring and raises [Invalid_argument] if
    any two interfering registers were assigned the same architectural
    register.  On return no virtual register remains and every frame is
    finalized. *)

val pp_info : Format.formatter -> info -> unit
