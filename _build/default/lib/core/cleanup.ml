open Ogc_ir

type stats = {
  threaded : int;
  branches_unified : int;
  pruned_blocks : int;
  pruned_instructions : int;
}

(* Follow a chain of empty jump-only blocks, guarding against cycles. *)
let resolve (f : Prog.func) l0 =
  let rec go l seen =
    let b = Prog.block f l in
    match b.Prog.term with
    | Prog.Jump m
      when Array.length b.Prog.body = 0
           && (not (Label.equal m l))
           && not (List.exists (Label.equal m) seen) ->
      go m (m :: seen)
    | _ -> l
  in
  go l0 [ l0 ]

let thread_jumps (f : Prog.func) =
  let threaded = ref 0 and unified = ref 0 in
  Array.iter
    (fun (b : Prog.block) ->
      match b.Prog.term with
      | Prog.Jump l ->
        let l' = resolve f l in
        if not (Label.equal l l') then begin
          incr threaded;
          b.Prog.term <- Prog.Jump l'
        end
      | Prog.Branch { cond; src; if_true; if_false } ->
        let t' = resolve f if_true and f' = resolve f if_false in
        if not (Label.equal t' if_true && Label.equal f' if_false) then
          incr threaded;
        if Label.equal t' f' then begin
          incr unified;
          b.Prog.term <- Prog.Jump t'
        end
        else b.Prog.term <- Prog.Branch { cond; src; if_true = t'; if_false = f' }
      | Prog.Return -> ())
    f.Prog.blocks;
  (!threaded, !unified)

let prune_unreachable (f : Prog.func) =
  let cfg = Cfg.of_func f in
  let blocks = ref 0 and instructions = ref 0 in
  Array.iter
    (fun (b : Prog.block) ->
      if not (Cfg.is_reachable cfg b.Prog.label) then begin
        let n = Array.length b.Prog.body in
        if n > 0 || b.Prog.term <> Prog.Return then begin
          incr blocks;
          instructions := !instructions + n;
          b.Prog.body <- [||];
          b.Prog.term <- Prog.Return
        end
      end)
    f.Prog.blocks;
  (!blocks, !instructions)

let run (p : Prog.t) =
  let acc = ref { threaded = 0; branches_unified = 0; pruned_blocks = 0;
                  pruned_instructions = 0 } in
  List.iter
    (fun f ->
      (* Threading can expose more threading (chains through newly-folded
         branches); iterate to a fixpoint with a small bound. *)
      let rec loop n =
        if n > 0 then begin
          let t, u = thread_jumps f in
          acc :=
            { !acc with threaded = !acc.threaded + t;
              branches_unified = !acc.branches_unified + u };
          if t + u > 0 then loop (n - 1)
        end
      in
      loop 8;
      let b, i = prune_unreachable f in
      acc :=
        { !acc with pruned_blocks = !acc.pruned_blocks + b;
          pruned_instructions = !acc.pruned_instructions + i })
    p.Prog.funcs;
  !acc
