exception Error of string

let wrap_pos what msg (pos : Ast.pos) =
  raise (Error (Printf.sprintf "%s at %d:%d: %s" what pos.line pos.col msg))

let parse src =
  try
    let ast = Parser.parse src in
    ignore (Typecheck.check ast);
    ast
  with
  | Lexer.Error (msg, pos) -> wrap_pos "lexical error" msg pos
  | Parser.Error (msg, pos) -> wrap_pos "syntax error" msg pos
  | Typecheck.Error (msg, pos) -> wrap_pos "semantic error" msg pos

let compile src =
  let ast = parse src in
  try
    let prog = Codegen.gen_program ast in
    Ogc_ir.Validate.program prog;
    prog
  with
  | Codegen.Codegen_bug msg -> raise (Error ("code generator bug: " ^ msg))
  | Ogc_ir.Validate.Invalid msg ->
    raise (Error ("generated invalid code: " ^ msg))
