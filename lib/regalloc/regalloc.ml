open Ogc_isa
open Ogc_ir

exception Bound_exceeded of { fname : string; iterations : int }

type slot = { sreg : Reg.t; soffset : int; sbytes : int }

type func_alloc = {
  fa_name : string;
  fa_slots : slot list;
  fa_spill_area : int;
  fa_callee_saved : Reg.t list;
  fa_iterations : int;
}

type info = { fallocs : func_alloc list; spill_ops : (int, int) Hashtbl.t }

(* r27/r28 are reserved as guard scratch for the version-selection code
   VRS inserts after allocation; the code generator also borrows r28 to
   materialize stack adjustments too large for an immediate. *)
let reserved = [ 27; 28 ]

(* Caller-saved registers first, so temporaries not live across a call
   avoid the callee-saved file and its save/restore traffic. *)
let palette =
  List.filter
    (fun r -> not (List.mem (Reg.to_int r) reserved))
    Reg.caller_saved
  @ Reg.callee_saved

let num_colors = List.length palette
let palette_ints = Array.of_list (List.map Reg.to_int palette)

(* [sp] and [zero] never constrain a color choice and must never be
   coalesced into; together with the reserved scratch they stay outside
   the graph entirely. *)
let transparent r =
  Reg.equal r Reg.sp || Reg.equal r Reg.zero
  || List.mem (Reg.to_int r) reserved

(* The move idiom the code generator emits: [or src, #0, dst] at W64. *)
let move_of = function
  | Instr.Alu
      { op = Instr.Or; width = Width.W64; src1; src2 = Instr.Imm 0L; dst } ->
    Some (src1, dst)
  | _ -> None

(* --- one build/color round (iterated register coalescing) ---------------- *)

(* Node states.  Each non-precolored node is on exactly the worklist its
   state names, so the worklists themselves can be plain lists with
   stale entries filtered on pop. *)
let st_precolored = 0

let st_simp = 2
and st_freeze = 3
and st_spill = 4
and st_spilled = 5
and st_coalesced = 6
and st_stacked = 7
and st_colored = 8

type mv = { ms : int; md : int; mutable mstate : int }

let m_worklist = 0
and m_active = 1
and m_coalesced = 2
and m_constrained = 3
and m_frozen = 4

type round =
  | Colored of (int -> int)  (* virtual reg index -> architectural reg *)
  | Spilled of int list * (int, int) Hashtbl.t
      (* spilled representatives, and reg -> representative for every
         register that must go through a slot (coalesced members of a
         spilled node share its slot: they carry the same value across
         the move that related them) *)

let color_round (f : Prog.func) ~is_spill_temp =
  (* Compact node numbering: arch registers keep 0..31, the function's
     virtual registers follow in ascending order. *)
  let temp_seen = Hashtbl.create 64 in
  let temps = ref [] in
  let note r =
    let i = Reg.to_int r in
    if i >= Reg.num_arch && not (Hashtbl.mem temp_seen i) then begin
      Hashtbl.replace temp_seen i ();
      temps := i :: !temps
    end
  in
  Prog.iter_ins f (fun _ ins ->
      List.iter note (Instr.defs ins.op);
      List.iter note (Instr.uses ins.op));
  Prog.iter_blocks f (fun b ->
      match b.term with
      | Prog.Branch { src; _ } -> note src
      | Prog.Jump _ | Prog.Return -> ());
  let temps = List.sort Int.compare !temps in
  let nn = Reg.num_arch + List.length temps in
  let reg_of = Array.init nn Fun.id in
  let id_of = Hashtbl.create 64 in
  List.iteri
    (fun k r ->
      reg_of.(Reg.num_arch + k) <- r;
      Hashtbl.replace id_of r (Reg.num_arch + k))
    temps;
  let id r =
    let i = Reg.to_int r in
    if i < Reg.num_arch then i else Hashtbl.find id_of i
  in
  let precolored n = n < Reg.num_arch in
  let adjm = Bitset.create (nn * nn) in
  let adj u v = Bitset.mem adjm ((u * nn) + v) in
  let adj_list = Array.make nn [] in
  let degree = Array.make nn 0 in
  for i = 0 to Reg.num_arch - 1 do
    degree.(i) <- max_int / 2
  done;
  let nstate = Array.make nn st_precolored in
  let alias = Array.init nn Fun.id in
  let color = Array.make nn (-1) in
  Array.iter (fun c -> color.(c) <- c) palette_ints;
  let move_list = Array.make nn [] in
  let wl_moves = ref [] in
  let simp_wl = ref []
  and freeze_wl = ref []
  and spill_wl = ref []
  and select_stack = ref [] in
  let add_edge u v =
    if u <> v && not (adj u v) then begin
      Bitset.set adjm ((u * nn) + v);
      Bitset.set adjm ((v * nn) + u);
      if not (precolored u) then begin
        adj_list.(u) <- v :: adj_list.(u);
        degree.(u) <- degree.(u) + 1
      end;
      if not (precolored v) then begin
        adj_list.(v) <- u :: adj_list.(v);
        degree.(v) <- degree.(v) + 1
      end
    end
  in
  (* Build: walk each block backwards from its live-out set; a def
     interferes with everything live across it, and a move's source is
     exempted so the pair stays coalescible (Appel's Build). *)
  let cfg = Cfg.of_func f in
  let lv = Liveness.compute f cfg in
  let live = Bitset.create nn in
  Prog.iter_blocks f (fun b ->
      Bitset.reset live;
      let add_live r = if not (transparent r) then Bitset.set live (id r) in
      Reg.Set.iter add_live (Liveness.live_out lv b.label);
      Reg.Set.iter add_live (Liveness.term_uses b.term);
      for i = Array.length b.body - 1 downto 0 do
        let op = b.body.(i).op in
        let defs =
          List.filter (fun r -> not (transparent r)) (Instr.defs op)
        in
        let uses =
          List.filter (fun r -> not (transparent r)) (Instr.uses op)
        in
        (match move_of op with
        | Some (src, dst)
          when (not (transparent src)) && not (transparent dst) ->
          Bitset.clear live (id src);
          let m = { ms = id src; md = id dst; mstate = m_worklist } in
          move_list.(id src) <- m :: move_list.(id src);
          if id src <> id dst then move_list.(id dst) <- m :: move_list.(id dst);
          wl_moves := m :: !wl_moves
        | _ -> ());
        List.iter (fun d -> Bitset.set live (id d)) defs;
        List.iter
          (fun d ->
            let dn = id d in
            Bitset.iter live (fun l -> add_edge dn l))
          defs;
        List.iter (fun d -> Bitset.clear live (id d)) defs;
        List.iter (fun u -> Bitset.set live (id u)) uses
      done);
  let node_moves n =
    List.filter
      (fun m -> m.mstate = m_worklist || m.mstate = m_active)
      move_list.(n)
  in
  let move_related n = node_moves n <> [] in
  let adjacent n =
    List.filter
      (fun w -> nstate.(w) <> st_stacked && nstate.(w) <> st_coalesced)
      adj_list.(n)
  in
  let rec get_alias n =
    if nstate.(n) = st_coalesced then get_alias alias.(n) else n
  in
  let enable_moves ns =
    List.iter
      (fun n ->
        List.iter
          (fun m ->
            if m.mstate = m_active then begin
              m.mstate <- m_worklist;
              wl_moves := m :: !wl_moves
            end)
          move_list.(n))
      ns
  in
  let decrement_degree m =
    if not (precolored m) then begin
      let d = degree.(m) in
      degree.(m) <- d - 1;
      if d = num_colors then begin
        enable_moves (m :: adjacent m);
        if nstate.(m) = st_spill then
          if move_related m then begin
            nstate.(m) <- st_freeze;
            freeze_wl := m :: !freeze_wl
          end
          else begin
            nstate.(m) <- st_simp;
            simp_wl := m :: !simp_wl
          end
      end
    end
  in
  let simplify n =
    nstate.(n) <- st_stacked;
    select_stack := n :: !select_stack;
    List.iter decrement_degree (adjacent n)
  in
  let add_worklist u =
    if
      (not (precolored u))
      && nstate.(u) = st_freeze
      && (not (move_related u))
      && degree.(u) < num_colors
    then begin
      nstate.(u) <- st_simp;
      simp_wl := u :: !simp_wl
    end
  in
  let ok t u = degree.(t) < num_colors || precolored t || adj t u in
  let seen = Array.make nn false in
  let union_adjacent u v =
    let acc = ref [] in
    let take n =
      List.iter
        (fun w ->
          if not seen.(w) then begin
            seen.(w) <- true;
            acc := w :: !acc
          end)
        (adjacent n)
    in
    take u;
    take v;
    List.iter (fun w -> seen.(w) <- false) !acc;
    !acc
  in
  let conservative ns =
    let k = ref 0 in
    List.iter (fun n -> if degree.(n) >= num_colors then incr k) ns;
    !k < num_colors
  in
  let combine u v =
    nstate.(v) <- st_coalesced;
    alias.(v) <- u;
    move_list.(u) <- move_list.(u) @ move_list.(v);
    enable_moves [ v ];
    List.iter
      (fun t ->
        add_edge t u;
        decrement_degree t)
      (adjacent v);
    if degree.(u) >= num_colors && nstate.(u) = st_freeze then begin
      nstate.(u) <- st_spill;
      spill_wl := u :: !spill_wl
    end
  in
  let coalesce m =
    let x = get_alias m.ms and y = get_alias m.md in
    let u, v = if precolored y then (y, x) else (x, y) in
    if u = v then begin
      m.mstate <- m_coalesced;
      add_worklist u
    end
    else if precolored v || adj u v then begin
      m.mstate <- m_constrained;
      add_worklist u;
      add_worklist v
    end
    else if
      (precolored u && List.for_all (fun t -> ok t u) (adjacent v))
      || ((not (precolored u)) && conservative (union_adjacent u v))
    then begin
      m.mstate <- m_coalesced;
      combine u v;
      add_worklist u
    end
    else m.mstate <- m_active
  in
  let freeze_moves u =
    List.iter
      (fun m ->
        let x = get_alias m.ms and y = get_alias m.md in
        let v = if y = get_alias u then x else y in
        m.mstate <- m_frozen;
        if
          (not (precolored v))
          && nstate.(v) = st_freeze
          && node_moves v = []
          && degree.(v) < num_colors
        then begin
          nstate.(v) <- st_simp;
          simp_wl := v :: !simp_wl
        end)
      (node_moves u)
  in
  let freeze u =
    nstate.(u) <- st_simp;
    simp_wl := u :: !simp_wl;
    freeze_moves u
  in
  let select_spill () =
    (* Highest degree first, never a temp introduced by spill rewriting
       unless nothing else remains; ties break on the lower register so
       the choice is deterministic. *)
    let cands =
      List.sort_uniq Int.compare
        (List.filter (fun n -> nstate.(n) = st_spill) !spill_wl)
    in
    match cands with
    | [] -> false
    | first :: _ ->
      let better a b =
        let sa = is_spill_temp reg_of.(a) and sb = is_spill_temp reg_of.(b) in
        if sa <> sb then not sa
        else if degree.(a) <> degree.(b) then degree.(a) > degree.(b)
        else a < b
      in
      let n =
        List.fold_left (fun acc c -> if better c acc then c else acc)
          first cands
      in
      nstate.(n) <- st_simp;
      simp_wl := n :: !simp_wl;
      freeze_moves n;
      true
  in
  (* Seed the worklists. *)
  List.iter
    (fun r ->
      let n = Hashtbl.find id_of r in
      if degree.(n) >= num_colors then begin
        nstate.(n) <- st_spill;
        spill_wl := n :: !spill_wl
      end
      else if move_related n then begin
        nstate.(n) <- st_freeze;
        freeze_wl := n :: !freeze_wl
      end
      else begin
        nstate.(n) <- st_simp;
        simp_wl := n :: !simp_wl
      end)
    temps;
  let rec pop wl st =
    match !wl with
    | [] -> None
    | n :: rest ->
      wl := rest;
      if nstate.(n) = st then Some n else pop wl st
  in
  let rec pop_move () =
    match !wl_moves with
    | [] -> None
    | m :: rest ->
      wl_moves := rest;
      if m.mstate = m_worklist then Some m else pop_move ()
  in
  let running = ref true in
  while !running do
    match pop simp_wl st_simp with
    | Some n -> simplify n
    | None -> (
      match pop_move () with
      | Some m -> coalesce m
      | None -> (
        match pop freeze_wl st_freeze with
        | Some n -> freeze n
        | None -> if not (select_spill ()) then running := false))
  done;
  (* Optimistic coloring off the select stack. *)
  let spilled = ref [] in
  List.iter
    (fun n ->
      let forbidden = Array.make Reg.num_arch false in
      List.iter
        (fun w ->
          let w = get_alias w in
          if (precolored w || nstate.(w) = st_colored) && color.(w) >= 0 then
            forbidden.(color.(w)) <- true)
        adj_list.(n);
      let rec pick i =
        if i >= Array.length palette_ints then None
        else if forbidden.(palette_ints.(i)) then pick (i + 1)
        else Some palette_ints.(i)
      in
      match pick 0 with
      | Some c ->
        nstate.(n) <- st_colored;
        color.(n) <- c
      | None ->
        nstate.(n) <- st_spilled;
        spilled := n :: !spilled)
    !select_stack;
  if !spilled = [] then begin
    List.iter
      (fun r ->
        let n = Hashtbl.find id_of r in
        if nstate.(n) = st_coalesced then color.(n) <- color.(get_alias n))
      temps;
    Colored
      (fun r ->
        let c = color.(Hashtbl.find id_of r) in
        if c < 0 then
          Fmt.invalid_arg "Regalloc: %s left uncolored in %s"
            (Reg.to_string (Reg.vreg (r - Reg.num_arch)))
            f.fname;
        c)
  end
  else begin
    let reps =
      List.sort Int.compare (List.map (fun n -> reg_of.(n)) !spilled)
    in
    let spill_map = Hashtbl.create 16 in
    List.iter
      (fun r ->
        let n = Hashtbl.find id_of r in
        let a = get_alias n in
        if nstate.(a) = st_spilled then Hashtbl.replace spill_map r reg_of.(a))
      temps;
    Spilled (reps, spill_map)
  end

(* --- spill rewriting ------------------------------------------------------ *)

type ctx = {
  prog : Prog.t;
  width_of : int -> Width.t;
  mutable next_temp : int;
  spill_ops : (int, int) Hashtbl.t;
  max_iterations : int;
  check : bool;
}

let fresh_temp ctx =
  let r = Reg.vreg ctx.next_temp in
  ctx.next_temp <- ctx.next_temp + 1;
  r

(* Rewrite every occurrence of a spilled register through its slot: a
   reload before each use, a store after each def, one fresh temporary
   per instruction per spilled register (an instruction that both reads
   and writes the register works on the same temporary).  Instruction
   ids of rewritten instructions are preserved, so the width oracle
   keeps answering for their defs in later rounds. *)
let rewrite_spills ctx (f : Prog.func) ~array_area ~spill_temps ~slot_of
    ~slots_rev ~spill_off reps spill_map =
  (* Slot width: the widest proven width over every definition of every
     register sharing the slot; signed reloads of that many bytes
     reproduce the value exactly. *)
  let width_bytes = Hashtbl.create 16 in
  Prog.iter_ins f (fun _ ins ->
      List.iter
        (fun d ->
          match Hashtbl.find_opt spill_map (Reg.to_int d) with
          | Some rep ->
            let b = Width.bytes (ctx.width_of ins.iid) in
            let cur =
              Option.value ~default:0 (Hashtbl.find_opt width_bytes rep)
            in
            if b > cur then Hashtbl.replace width_bytes rep b
          | None -> ())
        (Instr.defs ins.op));
  List.iter
    (fun rep ->
      if not (Hashtbl.mem slot_of rep) then begin
        let bytes =
          match Hashtbl.find_opt width_bytes rep with
          | Some b -> b
          | None -> 8
        in
        let off = (!spill_off + bytes - 1) / bytes * bytes in
        let s =
          { sreg = Reg.vreg (rep - Reg.num_arch); soffset = off; sbytes = bytes }
        in
        Hashtbl.replace slot_of rep s;
        slots_rev := s :: !slots_rev;
        spill_off := off + bytes
      end)
    reps;
  let slot r = Hashtbl.find slot_of (Hashtbl.find spill_map (Reg.to_int r)) in
  let spilled r = Hashtbl.mem spill_map (Reg.to_int r) in
  let spill_ins op bytes =
    let iid = Prog.fresh_iid ctx.prog in
    Hashtbl.replace ctx.spill_ops iid bytes;
    { Prog.iid; op }
  in
  let reload r dst =
    let s = slot r in
    spill_ins
      (Instr.Load
         {
           width = Width.of_bytes s.sbytes;
           signed = true;
           base = Reg.sp;
           offset = Int64.of_int (array_area + s.soffset);
           dst;
         })
      s.sbytes
  in
  let save r src =
    let s = slot r in
    spill_ins
      (Instr.Store
         {
           width = Width.of_bytes s.sbytes;
           base = Reg.sp;
           offset = Int64.of_int (array_area + s.soffset);
           src;
         })
      s.sbytes
  in
  Prog.iter_blocks f (fun b ->
      let out = ref [] in
      Array.iter
        (fun (ins : Prog.ins) ->
          let uses =
            List.sort_uniq Reg.compare
              (List.filter spilled (Instr.uses ins.op))
          in
          let defs =
            List.sort_uniq Reg.compare
              (List.filter spilled (Instr.defs ins.op))
          in
          if uses = [] && defs = [] then out := ins :: !out
          else begin
            let temp_of = Hashtbl.create 4 in
            let temp_for r =
              match Hashtbl.find_opt temp_of (Reg.to_int r) with
              | Some t -> t
              | None ->
                let t = fresh_temp ctx in
                Hashtbl.replace spill_temps (Reg.to_int t) ();
                Hashtbl.replace temp_of (Reg.to_int r) t;
                t
            in
            List.iter (fun r -> out := reload r (temp_for r) :: !out) uses;
            let subst r = if spilled r then temp_for r else r in
            out := { ins with op = Instr.map_regs subst ins.op } :: !out;
            List.iter (fun r -> out := save r (temp_for r) :: !out) defs
          end)
        b.body;
      (match b.term with
      | Prog.Branch ({ src; _ } as br) when spilled src ->
        let t = fresh_temp ctx in
        Hashtbl.replace spill_temps (Reg.to_int t) ();
        out := reload src t :: !out;
        b.term <- Prog.Branch { br with src = t }
      | Prog.Branch _ | Prog.Jump _ | Prog.Return -> ());
      b.body <- Array.of_list (List.rev !out))

(* --- frame finalization --------------------------------------------------- *)

let imm_limit = 32767
let scratch = Reg.of_int 28

let is_sp_alu aop = function
  | Instr.Alu { op; src1; dst; _ } ->
    op = aop && Reg.equal src1 Reg.sp && Reg.equal dst Reg.sp
  | _ -> false

let sp_adjust ctx aop amount =
  let ins op = { Prog.iid = Prog.fresh_iid ctx.prog; op } in
  if amount = 0 then []
  else if amount <= imm_limit then
    [
      ins
        (Instr.Alu
           {
             op = aop;
             width = Width.W64;
             src1 = Reg.sp;
             src2 = Instr.Imm (Int64.of_int amount);
             dst = Reg.sp;
           });
    ]
  else
    [
      ins (Instr.Li { dst = scratch; imm = Int64.of_int amount });
      ins
        (Instr.Alu
           {
             op = aop;
             width = Width.W64;
             src1 = Reg.sp;
             src2 = Instr.Reg scratch;
             dst = Reg.sp;
           });
    ]

(* The code generator emits stack adjustment only when it laid out an
   array area; strip that form (either [sub sp, #n] or [li] + [sub])
   and re-emit it for the final frame, with callee-saved save/restore
   around the body.  Saves precede everything else so a parameter move
   colored into a callee-saved register cannot clobber the caller's
   value first. *)
let finalize ctx (f : Prog.func) ~array_area ~spill_area ~callee =
  let callee_area = 8 * List.length callee in
  let frame = (array_area + spill_area + callee_area + 15) / 16 * 16 in
  let save_base = array_area + spill_area in
  let ins op = { Prog.iid = Prog.fresh_iid ctx.prog; op } in
  let strip_prefix (body : Prog.ins array) =
    if array_area = 0 || Array.length body = 0 then 0
    else if is_sp_alu Instr.Sub body.(0).op then 1
    else
      match body.(0).op with
      | Instr.Li _
        when Array.length body > 1 && is_sp_alu Instr.Sub body.(1).op ->
        2
      | _ -> 0
  in
  let strip_suffix (body : Prog.ins array) =
    let n = Array.length body in
    if array_area = 0 || n = 0 then 0
    else if is_sp_alu Instr.Add body.(n - 1).op then
      if n > 1 && (match body.(n - 2).op with Instr.Li _ -> true | _ -> false)
      then 2
      else 1
    else 0
  in
  let entry = f.blocks.(0) in
  let kept =
    Array.to_list
      (Array.sub entry.body (strip_prefix entry.body)
         (Array.length entry.body - strip_prefix entry.body))
  in
  let saves =
    List.mapi
      (fun k r ->
        ins
          (Instr.Store
             {
               width = Width.W64;
               base = Reg.sp;
               offset = Int64.of_int (save_base + (8 * k));
               src = r;
             }))
      callee
  in
  entry.body <- Array.of_list (sp_adjust ctx Instr.Sub frame @ saves @ kept);
  Prog.iter_blocks f (fun b ->
      match b.term with
      | Prog.Return ->
        let cut = strip_suffix b.body in
        let kept = Array.to_list (Array.sub b.body 0 (Array.length b.body - cut)) in
        let reloads =
          List.mapi
            (fun k r ->
              ins
                (Instr.Load
                   {
                     width = Width.W64;
                     signed = true;
                     base = Reg.sp;
                     offset = Int64.of_int (save_base + (8 * k));
                     dst = r;
                   }))
            callee
        in
        b.body <- Array.of_list (kept @ reloads @ sp_adjust ctx Instr.Add frame)
      | Prog.Jump _ | Prog.Branch _ -> ());
  frame

(* --- driver ---------------------------------------------------------------- *)

(* Post-coloring verification (the [check] option): replay Build's
   backward liveness walk over the final-round function and assert that
   the assignment maps no two interfering registers to the same
   architectural register (with Build's move-source exemption — a
   coalesced move pair carries one value, so sharing is the point).
   A violation is an allocator bug. *)
let verify_coloring (f : Prog.func) subst =
  let cfg = Cfg.of_func f in
  let lv = Liveness.compute f cfg in
  let phys r = Reg.to_int (subst r) in
  let fail (d : Reg.t) (l : Reg.t) =
    invalid_arg
      (Format.asprintf
         "Regalloc: in %s, interfering %a and %a share register %a" f.fname
         Reg.pp d Reg.pp l Reg.pp (subst d))
  in
  Prog.iter_blocks f (fun b ->
      let live = Hashtbl.create 32 in
      let add_live r =
        if not (transparent r) then Hashtbl.replace live (Reg.to_int r) r
      in
      let del_live r = Hashtbl.remove live (Reg.to_int r) in
      Reg.Set.iter add_live (Liveness.live_out lv b.label);
      Reg.Set.iter add_live (Liveness.term_uses b.term);
      for i = Array.length b.body - 1 downto 0 do
        let op = b.body.(i).op in
        let defs =
          List.filter (fun r -> not (transparent r)) (Instr.defs op)
        in
        let uses =
          List.filter (fun r -> not (transparent r)) (Instr.uses op)
        in
        (match move_of op with
        | Some (src, dst)
          when (not (transparent src)) && not (transparent dst) ->
          del_live src
        | _ -> ());
        List.iter
          (fun d ->
            Hashtbl.iter
              (fun _ l -> if not (Reg.equal l d) && phys d = phys l then fail d l)
              live)
          defs;
        List.iter del_live defs;
        List.iter add_live uses
      done)

let allocate_func ctx (f : Prog.func) =
  let array_area = f.frame_size in
  let spill_temps = Hashtbl.create 16 in
  let slot_of = Hashtbl.create 16 in
  let slots_rev = ref [] in
  let spill_off = ref 0 in
  let iterations = ref 0 in
  let rec loop () =
    incr iterations;
    if !iterations > ctx.max_iterations then
      raise (Bound_exceeded { fname = f.fname; iterations = !iterations - 1 });
    match
      color_round f ~is_spill_temp:(fun r -> Hashtbl.mem spill_temps r)
    with
    | Colored color_of -> color_of
    | Spilled (reps, spill_map) ->
      rewrite_spills ctx f ~array_area ~spill_temps ~slot_of ~slots_rev
        ~spill_off reps spill_map;
      loop ()
  in
  let color_of = loop () in
  let subst r =
    if Reg.is_virtual r then Reg.of_int (color_of (Reg.to_int r)) else r
  in
  if ctx.check then verify_coloring f subst;
  Prog.iter_blocks f (fun b ->
      Array.iter
        (fun (ins : Prog.ins) -> ins.op <- Instr.map_regs subst ins.op)
        b.body;
      (match b.term with
      | Prog.Branch ({ src; _ } as br) when Reg.is_virtual src ->
        b.term <- Prog.Branch { br with src = subst src }
      | Prog.Branch _ | Prog.Jump _ | Prog.Return -> ());
      (* Coalesced and same-colored moves are now identities: drop them. *)
      b.body <-
        Array.of_list
          (List.filter
             (fun (ins : Prog.ins) ->
               match move_of ins.op with
               | Some (s, d) -> not (Reg.equal s d)
               | None -> true)
             (Array.to_list b.body)));
  let used = Hashtbl.create 8 in
  Prog.iter_ins f (fun _ ins ->
      List.iter
        (fun r ->
          if List.exists (Reg.equal r) Reg.callee_saved then
            Hashtbl.replace used (Reg.to_int r) ())
        (Instr.defs ins.op));
  let callee =
    List.filter (fun r -> Hashtbl.mem used (Reg.to_int r)) Reg.callee_saved
  in
  let spill_area = (!spill_off + 7) / 8 * 8 in
  let frame = finalize ctx f ~array_area ~spill_area ~callee in
  ( { f with frame_size = frame },
    {
      fa_name = f.fname;
      fa_slots = List.rev !slots_rev;
      fa_spill_area = spill_area;
      fa_callee_saved = callee;
      fa_iterations = !iterations;
    } )

let program ?(max_iterations = 12) ?(check = false) ~width_of (p : Prog.t) =
  let ctx =
    {
      prog = p;
      width_of;
      next_temp = max 0 (Prog.max_reg p + 1 - Reg.num_arch);
      spill_ops = Hashtbl.create 64;
      max_iterations;
      check;
    }
  in
  let pairs = List.map (allocate_func ctx) p.funcs in
  p.funcs <- List.map fst pairs;
  { fallocs = List.map snd pairs; spill_ops = ctx.spill_ops }

let spill_slots_bytes info =
  List.fold_left
    (fun acc fa ->
      List.fold_left (fun acc s -> acc + s.sbytes) acc fa.fa_slots)
    0 info.fallocs

let spill_slots_naive_bytes info =
  8 * List.fold_left (fun acc fa -> acc + List.length fa.fa_slots) 0 info.fallocs

let pp_info ppf info =
  List.iter
    (fun fa ->
      Format.fprintf ppf "%s: %d round%s, %d spill slot%s (%d bytes" fa.fa_name
        fa.fa_iterations
        (if fa.fa_iterations = 1 then "" else "s")
        (List.length fa.fa_slots)
        (if List.length fa.fa_slots = 1 then "" else "s")
        (List.fold_left (fun a s -> a + s.sbytes) 0 fa.fa_slots);
      Format.fprintf ppf ", naive %d)" (8 * List.length fa.fa_slots);
      (match fa.fa_callee_saved with
      | [] -> ()
      | cs ->
        Format.fprintf ppf ", callee-saved:";
        List.iter (fun r -> Format.fprintf ppf " %a" Reg.pp r) cs);
      Format.fprintf ppf "@\n";
      List.iter
        (fun s ->
          Format.fprintf ppf "  %a -> sp+%d (%d byte%s)@\n" Reg.pp s.sreg
            s.soffset s.sbytes
            (if s.sbytes = 1 then "" else "s"))
        fa.fa_slots)
    info.fallocs
