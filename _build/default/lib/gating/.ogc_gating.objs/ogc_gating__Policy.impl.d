lib/gating/policy.ml: Ogc_isa Sigbytes Width
