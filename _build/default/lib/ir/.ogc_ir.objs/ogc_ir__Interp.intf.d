lib/ir/interp.mli: Hashtbl Instr Label Ogc_isa Prog Reg
