(* Optimization-service tests: cache determinism, deadline expiry,
   bounded-queue rejection and the graceful SIGINT drain — all over a
   real Unix-domain socket — plus Prog_json round-trip properties (the
   wire form of programs the service ships). *)

module J = Ogc_json.Json
module Server = Ogc_server.Server
module Cache = Ogc_server.Cache
module Prog_json = Ogc_ir.Prog_json
module Workload = Ogc_workloads.Workload
module Gen_minic = Ogc_fuzz.Gen_minic

(* Server lifecycle events are structured logs now; keep test output
   clean. *)
let () = Ogc_obs.Log.set_level Ogc_obs.Log.Error

let src =
  "long input_scale = 3;\n\
   int main() {\n\
  \  int n = 40 * (int)input_scale;\n\
  \  long s = 0;\n\
  \  for (int i = 0; i < n; i++) s += (i & 255) * 3;\n\
  \  emit(s);\n\
  \  return 0;\n\
   }\n"

let analyze_req ?(pass = "vrp") ?cost ?deadline_ms () =
  J.to_string ~indent:false
    (J.Obj
       ([ ("source", J.Str src); ("pass", J.Str pass) ]
        @ (match cost with None -> [] | Some c -> [ ("cost", J.Int c) ])
        @ match deadline_ms with
          | None -> []
          | Some ms -> [ ("deadline_ms", J.Int ms) ]))

(* Socket paths must stay short (sun_path is ~100 bytes). *)
let sock_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "/tmp/ogc-test-%d-%d.sock" (Unix.getpid ()) !n

let with_server ?(queue_limit = 64) ?cache_dir f =
  let path = sock_path () in
  let cfg =
    { (Server.default_config (Server.Unix_sock path)) with
      jobs = Some 1;
      queue_limit;
      cache_dir }
  in
  let t = Server.create cfg in
  let th = Thread.create Server.run t in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Thread.join th;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path t)

(* One connection, one request line, one response line. *)
let request path line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  output_string oc line;
  output_char oc '\n';
  flush oc;
  let resp = input_line ic in
  Unix.close fd;
  resp

let field resp k =
  match J.member k (J.of_string resp) with
  | J.Str s -> s
  | J.Null -> Alcotest.failf "response lacks %S: %s" k resp
  | v -> J.to_string ~indent:false v

let result_bytes resp =
  J.to_string ~indent:false (J.member "result" (J.of_string resp))

(* --- cache ----------------------------------------------------------------- *)

let test_cache_hit_determinism () =
  with_server (fun path t ->
      let r1 = request path (analyze_req ()) in
      Alcotest.(check string) "first is ok" "ok" (field r1 "status");
      Alcotest.(check string) "first misses" "miss" (field r1 "cache");
      let r2 = request path (analyze_req ()) in
      Alcotest.(check string) "second is ok" "ok" (field r2 "status");
      Alcotest.(check string) "second hits" "hit" (field r2 "cache");
      Alcotest.(check string) "hit payload is byte-identical"
        (result_bytes r1) (result_bytes r2);
      (* A different option is a different content address. *)
      let r3 = request path (analyze_req ~pass:"none" ()) in
      Alcotest.(check string) "changed options miss" "miss" (field r3 "cache");
      let stats = Server.stats_json t in
      let cache = J.member "cache" stats in
      Alcotest.(check int) "hits" 1 (J.get_int "hits" cache);
      Alcotest.(check int) "misses" 2 (J.get_int "misses" cache))

let test_cache_version_in_envelope () =
  with_server (fun path _ ->
      let r = request path {|{"op":"ping"}|} in
      Alcotest.(check string) "status" "ok" (field r "status");
      Alcotest.(check string) "version" Ogc_server.Version.version
        (field r "version"))

let test_cache_disk_persistence () =
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ogc-cache-%d" (Unix.getpid ())) in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () ->
      let first =
        with_server ~cache_dir:dir (fun path _ ->
            let r = request path (analyze_req ()) in
            Alcotest.(check string) "fresh server misses" "miss"
              (field r "cache");
            result_bytes r)
      in
      (* A second server sharing the directory rehydrates the entry it
         never computed. *)
      with_server ~cache_dir:dir (fun path t ->
          let r = request path (analyze_req ()) in
          Alcotest.(check string) "restarted server hits" "hit"
            (field r "cache");
          Alcotest.(check string) "disk payload is byte-identical" first
            (result_bytes r);
          let cache = J.member "cache" (Server.stats_json t) in
          Alcotest.(check int) "disk_hits" 1
            (J.get_int "disk_hits" cache)))

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 () in
  Cache.store c "a" "1";
  Cache.store c "b" "2";
  ignore (Cache.find c "a");  (* refresh a; b is now LRU *)
  Cache.store c "c" "3";
  Alcotest.(check (option string)) "a survives" (Some "1") (Cache.find c "a");
  Alcotest.(check (option string)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option string)) "c present" (Some "3") (Cache.find c "c");
  Alcotest.(check int) "one eviction" 1 (Cache.stats c).Cache.evictions

let test_per_pass_artifact_reuse () =
  with_server (fun path t ->
      let r1 = request path (analyze_req ~pass:"vrs" ~cost:50 ()) in
      Alcotest.(check string) "first ok" "ok" (field r1 "status");
      Alcotest.(check string) "first misses result cache" "miss"
        (field r1 "cache");
      (* Changing only the VRS cost is a different result address, but
         the guard-cost-independent chain prefix — VRP fixpoint, bb
         profile, value profiles — is served from the pass store. *)
      let r2 = request path (analyze_req ~pass:"vrs" ~cost:70 ()) in
      Alcotest.(check string) "second ok" "ok" (field r2 "status");
      Alcotest.(check string) "cost change misses result cache" "miss"
        (field r2 "cache");
      let by_pass =
        J.member "by_pass" (J.member "passes" (Server.stats_json t))
      in
      let hits p = J.get_int "hits" (J.member p by_pass) in
      List.iter
        (fun p -> Alcotest.(check int) (p ^ " artifact reused") 1 (hits p))
        [ "vrp"; "encode-widths"; "bb-profile"; "value-profile" ];
      Alcotest.(check int) "vrs artifact is cost-specific" 0 (hits "vrs");
      (* A warm store must not change a single byte of the payload:
         recompute the same request cold, with no store at all. *)
      let req =
        match
          Ogc_server.Protocol.op_of_json
            (J.of_string (analyze_req ~pass:"vrs" ~cost:70 ()))
        with
        | Ogc_server.Protocol.Analyze r -> r
        | _ -> Alcotest.fail "not an analyze op"
      in
      let cold =
        J.to_string ~indent:false (Ogc_server.Protocol.analyze req)
      in
      Alcotest.(check string) "warm store = cold run" cold (result_bytes r2))

(* --- scheduler ------------------------------------------------------------- *)

let test_deadline_expiry () =
  with_server (fun path t ->
      (* An already-expired deadline must not run the analysis at all. *)
      let r = request path (analyze_req ~deadline_ms:0 ()) in
      Alcotest.(check string) "status" "deadline_exceeded" (field r "status");
      let stats = Server.stats_json t in
      Alcotest.(check int) "expired counted" 1
        (J.get_int "expired" stats);
      Alcotest.(check int) "nothing analyzed" 0
        (J.get_int "analyses" stats);
      (* A generous deadline runs normally. *)
      let r = request path (analyze_req ~deadline_ms:60_000 ()) in
      Alcotest.(check string) "status" "ok" (field r "status"))

let test_bounded_queue_rejection () =
  with_server ~queue_limit:0 (fun path t ->
      (* ping and stats are not admission-gated... *)
      Alcotest.(check string) "ping ok" "ok"
        (field (request path {|{"op":"ping"}|}) "status");
      (* ...but with a zero-length queue every analysis is shed. *)
      let r = request path (analyze_req ()) in
      Alcotest.(check string) "overloaded" "overloaded" (field r "status");
      Alcotest.(check int) "rejected counted" 1
        (J.get_int "rejected" (Server.stats_json t)))

let test_malformed_requests () =
  with_server (fun path _ ->
      Alcotest.(check string) "bad json" "error"
        (field (request path "{nope") "status");
      Alcotest.(check string) "no payload" "error"
        (field (request path "{}") "status");
      Alcotest.(check string) "two payloads" "error"
        (field
           (request path {|{"source":"int main(){return 0;}","workload":"compress"}|})
           "status");
      Alcotest.(check string) "bad minic" "error"
        (field (request path {|{"source":"int main( {"}|}) "status");
      (* id is echoed even on errors *)
      let r = request path {|{"id":"req-7","pass":"bogus","source":"x"}|} in
      Alcotest.(check string) "id echoed" "req-7" (field r "id"))

(* --- protocol handshake ----------------------------------------------------- *)

let test_protocol_version () =
  with_server (fun path _ ->
      (* The current version and the legacy no-handshake form both pass. *)
      let ok =
        Printf.sprintf {|{"proto":%d,"op":"ping"}|}
          Ogc_server.Protocol.proto_version
      in
      Alcotest.(check string) "current proto ok" "ok"
        (field (request path ok) "status");
      Alcotest.(check string) "absent proto ok (legacy client)" "ok"
        (field (request path {|{"op":"ping"}|}) "status");
      (* A mismatch is a structured rejection, not undefined behavior —
         and the id still echoes so the client can match it up. *)
      let r = request path {|{"proto":999,"id":"v9","op":"ping"}|} in
      Alcotest.(check string) "mismatch rejected" "unsupported_protocol"
        (field r "status");
      Alcotest.(check string) "expected version reported"
        (string_of_int Ogc_server.Protocol.proto_version)
        (field r "expected");
      Alcotest.(check string) "client version echoed" "999" (field r "got");
      Alcotest.(check string) "id echoed" "v9" (field r "id");
      (* A non-integer proto is a plain parse error. *)
      Alcotest.(check string) "garbage proto" "error"
        (field (request path {|{"proto":"x","op":"ping"}|}) "status"))

(* --- shard namespacing ------------------------------------------------------ *)

let test_shard_cache_namespacing () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ogc-shardns-%d" (Unix.getpid ()))
  in
  let rm_rf d =
    if Sys.file_exists d then begin
      Array.iter
        (fun f ->
          let p = Filename.concat d f in
          if Sys.is_directory p then begin
            Array.iter (fun g -> Sys.remove (Filename.concat p g))
              (Sys.readdir p);
            Unix.rmdir p
          end
          else Sys.remove p)
        (Sys.readdir d);
      Unix.rmdir d
    end
  in
  Fun.protect ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let with_shard id f =
        let path = sock_path () in
        let cfg =
          { (Server.default_config (Server.Unix_sock path)) with
            jobs = Some 1;
            cache_dir = Some dir;
            shard_id = Some id }
        in
        let t = Server.create cfg in
        let th = Thread.create Server.run t in
        Fun.protect
          ~finally:(fun () ->
            Server.stop t;
            Thread.join th;
            if Sys.file_exists path then Sys.remove path)
          (fun () -> f path t)
      in
      (* Two co-located shards share [dir] but write disjoint subtrees,
         so one shard's entries are invisible to the other. *)
      with_shard "a" (fun path t ->
          Alcotest.(check string) "shard a computes" "miss"
            (field (request path (analyze_req ())) "cache");
          Alcotest.(check string) "shard id in stats" "a"
            (field
               (J.to_string ~indent:false (Server.stats_json t))
               "shard_id"));
      Alcotest.(check bool) "shard-a subdir exists" true
        (Sys.file_exists (Filename.concat dir "shard-a"));
      with_shard "b" (fun path _ ->
          Alcotest.(check string) "shard b does not see a's entry" "miss"
            (field (request path (analyze_req ())) "cache"));
      with_shard "a" (fun path _ ->
          Alcotest.(check string) "restarted shard a rehydrates" "hit"
            (field (request path (analyze_req ())) "cache")))

(* --- profile op / online specialization ------------------------------------ *)

module Profile = Ogc_pass.Profile
module Vrs = Ogc_core.Vrs
module Prog = Ogc_ir.Prog
module Interp = Ogc_ir.Interp

(* A genuine training-run wire profile for [s]: the same deterministic
   candidate analysis the server runs picks the profiling points; one
   interpreter run at train scale supplies block counts and values. *)
let wire_profile_json s =
  let p = Ogc_minic.Minic.compile s in
  if Prog.find_global p "input_scale" <> None then
    Workload.set_scale p Workload.Train;
  let a = Vrs.analyze (Prog.copy p) in
  let hooks : (int, int64 -> unit) Hashtbl.t = Hashtbl.create 16 in
  let obs = Hashtbl.create 16 in
  List.iter
    (fun iid ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace obs iid tbl;
      Hashtbl.replace hooks iid (fun v ->
          match Hashtbl.find_opt tbl v with
          | Some r -> incr r
          | None -> Hashtbl.replace tbl v (ref 1)))
    (Vrs.candidate_iids a);
  let counts : Interp.bb_counts = Hashtbl.create 64 in
  let out = Interp.run ~bb_counts:counts ~profile:hooks (Prog.copy p) in
  let prof = Profile.create () in
  Hashtbl.iter (fun fn arr -> Hashtbl.replace prof.Profile.p_bb fn arr) counts;
  prof.Profile.p_total <- out.Interp.steps;
  Hashtbl.iter
    (fun iid tbl ->
      match Hashtbl.fold (fun v r acc -> (v, !r) :: acc) tbl [] with
      | [] -> ()
      | entries -> Hashtbl.replace prof.Profile.p_values iid entries)
    obs;
  Profile.to_json prof

let profile_req ?(source = src) () =
  J.to_string ~indent:false
    (J.Obj
       [ ("op", J.Str "profile"); ("source", J.Str source);
         ("profile", wire_profile_json source) ])

let test_profile_roundtrip () =
  with_server (fun path t ->
      let r1 = request path (profile_req ()) in
      Alcotest.(check string) "push ok" "ok" (field r1 "status");
      Alcotest.(check string) "op echoed" "profile" (field r1 "op");
      Alcotest.(check string) "first push is epoch 1" "1" (field r1 "epoch");
      let r2 = request path (profile_req ()) in
      Alcotest.(check string) "second push bumps" "2" (field r2 "epoch");
      let prof = J.member "profile" (Server.stats_json t) in
      Alcotest.(check int) "one program profiled" 1
        (J.get_int "programs" prof);
      Alcotest.(check int) "two pushes" 2 (J.get_int "pushes" prof))

let test_profile_epoch_concurrent () =
  with_server (fun path _ ->
      let n = 8 in
      let line = profile_req () in
      let results = Array.make n "" in
      let ths =
        List.init n
          (Thread.create (fun i -> results.(i) <- request path line))
      in
      List.iter Thread.join ths;
      let epochs =
        Array.to_list results
        |> List.map (fun r -> int_of_string (field r "epoch"))
        |> List.sort compare
      in
      (* Every concurrent push observes a distinct, gapless epoch. *)
      Alcotest.(check (list int)) "epochs are a permutation of 1..n"
        (List.init n (fun i -> i + 1))
        epochs)

let test_stale_while_revalidate () =
  with_server (fun path t ->
      let vrs_req () = analyze_req ~pass:"vrs" ~cost:50 () in
      let r1 = request path (vrs_req ()) in
      Alcotest.(check string) "epoch-0 artifact computed" "miss"
        (field r1 "cache");
      Alcotest.(check string) "push ok" "1"
        (field (request path (profile_req ())) "epoch");
      (* The next request is answered immediately from the epoch-0
         artifact while re-specialization runs in the background. *)
      let r2 = request path (vrs_req ()) in
      Alcotest.(check string) "stale served" "stale" (field r2 "cache");
      Alcotest.(check string) "served epoch reported" "0"
        (field r2 "served_epoch");
      Alcotest.(check string) "current epoch reported" "1"
        (field r2 "profile_epoch");
      Alcotest.(check string) "stale payload is the epoch-0 artifact"
        (result_bytes r1) (result_bytes r2);
      (* The background re-specialization lands: polling converges to a
         fresh-epoch cache hit. *)
      let deadline = Unix.gettimeofday () +. 30.0 in
      let rec converge () =
        let r = request path (vrs_req ()) in
        match field r "cache" with
        | "hit" -> ()
        | _ when Unix.gettimeofday () > deadline ->
          Alcotest.fail "respecialization never landed"
        | _ ->
          Thread.delay 0.05;
          converge ()
      in
      converge ();
      let prof = J.member "profile" (Server.stats_json t) in
      Alcotest.(check bool) "stale answers counted" true
        (J.get_int "stale_served" prof >= 1);
      Alcotest.(check int) "exactly one respecialization" 1
        (J.get_int "respecializations" prof))

let test_legacy_unaffected_by_profiles () =
  with_server (fun path _ ->
      (* A profile accumulated for some other program must not perturb a
         legacy (never-pushing) client by a single byte. *)
      let other = "int main() { emit(7); return 0; }" in
      Alcotest.(check string) "other program's push ok" "1"
        (field (request path (profile_req ~source:other ())) "epoch");
      let r1 = request path (analyze_req ~pass:"vrs" ~cost:50 ()) in
      Alcotest.(check string) "legacy first misses" "miss" (field r1 "cache");
      Alcotest.(check bool) "no epoch fields on legacy responses" true
        (J.member "profile_epoch" (J.of_string r1) = J.Null);
      let r2 = request path (analyze_req ~pass:"vrs" ~cost:50 ()) in
      Alcotest.(check string) "legacy rerun hits, never stale" "hit"
        (field r2 "cache");
      let req =
        match
          Ogc_server.Protocol.op_of_json
            (J.of_string (analyze_req ~pass:"vrs" ~cost:50 ()))
        with
        | Ogc_server.Protocol.Analyze r -> r
        | _ -> Alcotest.fail "not an analyze op"
      in
      let cold =
        J.to_string ~indent:false (Ogc_server.Protocol.analyze req)
      in
      Alcotest.(check string) "profile-less path = storeless cold run" cold
        (result_bytes r2))

(* --- drain ----------------------------------------------------------------- *)

let test_stop_drains () =
  let path = sock_path () in
  let t =
    Server.create
      { (Server.default_config (Server.Unix_sock path)) with jobs = Some 1 }
  in
  let th = Thread.create Server.run t in
  Alcotest.(check string) "server answers" "ok"
    (field (request path (analyze_req ())) "status");
  Server.stop t;
  Thread.join th;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path);
  (* a second stop is a harmless no-op *)
  Server.stop t

let test_sigint_drains () =
  let path = sock_path () in
  let t =
    Server.create
      { (Server.default_config (Server.Unix_sock path)) with jobs = Some 1 }
  in
  let th = Thread.create Server.run t in
  let prev = Sys.signal Sys.sigint Sys.Signal_ignore in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigint prev)
    (fun () ->
      Server.install_sigint t;
      Alcotest.(check string) "server answers" "ok"
        (field (request path {|{"op":"ping"}|}) "status");
      Unix.kill (Unix.getpid ()) Sys.sigint;
      (* Keep the main thread executing OCaml so the pending signal
         action (which calls stop) runs promptly. *)
      let deadline = Unix.gettimeofday () +. 10.0 in
      while Sys.file_exists path && Unix.gettimeofday () < deadline do
        Thread.yield ()
      done;
      Thread.join th;
      Alcotest.(check bool) "socket unlinked after SIGINT" false
        (Sys.file_exists path))

(* --- Prog_json round-trip --------------------------------------------------- *)

let roundtrip_ok src =
  match Ogc_minic.Minic.compile src with
  | exception Ogc_minic.Minic.Error _ -> true  (* generator can overshoot *)
  | p ->
    let p' = Prog_json.of_json (Prog_json.to_json p) in
    Ogc_ir.Validate.program p';
    String.equal (Ogc_ir.Asm.to_string p) (Ogc_ir.Asm.to_string p')

let prop_prog_json_roundtrip =
  QCheck.Test.make ~name:"random MiniC programs round-trip through Prog_json"
    ~count:150 Gen_minic.arbitrary_program roundtrip_ok

let test_workloads_roundtrip () =
  List.iter
    (fun (w : Workload.t) ->
      let p = Workload.compile w Workload.Train in
      let p' = Prog_json.of_json (Prog_json.to_json p) in
      Ogc_ir.Validate.program p';
      Alcotest.(check string) w.Workload.name
        (Ogc_ir.Asm.to_string p) (Ogc_ir.Asm.to_string p'))
    Workload.all

let test_prog_json_rejects_garbage () =
  List.iter
    (fun j ->
      match Prog_json.of_json (J.of_string j) with
      | exception J.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted %s" j)
    [ {|{}|};
      {|{"format":"ogc.prog","version":999,"globals":[],"funcs":[]}|};
      {|{"format":"not.prog","version":1,"globals":[],"funcs":[]}|};
      {|{"format":"ogc.prog","version":1,"globals":[],"funcs":"x"}|} ]

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "server"
    [ ("cache",
       [ Alcotest.test_case "hit/miss determinism" `Quick
           test_cache_hit_determinism;
         Alcotest.test_case "version in envelope" `Quick
           test_cache_version_in_envelope;
         Alcotest.test_case "disk persistence" `Quick
           test_cache_disk_persistence;
         Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
         Alcotest.test_case "per-pass artifact reuse" `Quick
           test_per_pass_artifact_reuse ]);
      ("scheduler",
       [ Alcotest.test_case "deadline expiry" `Quick test_deadline_expiry;
         Alcotest.test_case "bounded-queue rejection" `Quick
           test_bounded_queue_rejection;
         Alcotest.test_case "malformed requests" `Quick
           test_malformed_requests ]);
      ("protocol",
       [ Alcotest.test_case "version handshake" `Quick test_protocol_version;
         Alcotest.test_case "shard cache namespacing" `Quick
           test_shard_cache_namespacing ]);
      ("profile",
       [ Alcotest.test_case "push round-trip" `Quick test_profile_roundtrip;
         Alcotest.test_case "concurrent pushes keep epochs monotonic" `Quick
           test_profile_epoch_concurrent;
         Alcotest.test_case "stale-while-revalidate ordering" `Quick
           test_stale_while_revalidate;
         Alcotest.test_case "legacy clients are byte-unaffected" `Quick
           test_legacy_unaffected_by_profiles ]);
      ("drain",
       [ Alcotest.test_case "stop drains cleanly" `Quick test_stop_drains;
         Alcotest.test_case "SIGINT drains cleanly" `Quick
           test_sigint_drains ]);
      ("prog-json",
       [ qt prop_prog_json_roundtrip;
         Alcotest.test_case "workloads round-trip" `Quick
           test_workloads_roundtrip;
         Alcotest.test_case "garbage rejected" `Quick
           test_prog_json_rejects_garbage ]) ]
