(** Per-table / per-figure report generation.

    Every entry of the paper's evaluation section (Tables 1-3, Figures
    2-15) has a renderer that produces the same rows/series from a
    {!Results.t}.  See EXPERIMENTS.md for the paper-vs-measured record. *)

type experiment = {
  id : string;  (** "table1" .. "fig15" *)
  title : string;
  render : Results.t -> string;
}

val all : experiment list
(** In paper order: table1, table2, table3, fig2 .. fig15. *)

val find : string -> experiment
(** Raises [Not_found]. *)

val render_all : Results.t -> string

(** {1 Headline numbers}

    The summary comparisons quoted in the paper's abstract/conclusions. *)

type headline = {
  vrp_energy : float;  (** paper: ~6% *)
  vrp_ed2 : float;  (** paper: ~5% *)
  vrs_energy : float;  (** paper: ~9% *)
  vrs_ed2 : float;  (** paper: ~14-15% *)
  hw_significance_ed2 : float;  (** paper: ~15% *)
  combined_ed2 : float;  (** paper: ~28% *)
}

val headline : Results.t -> headline
val render_headline : headline -> string
