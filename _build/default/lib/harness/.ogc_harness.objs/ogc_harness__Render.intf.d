lib/harness/render.mli:
