(** The optimization service: a long-running daemon that accepts
    newline-delimited JSON analysis requests (see {!Protocol}) over a
    Unix-domain or TCP socket.

    Architecture: the calling thread runs the accept loop; every
    connection gets a systhread that parses request lines and writes one
    response line per request, in order.  CPU-bound analyses are
    submitted to a persistent {!Ogc_exec.Pool} of worker domains behind
    a bounded admission queue — when more than [queue_limit] analyses
    are in flight the server replies [{"status":"overloaded"}] instead
    of queueing unboundedly.  Results are memoized in a
    content-addressed {!Cache}, so a repeated request is answered from
    the cache ([{"cache":"hit"}]) with a byte-identical result payload.
    Under the whole-result cache sits a per-pass artifact tier (an
    {!Ogc_pass.Pass.Store} shared by the worker domains): a request
    that misses the result cache but shares a chain prefix with an
    earlier one — say the same program at a different VRS cost — reuses
    the stored VRP fixpoint and training/value profiles instead of
    recomputing them ([stats] reports per-pass hit/miss counts under
    ["passes"]).

    {b Online specialization.}  The [profile] op lets clients stream
    back what they observed running a program (block counts, TNV value
    observations, always-zero counts).  Pushes accumulate in a
    {!Profile_store} and bump the program's {e epoch}; VRS requests then
    consume the accumulated profile instead of the training interpreter
    and grow a [zspec] zero-specialization tail, with the epoch salting
    their cache keys.  When a push outdates a cached result the server
    answers stale-while-revalidate: the previous-epoch artifact is
    served immediately ([{"cache":"stale"}]) while a background
    re-specialization runs on the worker pool ([stats] reports all of
    this under ["profile"]).

    Shutdown is graceful: {!stop} (or SIGINT after {!install_sigint})
    makes {!run} stop accepting, lets every in-flight request finish and
    its response flush, then retires the connection threads and the
    worker domains. *)

type addr =
  | Unix_sock of string  (** path of a Unix-domain socket *)
  | Tcp of string * int  (** host, port *)

type config = {
  addr : addr;
  jobs : int option;  (** worker domains; [None] = [Pool.default_jobs] *)
  queue_limit : int;  (** in-flight analyses before shedding load *)
  cache_capacity : int;  (** in-memory cache entries *)
  cache_dir : string option;  (** persistent cache tier, if any *)
  shard_id : string option;
      (** fleet shard name; namespaces [cache_dir] as
          [cache_dir/shard-<id>] so co-located shards never race on one
          atomic-write path, and is echoed in [stats] *)
  slow_ms : float option;
      (** requests slower than this auto-capture their
          {!Ogc_obs.Flight} record (plus the local span slice of their
          trace) into the structured log; [None] disables *)
  inject_slow_ms : float option;
      (** fault injection: delay every analyze by this much, to make a
          deliberately slow shard for hedging/auto-capture smoke tests *)
  respecialize : bool;
      (** stale-while-revalidate (default [true]): when a [profile] push
          has outdated a cached VRS result, answer from the
          previous-epoch artifact ([{"cache":"stale"}]) and re-specialize
          in the background; [false] recomputes synchronously instead *)
}

val addr_string : addr -> string
(** Human-readable form: the socket path, or [host:port]. *)

val default_config : addr -> config
(** [jobs = None], [queue_limit = 64], [cache_capacity = 256],
    [respecialize = true], no persistent cache.  Lifecycle events go
    through {!Ogc_obs.Log} (structured NDJSON on stderr by default;
    raise the level to [Error] to silence them). *)

type t

val create : config -> t
(** Bind and listen (unlinking a stale Unix socket file first), start
    the worker pool.  Raises [Unix.Unix_error] when the address is
    unavailable. *)

val link_stores : t list -> unit
(** Wire the pass stores of co-located in-process shards together: on a
    local artifact miss each shard peeks at its siblings (read-only, no
    recursion) and installs what it finds, counted as a replica hit in
    [stats].  Used by in-process fleets (tests, bench); separate shard
    processes share artifacts through result replication instead. *)

val ignore_sigpipe : unit -> unit
(** Ignore SIGPIPE process-wide (no-op where the signal does not exist)
    so a peer disconnecting mid-write surfaces as [EPIPE] on the
    offending call instead of killing the process.  [run] calls this;
    exposed for other long-lived socket loops (the fleet router). *)

val run : t -> unit
(** Serve until {!stop}; returns after the graceful drain completes.
    Call at most once. *)

val stop : t -> unit
(** Request shutdown; safe from a signal handler or another thread.
    Idempotent.  [run] performs the drain and returns. *)

val install_sigint : t -> unit
(** Route SIGINT to {!stop} for a clean drain on Ctrl-C. *)

val install_sigusr1 : unit -> unit
(** Route SIGUSR1 to an {!Ogc_obs.Flight} NDJSON dump on stderr (no-op
    where the signal does not exist).  [run] calls this; exposed for the
    fleet router. *)

val stats_json : t -> Ogc_json.Json.t
(** The same counters the ["stats"] op reports: requests, cache
    hit/miss/eviction counts and byte footprint (both tiers), per-pass
    artifact-store hit/miss counts (["passes"]), latency percentiles
    plus per-op latency histograms (from {!Ogc_obs.Metrics}; all-zero
    unless metrics are enabled), pool utilization. *)

val handle_line : t -> string -> string
(** Process one request line and return the response line (without the
    trailing newline).  Exposed for tests; [run] uses it for every
    connection. *)
