(** Process-wide metrics registry: counters, gauges and fixed-bucket
    histograms, safe to update from any domain or thread.

    Counters and histograms write into per-domain {e shards} — one flat
    [float array] per domain, reached through [Domain.DLS] — so the hot
    path takes no lock and never contends with other domains; shards are
    merged only at scrape time ({!snapshot}, {!to_prometheus},
    {!to_json}).  Shards outlive their domain, so work recorded inside a
    short-lived {!Ogc_exec.Pool} worker still appears in a later scrape.
    Gauges are single process-wide atomics (set/add semantics do not
    shard meaningfully).

    Everything is gated on {!set_enabled}: while disabled (the default)
    [incr]/[add]/[observe] are a single atomic load and a branch, and
    instrumented code must not change behaviour in any other way.
    Gauges update unconditionally — they are cheap and must not drift
    when the flag flips between a paired increment and decrement.

    Metric and label names follow the Prometheus conventions
    ([ogc_<subsystem>_<unit>_total] etc.); registration normally happens
    in module initializers, before any domain is spawned. *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
val enabled : unit -> bool

val counter : ?labels:(string * string) list -> string -> counter
(** Monotonically increasing value.  Same [name] with different [labels]
    registers a distinct time series (exported adjacently). *)

val gauge : ?labels:(string * string) list -> string -> gauge
(** Instantaneous integer level (queue depth, busy workers, bytes). *)

val histogram :
  ?labels:(string * string) list -> ?buckets:float array -> string ->
  histogram
(** Fixed upper-bound buckets (strictly increasing; an implicit [+Inf]
    overflow bucket is always appended).  Default buckets suit
    second-denominated latencies from 100µs to ~100s. *)

val incr : counter -> unit
val add : counter -> float -> unit
val gauge_set : gauge -> int -> unit
val gauge_add : gauge -> int -> unit
val observe : histogram -> float -> unit

val counter_value : counter -> float
val gauge_value : gauge -> int
val histogram_counts : histogram -> float array * float
(** Merged per-bucket counts (finite buckets then the overflow bucket)
    and the sum of observations. *)

val histogram_shards : histogram -> float array list
(** Per-shard bucket counts, one array per domain shard that has
    recorded anything — for tests asserting merge = Σ shards. *)

val histogram_json : histogram -> Ogc_json.Json.t
(** [{ "count": n; "sum": s; "buckets": [{"le": u, "n": c}; ...] }] with
    cumulative counts and a final [le = "+Inf"] bucket. *)

val snapshot : unit -> (string * (string * string) list * Ogc_json.Json.t) list
(** Every registered series as [(name, labels, value-json)], in
    registration order, shards merged. *)

val to_prometheus : unit -> string
(** Text exposition: one [name{label="v"} value] line per sample;
    histograms expand to [_bucket{le=...}] (cumulative, ending in
    [+Inf]), [_sum] and [_count]. *)

val to_json : unit -> Ogc_json.Json.t

val percentile_sorted : float array -> float -> float
(** [percentile_sorted sorted q] — nearest-rank percentile of an
    ascending sample window; [0.0] when empty.  The shared
    implementation behind the server's and router's [stats] p50/p95. *)

val percentile_of_counts :
  buckets:float array -> before:float array -> after:float array ->
  float -> float
(** Percentile from two {!histogram_counts} snapshots bracketing an
    interval, linearly interpolated inside the bucket where the
    cumulative delta crosses [q]·total.  Observations past the last
    finite bound report that bound (a floor, never an overestimate);
    [0.0] when the interval recorded nothing. *)

val reset : unit -> unit
(** Zero every shard and gauge (tests only). *)
