(** Known-bits (bit-value) analysis — the per-bit alternative the paper
    contrasts VRP with (§5: "Budiu et al. implemented useful bit-width
    computation (where each bit was tagged whether it was useful or
    not)").

    An abstract value tracks, for each of the 64 bits, whether it is known
    to be 0, known to be 1, or unknown.  Compared to intervals this
    represents non-contiguous facts exactly (e.g. "a multiple of 8 below
    256" has three known-zero low bits), but loses magnitude relations
    ([x < 100] is invisible).  {!analyze} runs a forward dataflow with
    this domain over a function — the lattice is finite (2 bits of state
    per bit position), so the fixpoint needs no widening — and
    {!width_of} derives the two's-complement width a value needs, which
    the ablation bench compares against VRP's interval-derived widths.

    Soundness (property-tested): for every operation, evaluating on any
    concretization of the inputs yields a concretization of the
    abstract result. *)

open Ogc_isa
open Ogc_ir

type t = private {
  zeros : int64;  (** bits known to be 0 *)
  ones : int64;  (** bits known to be 1 *)
}
(** Invariant: [zeros land ones = 0]. *)

val top : t
(** Nothing known. *)

val const : int64 -> t
val make : zeros:int64 -> ones:int64 -> t
(** Raises [Invalid_argument] when a bit is claimed both 0 and 1. *)

val is_const : t -> int64 option
val join : t -> t -> t
val equal : t -> t -> bool

(** [concretizes bv v]: is [v] a possible value of [bv]? *)
val concretizes : t -> int64 -> bool

(** [known_bits bv] counts determined bit positions (64 for constants). *)
val known_bits : t -> int

(** Narrowest two's-complement width every concretization fits in. *)
val width : t -> Width.t

(** {1 Transfer functions} *)

val forward_alu : Instr.alu_op -> Width.t -> t -> t -> t
val forward_cmp : t
val forward_msk : Width.t -> t -> t
val forward_sext : Width.t -> t -> t
val forward_load : Width.t -> signed:bool -> t
val forward_cmov : Width.t -> old:t -> src:t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
(** Bit pattern MSB-first with [0], [1] and [?], runs abbreviated. *)

(** {1 Whole-function analysis} *)

type result

val analyze : Prog.t -> result

(** Known-bits of the value produced by instruction [iid]. *)
val value_of : result -> int -> t option

(** The width of the {e value} instruction [iid] produces, per the
    known-bits domain, capped at the encoded width.  This is the metric
    the domain ablation compares against the interval analysis; unlike
    {!Vrp.width_of} it is {e not} a sound re-encoding width for
    value-determined operations (compares, divides, right shifts), whose
    inputs would also have to fit. *)
val width_of : result -> int -> Width.t option
