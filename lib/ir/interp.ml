open Ogc_isa

exception Fault of string

let fault fmt = Fmt.kstr (fun s -> raise (Fault s)) fmt

type config = { mem_size : int; max_steps : int }

let default_config = { mem_size = 4 * 1024 * 1024; max_steps = 100_000_000 }

type event =
  | E_ins of {
      iid : int;
      op : Instr.t;
      a : int64;
      b : int64;
      result : int64;
      addr : int64;
    }
  | E_branch of { iid : int; taken : bool; value : int64; reg : Reg.t }
  | E_jump of { iid : int }
  | E_return of { iid : int }

type outcome = { checksum : int64; emitted : int64 list; steps : int }

type bb_counts = (string, int array) Hashtbl.t

let count_of (c : bb_counts) fname l =
  match Hashtbl.find_opt c fname with
  | None -> 0
  | Some a ->
    let i = Label.to_int l in
    if i < Array.length a then a.(i) else 0

(* 2^33 + 2^30: data and stack addresses need 33-40 bits, as on Alpha. *)
let virtual_base = 0x2_4000_0000L

let global_addresses (p : Prog.t) =
  let addr = ref (Int64.add virtual_base 4096L) in
  List.map
    (fun (g : Prog.global) ->
      let a = !addr in
      let size = Bytes.length g.init in
      let aligned = (size + 7) / 8 * 8 in
      addr := Int64.add !addr (Int64.of_int (aligned + 8));
      (g.gname, a))
    p.globals

let address_of_global p name =
  match List.assoc_opt name (global_addresses p) with
  | Some a -> a
  | None -> fault "unknown global %s" name

let max_emitted_kept = 64

type frame = { rf : Prog.func; rb : int; ri : int }

let run ?(config = default_config) ?on_event ?bb_counts ?profile (p : Prog.t) =
  let mem = Bytes.make config.mem_size '\000' in
  (* Install global images. *)
  let gaddrs = global_addresses p in
  List.iter
    (fun (g : Prog.global) ->
      let a = Int64.to_int (Int64.sub (List.assoc g.gname gaddrs) virtual_base) in
      if a + Bytes.length g.init > config.mem_size then
        fault "global %s does not fit in memory" g.gname;
      Bytes.blit g.init 0 mem a (Bytes.length g.init))
    p.globals;
  let regs = Array.make (1 + Prog.max_reg p) 0L in
  regs.(Reg.to_int Reg.sp) <-
    Int64.add virtual_base (Int64.of_int (config.mem_size - 64));
  let zero = Reg.to_int Reg.zero in
  let rd r = if Reg.to_int r = zero then 0L else regs.(Reg.to_int r) in
  let wr r v = if Reg.to_int r <> zero then regs.(Reg.to_int r) <- v in
  let operand = function Instr.Reg r -> rd r | Instr.Imm i -> i in
  let check_mem a size =
    let phys = Int64.sub a virtual_base in
    if
      phys < 0L
      || Int64.add phys (Int64.of_int size) > Int64.of_int config.mem_size
    then fault "memory access out of bounds: %Ld" a;
    Int64.to_int phys
  in
  let load w signed a =
    let size = Width.bytes w in
    let a = check_mem a size in
    match (w, signed) with
    | Width.W8, true -> Int64.of_int (Bytes.get_int8 mem a)
    | Width.W8, false -> Int64.of_int (Bytes.get_uint8 mem a)
    | Width.W16, true -> Int64.of_int (Bytes.get_int16_le mem a)
    | Width.W16, false -> Int64.of_int (Bytes.get_uint16_le mem a)
    | Width.W32, true -> Int64.of_int32 (Bytes.get_int32_le mem a)
    | Width.W32, false ->
      Int64.logand (Int64.of_int32 (Bytes.get_int32_le mem a)) 0xFFFF_FFFFL
    | Width.W64, _ -> Bytes.get_int64_le mem a
  in
  let store w a v =
    let size = Width.bytes w in
    let a = check_mem a size in
    match w with
    | Width.W8 -> Bytes.set_int8 mem a (Int64.to_int (Int64.logand v 0xFFL))
    | Width.W16 ->
      Bytes.set_int16_le mem a (Int64.to_int (Int64.logand v 0xFFFFL))
    | Width.W32 -> Bytes.set_int32_le mem a (Int64.to_int32 v)
    | Width.W64 -> Bytes.set_int64_le mem a v
  in
  let want_events = on_event <> None in
  let notify =
    match on_event with Some f -> f | None -> fun (_ : event) -> ()
  in
  let bump_bb =
    match bb_counts with
    | None -> fun (_ : Prog.func) (_ : int) -> ()
    | Some tbl ->
      fun f bi ->
        let a =
          match Hashtbl.find_opt tbl f.fname with
          | Some a when Array.length a >= Array.length f.blocks -> a
          | Some a ->
            let a' = Array.make (Array.length f.blocks) 0 in
            Array.blit a 0 a' 0 (Array.length a);
            Hashtbl.replace tbl f.fname a';
            a'
          | None ->
            let a = Array.make (Array.length f.blocks) 0 in
            Hashtbl.replace tbl f.fname a;
            a
        in
        a.(bi) <- a.(bi) + 1
  in
  let sample =
    match profile with
    | None -> fun (_ : int) (_ : int64) -> ()
    | Some tbl -> (
      fun iid v ->
        match Hashtbl.find_opt tbl iid with
        | Some f -> f v
        | None -> ())
  in
  let checksum = ref 0L in
  let emitted = ref [] and emitted_n = ref 0 in
  let steps = ref 0 in
  let budget = config.max_steps in
  let stack : frame list ref = ref [] in
  let exception Halt in
  (* Current position. *)
  let cur_f = ref (try Prog.find_func p "main" with Not_found -> fault "no main")
  and cur_b = ref 0
  and cur_i = ref 0 in
  bump_bb !cur_f 0;
  let goto_block l =
    cur_b := Label.to_int l;
    cur_i := 0;
    bump_bb !cur_f !cur_b
  in
  let step_budget () =
    incr steps;
    if !steps > budget then fault "step budget exhausted (%d)" budget
  in
  let exec_ins (ins : Prog.ins) =
    step_budget ();
    match ins.op with
    | Instr.Alu { op; width; src1; src2; dst } ->
      let a = rd src1 and b = operand src2 in
      let r = Instr.eval_alu op width a b in
      wr dst r;
      sample ins.iid r;
      if want_events then
        notify (E_ins { iid = ins.iid; op = ins.op; a; b; result = r; addr = 0L })
    | Instr.Cmp { op; width; src1; src2; dst } ->
      let a = rd src1 and b = operand src2 in
      let r = Instr.eval_cmp op width a b in
      wr dst r;
      sample ins.iid r;
      if want_events then
        notify (E_ins { iid = ins.iid; op = ins.op; a; b; result = r; addr = 0L })
    | Instr.Cmov { cond; width; test; src; dst } ->
      let t = rd test and s = operand src in
      let r = if Instr.eval_cond cond t then Width.truncate s width else rd dst in
      wr dst r;
      sample ins.iid r;
      if want_events then
        notify
          (E_ins { iid = ins.iid; op = ins.op; a = t; b = s; result = r; addr = 0L })
    | Instr.Msk { width; src; dst } ->
      let a = rd src in
      let r = Width.truncate_unsigned a width in
      wr dst r;
      sample ins.iid r;
      if want_events then
        notify (E_ins { iid = ins.iid; op = ins.op; a; b = 0L; result = r; addr = 0L })
    | Instr.Sext { width; src; dst } ->
      let a = rd src in
      let r = Width.truncate a width in
      wr dst r;
      sample ins.iid r;
      if want_events then
        notify (E_ins { iid = ins.iid; op = ins.op; a; b = 0L; result = r; addr = 0L })
    | Instr.Li { dst; imm } ->
      wr dst imm;
      sample ins.iid imm;
      if want_events then
        notify
          (E_ins { iid = ins.iid; op = ins.op; a = 0L; b = 0L; result = imm; addr = 0L })
    | Instr.La { dst; symbol } ->
      let a =
        match List.assoc_opt symbol gaddrs with
        | Some a -> a
        | None -> fault "unknown global %s" symbol
      in
      wr dst a;
      sample ins.iid a;
      if want_events then
        notify
          (E_ins { iid = ins.iid; op = ins.op; a = 0L; b = 0L; result = a; addr = 0L })
    | Instr.Load { width; signed; base; offset; dst } ->
      let addr = Int64.add (rd base) offset in
      let r = load width signed addr in
      wr dst r;
      sample ins.iid r;
      if want_events then
        notify
          (E_ins { iid = ins.iid; op = ins.op; a = rd base; b = 0L; result = r; addr })
    | Instr.Store { width; base; offset; src } ->
      let addr = Int64.add (rd base) offset in
      let v = rd src in
      store width addr v;
      if want_events then
        notify
          (E_ins { iid = ins.iid; op = ins.op; a = rd base; b = v; result = 0L; addr })
    | Instr.Call { callee } ->
      if want_events then
        notify
          (E_ins
             { iid = ins.iid; op = ins.op; a = 0L; b = 0L; result = 0L; addr = 0L });
      let f =
        match Prog.find_func_opt p callee with
        | Some f -> f
        | None -> fault "call to unknown function %s" callee
      in
      stack := { rf = !cur_f; rb = !cur_b; ri = !cur_i + 1 } :: !stack;
      if List.length !stack > 100_000 then fault "call stack overflow";
      cur_f := f;
      cur_b := 0;
      cur_i := 0;
      bump_bb f 0;
      raise_notrace Exit (* transferred control; skip the index bump *)
    | Instr.Emit { src } ->
      let v = rd src in
      checksum := Int64.add (Int64.mul !checksum 31L) v;
      if !emitted_n < max_emitted_kept then begin
        emitted := v :: !emitted;
        incr emitted_n
      end;
      if want_events then
        notify
          (E_ins { iid = ins.iid; op = ins.op; a = v; b = 0L; result = 0L; addr = 0L })
  in
  let exec_term (b : Prog.block) =
    step_budget ();
    match b.term with
    | Prog.Jump l ->
      if want_events then notify (E_jump { iid = b.term_iid });
      goto_block l
    | Prog.Branch { cond; src; if_true; if_false } ->
      let v = rd src in
      let taken = Instr.eval_cond cond v in
      if want_events then
        notify (E_branch { iid = b.term_iid; taken; value = v; reg = src });
      goto_block (if taken then if_true else if_false)
    | Prog.Return -> (
      if want_events then notify (E_return { iid = b.term_iid });
      match !stack with
      | [] -> raise_notrace Halt
      | fr :: rest ->
        stack := rest;
        cur_f := fr.rf;
        cur_b := fr.rb;
        cur_i := fr.ri)
  in
  (try
     while true do
       let f = !cur_f in
       let b = f.blocks.(!cur_b) in
       if !cur_i < Array.length b.body then begin
         (try
            exec_ins b.body.(!cur_i);
            incr cur_i
          with Exit -> ())
       end
       else exec_term b
     done
   with Halt -> ());
  { checksum = !checksum; emitted = List.rev !emitted; steps = !steps }
