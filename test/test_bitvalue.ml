(* Known-bits domain tests: representation laws, transfer soundness
   (property-checked against the ISA evaluator), and the whole-function
   analysis.  The comparison with intervals (the ablation bench) backs the
   paper's design choice: for width assignment, word-level ranges capture
   almost everything per-bit tracking does. *)

open Ogc_isa
module Bv = Ogc_core.Bitvalue
module Gen_minic = Ogc_fuzz.Gen_minic

let bv = Alcotest.testable Bv.pp Bv.equal

let test_representation () =
  Alcotest.(check (option int64)) "const" (Some 42L) (Bv.is_const (Bv.const 42L));
  Alcotest.(check (option int64)) "top not const" None (Bv.is_const Bv.top);
  Alcotest.(check bool) "top concretizes anything" true
    (Bv.concretizes Bv.top (-12345L));
  Alcotest.(check bool) "const concretizes itself" true
    (Bv.concretizes (Bv.const 7L) 7L);
  Alcotest.(check bool) "const rejects others" false
    (Bv.concretizes (Bv.const 7L) 8L);
  Alcotest.(check int) "const knows 64 bits" 64 (Bv.known_bits (Bv.const 0L));
  Alcotest.(check int) "top knows none" 0 (Bv.known_bits Bv.top);
  Alcotest.check bv "join of equal consts" (Bv.const 5L)
    (Bv.join (Bv.const 5L) (Bv.const 5L));
  Alcotest.(check bool) "join forgets differing bits" true
    (Bv.concretizes (Bv.join (Bv.const 4L) (Bv.const 6L)) 6L);
  Alcotest.check_raises "contradiction rejected"
    (Invalid_argument "Bitvalue.make: contradictory bits") (fun () ->
      ignore (Bv.make ~zeros:1L ~ones:1L))

let test_width () =
  let w v = Width.to_string (Bv.width v) in
  Alcotest.(check string) "0" "8" (w (Bv.const 0L));
  Alcotest.(check string) "127" "8" (w (Bv.const 127L));
  Alcotest.(check string) "128" "16" (w (Bv.const 128L));
  Alcotest.(check string) "-1" "8" (w (Bv.const (-1L)));
  Alcotest.(check string) "-129" "16" (w (Bv.const (-129L)));
  Alcotest.(check string) "top" "64" (w Bv.top);
  (* bits 0..3 unknown, rest known zero: fits a byte *)
  Alcotest.(check string) "nibble" "8"
    (w (Bv.make ~zeros:(Int64.lognot 15L) ~ones:0L))

let test_masking () =
  let x = Bv.top in
  let masked = Bv.forward_alu Instr.And Width.W64 x (Bv.const 0xFFL) in
  Alcotest.(check bool) "and 0xFF clears high bits" true
    (Bv.concretizes masked 255L && not (Bv.concretizes masked 256L));
  Alcotest.(check string) "width after mask" "16"
    (Width.to_string (Bv.width masked));
  let msk = Bv.forward_msk Width.W8 Bv.top in
  Alcotest.check bv "msk8 = and 0xFF" masked msk;
  (* Alignment: known trailing zeros — the fact intervals cannot state. *)
  let aligned = Bv.forward_alu Instr.And Width.W64 x (Bv.const (-8L)) in
  Alcotest.(check bool) "multiple of 8" true
    (Bv.concretizes aligned 16L && not (Bv.concretizes aligned 12L))

let test_add_carry () =
  (* 4-aligned + 1: the two low bits are known (01). *)
  let aligned = Bv.forward_alu Instr.And Width.W64 Bv.top (Bv.const (-4L)) in
  let plus1 = Bv.forward_alu Instr.Add Width.W64 aligned (Bv.const 1L) in
  Alcotest.(check bool) "low bits known" true
    (Bv.concretizes plus1 5L && not (Bv.concretizes plus1 4L)
    && not (Bv.concretizes plus1 6L));
  Alcotest.check bv "const add" (Bv.const 30L)
    (Bv.forward_alu Instr.Add Width.W64 (Bv.const 13L) (Bv.const 17L))

let test_mul_alignment () =
  let by8 = Bv.forward_alu Instr.Mul Width.W64 Bv.top (Bv.const 8L) in
  Alcotest.(check bool) "times 8 has 3 trailing zeros" true
    (Bv.concretizes by8 24L && not (Bv.concretizes by8 12L))

let test_shifts () =
  let v = Bv.forward_msk Width.W8 Bv.top in
  let l = Bv.forward_alu Instr.Sll Width.W64 v (Bv.const 4L) in
  Alcotest.(check bool) "sll fills zeros" true
    (Bv.concretizes l 0xFF0L && not (Bv.concretizes l 1L));
  let r = Bv.forward_alu Instr.Srl Width.W64 (Bv.const (-1L)) (Bv.const 60L) in
  Alcotest.check bv "srl of -1 by 60" (Bv.const 15L) r

(* --- property: transfers over-approximate the evaluator --------------------- *)

let all_alu_ops =
  [ Instr.Add; Instr.Sub; Instr.Mul; Instr.Div; Instr.Rem; Instr.And;
    Instr.Or; Instr.Xor; Instr.Bic; Instr.Sll; Instr.Srl; Instr.Sra ]

(* A bitvalue plus one of its concretizations: start from a value and
   forget a random subset of bits. *)
let gen_bvp =
  QCheck.Gen.(
    map2
      (fun v forget ->
        let zeros = Int64.logand (Int64.lognot v) (Int64.lognot forget) in
        let ones = Int64.logand v (Int64.lognot forget) in
        (Bv.make ~zeros ~ones, v))
      ui64 ui64)

let arb_bvp =
  QCheck.make
    ~print:(fun (b, v) -> Printf.sprintf "%s ∋ %Ld" (Bv.to_string b) v)
    gen_bvp

let prop_forward_alu_sound =
  QCheck.Test.make ~name:"bit transfer is sound" ~count:20000
    QCheck.(
      triple
        (make ~print:(fun _ -> "op,w")
           Gen.(pair (oneofl all_alu_ops) (oneofl Width.all)))
        arb_bvp arb_bvp)
    (fun ((op, w), (ba, a), (bb, b)) ->
      Bv.concretizes (Bv.forward_alu op w ba bb) (Instr.eval_alu op w a b))

let prop_msk_sext_sound =
  QCheck.Test.make ~name:"msk/sext transfers are sound" ~count:5000
    QCheck.(pair (oneofl Width.all) arb_bvp)
    (fun (w, (ba, a)) ->
      Bv.concretizes (Bv.forward_msk w ba) (Width.truncate_unsigned a w)
      && Bv.concretizes (Bv.forward_sext w ba) (Width.truncate a w))

let prop_width_sound =
  QCheck.Test.make ~name:"width covers every concretization" ~count:5000
    arb_bvp
    (fun (ba, a) -> Width.fits a (Bv.width ba))

let prop_join_sound =
  QCheck.Test.make ~name:"join keeps both sides" ~count:5000
    QCheck.(pair arb_bvp arb_bvp)
    (fun ((ba, a), (bb, b)) ->
      let j = Bv.join ba bb in
      Bv.concretizes j a && Bv.concretizes j b)

(* --- whole-function analysis -------------------------------------------------- *)

let test_analyze_program () =
  let p = Ogc_minic.Minic.compile {|
    long source = 123456;
    int main() {
      long x = source;
      long masked = x & 0xFF;
      long aligned = (x & ~7) + 4;
      emit(masked + aligned);
      return 0;
    }
  |} in
  let res = Bv.analyze p in
  (* Every runtime value must concretize its static bitvalue. *)
  let bad = ref 0 in
  let on_event = function
    | Ogc_ir.Interp.E_ins { iid; result; op; _ } -> (
      match (op, Bv.value_of res iid) with
      | (Instr.Alu _ | Instr.Cmp _ | Instr.Msk _ | Instr.Sext _ | Instr.Li _),
        Some v ->
        if not (Bv.concretizes v result) then incr bad
      | _ -> ())
    | _ -> ()
  in
  ignore (Ogc_ir.Interp.run ~on_event p);
  Alcotest.(check int) "all values concretize" 0 !bad;
  (* The mask's result is known narrow. *)
  let found = ref false in
  Ogc_ir.Prog.iter_all_ins p (fun _ _ ins ->
      match ins.Ogc_ir.Prog.op with
      | Instr.Alu { op = Instr.And; src2 = Instr.Imm 255L; _ } -> (
        found := true;
        match Bv.width_of res ins.Ogc_ir.Prog.iid with
        | Some w ->
          Alcotest.(check string) "mask width" "16" (Width.to_string w)
        | None -> Alcotest.fail "no width")
      | _ -> ());
  Alcotest.(check bool) "mask instruction found" true !found

let prop_analyze_sound_random =
  QCheck.Test.make ~name:"bit analysis sound on random programs" ~count:60
    Gen_minic.arbitrary_program (fun src ->
      let p = Ogc_minic.Minic.compile src in
      let res = Bv.analyze p in
      let bad = ref None in
      let on_event = function
        | Ogc_ir.Interp.E_ins { iid; result; op; _ } -> (
          match (op, Bv.value_of res iid) with
          | ( (Instr.Alu _ | Instr.Cmp _ | Instr.Cmov _ | Instr.Msk _
              | Instr.Sext _ | Instr.Li _ | Instr.Load _),
              Some v ) ->
            if (not (Bv.concretizes v result)) && !bad = None then
              bad := Some (iid, op, result, v)
          | _ -> ())
        | _ -> ()
      in
      let cfg =
        { Ogc_ir.Interp.default_config with max_steps = 2_000_000 }
      in
      ignore (Ogc_ir.Interp.run ~config:cfg ~on_event p);
      match !bad with
      | None -> true
      | Some (iid, op, r, v) ->
        QCheck.Test.fail_reportf "iid %d (%s): %Ld not in %s" iid
          (Instr.to_string op) r (Bv.to_string v))

let () =
  Alcotest.run "bitvalue"
    [
      ( "unit",
        [
          Alcotest.test_case "representation" `Quick test_representation;
          Alcotest.test_case "width" `Quick test_width;
          Alcotest.test_case "masking" `Quick test_masking;
          Alcotest.test_case "add carries" `Quick test_add_carry;
          Alcotest.test_case "mul alignment" `Quick test_mul_alignment;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "program analysis" `Quick test_analyze_program;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_forward_alu_sound;
            prop_msk_sext_sound;
            prop_width_sound;
            prop_join_sound;
            prop_analyze_sound_random;
          ] );
    ]
