type t = { words : int array; nbits : int }

let create nbits = { words = Array.make ((nbits + 62) / 63) 0; nbits }
let copy t = { t with words = Array.copy t.words }
let length t = t.nbits

let check t i =
  if i < 0 || i >= t.nbits then Fmt.invalid_arg "Bitset: index %d" i

let set t i =
  check t i;
  t.words.(i / 63) <- t.words.(i / 63) lor (1 lsl (i mod 63))

let clear t i =
  check t i;
  t.words.(i / 63) <- t.words.(i / 63) land lnot (1 lsl (i mod 63))

let mem t i =
  check t i;
  t.words.(i / 63) land (1 lsl (i mod 63)) <> 0

let union_into ~into src =
  let changed = ref false in
  Array.iteri
    (fun k w ->
      let nw = into.words.(k) lor w in
      if nw <> into.words.(k) then begin
        into.words.(k) <- nw;
        changed := true
      end)
    src.words;
  !changed

let diff_into ~into src =
  Array.iteri (fun k w -> into.words.(k) <- into.words.(k) land lnot w) src.words

let equal a b = a.nbits = b.nbits && a.words = b.words

let iter t k =
  for i = 0 to t.nbits - 1 do
    if mem t i then k i
  done

let elements t =
  let acc = ref [] in
  for i = t.nbits - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let cardinal t =
  let n = ref 0 in
  Array.iter
    (fun w ->
      let w = ref w in
      while !w <> 0 do
        w := !w land (!w - 1);
        incr n
      done)
    t.words;
  !n
