(* Iterative Tarjan (explicit call stack, so deep CFGs cannot overflow
   the OCaml stack).  Tarjan pops components in reverse topological
   order of the condensation; ids are flipped afterwards so that
   [comp u < comp v] along every inter-component edge [u -> v]. *)

type t = { comp_of : int array; ncomps : int; cyclic : bool array }

let compute ~n ~succs =
  let index = Array.make (max n 1) (-1) in
  let lowlink = Array.make (max n 1) 0 in
  let on_stack = Array.make (max n 1) false in
  let stack = Array.make (max n 1) 0 in
  let sp = ref 0 in
  let comp_of = Array.make (max n 1) (-1) in
  let next = ref 0 in
  let ncomps = ref 0 in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      index.(root) <- !next;
      lowlink.(root) <- !next;
      incr next;
      stack.(!sp) <- root;
      incr sp;
      on_stack.(root) <- true;
      let call = ref [ (root, ref (succs root)) ] in
      while !call <> [] do
        match !call with
        | [] -> ()
        | (v, rest) :: tl -> (
          match !rest with
          | w :: ws ->
            rest := ws;
            if index.(w) < 0 then begin
              index.(w) <- !next;
              lowlink.(w) <- !next;
              incr next;
              stack.(!sp) <- w;
              incr sp;
              on_stack.(w) <- true;
              call := (w, ref (succs w)) :: !call
            end
            else if on_stack.(w) then
              lowlink.(v) <- min lowlink.(v) index.(w)
          | [] ->
            if lowlink.(v) = index.(v) then begin
              let cid = !ncomps in
              incr ncomps;
              let continue = ref true in
              while !continue do
                decr sp;
                let w = stack.(!sp) in
                on_stack.(w) <- false;
                comp_of.(w) <- cid;
                if w = v then continue := false
              done
            end;
            call := tl;
            (match tl with
            | (u, _) :: _ -> lowlink.(u) <- min lowlink.(u) lowlink.(v)
            | [] -> ()))
      done
    end
  done;
  let nc = !ncomps in
  let comp_topo = Array.map (fun c -> if c < 0 then 0 else nc - 1 - c) comp_of in
  let size = Array.make (max nc 1) 0 in
  for v = 0 to n - 1 do
    size.(comp_topo.(v)) <- size.(comp_topo.(v)) + 1
  done;
  let cyclic = Array.make (max n 1) false in
  for v = 0 to n - 1 do
    cyclic.(v) <- size.(comp_topo.(v)) > 1 || List.exists (Int.equal v) (succs v)
  done;
  { comp_of = comp_topo; ncomps = nc; cyclic }

let of_cfg cfg =
  compute ~n:(Cfg.num_blocks cfg) ~succs:(fun v ->
      List.map Label.to_int (Cfg.succs cfg (Label.of_int v)))

let count t = t.ncomps
let comp t v = t.comp_of.(v)
let in_cycle t v = t.cyclic.(v)
let has_cycle t = Array.exists Fun.id t.cyclic
