(* 2-bit saturating counters packed in Bytes; >= 2 predicts taken. *)
type table = { counters : Bytes.t; mask : int }

let make_table entries =
  { counters = Bytes.make entries '\001'; mask = entries - 1 }

let read tbl i = Char.code (Bytes.get tbl.counters (i land tbl.mask))

let bump tbl i up =
  let i = i land tbl.mask in
  let c = Char.code (Bytes.get tbl.counters i) in
  let c' = if up then min 3 (c + 1) else max 0 (c - 1) in
  Bytes.set tbl.counters i (Char.chr c')

type kind =
  | Bimodal of table
  | Gshare of { tbl : table; history_mask : int; mutable history : int }
  | Combined of { chooser : table; gshare : t; bimodal : t }

and t = { kind : kind; mutable predictions : int; mutable mispredictions : int }

let create_bimodal ~entries =
  { kind = Bimodal (make_table entries); predictions = 0; mispredictions = 0 }

let create_gshare ~entries ~history_bits =
  {
    kind =
      Gshare
        { tbl = make_table entries;
          history_mask = (1 lsl history_bits) - 1;
          history = 0 };
    predictions = 0;
    mispredictions = 0;
  }

let create_combined ~chooser_entries ~gshare_entries ~gshare_history
    ~bimodal_entries =
  {
    kind =
      Combined
        {
          chooser = make_table chooser_entries;
          gshare = create_gshare ~entries:gshare_entries ~history_bits:gshare_history;
          bimodal = create_bimodal ~entries:bimodal_entries;
        };
    predictions = 0;
    mispredictions = 0;
  }

let of_config (c : Machine_config.t) =
  create_combined ~chooser_entries:c.chooser_entries
    ~gshare_entries:c.gshare_entries ~gshare_history:c.gshare_history
    ~bimodal_entries:c.bimodal_entries

let rec predict_raw t ~pc =
  match t.kind with
  | Bimodal tbl -> read tbl pc >= 2
  | Gshare g -> read g.tbl (pc lxor (g.history land g.history_mask)) >= 2
  | Combined c ->
    if read c.chooser pc >= 2 then predict_raw c.gshare ~pc
    else predict_raw c.bimodal ~pc

let predict t ~pc =
  t.predictions <- t.predictions + 1;
  predict_raw t ~pc

let rec update_raw t ~pc ~taken =
  match t.kind with
  | Bimodal tbl -> bump tbl pc taken
  | Gshare g ->
    bump g.tbl (pc lxor (g.history land g.history_mask)) taken;
    g.history <- ((g.history lsl 1) lor Bool.to_int taken) land g.history_mask
  | Combined c ->
    let pg = predict_raw c.gshare ~pc and pb = predict_raw c.bimodal ~pc in
    (* Train the chooser toward whichever component was right. *)
    if pg <> pb then bump c.chooser pc (pg = taken);
    update_raw c.gshare ~pc ~taken;
    update_raw c.bimodal ~pc ~taken

let update t ~pc ~taken =
  if predict_raw t ~pc <> taken then
    t.mispredictions <- t.mispredictions + 1;
  update_raw t ~pc ~taken

let stats t = (t.predictions, t.mispredictions)
