open Ogc_isa
open Ogc_ir
module Ep = Ogc_energy.Energy_params
module Account = Ogc_energy.Account
module Policy = Ogc_gating.Policy
module Metrics = Ogc_obs.Metrics
module Span = Ogc_obs.Span

(* Timing-model telemetry: where each instruction's latency accrues.
   Stage deltas accumulate in local refs during the simulated run and
   flush to these counters once at the end, so the per-event cost when
   metrics are enabled is four integer adds (and zero when disabled). *)
let m_sim_runs = Metrics.counter "ogc_sim_runs_total"
let m_sim_cycles = Metrics.counter "ogc_sim_cycles_total"
let m_sim_instructions = Metrics.counter "ogc_sim_instructions_total"

let m_stage_cycles =
  List.map
    (fun stage ->
      ( stage,
        Metrics.counter "ogc_sim_stage_cycles_total"
          ~labels:[ ("stage", stage) ] ))
    [ "frontend"; "schedule"; "execute"; "retire" ]

type memory_mode = Tagged | Sign_extend

type stats = {
  cycles : int;
  instructions : int;
  branches : int;
  mispredictions : int;
  icache_misses : int;
  dcache_accesses : int;
  dcache_misses : int;
  l2_misses : int;
  energy : Account.t;
  class_width : (Instr.iclass * Width.t, int) Hashtbl.t;
  opcode_counts : (int, int) Hashtbl.t;
  sigbyte_histogram : int array;
  checksum : int64;
}

(* Cycle-indexed resource reservation with an epoch-tagged ring, so no
   per-cycle clearing is needed.  The ring must be larger than the
   farthest ahead any instruction can be scheduled. *)
module Ring = struct
  type t = { used : int array; stamp : int array; size : int }

  let create size = { used = Array.make size 0; stamp = Array.make size (-1); size }

  let usage t cycle =
    let i = cycle mod t.size in
    if t.stamp.(i) = cycle then t.used.(i) else 0

  (* First cycle >= [cycle] with spare capacity; reserves one slot. *)
  let take t ~cycle ~limit =
    let c = ref cycle in
    while usage t !c >= limit do
      incr c
    done;
    let i = !c mod t.size in
    if t.stamp.(i) <> !c then begin
      t.stamp.(i) <- !c;
      t.used.(i) <- 0
    end;
    t.used.(i) <- t.used.(i) + 1;
    !c
end

let ipc s =
  if s.cycles = 0 then 0.0
  else float_of_int s.instructions /. float_of_int s.cycles

let simulate ?(machine = Machine_config.default) ?(params = Ep.default)
    ?(interp_config = Interp.default_config) ?(memory_mode = Tagged)
    ?(spill_bytes_of = fun _ -> None) ~policy (p : Prog.t) =
  Span.with_ ~name:"simulate"
    ~args:[ ("policy", Ogc_json.Json.Str (Policy.name policy)) ]
  @@ fun () ->
  let obs = Metrics.enabled () in
  let st_frontend = ref 0 in
  let st_schedule = ref 0 in
  let st_execute = ref 0 in
  let st_retire = ref 0 in
  (* Per-instruction cycle attribution: fetch→dispatch is front-end,
     dispatch→issue is scheduling (operand/window wait), issue→complete
     is execution, complete→commit is retirement. *)
  let attribute ~f ~dc ~ic ~complete ~cc =
    if obs then begin
      st_frontend := !st_frontend + (dc - f);
      st_schedule := !st_schedule + (ic - dc);
      st_execute := !st_execute + (complete - ic);
      st_retire := !st_retire + (cc - complete)
    end
  in
  let energy = Account.create params in
  let icache = Cache.create machine.icache in
  let dcache = Cache.create machine.dcache in
  let l2 = Cache.create machine.l2 in
  let bpred = Bpred.of_config machine in
  let ring_size = 1 lsl 15 in
  let fetch_ring = Ring.create ring_size in
  let issue_ring = Ring.create ring_size in
  let alu_ring = Ring.create ring_size in
  let muldiv_ring = Ring.create ring_size in
  let commit_ring = Ring.create ring_size in
  let last_write = Array.make 32 0 in
  (* The single mul/div unit pipelines multiplies but a divide occupies it
     for its full latency (real integer dividers are not pipelined). *)
  let muldiv_free = ref 0 in
  (* Memory dependences: a load may not issue before the last store to the
     same 8-byte word has produced its data (no speculative memory
     disambiguation).  Keyed by word address. *)
  let store_ready : (int64, int) Hashtbl.t = Hashtbl.create 4096 in
  (* Branch target buffer: taken control transfers whose target is not
     cached cost a front-end bubble even when the direction is right. *)
  let btb = Cache.create { Machine_config.size_bytes = 4096; ways = 4;
                           line_bytes = 4 } in
  let btb_bubble = 2 in
  let rob_commit = Array.make machine.window_size 0 in
  let n_dispatched = ref 0 in
  let fetch_head = ref 0 in
  let last_fetch_line = ref Int64.minus_one in
  let last_dispatch = ref 0 in
  let last_commit = ref 0 in
  let instructions = ref 0 in
  let branches = ref 0 in
  let mispredictions = ref 0 in
  let icache_misses = ref 0 in
  let dcache_accesses = ref 0 in
  let dcache_misses = ref 0 in
  let l2_misses = ref 0 in
  let class_width = Hashtbl.create 64 in
  let opcode_counts = Hashtbl.create 128 in
  let sighist = Array.make 8 0 in
  let tags = Policy.tag_bits policy in
  let mem_tags =
    match memory_mode with
    | Tagged -> Policy.memory_tag_bits policy
    | Sign_extend -> 0
  in
  let bump_class ic w =
    let key = (ic, w) in
    Hashtbl.replace class_width key
      (1 + Option.value ~default:0 (Hashtbl.find_opt class_width key))
  in
  let bump_opcode op =
    let key = Encoding.opcode_to_int (Encoding.opcode_of op) in
    Hashtbl.replace opcode_counts key
      (1 + Option.value ~default:0 (Hashtbl.find_opt opcode_counts key))
  in
  let active w v = Policy.active_bytes policy ~width:w ~value:v in
  (* Front end: returns the fetch cycle of one instruction. *)
  let fetch pc =
    let line =
      Int64.of_int (pc / machine.icache.line_bytes)
    in
    if not (Int64.equal line !last_fetch_line) then begin
      last_fetch_line := line;
      let addr = Int64.of_int pc in
      if not (Cache.access icache addr) then begin
        incr icache_misses;
        let penalty =
          if Cache.access l2 addr then machine.icache_miss_penalty
          else begin
            incr l2_misses;
            machine.icache_miss_penalty + machine.memory_latency
          end
        in
        Account.charge_fixed energy Ep.Dcache2 1;
        fetch_head := !fetch_head + penalty
      end;
      Account.charge_fixed energy Ep.Icache 1
    end;
    let f = Ring.take fetch_ring ~cycle:!fetch_head ~limit:machine.fetch_width in
    fetch_head := f;
    f
  in
  (* In-order dispatch constrained by the window: the [window_size]-th
     older instruction must have committed to free its entry. *)
  let dispatch f =
    let dc = max (f + machine.frontend_depth) !last_dispatch in
    let dc =
      if !n_dispatched >= machine.window_size then
        let idx = !n_dispatched mod machine.window_size in
        max dc rob_commit.(idx)
      else dc
    in
    last_dispatch := dc;
    dc
  in
  let commit complete =
    let cc = max (complete + 1) !last_commit in
    let cc = Ring.take commit_ring ~cycle:cc ~limit:machine.retire_width in
    last_commit := cc;
    let idx = !n_dispatched mod machine.window_size in
    rob_commit.(idx) <- cc;
    incr n_dispatched;
    cc
  in
  let issue ~earliest ~fu =
    let c = Ring.take issue_ring ~cycle:earliest ~limit:machine.issue_width in
    match fu with
    | `Alu -> Ring.take alu_ring ~cycle:c ~limit:machine.int_alus
    | `Muldiv occupancy ->
      let c = max c !muldiv_free in
      let c = Ring.take muldiv_ring ~cycle:c ~limit:machine.int_muldiv in
      muldiv_free := c + occupancy;
      c
    | `None -> c
  in
  let dcache_load addr =
    incr dcache_accesses;
    if Cache.access dcache addr then machine.dcache_hit
    else begin
      incr dcache_misses;
      Account.charge_fixed energy Ep.Dcache2 1;
      if Cache.access l2 addr then machine.dcache_hit + machine.dcache_miss_penalty
      else begin
        incr l2_misses;
        machine.dcache_hit + machine.dcache_miss_penalty + machine.memory_latency
      end
    end
  in
  let dcache_store addr =
    incr dcache_accesses;
    if not (Cache.access dcache addr) then begin
      incr dcache_misses;
      Account.charge_fixed energy Ep.Dcache2 1;
      if not (Cache.access l2 addr) then incr l2_misses
    end
  in
  (* Common per-instruction front-end and bookkeeping energy. *)
  let frontend_energy () =
    Account.charge_fixed energy Ep.Rename 1;
    Account.charge_fixed energy Ep.Rob 2
  in
  let on_ins (ev : Interp.event) =
    incr instructions;
    match ev with
    | Interp.E_ins { iid; op; a; b; result; addr } ->
      let pc = iid * 4 in
      let f = fetch pc in
      let dc = dispatch f in
      let w = Instr.width op in
      frontend_energy ();
      let uses = Instr.uses op in
      let defs = Instr.defs op in
      let ready =
        List.fold_left (fun acc r -> max acc last_write.(Reg.to_int r)) dc uses
      in
      (* Instruction queue entry: payload scaled by the source operands. *)
      Account.charge energy Ep.Iq
        ~active_bytes:(max (active w a) (active w b))
        ~tag_bits:tags;
      (* Register reads. *)
      List.iteri
        (fun i _ ->
          let v = if i = 0 then a else b in
          Account.charge energy Ep.Regfile ~active_bytes:(active w v)
            ~tag_bits:tags)
        (match uses with [] -> [] | [ x ] -> [ x ] | x :: y :: _ -> [ x; y ]);
      let fu =
        match op with
        | Instr.Alu { op = Instr.Mul; _ } -> `Muldiv 1 (* pipelined *)
        | Instr.Alu { op = Instr.Div | Instr.Rem; _ } ->
          `Muldiv machine.div_latency
        | Instr.Alu _ | Instr.Cmp _ | Instr.Cmov _ | Instr.Msk _
        | Instr.Sext _ | Instr.Li _ | Instr.La _ -> `Alu
        | Instr.Load _ | Instr.Store _ -> `Alu (* address generation *)
        | Instr.Call _ | Instr.Emit _ -> `None
      in
      (* Loads wait for the latest conflicting store (no speculative
         memory disambiguation). *)
      let ready =
        match op with
        | Instr.Load _ ->
          let word = Int64.div addr 8L in
          max ready (Option.value ~default:0 (Hashtbl.find_opt store_ready word))
        | _ -> ready
      in
      let ic = issue ~earliest:(max ready (dc + 1)) ~fu in
      let latency =
        match op with
        | Instr.Alu { op = Instr.Mul; _ } -> machine.mul_latency
        | Instr.Alu { op = Instr.Div | Instr.Rem; _ } -> machine.div_latency
        | Instr.Alu _ | Instr.Cmp _ | Instr.Cmov _ | Instr.Msk _
        | Instr.Sext _ | Instr.Li _ | Instr.La _ | Instr.Call _
        | Instr.Emit _ -> 1
        | Instr.Load _ -> dcache_load addr
        | Instr.Store _ ->
          dcache_store addr;
          1
      in
      (match op with
      | Instr.Store _ -> Hashtbl.replace store_ready (Int64.div addr 8L) (ic + 1)
      | _ -> ());
      (* Execution energy. *)
      (match fu with
      | `Muldiv _ ->
        Account.charge energy Ep.Muldiv
          ~active_bytes:(max (active w a) (max (active w b) (active w result)))
          ~tag_bits:0
      | `Alu ->
        Account.charge energy Ep.Alu
          ~active_bytes:(max (active w a) (max (active w b) (active w result)))
          ~tag_bits:0
      | `None -> ());
      if Instr.is_mem op then begin
        let data = match op with Instr.Store _ -> b | _ -> result in
        let mem_bytes =
          match memory_mode with
          | Tagged -> active w data
          | Sign_extend -> 8 (* values widen at the cache boundary *)
        in
        (* Spill loads/stores move exactly the slot width the allocator
           proved sufficient, whatever the policy would charge. *)
        let mem_bytes =
          match spill_bytes_of iid with
          | Some b ->
            Account.charge_spill energy b;
            min mem_bytes b
          | None -> mem_bytes
        in
        Account.charge energy Ep.Lsq ~active_bytes:mem_bytes ~tag_bits:mem_tags;
        Account.charge energy Ep.Dcache1 ~active_bytes:mem_bytes
          ~tag_bits:mem_tags
      end;
      let complete = ic + latency in
      (match (op, defs) with
      | _, [] -> ()
      | Instr.Call _, _ ->
        (* A call produces no architectural value itself; the callee's
           instructions (which follow in the trace) write the registers. *)
        List.iter (fun r -> last_write.(Reg.to_int r) <- complete) defs
      | _, _ ->
        (* Result value: rename buffers (write + read at commit), write
           back to the register file, result-bus transfer. *)
        let ab = active w result in
        Account.charge energy Ep.Rename_buffers ~active_bytes:ab ~tag_bits:tags;
        Account.charge energy Ep.Rename_buffers ~active_bytes:ab ~tag_bits:tags;
        Account.charge energy Ep.Regfile ~active_bytes:ab ~tag_bits:tags;
        Account.charge energy Ep.Resultbus ~active_bytes:ab ~tag_bits:0;
        List.iter (fun r -> last_write.(Reg.to_int r) <- complete) defs;
        let k = Ogc_gating.Sigbytes.significant_bytes result in
        sighist.(k - 1) <- sighist.(k - 1) + 1);
      let cc = commit complete in
      attribute ~f ~dc ~ic ~complete ~cc;
      bump_class (Instr.iclass op) w;
      bump_opcode op
    | Interp.E_branch { iid; taken; value; reg } ->
      let pc = iid * 4 in
      let f = fetch pc in
      let dc = dispatch f in
      frontend_energy ();
      incr branches;
      Account.charge_fixed energy Ep.Bpred 1;
      let predicted = Bpred.predict bpred ~pc in
      Bpred.update bpred ~pc ~taken;
      let src_ready = max dc last_write.(Reg.to_int reg) in
      let ic = issue ~earliest:(max src_ready (dc + 1)) ~fu:`Alu in
      Account.charge energy Ep.Regfile
        ~active_bytes:(Policy.active_bytes policy ~width:Width.W64 ~value)
        ~tag_bits:tags;
      Account.charge energy Ep.Alu
        ~active_bytes:(Policy.active_bytes policy ~width:Width.W64 ~value)
        ~tag_bits:0;
      Account.charge energy Ep.Iq
        ~active_bytes:(Policy.active_bytes policy ~width:Width.W64 ~value)
        ~tag_bits:tags;
      let complete = ic + 1 in
      if predicted <> taken then begin
        incr mispredictions;
        fetch_head := max !fetch_head (complete + machine.mispredict_penalty)
      end
      else if taken && not (Cache.access btb (Int64.of_int pc)) then
        (* Right direction, unknown target: a short fetch bubble. *)
        fetch_head := !fetch_head + btb_bubble;
      let cc = commit complete in
      attribute ~f ~dc ~ic ~complete ~cc
    | Interp.E_jump { iid } ->
      let pc = iid * 4 in
      let f = fetch pc in
      let dc = dispatch f in
      frontend_energy ();
      if not (Cache.access btb (Int64.of_int pc)) then
        fetch_head := !fetch_head + btb_bubble;
      let cc = commit dc in
      attribute ~f ~dc ~ic:dc ~complete:dc ~cc
    | Interp.E_return { iid } ->
      let pc = iid * 4 in
      let f = fetch pc in
      let dc = dispatch f in
      frontend_energy ();
      let ic = issue ~earliest:(dc + 1) ~fu:`Alu in
      let complete = ic + 1 in
      let cc = commit complete in
      attribute ~f ~dc ~ic ~complete ~cc
  in
  let outcome = Interp.run ~config:interp_config ~on_event:on_ins p in
  let cycles = !last_commit + 1 in
  Account.charge_fixed energy Ep.Clock cycles;
  if obs then begin
    Metrics.incr m_sim_runs;
    Metrics.add m_sim_cycles (float_of_int cycles);
    Metrics.add m_sim_instructions (float_of_int !instructions);
    List.iter
      (fun (stage, c) ->
        let v =
          match stage with
          | "frontend" -> !st_frontend
          | "schedule" -> !st_schedule
          | "execute" -> !st_execute
          | _ -> !st_retire
        in
        Metrics.add c (float_of_int v))
      m_stage_cycles
  end;
  {
    cycles;
    instructions = !instructions;
    branches = !branches;
    mispredictions = !mispredictions;
    icache_misses = !icache_misses;
    dcache_accesses = !dcache_accesses;
    dcache_misses = !dcache_misses;
    l2_misses = !l2_misses;
    energy;
    class_width;
    opcode_counts;
    sigbyte_histogram = sighist;
    checksum = outcome.checksum;
  }
