lib/core/constprop.ml: Array Cfg Instr Int64 Interval List Ogc_ir Ogc_isa Prog Reg Usedef Vrp Width
