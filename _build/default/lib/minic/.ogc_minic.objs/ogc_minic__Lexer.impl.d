lib/minic/lexer.ml: Array Ast Buffer Char Fmt Int64 List Printf String
