(* VRS tests: TNV profiling tables, constant propagation / DCE, and the
   full specialization pipeline (guards, clones, semantics, reports). *)

module Minic = Ogc_minic.Minic
module Interp = Ogc_ir.Interp
module Prog = Ogc_ir.Prog
module Tnv = Ogc_core.Tnv
module Vrp = Ogc_core.Vrp
module Vrs = Ogc_core.Vrs
module Constprop = Ogc_core.Constprop

(* --- TNV tables (Calder-style value profiling) -------------------------------- *)

let test_tnv_basic () =
  let t = Tnv.create ~capacity:4 () in
  Alcotest.(check int) "empty" 0 (Tnv.total t);
  Alcotest.(check (list (pair int64 int))) "no entries" [] (Tnv.entries t);
  for _ = 1 to 10 do Tnv.observe t 5L done;
  for _ = 1 to 3 do Tnv.observe t 7L done;
  Tnv.observe t 9L;
  Alcotest.(check int) "total" 14 (Tnv.total t);
  Alcotest.(check (pair int64 int)) "top value" (5L, 10)
    (List.hd (Tnv.entries t))

let test_tnv_capacity () =
  let t = Tnv.create ~capacity:2 ~clean_interval:1000 () in
  Tnv.observe t 1L;
  Tnv.observe t 2L;
  Tnv.observe t 3L;
  (* full: 3 ignored *)
  Alcotest.(check int) "table keeps capacity" 2 (List.length (Tnv.entries t));
  Alcotest.(check int) "but counts all" 3 (Tnv.total t)

let test_tnv_cleaning () =
  (* After cleaning, new values can enter. *)
  let t = Tnv.create ~capacity:2 ~clean_interval:4 () in
  Tnv.observe t 1L;
  Tnv.observe t 1L;
  Tnv.observe t 2L;
  Tnv.observe t 2L;
  (* cleaning fires: keeps the top half (one entry) *)
  Tnv.observe t 9L;
  Alcotest.(check bool) "new value entered after cleaning" true
    (List.mem_assoc 9L (Tnv.entries t))

let test_tnv_ranges () =
  let t = Tnv.create () in
  for _ = 1 to 80 do Tnv.observe t 5L done;
  for _ = 1 to 15 do Tnv.observe t 6L done;
  for _ = 1 to 5 do Tnv.observe t 100L done;
  let ranges = Tnv.candidate_ranges t in
  Alcotest.(check bool) "first is the single top value" true
    (match ranges with
    | (5L, 5L, f) :: _ -> abs_float (f -. 0.8) < 1e-9
    | _ -> false);
  Alcotest.(check bool) "widest covers everything" true
    (match List.rev ranges with
    | (5L, 100L, f) :: _ -> abs_float (f -. 1.0) < 1e-9
    | _ -> false);
  Alcotest.(check int) "one prefix per distinct value" 3 (List.length ranges)

(* --- constant propagation ------------------------------------------------------ *)

let test_constprop_folds () =
  let p = Minic.compile {|
    int main() {
      int a = 6;
      int b = 7;
      int c = a * b;       // foldable
      int dead = a + 100;  // never used
      emit(c);
      return 0;
    }
  |} in
  let before = Interp.run p in
  let res = Vrp.analyze p in
  let stats = Constprop.run res p in
  Ogc_ir.Validate.program p;
  let after = Interp.run p in
  Alcotest.(check int64) "semantics kept" before.Interp.checksum
    after.Interp.checksum;
  Alcotest.(check bool) "folded something" true (stats.Constprop.folded_to_const > 0);
  Alcotest.(check bool) "removed dead code" true (stats.Constprop.removed > 0);
  Alcotest.(check bool) "fewer dynamic instructions" true
    (after.Interp.steps < before.Interp.steps)

let test_constprop_branch_fold () =
  let p = Minic.compile {|
    int main() {
      int a = 1;
      if (a == 1) emit(10);
      else emit(20);
      return 0;
    }
  |} in
  let before = Interp.run p in
  let res = Vrp.analyze p in
  let stats = Constprop.run res p in
  let after = Interp.run p in
  Alcotest.(check int64) "semantics kept" before.Interp.checksum
    after.Interp.checksum;
  Alcotest.(check bool) "a branch folded" true (stats.Constprop.folded_branches > 0)

let test_constprop_keeps_restores () =
  (* Callee-saved restore loads look dead but must survive DCE. *)
  let p = Minic.compile {|
    long helper(long x) {
      long a = x * 3;
      return a + 1;
    }
    int main() {
      long s = 0;
      for (int i = 0; i < 5; i++) s += helper(i);
      emit(s);
      return 0;
    }
  |} in
  let before = Interp.run p in
  let res = Vrp.analyze p in
  ignore (Constprop.run res p);
  let after = Interp.run p in
  Alcotest.(check int64) "callee-saved discipline intact"
    before.Interp.checksum after.Interp.checksum

(* --- VRS pipeline ---------------------------------------------------------------- *)

(* A program with a heavily skewed load value and a hot dependent region:
   the canonical specialization target. *)
let skewed_src = {|
    int data[2048];
    int main() {
      for (int i = 0; i < 2048; i++) {
        data[i] = (i % 64 == 0) ? i : 5;
      }
      long acc = 0;
      for (int r = 0; r < 12; r++) {
        for (int i = 0; i < 2048; i++) {
          int v = data[i];
          acc += v * v + (v << 3) - (v & 15);
        }
      }
      emit(acc);
      return 0;
    }
  |}

let test_vrs_specializes () =
  let p = Minic.compile skewed_src in
  let before = Interp.run p in
  let rep = Vrs.run p in
  Ogc_ir.Validate.program p;
  let after = Interp.run p in
  Alcotest.(check int64) "semantics preserved" before.Interp.checksum
    after.Interp.checksum;
  Alcotest.(check bool) "at least one point specialized" true
    (Vrs.specialized_count rep >= 1);
  Alcotest.(check bool) "clones exist" true (rep.Vrs.static_cloned > 0);
  Alcotest.(check bool) "guards exist" true
    (Hashtbl.length rep.Vrs.guard_iids > 0
     || Hashtbl.length rep.Vrs.guard_branch_iids > 0);
  (* The specialized value is the planted 5. *)
  Alcotest.(check bool) "specialized on the dominant value" true
    (List.exists
       (function
         | _, Vrs.Specialized { lo; hi; freq; _ } ->
           Int64.equal lo 5L && Int64.equal hi 5L && freq > 0.9
         | _ -> false)
       rep.Vrs.profiled)

let test_vrs_expensive_guards_stop_specialization () =
  let p = Minic.compile skewed_src in
  let rep =
    Vrs.run ~config:{ Vrs.default_config with test_cost_nj = 1000.0 } p
  in
  Alcotest.(check int) "nothing profitable at absurd cost" 0
    (Vrs.specialized_count rep)

let test_vrs_report_consistency () =
  let p = Minic.compile skewed_src in
  let rep = Vrs.run p in
  (* Every clone block label refers to an existing block. *)
  List.iter
    (fun (fname, l) ->
      let f = Prog.find_func p fname in
      Alcotest.(check bool) "clone label valid" true
        (Ogc_ir.Label.to_int l < Array.length f.Prog.blocks))
    rep.Vrs.clone_blocks;
  (* Assumptions point at clone entries. *)
  List.iter
    (fun (a : Vrp.assumption) ->
      Alcotest.(check bool) "assumption targets a clone" true
        (List.exists
           (fun (fn, l) ->
             String.equal fn a.Vrp.af && Ogc_ir.Label.equal l a.Vrp.alabel)
           rep.Vrs.clone_blocks))
    rep.Vrs.assumptions;
  Alcotest.(check bool) "eliminated <= cloned" true
    (rep.Vrs.static_eliminated <= rep.Vrs.static_cloned)

let test_vrs_no_candidates_is_noop () =
  (* A tiny program with nothing hot or wide: VRS must be a safe no-op. *)
  let p = Minic.compile {|
    int main() {
      char c = (char)7;
      emit(c + 1);
      return 0;
    }
  |} in
  let before = Interp.run p in
  let rep = Vrs.run p in
  let after = Interp.run p in
  Alcotest.(check int64) "noop keeps semantics" before.Interp.checksum
    after.Interp.checksum;
  Alcotest.(check int) "no specialization" 0 (Vrs.specialized_count rep)

let test_vrs_zero_test_guard () =
  (* A dominant zero value uses the single-instruction zero test
     (paper §3.2: testing for zero needs one instruction). *)
  let p = Minic.compile {|
    long data[1024];
    int main() {
      for (int i = 0; i < 1024; i++) {
        data[i] = (i % 128 == 0) ? 77777777 : 0;
      }
      long acc = 0;
      for (int r = 0; r < 16; r++)
        for (int i = 0; i < 1024; i++) {
          long v = data[i];
          acc += v * 3 + (v << 2);
        }
      emit(acc);
      return 0;
    }
  |} in
  let before = Interp.run p in
  let rep = Vrs.run p in
  let after = Interp.run p in
  Alcotest.(check int64) "semantics" before.Interp.checksum after.Interp.checksum;
  let specialized_on_zero =
    List.exists
      (function
        | _, Vrs.Specialized { lo = 0L; hi = 0L; _ } -> true
        | _ -> false)
      rep.Vrs.profiled
  in
  if specialized_on_zero then
    (* The zero guard adds no compare instructions, only a branch. *)
    Alcotest.(check bool) "zero test uses bare branch" true
      (Hashtbl.length rep.Vrs.guard_branch_iids > 0)

(* --- cleanup passes ---------------------------------------------------------- *)

module Cleanup = Ogc_core.Cleanup

let test_cleanup_threads_jumps () =
  (* The code generator produces jump-only step/join blocks; threading
     must collapse chains without changing behaviour. *)
  let p = Minic.compile {|
    int main() {
      long s = 0;
      for (int i = 0; i < 50; i++) {
        if (i & 1) { s += i; }
      }
      emit(s);
      return 0;
    }
  |} in
  let before = Interp.run p in
  let st = Cleanup.run p in
  Ogc_ir.Validate.program p;
  let after = Interp.run p in
  Alcotest.(check int64) "semantics kept" before.Interp.checksum
    after.Interp.checksum;
  Alcotest.(check bool) "some jumps threaded" true (st.Cleanup.threaded > 0);
  Alcotest.(check bool) "fewer dynamic instructions" true
    (after.Interp.steps < before.Interp.steps)

let test_cleanup_prunes_after_branch_fold () =
  let p = Minic.compile {|
    int main() {
      int flag = 0;
      if (flag) emit(111);
      else emit(222);
      return 0;
    }
  |} in
  let before = Interp.run p in
  let res = Vrp.analyze p in
  ignore (Constprop.run res p);
  (* branch folded; the 111 side is now unreachable *)
  let st = Cleanup.run p in
  Ogc_ir.Validate.program p;
  let after = Interp.run p in
  Alcotest.(check int64) "semantics" before.Interp.checksum after.Interp.checksum;
  Alcotest.(check bool) "pruned the dead arm" true (st.Cleanup.pruned_blocks > 0)

let test_cleanup_on_workloads () =
  List.iter
    (fun (w : Ogc_workloads.Workload.t) ->
      let p = Ogc_workloads.Workload.compile w Ogc_workloads.Workload.Train in
      let before = Interp.run p in
      ignore (Cleanup.run p);
      Ogc_ir.Validate.program p;
      let after = Interp.run p in
      Alcotest.(check int64)
        (w.Ogc_workloads.Workload.name ^ ": cleanup semantics")
        before.Interp.checksum after.Interp.checksum)
    Ogc_workloads.Workload.all

(* Regression: an aggressive cost setting on perl used to make DCE remove
   the callee-saved restore loads of a VRS-split epilogue block. *)
let test_vrs_aggressive_cost_on_perl () =
  let w = Ogc_workloads.Workload.find "perl" in
  let p = Ogc_workloads.Workload.compile w Ogc_workloads.Workload.Train in
  let before = (Interp.run p).Interp.checksum in
  let cfg = { Vrs.default_config with test_cost_nj = 0.9 } in
  ignore (Vrs.run ~config:cfg p);
  let after = (Interp.run p).Interp.checksum in
  Alcotest.(check int64) "train output preserved" before after;
  Ogc_workloads.Workload.set_scale p Ogc_workloads.Workload.Ref;
  let ref_after = (Interp.run p).Interp.checksum in
  let ref_expect =
    (Interp.run
       (Ogc_workloads.Workload.compile w Ogc_workloads.Workload.Ref))
      .Interp.checksum
  in
  Alcotest.(check int64) "ref output preserved" ref_expect ref_after

let test_vrs_constprop_ablation () =
  let p = Minic.compile skewed_src in
  let before = Interp.run p in
  let rep = Vrs.run ~config:{ Vrs.default_config with constprop = false } p in
  let after = Interp.run p in
  Alcotest.(check int64) "no-constprop semantics" before.Interp.checksum
    after.Interp.checksum;
  Alcotest.(check int) "nothing eliminated without constprop" 0
    rep.Vrs.static_eliminated

let () =
  Alcotest.run "vrs"
    [
      ( "tnv",
        [
          Alcotest.test_case "basics" `Quick test_tnv_basic;
          Alcotest.test_case "capacity" `Quick test_tnv_capacity;
          Alcotest.test_case "cleaning" `Quick test_tnv_cleaning;
          Alcotest.test_case "candidate ranges" `Quick test_tnv_ranges;
        ] );
      ( "constprop",
        [
          Alcotest.test_case "folds and removes" `Quick test_constprop_folds;
          Alcotest.test_case "branch folding" `Quick test_constprop_branch_fold;
          Alcotest.test_case "keeps restores" `Quick test_constprop_keeps_restores;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "specializes skewed loads" `Quick test_vrs_specializes;
          Alcotest.test_case "cost model can refuse" `Quick
            test_vrs_expensive_guards_stop_specialization;
          Alcotest.test_case "report consistency" `Quick test_vrs_report_consistency;
          Alcotest.test_case "no-op safety" `Quick test_vrs_no_candidates_is_noop;
          Alcotest.test_case "zero-test guard" `Quick test_vrs_zero_test_guard;
          Alcotest.test_case "aggressive cost regression" `Slow
            test_vrs_aggressive_cost_on_perl;
          Alcotest.test_case "constprop ablation" `Quick
            test_vrs_constprop_ablation;
        ] );
      ( "cleanup",
        [
          Alcotest.test_case "jump threading" `Quick test_cleanup_threads_jumps;
          Alcotest.test_case "unreachable pruning" `Quick
            test_cleanup_prunes_after_branch_fold;
          Alcotest.test_case "workloads survive" `Slow test_cleanup_on_workloads;
        ] );
    ]
