lib/isa/width.mli: Format
