(* Tests for the timing model: branch predictors, caches, and pipeline
   behaviour on programs with known characteristics. *)

module Bpred = Ogc_cpu.Bpred
module Cache = Ogc_cpu.Cache
module Mc = Ogc_cpu.Machine_config
module Pipeline = Ogc_cpu.Pipeline
module Policy = Ogc_gating.Policy
module Minic = Ogc_minic.Minic

(* --- branch predictors ----------------------------------------------------------- *)

let train p pc taken n =
  for _ = 1 to n do
    ignore (Bpred.predict p ~pc);
    Bpred.update p ~pc ~taken
  done

let test_bimodal_learns () =
  let p = Bpred.create_bimodal ~entries:64 in
  train p 4 true 10;
  Alcotest.(check bool) "predicts taken" true (Bpred.predict p ~pc:4);
  train p 4 false 10;
  Alcotest.(check bool) "re-learns not-taken" false (Bpred.predict p ~pc:4)

let test_bimodal_aliasing () =
  (* Same table index for pc and pc+entries: intentional aliasing. *)
  let p = Bpred.create_bimodal ~entries:16 in
  train p 3 true 10;
  Alcotest.(check bool) "aliased branch shares the counter" true
    (Bpred.predict p ~pc:19)

let test_gshare_learns_pattern () =
  (* An alternating branch is hard for bimodal but easy for gshare. *)
  let g = Bpred.create_gshare ~entries:1024 ~history_bits:8 in
  let correct = ref 0 in
  let taken = ref false in
  for i = 1 to 400 do
    taken := not !taken;
    let pred = Bpred.predict g ~pc:8 in
    if pred = !taken && i > 100 then incr correct;
    Bpred.update g ~pc:8 ~taken:!taken
  done;
  Alcotest.(check bool) "gshare learns alternation" true (!correct > 280)

let test_combined_beats_components () =
  let c = Bpred.of_config Mc.default in
  (* A strongly biased branch: everything should converge. *)
  train c 12 true 50;
  Alcotest.(check bool) "combined converges" true (Bpred.predict c ~pc:12);
  let _, mis = Bpred.stats c in
  Alcotest.(check bool) "few mispredictions" true (mis < 5)

(* --- caches ------------------------------------------------------------------------ *)

let test_cache_hit_miss () =
  let c = Cache.create { Mc.size_bytes = 1024; ways = 2; line_bytes = 32 } in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0L);
  Alcotest.(check bool) "hit" true (Cache.access c 0L);
  Alcotest.(check bool) "same line" true (Cache.access c 31L);
  Alcotest.(check bool) "next line misses" false (Cache.access c 32L);
  let acc, mis = Cache.stats c in
  Alcotest.(check (pair int int)) "stats" (4, 2) (acc, mis)

let test_cache_lru () =
  (* 2-way, 16 sets: three lines mapping to set 0 thrash with LRU. *)
  let c = Cache.create { Mc.size_bytes = 1024; ways = 2; line_bytes = 32 } in
  let line n = Int64.of_int (n * 512) in
  ignore (Cache.access c (line 0));
  ignore (Cache.access c (line 1));
  Alcotest.(check bool) "both resident" true
    (Cache.access c (line 0) && Cache.access c (line 1));
  ignore (Cache.access c (line 2));
  (* evicts line 0 (LRU) *)
  Alcotest.(check bool) "line1 still resident" true (Cache.access c (line 1));
  Alcotest.(check bool) "line0 evicted" false (Cache.access c (line 0))

let test_cache_capacity () =
  (* Streaming through twice the capacity must miss on the second pass. *)
  let c = Cache.create { Mc.size_bytes = 1024; ways = 2; line_bytes = 32 } in
  for i = 0 to 63 do
    ignore (Cache.access c (Int64.of_int (i * 32)))
  done;
  Cache.reset_stats c;
  for i = 0 to 63 do
    ignore (Cache.access c (Int64.of_int (i * 32)))
  done;
  let _, mis = Cache.stats c in
  Alcotest.(check bool) "stream misses" true (mis > 32)

(* --- pipeline --------------------------------------------------------------------- *)

let simulate src = Pipeline.simulate ~policy:Policy.No_gating (Minic.compile src)

let test_pipeline_basics () =
  let s = simulate {|
    int main() {
      long acc = 0;
      for (int i = 0; i < 1000; i++) acc += i;
      emit(acc);
      return 0;
    }
  |} in
  Alcotest.(check bool) "instructions counted" true (s.Pipeline.instructions > 5000);
  Alcotest.(check bool) "cycles positive" true (s.Pipeline.cycles > 0);
  let ipc = Pipeline.ipc s in
  Alcotest.(check bool) "ipc plausible for a 4-wide machine" true
    (ipc > 0.3 && ipc <= 4.0);
  Alcotest.(check bool) "branches seen" true (s.Pipeline.branches >= 1000);
  Alcotest.(check bool) "loop branch predictable" true
    (float_of_int s.Pipeline.mispredictions
     < 0.1 *. float_of_int s.Pipeline.branches);
  Alcotest.(check bool) "energy accumulated" true
    (Ogc_energy.Account.total s.Pipeline.energy > 0.0)

let test_pipeline_serial_vs_parallel () =
  (* A dependence chain must be slower than independent operations. *)
  let serial = simulate {|
    long x = 1;
    int main() {
      long a = x;
      for (int i = 0; i < 2000; i++) a = a * 3 + 1;
      emit(a);
      return 0;
    }
  |} in
  let parallel = simulate {|
    long x = 1;
    int main() {
      long a = x; long b = x; long c = x; long d = x;
      for (int i = 0; i < 2000; i++) {
        a += 3; b += 5; c += 7; d += 9;
      }
      emit(a + b + c + d);
      return 0;
    }
  |} in
  let ipc_s = Pipeline.ipc serial and ipc_p = Pipeline.ipc parallel in
  Alcotest.(check bool)
    (Printf.sprintf "parallel (%.2f) beats serial mul chain (%.2f)" ipc_p ipc_s)
    true (ipc_p > ipc_s)

let test_pipeline_cache_pressure () =
  (* Striding past the L1 must cost misses and cycles. *)
  let friendly = simulate {|
    long buf[16384];
    int main() {
      long s = 0;
      for (int r = 0; r < 32; r++)
        for (int i = 0; i < 512; i++) s += buf[i];
      emit(s);
      return 0;
    }
  |} in
  let hostile = simulate {|
    long buf[16384];
    int main() {
      long s = 0;
      for (int r = 0; r < 32; r++)
        for (int i = 0; i < 512; i++) s += buf[i * 32 & 16383];
      emit(s);
      return 0;
    }
  |} in
  Alcotest.(check bool) "friendly mostly hits" true
    (friendly.Pipeline.dcache_misses * 20 < friendly.Pipeline.dcache_accesses);
  Alcotest.(check bool) "hostile misses more" true
    (hostile.Pipeline.dcache_misses > friendly.Pipeline.dcache_misses * 4)

let test_pipeline_mispredict_cost () =
  (* Data-dependent unpredictable branches cost cycles per instruction. *)
  let predictable = simulate {|
    int seed = 1;
    int main() {
      long s = 0;
      for (int i = 0; i < 4000; i++) {
        if (i >= 0) s += 1; else s -= 1;
      }
      emit(s);
      return 0;
    }
  |} in
  let random = simulate {|
    int seed = 1;
    int main() {
      long s = 0;
      for (int i = 0; i < 4000; i++) {
        seed = seed * 1103515245 + 12345;
        if (((seed >> 16) & 1) == 1) s += 1; else s -= 1;
      }
      emit(s);
      return 0;
    }
  |} in
  Alcotest.(check bool) "random branches mispredict" true
    (random.Pipeline.mispredictions > predictable.Pipeline.mispredictions * 5)

let test_policy_energy_ordering () =
  let p = Minic.compile {|
    int data[512];
    int main() {
      long s = 0;
      for (int i = 0; i < 512; i++) data[i] = i & 63;
      for (int r = 0; r < 20; r++)
        for (int i = 0; i < 512; i++) s += data[i];
      emit(s);
      return 0;
    }
  |} in
  let e policy =
    Ogc_energy.Account.total (Pipeline.simulate ~policy p).Pipeline.energy
  in
  let none = e Policy.No_gating in
  let sig_ = e Policy.Hw_significance in
  let size = e Policy.Hw_size in
  Alcotest.(check bool) "gating saves energy" true (sig_ < none && size < none);
  Alcotest.(check bool) "significance at least as tight as size classes" true
    (sig_ <= size +. (0.05 *. none))

let test_timing_independent_of_policy () =
  (* Gating changes energy, never cycles. *)
  let p = Minic.compile {|
    int main() {
      long s = 0;
      for (int i = 0; i < 500; i++) s += i * i;
      emit(s);
      return 0;
    }
  |} in
  let c policy = (Pipeline.simulate ~policy p).Pipeline.cycles in
  let base = c Policy.No_gating in
  List.iter
    (fun pol -> Alcotest.(check int) (Policy.name pol) base (c pol))
    Policy.all

let test_window_pressure () =
  (* A long L2-missing load chain stalls dispatch via the 64-entry window:
     IPC must collapse well below the cache-friendly version. *)
  let slow = simulate {|
    long buf[65536];
    int seed = 7;
    int main() {
      long s = 0;
      int idx = 1;
      for (int i = 0; i < 3000; i++) {
        idx = (idx * 1103515245 + 12345) & 65535;
        s += buf[idx];       // dependent random walk
        idx = (int)(idx + s) & 65535;
      }
      emit(s);
      return 0;
    }
  |} in
  let fast = simulate {|
    long buf[65536];
    int main() {
      long s = 0;
      for (int i = 0; i < 3000; i++) s += buf[i & 511];
      emit(s);
      return 0;
    }
  |} in
  Alcotest.(check bool)
    (Printf.sprintf "random-walk IPC %.2f << streaming IPC %.2f"
       (Pipeline.ipc slow) (Pipeline.ipc fast))
    true
    (Pipeline.ipc slow < Pipeline.ipc fast)

let test_muldiv_contention () =
  (* One mul/div unit: a div-heavy loop is much slower than an add loop of
     the same instruction count. *)
  let divs = simulate {|
    int main() {
      long s = 1;
      for (int i = 1; i < 2000; i++) s += 100000 / i;
      emit(s);
      return 0;
    }
  |} in
  let adds = simulate {|
    int main() {
      long s = 1;
      for (int i = 1; i < 2000; i++) s += 100000 + i;
      emit(s);
      return 0;
    }
  |} in
  Alcotest.(check bool) "divides cost cycles" true
    (divs.Pipeline.cycles > adds.Pipeline.cycles * 2)

let test_store_load_dependence () =
  (* A tight store/load ping-pong through one memory word must be slower
     than the same arithmetic kept in registers. *)
  let through_memory = simulate {|
    long cell[1];
    int main() {
      cell[0] = 1;
      for (int i = 0; i < 3000; i++) {
        cell[0] = cell[0] + i;   // load depends on last store
      }
      emit(cell[0]);
      return 0;
    }
  |} in
  let in_registers = simulate {|
    int main() {
      long c = 1;
      for (int i = 0; i < 3000; i++) c = c + i;
      emit(c);
      return 0;
    }
  |} in
  Alcotest.(check bool)
    (Printf.sprintf "memory ping-pong (%d cyc) slower than registers (%d cyc)"
       through_memory.Pipeline.cycles in_registers.Pipeline.cycles)
    true
    (through_memory.Pipeline.cycles > in_registers.Pipeline.cycles)

let test_btb_warmup () =
  (* The same loop body: after warm-up, taken-branch target bubbles stop;
     a tiny run pays proportionally more front-end cost than a long one. *)
  let cyc n = (simulate (Printf.sprintf {|
    int main() {
      long s = 0;
      for (int i = 0; i < %d; i++) s += i;
      emit(s);
      return 0;
    }
  |} n)).Pipeline.cycles in
  let short_run = cyc 50 and long_run = cyc 5000 in
  let per_iter_short = float_of_int short_run /. 50.0 in
  let per_iter_long = float_of_int long_run /. 5000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "cold cycles/iter %.1f > warm %.1f" per_iter_short
       per_iter_long)
    true
    (per_iter_short > per_iter_long)

let test_memory_modes () =
  (* §2.4: tagging narrow values in the cache must beat sign-extending
     them for the software scheme, and never change timing. *)
  let p = Minic.compile {|
    char data[2048];
    int main() {
      long s = 0;
      for (int i = 0; i < 2048; i++) data[i] = (char)(i * 11);
      for (int r = 0; r < 10; r++)
        for (int i = 0; i < 2048; i++) s += data[i];
      emit(s);
      return 0;
    }
  |} in
  ignore (Ogc_core.Vrp.run p);
  let tagged =
    Pipeline.simulate ~memory_mode:Pipeline.Tagged ~policy:Policy.Software p
  in
  let sext =
    Pipeline.simulate ~memory_mode:Pipeline.Sign_extend ~policy:Policy.Software p
  in
  Alcotest.(check int) "same cycles" tagged.Pipeline.cycles sext.Pipeline.cycles;
  Alcotest.(check bool) "tagged cache saves energy on byte traffic" true
    (Ogc_energy.Account.total tagged.Pipeline.energy
     < Ogc_energy.Account.total sext.Pipeline.energy)

let test_machine_variants () =
  let p = Minic.compile {|
    int main() {
      long a = 0; long b = 0; long c = 0; long d = 0;
      for (int i = 0; i < 3000; i++) { a += i; b ^= i; c += b; d |= a; }
      emit(a + b + c + d);
      return 0;
    }
  |} in
  let cyc machine =
    (Pipeline.simulate ~machine ~policy:Policy.No_gating p).Pipeline.cycles
  in
  let n2 = cyc Mc.narrow2 and n4 = cyc Mc.default and n8 = cyc Mc.wide8 in
  Alcotest.(check bool)
    (Printf.sprintf "2-wide %d > 4-wide %d >= 8-wide %d" n2 n4 n8)
    true
    (n2 > n4 && n4 >= n8)

let test_machine_config_rows () =
  Alcotest.(check int) "table 2 has 11 rows" 11
    (List.length (Mc.rows Mc.default));
  Alcotest.(check int) "window" 64 Mc.default.Mc.window_size;
  Alcotest.(check int) "phys regs" 96 Mc.default.Mc.phys_regs

let () =
  Alcotest.run "cpu"
    [
      ( "bpred",
        [
          Alcotest.test_case "bimodal learns" `Quick test_bimodal_learns;
          Alcotest.test_case "bimodal aliases" `Quick test_bimodal_aliasing;
          Alcotest.test_case "gshare pattern" `Quick test_gshare_learns_pattern;
          Alcotest.test_case "combined" `Quick test_combined_beats_components;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "lru" `Quick test_cache_lru;
          Alcotest.test_case "capacity" `Quick test_cache_capacity;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "basics" `Quick test_pipeline_basics;
          Alcotest.test_case "dependences matter" `Quick
            test_pipeline_serial_vs_parallel;
          Alcotest.test_case "cache pressure" `Quick test_pipeline_cache_pressure;
          Alcotest.test_case "mispredict cost" `Quick test_pipeline_mispredict_cost;
          Alcotest.test_case "policy energy order" `Quick
            test_policy_energy_ordering;
          Alcotest.test_case "timing policy-independent" `Quick
            test_timing_independent_of_policy;
          Alcotest.test_case "window pressure" `Quick test_window_pressure;
          Alcotest.test_case "store-load dependence" `Quick
            test_store_load_dependence;
          Alcotest.test_case "btb warmup" `Quick test_btb_warmup;
          Alcotest.test_case "mul/div contention" `Quick test_muldiv_contention;
          Alcotest.test_case "memory modes (§2.4)" `Quick test_memory_modes;
          Alcotest.test_case "machine variants" `Quick test_machine_variants;
          Alcotest.test_case "machine config" `Quick test_machine_config_rows;
        ] );
    ]
