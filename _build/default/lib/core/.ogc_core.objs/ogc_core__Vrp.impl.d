lib/core/vrp.ml: Array Callgraph Cfg Format Hashtbl Instr Int64 Interp Interval Label List Ogc_ir Ogc_isa Option Prog Reg String Usedef Width
