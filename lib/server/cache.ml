(* Content-addressed analysis cache: MD5 of the canonical request ->
   serialized result payload.  Exact LRU: every hit restamps its entry
   with a monotonic tick, and eviction removes the minimum stamp (an
   O(capacity) scan — capacities are a few hundred entries, and each
   miss it amortizes costs a full compile + analysis + simulation). *)

type stats = {
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
  disk_hits : int;
}

type entry = { value : string; mutable stamp : int }

type t = {
  capacity : int;
  dir : string option;
  tbl : (string, entry) Hashtbl.t;
  m : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable disk_hits : int;
}

let key_of_string s = Digest.to_hex (Digest.string s)

let create ?(capacity = 256) ?dir () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> Unix.mkdir d 0o755
  | _ -> ());
  { capacity = max 1 capacity;
    dir;
    tbl = Hashtbl.create 64;
    m = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    disk_hits = 0 }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let path_of t key =
  match t.dir with
  | None -> None
  | Some d -> Some (Filename.concat d (key ^ ".json"))

let read_file path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s
  end

(* Atomic publish: a crashed writer never leaves a torn cache file. *)
let write_file path value =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc value;
  close_out oc;
  Sys.rename tmp path

let insert_locked t key value =
  if not (Hashtbl.mem t.tbl key) then begin
    if Hashtbl.length t.tbl >= t.capacity then begin
      let victim = ref None in
      Hashtbl.iter
        (fun k e ->
          match !victim with
          | Some (_, s) when s <= e.stamp -> ()
          | _ -> victim := Some (k, e.stamp))
        t.tbl;
      match !victim with
      | Some (k, _) ->
        Hashtbl.remove t.tbl k;
        t.evictions <- t.evictions + 1
      | None -> ()
    end;
    t.tick <- t.tick + 1;
    Hashtbl.add t.tbl key { value; stamp = t.tick }
  end

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
        t.tick <- t.tick + 1;
        e.stamp <- t.tick;
        t.hits <- t.hits + 1;
        Some e.value
      | None -> (
        match Option.map read_file (path_of t key) with
        | Some (Some value) ->
          (* Disk hit: promote into the in-memory tier. *)
          insert_locked t key value;
          t.hits <- t.hits + 1;
          t.disk_hits <- t.disk_hits + 1;
          Some value
        | _ ->
          t.misses <- t.misses + 1;
          None))

let store t key value =
  locked t (fun () ->
      insert_locked t key value;
      match path_of t key with
      | Some path when not (Sys.file_exists path) -> write_file path value
      | _ -> ())

let stats t =
  locked t (fun () ->
      { entries = Hashtbl.length t.tbl;
        capacity = t.capacity;
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        disk_hits = t.disk_hits })
