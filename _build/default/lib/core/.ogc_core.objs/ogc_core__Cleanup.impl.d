lib/core/cleanup.ml: Array Cfg Label List Ogc_ir Prog
