type t = {
  ways : int;
  sets : int;
  line_shift : int;
  (* tags.(set * ways + way); -1 = invalid.  [lru] holds a per-line
     timestamp; the smallest stamp in a set is the LRU victim. *)
  tags : int array;
  lru : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let log2 n =
  let rec go k v = if v >= n then k else go (k + 1) (v * 2) in
  go 0 1

let create (g : Machine_config.cache_geometry) =
  let lines = g.size_bytes / g.line_bytes in
  let sets = max 1 (lines / g.ways) in
  {
    ways = g.ways;
    sets;
    line_shift = log2 g.line_bytes;
    tags = Array.make (sets * g.ways) (-1);
    lru = Array.make (sets * g.ways) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let access t addr =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let line = Int64.to_int (Int64.shift_right_logical addr t.line_shift) in
  let set = line mod t.sets in
  let tag = line / t.sets in
  let base = set * t.ways in
  let hit = ref false in
  (try
     for w = 0 to t.ways - 1 do
       if t.tags.(base + w) = tag then begin
         t.lru.(base + w) <- t.clock;
         hit := true;
         raise_notrace Exit
       end
     done
   with Exit -> ());
  if not !hit then begin
    t.misses <- t.misses + 1;
    (* Fill, evicting the least recently used way. *)
    let victim = ref 0 in
    for w = 1 to t.ways - 1 do
      if t.lru.(base + w) < t.lru.(base + !victim) then victim := w
    done;
    t.tags.(base + !victim) <- tag;
    t.lru.(base + !victim) <- t.clock
  end;
  !hit

let stats t = (t.accesses, t.misses)

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0
