lib/harness/results.mli: Instr Ogc_core Ogc_cpu Ogc_energy Ogc_isa Width
