(** Signed 64-bit value intervals — the abstract domain of VRP (paper §2).

    An interval [\[lo, hi\]] ([lo <= hi] as signed 64-bit integers)
    over-approximates the set of values a register may hold.  All transfer
    functions are {e conservative}: every concrete result of the modelled
    operation on values drawn from the input intervals lies in the result
    interval.  When an operation at width [w] may overflow [w] bits, the
    result widens to the full signed range of [w] — the paper's wrap-around
    rule (§2.2.1): "if overflow is possible then the calculated range takes
    the wrap around behavior into account".

    The soundness property is checked exhaustively by property-based tests:
    for every operation [op] and all [a ∈ ia], [b ∈ ib],
    [Instr.eval_alu op w a b ∈ forward op w ia ib]. *)

open Ogc_isa

type t = private { lo : int64; hi : int64 }

val v : int64 -> int64 -> t
(** [v lo hi]; raises [Invalid_argument] when [lo > hi]. *)

val top : t
(** The full signed 64-bit range. *)

val const : int64 -> t
val bool : t
(** [\[0, 1\]], the range of compare results. *)

val is_const : t -> int64 option
val equal : t -> t -> bool
val contains : t -> int64 -> bool
val subset : t -> t -> bool

val full : Width.t -> t
(** Full signed range of a width. *)

val unsigned_max : Width.t -> int64
(** [2^bits - 1] for sub-64-bit widths; [Int64.max_int] for [W64]. *)

val zero_extended : Width.t -> t
(** [\[0, 2^bits-1\]]: the range of a zero-extending load or mask at
    width < 64; [top] for [W64]. *)

val join : t -> t -> t
val meet : t -> t -> t option
(** [None] when the intersection is empty. *)

val width : t -> Width.t
(** Narrowest two's-complement width whose signed range covers the
    interval. *)

val width_unsigned : t -> Width.t
(** Narrowest width [w] with the interval inside [\[0, 2^(bits w) - 1\]]
    — every member recoverable from its low [w] bits by
    {e zero}-extension; [W64] when the interval admits negatives. *)

(** {1 Forward transfer functions}

    Each takes the operation width and the input intervals, in instruction
    operand order. *)

val forward_alu : Instr.alu_op -> Width.t -> t -> t -> t

val forward_cmp : t
(** Compares produce [\[0,1\]]. *)

val forward_cmp_op : Instr.cmp_op -> Width.t -> t -> t -> t
(** Like {!forward_cmp} but collapses to a constant when the operand
    ranges decide the comparison (e.g. [\[0,5\] < \[9,9\]] is always 1) —
    this is what lets constant propagation fold guard branches inside
    specialized regions. *)

val forward_msk : Width.t -> t -> t
val forward_sext : Width.t -> t -> t
val forward_load : Width.t -> signed:bool -> t
val forward_cmov : Width.t -> old:t -> src:t -> t
(** Join of the (truncated) moved value and the preserved old value. *)

(** {1 Backward refinements}

    [backward_*] functions narrow an {e input} interval given the output
    interval; they return [None] when the constraint system is infeasible
    (dead code), and the unrefined input when nothing better is known.
    Backward refinement through wrapping arithmetic is only performed when
    the forward ranges prove that no overflow can occur (§2.2.5 forbids
    hiding overflows). *)

val backward_add : width:Width.t -> out:t -> this:t -> other:t -> t option
(** Refine one addend: [this ∈ out - other] when the add is overflow-free. *)

val backward_sub_lhs : width:Width.t -> out:t -> this:t -> other:t -> t option
val backward_sub_rhs : width:Width.t -> out:t -> this:t -> other:t -> t option

val backward_store : Width.t -> t -> t
(** A width-[w] store only keeps the low [w] bits of the stored value
    semantically relevant — the useful range of the source is at most the
    signed range of [w] joined with its zero-extended range. *)

(** {1 Branch refinement support} *)

val refine_cond : Instr.cond -> t -> taken:bool -> t option
(** Range of a register tested against zero by a conditional branch, on
    the taken (condition holds) or fall-through edge. *)

val refine_cmp_lhs : Instr.cmp_op -> Width.t -> lhs:t -> rhs:t -> holds:bool -> t option
(** Refine the left operand of a compare known to evaluate to
    [holds], when both operand ranges fit in the compare width.  Unsigned
    compares refine only when both sides are known non-negative. *)

val refine_cmp_rhs : Instr.cmp_op -> Width.t -> lhs:t -> rhs:t -> holds:bool -> t option

val pp : Format.formatter -> t -> unit
val to_string : t -> string
