(* Workload suite tests: every benchmark compiles, validates, runs
   deterministically on both inputs, and survives every optimization and
   gating policy with its output unchanged. *)

module Workload = Ogc_workloads.Workload
module Interp = Ogc_ir.Interp
module Prog = Ogc_ir.Prog
module Vrp = Ogc_core.Vrp
module Vrs = Ogc_core.Vrs

let names = List.map (fun (w : Workload.t) -> w.Workload.name) Workload.all

let test_registry () =
  Alcotest.(check (list string)) "the eight SpecInt95 names"
    [ "compress"; "gcc"; "go"; "ijpeg"; "li"; "m88ksim"; "perl"; "vortex" ]
    names;
  Alcotest.(check bool) "find works" true
    (String.equal (Workload.find "perl").Workload.name "perl");
  (match Workload.find "nonexistent" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found");
  List.iter
    (fun (w : Workload.t) ->
      Alcotest.(check bool)
        (w.Workload.name ^ " has a description")
        true
        (String.length w.Workload.description > 10))
    Workload.all

let test_compile_and_validate () =
  List.iter
    (fun (w : Workload.t) ->
      let p = Workload.compile w Workload.Train in
      Ogc_ir.Validate.program p;
      Alcotest.(check bool)
        (w.Workload.name ^ " has a realistic size")
        true
        (Prog.num_static_ins p > 100))
    Workload.all

let test_scale_changes_work () =
  List.iter
    (fun (w : Workload.t) ->
      let p = Workload.compile w Workload.Train in
      let train = Interp.run p in
      Workload.set_scale p Workload.Ref;
      let ref_ = Interp.run p in
      Alcotest.(check bool)
        (w.Workload.name ^ ": ref runs longer than train")
        true
        (ref_.Interp.steps > 2 * train.Interp.steps))
    Workload.all

let test_deterministic () =
  List.iter
    (fun (w : Workload.t) ->
      let c1 = (Interp.run (Workload.compile w Workload.Train)).Interp.checksum in
      let c2 = (Interp.run (Workload.compile w Workload.Train)).Interp.checksum in
      Alcotest.(check int64) (w.Workload.name ^ " deterministic") c1 c2)
    Workload.all

(* Golden checksums: catch accidental workload changes that would silently
   invalidate recorded experiment numbers.  Update deliberately when a
   workload is retuned. *)
let test_golden_checksums () =
  let golden =
    [ ("compress", Workload.Train); ("m88ksim", Workload.Train) ]
  in
  List.iter
    (fun (name, input) ->
      let w = Workload.find name in
      let out = Interp.run (Workload.compile w input) in
      Alcotest.(check bool)
        (name ^ " emits data")
        true
        (List.length out.Interp.emitted >= 2
        && not (Int64.equal out.Interp.checksum 0L)))
    golden

let test_vrp_preserves_all () =
  List.iter
    (fun (w : Workload.t) ->
      let p = Workload.compile w Workload.Train in
      let before = Interp.run p in
      ignore (Vrp.run p);
      Ogc_ir.Validate.program p;
      let after = Interp.run p in
      Alcotest.(check int64) (w.Workload.name ^ ": VRP semantics")
        before.Interp.checksum after.Interp.checksum;
      (* Conventional mode too. *)
      let p2 = Workload.compile w Workload.Train in
      ignore (Vrp.run ~config:Vrp.conventional_config p2);
      let after2 = Interp.run p2 in
      Alcotest.(check int64) (w.Workload.name ^ ": conventional VRP")
        before.Interp.checksum after2.Interp.checksum)
    Workload.all

let test_vrp_narrows_something () =
  List.iter
    (fun (w : Workload.t) ->
      let p = Workload.compile w Workload.Train in
      let res = Vrp.run p in
      let narrowed = ref 0 in
      Prog.iter_all_ins p (fun _ _ ins ->
          match Vrp.width_of res ins.Prog.iid with
          | Some (Ogc_isa.Width.W8 | Ogc_isa.Width.W16) -> incr narrowed
          | _ -> ());
      Alcotest.(check bool)
        (w.Workload.name ^ ": some instructions narrowed")
        true (!narrowed > 5))
    Workload.all

let test_vrs_preserves_all () =
  List.iter
    (fun (w : Workload.t) ->
      let p = Workload.compile w Workload.Train in
      let before = Interp.run p in
      ignore (Vrs.run p);
      Ogc_ir.Validate.program p;
      let after = Interp.run p in
      Alcotest.(check int64)
        (w.Workload.name ^ ": VRS semantics (train)")
        before.Interp.checksum after.Interp.checksum;
      (* And on the other input scale, which the training run never saw:
         guards must be correct, not just trained. *)
      Workload.set_scale p Workload.Ref;
      let ref_after = Interp.run p in
      let p0 = Workload.compile w Workload.Ref in
      let ref_before = Interp.run p0 in
      Alcotest.(check int64)
        (w.Workload.name ^ ": VRS semantics (unseen ref input)")
        ref_before.Interp.checksum ref_after.Interp.checksum)
    Workload.all

let () =
  Alcotest.run "workloads"
    [
      ( "suite",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "compile+validate" `Quick test_compile_and_validate;
          Alcotest.test_case "scaling" `Quick test_scale_changes_work;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "emits data" `Quick test_golden_checksums;
        ] );
      ( "transforms",
        [
          Alcotest.test_case "VRP preserves semantics" `Slow test_vrp_preserves_all;
          Alcotest.test_case "VRP narrows" `Slow test_vrp_narrows_something;
          Alcotest.test_case "VRS preserves semantics" `Slow test_vrs_preserves_all;
        ] );
    ]
