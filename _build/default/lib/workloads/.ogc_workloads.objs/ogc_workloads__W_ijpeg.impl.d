lib/workloads/w_ijpeg.ml: Printf
