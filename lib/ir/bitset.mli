(** Fixed-capacity mutable bitsets for dataflow. *)

type t

val create : int -> t
(** All bits clear. *)

val copy : t -> t
val length : t -> int
val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool

val reset : t -> unit
(** Clear every bit, in place. *)

(** [copy_into ~into src] overwrites [into] with [src]'s bits.  The two
    sets must have the same capacity. *)
val copy_into : into:t -> t -> unit

(** [union_into ~into src] ors [src] into [into]; returns [true] when
    [into] changed. *)
val union_into : into:t -> t -> bool

(** [diff_into ~into src] removes [src]'s bits from [into]. *)
val diff_into : into:t -> t -> unit

val equal : t -> t -> bool
val iter : t -> (int -> unit) -> unit
val elements : t -> int list
val cardinal : t -> int
