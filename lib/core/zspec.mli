(** Zero-value specialization — the dedicated min=max=0 variant of VRS
    (AZP-style zero fast paths, see PAPERS.md).

    Candidates whose value profile says the produced value is zero with
    frequency >= [min_freq] get a single-instruction zero-test guard
    and a clone of the dependent region constant-folded under the x = 0
    assumption.  Much cheaper to decide than full VRS (no range sweep)
    while capturing its single highest-yield case. *)

open Ogc_ir

(** [specialize ?config analysis prog] applies the zero back half to
    [prog] in place; same contract as {!Vrs.specialize}.  Records
    zspec run/guard metrics and a [zspec] span. *)
val specialize : ?config:Vrs.config -> Vrs.analysis -> Prog.t -> Vrs.report

(** [run ?config ?vrp ?bb ?values prog] is {!Vrs.analyze} followed by
    {!specialize}: the whole zero-specialization pipeline in place.
    [values] substitutes a streamed wire profile for the value-profiling
    training run (see {!Vrs.analyze}). *)
val run :
  ?config:Vrs.config ->
  ?vrp:Vrp.result ->
  ?bb:Interp.bb_counts * int ->
  ?values:(int, (int64 * int) list) Hashtbl.t ->
  Prog.t ->
  Vrs.report
