(** Fixed-size [Domain] worker pool for embarrassingly parallel task
    lists.

    The experiment harness shards its workload × binary-version × policy
    grid over this pool.  Semantics are strictly deterministic: results
    come back in submission order regardless of completion order, and a
    task's exception is re-raised in the caller (the lowest-index failure
    wins when several tasks fail), so parallel runs are observationally
    identical to sequential ones.

    Parallelism degree, in decreasing priority:

    - the [?jobs] argument when given;
    - the [OGC_JOBS] environment variable;
    - [Domain.recommended_domain_count ()].

    When the resolved degree is 1 (single-core machine, [OGC_JOBS=1]) no
    domain is ever spawned and the pool degrades to a plain sequential
    map. *)

(** Instrumentation of one [map_timed] run. *)
type stats = {
  jobs : int;  (** worker count actually used *)
  wall_s : float;  (** wall-clock of the whole map *)
  task_s : float array;  (** per-task wall-clock, in submission order *)
}

val jobs_from_env : unit -> int option
(** [OGC_JOBS] as a positive integer, or [None] when unset/unparsable. *)

val default_jobs : unit -> int
(** [OGC_JOBS], else [Domain.recommended_domain_count ()], clamped to
    [1, 64]. *)

val resolve_jobs : int option -> int
(** [resolve_jobs (Some n)] clamps [n]; [resolve_jobs None] is
    [default_jobs ()].  [Some 0] (the CLI's "auto") behaves like
    [None]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map.  Workers pull tasks from a shared
    queue; the calling domain participates as a worker, so [jobs] is the
    total number of domains running tasks. *)

val map_timed : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list * stats
(** [map] plus per-task and whole-run timing. *)
