(* SpecInt95 `m88ksim` surrogate: an instruction-set simulator for a tiny
   RISC machine.  Dominated by field extraction (mask/shift), opcode
   dispatch with a heavily skewed mix, and register/dmem array traffic —
   the decode-loop profile of the original Motorola 88k simulator.  The
   skewed opcode field is a natural value-range-specialization target. *)

let name = "m88ksim"
let description = "tiny-RISC instruction-set simulator (decode/dispatch loop)"

let source () =
  Printf.sprintf
    {|
// m88ksim: words are op(4) rd(4) rs1(4) rs2(4) imm(16).
long input_scale = 3;
int seed = 2468;
long imem[2048];
long regs_[16];
long dmem[256];

int rnd() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 0x7fff;
}

void gen_program(int n) {
  for (int i = 0; i < n; i++) {
    int r = rnd() & 15;
    int op = 0;                 // skewed mix: half the stream is ADDI
    if (r < 8) op = 0;          // addi
    else if (r < 10) op = 1;    // add
    else if (r < 11) op = 2;    // sub
    else if (r < 12) op = 3;    // and
    else if (r < 13) op = 4;    // shl
    else if (r < 14) op = 5;    // load
    else if (r < 15) op = 6;    // store
    else op = 7;                // branch if zero (forward, short)
    int rd = rnd() & 15;
    int rs1 = rnd() & 15;
    int rs2 = rnd() & 15;
    int imm = rnd() & 0xffff;
    if (op == 7) imm = 2 + (imm & 3);
    imem[i] = (((((op << 4 | rd) << 4 | rs1) << 4) | rs2) << 16) | imm;
  }
}

int main() {
  int n = 2048;
  gen_program(n);
  for (int i = 0; i < 16; i++) regs_[i] = i * 3;
  for (int i = 0; i < 256; i++) dmem[i] = i ^ 42;
  long pc = 0;
  long executed = 0;
  long loads = 0;
  long branches = 0;
  int budget = 10000 * (int)input_scale;
  while (budget > 0) {
    budget--;
    long w = imem[pc];
    int op = (int)(w >> 28) & 15;
    int rd = (int)(w >> 24) & 15;
    int rs1 = (int)(w >> 20) & 15;
    int rs2 = (int)(w >> 16) & 15;
    int imm = (int)(w & 0xffff);
    executed++;
    if (op == 0) {
      regs_[rd] = regs_[rs1] + imm;
    } else if (op == 1) {
      regs_[rd] = regs_[rs1] + regs_[rs2];
    } else if (op == 2) {
      regs_[rd] = regs_[rs1] - regs_[rs2];
    } else if (op == 3) {
      regs_[rd] = regs_[rs1] & regs_[rs2];
    } else if (op == 4) {
      regs_[rd] = regs_[rs1] << (imm & 7);
    } else if (op == 5) {
      regs_[rd] = dmem[(int)(regs_[rs1] + imm) & 255];
      loads++;
    } else if (op == 6) {
      dmem[(int)(regs_[rs1] + imm) & 255] = regs_[rd];
    } else {
      branches++;
      if (regs_[rs1] == 0) pc += imm;
    }
    pc++;
    if (pc >= n) pc = 0;
  }
  long sum = 0;
  for (int i = 0; i < 16; i++) sum = sum * 31 + regs_[i];
  for (int i = 0; i < 256; i++) sum += dmem[i];
  emit(executed);
  emit(loads);
  emit(branches);
  emit(sum);
  return 0;
}
|}

