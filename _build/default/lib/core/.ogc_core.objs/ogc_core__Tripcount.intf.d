lib/core/tripcount.mli: Instr Interval Label Ogc_ir Ogc_isa Prog Reg
