(** Operand-gating policies (paper §4).

    A policy decides, per dynamic value, how many of the 8 data-path bytes
    are active; the energy model charges gated-off bytes only a small
    residual.  The software policy gates from the instruction's encoded
    width; the hardware policies gate from the dynamic value (at the price
    of per-word tag bits); the cooperative policies combine both. *)

open Ogc_isa

type t =
  | No_gating
  | Software  (** opcode-width gating after VRP/VRS re-encoding *)
  | Hw_significance  (** per-byte significance compression, 7 tag bits *)
  | Hw_size  (** {1,2,5,8}-byte size compression, 2 tag bits *)
  | Sw_plus_significance
  | Sw_plus_size

val all : t list
val name : t -> string

(** [active_bytes policy ~width ~value] is the number of data-path bytes
    that must stay powered for a value [value] flowing through an
    instruction encoded at [width]. *)
val active_bytes : t -> width:Width.t -> value:int64 -> int

(** Tag storage overhead in bits per 64-bit word carried through the
    pipeline ([0] for ungated and software-only policies — the opcode
    carries the width). *)
val tag_bits : t -> int

(** Tag storage overhead per value {e in the caches} (paper §2.4: the
    software scheme stores two size bits with each memory value so narrow
    values stay narrow in the cache; the hardware schemes store their own
    tags). *)
val memory_tag_bits : t -> int

(** Does the policy use the software (opcode) widths?  Determines which
    binary version an experiment must run. *)
val uses_software_widths : t -> bool
