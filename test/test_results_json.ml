(* Machine-readable results: JSON printer/parser, collection round-trip,
   parallel-vs-sequential byte identity, and the CI regression diff. *)

module Results = Ogc_harness.Results
module Experiments = Ogc_harness.Experiments
module Json = Ogc_json.Json
module Account = Ogc_energy.Account
module Pipeline = Ogc_cpu.Pipeline

(* --- the Json module itself ------------------------------------------------ *)

let test_json_basics () =
  let v =
    Json.Obj
      [
        ("a", Json.Int (-3));
        ("b", Json.Float 0.1);
        ("c", Json.Str "a \"quoted\"\nline\t\\");
        ("d", Json.Arr [ Json.Bool true; Json.Bool false; Json.Null ]);
        ("empty_arr", Json.Arr []);
        ("empty_obj", Json.Obj []);
        ("nested", Json.Obj [ ("x", Json.Arr [ Json.Int 1; Json.Float 2.5 ]) ]);
      ]
  in
  let s = Json.to_string v in
  Alcotest.(check bool) "pretty round-trip" true (Json.of_string s = v);
  let s2 = Json.to_string ~indent:false v in
  Alcotest.(check bool) "compact round-trip" true (Json.of_string s2 = v);
  (* Printing is a fixed point: parse-then-print returns the same bytes. *)
  Alcotest.(check string) "stable bytes" s
    (Json.to_string (Json.of_string s));
  (* Doubles survive exactly, including ugly ones. *)
  List.iter
    (fun f ->
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Json.Float f' -> Alcotest.(check (float 0.0)) "exact float" f f'
      | Json.Int i -> Alcotest.(check (float 0.0)) "as int" f (float_of_int i)
      | _ -> Alcotest.fail "not a number")
    [ 0.1; 1.0 /. 3.0; 1e-300; 6.02e23; -0.0; 12345.0 ]

let test_json_errors () =
  let bad s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\" 1}";
  bad "tru";
  bad "\"unterminated";
  bad "1 2";
  Alcotest.check_raises "shape error names the member"
    (Json.Parse_error "member \"n\": expected an integer")
    (fun () -> ignore (Json.get_int "n" (Json.Obj [ ("n", Json.Str "x") ])))

(* --- collection round-trip -------------------------------------------------- *)

(* One small workload, collected once and shared by the tests below. *)
let collected = lazy (Results.collect ~quick:true ~only:[ "compress" ] ~jobs:2 ())

let test_roundtrip () =
  let r = Lazy.force collected in
  let j = Results.to_json r in
  let s = Json.to_string j in
  let r' = Results.of_json (Json.of_string s) in
  Alcotest.(check string) "to_json is a fixed point under of_json" s
    (Json.to_string (Results.to_json r'));
  (* The reconstruction renders every table and figure identically. *)
  Alcotest.(check string) "all renderers agree" (Experiments.render_all r)
    (Experiments.render_all r');
  Alcotest.(check string) "headline agrees"
    (Experiments.render_headline (Experiments.headline r))
    (Experiments.render_headline (Experiments.headline r'))

let test_parallel_collection_identical () =
  (* The acceptance bar: the collection grid sharded over domains gives
     byte-identical reports to the sequential run.  Analyze wall times
     are clock noise, not results — scrub them before comparing; the
     deterministic visit/round/def counters stay under the check. *)
  let scrub (r : Results.t) =
    { r with
      Results.analyze =
        List.map
          (fun (n, ab) ->
            (n, { ab with Results.ab_seconds = 0.0; ab_naive_seconds = 0.0 }))
          r.Results.analyze }
  in
  let r1 = scrub (Results.collect ~quick:true ~only:[ "compress" ] ~jobs:1 ()) in
  let r2 = scrub (Lazy.force collected) in
  Alcotest.(check string) "render_all identical" (Experiments.render_all r1)
    (Experiments.render_all r2);
  Alcotest.(check string) "json identical"
    (Json.to_string (Results.to_json r1))
    (Json.to_string (Results.to_json r2))

(* --- regression diff --------------------------------------------------------- *)

let scale_energy factor (s : Pipeline.stats) =
  { s with
    Pipeline.energy =
      Account.of_values
        (List.map (fun (st, e) -> (st, e *. factor))
           (Account.by_structure s.Pipeline.energy)) }

let scale_cycles factor (s : Pipeline.stats) =
  { s with Pipeline.cycles = int_of_float (float_of_int s.Pipeline.cycles *. factor) }

let test_regression_diff () =
  let r = Lazy.force collected in
  Alcotest.(check int) "self-diff is clean" 0
    (List.length
       (Results.compare_to_baseline ~time_tolerance:0.5 ~baseline:r ~current:r ~threshold:0.05));
  (* A baseline whose vrp_sw burned half the energy: the current run now
     regresses on exactly that cell's energy metric. *)
  let better =
    { r with
      Results.workloads =
        List.map
          (fun w -> { w with Results.vrp_sw = scale_energy 0.5 w.Results.vrp_sw })
          r.Results.workloads }
  in
  let regs =
    Results.compare_to_baseline ~time_tolerance:0.5 ~baseline:better ~current:r ~threshold:0.05
  in
  Alcotest.(check int) "one energy regression" 1 (List.length regs);
  let reg = List.hd regs in
  Alcotest.(check string) "config" "vrp_sw" reg.Results.r_config;
  Alcotest.(check string) "metric" "energy_nj" reg.Results.r_metric;
  Alcotest.(check bool) "~100% worse" true
    (reg.Results.r_delta_frac > 0.9 && reg.Results.r_delta_frac < 1.1);
  Alcotest.(check bool) "report renders" true
    (String.length (Results.render_regressions regs) > 40);
  (* A faster baseline trips the IPC metric. *)
  let faster =
    { r with
      Results.workloads =
        List.map
          (fun w ->
            { w with Results.base_none = scale_cycles 0.5 w.Results.base_none })
          r.Results.workloads }
  in
  let regs =
    Results.compare_to_baseline ~time_tolerance:0.5 ~baseline:faster ~current:r ~threshold:0.05
  in
  Alcotest.(check int) "one ipc regression" 1 (List.length regs);
  Alcotest.(check string) "ipc metric" "ipc" (List.hd regs).Results.r_metric;
  (* Within tolerance: a 3% energy bump under a 5% threshold is clean. *)
  let slightly =
    { r with
      Results.workloads =
        List.map
          (fun w -> { w with Results.vrp_sw = scale_energy 0.97 w.Results.vrp_sw })
          r.Results.workloads }
  in
  Alcotest.(check int) "3% < 5% tolerance" 0
    (List.length
       (Results.compare_to_baseline ~time_tolerance:0.5 ~baseline:slightly ~current:r
          ~threshold:0.05));
  (* Mode mismatch fails loudly rather than comparing nothing. *)
  let full = { r with Results.quick = false } in
  let regs =
    Results.compare_to_baseline ~time_tolerance:0.5 ~baseline:full ~current:r ~threshold:0.05
  in
  Alcotest.(check int) "mode mismatch is one pseudo-regression" 1
    (List.length regs);
  Alcotest.(check string) "mode cell" "mode" (List.hd regs).Results.r_config

let test_perturbed_json_baseline () =
  (* End-to-end through the serialized form, as CI uses it: write the
     baseline, reload it, perturb the current run, expect a hit. *)
  let r = Lazy.force collected in
  let baseline = Results.of_json (Json.of_string (Json.to_string (Results.to_json r))) in
  let current =
    { r with
      Results.workloads =
        List.map
          (fun w ->
            { w with Results.vrs50_sig = scale_energy 1.2 w.Results.vrs50_sig })
          r.Results.workloads }
  in
  let regs =
    Results.compare_to_baseline ~time_tolerance:0.5 ~baseline ~current ~threshold:0.05
  in
  Alcotest.(check int) "20% bump caught through JSON" 1 (List.length regs);
  Alcotest.(check string) "right cell" "vrs50_sig"
    (List.hd regs).Results.r_config

let () =
  Alcotest.run "results-json"
    [
      ( "json",
        [
          Alcotest.test_case "print/parse basics" `Quick test_json_basics;
          Alcotest.test_case "parse errors" `Quick test_json_errors;
        ] );
      ( "results",
        [
          Alcotest.test_case "of_json . to_json round-trip" `Slow test_roundtrip;
          Alcotest.test_case "parallel = sequential" `Slow
            test_parallel_collection_identical;
          Alcotest.test_case "regression diff" `Slow test_regression_diff;
          Alcotest.test_case "diff through serialized baseline" `Slow
            test_perturbed_json_baseline;
        ] );
    ]
