type t = {
  capacity : int;
  clean_interval : int;
  counts : (int64, int ref) Hashtbl.t;
  mutable total : int;
  mutable since_clean : int;
}

let create ?(capacity = 8) ?(clean_interval = 4096) () =
  {
    capacity;
    clean_interval;
    counts = Hashtbl.create 16;
    total = 0;
    since_clean = 0;
  }

let clean t =
  (* Evict the least frequently used half so new values can enter. *)
  let entries =
    Hashtbl.fold (fun v c acc -> (v, !c) :: acc) t.counts []
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  in
  let keep = max 1 (t.capacity / 2) in
  List.iteri
    (fun i (v, _) -> if i >= keep then Hashtbl.remove t.counts v)
    entries

let observe t v =
  t.total <- t.total + 1;
  t.since_clean <- t.since_clean + 1;
  (match Hashtbl.find_opt t.counts v with
  | Some c -> incr c
  | None ->
    if Hashtbl.length t.counts < t.capacity then
      Hashtbl.replace t.counts v (ref 1));
  if t.since_clean >= t.clean_interval then begin
    t.since_clean <- 0;
    clean t
  end

let total t = t.total

let of_entries ?(capacity = 8) ?(clean_interval = 4096) entries =
  (* Install externally observed (value, count) pairs — a wire profile
     replayed into a table.  When there are more entries than capacity,
     keep the most frequent (ties broken by value, matching [entries]'
     order) so the table looks as if those values had been observed
     live.  The total still counts every given observation, so range
     frequencies stay lower bounds. *)
  let t = create ~capacity ~clean_interval () in
  let sorted =
    List.sort
      (fun (v1, a) (v2, b) ->
        match Int.compare b a with 0 -> Int64.compare v1 v2 | c -> c)
      entries
  in
  List.iteri
    (fun i (v, c) ->
      if c > 0 then begin
        t.total <- t.total + c;
        if i < capacity then Hashtbl.replace t.counts v (ref c)
      end)
    sorted;
  t

let entries t =
  Hashtbl.fold (fun v c acc -> (v, !c) :: acc) t.counts []
  |> List.sort (fun (v1, a) (v2, b) ->
         match Int.compare b a with 0 -> Int64.compare v1 v2 | c -> c)

let candidate_ranges t =
  if t.total = 0 then []
  else
    let es = entries t in
    let tot = float_of_int t.total in
    let _, _, _, ranges =
      List.fold_left
        (fun (mn, mx, cnt, acc) (v, c) ->
          let mn = min mn v and mx = max mx v and cnt = cnt + c in
          (mn, mx, cnt, (mn, mx, float_of_int cnt /. tot) :: acc))
        (Int64.max_int, Int64.min_int, 0, [])
        es
    in
    List.rev ranges
