(** Branch predictors: bimodal, gshare, and the Table 2 combined
    predictor (a chooser selecting between them, McFarling style). *)

type t

val create_bimodal : entries:int -> t
val create_gshare : entries:int -> history_bits:int -> t

val create_combined :
  chooser_entries:int ->
  gshare_entries:int ->
  gshare_history:int ->
  bimodal_entries:int ->
  t

val of_config : Machine_config.t -> t
(** The paper's combined predictor. *)

(** [predict t ~pc] returns the taken/not-taken prediction. *)
val predict : t -> pc:int -> bool

(** [update t ~pc ~taken] trains the predictor (and chooser) with the
    actual outcome.  Call after {!predict} for the same branch. *)
val update : t -> pc:int -> taken:bool -> unit

(** Statistics: (predictions, mispredictions) observed via
    {!predict}/{!update} pairs. *)
val stats : t -> int * int
