lib/minic/typecheck.ml: Ast Fmt List Ogc_isa Option String
