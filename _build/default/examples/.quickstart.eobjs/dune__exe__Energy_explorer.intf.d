examples/energy_explorer.mli:
