(* Quickstart: compile a small MiniC program, run value range propagation,
   and watch instructions get re-encoded with narrow opcodes.

   Run with: dune exec examples/quickstart.exe *)

module Minic = Ogc_minic.Minic
module Prog = Ogc_ir.Prog
module Interp = Ogc_ir.Interp
module Vrp = Ogc_core.Vrp
module Interval = Ogc_core.Interval

let source = {|
  // Sum of a byte histogram: everything here fits in narrow words.
  char data[256];
  int main() {
    for (int i = 0; i < 256; i++) {
      data[i] = (char)(i * 7);
    }
    long total = 0;
    for (int i = 0; i < 256; i++) {
      total += data[i] & 0x3F;
    }
    emit(total);
    return 0;
  }
|}

let () =
  Format.printf "=== 1. Compile ===@.";
  let prog = Minic.compile source in
  Format.printf "compiled to %d static instructions@."
    (Prog.num_static_ins prog);

  Format.printf "@.=== 2. Execute the baseline ===@.";
  let before = Interp.run prog in
  Format.printf "output checksum: %Ld (%d dynamic instructions)@."
    before.Interp.checksum before.Interp.steps;

  Format.printf "@.=== 3. Value range propagation ===@.";
  let res = Vrp.analyze prog in
  (* Show the ranges VRP derived for main's body, then re-encode. *)
  let f = Prog.find_func prog "main" in
  Format.printf "ranges and widths for a few instructions of main:@.";
  let shown = ref 0 in
  Prog.iter_ins f (fun _ ins ->
      match (Vrp.range_of res ins.Prog.iid, Vrp.width_of res ins.Prog.iid) with
      | Some rng, Some w when !shown < 12 ->
        incr shown;
        Format.printf "  %-28s range=%-16s width=%s bits@."
          (Ogc_isa.Instr.to_string ins.Prog.op)
          (Interval.to_string rng)
          (Ogc_isa.Width.to_string w)
      | _ -> ());
  Vrp.apply res prog;

  Format.printf "@.=== 4. The re-encoded program still computes the same ===@.";
  let after = Interp.run prog in
  Format.printf "output checksum: %Ld (equal: %b)@." after.Interp.checksum
    (Int64.equal before.Interp.checksum after.Interp.checksum);

  Format.printf "@.=== 5. Width distribution after re-encoding ===@.";
  let counts = Hashtbl.create 4 in
  Prog.iter_all_ins prog (fun _ _ ins ->
      let w = Ogc_isa.Instr.width ins.Prog.op in
      Hashtbl.replace counts w
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts w)));
  List.iter
    (fun w ->
      Format.printf "  %2s-bit: %3d static instructions@."
        (Ogc_isa.Width.to_string w)
        (Option.value ~default:0 (Hashtbl.find_opt counts w)))
    Ogc_isa.Width.all
