(* SpecInt95 `compress` surrogate: LZSS-style compression of a synthetic
   text buffer.  Dominated by byte loads, 3-byte hashing, match scanning
   with chained hash buckets, and bit-packing of tokens — the byte-heavy
   profile of the original. *)

let name = "compress"
let description = "LZSS compression of a synthetic text buffer"

let source () =
  Printf.sprintf
    {|
// compress: LZSS over a pseudo-random text with planted repetitions.
// input_scale: 1 = train, 3 = ref (patched by the harness).
long input_scale = 3;
int seed = 12345;
char text[12288];
int head[4096];
int prev[12288];

int rnd() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 0x7fff;
}

void gen_text(int n) {
  int i = 0;
  while (i < n) {
    if ((rnd() & 3) == 0 && i > 64) {
      // plant a repetition of an earlier segment
      int src = rnd() %% (i - 40);
      int len = 8 + (rnd() & 31);
      int j = 0;
      while (j < len && i < n) {
        text[i] = text[src + j];
        i++;
        j++;
      }
    } else {
      text[i] = (char)(97 + rnd() %% 13);
      i++;
    }
  }
}

int hash3(int pos) {
  int h = text[pos] * 131 + text[pos + 1] * 17 + text[pos + 2];
  return h & 4095;
}

int main() {
  int n = 4000 * (int)input_scale;
  long packed = 0;
  long out_bytes = 0;
  long literals = 0;
  long matches = 0;
  for (int round = 0; round < 1; round++) {
    gen_text(n);
    for (int i = 0; i < 4096; i++) head[i] = -1;
    int pos = 0;
    while (pos + 3 < n) {
      int h = hash3(pos);
      int first = head[h];
      int cand = first;
      int best_len = 0;
      int best_dist = 0;
      int tries = 8;
      while (cand >= 0 && tries > 0 && pos - cand < 4096) {
        int len = 0;
        while (len < 18 && pos + len < n && text[cand + len] == text[pos + len])
          len++;
        if (len > best_len) {
          best_len = len;
          best_dist = pos - cand;
        }
        cand = prev[cand];
        tries--;
      }
      prev[pos] = first;
      head[h] = pos;
      if (best_len >= 3) {
        matches++;
        out_bytes += 2;
        packed = packed * 7 + (best_dist << 5) + best_len;
        // insert hash entries for the skipped positions
        int k = 1;
        while (k < best_len && pos + k + 3 < n) {
          int hh = hash3(pos + k);
          prev[pos + k] = head[hh];
          head[hh] = pos + k;
          k++;
        }
        pos += best_len;
      } else {
        literals++;
        out_bytes += 1;
        packed = packed * 3 + text[pos];
        pos++;
      }
    }
  }
  emit(out_bytes);
  emit(literals);
  emit(matches);
  emit(packed);
  return 0;
}
|}

