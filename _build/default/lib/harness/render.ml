let table ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun a r -> max a (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun a r -> max a (String.length (Option.value ~default:"" (List.nth_opt r c))))
      0 all
  in
  let widths = List.init ncols width in
  let render_row r =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let s = Option.value ~default:"" (List.nth_opt r c) in
           (* Right-align numeric-looking cells, left-align text. *)
           let numeric =
             String.length s > 0
             && (match s.[0] with
                | '0' .. '9' | '-' | '+' | '.' -> true
                | _ -> false)
           in
           if numeric then Printf.sprintf "%*s" w s
           else Printf.sprintf "%-*s" w s)
         widths)
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: rule :: List.map render_row rows)
  ^ "\n"

let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let bar x ~scale ~width =
  let n =
    if scale <= 0.0 then 0
    else
      let f = x /. scale in
      let f = if f < 0.0 then 0.0 else if f > 1.0 then 1.0 else f in
      int_of_float (f *. float_of_int width +. 0.5)
  in
  String.make n '#'

let heading s = s ^ "\n" ^ String.make (String.length s) '=' ^ "\n"
