lib/ir/interp.ml: Array Bytes Fmt Hashtbl Instr Int64 Label List Ogc_isa Prog Reg Width
