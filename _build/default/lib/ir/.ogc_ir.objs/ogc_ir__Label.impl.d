lib/ir/label.ml: Fmt Format Int Map Set
