(* Domain pool tests: deterministic ordering, exception propagation, and
   the OGC_JOBS / sequential fallback contract. *)

module Pool = Ogc_exec.Pool

let heavy i =
  (* Enough work per task that workers genuinely interleave. *)
  let acc = ref 0 in
  for j = 0 to 20_000 do
    acc := (!acc * 31) + ((i * j) land 0xFFFF)
  done;
  (i, !acc)

let test_order_matches_sequential () =
  let xs = List.init 97 Fun.id in
  let seq = List.map heavy xs in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d equals sequential" jobs)
        true
        (Pool.map ~jobs heavy xs = seq))
    [ 1; 2; 4; 8 ]

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 42 ]
    (Pool.map ~jobs:4 (fun x -> x * 2) [ 21 ])

let test_exception_propagation () =
  (* Both index 3 and index 7 fail; the lowest index must win so the
     error is independent of scheduling. *)
  let f i = if i = 3 || i = 7 then failwith (Printf.sprintf "task %d" i) else i in
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "jobs=%d raises first failure" jobs)
        (Failure "task 3")
        (fun () -> ignore (Pool.map ~jobs f (List.init 16 Fun.id))))
    [ 1; 4 ]

let test_all_tasks_finish_despite_failure () =
  (* A failing task must not abandon the rest of the queue: successful
     siblings still ran (observable through the side effect below). *)
  let ran = Array.make 8 false in
  (try
     ignore
       (Pool.map ~jobs:2
          (fun i ->
            ran.(i) <- true;
            if i = 0 then failwith "boom")
          (List.init 8 Fun.id))
   with Failure _ -> ());
  Alcotest.(check bool) "later tasks still executed" true
    (Array.for_all Fun.id ran)

let test_jobs_env_fallback () =
  Unix.putenv "OGC_JOBS" "1";
  Alcotest.(check (option int)) "OGC_JOBS=1 parsed" (Some 1)
    (Pool.jobs_from_env ());
  Alcotest.(check int) "default_jobs honours OGC_JOBS=1" 1
    (Pool.default_jobs ());
  Alcotest.(check int) "resolve None -> env" 1 (Pool.resolve_jobs None);
  (* The sequential fallback still computes the same answers. *)
  let xs = List.init 10 Fun.id in
  Alcotest.(check bool) "sequential fallback maps" true
    (Pool.map (fun x -> x + 1) xs = List.map (fun x -> x + 1) xs);
  Unix.putenv "OGC_JOBS" "not-a-number";
  Alcotest.(check (option int)) "garbage ignored" None (Pool.jobs_from_env ());
  Unix.putenv "OGC_JOBS" "0";
  Alcotest.(check (option int)) "zero ignored" None (Pool.jobs_from_env ());
  Unix.putenv "OGC_JOBS" "3";
  Alcotest.(check int) "OGC_JOBS=3" 3 (Pool.default_jobs ());
  Alcotest.(check int) "explicit jobs wins over env" 2
    (Pool.resolve_jobs (Some 2));
  Alcotest.(check int) "explicit 0 means auto" 3 (Pool.resolve_jobs (Some 0));
  Unix.putenv "OGC_JOBS" ""

let test_map_timed () =
  let xs = List.init 12 Fun.id in
  let values, stats = Pool.map_timed ~jobs:4 heavy xs in
  Alcotest.(check bool) "values match" true (values = List.map heavy xs);
  Alcotest.(check int) "one timing per task" (List.length xs)
    (Array.length stats.Pool.task_s);
  Alcotest.(check bool) "timings non-negative" true
    (Array.for_all (fun t -> t >= 0.0) stats.Pool.task_s);
  Alcotest.(check bool) "wall clock sane" true (stats.Pool.wall_s >= 0.0);
  Alcotest.(check bool) "jobs clamped to tasks" true (stats.Pool.jobs <= 12);
  (* More workers than tasks must not deadlock or duplicate. *)
  let v2, s2 = Pool.map_timed ~jobs:8 (fun x -> x) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "3 tasks, 8 jobs" [ 1; 2; 3 ] v2;
  Alcotest.(check bool) "jobs <= 3" true (s2.Pool.jobs <= 3)

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel order = sequential order" `Quick
            test_order_matches_sequential;
          Alcotest.test_case "empty / singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "queue drains past a failure" `Quick
            test_all_tasks_finish_despite_failure;
          Alcotest.test_case "OGC_JOBS fallback" `Quick test_jobs_env_fallback;
          Alcotest.test_case "map_timed" `Quick test_map_timed;
        ] );
    ]
